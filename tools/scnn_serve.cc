/**
 * @file
 * scnn_serve: the network-facing front end of the SimulationService.
 *
 * Two transports share one service (admission queue, workers, caches,
 * metrics) and one JSON-lines protocol (docs/PROTOCOL.md):
 *
 *  - Pipe mode (default): one request object per stdin line, one JSON
 *    reply line on stdout per input line, in input order.  Admission
 *    is *blocking*: reading stops (stdin backpressure) while the
 *    queue is full.
 *  - TCP mode (--listen): a listener accepting many concurrent
 *    clients, one thread per connection, each connection its own
 *    in-order JSON-lines stream over the shared service.  Admission
 *    is *shedding*: when the queue is saturated a request line gets
 *    an immediate {"schema":"scnn.service_error.v1","outcome":"shed"}
 *    reply instead of stalling the other clients.
 *
 * Graceful drain (TCP mode): on SIGTERM/SIGINT the listener closes
 * immediately (new connections are refused), established connections
 * keep being served until their clients half-close, and after
 * --drain-grace-ms the server stops reading mid-stream; every request
 * already admitted still receives its reply before the process flushes
 * metrics and exits 0.  A second signal skips the grace period.  In
 * pipe mode a signal behaves like EOF: stop reading, flush every
 * pending reply, exit 0.
 *
 * Sharding: scnn_serve itself is single-process; a fleet of N
 * processes becomes a sharded deployment by routing each request to
 * shardForRequest(request, N) -- bench/load_gen.cc is the reference
 * client and docs/OPERATIONS.md the runbook.
 *
 * Usage:
 *   scnn_serve [--listen=[host:]port] [--port-file=path]
 *              [--drain-grace-ms=X] [--shard=i/N]
 *              [--max-inflight=N] [--queue=N] [--session-threads=N]
 *              [--deadline-ms=X] [--no-cache] [--metrics[=path]]
 *              [--threads=N] [--echo]
 *
 * --shard=i/N (or the SCNN_SHARD=i/N environment variable; the flag
 * wins) declares this process's place in an N-shard fleet.  It does
 * not change serving behaviour -- clients route via shardForRequest()
 * -- but the metrics snapshot then carries the shard identity, so a
 * sweep driver can cross-check its routing against per-shard
 * requests_total counters.
 *
 * --listen=0 binds an ephemeral port; --port-file writes the bound
 * port (one decimal line) once listening, so harnesses can launch
 * shards without picking ports.  --metrics prints a
 * "scnn.service_stats.v1" block on exit to stderr (or a file with
 * --metrics=path).  --echo copies each request line to stderr before
 * serving it (trace aid).
 *
 * Flag validation is fail-fast: an unwritable --metrics/--port-file
 * path or an in-use --listen port is a one-line fatal error at
 * startup, never a crash or a silent ignore.
 *
 * Exit status is 0 when every consumed line produced a reply line
 * (error and shed replies included -- protocol errors are data, not
 * crashes), 1 on startup errors, 2 on bad command-line usage.
 */

#include <arpa/inet.h>
#include <atomic>
#include <chrono>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <netinet/in.h>
#include <poll.h>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "sim/frontend.hh"
#include "sim/service.hh"

using namespace scnn;

namespace {

struct Options
{
    ServiceConfig service;
    bool metrics = false;
    std::string metricsPath; // empty: stderr
    bool echo = false;
    bool listen = false;
    std::string listenHost = "127.0.0.1";
    int listenPort = -1;
    std::string portFile;
    double drainGraceMs = 10000.0;
    /** Per-connection read deadlines (TCP mode; 0 = off).  The idle
     *  timeout cuts a connection that sends nothing; the line timeout
     *  cuts a slow-loris peer trickling one line forever. */
    double idleTimeoutMs = 0.0;
    double lineTimeoutMs = 0.0;
};

/**
 * Transport-level counters the service itself cannot see (it meters
 * requests, not connections).  Updated by the accept loop and the
 * connection threads; snapshot into the metrics block at exit.
 */
struct ConnectionCounters
{
    std::atomic<uint64_t> accepted{0};
    std::atomic<uint64_t> active{0};
    std::atomic<uint64_t> closed{0};
    std::atomic<uint64_t> timedOut{0};

    void
    writeTo(JsonWriter &w) const
    {
        w.key("connections").beginObject();
        w.key("accepted").value(accepted.load());
        w.key("active").value(active.load());
        w.key("closed").value(closed.load());
        w.key("timed_out").value(timedOut.load());
        w.endObject();
    }
};

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--listen=[host:]port] [--port-file=path]\n"
                 "          [--drain-grace-ms=X] [--shard=i/N]\n"
                 "          [--idle-timeout-ms=X] "
                 "[--line-timeout-ms=X]\n"
                 "          [--max-inflight=N] [--queue=N]\n"
                 "          [--session-threads=N] [--deadline-ms=X]\n"
                 "          [--no-cache] [--metrics[=path]]\n"
                 "          [--threads=N] [--echo]\n",
                 argv0);
    std::exit(2);
}

bool
consume(const char *arg, const char *key, std::string &out)
{
    const size_t n = std::strlen(key);
    if (std::strncmp(arg, key, n) == 0 && arg[n] == '=') {
        out = arg + n + 1;
        return true;
    }
    return false;
}

int
parsePositive(const std::string &v, const char *flag)
{
    char *end = nullptr;
    const long n = std::strtol(v.c_str(), &end, 10);
    if (end == v.c_str() || *end != '\0' || n <= 0 || n > 1024)
        fatal("bad %s value '%s' (want an integer in [1, 1024])",
              flag, v.c_str());
    return static_cast<int>(n);
}

double
parseNonNegMs(const std::string &v, const char *flag)
{
    char *end = nullptr;
    const double ms = std::strtod(v.c_str(), &end);
    if (end == v.c_str() || *end != '\0' || !(ms >= 0.0))
        fatal("bad %s value '%s' (want a non-negative number of "
              "milliseconds)",
              flag, v.c_str());
    return ms;
}

/** Parse an "i/N" shard topology (0 <= i < N) into the service cfg. */
void
parseShardSpec(const std::string &spec, const char *source,
               ServiceConfig &service)
{
    const size_t slash = spec.find('/');
    char *end = nullptr;
    long index = -1, count = -1;
    if (slash != std::string::npos) {
        const std::string idxPart = spec.substr(0, slash);
        const std::string cntPart = spec.substr(slash + 1);
        index = std::strtol(idxPart.c_str(), &end, 10);
        const bool idxOk = end != idxPart.c_str() && *end == '\0';
        count = std::strtol(cntPart.c_str(), &end, 10);
        const bool cntOk = end != cntPart.c_str() && *end == '\0';
        if (!idxOk || !cntOk)
            index = count = -1;
    }
    if (index < 0 || count <= 0 || index >= count || count > 4096)
        fatal("bad %s value '%s' (want i/N with 0 <= i < N)", source,
              spec.c_str());
    service.shardIndex = static_cast<int>(index);
    service.shardCount = static_cast<int>(count);
}

void
parseListenSpec(const std::string &spec, Options &o)
{
    std::string portPart = spec;
    const size_t colon = spec.rfind(':');
    if (colon != std::string::npos) {
        o.listenHost = spec.substr(0, colon);
        portPart = spec.substr(colon + 1);
        if (o.listenHost.empty())
            fatal("bad --listen value '%s' (empty host)", spec.c_str());
    }
    char *end = nullptr;
    const long port = std::strtol(portPart.c_str(), &end, 10);
    if (end == portPart.c_str() || *end != '\0' || port < 0 ||
        port > 65535)
        fatal("bad --listen value '%s' (want [host:]port with port in "
              "[0, 65535])",
              spec.c_str());
    o.listen = true;
    o.listenPort = static_cast<int>(port);
}

/**
 * Fail-fast writability probe for paths written at exit / after
 * listen: "a" mode creates the file if missing without truncating an
 * existing one, so a pre-existing file is left intact until the real
 * write replaces it.
 */
void
requireWritable(const std::string &path, const char *flag)
{
    std::FILE *f = std::fopen(path.c_str(), "ab");
    if (f == nullptr)
        fatal("cannot write %s file '%s': %s", flag, path.c_str(),
              std::strerror(errno));
    std::fclose(f);
}

Options
parse(int argc, char **argv)
{
    Options o;
    // Serving default: a couple of in-flight sessions, one pool
    // thread each; override per deployment.
    o.service.workers = 2;
    if (const char *env = std::getenv("SCNN_SHARD"))
        parseShardSpec(env, "SCNN_SHARD", o.service);
    for (int i = 1; i < argc; ++i) {
        std::string v;
        if (consume(argv[i], "--max-inflight", v)) {
            o.service.workers = parsePositive(v, "--max-inflight");
        } else if (consume(argv[i], "--queue", v)) {
            o.service.queueCapacity = parsePositive(v, "--queue");
        } else if (consume(argv[i], "--session-threads", v)) {
            o.service.sessionThreads =
                parsePositive(v, "--session-threads");
        } else if (consume(argv[i], "--deadline-ms", v)) {
            o.service.defaultDeadlineMs =
                parseNonNegMs(v, "--deadline-ms");
        } else if (consume(argv[i], "--drain-grace-ms", v)) {
            o.drainGraceMs = parseNonNegMs(v, "--drain-grace-ms");
        } else if (consume(argv[i], "--idle-timeout-ms", v)) {
            o.idleTimeoutMs = parseNonNegMs(v, "--idle-timeout-ms");
        } else if (consume(argv[i], "--line-timeout-ms", v)) {
            o.lineTimeoutMs = parseNonNegMs(v, "--line-timeout-ms");
        } else if (consume(argv[i], "--shard", v)) {
            parseShardSpec(v, "--shard", o.service);
        } else if (consume(argv[i], "--listen", v)) {
            parseListenSpec(v, o);
        } else if (consume(argv[i], "--port-file", v)) {
            if (v.empty())
                fatal("bad --port-file value (empty path)");
            o.portFile = v;
        } else if (std::strcmp(argv[i], "--no-cache") == 0) {
            o.service.cacheWorkloads = false;
            o.service.cacheResponses = false;
        } else if (consume(argv[i], "--metrics", v)) {
            o.metrics = true;
            o.metricsPath = v;
        } else if (std::strcmp(argv[i], "--metrics") == 0) {
            o.metrics = true;
        } else if (std::strcmp(argv[i], "--echo") == 0) {
            o.echo = true;
        } else {
            usage(argv[0]);
        }
    }
    if (!o.metricsPath.empty())
        requireWritable(o.metricsPath, "--metrics");
    if (!o.portFile.empty()) {
        if (!o.listen)
            fatal("--port-file requires --listen");
        requireWritable(o.portFile, "--port-file");
    }
    return o;
}

// --- drain signalling -------------------------------------------------

/**
 * Self-pipes bridging the signal handler into poll() loops: the first
 * SIGTERM/SIGINT marks `drain` readable (listener closes, pipe mode
 * stops reading), the second marks `force` readable (connection
 * readers stop mid-stream).  Write ends are written from the handler
 * only (async-signal-safe); read ends are polled, never read, so a
 * fired signal stays visible to every poller.
 */
int g_drainPipe[2] = {-1, -1};
int g_forcePipe[2] = {-1, -1};
volatile sig_atomic_t g_signalCount = 0;

void
onTermSignal(int)
{
    const sig_atomic_t n = ++g_signalCount;
    const char byte = '!';
    if (n == 1)
        (void)!write(g_drainPipe[1], &byte, 1);
    else if (n == 2)
        (void)!write(g_forcePipe[1], &byte, 1);
}

void
installDrainSignals()
{
    if (pipe(g_drainPipe) != 0 || pipe(g_forcePipe) != 0)
        fatal("cannot create drain pipes: %s", std::strerror(errno));
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = onTermSignal;
    sigemptyset(&sa.sa_mask);
    sigaction(SIGTERM, &sa, nullptr);
    sigaction(SIGINT, &sa, nullptr);
    // A client vanishing mid-write must surface as EPIPE on the
    // write, never kill the server.
    ignoreSigpipe();
}

void
forceDrainNow()
{
    const char byte = '!';
    (void)!write(g_forcePipe[1], &byte, 1);
}

// --- TCP mode ---------------------------------------------------------

int
openListener(const Options &o, int &boundPort)
{
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        fatal("cannot create listen socket: %s", std::strerror(errno));
    const int one = 1;
    setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(o.listenPort));
    if (inet_pton(AF_INET, o.listenHost.c_str(), &addr.sin_addr) != 1)
        fatal("bad --listen host '%s' (want an IPv4 address)",
              o.listenHost.c_str());
    if (bind(fd, reinterpret_cast<sockaddr *>(&addr),
             sizeof(addr)) != 0)
        fatal("cannot listen on %s:%d: %s", o.listenHost.c_str(),
              o.listenPort, std::strerror(errno));
    if (listen(fd, 128) != 0)
        fatal("cannot listen on %s:%d: %s", o.listenHost.c_str(),
              o.listenPort, std::strerror(errno));

    socklen_t len = sizeof(addr);
    if (getsockname(fd, reinterpret_cast<sockaddr *>(&addr), &len) !=
        0)
        fatal("getsockname failed: %s", std::strerror(errno));
    boundPort = ntohs(addr.sin_port);
    return fd;
}

struct Connection
{
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
};

/** Reap finished connection threads (join + drop). */
void
reap(std::vector<std::unique_ptr<Connection>> &conns, bool all)
{
    for (auto it = conns.begin(); it != conns.end();) {
        if (all || (*it)->done.load(std::memory_order_acquire)) {
            (*it)->thread.join();
            it = conns.erase(it);
        } else {
            ++it;
        }
    }
}

int
serveTcp(const Options &o, SimulationService &service,
         ConnectionCounters &counters)
{
    int boundPort = 0;
    const int listenFd = openListener(o, boundPort);
    if (!o.portFile.empty()) {
        if (!writeJsonFile(o.portFile,
                           std::to_string(boundPort)))
            fatal("cannot write --port-file '%s'", o.portFile.c_str());
    }
    std::fprintf(stderr, "scnn_serve: listening on %s:%d\n",
                 o.listenHost.c_str(), boundPort);

    std::vector<std::unique_ptr<Connection>> conns;
    uint64_t clientNo = 0;
    bool draining = false;
    while (!draining) {
        struct pollfd fds[2] = {{listenFd, POLLIN, 0},
                                {g_drainPipe[0], POLLIN, 0}};
        if (poll(fds, 2, -1) < 0) {
            if (errno == EINTR)
                continue;
            fatal("poll failed on the listener: %s",
                  std::strerror(errno));
        }
        if (fds[1].revents & POLLIN) {
            draining = true;
            break;
        }
        if (!(fds[0].revents & POLLIN))
            continue;
        const int fd = accept(listenFd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            fatal("accept failed: %s", std::strerror(errno));
        }
        reap(conns, false);
        counters.accepted.fetch_add(1);
        counters.active.fetch_add(1);
        auto conn = std::make_unique<Connection>();
        conn->fd = fd;
        Connection *raw = conn.get();
        FrontendOptions fo;
        fo.echo = o.echo;
        fo.shed = true;
        fo.idleTimeoutMs = o.idleTimeoutMs;
        fo.lineTimeoutMs = o.lineTimeoutMs;
        fo.peer = strfmt("client %llu",
                         static_cast<unsigned long long>(clientNo++));
        conn->thread = std::thread([&service, &counters, raw, fo] {
            const StreamOutcome outcome = serveLineStream(
                service, raw->fd, raw->fd, fo, g_forcePipe[0]);
            close(raw->fd);
            if (outcome.timedOut) {
                counters.timedOut.fetch_add(1);
                std::fprintf(stderr,
                             "scnn_serve: %s cut off (read deadline "
                             "expired after %llu line(s))\n",
                             fo.peer.c_str(),
                             static_cast<unsigned long long>(
                                 outcome.lines));
            }
            counters.active.fetch_sub(1);
            counters.closed.fetch_add(1);
            raw->done.store(true, std::memory_order_release);
        });
        conns.push_back(std::move(conn));
    }

    // Drain: refuse new connections immediately, keep serving the
    // established ones until their clients half-close; after the
    // grace period (or a second signal) stop reading mid-stream.
    // Either way every admitted request still gets its reply.
    close(listenFd);
    std::fprintf(stderr,
                 "scnn_serve: draining (%zu connection(s), grace "
                 "%.0f ms)\n",
                 conns.size(), o.drainGraceMs);
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration<double, std::milli>(o.drainGraceMs);
    bool forced = false;
    for (;;) {
        reap(conns, false);
        if (conns.empty())
            break;
        if (!forced && std::chrono::steady_clock::now() >= deadline) {
            forceDrainNow();
            forced = true;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    reap(conns, true);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    argc = consumeThreadsFlag(argc, argv);
    const Options o = parse(argc, argv);
    installDrainSignals();

    SimulationService service(o.service);
    ConnectionCounters counters;
    if (o.listen) {
        serveTcp(o, service, counters);
    } else {
        FrontendOptions fo;
        fo.echo = o.echo;
        fo.shed = false; // pipe mode: blocking backpressure
        fo.peer = "stdin";
        // In pipe mode the first signal already means "stop reading,
        // flush, exit": pass the drain pipe as the stream's stop fd.
        serveLineStream(service, STDIN_FILENO, STDOUT_FILENO, fo,
                        g_drainPipe[0]);
    }

    if (o.metrics) {
        const std::string stats = service.statsJson(
            [&counters](JsonWriter &w) { counters.writeTo(w); });
        if (o.metricsPath.empty())
            std::fprintf(stderr, "%s\n", stats.c_str());
        else if (!writeJsonFile(o.metricsPath, stats))
            fatal("cannot write metrics to '%s'",
                  o.metricsPath.c_str());
    }
    return 0;
}
