/**
 * @file
 * scnn_serve: JSON-lines front end to the SimulationService.
 *
 * Protocol: one request object per stdin line (see parseRequestLine
 * in sim/service.hh for the field reference), one JSON line on stdout
 * per input line, in input order:
 *
 *  - a "scnn.simulation_response.v1" document for a completed
 *    session (byte-identical to toJson(runSession(request)) for the
 *    same request), or
 *  - a "scnn.service_error.v1" document when the line could not be
 *    parsed, the request was invalid, the session failed, or the
 *    deadline expired:
 *      {"schema": "scnn.service_error.v1", "line": N,
 *       "outcome": "error" | "cancelled" | "deadline_expired",
 *       "error": "<description>"}
 *
 * Requests are admitted into a bounded queue and executed by up to
 * --max-inflight concurrent sessions multiplexed over the shared
 * thread pool; reading stops (stdin backpressure) while the queue is
 * full.  Identical requests are served from the response cache and
 * repeated networks from the workload cache (disable with
 * --no-cache).
 *
 * Usage:
 *   scnn_serve [--max-inflight=N] [--queue=N] [--session-threads=N]
 *              [--deadline-ms=X] [--no-cache] [--metrics[=path]]
 *              [--threads=N] [--echo]
 *
 * --metrics prints a "scnn.service_stats.v1" block on exit to stderr
 * (or writes it to a file with --metrics=path) so batch drivers can
 * collect queue/latency/cache metrics as an artifact.  --echo copies
 * each request line to stderr before serving it (trace aid).
 *
 * Exit status is 0 when every line produced a response line (error
 * responses included -- protocol errors are data, not crashes), 2 on
 * bad command-line usage.
 */

#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>
#include <string>
#include <thread>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "sim/service.hh"

using namespace scnn;

namespace {

/** Hard cap on one request line; longer lines get an error line. */
constexpr size_t kMaxLineBytes = 1 << 20;

struct Options
{
    ServiceConfig service;
    bool metrics = false;
    std::string metricsPath; // empty: stderr
    bool echo = false;
};

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--max-inflight=N] [--queue=N]\n"
                 "          [--session-threads=N] [--deadline-ms=X]\n"
                 "          [--no-cache] [--metrics[=path]]\n"
                 "          [--threads=N] [--echo]\n",
                 argv0);
    std::exit(2);
}

bool
consume(const char *arg, const char *key, std::string &out)
{
    const size_t n = std::strlen(key);
    if (std::strncmp(arg, key, n) == 0 && arg[n] == '=') {
        out = arg + n + 1;
        return true;
    }
    return false;
}

int
parsePositive(const std::string &v, const char *flag)
{
    char *end = nullptr;
    const long n = std::strtol(v.c_str(), &end, 10);
    if (end == v.c_str() || *end != '\0' || n <= 0 || n > 1024)
        fatal("bad %s value '%s' (want an integer in [1, 1024])",
              flag, v.c_str());
    return static_cast<int>(n);
}

Options
parse(int argc, char **argv)
{
    Options o;
    // Serving default: a couple of in-flight sessions, one pool
    // thread each; override per deployment.
    o.service.workers = 2;
    for (int i = 1; i < argc; ++i) {
        std::string v;
        if (consume(argv[i], "--max-inflight", v)) {
            o.service.workers = parsePositive(v, "--max-inflight");
        } else if (consume(argv[i], "--queue", v)) {
            o.service.queueCapacity = parsePositive(v, "--queue");
        } else if (consume(argv[i], "--session-threads", v)) {
            o.service.sessionThreads =
                parsePositive(v, "--session-threads");
        } else if (consume(argv[i], "--deadline-ms", v)) {
            char *end = nullptr;
            o.service.defaultDeadlineMs =
                std::strtod(v.c_str(), &end);
            if (end == v.c_str() || *end != '\0' ||
                o.service.defaultDeadlineMs < 0.0)
                fatal("bad --deadline-ms value '%s'", v.c_str());
        } else if (std::strcmp(argv[i], "--no-cache") == 0) {
            o.service.cacheWorkloads = false;
            o.service.cacheResponses = false;
        } else if (consume(argv[i], "--metrics", v)) {
            o.metrics = true;
            o.metricsPath = v;
        } else if (std::strcmp(argv[i], "--metrics") == 0) {
            o.metrics = true;
        } else if (std::strcmp(argv[i], "--echo") == 0) {
            o.echo = true;
        } else {
            usage(argv[0]);
        }
    }
    return o;
}

/** An input line's slot in the in-order output sequence. */
struct PendingLine
{
    bool ready = false;    ///< `text` already final (parse error)
    std::string text;      ///< ready output line
    SessionTicket ticket;  ///< pending session otherwise
};

std::string errorLine(uint64_t lineNo, const char *outcome,
                      const std::string &message);
std::string replyLine(uint64_t lineNo, const ServiceReply &reply);

/**
 * In-order response writer: a dedicated thread drains a bounded
 * deque of pending lines, waiting on each head-of-line ticket in
 * turn, so a completed response is emitted as soon as its
 * predecessors are -- even while the reader sits blocked on stdin
 * (request/response-lockstep clients would otherwise deadlock).  The
 * bound makes the reorder buffer itself apply backpressure for lines
 * that never reach the service queue (parse errors, oversized
 * lines): push() blocks until the writer catches up, so a flood of
 * garbage lines cannot grow memory without limit.
 */
class OrderedEmitter
{
  public:
    explicit OrderedEmitter(size_t capacity)
        : capacity_(capacity), writer_([this] { writerLoop(); })
    {
    }

    /** Append the next line's slot; blocks while the buffer is full. */
    void
    push(PendingLine slot)
    {
        std::unique_lock<std::mutex> lock(mu_);
        space_.wait(lock,
                    [&] { return pending_.size() < capacity_; });
        pending_.push_back(std::move(slot));
        ready_.notify_one();
    }

    /** Signal EOF, drain everything, join the writer. */
    void
    finish()
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            eof_ = true;
        }
        ready_.notify_one();
        writer_.join();
    }

  private:
    void
    writerLoop()
    {
        uint64_t lineNo = 0;
        for (;;) {
            PendingLine slot;
            {
                std::unique_lock<std::mutex> lock(mu_);
                ready_.wait(lock, [&] {
                    return eof_ || !pending_.empty();
                });
                if (pending_.empty())
                    return; // EOF and fully drained
                slot = std::move(pending_.front());
                pending_.pop_front();
            }
            space_.notify_one();
            // ticket.wait() blocks only this writer; the reader
            // keeps accepting lines meanwhile.
            const std::string text =
                slot.ready ? slot.text
                           : replyLine(lineNo, slot.ticket.wait());
            std::fputs(text.c_str(), stdout);
            std::fputc('\n', stdout);
            std::fflush(stdout);
            ++lineNo;
        }
    }

    const size_t capacity_;
    std::mutex mu_;
    std::condition_variable ready_;
    std::condition_variable space_;
    std::deque<PendingLine> pending_;
    bool eof_ = false;
    std::thread writer_;
};

std::string
errorLine(uint64_t lineNo, const char *outcome,
          const std::string &message)
{
    JsonWriter w;
    w.beginObject();
    w.key("schema").value("scnn.service_error.v1");
    w.key("line").value(lineNo);
    w.key("outcome").value(outcome);
    w.key("error").value(message);
    w.endObject();
    return w.str();
}

std::string
replyLine(uint64_t lineNo, const ServiceReply &reply)
{
    switch (reply.outcome) {
    case ServiceOutcome::Ok:
        return *reply.responseJson;
    case ServiceOutcome::Cancelled:
        return errorLine(lineNo, "cancelled", reply.error);
    case ServiceOutcome::DeadlineExpired:
        return errorLine(lineNo, "deadline_expired", reply.error);
    case ServiceOutcome::Error:
        break;
    }
    return errorLine(lineNo, "error", reply.error);
}

/**
 * Read one line of unbounded length safely: lines beyond the cap are
 * consumed to their end but flagged oversized (one error line each,
 * still one output per input).
 */
bool
readLine(std::string &line, bool &oversized)
{
    line.clear();
    oversized = false;
    int c;
    while ((c = std::fgetc(stdin)) != EOF) {
        if (c == '\n')
            return true;
        if (line.size() < kMaxLineBytes)
            line += static_cast<char>(c);
        else
            oversized = true;
    }
    return !line.empty();
}

} // namespace

int
main(int argc, char **argv)
{
    argc = consumeThreadsFlag(argc, argv);
    const Options o = parse(argc, argv);

    SimulationService service(o.service);
    // The reorder bound covers everything the service can have in
    // flight plus a slab of ready (error) lines.
    OrderedEmitter emitter(
        static_cast<size_t>(o.service.queueCapacity) +
        static_cast<size_t>(o.service.workers) + 64);
    uint64_t lineNo = 0;

    std::string line;
    bool oversized = false;
    while (readLine(line, oversized)) {
        if (o.echo)
            std::fprintf(stderr, "line %llu: %s\n",
                         static_cast<unsigned long long>(lineNo),
                         line.c_str());
        PendingLine slot;
        if (oversized) {
            slot.ready = true;
            slot.text = errorLine(
                lineNo, "error",
                strfmt("request line exceeds the %zu-byte limit",
                       kMaxLineBytes));
        } else if (line.find_first_not_of(" \t\r") ==
                   std::string::npos) {
            slot.ready = true;
            slot.text = errorLine(lineNo, "error", "empty line");
        } else {
            ParsedServiceRequest parsed;
            std::string error;
            if (parseRequestLine(line, parsed, error)) {
                // submit() blocks while the queue is full: admission
                // backpressure travels up to our stdin reader.
                slot.ticket = service.submit(
                    std::move(parsed.request), parsed.deadlineMs);
            } else {
                slot.ready = true;
                slot.text = errorLine(lineNo, "error", error);
            }
        }
        emitter.push(std::move(slot));
        ++lineNo;
    }
    emitter.finish();

    if (o.metrics) {
        const std::string stats = service.statsJson();
        if (o.metricsPath.empty())
            std::fprintf(stderr, "%s\n", stats.c_str());
        else if (!writeJsonFile(o.metricsPath, stats))
            fatal("cannot write metrics to '%s'",
                  o.metricsPath.c_str());
    }
    return 0;
}
