/**
 * @file
 * scnn_sim: command-line front end to the simulators.
 *
 * Usage:
 *   scnn_sim [--network=alexnet|googlenet|vgg16|tiny]
 *            [--arch=scnn|dcnn|dcnn-opt|timeloop]
 *            [--grid=RxC] [--fixed-accum] [--input-halos]
 *            [--density=W,A] [--seed=N] [--chained] [--all-layers]
 *            [--threads=N]
 *
 * Prints a per-layer table (cycles, utilization, idle fraction,
 * energy, DRAM traffic, tiling) and network totals.  Exits non-zero
 * on bad arguments.
 *
 * --threads=N (or the SCNN_THREADS environment variable) sets the
 * worker-thread count for the simulators' parallel sections; results
 * are bit-identical for every value.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "analytic/timeloop.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/table.hh"
#include "dcnn/simulator.hh"
#include "driver/googlenet_runner.hh"
#include "nn/model_zoo.hh"
#include "scnn/simulator.hh"

using namespace scnn;

namespace {

struct Options
{
    std::string network = "alexnet";
    std::string arch = "scnn";
    int gridRows = 8;
    int gridCols = 8;
    bool fixedAccum = false;
    bool inputHalos = false;
    bool chained = false;
    bool evalOnly = true;
    double weightDensity = -1.0; // <0: use profile
    double actDensity = -1.0;
    uint64_t seed = 20170624;
};

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--network=alexnet|googlenet|vgg16|tiny]\n"
                 "          [--arch=scnn|dcnn|dcnn-opt|timeloop]\n"
                 "          [--grid=RxC] [--fixed-accum] "
                 "[--input-halos]\n"
                 "          [--density=W,A] [--seed=N] [--chained]\n"
                 "          [--all-layers] [--threads=N]\n",
                 argv0);
    std::exit(2);
}

bool
consume(const char *arg, const char *key, std::string &out)
{
    const size_t n = std::strlen(key);
    if (std::strncmp(arg, key, n) == 0 && arg[n] == '=') {
        out = arg + n + 1;
        return true;
    }
    return false;
}

Options
parse(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        std::string v;
        if (consume(argv[i], "--network", v)) {
            o.network = v;
        } else if (consume(argv[i], "--arch", v)) {
            o.arch = v;
        } else if (consume(argv[i], "--grid", v)) {
            if (std::sscanf(v.c_str(), "%dx%d", &o.gridRows,
                            &o.gridCols) != 2)
                usage(argv[0]);
        } else if (consume(argv[i], "--density", v)) {
            if (std::sscanf(v.c_str(), "%lf,%lf", &o.weightDensity,
                            &o.actDensity) != 2)
                usage(argv[0]);
        } else if (consume(argv[i], "--seed", v)) {
            o.seed = std::strtoull(v.c_str(), nullptr, 10);
        } else if (std::strcmp(argv[i], "--fixed-accum") == 0) {
            o.fixedAccum = true;
        } else if (std::strcmp(argv[i], "--input-halos") == 0) {
            o.inputHalos = true;
        } else if (std::strcmp(argv[i], "--chained") == 0) {
            o.chained = true;
        } else if (std::strcmp(argv[i], "--all-layers") == 0) {
            o.evalOnly = false;
        } else {
            usage(argv[0]);
        }
    }
    return o;
}

Network
pickNetwork(const Options &o)
{
    Network net;
    if (o.network == "alexnet")
        net = alexNet();
    else if (o.network == "googlenet")
        net = googLeNet();
    else if (o.network == "vgg16")
        net = vgg16();
    else if (o.network == "tiny")
        net = tinyTestNetwork();
    else
        fatal("unknown network '%s'", o.network.c_str());
    if (o.weightDensity >= 0.0)
        net = withUniformDensity(net, o.weightDensity, o.actDensity);
    return net;
}

void
printResult(const NetworkResult &nr, const AcceleratorConfig &cfg)
{
    Table t(nr.archName + "_" + nr.networkName,
            {"Layer", "Cycles", "Mult util", "Idle", "Energy (uJ)",
             "DRAM (KB)", "Tiled"});
    for (const auto &l : nr.layers) {
        t.addRow({l.layerName, std::to_string(l.cycles),
                  Table::num(l.multUtilBusy, 3),
                  Table::num(l.peIdleFraction, 3),
                  Table::num(l.energyPj / 1e6, 2),
                  Table::num(static_cast<double>(l.dramWeightBits +
                                                 l.dramActBits) /
                                 8.0 / 1024.0,
                             0),
                  l.dramTiled ? "y" : "n"});
    }
    t.print();

    const double us = static_cast<double>(nr.totalCycles()) /
                      (cfg.clockGhz * 1e3);
    std::printf("total: %llu cycles (~%.0f us at %.1f GHz), %.1f uJ\n",
                static_cast<unsigned long long>(nr.totalCycles()), us,
                cfg.clockGhz, nr.totalEnergyPj() / 1e6);
}

} // namespace

int
main(int argc, char **argv)
{
    argc = consumeThreadsFlag(argc, argv);
    const Options o = parse(argc, argv);
    const Network net = pickNetwork(o);

    AcceleratorConfig cfg;
    if (o.arch == "scnn" || o.arch == "timeloop") {
        cfg = o.fixedAccum
            ? scnnWithPeGridFixedAccum(o.gridRows, o.gridCols)
            : scnnWithPeGrid(o.gridRows, o.gridCols);
        cfg.pe.inputHalos = o.inputHalos;
    } else if (o.arch == "dcnn") {
        cfg = dcnnConfig();
    } else if (o.arch == "dcnn-opt") {
        cfg = dcnnOptConfig();
    } else {
        fatal("unknown arch '%s'", o.arch.c_str());
    }

    std::printf("%s on %s (seed %llu)\n\n", cfg.name.c_str(),
                net.name().c_str(),
                static_cast<unsigned long long>(o.seed));

    if (o.arch == "timeloop") {
        TimeLoopModel model;
        printResult(model.estimateNetwork(cfg, net, o.evalOnly), cfg);
        return 0;
    }
    if (o.arch == "scnn") {
        ScnnSimulator sim(cfg);
        NetworkResult nr;
        if (o.chained && o.network == "googlenet")
            nr = runGoogLeNetChained(sim, o.seed); // inception DAG
        else if (o.chained)
            nr = sim.runNetworkChained(net, o.seed);
        else
            nr = sim.runNetwork(net, o.seed, o.evalOnly);
        printResult(nr, cfg);
        if (o.chained) {
            std::printf("\nemergent output densities:");
            for (const auto &l : nr.layers)
                std::printf(" %s=%.2f", l.layerName.c_str(),
                            l.stats.getOr("output_density", 0.0));
            std::printf("\n");
        }
        return 0;
    }
    if (o.chained)
        fatal("--chained requires --arch=scnn");
    DcnnSimulator sim(cfg);
    printResult(sim.runNetwork(net, o.seed, o.evalOnly, false), cfg);
    return 0;
}
