/**
 * @file
 * scnn_sim: command-line front end to the simulation service.
 *
 * Usage:
 *   scnn_sim [--network=alexnet|googlenet|vgg16|resnet18|mobilenet|
 *                       tiny|tiny-res|tiny-dw]
 *            [--arch=<registered backend>] [--list-backends]
 *            [--grid=RxC] [--fixed-accum] [--input-halos]
 *            [--density=W,A] [--seed=N] [--chained] [--all-layers]
 *            [--threads=N] [--json[=path]] [--profile]
 *            [--no-functional] [--manifest=path]
 *            [--write-manifest=path]
 *
 * Backends are looked up by name in the BackendRegistry (scnn, dcnn,
 * dcnn-opt, oracle, timeloop, plus anything registered by
 * extensions); the whole run goes through the sim/session layer.
 * Prints a per-layer table (cycles, utilization, idle fraction,
 * energy, DRAM traffic, tiling) and network totals; --json emits the
 * structured SimulationResponse as JSON to stdout (or to a file with
 * --json=path) alongside the table.  Exits non-zero on bad arguments,
 * unknown backends, invalid configurations and capability-gated
 * requests (e.g. --chained on a backend without chained support).
 *
 * --threads=N (or the SCNN_THREADS environment variable) sets the
 * worker-thread count for the simulators' parallel sections; results
 * are bit-identical for every value.
 *
 * --profile prints a per-stage wall-time breakdown of the simulation
 * pipeline (compress / kernel / drain / encode) after the result
 * table, plus per-stage products/sec and the active SIMD lane width
 * and kernel mode (see SCNN_SIMD in common/simd.hh), so a throughput
 * regression is attributable to a stage at a glance.
 * --no-functional requests the stats-only kernels: timing, work and
 * energy stats are unchanged but no functional output is computed
 * (fastest way to sweep performance numbers).
 *
 * --manifest=path runs the network on real checkpoint weights from an
 * SCNNWMF1 weight-manifest file (nn/manifest.hh): matched layers use
 * the manifest tensors and densities, unmatched layers keep the
 * seeded synthetic draw.  --write-manifest=path does the reverse:
 * it synthesizes the network's weights at the current seed, writes
 * them as a manifest file and exits (a self-contained way to produce
 * a valid example manifest or a regression fixture).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/simd.hh"
#include "common/table.hh"
#include "nn/manifest.hh"
#include "nn/model_zoo.hh"
#include "sim/registry.hh"
#include "sim/session.hh"

using namespace scnn;

namespace {

struct Options
{
    std::string network = "alexnet";
    std::string arch = "scnn";
    int gridRows = 8;
    int gridCols = 8;
    bool fixedAccum = false;
    bool inputHalos = false;
    bool chained = false;
    bool evalOnly = true;
    bool profile = false;
    bool noFunctional = false;
    bool json = false;
    std::string jsonPath; // empty: JSON to stdout
    double weightDensity = -1.0; // <0: use profile
    double actDensity = -1.0;
    uint64_t seed = 20170624;
    std::string manifestPath;      // --manifest: run on checkpoint
    std::string writeManifestPath; // --write-manifest: emit and exit
};

std::string
backendList()
{
    std::string out;
    for (const auto &name : registeredBackends()) {
        if (!out.empty())
            out += "|";
        out += name;
    }
    return out;
}

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--network=alexnet|googlenet|vgg16|"
                 "resnet18|mobilenet|tiny|tiny-res|tiny-dw]\n"
                 "          [--arch=%s]\n"
                 "          [--list-backends]\n"
                 "          [--grid=RxC] [--fixed-accum] "
                 "[--input-halos]\n"
                 "          [--density=W,A] [--seed=N] [--chained]\n"
                 "          [--all-layers] [--threads=N] "
                 "[--json[=path]]\n"
                 "          [--profile] [--no-functional]\n"
                 "          [--manifest=path] "
                 "[--write-manifest=path]\n",
                 argv0, backendList().c_str());
    std::exit(2);
}

bool
consume(const char *arg, const char *key, std::string &out)
{
    const size_t n = std::strlen(key);
    if (std::strncmp(arg, key, n) == 0 && arg[n] == '=') {
        out = arg + n + 1;
        return true;
    }
    return false;
}

Options
parse(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        std::string v;
        if (consume(argv[i], "--network", v)) {
            o.network = v;
        } else if (consume(argv[i], "--arch", v)) {
            o.arch = v;
        } else if (consume(argv[i], "--grid", v)) {
            if (std::sscanf(v.c_str(), "%dx%d", &o.gridRows,
                            &o.gridCols) != 2)
                usage(argv[0]);
        } else if (consume(argv[i], "--density", v)) {
            if (std::sscanf(v.c_str(), "%lf,%lf", &o.weightDensity,
                            &o.actDensity) != 2)
                usage(argv[0]);
        } else if (consume(argv[i], "--seed", v)) {
            o.seed = std::strtoull(v.c_str(), nullptr, 10);
        } else if (consume(argv[i], "--manifest", v)) {
            o.manifestPath = v;
        } else if (consume(argv[i], "--write-manifest", v)) {
            o.writeManifestPath = v;
        } else if (consume(argv[i], "--json", v)) {
            o.json = true;
            o.jsonPath = v;
        } else if (std::strcmp(argv[i], "--json") == 0) {
            o.json = true;
        } else if (std::strcmp(argv[i], "--list-backends") == 0) {
            for (const auto &name : registeredBackends())
                std::printf("%s\n", name.c_str());
            std::exit(0);
        } else if (std::strcmp(argv[i], "--fixed-accum") == 0) {
            o.fixedAccum = true;
        } else if (std::strcmp(argv[i], "--input-halos") == 0) {
            o.inputHalos = true;
        } else if (std::strcmp(argv[i], "--chained") == 0) {
            o.chained = true;
        } else if (std::strcmp(argv[i], "--all-layers") == 0) {
            o.evalOnly = false;
        } else if (std::strcmp(argv[i], "--profile") == 0) {
            o.profile = true;
        } else if (std::strcmp(argv[i], "--no-functional") == 0) {
            o.noFunctional = true;
        } else {
            usage(argv[0]);
        }
    }
    if (o.noFunctional && o.chained) {
        fatal("--no-functional cannot be combined with --chained: "
              "chained execution feeds each layer's functional output "
              "into the next layer");
    }
    return o;
}

Network
pickNetwork(const Options &o)
{
    Network net;
    if (o.network == "alexnet")
        net = alexNet();
    else if (o.network == "googlenet")
        net = googLeNet();
    else if (o.network == "vgg16")
        net = vgg16();
    else if (o.network == "resnet18")
        net = resNet18();
    else if (o.network == "mobilenet")
        net = mobileNet();
    else if (o.network == "tiny")
        net = tinyTestNetwork();
    else if (o.network == "tiny-res")
        net = tinyResNetwork();
    else if (o.network == "tiny-dw")
        net = tinyDwNetwork();
    else
        fatal("unknown network '%s'", o.network.c_str());
    if (o.weightDensity >= 0.0)
        net = withUniformDensity(net, o.weightDensity, o.actDensity);
    return net;
}

/**
 * The backend configuration for this invocation: the registry default
 * for the arch, with the SCNN-family grid flags applied when the
 * default is an SCNN-kind configuration (dense baselines have no PE
 * grid to re-arrange).
 */
AcceleratorConfig
pickConfig(const Options &o)
{
    AcceleratorConfig cfg =
        BackendRegistry::instance().defaultConfig(o.arch);
    if (cfg.kind == ArchKind::SCNN) {
        const int pes = o.gridRows * o.gridCols;
        if (pes <= 0 || cfg.multipliers() % pes != 0)
            fatal("--grid=%dx%d does not divide the %d chip "
                  "multipliers", o.gridRows, o.gridCols,
                  cfg.multipliers());
        cfg = o.fixedAccum
            ? scnnWithPeGridFixedAccum(o.gridRows, o.gridCols)
            : scnnWithPeGrid(o.gridRows, o.gridCols);
        cfg.pe.inputHalos = o.inputHalos;
    }
    return cfg;
}

void
printResult(const NetworkResult &nr, const AcceleratorConfig &cfg)
{
    Table t(nr.archName + "_" + nr.networkName,
            {"Layer", "Cycles", "Mult util", "Idle", "Energy (uJ)",
             "DRAM (KB)", "Tiled"});
    for (const auto &l : nr.layers) {
        t.addRow({l.layerName, std::to_string(l.cycles),
                  Table::num(l.multUtilBusy, 3),
                  Table::num(l.peIdleFraction, 3),
                  Table::num(l.energyPj / 1e6, 2),
                  Table::num(static_cast<double>(l.dramWeightBits +
                                                 l.dramActBits) /
                                 8.0 / 1024.0,
                             0),
                  l.dramTiled ? "y" : "n"});
    }
    t.print();

    const double us = static_cast<double>(nr.totalCycles()) /
                      (cfg.clockGhz * 1e3);
    std::printf("total: %llu cycles (~%.0f us at %.1f GHz), %.1f uJ\n",
                static_cast<unsigned long long>(nr.totalCycles()), us,
                cfg.clockGhz, nr.totalEnergyPj() / 1e6);
}

} // namespace

int
main(int argc, char **argv)
{
    argc = consumeThreadsFlag(argc, argv);
    const Options o = parse(argc, argv);
    Network net = pickNetwork(o);

    if (!o.writeManifestPath.empty()) {
        const WeightManifest m = manifestFromNetwork(net, o.seed);
        std::string error;
        if (!writeManifestFile(o.writeManifestPath, m, &error))
            fatal("%s", error.c_str());
        std::printf("wrote %zu-entry manifest for %s (fingerprint "
                    "%016llx) to %s\n",
                    m.numEntries(), net.name().c_str(),
                    static_cast<unsigned long long>(m.fingerprint()),
                    o.writeManifestPath.c_str());
        return 0;
    }

    std::shared_ptr<WeightManifest> manifest;
    if (!o.manifestPath.empty()) {
        manifest = std::make_shared<WeightManifest>();
        std::string error;
        if (!loadManifestFile(o.manifestPath, manifest.get(),
                              &error) ||
            !applyManifest(net, *manifest, &error))
            fatal("%s", error.c_str());
    }

    SimulationRequest req;
    req.network = net;
    req.manifest = manifest;
    req.seed = o.seed;
    req.chained = o.chained;
    req.evalOnly = o.evalOnly;
    req.profile = o.profile;
    // The CLI only reads stats and densities from chained runs; let
    // each layer's output move into the next stage instead of being
    // deep-copied into the response.
    req.keepOutputs = false;
    try {
        BackendSpec spec;
        spec.backend = o.arch;
        spec.config = pickConfig(o);
        if (o.noFunctional)
            spec.functional = 0;
        req.backends.push_back(std::move(spec));
    } catch (const SimulationError &e) {
        fatal("%s", e.what());
    }

    const AcceleratorConfig &cfg = *req.backends.front().config;
    std::printf("%s on %s (seed %llu)\n\n", cfg.name.c_str(),
                net.name().c_str(),
                static_cast<unsigned long long>(o.seed));

    const SimulationResponse resp = runSession(req);
    const BackendRun &run = resp.runs.front();
    if (!run.ok)
        fatal("%s", run.error.c_str());

    printResult(run.result, cfg);
    if (o.profile) {
        Table t("profile_" + run.result.networkName,
                {"Layer", "Compress (ms)", "Kernel (ms)", "Drain (ms)",
                 "Encode (ms)"});
        double total[4] = {0.0, 0.0, 0.0, 0.0};
        static const char *keys[4] = {
            "profile_compress_ms", "profile_kernel_ms",
            "profile_drain_ms", "profile_encode_ms"};
        uint64_t products = 0;
        for (const auto &l : run.result.layers) {
            std::vector<std::string> row = {l.layerName};
            for (int s = 0; s < 4; ++s) {
                const double ms = l.stats.getOr(keys[s], 0.0);
                total[s] += ms;
                row.push_back(Table::num(ms, 2));
            }
            products += l.products;
            t.addRow(row);
        }
        t.addRow({"total", Table::num(total[0], 2),
                  Table::num(total[1], 2), Table::num(total[2], 2),
                  Table::num(total[3], 2)});
        // Per-stage products/sec: the network's product count over
        // each stage's wall time, so a throughput regression is
        // attributable to a stage at a glance.
        std::vector<std::string> rate = {"Mproducts/s"};
        for (int s = 0; s < 4; ++s)
            rate.push_back(total[s] > 0.0
                ? Table::num(static_cast<double>(products) /
                                 total[s] / 1e3,
                             1)
                : "-");
        t.addRow(rate);
        std::printf("\n");
        t.print();
        std::printf("SIMD: %s\n", simd::activeDescription());
    }
    if (o.chained) {
        std::printf("\nemergent output densities:");
        for (const auto &l : run.result.layers)
            std::printf(" %s=%.2f", l.layerName.c_str(),
                        l.stats.getOr("output_density", 0.0));
        std::printf("\n");
    }

    if (o.json) {
        const std::string doc = toJson(resp);
        if (o.jsonPath.empty()) {
            std::printf("\n%s\n", doc.c_str());
        } else if (!writeJsonFile(o.jsonPath, doc)) {
            fatal("cannot write JSON to '%s'", o.jsonPath.c_str());
        }
    }
    return 0;
}
