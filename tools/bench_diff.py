#!/usr/bin/env python3
"""Diff two BENCH_*.json files with a percentage tolerance.

Supports both benchmark formats this repo commits:

* ``scnn.sim_throughput.v*`` (bench_sim_throughput): rows keyed by
  (network, backend, threads); default metric ``products_per_sec``
  (higher is better).  ``wall_ms`` / ``wall_ms_min`` (lower is
  better) can be selected with --metric.
* ``scnn.load_gen.v*`` (bench_load_gen): cells keyed by
  (cell, shards); default metric ``ok_per_sec`` (higher is better).
  ``completed_per_sec`` (higher) and ``wall_ms`` (lower) can be
  selected with --metric.
* google-benchmark JSON (bench_micro_kernels): entries keyed by
  benchmark name; metric ``real_time`` (lower is better).  When the
  file carries aggregate entries only the ``_median`` rows are
  compared; raw iteration entries are used otherwise.
* ``scnn.dse_report.v*`` (scnn_dse --json): one row keyed by
  (network, strategy); default metric ``survivors_per_sec`` (higher
  is better).  ``frontier_size`` (higher) can be selected with
  --metric to catch a frontier collapse.

Only keys present in *both* files are compared, so a quick smoke run
(e.g. the tiny network in CI) can be gated against a committed
baseline that also contains the full sweep.  Exits non-zero when any
shared key regresses by more than --tolerance percent.

Usage:
  tools/bench_diff.py BASELINE NEW [--tolerance=PCT] [--metric=NAME]
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def throughput_rows(doc, metric):
    rows = {}
    for r in doc.get("results", []):
        key = "%s/%s/t%s" % (r["network"], r["backend"], r["threads"])
        if metric in r:
            rows[key] = float(r[metric])
    return rows


def load_gen_rows(doc, metric):
    rows = {}
    for c in doc.get("cells", []):
        key = "%s/%dshard" % (c["cell"], c["shards"])
        if metric in c:
            rows[key] = float(c[metric])
    return rows


def gbench_rows(doc, metric):
    entries = doc.get("benchmarks", [])
    has_aggregates = any(
        e.get("run_type") == "aggregate" for e in entries)
    rows = {}
    for e in entries:
        name = e.get("name", "")
        if has_aggregates:
            if e.get("aggregate_name") != "median":
                continue
            key = e.get("run_name", name)
        else:
            key = name
        if metric in e:
            rows[key] = float(e[metric])
    return rows


def dse_report_rows(doc, metric):
    key = "%s/%s" % (doc.get("network", "?"), doc.get("strategy", "?"))
    if metric == "frontier_size":
        return {key: float(doc.get("frontier_size", 0))}
    funnel = doc.get("funnel", {})
    if metric in funnel:
        return {key: float(funnel[metric])}
    return {}


def extract(doc, metric):
    """@return (rows, higher_is_better, metric_name)."""
    schema = doc.get("schema", "")
    if schema.startswith("scnn.sim_throughput"):
        m = metric or "products_per_sec"
        return throughput_rows(doc, m), not m.startswith("wall_ms"), m
    if schema.startswith("scnn.load_gen"):
        m = metric or "ok_per_sec"
        return load_gen_rows(doc, m), not m.startswith("wall_ms"), m
    if schema.startswith("scnn.dse_report"):
        m = metric or "survivors_per_sec"
        return dse_report_rows(doc, m), m != "eval_seconds", m
    if "benchmarks" in doc:
        m = metric or "real_time"
        return gbench_rows(doc, m), False, m
    raise SystemExit("unrecognized benchmark schema in input")


def main():
    ap = argparse.ArgumentParser(
        description="Diff two BENCH_*.json files; non-zero exit on "
                    "regression beyond the tolerance.")
    ap.add_argument("baseline")
    ap.add_argument("new")
    ap.add_argument("--tolerance", type=float, default=10.0,
                    help="allowed regression in percent (default 10)")
    ap.add_argument("--metric", default=None,
                    help="metric to compare (default: "
                         "products_per_sec for throughput files, "
                         "real_time for google-benchmark files)")
    args = ap.parse_args()

    base_doc, new_doc = load(args.baseline), load(args.new)
    base, base_hib, metric = extract(base_doc, args.metric)
    new, new_hib, _ = extract(new_doc, args.metric)
    if base_hib != new_hib:
        raise SystemExit("baseline and new file disagree on metric "
                         "direction")
    higher_is_better = base_hib

    shared = sorted(set(base) & set(new))
    if not shared:
        raise SystemExit("no shared benchmark keys between %s and %s"
                         % (args.baseline, args.new))
    only_base = sorted(set(base) - set(new))
    only_new = sorted(set(new) - set(base))

    width = max(len(k) for k in shared)
    print("metric: %s (%s is better), tolerance: %.1f%%"
          % (metric, "higher" if higher_is_better else "lower",
             args.tolerance))
    regressions = []
    for key in shared:
        old_v, new_v = base[key], new[key]
        if old_v == 0:
            delta = 0.0
        elif higher_is_better:
            delta = (new_v / old_v - 1.0) * 100.0
        else:
            delta = (old_v / new_v - 1.0) * 100.0
        # delta > 0 means improvement in both directions.
        regressed = delta < -args.tolerance
        status = "REGRESSION" if regressed else (
            "improved" if delta > args.tolerance else "ok")
        if regressed:
            regressions.append(key)
        print("  %-*s  %14.6g -> %14.6g  %+7.1f%%  %s"
              % (width, key, old_v, new_v, delta, status))
    for key in only_base:
        print("  %-*s  (baseline only, skipped)" % (width, key))
    for key in only_new:
        print("  %-*s  (new only, skipped)" % (width, key))

    if regressions:
        print("FAIL: %d key(s) regressed more than %.1f%%: %s"
              % (len(regressions), args.tolerance,
                 ", ".join(regressions)))
        return 1
    print("PASS: no regression beyond %.1f%% across %d shared key(s)"
          % (args.tolerance, len(shared)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
