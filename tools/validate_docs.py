#!/usr/bin/env python3
"""Validate the documentation layer against the real implementation.

Four checks over README.md and docs/*.md:

1. Every fenced ```json block must parse as a standalone JSON
   document (the same parser ``python3 -m json.tool`` uses), so the
   worked examples in docs/PROTOCOL.md cannot rot into
   pseudo-JSON.
2. Every fenced ```jsonl block is piped line-by-line through a live
   ``scnn_serve`` process (``--serve-bin``): the server must produce
   exactly one reply line per input line, and every reply must be
   well-formed -- parseable JSON carrying a recognized ``schema``
   (``scnn.simulation_response.v1``, ``scnn.service_error.v1`` or
   ``scnn.service_pong.v1``).
   Request-line examples are therefore executable, not illustrative.
3. Every relative markdown link must resolve to an existing file
   (anchors stripped; http/https/mailto links skipped), so
   cross-references between the docs cannot silently break.
4. The committed example weight manifest
   (``examples/data/tiny_res.scnnwm``) is parsed byte-for-byte
   against the ``SCNNWMF1`` layout documented in docs/PROTOCOL.md,
   so the documented format cannot drift from the implementation.

Exits non-zero on the first category of failure, after printing every
finding.

Usage:
  tools/validate_docs.py [--serve-bin=build/scnn_serve] [--repo=.]
"""

import argparse
import json
import math
import os
import re
import struct
import subprocess
import sys

REPLY_SCHEMAS = {"scnn.simulation_response.v1",
                 "scnn.service_error.v1",
                 "scnn.service_pong.v1"}

FENCE_RE = re.compile(r"^```(\w*)\s*$")
# [text](target) -- skips images' extra ! harmlessly; ignores
# reference-style links, which the docs do not use.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def doc_files(repo):
    files = [os.path.join(repo, "README.md")]
    docs = os.path.join(repo, "docs")
    if os.path.isdir(docs):
        files += sorted(
            os.path.join(docs, f) for f in os.listdir(docs)
            if f.endswith(".md"))
    return [f for f in files if os.path.isfile(f)]


def fenced_blocks(path):
    """Yield (language, first_line_number, text) per fenced block."""
    lang, start, lines = None, 0, []
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            m = FENCE_RE.match(line)
            if m and lang is None:
                lang, start, lines = m.group(1), lineno, []
            elif line.rstrip("\n").strip() == "```" and lang is not None:
                yield lang, start, "".join(lines)
                lang = None
            elif lang is not None:
                lines.append(line)
    if lang is not None:
        raise SystemExit("%s: unclosed code fence at line %d"
                         % (path, start))


def check_json_blocks(files):
    errors = []
    count = 0
    for path in files:
        for lang, lineno, text in fenced_blocks(path):
            if lang != "json":
                continue
            count += 1
            try:
                json.loads(text)
            except ValueError as e:
                errors.append("%s:%d: invalid JSON block: %s"
                              % (path, lineno, e))
    print("json blocks: %d checked, %d invalid" % (count, len(errors)))
    return errors


def check_jsonl_blocks(files, serve_bin):
    errors = []
    blocks = 0
    for path in files:
        for lang, lineno, text in fenced_blocks(path):
            if lang != "jsonl":
                continue
            blocks += 1
            requests = [l for l in text.splitlines() if l.strip()]
            proc = subprocess.run(
                [serve_bin], input="\n".join(requests) + "\n",
                capture_output=True, text=True, timeout=600)
            if proc.returncode != 0:
                errors.append(
                    "%s:%d: scnn_serve exited %d on the example "
                    "block:\n%s"
                    % (path, lineno, proc.returncode, proc.stderr))
                continue
            replies = proc.stdout.splitlines()
            if len(replies) != len(requests):
                errors.append(
                    "%s:%d: %d request line(s) produced %d reply "
                    "line(s)"
                    % (path, lineno, len(requests), len(replies)))
                continue
            for i, reply in enumerate(replies):
                try:
                    doc = json.loads(reply)
                except ValueError as e:
                    errors.append("%s:%d: reply %d is not JSON: %s"
                                  % (path, lineno, i, e))
                    continue
                schema = doc.get("schema")
                if schema not in REPLY_SCHEMAS:
                    errors.append(
                        "%s:%d: reply %d has unrecognized schema %r"
                        % (path, lineno, i, schema))
    print("jsonl blocks: %d driven through %s, %d failure(s)"
          % (blocks, serve_bin, len(errors)))
    return errors


def check_links(files, repo):
    errors = []
    count = 0
    for path in files:
        in_fence = False
        with open(path) as f:
            for lineno, line in enumerate(f, 1):
                if line.startswith("```"):
                    in_fence = not in_fence
                    continue
                if in_fence:
                    continue
                for target in LINK_RE.findall(line):
                    if target.startswith(("http://", "https://",
                                          "mailto:", "#")):
                        continue
                    count += 1
                    rel = target.split("#", 1)[0]
                    resolved = os.path.normpath(
                        os.path.join(os.path.dirname(path), rel))
                    if not os.path.exists(resolved):
                        errors.append(
                            "%s:%d: broken link '%s' (-> %s)"
                            % (path, lineno, target,
                               os.path.relpath(resolved, repo)))
    print("intra-repo links: %d checked, %d broken"
          % (count, len(errors)))
    return errors


def check_example_manifest(repo):
    """Parse the committed example manifest per the SCNNWMF1 layout
    documented in docs/PROTOCOL.md (independent reimplementation: any
    drift between the docs, this parser and src/nn/manifest.cc
    surfaces here)."""
    path = os.path.join(repo, "examples", "data", "tiny_res.scnnwm")
    if not os.path.isfile(path):
        return ["missing example manifest %s" % path]
    with open(path, "rb") as f:
        data = f.read()
    errors = []
    count = 0
    try:
        if data[:8] != b"SCNNWMF1":
            raise ValueError("bad magic %r" % data[:8])
        (count,) = struct.unpack_from("<I", data, 8)
        off = 12
        names = []
        for i in range(count):
            (name_len,) = struct.unpack_from("<I", data, off)
            off += 4
            if not 1 <= name_len <= 4096:
                raise ValueError("entry %d: name length %d"
                                 % (i, name_len))
            name = data[off:off + name_len].decode("utf-8")
            off += name_len
            k, c, r, s = struct.unpack_from("<IIII", data, off)
            off += 16
            (density,) = struct.unpack_from("<d", data, off)
            off += 8
            if density > 1.0 or math.isnan(density):
                raise ValueError("entry %r: density %r"
                                 % (name, density))
            if min(k, c, r, s) < 1:
                raise ValueError("entry %r: dims %r"
                                 % (name, (k, c, r, s)))
            off += k * c * r * s * 4
            if off > len(data):
                raise ValueError("entry %r: truncated tensor" % name)
            names.append(name)
        if off != len(data):
            raise ValueError("%d trailing byte(s)" % (len(data) - off))
        if len(set(names)) != len(names):
            raise ValueError("duplicate entry names")
    except (ValueError, struct.error) as e:
        errors.append("%s: does not match the documented SCNNWMF1 "
                      "layout: %s" % (os.path.relpath(path, repo), e))
    print("example manifest: %d entries parsed, %d error(s)"
          % (count if not errors else 0, len(errors)))
    return errors


def main():
    ap = argparse.ArgumentParser(
        description="Validate docs examples and links against the "
                    "implementation.")
    ap.add_argument("--serve-bin", default="build/scnn_serve",
                    help="scnn_serve binary for jsonl example blocks")
    ap.add_argument("--repo", default=".",
                    help="repository root (default: cwd)")
    args = ap.parse_args()

    files = doc_files(args.repo)
    if not files:
        raise SystemExit("no documentation files found under %s"
                         % args.repo)
    print("validating: %s" % ", ".join(
        os.path.relpath(f, args.repo) for f in files))

    errors = check_json_blocks(files)
    if not os.path.exists(args.serve_bin):
        raise SystemExit("scnn_serve binary not found at %s "
                         "(build it or pass --serve-bin)"
                         % args.serve_bin)
    errors += check_jsonl_blocks(files, args.serve_bin)
    errors += check_links(files, args.repo)
    errors += check_example_manifest(args.repo)

    for e in errors:
        print("FAIL: %s" % e)
    if errors:
        print("FAIL: %d documentation error(s)" % len(errors))
        return 1
    print("PASS: all documentation examples and links are valid")
    return 0


if __name__ == "__main__":
    sys.exit(main())
