/**
 * @file
 * scnn_faultproxy: a deterministic fault-injecting TCP proxy for
 * chaos-testing the serving fleet.
 *
 * The proxy accepts connections and relays them to one upstream
 * (host:port).  Each accepted connection draws a *fault plan* from a
 * seeded Rng keyed by the connection's accept index, so the exact
 * sequence of injected faults is a pure function of --seed -- a chaos
 * test can replay an identical run, and two clients connecting in the
 * same order see the same misbehaviour.  The drawn plan is logged to
 * stderr ("faultproxy: conn 3: reset after 64 bytes") so harnesses
 * can assert on the sequence.
 *
 * Fault kinds (weighted by the --p-* flags; weights need not sum
 * to 1):
 *
 *  - pass:      relay both directions untouched until EOF.
 *  - delay:     relay, but sit on the first upstream reply chunk for
 *               --delay-ms (a slow shard, not a dead one).
 *  - truncate:  relay until --fault-after upstream->client bytes,
 *               then close both sides (FIN mid-reply).
 *  - reset:     like truncate, but close with SO_LINGER 0 so the
 *               client sees a hard RST instead of EOF.
 *  - blackhole: accept and swallow: client bytes are read and
 *               discarded, nothing is ever relayed or answered, the
 *               connection holds open until the client gives up (the
 *               client-side read-timeout path).
 *
 * Usage:
 *   scnn_faultproxy --upstream=host:port [--listen=[host:]port]
 *                   [--port-file=path] [--seed=N]
 *                   [--p-pass=W] [--p-delay=W] [--p-truncate=W]
 *                   [--p-reset=W] [--p-blackhole=W]
 *                   [--delay-ms=X] [--fault-after=BYTES]
 *
 * Defaults: pass weight 1, every fault weight 0 (a transparent
 * proxy), --delay-ms=100, --fault-after=64, --seed=1.  --listen=0
 * binds an ephemeral port; --port-file publishes it (one decimal
 * line) once listening.  Exit status 0 on SIGTERM/SIGINT, 1 on
 * startup errors, 2 on bad usage.
 */

#include <arpa/inet.h>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <netinet/in.h>
#include <poll.h>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "sim/frontend.hh"

using namespace scnn;

namespace {

enum class Fault { Pass, Delay, Truncate, Reset, Blackhole };

const char *
faultName(Fault f)
{
    switch (f) {
      case Fault::Pass: return "pass";
      case Fault::Delay: return "delay";
      case Fault::Truncate: return "truncate";
      case Fault::Reset: return "reset";
      case Fault::Blackhole: return "blackhole";
    }
    panic("bad Fault %d", (int)f);
}

struct Options
{
    std::string listenHost = "127.0.0.1";
    int listenPort = 0;
    std::string upstreamHost = "127.0.0.1";
    int upstreamPort = -1;
    std::string portFile;
    uint64_t seed = 1;
    double weights[5] = {1.0, 0.0, 0.0, 0.0, 0.0}; ///< Fault order
    double delayMs = 100.0;
    uint64_t faultAfterBytes = 64;
};

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --upstream=host:port [--listen=[host:]port]\n"
        "          [--port-file=path] [--seed=N]\n"
        "          [--p-pass=W] [--p-delay=W] [--p-truncate=W]\n"
        "          [--p-reset=W] [--p-blackhole=W]\n"
        "          [--delay-ms=X] [--fault-after=BYTES]\n",
        argv0);
    std::exit(2);
}

bool
consume(const char *arg, const char *key, std::string &out)
{
    const size_t n = std::strlen(key);
    if (std::strncmp(arg, key, n) == 0 && arg[n] == '=') {
        out = arg + n + 1;
        return true;
    }
    return false;
}

void
parseHostPort(const std::string &spec, const char *flag,
              std::string &host, int &port)
{
    std::string portPart = spec;
    const size_t colon = spec.rfind(':');
    if (colon != std::string::npos) {
        host = spec.substr(0, colon);
        portPart = spec.substr(colon + 1);
        if (host.empty())
            fatal("bad %s value '%s' (empty host)", flag, spec.c_str());
    }
    char *end = nullptr;
    const long p = std::strtol(portPart.c_str(), &end, 10);
    if (end == portPart.c_str() || *end != '\0' || p < 0 || p > 65535)
        fatal("bad %s value '%s' (want [host:]port)", flag,
              spec.c_str());
    port = static_cast<int>(p);
}

double
parseWeight(const std::string &v, const char *flag)
{
    char *end = nullptr;
    const double w = std::strtod(v.c_str(), &end);
    if (end == v.c_str() || *end != '\0' || !(w >= 0.0))
        fatal("bad %s value '%s' (want a non-negative weight)", flag,
              v.c_str());
    return w;
}

Options
parse(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        std::string v;
        if (consume(argv[i], "--listen", v)) {
            parseHostPort(v, "--listen", o.listenHost, o.listenPort);
        } else if (consume(argv[i], "--upstream", v)) {
            parseHostPort(v, "--upstream", o.upstreamHost,
                          o.upstreamPort);
        } else if (consume(argv[i], "--port-file", v)) {
            if (v.empty())
                fatal("bad --port-file value (empty path)");
            o.portFile = v;
        } else if (consume(argv[i], "--seed", v)) {
            char *end = nullptr;
            o.seed = std::strtoull(v.c_str(), &end, 10);
            if (end == v.c_str() || *end != '\0')
                fatal("bad --seed value '%s'", v.c_str());
        } else if (consume(argv[i], "--p-pass", v)) {
            o.weights[0] = parseWeight(v, "--p-pass");
        } else if (consume(argv[i], "--p-delay", v)) {
            o.weights[1] = parseWeight(v, "--p-delay");
        } else if (consume(argv[i], "--p-truncate", v)) {
            o.weights[2] = parseWeight(v, "--p-truncate");
        } else if (consume(argv[i], "--p-reset", v)) {
            o.weights[3] = parseWeight(v, "--p-reset");
        } else if (consume(argv[i], "--p-blackhole", v)) {
            o.weights[4] = parseWeight(v, "--p-blackhole");
        } else if (consume(argv[i], "--delay-ms", v)) {
            char *end = nullptr;
            o.delayMs = std::strtod(v.c_str(), &end);
            if (end == v.c_str() || *end != '\0' || !(o.delayMs >= 0.0))
                fatal("bad --delay-ms value '%s'", v.c_str());
        } else if (consume(argv[i], "--fault-after", v)) {
            char *end = nullptr;
            o.faultAfterBytes = std::strtoull(v.c_str(), &end, 10);
            if (end == v.c_str() || *end != '\0')
                fatal("bad --fault-after value '%s'", v.c_str());
        } else {
            usage(argv[0]);
        }
    }
    if (o.upstreamPort < 0)
        usage(argv[0]);
    double total = 0.0;
    for (double w : o.weights)
        total += w;
    if (total <= 0.0)
        fatal("all fault weights are zero; nothing to do");
    return o;
}

/** Deterministic fault draw for the `conn`-th accepted connection. */
Fault
drawFault(const Options &o, uint64_t conn)
{
    double total = 0.0;
    for (double w : o.weights)
        total += w;
    Rng rng(strfmt("faultproxy/conn %llu",
                   static_cast<unsigned long long>(conn)),
            o.seed);
    double x = rng.uniform(0.0, total);
    for (int k = 0; k < 5; ++k) {
        x -= o.weights[k];
        if (x < 0.0)
            return static_cast<Fault>(k);
    }
    return Fault::Pass; // FP edge: x landed exactly on `total`
}

int
dialUpstream(const Options &o, std::string &error)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        error = strfmt("socket: %s", std::strerror(errno));
        return -1;
    }
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(o.upstreamPort));
    if (inet_pton(AF_INET, o.upstreamHost.c_str(), &addr.sin_addr) !=
        1) {
        error = strfmt("bad upstream host '%s'",
                       o.upstreamHost.c_str());
        ::close(fd);
        return -1;
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        error = strfmt("cannot connect upstream %s:%d: %s",
                       o.upstreamHost.c_str(), o.upstreamPort,
                       std::strerror(errno));
        ::close(fd);
        return -1;
    }
    return fd;
}

/** Hard-close: SO_LINGER 0 turns the close into an RST. */
void
closeWithReset(int fd)
{
    struct linger lg = {1, 0};
    setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
    ::close(fd);
}

/**
 * Swallow the client: read and discard forever, answer nothing.
 * Ends when the client closes (or errors out of) its side.
 */
void
runBlackhole(int clientFd)
{
    char chunk[4096];
    for (;;) {
        const ssize_t n = ::read(clientFd, chunk, sizeof(chunk));
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            return;
    }
}

/**
 * Relay client<->upstream with the fault plan applied to the
 * upstream->client direction.  `budget` is the number of reply bytes
 * relayed before a truncate/reset fires; `delayFirst` sits on the
 * first reply chunk.  Returns true when the connection should close
 * with an RST rather than a FIN.
 */
bool
runRelay(int clientFd, int upstreamFd, Fault fault,
         const Options &o)
{
    uint64_t replyBytes = 0;
    bool delayed = false;
    bool clientOpen = true, upstreamOpen = true;
    while (clientOpen || upstreamOpen) {
        struct pollfd fds[2] = {
            {clientOpen ? clientFd : -1, POLLIN, 0},
            {upstreamOpen ? upstreamFd : -1, POLLIN, 0}};
        if (::poll(fds, 2, -1) < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        char chunk[4096];
        if (clientOpen &&
            (fds[0].revents & (POLLIN | POLLHUP | POLLERR))) {
            const ssize_t n = ::read(clientFd, chunk, sizeof(chunk));
            if (n < 0 && errno == EINTR)
                continue;
            if (n <= 0) {
                // Client finished sending; half-close toward the
                // upstream so its EOF propagates, keep draining
                // replies.
                ::shutdown(upstreamFd, SHUT_WR);
                clientOpen = false;
            } else if (!writeAllFd(upstreamFd, chunk,
                                   static_cast<size_t>(n))) {
                return false; // upstream gone; FIN the client
            }
        }
        if (upstreamOpen &&
            (fds[1].revents & (POLLIN | POLLHUP | POLLERR))) {
            const ssize_t n = ::read(upstreamFd, chunk, sizeof(chunk));
            if (n < 0 && errno == EINTR)
                continue;
            if (n <= 0) {
                ::shutdown(clientFd, SHUT_WR);
                upstreamOpen = false;
                continue;
            }
            if (fault == Fault::Delay && !delayed) {
                delayed = true;
                std::this_thread::sleep_for(
                    std::chrono::duration<double, std::milli>(
                        o.delayMs));
            }
            size_t toSend = static_cast<size_t>(n);
            if (fault == Fault::Truncate || fault == Fault::Reset) {
                // The fault budget caps total relayed reply bytes.
                if (replyBytes >= o.faultAfterBytes)
                    return fault == Fault::Reset;
                toSend = std::min<size_t>(
                    toSend, o.faultAfterBytes - replyBytes);
            }
            if (!writeAllFd(clientFd, chunk, toSend))
                return false; // client gone
            replyBytes += toSend;
            if ((fault == Fault::Truncate || fault == Fault::Reset) &&
                replyBytes >= o.faultAfterBytes)
                return fault == Fault::Reset;
        }
    }
    return false;
}

void
serveConnection(const Options &o, int clientFd, uint64_t connNo)
{
    const Fault fault = drawFault(o, connNo);
    std::fprintf(stderr, "faultproxy: conn %llu: %s\n",
                 static_cast<unsigned long long>(connNo),
                 faultName(fault));

    if (fault == Fault::Blackhole) {
        runBlackhole(clientFd);
        ::close(clientFd);
        return;
    }
    std::string error;
    const int upstreamFd = dialUpstream(o, error);
    if (upstreamFd < 0) {
        warn("faultproxy: conn %llu: %s",
             static_cast<unsigned long long>(connNo), error.c_str());
        closeWithReset(clientFd);
        return;
    }
    const bool rst = runRelay(clientFd, upstreamFd, fault, o);
    ::close(upstreamFd);
    if (rst)
        closeWithReset(clientFd);
    else
        ::close(clientFd);
}

} // namespace

int
main(int argc, char **argv)
{
    const Options o = parse(argc, argv);
    // Clients vanish by design here; writes must fail, not signal.
    ignoreSigpipe();

    const int listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd < 0)
        fatal("socket: %s", std::strerror(errno));
    const int one = 1;
    setsockopt(listenFd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(o.listenPort));
    if (inet_pton(AF_INET, o.listenHost.c_str(), &addr.sin_addr) != 1)
        fatal("bad --listen host '%s' (want an IPv4 address)",
              o.listenHost.c_str());
    if (bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
             sizeof(addr)) != 0 ||
        listen(listenFd, 128) != 0)
        fatal("cannot listen on %s:%d: %s", o.listenHost.c_str(),
              o.listenPort, std::strerror(errno));
    socklen_t len = sizeof(addr);
    if (getsockname(listenFd, reinterpret_cast<sockaddr *>(&addr),
                    &len) != 0)
        fatal("getsockname failed: %s", std::strerror(errno));
    const int boundPort = ntohs(addr.sin_port);
    if (!o.portFile.empty() &&
        !writeJsonFile(o.portFile, std::to_string(boundPort)))
        fatal("cannot write --port-file '%s'", o.portFile.c_str());
    std::fprintf(stderr,
                 "faultproxy: %s:%d -> %s:%d (seed %llu)\n",
                 o.listenHost.c_str(), boundPort,
                 o.upstreamHost.c_str(), o.upstreamPort,
                 static_cast<unsigned long long>(o.seed));

    uint64_t connNo = 0;
    for (;;) {
        const int fd = accept(listenFd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            fatal("accept failed: %s", std::strerror(errno));
        }
        // Detached: connections are independent, and the proxy's
        // lifetime is its harness's problem (SIGTERM ends it).
        std::thread([o, fd, connNo] {
            serveConnection(o, fd, connNo);
        }).detach();
        ++connNo;
    }
}
