/**
 * @file
 * scnn_dse: design-space exploration over the accelerator
 * configuration space (src/dse).
 *
 * Usage:
 *   scnn_dse --spec=spec.json [--network=tiny|alexnet|googlenet|vgg16]
 *            [--strategy=grid|random|evolve] [--seed=N]
 *            [--max-points=N] [--prune-factor=X] [--batch=N]
 *            [--checkpoint=path] [--stop-after=N] [--shard=i/N]
 *            [--connect=host:port[,host:port...]]
 *            [--io-timeout-ms=X]
 *            [--workers=N] [--session-threads=N]
 *            [--top-k=K] [--json[=path]] [--quiet] [--threads=N]
 *
 * The sweep space comes from a scnn.dse_spec.v1 JSON file (--spec).
 * Candidates flow through the analytic funnel; survivors are fully
 * simulated either in-process (default; --workers concurrent
 * sessions) or remotely against a fleet of `scnn_serve --listen`
 * shards (--connect, one endpoint per shard in shard order, routed
 * via shardForRequest).  --checkpoint makes the sweep resumable:
 * re-running the identical command continues where the previous run
 * stopped.  --stop-after=N stops after N newly checkpointed points
 * and exits 3 (the kill+resume tests and operators use this to bound
 * a run); --shard=i/N splits a grid/random enumeration across
 * processes.
 *
 * --json emits a scnn.dse_report.v1 document (stdout, or a file with
 * --json=path): funnel accounting, the Pareto frontier over (cycles,
 * energy_pj, area_mm2), and the top --top-k non-dominated ranks.
 *
 * Exit status: 0 complete, 1 runtime failure, 2 bad usage, 3 stopped
 * early by --stop-after (checkpoint left resumable).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/table.hh"
#include "dse/sweep.hh"
#include "sim/frontend.hh"
#include "sim/simulator.hh"

using namespace scnn;

namespace {

struct Options
{
    std::string specPath;
    std::string network = "tiny";
    SweepStrategy strategy = SweepStrategy::Grid;
    uint64_t seed = 1;
    uint64_t maxPoints = 0;
    double pruneFactor = 1.25;
    int batchSize = 16;
    std::string checkpointPath;
    uint64_t stopAfter = 0;
    int shardIndex = 0;
    int shardCount = 1;
    std::vector<std::string> endpoints; // empty: in-process
    double ioTimeoutMs = 0.0; ///< 0: RemoteEvalOptions default
    int workers = 2;
    int sessionThreads = 1;
    int topK = 3;
    bool json = false;
    std::string jsonPath; // empty: stdout
    bool quiet = false;
};

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --spec=spec.json\n"
        "          [--network=tiny|alexnet|googlenet|vgg16]\n"
        "          [--strategy=grid|random|evolve] [--seed=N]\n"
        "          [--max-points=N] [--prune-factor=X] [--batch=N]\n"
        "          [--checkpoint=path] [--stop-after=N] "
        "[--shard=i/N]\n"
        "          [--connect=host:port[,host:port...]]\n"
        "          [--io-timeout-ms=X]\n"
        "          [--workers=N] [--session-threads=N]\n"
        "          [--top-k=K] [--json[=path]] [--quiet] "
        "[--threads=N]\n",
        argv0);
    std::exit(2);
}

bool
consume(const char *arg, const char *key, std::string &out)
{
    const size_t n = std::strlen(key);
    if (std::strncmp(arg, key, n) == 0 && arg[n] == '=') {
        out = arg + n + 1;
        return true;
    }
    return false;
}

uint64_t
parseU64(const std::string &v, const char *flag)
{
    char *end = nullptr;
    const unsigned long long n = std::strtoull(v.c_str(), &end, 10);
    if (end == v.c_str() || *end != '\0')
        fatal("bad %s value '%s' (want a non-negative integer)", flag,
              v.c_str());
    return n;
}

int
parsePositive(const std::string &v, const char *flag)
{
    const uint64_t n = parseU64(v, flag);
    if (n == 0 || n > 4096)
        fatal("bad %s value '%s' (want an integer in [1, 4096])", flag,
              v.c_str());
    return static_cast<int>(n);
}

Options
parse(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        std::string v;
        if (consume(argv[i], "--spec", v)) {
            o.specPath = v;
        } else if (consume(argv[i], "--network", v)) {
            o.network = v;
        } else if (consume(argv[i], "--strategy", v)) {
            if (!sweepStrategyFromName(v, o.strategy))
                fatal("bad --strategy value '%s' (want "
                      "grid|random|evolve)", v.c_str());
        } else if (consume(argv[i], "--seed", v)) {
            o.seed = parseU64(v, "--seed");
        } else if (consume(argv[i], "--max-points", v)) {
            o.maxPoints = parseU64(v, "--max-points");
        } else if (consume(argv[i], "--prune-factor", v)) {
            char *end = nullptr;
            o.pruneFactor = std::strtod(v.c_str(), &end);
            if (end == v.c_str() || *end != '\0' ||
                !(o.pruneFactor > 1.0))
                fatal("bad --prune-factor value '%s' (want a number "
                      "> 1)", v.c_str());
        } else if (consume(argv[i], "--batch", v)) {
            o.batchSize = parsePositive(v, "--batch");
        } else if (consume(argv[i], "--checkpoint", v)) {
            if (v.empty())
                fatal("bad --checkpoint value (empty path)");
            o.checkpointPath = v;
        } else if (consume(argv[i], "--stop-after", v)) {
            o.stopAfter = parseU64(v, "--stop-after");
        } else if (consume(argv[i], "--shard", v)) {
            if (std::sscanf(v.c_str(), "%d/%d", &o.shardIndex,
                            &o.shardCount) != 2 ||
                o.shardIndex < 0 || o.shardCount <= 0 ||
                o.shardIndex >= o.shardCount)
                fatal("bad --shard value '%s' (want i/N with "
                      "0 <= i < N)", v.c_str());
        } else if (consume(argv[i], "--connect", v)) {
            size_t pos = 0;
            while (pos <= v.size()) {
                const size_t comma = v.find(',', pos);
                const std::string endpoint = v.substr(
                    pos, comma == std::string::npos ? std::string::npos
                                                    : comma - pos);
                if (endpoint.empty())
                    fatal("bad --connect value '%s' (empty endpoint)",
                          v.c_str());
                o.endpoints.push_back(endpoint);
                if (comma == std::string::npos)
                    break;
                pos = comma + 1;
            }
        } else if (consume(argv[i], "--io-timeout-ms", v)) {
            char *end = nullptr;
            o.ioTimeoutMs = std::strtod(v.c_str(), &end);
            if (end == v.c_str() || *end != '\0' ||
                !(o.ioTimeoutMs >= 0.0)) {
                fatal("bad --io-timeout-ms value '%s' (want a "
                      "non-negative number of milliseconds)",
                      v.c_str());
            }
        } else if (consume(argv[i], "--workers", v)) {
            o.workers = parsePositive(v, "--workers");
        } else if (consume(argv[i], "--session-threads", v)) {
            o.sessionThreads = parsePositive(v, "--session-threads");
        } else if (consume(argv[i], "--top-k", v)) {
            o.topK = parsePositive(v, "--top-k");
        } else if (consume(argv[i], "--json", v)) {
            o.json = true;
            o.jsonPath = v;
        } else if (std::strcmp(argv[i], "--json") == 0) {
            o.json = true;
        } else if (std::strcmp(argv[i], "--quiet") == 0) {
            o.quiet = true;
        } else {
            usage(argv[0]);
        }
    }
    if (o.specPath.empty()) {
        std::fprintf(stderr, "%s: --spec is required\n", argv[0]);
        usage(argv[0]);
    }
    return o;
}

void
writeFrontierPoints(JsonWriter &w, const std::vector<DsePoint> &points)
{
    w.beginArray();
    for (const DsePoint &p : points) {
        w.beginObject();
        w.key("point").value(p.id);
        w.key("indices").beginArray();
        for (int idx : p.indices)
            w.value(idx);
        w.endArray();
        w.key("cycles").value(p.cycles);
        w.key("energy_pj").value(p.energyPj);
        w.key("area_mm2").value(p.areaMm2);
        w.endObject();
    }
    w.endArray();
}

std::string
reportJson(const Options &o, const SweepSpec &spec,
           const DseEvaluator &evaluator, const SweepOutcome &outcome)
{
    const FunnelStats &s = outcome.stats;
    JsonWriter w;
    w.beginObject();
    w.key("schema").value("scnn.dse_report.v1");
    w.key("spec").value(spec.name);
    w.key("network").value(o.network);
    w.key("strategy").value(sweepStrategyName(o.strategy));
    w.key("seed").value(o.seed);
    w.key("prune_factor").value(o.pruneFactor);
    w.key("transport").value(evaluator.describe());
    w.key("shard").beginObject();
    w.key("index").value(o.shardIndex);
    w.key("count").value(o.shardCount);
    w.endObject();
    w.key("stopped_early").value(outcome.stoppedEarly);
    w.key("funnel").beginObject();
    w.key("candidates").value(s.candidates);
    w.key("resumed").value(s.resumed);
    w.key("invalid").value(s.invalid);
    w.key("pruned").value(s.pruned);
    w.key("simulated").value(s.simulated);
    w.key("errors").value(s.errors);
    w.key("eval_seconds").value(s.evalSeconds);
    w.key("survivors_per_sec")
        .value(s.evalSeconds > 0.0
                   ? static_cast<double>(s.simulated) / s.evalSeconds
                   : 0.0);
    // What the transport survived: all zero for a clean in-process
    // run, nonzero when the fleet shed, dropped connections or lost
    // shards mid-sweep.  The frontier is identical either way.
    const FaultStats faults = evaluator.faults();
    w.key("faults").beginObject();
    w.key("reconnects").value(faults.reconnects);
    w.key("failovers").value(faults.failovers);
    w.key("retries").value(faults.retries);
    w.endObject();
    w.endObject();
    const std::vector<DsePoint> frontier = outcome.frontier.sorted();
    w.key("frontier_size").value(
        static_cast<uint64_t>(frontier.size()));
    w.key("frontier");
    writeFrontierPoints(w, frontier);
    w.key("fronts").beginArray();
    for (const std::vector<DsePoint> &front :
         paretoFronts(outcome.simulatedPoints, o.topK))
        writeFrontierPoints(w, front);
    w.endArray();
    w.endObject();
    return w.str();
}

void
printSummary(const Options &o, const SweepOutcome &outcome)
{
    const FunnelStats &s = outcome.stats;
    std::printf("funnel: %llu candidates (%llu resumed) -> "
                "%llu invalid, %llu pruned, %llu simulated, "
                "%llu errors\n",
                (unsigned long long)s.candidates,
                (unsigned long long)s.resumed,
                (unsigned long long)s.invalid,
                (unsigned long long)s.pruned,
                (unsigned long long)s.simulated,
                (unsigned long long)s.errors);

    Table t("dse_frontier",
            {"point", "cycles", "energy (pJ)", "area (mm2)"});
    for (const DsePoint &p : outcome.frontier.sorted()) {
        t.addRow({p.id, strfmt("%llu", (unsigned long long)p.cycles),
                  strfmt("%.4g", p.energyPj),
                  strfmt("%.3f", p.areaMm2)});
    }
    std::printf("Pareto frontier (%zu point%s):\n",
                outcome.frontier.size(),
                outcome.frontier.size() == 1 ? "" : "s");
    t.print();
    if (outcome.stoppedEarly)
        std::printf("stopped early after --stop-after=%llu new "
                    "records; re-run to resume\n",
                    (unsigned long long)o.stopAfter);
}

} // namespace

int
main(int argc, char **argv)
{
    argc = consumeThreadsFlag(argc, argv);
    const Options o = parse(argc, argv);
    // A shard dying while we write to it must surface as EPIPE on
    // the write (then reconnect/failover), never kill the sweep.
    ignoreSigpipe();

    SweepSpec spec;
    std::string error;
    if (!loadSweepSpec(o.specPath, spec, error))
        fatal("bad sweep spec %s: %s", o.specPath.c_str(),
              error.c_str());

    Network net;
    if (!networkByName(o.network, net))
        fatal("unknown network '%s' "
              "(want tiny|alexnet|googlenet|vgg16)",
              o.network.c_str());

    std::unique_ptr<DseEvaluator> evaluator;
    if (o.endpoints.empty()) {
        InProcessEvalOptions eo;
        eo.workers = o.workers;
        eo.sessionThreads = o.sessionThreads;
        evaluator = makeInProcessEvaluator(net, 20170624, eo);
    } else {
        RemoteEvalOptions ro;
        if (o.ioTimeoutMs > 0.0)
            ro.ioTimeoutMs = o.ioTimeoutMs;
        evaluator = makeRemoteEvaluator(o.endpoints, o.network,
                                        20170624, error, ro);
        if (!evaluator)
            fatal("cannot connect to the shard fleet: %s",
                  error.c_str());
    }

    SweepOptions so;
    so.strategy = o.strategy;
    so.seed = o.seed;
    so.maxPoints = o.maxPoints;
    so.pruneFactor = o.pruneFactor;
    so.batchSize = o.batchSize;
    so.checkpointPath = o.checkpointPath;
    so.stopAfter = o.stopAfter;
    so.shardIndex = o.shardIndex;
    so.shardCount = o.shardCount;
    if (o.strategy == SweepStrategy::Evolve && o.shardCount != 1)
        fatal("--shard cannot split an evolve sweep (its trajectory "
              "depends on every evaluation)");

    SweepOutcome outcome;
    try {
        outcome = runSweep(spec, net, *evaluator, so);
    } catch (const SimulationError &e) {
        fatal("sweep failed: %s", e.what());
    }

    if (!o.quiet)
        printSummary(o, outcome);
    if (o.json) {
        const std::string doc =
            reportJson(o, spec, *evaluator, outcome);
        if (o.jsonPath.empty())
            std::printf("%s\n", doc.c_str());
        else if (!writeJsonFile(o.jsonPath, doc))
            fatal("cannot write report to '%s'", o.jsonPath.c_str());
    }
    return outcome.stoppedEarly ? 3 : 0;
}
