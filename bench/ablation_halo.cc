/**
 * @file
 * Ablation: output halos (the paper's choice) versus input halos
 * (Section III-A's alternative).  Output halos store each input once
 * but exchange partial sums with neighbours at group boundaries;
 * input halos replicate boundary inputs, recompute edge products and
 * skip the exchange.
 *
 * Finding: for the *dense* dataflow the two are nearly equivalent
 * (dense hardware iterates outputs, so replicated inputs cost only
 * storage), which is the context of the paper's "efficiency
 * difference ... is minimal" remark.  For PT-IS-CP-sparse, however,
 * the Cartesian product multiplies every fetched operand pair, so
 * replicated halo activations generate redundant products that are
 * dropped at the landing check -- and with 64 PEs the halo dominates
 * the tiny tiles.  This bench quantifies that cost, explaining why
 * output halos are the right choice for SCNN specifically.
 */

#include <cstdio>

#include "common/table.hh"
#include "driver/experiments.hh"
#include "nn/model_zoo.hh"
#include "sim/registry.hh"

using namespace scnn;

int
main()
{
    std::printf("Ablation: output halos (paper) vs input halos\n\n");

    AcceleratorConfig outputHalo = scnnConfig();
    AcceleratorConfig inputHalo = scnnConfig();
    inputHalo.pe.inputHalos = true;
    inputHalo.name = "SCNN-inhalo";

    Table t("ablation_halo",
            {"Network", "Cycles (out-halo)", "Cycles (in-halo)",
             "Ratio", "Energy ratio", "Products ratio"});

    for (const Network &net : paperNetworks()) {
        const auto simOut = makeSimulator("scnn", outputHalo);
        const auto simIn = makeSimulator("scnn", inputHalo);
        NetworkRunOptions opts;
        opts.seed = kExperimentSeed;
        const NetworkResult a = simOut->simulateNetwork(net, opts);
        const NetworkResult b = simIn->simulateNetwork(net, opts);

        t.addRow({net.name(), std::to_string(a.totalCycles()),
                  std::to_string(b.totalCycles()),
                  Table::num(static_cast<double>(b.totalCycles()) /
                                 static_cast<double>(a.totalCycles()),
                             3),
                  Table::num(b.totalEnergyPj() / a.totalEnergyPj(), 3),
                  Table::num(static_cast<double>(b.totalProducts()) /
                                 static_cast<double>(a.totalProducts()),
                             3)});
    }
    t.print();
    std::printf("Ratios well above 1.0 show why SCNN uses output "
                "halos: with 64 PEs the replicated input footprint\n"
                "dominates the tiny tiles and the Cartesian product "
                "wastes its slots on dropped neighbour products.\n");
    return 0;
}
