/**
 * @file
 * Simulator throughput benchmark: wall-clock layers/sec and
 * products/sec for whole-network simulation, per backend and worker
 * thread count.  This is the end-to-end complement of the
 * google-benchmark micro kernels: it runs the real session layer
 * (workload synthesis included in setup, excluded from the timed
 * region is nothing -- the timed region is the full runSession call,
 * which is what a serving deployment pays per request).
 *
 * Results go to BENCH_sim_throughput.json (schema
 * scnn.sim_throughput.v1) so successive PRs can track simulator
 * throughput; CI runs a tiny-network smoke and archives the file.
 *
 * Usage:
 *   bench_sim_throughput [--networks=alexnet,googlenet]
 *                        [--backends=scnn,scnn-stats,dcnn-opt,timeloop]
 *                        [--threads-list=1,2,8] [--repeat=N]
 *                        [--out=BENCH_sim_throughput.json]
 *
 * The pseudo-backend "scnn-stats" is the scnn backend with functional
 * outputs disabled (RunOptions::functional = false): the stats-only
 * kernels produce identical timing/energy numbers without touching an
 * accumulator, which is the fast path for pure performance sweeps.
 *
 * With --repeat=N every (network, backend, threads) cell is timed N
 * times and the repeats are *interleaved* across cells -- the sweep
 * runs as N full rounds -- so slow machine-level drift (thermal
 * throttling, a background process) biases every cell equally
 * instead of whichever cell happened to run last.  The headline
 * wall_ms is the median of the N samples; the minimum is reported
 * alongside (schema scnn.sim_throughput.v2) and tools/bench_diff.py
 * compares two such files with a tolerance.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/simd.hh"
#include "common/table.hh"
#include "nn/model_zoo.hh"
#include "sim/registry.hh"
#include "sim/session.hh"

using namespace scnn;

namespace {

struct Options
{
    std::vector<std::string> networks = {"alexnet", "googlenet"};
    std::vector<std::string> backends = {"scnn", "scnn-stats", "dcnn",
                                         "dcnn-opt", "timeloop"};
    std::vector<int> threadsList = {1, 2, 8};
    int repeat = 1;
    uint64_t seed = 20170624;
    std::string out = "BENCH_sim_throughput.json";
};

std::vector<std::string>
splitList(const std::string &csv)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (start <= csv.size()) {
        const size_t comma = csv.find(',', start);
        const size_t end = comma == std::string::npos ? csv.size()
                                                      : comma;
        if (end > start)
            out.push_back(csv.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

bool
consume(const char *arg, const char *key, std::string &out)
{
    const size_t n = std::strlen(key);
    if (std::strncmp(arg, key, n) == 0 && arg[n] == '=') {
        out = arg + n + 1;
        return true;
    }
    return false;
}

Options
parse(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        std::string v;
        if (consume(argv[i], "--networks", v)) {
            o.networks = splitList(v);
        } else if (consume(argv[i], "--backends", v)) {
            o.backends = splitList(v);
        } else if (consume(argv[i], "--threads-list", v)) {
            o.threadsList.clear();
            for (const auto &t : splitList(v))
                o.threadsList.push_back(std::atoi(t.c_str()));
        } else if (consume(argv[i], "--repeat", v)) {
            o.repeat = std::atoi(v.c_str());
        } else if (consume(argv[i], "--seed", v)) {
            o.seed = std::strtoull(v.c_str(), nullptr, 10);
        } else if (consume(argv[i], "--out", v)) {
            o.out = v;
        } else {
            std::fprintf(
                stderr,
                "usage: %s [--networks=a,b] [--backends=a,b]\n"
                "          [--threads-list=1,2,8] [--repeat=N]\n"
                "          [--seed=N] [--out=path.json]\n",
                argv[0]);
            std::exit(2);
        }
    }
    if (o.networks.empty() || o.backends.empty() ||
        o.threadsList.empty() || o.repeat < 1)
        fatal("empty sweep dimension");
    return o;
}

Network
pickNetwork(const std::string &name)
{
    if (name == "alexnet")
        return alexNet();
    if (name == "googlenet")
        return googLeNet();
    if (name == "vgg16")
        return vgg16();
    if (name == "tiny")
        return tinyTestNetwork();
    fatal("unknown network '%s'", name.c_str());
}

struct Measurement
{
    std::string network;
    std::string backend;
    int threads = 0;
    double wallMs = 0.0;    ///< median of the per-round samples
    double wallMsMin = 0.0; ///< fastest round
    std::vector<double> samples;
    uint64_t layers = 0;
    uint64_t products = 0;
    uint64_t cycles = 0;

    double
    layersPerSec() const
    {
        return wallMs > 0.0 ? 1e3 * static_cast<double>(layers) / wallMs
                            : 0.0;
    }

    double
    productsPerSec() const
    {
        return wallMs > 0.0
            ? 1e3 * static_cast<double>(products) / wallMs
            : 0.0;
    }
};

/** Time one full runSession pass of a cell; record the sample. */
void
measureOnce(const Network &net, const std::string &backend,
            int threads, const Options &o, Measurement &m)
{
    SimulationRequest req;
    req.network = net;
    req.seed = o.seed;
    req.threads = threads;
    req.evalOnly = true;
    BackendSpec spec;
    // "scnn-stats" = the scnn engine with the stats-only kernels.
    spec.backend = backend == "scnn-stats" ? "scnn" : backend;
    if (backend == "scnn-stats")
        spec.functional = 0;
    req.backends.push_back(std::move(spec));

    const auto t0 = std::chrono::steady_clock::now();
    const SimulationResponse resp = runSession(req);
    const auto t1 = std::chrono::steady_clock::now();
    const BackendRun &run = resp.runs.front();
    if (!run.ok)
        fatal("backend '%s' failed: %s", backend.c_str(),
              run.error.c_str());
    m.samples.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
    m.layers = run.result.layers.size();
    m.products = run.result.totalProducts();
    m.cycles = run.result.totalCycles();
}

/** Median of the collected samples (mean of the middle pair). */
double
median(std::vector<double> v)
{
    std::sort(v.begin(), v.end());
    const size_t n = v.size();
    return n % 2 == 1 ? v[n / 2]
                      : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

} // namespace

int
main(int argc, char **argv)
{
    argc = consumeThreadsFlag(argc, argv);
    const Options o = parse(argc, argv);

    // One Measurement per sweep cell, then `repeat` interleaved
    // rounds over all cells.
    std::vector<Measurement> results;
    std::vector<Network> nets;
    for (const auto &netName : o.networks)
        nets.push_back(pickNetwork(netName));
    for (size_t ni = 0; ni < nets.size(); ++ni) {
        for (const auto &backend : o.backends) {
            for (int threads : o.threadsList) {
                Measurement m;
                m.network = nets[ni].name();
                m.backend = backend;
                m.threads = threads;
                results.push_back(std::move(m));
            }
        }
    }
    for (int rep = 0; rep < o.repeat; ++rep) {
        size_t cell = 0;
        for (size_t ni = 0; ni < nets.size(); ++ni)
            for (const auto &backend : o.backends)
                for (int threads : o.threadsList)
                    measureOnce(nets[ni], backend, threads, o,
                                results[cell++]);
    }

    Table t("sim_throughput",
            {"Network", "Backend", "Threads", "Wall med (ms)",
             "Wall min (ms)", "Layers/s", "Products/s"});
    for (auto &m : results) {
        m.wallMs = median(m.samples);
        m.wallMsMin =
            *std::min_element(m.samples.begin(), m.samples.end());
        t.addRow({m.network, m.backend, std::to_string(m.threads),
                  Table::num(m.wallMs, 1), Table::num(m.wallMsMin, 1),
                  Table::num(m.layersPerSec(), 1),
                  Table::num(m.productsPerSec(), 0)});
    }
    t.print();

    JsonWriter w;
    w.beginObject();
    w.key("schema").value("scnn.sim_throughput.v2");
    w.key("seed").value(o.seed);
    w.key("repeat").value(o.repeat);
    w.key("simd").value(simd::activeDescription());
    w.key("results").beginArray();
    for (const auto &m : results) {
        w.beginObject();
        w.key("network").value(m.network);
        w.key("backend").value(m.backend);
        w.key("threads").value(m.threads);
        w.key("wall_ms").value(m.wallMs);
        w.key("wall_ms_min").value(m.wallMsMin);
        w.key("layers").value(m.layers);
        w.key("layers_per_sec").value(m.layersPerSec());
        w.key("products").value(m.products);
        w.key("products_per_sec").value(m.productsPerSec());
        w.key("cycles").value(m.cycles);
        w.endObject();
    }
    w.endArray();
    w.endObject();

    if (!writeJsonFile(o.out, w.str()))
        return 1;
    std::printf("\nwrote %s\n", o.out.c_str());
    return 0;
}
