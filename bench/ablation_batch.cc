/**
 * @file
 * Extension study: batch size N (the outermost loop of Fig. 3, which
 * the paper fixes at 1 for inference).  Batching amortizes the
 * per-layer weight broadcast across inputs, which matters most for
 * weight-heavy layers; this bench sweeps N with the TimeLoop model on
 * GoogLeNet and reports per-inference cycles and energy.
 */

#include <cstdio>

#include "common/table.hh"
#include "nn/model_zoo.hh"
#include "nn/workload.hh"
#include "sim/registry.hh"

using namespace scnn;

int
main()
{
    std::printf("Extension: batch-size sweep (GoogLeNet, TimeLoop "
                "analytical model)\n\n");

    const auto model = makeSimulator("timeloop");
    const Network net = googLeNet();

    Table t("ablation_batch",
            {"Batch N", "Cycles / inference", "Energy / inference (uJ)",
             "Weight DRAM share", "Energy vs N=1"});

    double baseEnergy = 0.0;
    for (int n : {1, 2, 4, 8, 16}) {
        double cycles = 0.0;
        double energy = 0.0;
        double wtDram = 0.0;
        double totalDram = 0.0;
        const auto layers = net.evalLayers();
        for (size_t i = 0; i < layers.size(); ++i) {
            RunOptions opts;
            opts.batchN = n;
            opts.firstLayer = (i == 0);
            opts.outputDensityHint = (i + 1 < layers.size())
                ? layers[i + 1].inputDensity : 0.5;
            LayerWorkload shell; // analytic: layer parameters only
            shell.layer = layers[i];
            const LayerResult r = model->simulateLayer(shell, opts);
            cycles += static_cast<double>(r.cycles) / n;
            energy += r.energyPj / n;
            wtDram += static_cast<double>(r.dramWeightBits) / n;
            totalDram += r.events.dramBits / n;
        }
        if (baseEnergy == 0.0)
            baseEnergy = energy;
        t.addRow({std::to_string(n), Table::num(cycles, 0),
                  Table::num(energy / 1e6, 1),
                  Table::num(totalDram > 0 ? wtDram / totalDram : 0.0,
                             2),
                  Table::num(energy / baseEnergy, 3) + "x"});
    }
    t.print();
    std::printf("Per-inference energy falls as the weight broadcast "
                "amortizes; compute-side energy is batch-invariant.\n");
    return 0;
}
