/**
 * @file
 * Reproduces the Section VI-C PE-granularity study: the same 1024
 * multipliers arranged as 2x2 (256 multipliers/PE) up to 8x8 (16
 * multipliers/PE) PE grids, evaluated on GoogLeNet with the
 * cycle-level simulator.
 *
 * Paper result: 64 PEs achieve ~11% speedup over 4 PEs with ~59% vs
 * ~35% math utilization -- intra-PE fragmentation matters more than
 * inter-PE barriers.
 *
 * The paper does not publish how per-PE buffers scale with PE size,
 * and the result direction depends on it, so two scaling assumptions
 * are reported (see EXPERIMENTS.md):
 *  (a) proportional: accumulator capacity grows with the multiplier
 *      array (favours few big PEs -- their tiles fill wide vectors);
 *  (b) fixed accumulator macro: each PE keeps the Table II design's
 *      1024 accumulator entries, forcing big PEs to tiny
 *      output-channel groups on large tiles (reproduces the paper's
 *      direction).
 * Both agree with the paper that barrier-idle time grows with PE
 * count.
 */

#include <cstdio>

#include "common/logging.hh"
#include "common/table.hh"
#include "common/parallel.hh"
#include "driver/experiments.hh"
#include "nn/model_zoo.hh"

using namespace scnn;

namespace {

void
report(const char *label, bool fixedAccum)
{
    const std::vector<std::pair<int, int>> grids = {
        {2, 2}, {2, 4}, {4, 4}, {4, 8}, {8, 8}};
    const std::vector<GranularityPoint> points = peGranularitySweep(
        googLeNet(), grids, kExperimentSeed, fixedAccum);

    Table t(strfmt("sec6c_pe_granularity_%s", label),
            {"PE grid", "MULs/PE", "Cycles", "Math util",
             "PE idle frac", "Speedup vs 2x2"});
    const double base = static_cast<double>(points.front().cycles);
    for (const auto &p : points) {
        t.addRow({strfmt("%dx%d", p.peRows, p.peCols),
                  std::to_string(p.perPeMultipliers),
                  std::to_string(p.cycles),
                  Table::num(p.mathUtilization, 3),
                  Table::num(p.peIdleFraction, 3),
                  Table::num(base / static_cast<double>(p.cycles), 3) +
                      "x"});
    }
    t.print();

    const auto &small = points.front(); // 2x2: 4 PEs
    const auto &large = points.back();  // 8x8: 64 PEs
    std::printf("[%s] 64-PE vs 4-PE speedup: %.2fx (paper ~1.11x); "
                "math utilization %.0f%% vs %.0f%% (paper 59%% vs "
                "35%%)\n\n", label,
                static_cast<double>(small.cycles) /
                    static_cast<double>(large.cycles),
                100.0 * large.mathUtilization,
                100.0 * small.mathUtilization);
}

} // namespace

int
main(int argc, char **argv)
{
    consumeThreadsFlag(argc, argv);
    std::printf("Section VI-C: PE granularity sweep at fixed 1024 "
                "multipliers (GoogLeNet)\n\n");
    report("fixed_accum_macro", true);
    report("proportional", false);
    return 0;
}
