/**
 * @file
 * Datapath-width study: validates Table II's 16-bit multiplier /
 * 24-bit accumulator choice by running representative layers of the
 * three networks through the fixed-point datapath model and
 * reporting quantization error and accumulator saturation across
 * operand/accumulator widths.
 */

#include <cstdio>

#include "common/table.hh"
#include "driver/experiments.hh"
#include "nn/model_zoo.hh"
#include "nn/quantize.hh"
#include "nn/workload.hh"

using namespace scnn;

int
main()
{
    std::printf("Datapath study: operand/accumulator width vs "
                "quantization error (Table II: 16/24 bits)\n\n");

    // One representative mid-network layer per network (small enough
    // to run the dense fixed-point reference).
    const ConvLayerParams layers[] = {
        makeConv("alexnet/conv3", 64, 96, 13, 3, 1, 0.35, 0.42),
        makeConv("googlenet/IC4a_3x3", 96, 104, 14, 3, 1, 0.36,
                 0.48),
        makeConv("vgg/conv4_1", 64, 128, 28, 3, 1, 0.32, 0.35),
    };

    struct W { int data, accum, shift; };
    const W widths[] = {
        {8, 16, 7}, {12, 20, 11}, {16, 24, 15}, {16, 32, 15},
    };

    Table t("quantization_study",
            {"Layer", "Data bits", "Accum bits", "RMS err / RMS ref",
             "Max |err|", "Accum saturations"});
    for (const auto &layer : layers) {
        const LayerWorkload w = makeWorkload(layer, kExperimentSeed);
        for (const auto &[data, accum, shift] : widths) {
            QuantConfig cfg;
            cfg.dataBits = data;
            cfg.accumBits = accum;
            cfg.productShift = shift;
            const QuantStats st =
                quantizedConv(layer, w.input, w.weights, cfg);
            t.addRow({layer.name, std::to_string(data),
                      std::to_string(accum),
                      Table::num(st.referenceRms > 0
                                     ? st.rmsError / st.referenceRms
                                     : 0.0,
                                 5),
                      Table::num(st.maxAbsError, 4),
                      std::to_string(st.accumSaturations)});
        }
    }
    t.print();
    std::printf("The paper's 16/24-bit point keeps relative RMS "
                "error below ~0.5%% with zero saturation;\n8-bit "
                "operands degrade by an order of magnitude.\n");
    return 0;
}
