/**
 * @file
 * Reproduces Table III: SCNN PE area breakdown (TSMC 16 nm estimates)
 * from the calibrated area model, with the paper's published values
 * alongside.
 */

#include <cstdio>

#include "arch/area_model.hh"
#include "common/table.hh"

using namespace scnn;

int
main()
{
    std::printf("Table III: SCNN PE area breakdown\n\n");

    const AcceleratorConfig cfg = scnnConfig();
    const AreaModel model;
    const AreaBreakdown pe = model.peArea(cfg);

    struct Row { const char *key, *label, *size, *paper; };
    const Row rows[] = {
        {"iaram_oaram", "IARAM + OARAM", "20 KB", "0.031"},
        {"weight_fifo", "Weight FIFO", "0.5 KB", "0.004"},
        {"multiplier_array", "Multiplier array", "16 ALUs", "0.008"},
        {"scatter_network", "Scatter network", "16x32 crossbar",
         "0.026"},
        {"accumulator_buffers", "Accumulator buffers", "6 KB", "0.036"},
        {"other", "Other", "-", "0.019"},
    };

    Table t("table3_pe_area",
            {"PE Component", "Size", "Area (mm2)", "Paper (mm2)"});
    for (const auto &r : rows) {
        t.addRow({r.label, r.size,
                  Table::num(pe.components.at(r.key), 3), r.paper});
    }
    t.addRow({"Total", "-", Table::num(pe.total(), 3), "0.123"});

    const AreaBreakdown chip = model.chipArea(cfg);
    t.addRow({"Accelerator total", "64 PEs",
              Table::num(chip.total(), 1), "7.9"});
    t.print();
    return 0;
}
