/**
 * @file
 * Reproduces Figure 8: per-layer and network speedups of SCNN and
 * SCNN(oracle) over the DCNN baseline for AlexNet (8a), GoogLeNet
 * (8b) and VGGNet (8c), from the cycle-level simulators.
 *
 * Paper network-wide results: AlexNet 2.37x, GoogLeNet 2.19x, VGGNet
 * 3.52x (mean 2.7x), with the SCNN-to-oracle gap widening in later
 * layers.
 *
 * Besides the human-readable tables, the run emits
 * BENCH_fig8_performance.json (per-network wall time, simulated
 * cycles, speedups, and the thread count) so successive PRs can track
 * both the model results and the simulator's own performance.
 * --threads=N (or SCNN_THREADS) selects the worker-thread count;
 * simulated results are bit-identical for every value.
 */

#include <chrono>
#include <cstdio>

#include "common/json.hh"
#include "common/parallel.hh"
#include "common/table.hh"
#include "driver/experiments.hh"
#include "nn/model_zoo.hh"

using namespace scnn;

namespace {

const char *
paperSpeedup(const std::string &net)
{
    if (net == "AlexNet")
        return "2.37";
    if (net == "GoogLeNet")
        return "2.19";
    return "3.52";
}

double
elapsedMs(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    consumeThreadsFlag(argc, argv);
    const int threads = resolveThreads();

    std::printf("Figure 8: per-layer speedup over DCNN "
                "(cycle-level simulation, %d threads)\n\n",
                threads);

    JsonWriter json;
    json.beginObject();
    json.key("bench").value("fig8_performance");
    json.key("threads").value(threads);
    json.key("networks").beginArray();

    const auto wall0 = std::chrono::steady_clock::now();
    double meanSpeedup = 0.0;
    int nets = 0;
    for (const Network &net : paperNetworks()) {
        const auto t0 = std::chrono::steady_clock::now();
        const NetworkComparison cmp = compareNetwork(net);
        const double wallMs = elapsedMs(t0);

        Table t("fig8_" + net.name(),
                {"Layer", "DCNN/DCNN-opt", "SCNN", "SCNN(oracle)"});
        for (const auto &l : cmp.layers) {
            t.addRow({l.layerName, "1.00",
                      Table::num(l.speedupScnn(), 2),
                      Table::num(l.speedupOracle(), 2)});
        }
        t.addRow({"all (network)", "1.00",
                  Table::num(cmp.networkSpeedupScnn(), 2),
                  Table::num(cmp.networkSpeedupOracle(), 2)});
        t.print();
        std::printf("  %s network speedup: %.2fx (paper %sx), "
                    "simulated in %.0f ms\n\n",
                    net.name().c_str(), cmp.networkSpeedupScnn(),
                    paperSpeedup(net.name()), wallMs);
        meanSpeedup += cmp.networkSpeedupScnn();
        ++nets;

        json.beginObject();
        json.key("network").value(net.name());
        json.key("wall_ms").value(wallMs);
        json.key("dcnn_cycles").value(cmp.totalDcnnCycles());
        json.key("scnn_cycles").value(cmp.totalScnnCycles());
        json.key("oracle_cycles").value(cmp.totalOracleCycles());
        json.key("speedup_scnn").value(cmp.networkSpeedupScnn());
        json.key("speedup_oracle").value(cmp.networkSpeedupOracle());
        json.endObject();
    }
    std::printf("Mean network speedup: %.2fx (paper ~2.7x)\n",
                meanSpeedup / nets);

    json.endArray();
    json.key("total_wall_ms").value(elapsedMs(wall0));
    json.key("mean_speedup").value(meanSpeedup / nets);
    json.endObject();
    writeJsonFile("BENCH_fig8_performance.json", json.str());
    return 0;
}
