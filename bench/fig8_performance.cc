/**
 * @file
 * Reproduces Figure 8: per-layer and network speedups of SCNN and
 * SCNN(oracle) over the DCNN baseline for AlexNet (8a), GoogLeNet
 * (8b) and VGGNet (8c), from the cycle-level simulators.
 *
 * Paper network-wide results: AlexNet 2.37x, GoogLeNet 2.19x, VGGNet
 * 3.52x (mean 2.7x), with the SCNN-to-oracle gap widening in later
 * layers.
 */

#include <cstdio>

#include "common/table.hh"
#include "driver/experiments.hh"
#include "nn/model_zoo.hh"

using namespace scnn;

namespace {

const char *
paperSpeedup(const std::string &net)
{
    if (net == "AlexNet")
        return "2.37";
    if (net == "GoogLeNet")
        return "2.19";
    return "3.52";
}

} // namespace

int
main()
{
    std::printf("Figure 8: per-layer speedup over DCNN "
                "(cycle-level simulation)\n\n");

    double meanSpeedup = 0.0;
    int nets = 0;
    for (const Network &net : paperNetworks()) {
        const NetworkComparison cmp = compareNetwork(net);

        Table t("fig8_" + net.name(),
                {"Layer", "DCNN/DCNN-opt", "SCNN", "SCNN(oracle)"});
        for (const auto &l : cmp.layers) {
            t.addRow({l.layerName, "1.00",
                      Table::num(l.speedupScnn(), 2),
                      Table::num(l.speedupOracle(), 2)});
        }
        t.addRow({"all (network)", "1.00",
                  Table::num(cmp.networkSpeedupScnn(), 2),
                  Table::num(cmp.networkSpeedupOracle(), 2)});
        t.print();
        std::printf("  %s network speedup: %.2fx (paper %sx)\n\n",
                    net.name().c_str(), cmp.networkSpeedupScnn(),
                    paperSpeedup(net.name()));
        meanSpeedup += cmp.networkSpeedupScnn();
        ++nets;
    }
    std::printf("Mean network speedup: %.2fx (paper ~2.7x)\n",
                meanSpeedup / nets);
    return 0;
}
