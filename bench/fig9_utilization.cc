/**
 * @file
 * Reproduces Figure 9: per-layer average multiplier-array utilization
 * (left axis) and the fraction of cycles PEs spend waiting at the
 * inter-PE barrier at output-channel-group boundaries (right axis).
 *
 * Paper shapes: utilization declines for the later, smaller layers
 * (below ~20% for GoogLeNet IC_5a/IC_5b); barrier-idle fractions grow
 * as working sets shrink.
 */

#include <cstdio>

#include "common/table.hh"
#include "common/parallel.hh"
#include "driver/experiments.hh"
#include "nn/model_zoo.hh"

using namespace scnn;

int
main(int argc, char **argv)
{
    consumeThreadsFlag(argc, argv);
    std::printf("Figure 9: multiplier utilization and PE idle "
                "fraction (SCNN cycle-level simulation)\n\n");

    for (const Network &net : paperNetworks()) {
        const NetworkComparison cmp = compareNetwork(net);
        Table t("fig9_" + net.name(),
                {"Layer", "Mult util", "PE idle frac", "Kc"});
        double utilSum = 0.0;
        double idleSum = 0.0;
        for (const auto &l : cmp.layers) {
            t.addRow({l.layerName,
                      Table::num(l.scnn.multUtilBusy, 3),
                      Table::num(l.scnn.peIdleFraction, 3),
                      Table::num(l.scnn.stats.get("kc"), 0)});
            utilSum += l.scnn.multUtilBusy;
            idleSum += l.scnn.peIdleFraction;
        }
        t.addRow({"mean",
                  Table::num(utilSum / cmp.layers.size(), 3),
                  Table::num(idleSum / cmp.layers.size(), 3), "-"});
        t.print();
    }
    return 0;
}
