/**
 * @file
 * Sustained request throughput of the SimulationService vs the serial
 * runSession() client it wraps.
 *
 * The serial baseline issues R identical requests back-to-back
 * through runSession(), synthesizing the workload from scratch each
 * time (what a loop of standalone clients costs).  The service legs
 * push the same R requests through a SimulationService at 1 / 4 / 16
 * max in-flight sessions, in two flavours:
 *
 *   - "service": both caches on (the deployment default).  Repeat
 *     requests hit the response cache, so the sustained rate measures
 *     the amortization a long-lived service wins over stateless
 *     clients (FSCNN-style: setup work paid once per distinct
 *     request, not per request).
 *   - "service-nodedup": response cache off, workload cache on.
 *     Every request re-simulates; only the tensor synthesis is
 *     amortized.  This is the lower bound the service sustains on a
 *     stream of all-distinct requests that share a network.
 *
 * Every service reply is byte-compared against the serial client's
 * JSON for the same request -- the speedup is only reported if all
 * responses are bit-identical.
 *
 * Usage:
 *   bench_service_throughput [--network=tiny|alexnet|...]
 *       [--requests=N] [--inflight-list=1,4,16]
 *       [--backends=scnn[,dcnn,...]] [--out=path] [--threads=N]
 *
 * Emits a table and a machine-readable JSON document (schema
 * "scnn.service_throughput.v1", default BENCH_service_throughput.json)
 * with requests/sec and speedup per (mode, inflight) cell.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/table.hh"
#include "nn/model_zoo.hh"
#include "sim/service.hh"
#include "sim/session.hh"

using namespace scnn;

namespace {

using Clock = std::chrono::steady_clock;

struct Options
{
    std::string network = "tiny";
    std::string backends = "scnn";
    int requests = 200;
    std::vector<int> inflightList = {1, 4, 16};
    std::string out = "BENCH_service_throughput.json";
};

struct Cell
{
    std::string mode;
    int inflight = 0;
    double wallMs = 0.0;
    double rps = 0.0;
    double speedup = 1.0;
    bool identical = true;
    double responseHitRate = 0.0;
    double workloadHitRate = 0.0;
};

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--network=tiny|alexnet|googlenet|vgg16]\n"
                 "          [--requests=N] [--inflight-list=1,4,16]\n"
                 "          [--backends=scnn[,dcnn,...]] [--out=path]\n"
                 "          [--threads=N]\n",
                 argv0);
    std::exit(2);
}

bool
consume(const char *arg, const char *key, std::string &out)
{
    const size_t n = std::strlen(key);
    if (std::strncmp(arg, key, n) == 0 && arg[n] == '=') {
        out = arg + n + 1;
        return true;
    }
    return false;
}

std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (start <= s.size()) {
        const size_t comma = s.find(',', start);
        if (comma == std::string::npos) {
            out.push_back(s.substr(start));
            break;
        }
        out.push_back(s.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

Options
parse(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        std::string v;
        if (consume(argv[i], "--network", v)) {
            o.network = v;
        } else if (consume(argv[i], "--backends", v)) {
            o.backends = v;
        } else if (consume(argv[i], "--requests", v)) {
            o.requests = std::atoi(v.c_str());
            if (o.requests <= 0)
                fatal("bad --requests value '%s'", v.c_str());
        } else if (consume(argv[i], "--inflight-list", v)) {
            o.inflightList.clear();
            for (const auto &item : splitList(v)) {
                const int n = std::atoi(item.c_str());
                if (n <= 0)
                    fatal("bad --inflight-list entry '%s'",
                          item.c_str());
                o.inflightList.push_back(n);
            }
            if (o.inflightList.empty())
                usage(argv[0]);
        } else if (consume(argv[i], "--out", v)) {
            o.out = v;
        } else {
            usage(argv[0]);
        }
    }
    return o;
}

SimulationRequest
buildRequest(const Options &o)
{
    SimulationRequest req;
    if (o.network == "alexnet")
        req.network = alexNet();
    else if (o.network == "googlenet")
        req.network = googLeNet();
    else if (o.network == "vgg16")
        req.network = vgg16();
    else if (o.network == "tiny")
        req.network = tinyTestNetwork();
    else
        fatal("unknown network '%s'", o.network.c_str());
    for (const auto &name : splitList(o.backends)) {
        if (name.empty())
            fatal("empty entry in --backends");
        BackendSpec spec;
        spec.backend = name;
        req.backends.push_back(std::move(spec));
    }
    // One pool thread per session: concurrent sessions share the
    // pool, and the serial twin must resolve to the same count for
    // the byte-compare to hold.
    req.threads = 1;
    return req;
}

Cell
runService(const SimulationRequest &req, int requests, int inflight,
           bool dedup, const std::string &serialJson,
           double serialRps)
{
    Cell cell;
    cell.mode = dedup ? "service" : "service-nodedup";
    cell.inflight = inflight;

    ServiceConfig cfg;
    cfg.workers = inflight;
    cfg.queueCapacity = std::max(64, inflight * 4);
    cfg.sessionThreads = 1;
    cfg.cacheResponses = dedup;
    SimulationService service(cfg);

    const Clock::time_point start = Clock::now();
    std::vector<SessionTicket> tickets;
    tickets.reserve(static_cast<size_t>(requests));
    for (int i = 0; i < requests; ++i)
        tickets.push_back(service.submit(req));
    for (auto &ticket : tickets) {
        const ServiceReply &reply = ticket.wait();
        if (reply.outcome != ServiceOutcome::Ok)
            fatal("service request #%llu failed: %s",
                  static_cast<unsigned long long>(
                      reply.requestIndex),
                  reply.error.c_str());
        if (*reply.responseJson != serialJson)
            cell.identical = false;
    }
    cell.wallMs = std::chrono::duration<double, std::milli>(
                      Clock::now() - start)
                      .count();
    cell.rps = requests / (cell.wallMs / 1e3);
    cell.speedup = cell.rps / serialRps;

    const ServiceStats stats = service.stats();
    const uint64_t rTotal =
        stats.responseCacheHits + stats.responseCacheMisses;
    const uint64_t wTotal =
        stats.workloadCacheHits + stats.workloadCacheMisses;
    cell.responseHitRate =
        rTotal ? static_cast<double>(stats.responseCacheHits) /
                     static_cast<double>(rTotal)
               : 0.0;
    cell.workloadHitRate =
        wTotal ? static_cast<double>(stats.workloadCacheHits) /
                     static_cast<double>(wTotal)
               : 0.0;
    return cell;
}

} // namespace

int
main(int argc, char **argv)
{
    argc = consumeThreadsFlag(argc, argv);
    const Options o = parse(argc, argv);
    const SimulationRequest req = buildRequest(o);

    // Warm the thread-local kernel scratch and the code paths so the
    // serial baseline is not charged one-time setup.
    runSession(req);
    const std::string serialJson = toJson(runSession(req));

    const Clock::time_point start = Clock::now();
    for (int i = 0; i < o.requests; ++i) {
        const SimulationResponse resp = runSession(req);
        if (toJson(resp) != serialJson)
            fatal("serial runSession() is not deterministic");
    }
    const double serialMs =
        std::chrono::duration<double, std::milli>(Clock::now() -
                                                  start)
            .count();
    const double serialRps = o.requests / (serialMs / 1e3);

    std::vector<Cell> cells;
    cells.push_back({"serial", 1, serialMs, serialRps, 1.0, true,
                     0.0, 0.0});
    for (int inflight : o.inflightList) {
        cells.push_back(runService(req, o.requests, inflight, false,
                                   serialJson, serialRps));
        cells.push_back(runService(req, o.requests, inflight, true,
                                   serialJson, serialRps));
    }

    Table t("service_throughput_" + o.network,
            {"Mode", "In-flight", "Req/s", "Speedup", "Identical",
             "Resp hit", "Wkld hit"});
    for (const auto &c : cells) {
        t.addRow({c.mode, std::to_string(c.inflight),
                  Table::num(c.rps, 1), Table::num(c.speedup, 2),
                  c.identical ? "y" : "N",
                  Table::num(c.responseHitRate, 2),
                  Table::num(c.workloadHitRate, 2)});
    }
    t.print();

    bool allIdentical = true;
    for (const auto &c : cells)
        allIdentical = allIdentical && c.identical;
    if (!allIdentical)
        fatal("service responses diverged from the serial client");

    JsonWriter w;
    w.beginObject();
    w.key("schema").value("scnn.service_throughput.v1");
    w.key("network").value(o.network);
    w.key("backends").value(o.backends);
    w.key("requests").value(o.requests);
    w.key("all_identical").value(allIdentical);
    w.key("cells").beginArray();
    for (const auto &c : cells) {
        w.beginObject();
        w.key("mode").value(c.mode);
        w.key("inflight").value(c.inflight);
        w.key("wall_ms").value(c.wallMs);
        w.key("requests_per_sec").value(c.rps);
        w.key("speedup_vs_serial").value(c.speedup);
        w.key("identical").value(c.identical);
        w.key("response_cache_hit_rate").value(c.responseHitRate);
        w.key("workload_cache_hit_rate").value(c.workloadHitRate);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    if (!o.out.empty())
        writeJsonFile(o.out, w.str());
    return 0;
}
