/**
 * @file
 * Reproduces Figure 1: per-layer input-activation and weight density
 * and the ideal work fraction (the product of the two, i.e. the
 * fraction of dense multiplies that have two non-zero operands) for
 * AlexNet, GoogLeNet and VGGNet.  The paper reports typical work
 * reductions of ~4x, reaching ~10x.
 */

#include <cstdio>

#include "common/table.hh"
#include "nn/model_zoo.hh"

using namespace scnn;

int
main()
{
    std::printf("Figure 1: density and ideal work per layer\n\n");

    for (const Network &net : paperNetworks()) {
        Table t("fig1_" + net.name(),
                {"Layer", "Density(IA)", "Density(W)",
                 "Work (frac of dense)", "Work reduction"});
        double macs = 0.0;
        double ideal = 0.0;
        for (const auto &l : net.layers()) {
            if (!l.inEval)
                continue;
            const double work = l.inputDensity * l.weightDensity;
            t.addRow({l.name, Table::num(l.inputDensity, 2),
                      Table::num(l.weightDensity, 2),
                      Table::num(work, 3),
                      Table::num(work > 0 ? 1.0 / work : 0.0, 1) +
                          "x"});
            macs += static_cast<double>(l.macs());
            ideal += l.idealMacs();
        }
        const double netWork = ideal / macs;
        t.addRow({"network", "-", "-", Table::num(netWork, 3),
                  Table::num(1.0 / netWork, 1) + "x"});
        t.print();
    }
    return 0;
}
