/**
 * @file
 * Reproduces Figure 10: per-layer energy of DCNN / DCNN-opt / SCNN,
 * normalized to DCNN, for the three networks.
 *
 * Paper shapes: DCNN-opt improves on DCNN by ~2.0x network-wide and
 * SCNN by ~2.3x; fully-dense input layers (AlexNet conv1, VGG
 * conv1_1) are SCNN's worst case (it can be less efficient than the
 * dense baselines there), while sparse mid-network layers are its
 * best (up to ~4.7x vs DCNN).
 */

#include <cstdio>

#include "common/table.hh"
#include "common/parallel.hh"
#include "driver/experiments.hh"
#include "nn/model_zoo.hh"

using namespace scnn;

int
main(int argc, char **argv)
{
    consumeThreadsFlag(argc, argv);
    std::printf("Figure 10: energy relative to DCNN "
                "(cycle-level simulation + energy model)\n\n");

    double optImpSum = 0.0;
    double scnnImpSum = 0.0;
    int nets = 0;
    for (const Network &net : paperNetworks()) {
        const NetworkComparison cmp = compareNetwork(net);
        Table t("fig10_" + net.name(),
                {"Layer", "DCNN", "DCNN-opt", "SCNN"});
        for (const auto &l : cmp.layers) {
            t.addRow({l.layerName, "1.00",
                      Table::num(l.energyRelDcnn(l.dcnnOpt), 2),
                      Table::num(l.energyRelDcnn(l.scnn), 2)});
        }
        const double optRel =
            cmp.totalDcnnOptEnergy() / cmp.totalDcnnEnergy();
        const double scnnRel =
            cmp.totalScnnEnergy() / cmp.totalDcnnEnergy();
        t.addRow({"all (network)", "1.00", Table::num(optRel, 2),
                  Table::num(scnnRel, 2)});
        t.print();
        std::printf("  %s: DCNN-opt %.2fx, SCNN %.2fx better than "
                    "DCNN\n\n", net.name().c_str(), 1.0 / optRel,
                    1.0 / scnnRel);
        optImpSum += 1.0 / optRel;
        scnnImpSum += 1.0 / scnnRel;
        ++nets;
    }
    std::printf("Mean energy improvement: DCNN-opt %.2fx (paper "
                "~2.0x), SCNN %.2fx (paper ~2.3x)\n",
                optImpSum / nets, scnnImpSum / nets);
    return 0;
}
