/**
 * @file
 * Reproduces Table II: SCNN design parameters, read back from the
 * default configuration so any drift between the paper's table and
 * the implementation is visible.
 */

#include <cstdio>

#include "common/logging.hh"
#include "arch/config.hh"
#include "common/table.hh"

using namespace scnn;

int
main()
{
    std::printf("Table II: SCNN design parameters\n\n");
    const AcceleratorConfig cfg = scnnConfig();

    Table pe("table2_pe_params", {"PE Parameter", "Value", "Paper"});
    pe.addRow({"Multiplier width", "16 bits", "16 bits"});
    pe.addRow({"Accumulator width", "24 bits", "24 bits"});
    pe.addRow({"IARAM/OARAM (each)",
               strfmt("%d KB", cfg.pe.iaramBytes / 1024), "10KB"});
    pe.addRow({"Weight FIFO",
               strfmt("%d entries (%d B)", cfg.pe.weightFifoBytes / 10,
                      cfg.pe.weightFifoBytes),
               "50 entries (500 B)"});
    pe.addRow({"Multiply array (FxI)",
               strfmt("%dx%d", cfg.pe.mulF, cfg.pe.mulI), "4x4"});
    pe.addRow({"Accumulator banks",
               std::to_string(cfg.pe.accumBanks), "32"});
    pe.addRow({"Accumulator bank entries",
               std::to_string(cfg.pe.accumEntriesPerBank), "32"});
    pe.print();

    Table chip("table2_scnn_params", {"SCNN Parameter", "Value",
                                      "Paper"});
    chip.addRow({"# PEs", std::to_string(cfg.numPes()), "64"});
    chip.addRow({"# Multipliers", std::to_string(cfg.multipliers()),
                 "1024"});
    const double dataMb =
        static_cast<double>(cfg.activationSramBytes()) /
        (1024.0 * 1024.0);
    chip.addRow({"IARAM + OARAM data",
                 Table::num(dataMb * 16.0 / 20.0, 2) + " MB", "1MB"});
    chip.addRow({"IARAM + OARAM indices",
                 Table::num(dataMb * 4.0 / 20.0, 2) + " MB", "0.2MB"});
    chip.addRow({"Clock", strfmt("%.1f GHz", cfg.clockGhz), "~1 GHz"});
    const double teraops = 2.0 * cfg.multipliers() * cfg.clockGhz / 1e3;
    chip.addRow({"Peak throughput",
                 Table::num(teraops, 1) + " Tera-ops", "2 Tera-ops"});
    chip.print();
    return 0;
}
