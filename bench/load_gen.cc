/**
 * @file
 * Open-loop load generator for the scnn_serve TCP front end -- the
 * reference sharded client.
 *
 * The generator spawns a fleet of N scnn_serve shard processes (or
 * connects to an externally launched fleet with --connect), draws
 * request arrival times from a Poisson process (exponential
 * interarrivals at the offered rate; --rate=0 means "as fast as
 * possible"), hash-routes every request to its shard with
 * shardForRequest(), and measures reply latency *from the scheduled
 * arrival time* -- the open-loop discipline, so a saturated server
 * shows up as growing latency and shed replies rather than as a
 * politely slowed-down client.
 *
 * The default run is the committed benchmark suite (four cells):
 *
 *   steady_cached/1shard    offered rate well below capacity, hot
 *                           response cache: completed/s tracks the
 *                           offered rate, latency stays flat.
 *   max_cached/1shard       unpaced flood of cacheable requests: the
 *                           single-shard serving ceiling (socket +
 *                           parse + cache hit).
 *   shard_affinity/1shard   a paced stream cycling over 96 distinct
 *   shard_affinity/2shard   workload signatures -- more than one
 *                           shard's response LRU holds, half of it
 *                           per shard once hash-routed.  The 2-shard
 *                           fleet serves the stream from hot caches
 *                           while the single shard re-simulates and
 *                           sheds: the cache-affinity win
 *                           shardForRequest() exists for (ok/s of the
 *                           2-shard cell >= the 1-shard cell).
 *   overload_uncached/1shard  offered rate far above the simulate
 *                           rate with a tiny queue: demonstrates load
 *                           shedding -- ok+shed == offered, the shed
 *                           fraction is large, and ok/s rides the
 *                           service capacity.
 *
 * Emits a table plus a machine-readable JSON document (schema
 * "scnn.load_gen.v1", default BENCH_load_gen.json) with per-cell
 * throughput, outcome counts, latency percentiles and a log-scale
 * latency histogram.  tools/bench_diff.py gates ok_per_sec per cell.
 *
 * Usage:
 *   bench_load_gen [--out=path] [--serve-bin=path] [--quick]
 *                  [--connect=host:port[,host:port...]]
 *                  [--threads=N]
 *
 * --connect skips process spawning and drives the given endpoints as
 * the shard fleet (shard i = endpoint i); the cell suite still runs,
 * restricted to cells whose shard count matches the endpoint count.
 */

#include <algorithm>
#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <string>
#include <sys/socket.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/random.hh"
#include "common/table.hh"
#include "nn/model_zoo.hh"
#include "sim/service.hh"
#include "sim/session.hh"

#ifndef SCNN_SERVE_BIN
#define SCNN_SERVE_BIN "scnn_serve"
#endif

using namespace scnn;

namespace {

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

// --- options ----------------------------------------------------------

struct Endpoint
{
    std::string host;
    int port = 0;
};

struct Options
{
    std::string out = "BENCH_load_gen.json";
    std::string serveBin = SCNN_SERVE_BIN;
    std::vector<Endpoint> connect; ///< empty: spawn shards ourselves
    bool quick = false;
};

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--out=path] [--serve-bin=path] [--quick]\n"
                 "          [--connect=host:port[,host:port...]]\n"
                 "          [--threads=N]\n",
                 argv0);
    std::exit(2);
}

bool
consume(const char *arg, const char *key, std::string &out)
{
    const size_t n = std::strlen(key);
    if (std::strncmp(arg, key, n) == 0 && arg[n] == '=') {
        out = arg + n + 1;
        return true;
    }
    return false;
}

Options
parse(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        std::string v;
        if (consume(argv[i], "--out", v)) {
            o.out = v;
        } else if (consume(argv[i], "--serve-bin", v)) {
            o.serveBin = v;
        } else if (std::strcmp(argv[i], "--quick") == 0) {
            o.quick = true;
        } else if (consume(argv[i], "--connect", v)) {
            size_t start = 0;
            while (start <= v.size()) {
                const size_t comma = v.find(',', start);
                const std::string spec =
                    comma == std::string::npos
                        ? v.substr(start)
                        : v.substr(start, comma - start);
                const size_t colon = spec.rfind(':');
                if (colon == std::string::npos || colon == 0)
                    fatal("bad --connect entry '%s' (want host:port)",
                          spec.c_str());
                Endpoint ep;
                ep.host = spec.substr(0, colon);
                ep.port = std::atoi(spec.c_str() + colon + 1);
                if (ep.port <= 0 || ep.port > 65535)
                    fatal("bad --connect port in '%s'", spec.c_str());
                o.connect.push_back(std::move(ep));
                if (comma == std::string::npos)
                    break;
                start = comma + 1;
            }
        } else {
            usage(argv[0]);
        }
    }
    return o;
}

// --- shard fleet ------------------------------------------------------

struct ShardProc
{
    pid_t pid = -1;
    Endpoint endpoint;
};

std::string
tempPath(const char *stem, int n)
{
    return strfmt("/tmp/%s_%d_%d", stem, static_cast<int>(getpid()),
                  n);
}

ShardProc
spawnShard(const std::string &bin, int index,
           const std::vector<std::string> &serveArgs)
{
    ShardProc s;
    const std::string portFile = tempPath("scnn_loadgen_port", index);
    std::remove(portFile.c_str());

    std::vector<std::string> args = {bin, "--listen=127.0.0.1:0",
                                     "--port-file=" + portFile};
    args.insert(args.end(), serveArgs.begin(), serveArgs.end());
    std::vector<char *> argv;
    for (const auto &a : args)
        argv.push_back(const_cast<char *>(a.c_str()));
    argv.push_back(nullptr);

    s.pid = fork();
    if (s.pid == 0) {
        const int devnull = open("/dev/null", O_RDWR);
        dup2(devnull, STDIN_FILENO);
        dup2(devnull, STDERR_FILENO);
        execv(argv[0], argv.data());
        _exit(127);
    }

    const Clock::time_point start = Clock::now();
    for (;;) {
        std::FILE *f = std::fopen(portFile.c_str(), "r");
        if (f != nullptr) {
            int port = 0;
            const int got = std::fscanf(f, "%d", &port);
            std::fclose(f);
            if (got == 1 && port > 0) {
                s.endpoint = {"127.0.0.1", port};
                break;
            }
        }
        int status = 0;
        if (waitpid(s.pid, &status, WNOHANG) == s.pid)
            fatal("shard %d (%s) exited during startup", index,
                  bin.c_str());
        if (msSince(start) > 30000.0)
            fatal("shard %d never wrote its port file", index);
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    std::remove(portFile.c_str());
    return s;
}

void
stopShard(ShardProc &s)
{
    if (s.pid <= 0)
        return;
    kill(s.pid, SIGTERM);
    const Clock::time_point start = Clock::now();
    for (;;) {
        int status = 0;
        if (waitpid(s.pid, &status, WNOHANG) == s.pid)
            break;
        if (msSince(start) > 30000.0) {
            kill(s.pid, SIGKILL);
            waitpid(s.pid, nullptr, 0);
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    s.pid = -1;
}

int
connectTo(const Endpoint &ep)
{
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        fatal("socket: %s", std::strerror(errno));
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(ep.port));
    if (inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1)
        fatal("bad shard host '%s' (want an IPv4 address)",
              ep.host.c_str());
    for (int attempt = 0;; ++attempt) {
        if (connect(fd, reinterpret_cast<sockaddr *>(&addr),
                    sizeof(addr)) == 0)
            return fd;
        if (attempt > 200)
            fatal("cannot connect to shard %s:%d: %s",
                  ep.host.c_str(), ep.port, std::strerror(errno));
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
}

// --- one benchmark cell -----------------------------------------------

struct CellSpec
{
    std::string name;
    int shards = 1;
    double offeredRps = 0.0; ///< 0 = unpaced (as fast as possible)
    int requests = 0;
    int distinctSeeds = 0; ///< 0 = every request distinct (uncached)
    std::vector<std::string> serveArgs;
};

/** Fixed log-scale latency buckets (upper bounds, ms). */
const double kBucketsMs[] = {0.25, 0.5, 1,  2,   4,   8,  16,
                             32,   64,  128, 256, 512, 1024};
constexpr size_t kBuckets = sizeof(kBucketsMs) / sizeof(double) + 1;

struct CellResult
{
    CellSpec spec;
    uint64_t ok = 0, shed = 0, errors = 0;
    double wallMs = 0.0;
    double completedPerSec = 0.0;
    double okPerSec = 0.0;
    double p50Ms = 0.0, p95Ms = 0.0, p99Ms = 0.0, maxMs = 0.0;
    uint64_t histogram[kBuckets] = {};
};

/** The one request shape the suite serves (the tiny network). */
std::string
requestLine(uint64_t seed)
{
    return strfmt("{\"network\":\"tiny\",\"backends\":[\"scnn\"],"
                  "\"seed\":%llu,\"threads\":1}",
                  static_cast<unsigned long long>(seed));
}

SimulationRequest
routingRequest(uint64_t seed)
{
    SimulationRequest req;
    req.network = tinyTestNetwork();
    req.backends.push_back({});
    req.backends.back().backend = "scnn";
    req.seed = seed;
    req.threads = 1;
    return req;
}

/** One shard's slice of the schedule, driven over one connection. */
struct ShardPlan
{
    std::vector<double> sendAtMs;  ///< scheduled arrival offsets
    std::vector<uint64_t> seeds;   ///< request seed per line
    std::vector<double> latencyMs; ///< reply latency (all outcomes)
    std::vector<int> outcome;      ///< 0 ok, 1 shed, 2 error
};

void
driveShard(const Endpoint &ep, Clock::time_point epoch,
           ShardPlan &plan)
{
    const int fd = connectTo(ep);
    const size_t n = plan.sendAtMs.size();
    plan.latencyMs.assign(n, 0.0);
    plan.outcome.assign(n, 2);

    std::thread sender([&] {
        std::string batch;
        for (size_t i = 0; i < n; ++i) {
            const auto due =
                epoch + std::chrono::duration<double, std::milli>(
                            plan.sendAtMs[i]);
            if (Clock::now() < due)
                std::this_thread::sleep_until(due);
            batch = requestLine(plan.seeds[i]);
            batch += '\n';
            const char *data = batch.data();
            size_t left = batch.size();
            while (left > 0) {
                const ssize_t w = write(fd, data, left);
                if (w < 0) {
                    if (errno == EINTR)
                        continue;
                    fatal("write to shard %s:%d failed: %s",
                          ep.host.c_str(), ep.port,
                          std::strerror(errno));
                }
                data += w;
                left -= static_cast<size_t>(w);
            }
        }
        shutdown(fd, SHUT_WR);
    });

    // Replies come back in request order on the connection; classify
    // by schema prefix (cheap -- no full JSON parse on the hot path).
    std::string buf;
    size_t pos = 0, replyIdx = 0;
    char chunk[1 << 16];
    while (replyIdx < n) {
        const size_t nl = buf.find('\n', pos);
        if (nl != std::string::npos) {
            const double lat =
                msSince(epoch) - plan.sendAtMs[replyIdx];
            plan.latencyMs[replyIdx] = lat > 0.0 ? lat : 0.0;
            static const std::string okPrefix =
                "{\"schema\":\"scnn.simulation_response.v1\"";
            if (buf.compare(pos, okPrefix.size(), okPrefix) == 0)
                plan.outcome[replyIdx] = 0;
            else if (buf.find("\"outcome\":\"shed\"", pos) !=
                     std::string::npos &&
                     buf.find("\"outcome\":\"shed\"", pos) < nl)
                plan.outcome[replyIdx] = 1;
            else
                plan.outcome[replyIdx] = 2;
            pos = nl + 1;
            ++replyIdx;
            continue;
        }
        buf.erase(0, pos);
        pos = 0;
        const ssize_t r = read(fd, chunk, sizeof(chunk));
        if (r < 0) {
            if (errno == EINTR)
                continue;
            fatal("read from shard %s:%d failed: %s", ep.host.c_str(),
                  ep.port, std::strerror(errno));
        }
        if (r == 0)
            fatal("shard %s:%d closed after %zu of %zu replies",
                  ep.host.c_str(), ep.port, replyIdx, n);
        buf.append(chunk, static_cast<size_t>(r));
    }
    sender.join();
    close(fd);
}

CellResult
runCell(const CellSpec &spec, const Options &opts)
{
    // Spawn the fleet (or adopt the --connect endpoints).
    std::vector<ShardProc> procs;
    std::vector<Endpoint> endpoints;
    if (!opts.connect.empty()) {
        endpoints = opts.connect;
    } else {
        for (int i = 0; i < spec.shards; ++i) {
            procs.push_back(
                spawnShard(opts.serveBin, i, spec.serveArgs));
            endpoints.push_back(procs.back().endpoint);
        }
    }
    const int nShards = static_cast<int>(endpoints.size());

    // Draw the global Poisson schedule, hash-route each request to
    // its shard.  Seeded: the schedule is identical run to run.
    Rng rng("load_gen/" + spec.name, 20170624);
    std::vector<ShardPlan> plans(static_cast<size_t>(nShards));
    {
        double atMs = 0.0;
        for (int i = 0; i < spec.requests; ++i) {
            if (spec.offeredRps > 0.0) {
                const double u = rng.uniform();
                atMs += -std::log(1.0 - u) /
                        spec.offeredRps * 1e3;
            }
            const uint64_t seed =
                spec.distinctSeeds > 0
                    ? static_cast<uint64_t>(
                          i % spec.distinctSeeds)
                    : static_cast<uint64_t>(i);
            const int shard =
                shardForRequest(routingRequest(seed), nShards);
            plans[static_cast<size_t>(shard)].sendAtMs.push_back(
                atMs);
            plans[static_cast<size_t>(shard)].seeds.push_back(seed);
        }
    }

    // Warm each shard (connection setup, first-request synthesis)
    // outside the measured window.
    for (const auto &ep : endpoints) {
        ShardPlan warm;
        warm.sendAtMs = {0.0};
        warm.seeds = {0};
        driveShard(ep, Clock::now(), warm);
    }

    const Clock::time_point epoch = Clock::now();
    std::vector<std::thread> drivers;
    for (int s = 0; s < nShards; ++s)
        drivers.emplace_back([&, s] {
            if (!plans[static_cast<size_t>(s)].seeds.empty())
                driveShard(endpoints[static_cast<size_t>(s)], epoch,
                           plans[static_cast<size_t>(s)]);
        });
    for (auto &t : drivers)
        t.join();
    const double wallMs = msSince(epoch);

    for (auto &p : procs)
        stopShard(p);

    // Aggregate.
    CellResult r;
    r.spec = spec;
    r.wallMs = wallMs;
    std::vector<double> lat;
    for (const auto &p : plans) {
        for (size_t i = 0; i < p.outcome.size(); ++i) {
            switch (p.outcome[i]) {
            case 0:
                ++r.ok;
                break;
            case 1:
                ++r.shed;
                break;
            default:
                ++r.errors;
                break;
            }
            lat.push_back(p.latencyMs[i]);
            size_t b = 0;
            while (b < kBuckets - 1 &&
                   p.latencyMs[i] > kBucketsMs[b])
                ++b;
            ++r.histogram[b];
        }
    }
    std::sort(lat.begin(), lat.end());
    auto pct = [&](double q) {
        if (lat.empty())
            return 0.0;
        const size_t idx = static_cast<size_t>(
            q * static_cast<double>(lat.size() - 1));
        return lat[idx];
    };
    r.p50Ms = pct(0.50);
    r.p95Ms = pct(0.95);
    r.p99Ms = pct(0.99);
    r.maxMs = lat.empty() ? 0.0 : lat.back();
    const double wallSec = wallMs / 1e3;
    r.completedPerSec =
        static_cast<double>(r.ok + r.shed + r.errors) / wallSec;
    r.okPerSec = static_cast<double>(r.ok) / wallSec;
    return r;
}

std::vector<CellSpec>
suite(bool quick)
{
    const int scale = quick ? 10 : 1;
    std::vector<CellSpec> cells;
    // Comfortable steady state: hot cache, rate far below capacity.
    cells.push_back({"steady_cached",
                     1,
                     1000.0,
                     3000 / scale,
                     4,
                     {"--max-inflight=2", "--queue=256",
                      "--session-threads=1"}});
    // Unpaced flood of cacheable requests: the serving ceiling.
    cells.push_back({"max_cached",
                     1,
                     0.0,
                     30000 / scale,
                     4,
                     {"--max-inflight=2", "--queue=1024",
                      "--session-threads=1"}});
    // The sharding cells: one offered stream cycling over 96
    // distinct workload signatures -- more than one shard's 64-entry
    // response LRU holds (cyclic access thrashes an LRU to a 0% hit
    // rate), half of it per shard once hash-routed over two.  The
    // unsharded server re-simulates every request and sheds what it
    // cannot absorb; the 2-shard fleet serves the same stream from
    // hot caches.  This is the cache-affinity win shardForRequest()
    // exists for, and it does not depend on spare cores.
    cells.push_back({"shard_affinity",
                     1,
                     2000.0,
                     6000 / scale,
                     96,
                     {"--max-inflight=2", "--queue=256",
                      "--session-threads=1"}});
    cells.push_back({"shard_affinity",
                     2,
                     2000.0,
                     6000 / scale,
                     96,
                     {"--max-inflight=2", "--queue=256",
                      "--session-threads=1"}});
    // Offered rate far above the simulate rate, tiny queue: the load
    // shedding story.  Every request distinct, so nothing caches.
    cells.push_back({"overload_uncached",
                     1,
                     4000.0,
                     4000 / scale,
                     0,
                     {"--max-inflight=2", "--queue=8",
                      "--session-threads=1"}});
    return cells;
}

} // namespace

int
main(int argc, char **argv)
{
    argc = consumeThreadsFlag(argc, argv);
    const Options opts = parse(argc, argv);
    signal(SIGPIPE, SIG_IGN);

    std::vector<CellResult> results;
    for (const auto &spec : suite(opts.quick)) {
        if (!opts.connect.empty() &&
            static_cast<int>(opts.connect.size()) != spec.shards)
            continue; // fleet size fixed by --connect
        results.push_back(runCell(spec, opts));
    }
    if (results.empty())
        fatal("no cell matches the --connect fleet size");

    Table t("load_gen",
            {"Cell", "Shards", "Offered/s", "Req", "Ok", "Shed",
             "Ok/s", "p50 ms", "p95 ms", "max ms"});
    for (const auto &r : results) {
        t.addRow({r.spec.name, std::to_string(r.spec.shards),
                  r.spec.offeredRps > 0.0
                      ? Table::num(r.spec.offeredRps, 0)
                      : std::string("max"),
                  std::to_string(r.spec.requests),
                  std::to_string(r.ok), std::to_string(r.shed),
                  Table::num(r.okPerSec, 1), Table::num(r.p50Ms, 2),
                  Table::num(r.p95Ms, 2), Table::num(r.maxMs, 2)});
    }
    t.print();

    JsonWriter w;
    w.beginObject();
    w.key("schema").value("scnn.load_gen.v1");
    w.key("network").value("tiny");
    w.key("backends").value("scnn");
    w.key("cells").beginArray();
    for (const auto &r : results) {
        w.beginObject();
        w.key("cell").value(r.spec.name);
        w.key("shards").value(r.spec.shards);
        w.key("offered_rps").value(r.spec.offeredRps);
        w.key("requests").value(r.spec.requests);
        w.key("distinct_seeds").value(r.spec.distinctSeeds);
        w.key("ok").value(r.ok);
        w.key("shed").value(r.shed);
        w.key("errors").value(r.errors);
        w.key("wall_ms").value(r.wallMs);
        w.key("completed_per_sec").value(r.completedPerSec);
        w.key("ok_per_sec").value(r.okPerSec);
        w.key("latency_ms").beginObject();
        w.key("p50").value(r.p50Ms);
        w.key("p95").value(r.p95Ms);
        w.key("p99").value(r.p99Ms);
        w.key("max").value(r.maxMs);
        w.endObject();
        w.key("latency_histogram").beginArray();
        for (size_t b = 0; b < kBuckets; ++b) {
            w.beginObject();
            if (b < kBuckets - 1)
                w.key("le_ms").value(kBucketsMs[b]);
            else
                w.key("le_ms").value(std::string("inf"));
            w.key("count").value(r.histogram[b]);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    if (!opts.out.empty())
        writeJsonFile(opts.out, w.str());
    return 0;
}
