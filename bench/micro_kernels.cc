/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot kernels:
 * RLE codec, compressed-tile construction, accumulator-bank routing,
 * the PE Cartesian-product inner loop, the reference convolution, and
 * a full small-layer simulation (serial and across thread counts).
 *
 * Unless overridden with --benchmark_out=..., results are also
 * written machine-readably to BENCH_micro_kernels.json (google
 * benchmark's JSON format, with a "threads" context entry) so
 * successive PRs can track the perf trajectory.  --threads=N pins the
 * worker-thread count of the parallel sections.
 */

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/parallel.hh"
#include "common/random.hh"
#include "nn/model_zoo.hh"
#include "nn/reference.hh"
#include "nn/workload.hh"
#include "scnn/accumulator.hh"
#include "scnn/pe.hh"
#include "sim/registry.hh"
#include "tensor/rle.hh"

using namespace scnn;

namespace {

std::vector<float>
sparseStream(size_t n, double density, uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> v(n, 0.0f);
    for (auto &x : v)
        if (rng.bernoulli(density))
            x = static_cast<float>(rng.uniform(0.1, 1.0));
    return v;
}

void
BM_RleEncode(benchmark::State &state)
{
    const double density = static_cast<double>(state.range(0)) / 100.0;
    const auto dense = sparseStream(1 << 16, density, 42);
    for (auto _ : state) {
        auto enc = rleEncode(dense);
        benchmark::DoNotOptimize(enc.values.data());
    }
    state.SetItemsProcessed(state.iterations() * dense.size());
}
BENCHMARK(BM_RleEncode)->Arg(10)->Arg(35)->Arg(100);

void
BM_RleRoundTrip(benchmark::State &state)
{
    const auto dense = sparseStream(1 << 14, 0.35, 7);
    for (auto _ : state) {
        const auto enc = rleEncode(dense);
        auto dec = rleDecode(enc, dense.size());
        benchmark::DoNotOptimize(dec.data());
    }
    state.SetItemsProcessed(state.iterations() * dense.size());
}
BENCHMARK(BM_RleRoundTrip);

void
BM_CompressedTileBuild(benchmark::State &state)
{
    ConvLayerParams layer = makeConv("bm", 64, 64, 56, 3, 1, 0.35,
                                     0.40);
    Rng rng(3);
    const Tensor3 acts = makeActivations(layer, rng);
    const ConvGeometry geom = layer.geometry();
    for (auto _ : state) {
        CompressedActTile tile(acts, 0, 28, 0, 28, geom);
        benchmark::DoNotOptimize(tile.nonZeros());
    }
}
BENCHMARK(BM_CompressedTileBuild);

void
BM_BankRouting(benchmark::State &state)
{
    AccumulatorBanks banks(32);
    Rng rng(11);
    std::vector<int> ids(16);
    for (auto &b : ids)
        b = static_cast<int>(rng.uniformInt(32));
    for (auto _ : state) {
        banks.beginOp();
        for (int b : ids)
            banks.route(b);
        uint64_t cost = banks.finishOp();
        benchmark::DoNotOptimize(cost);
    }
    state.SetItemsProcessed(state.iterations() * ids.size());
}
BENCHMARK(BM_BankRouting);

void
BM_PeRunGroup(benchmark::State &state)
{
    const ConvLayerParams layer =
        makeConv("bm_pe", 64, 32, 28, 3, 1, 0.35, 0.40);
    const LayerWorkload w = makeWorkload(layer, 5);
    const AcceleratorConfig cfg = scnnConfig();
    const ConvGeometry geom = layer.geometry();
    CompressedActTile tile(w.input, 0, 14, 0, 14, geom);
    std::vector<CompressedWeightBlock> blocks;
    for (int c = 0; c < layer.inChannels; ++c)
        blocks.emplace_back(w.weights, 0, 16, c, layer.inChannels, 1,
                            geom);
    TileRect in{0, 14, 0, 14};
    TileRect out{0, 14, 0, 14};
    TileRect acc{0, 16, 0, 16};
    ProcessingElement pe(cfg, layer, in, out, acc);
    for (auto _ : state) {
        const PeGroupStats st = pe.runGroup(tile, blocks, 0, nullptr);
        benchmark::DoNotOptimize(st.cycles);
    }
}
BENCHMARK(BM_PeRunGroup);

void
BM_ReferenceConv(benchmark::State &state)
{
    const ConvLayerParams layer =
        makeConv("bm_ref", 32, 32, 28, 3, 1, 0.5, 0.5);
    const LayerWorkload w = makeWorkload(layer, 9);
    for (auto _ : state) {
        Tensor3 out = referenceConv(layer, w.input, w.weights);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_ReferenceConv);

void
BM_ScnnLayer(benchmark::State &state)
{
    const ConvLayerParams layer =
        makeConv("bm_layer", 64, 64, 28, 3, 1, 0.35, 0.40);
    const LayerWorkload w = makeWorkload(layer, 13);
    const auto sim = makeSimulator("scnn");
    for (auto _ : state) {
        const LayerResult r = sim->simulateLayer(w, RunOptions());
        benchmark::DoNotOptimize(r.cycles);
    }
}
BENCHMARK(BM_ScnnLayer);

/** Full layer across explicit thread counts (RunOptions::threads). */
void
BM_ScnnLayerThreads(benchmark::State &state)
{
    const ConvLayerParams layer =
        makeConv("bm_layer_mt", 64, 64, 28, 3, 1, 0.35, 0.40);
    const LayerWorkload w = makeWorkload(layer, 13);
    const auto sim = makeSimulator("scnn");
    RunOptions opts;
    opts.threads = static_cast<int>(state.range(0));
    for (auto _ : state) {
        const LayerResult r = sim->simulateLayer(w, opts);
        benchmark::DoNotOptimize(r.cycles);
    }
}
BENCHMARK(BM_ScnnLayerThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

} // namespace

int
main(int argc, char **argv)
{
    argc = consumeThreadsFlag(argc, argv);

    // Default to machine-readable JSON output next to the binary's
    // working directory unless the caller picked a destination.
    std::vector<char *> args(argv, argv + argc);
    bool hasOut = false;
    for (int i = 1; i < argc; ++i)
        if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0)
            hasOut = true;
    std::string outFlag = "--benchmark_out=BENCH_micro_kernels.json";
    std::string fmtFlag = "--benchmark_out_format=json";
    if (!hasOut) {
        args.push_back(outFlag.data());
        args.push_back(fmtFlag.data());
    }
    int benchArgc = static_cast<int>(args.size());

    benchmark::AddCustomContext("threads",
                                std::to_string(resolveThreads()));
    benchmark::Initialize(&benchArgc, args.data());
    if (benchmark::ReportUnrecognizedArguments(benchArgc, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
