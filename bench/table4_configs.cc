/**
 * @file
 * Reproduces Table IV: the three accelerator configurations compared
 * in the evaluation (#PEs, #multipliers, activation SRAM, die area).
 */

#include <cstdio>

#include "common/logging.hh"
#include "arch/area_model.hh"
#include "common/table.hh"

using namespace scnn;

int
main()
{
    std::printf("Table IV: CNN accelerator configurations\n\n");

    const AreaModel model;
    const AcceleratorConfig cfgs[] = {dcnnConfig(), dcnnOptConfig(),
                                      scnnConfig()};
    const char *paperArea[] = {"5.9", "5.9", "7.9"};

    Table t("table4_configs", {"Config", "# PEs", "# MULs", "SRAM",
                               "Area (mm2)", "Paper (mm2)"});
    int i = 0;
    for (const auto &cfg : cfgs) {
        t.addRow({cfg.name, std::to_string(cfg.numPes()),
                  std::to_string(cfg.multipliers()),
                  strfmt("%.0f MB",
                         static_cast<double>(cfg.activationSramBytes()) /
                             (1024.0 * 1024.0)),
                  Table::num(model.chipArea(cfg).total(), 1),
                  paperArea[i++]});
    }
    t.print();
    return 0;
}
