/**
 * @file
 * Reproduces Table I: network characteristics (conv layer counts,
 * maximum per-layer weight/activation footprints at 2 B/value, total
 * multiplies).  Paper values are printed alongside for comparison.
 *
 * Note on scope: the paper's GoogLeNet row mixes scopes -- "54 conv
 * layers" and the 1.1 B multiplies count only the inception-module
 * convolutions (its evaluation scope), while the 1.52 MB maximum
 * activation footprint belongs to the stem.  Both scopes are shown.
 */

#include <cstdio>

#include "common/logging.hh"
#include "common/table.hh"
#include "nn/model_zoo.hh"

using namespace scnn;

namespace {

std::string
mb(double bytes)
{
    return Table::num(bytes / 1e6, 2) + " MB";
}

std::string
billions(double n)
{
    return Table::num(n / 1e9, 2) + " B";
}

} // namespace

int
main()
{
    std::printf("Table I: network characteristics "
                "(2-byte data type)\n\n");

    Table t("table1_networks",
            {"Network", "# Conv. Layers (eval)", "Max. Layer Weights",
             "Max. Layer Activations", "Total # Multiplies (eval)",
             "Paper: layers/wts/acts/muls"});

    struct PaperRow { const char *w, *a, *m; int layers; };
    const PaperRow paper[] = {
        {"1.73 MB", "0.31 MB", "0.69 B", 5},
        {"1.32 MB", "1.52 MB", "1.1 B", 54},
        {"4.49 MB", "6.12 MB", "15.3 B", 13},
    };

    int i = 0;
    for (const Network &net : paperNetworks()) {
        t.addRow({net.name(),
                  strfmt("%zu (%zu)", net.numLayers(),
                         net.numEvalLayers()),
                  mb(static_cast<double>(net.maxLayerWeightBytes())),
                  mb(static_cast<double>(net.maxLayerActivationBytes())),
                  billions(static_cast<double>(net.totalMacs(true))),
                  strfmt("%d / %s / %s / %s", paper[i].layers,
                         paper[i].w, paper[i].a, paper[i].m)});
        ++i;
    }
    t.print();

    std::printf("Per-layer shapes:\n");
    for (const Network &net : paperNetworks()) {
        Table lt("table1_layers_" + net.name(),
                 {"Layer", "C", "K", "WxH", "RxS", "str", "grp",
                  "MACs (M)", "eval"});
        for (const auto &l : net.layers()) {
            lt.addRow({l.name, std::to_string(l.inChannels),
                       std::to_string(l.outChannels),
                       strfmt("%dx%d", l.inWidth, l.inHeight),
                       strfmt("%dx%d", l.filterW, l.filterH),
                       std::to_string(l.strideX),
                       std::to_string(l.groups),
                       Table::num(static_cast<double>(l.macs()) / 1e6,
                                  1),
                       l.inEval ? "y" : "n"});
        }
        lt.print();
    }
    return 0;
}
