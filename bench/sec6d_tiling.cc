/**
 * @file
 * Reproduces the Section VI-D larger-network study: which of the 72
 * evaluated layers overflow SCNN's on-chip activation RAM and must
 * tile activations through DRAM, and the per-layer energy penalty of
 * doing so.
 *
 * Paper result: 9 of 72 evaluated layers require tiling (all in
 * VGGNet); their DRAM energy penalty ranges 5-62% with a mean of
 * ~18%.
 */

#include <cstdio>

#include "arch/energy_model.hh"
#include "common/table.hh"
#include "driver/experiments.hh"
#include "nn/model_zoo.hh"
#include "nn/workload.hh"
#include "sim/registry.hh"

using namespace scnn;

int
main()
{
    std::printf("Section VI-D: DRAM tiling of large layers (SCNN)\n\n");

    const auto sim = makeSimulator("scnn");
    const EnergyModel energy;
    const AcceleratorConfig cfg = scnnConfig();

    int tiledCount = 0;
    int evalCount = 0;
    double penaltySum = 0.0;
    double penaltyMin = 1e9;
    double penaltyMax = 0.0;

    Table t("sec6d_tiling",
            {"Layer", "Tiled?", "Tiles", "DRAM act (KB)",
             "Energy penalty"});

    for (const Network &net : paperNetworks()) {
        const auto layers = net.evalLayers();
        for (size_t i = 0; i < layers.size(); ++i) {
            const ConvLayerParams &layer = layers[i];
            ++evalCount;
            const LayerWorkload w = makeWorkload(layer,
                                                 kExperimentSeed);
            RunOptions opts;
            opts.outputDensityHint = (i + 1 < layers.size())
                ? layers[i + 1].inputDensity : 0.5;
            const LayerResult res = sim->simulateLayer(w, opts);
            if (!res.dramTiled)
                continue;
            ++tiledCount;

            // Energy penalty: tiled energy vs the same layer with the
            // activation DRAM traffic removed (the fits-on-chip
            // counterfactual).
            EnergyEvents noSpill = res.events;
            noSpill.dramBits -=
                static_cast<double>(res.dramActBits);
            // Weights would also stream only once without tiling.
            noSpill.dramBits -=
                static_cast<double>(res.dramWeightBits) *
                (1.0 - 1.0 / res.numDramTiles);
            const double base = energy.total(noSpill, cfg);
            const double penalty = res.energyPj / base - 1.0;
            penaltySum += penalty;
            penaltyMin = std::min(penaltyMin, penalty);
            penaltyMax = std::max(penaltyMax, penalty);

            t.addRow({net.name() + "/" + layer.name, "yes",
                      std::to_string(res.numDramTiles),
                      Table::num(static_cast<double>(res.dramActBits) /
                                     8.0 / 1024.0, 0),
                      Table::num(100.0 * penalty, 1) + "%"});
        }
    }
    t.print();

    std::printf("%d of %d evaluated layers require DRAM tiling "
                "(paper: 9 of 72)\n", tiledCount, evalCount);
    if (tiledCount > 0) {
        std::printf("Energy penalty: min %.0f%%, mean %.0f%%, max "
                    "%.0f%% (paper: 5-62%%, mean ~18%%)\n",
                    100.0 * penaltyMin,
                    100.0 * penaltySum / tiledCount,
                    100.0 * penaltyMax);
    }
    return 0;
}
