/**
 * @file
 * Reproduces Figure 7: GoogLeNet latency (7a) and energy (7b) as a
 * function of uniform weight/activation density swept from 0.1 to
 * 1.0, for SCNN / DCNN / DCNN-opt, using the TimeLoop analytical
 * model (Section VI-A).  All values are normalized to DCNN at 1.0/1.0
 * density.
 *
 * Expected shapes (paper): SCNN achieves ~79% of DCNN performance at
 * full density, wins below ~0.85/0.85, and reaches ~24x at 0.1/0.1;
 * DCNN-opt energy is below DCNN everywhere; SCNN energy crosses DCNN
 * near 0.83/0.83 and DCNN-opt near 0.60/0.60.
 */

#include <cstdio>

#include "common/logging.hh"
#include "common/table.hh"
#include "common/parallel.hh"
#include "driver/experiments.hh"
#include "nn/model_zoo.hh"

using namespace scnn;

int
main(int argc, char **argv)
{
    consumeThreadsFlag(argc, argv);
    std::printf("Figure 7: GoogLeNet performance/energy vs density "
                "(TimeLoop analytical model)\n\n");

    std::vector<double> densities;
    for (int i = 1; i <= 10; ++i)
        densities.push_back(0.1 * i);

    const std::vector<DensityPoint> points =
        densitySweep(googLeNet(), densities);
    const DensityPoint &ref = points.back(); // 1.0/1.0

    Table perf("fig7a_performance",
               {"Wt/Act Density", "DCNN (norm latency)",
                "SCNN (norm latency)", "SCNN speedup vs DCNN"});
    Table energy("fig7b_energy",
                 {"Wt/Act Density", "DCNN (norm energy)",
                  "DCNN-opt (norm energy)", "SCNN (norm energy)"});

    double crossDcnn = -1.0;
    double crossOpt = -1.0;
    for (const auto &p : points) {
        perf.addRow({strfmt("%.1f/%.1f", p.density, p.density),
                     Table::num(p.dcnnCycles / ref.dcnnCycles, 3),
                     Table::num(p.scnnCycles / ref.dcnnCycles, 3),
                     Table::num(p.dcnnCycles / p.scnnCycles, 2) + "x"});
        energy.addRow({strfmt("%.1f/%.1f", p.density, p.density),
                       Table::num(p.dcnnEnergy / ref.dcnnEnergy, 3),
                       Table::num(p.dcnnOptEnergy / ref.dcnnEnergy, 3),
                       Table::num(p.scnnEnergy / ref.dcnnEnergy, 3)});
        if (p.scnnEnergy <= p.dcnnEnergy)
            crossDcnn = std::max(crossDcnn, p.density);
        if (p.scnnEnergy <= p.dcnnOptEnergy)
            crossOpt = std::max(crossOpt, p.density);
    }
    perf.print();
    energy.print();

    const auto &lo = points.front();
    std::printf("Summary:\n");
    std::printf("  SCNN/DCNN performance at 1.0/1.0 density: %.2f "
                "(paper ~0.79)\n",
                ref.dcnnCycles / ref.scnnCycles);
    std::printf("  SCNN speedup at 0.1/0.1 density: %.1fx "
                "(paper ~24x)\n",
                lo.dcnnCycles / lo.scnnCycles);
    std::printf("  SCNN energy beats DCNN up to density %.1f "
                "(paper ~0.83)\n", crossDcnn);
    std::printf("  SCNN energy beats DCNN-opt up to density %.1f "
                "(paper ~0.60)\n", crossOpt);
    return 0;
}
