/**
 * @file
 * Ablation: output-channel group size (Kc) policy.  Kc trades
 * weight/partial-sum reuse (large Kc: fewer IARAM re-reads, fewer
 * barriers) against accumulator footprint.  The paper quotes Kc = 8
 * for the GoogLeNet IC_5b 1x1 layers without publishing its sizing
 * rule; this bench sweeps the Kc cap to show the sensitivity.
 */

#include <cstdio>

#include "common/table.hh"
#include "driver/experiments.hh"
#include "nn/model_zoo.hh"
#include "nn/workload.hh"
#include "sim/registry.hh"

using namespace scnn;

int
main()
{
    std::printf("Ablation: Kc cap sweep (GoogLeNet)\n\n");

    const Network net = googLeNet();

    Table t("ablation_kc_policy",
            {"Kc cap", "Cycles", "IARAM read bits", "Idle frac",
             "Slowdown vs cap=32"});

    struct Point
    {
        int cap;
        uint64_t cycles;
        double iaramBits;
        double idle;
    };
    std::vector<Point> points;
    for (int cap : {1, 2, 4, 8, 16, 32}) {
        AcceleratorConfig cfg = scnnConfig();
        cfg.pe.kcCap = cap;
        const auto sim = makeSimulator("scnn", cfg);
        uint64_t cycles = 0;
        double iaram = 0.0;
        double idle = 0.0;
        int n = 0;
        for (const auto &layer : net.layers()) {
            if (!layer.inEval)
                continue;
            const LayerWorkload w = makeWorkload(layer,
                                                 kExperimentSeed);
            const LayerResult r = sim->simulateLayer(w, RunOptions());
            cycles += r.cycles;
            iaram += r.events.iaramReadBits;
            idle += r.peIdleFraction;
            ++n;
        }
        points.push_back({cap, cycles, iaram, idle / n});
    }
    const double ref = static_cast<double>(points.back().cycles);
    for (const auto &p : points) {
        t.addRow({std::to_string(p.cap), std::to_string(p.cycles),
                  Table::num(p.iaramBits / 1e6, 1) + "M",
                  Table::num(p.idle, 3),
                  Table::num(static_cast<double>(p.cycles) / ref, 3) +
                      "x"});
    }
    t.print();
    return 0;
}
