/**
 * @file
 * Ablation: accumulator banking factor.  The paper asserts that
 * A = 2 x F x I banks "sufficiently reduces accumulator bank
 * contention" (Section IV).  This bench sweeps A from F*I/2 to 8*F*I
 * on GoogLeNet layers and reports cycles and conflict-stall fractions,
 * reproducing that design decision.
 */

#include <cstdio>

#include "common/table.hh"
#include "driver/experiments.hh"
#include "nn/model_zoo.hh"
#include "nn/workload.hh"
#include "sim/registry.hh"

using namespace scnn;

int
main()
{
    std::printf("Ablation: accumulator bank count vs contention "
                "(GoogLeNet)\n\n");

    const Network net = googLeNet();

    Table t("ablation_accumulator_banks",
            {"Banks (A)", "A / (F*I)", "Cycles", "Conflict-stall frac",
             "Slowdown vs A=128"});

    struct Point { int banks; uint64_t cycles; double stallFrac; };
    std::vector<Point> points;
    for (int banks : {8, 16, 32, 64, 128}) {
        AcceleratorConfig cfg = scnnConfig();
        cfg.pe.accumBanks = banks;
        const auto sim = makeSimulator("scnn", cfg);
        uint64_t cycles = 0;
        double stalls = 0.0;
        double busy = 0.0;
        for (const auto &layer : net.layers()) {
            if (!layer.inEval)
                continue;
            const LayerWorkload w = makeWorkload(layer,
                                                 kExperimentSeed);
            const LayerResult r = sim->simulateLayer(w, RunOptions());
            cycles += r.cycles;
            stalls += r.stats.get("conflict_stall_cycles");
            busy += static_cast<double>(r.computeCycles);
        }
        points.push_back({banks, cycles, stalls / (stalls + busy)});
    }
    const double best = static_cast<double>(points.back().cycles);
    for (const auto &p : points) {
        t.addRow({std::to_string(p.banks),
                  Table::num(p.banks / 16.0, 2),
                  std::to_string(p.cycles),
                  Table::num(p.stallFrac, 4),
                  Table::num(static_cast<double>(p.cycles) / best, 3) +
                      "x"});
    }
    t.print();
    std::printf("Paper design point: A = 32 = 2*F*I.\n");
    return 0;
}
