/**
 * @file
 * Chained execution of GoogLeNet's inception DAG on the SCNN
 * simulator: the stem, then each module's four branches from the same
 * input (1x1; 3x3_reduce -> 3x3; 5x5_reduce -> 5x5; 3x3/1 max-pool ->
 * pool_proj), concatenated along channels and fed to the next module,
 * with the stage max-pools between scales.  Activation sparsity
 * emerges from the computation, extending the sequential
 * ScnnSimulator::runNetworkChained to the paper's one non-sequential
 * network.
 */

#ifndef SCNN_DRIVER_GOOGLENET_RUNNER_HH
#define SCNN_DRIVER_GOOGLENET_RUNNER_HH

#include <cstdint>

#include "scnn/result.hh"
#include "scnn/simulator.hh"

namespace scnn {

/**
 * Run GoogLeNet (stem + 9 inception modules, 57 convolutions) with
 * real activation propagation.  Per-layer results appear in network
 * order with emergent "output_density" stats.
 *
 * @param sim     the SCNN simulator to run on.
 * @param seed    master seed for the input image and weights.
 * @param threads worker threads, resolved once through
 *                common/parallel and pinned for every layer (0 =
 *                SCNN_THREADS / hardware default).
 */
NetworkResult runGoogLeNetChained(ScnnSimulator &sim, uint64_t seed,
                                  int threads = 0);

} // namespace scnn

#endif // SCNN_DRIVER_GOOGLENET_RUNNER_HH
