#include "driver/googlenet_runner.hh"

#include <map>
#include <string>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "nn/model_zoo.hh"
#include "nn/reference.hh"
#include "nn/workload.hh"

namespace scnn {

namespace {

/** Index the GoogLeNet layer list by name. */
std::map<std::string, ConvLayerParams>
layerIndex(const Network &net)
{
    std::map<std::string, ConvLayerParams> idx;
    for (const auto &l : net.layers())
        idx.emplace(l.name, l);
    return idx;
}

/** Run one conv with deterministic weights on a concrete input. */
Tensor3
runConv(ScnnSimulator &sim, const ConvLayerParams &layer,
        const Tensor3 &input, uint64_t seed, bool first, int threads,
        NetworkResult &nr)
{
    SCNN_ASSERT(input.channels() == layer.inChannels &&
                input.width() == layer.inWidth &&
                input.height() == layer.inHeight,
                "GoogLeNet chain: %s expects (%d,%d,%d), got "
                "(%d,%d,%d)", layer.name.c_str(), layer.inChannels,
                layer.inWidth, layer.inHeight, input.channels(),
                input.width(), input.height());

    Rng wtRng(layer.name + "/weights", seed);
    LayerWorkload w;
    w.layer = layer;
    w.input = input;
    w.weights = makeWeights(layer, wtRng);

    RunOptions opts;
    opts.firstLayer = first;
    opts.threads = threads;
    LayerResult res = sim.runLayer(w, opts);
    Tensor3 out = res.output;
    nr.layers.push_back(std::move(res));
    return out;
}

} // anonymous namespace

NetworkResult
runGoogLeNetChained(ScnnSimulator &sim, uint64_t seed, int threads)
{
    const int pinned = resolveThreads(threads);
    const Network net = googLeNet();
    const auto idx = layerIndex(net);
    auto layer = [&](const std::string &name) -> const ConvLayerParams & {
        auto it = idx.find(name);
        if (it == idx.end())
            fatal("GoogLeNet chain: no layer named %s", name.c_str());
        return it->second;
    };

    NetworkResult nr;
    nr.networkName = "GoogLeNet-chained";
    nr.archName = sim.config().name;

    // --- stem: conv1 7x7/2 -> pool 3/2 -> conv2 reduce -> conv2 ->
    //     pool 3/2 ---
    const ConvLayerParams &conv1 = layer("conv1/7x7_s2");
    Rng actRng(conv1.name + "/activations", seed);
    Tensor3 act = makeActivations(conv1, actRng); // dense image

    act = runConv(sim, conv1, act, seed, true, pinned, nr); // 112x112
    // Caffe uses ceil-mode 3x3/2 pooling (112 -> 56); symmetric pad 1
    // reproduces the shape, and pooling over zero padding is
    // harmless on non-negative post-ReLU data.
    act = maxPool(act, 3, 2, 1, pinned);
    if (act.width() != 56)
        fatal("GoogLeNet stem: unexpected pool1 output %d",
              act.width());

    act = runConv(sim, layer("conv2/3x3_reduce"), act, seed, false, pinned,
                  nr);
    act = runConv(sim, layer("conv2/3x3"), act, seed, false, pinned, nr);
    act = maxPool(act, 3, 2, 1, pinned); // 56 -> 28

    // --- inception modules ---
    const char *modules[] = {"IC_3a", "IC_3b", "IC_4a", "IC_4b",
                             "IC_4c", "IC_4d", "IC_4e", "IC_5a",
                             "IC_5b"};
    for (const char *m : modules) {
        const std::string base = std::string(m) + "/";

        const Tensor3 b1 =
            runConv(sim, layer(base + "1x1"), act, seed, false, pinned, nr);

        Tensor3 b3 = runConv(sim, layer(base + "3x3_reduce"), act,
                             seed, false, pinned, nr);
        b3 = runConv(sim, layer(base + "3x3"), b3, seed, false, pinned, nr);

        Tensor3 b5 = runConv(sim, layer(base + "5x5_reduce"), act,
                             seed, false, pinned, nr);
        b5 = runConv(sim, layer(base + "5x5"), b5, seed, false, pinned, nr);

        Tensor3 bp = maxPool(act, 3, 1, 1, pinned); // same-size pool
        bp = runConv(sim, layer(base + "pool_proj"), bp, seed, false, pinned,
                     nr);

        act = concatChannels({b1, b3, b5, bp});

        // Stage pools: after 3b (28 -> 14) and 4e (14 -> 7).
        if (base == "IC_3b/" || base == "IC_4e/")
            act = maxPool(act, 3, 2, 1, pinned);
    }
    return nr;
}

} // namespace scnn
