#include "driver/experiments.hh"

#include "common/logging.hh"
#include "common/parallel.hh"
#include "dcnn/simulator.hh"
#include "nn/model_zoo.hh"
#include "nn/workload.hh"
#include "scnn/oracle.hh"
#include "scnn/simulator.hh"

namespace scnn {

double
LayerComparison::speedupScnn() const
{
    return scnn.cycles > 0
        ? static_cast<double>(dcnn.cycles) /
              static_cast<double>(scnn.cycles)
        : 0.0;
}

double
LayerComparison::speedupOracle() const
{
    return oracleCycles > 0
        ? static_cast<double>(dcnn.cycles) /
              static_cast<double>(oracleCycles)
        : 0.0;
}

double
LayerComparison::energyRelDcnn(const LayerResult &r) const
{
    return dcnn.energyPj > 0 ? r.energyPj / dcnn.energyPj : 0.0;
}

uint64_t
NetworkComparison::totalDcnnCycles() const
{
    uint64_t t = 0;
    for (const auto &l : layers)
        t += l.dcnn.cycles;
    return t;
}

uint64_t
NetworkComparison::totalScnnCycles() const
{
    uint64_t t = 0;
    for (const auto &l : layers)
        t += l.scnn.cycles;
    return t;
}

uint64_t
NetworkComparison::totalOracleCycles() const
{
    uint64_t t = 0;
    for (const auto &l : layers)
        t += l.oracleCycles;
    return t;
}

double
NetworkComparison::totalDcnnEnergy() const
{
    double t = 0;
    for (const auto &l : layers)
        t += l.dcnn.energyPj;
    return t;
}

double
NetworkComparison::totalDcnnOptEnergy() const
{
    double t = 0;
    for (const auto &l : layers)
        t += l.dcnnOpt.energyPj;
    return t;
}

double
NetworkComparison::totalScnnEnergy() const
{
    double t = 0;
    for (const auto &l : layers)
        t += l.scnn.energyPj;
    return t;
}

double
NetworkComparison::networkSpeedupScnn() const
{
    const uint64_t s = totalScnnCycles();
    return s > 0
        ? static_cast<double>(totalDcnnCycles()) / static_cast<double>(s)
        : 0.0;
}

double
NetworkComparison::networkSpeedupOracle() const
{
    const uint64_t o = totalOracleCycles();
    return o > 0
        ? static_cast<double>(totalDcnnCycles()) / static_cast<double>(o)
        : 0.0;
}

NetworkComparison
compareNetwork(const Network &net, uint64_t seed, int threads)
{
    NetworkComparison cmp;
    cmp.networkName = net.name();

    std::vector<ConvLayerParams> layers;
    for (const auto &l : net.layers())
        if (l.inEval)
            layers.push_back(l);

    // Each layer's workload owns an RNG stream derived from (layer
    // name, seed), so the per-layer comparisons are fully independent:
    // fan them out and collect in layer order.  Simulators are cheap
    // to construct and stateless across runLayer calls, so each task
    // builds its own.
    std::vector<size_t> indices(layers.size());
    for (size_t i = 0; i < indices.size(); ++i)
        indices[i] = i;
    cmp.layers = parallelMap(
        indices,
        [&](size_t i) {
            const LayerWorkload w = makeWorkload(layers[i], seed);

            LayerComparison lc;
            lc.layerName = layers[i].name;

            RunOptions scnnOpts;
            scnnOpts.firstLayer = (i == 0);
            scnnOpts.outputDensityHint = (i + 1 < layers.size())
                ? layers[i + 1].inputDensity
                : 0.5;
            ScnnSimulator scnnSim(scnnConfig());
            lc.scnn = scnnSim.runLayer(w, scnnOpts);

            DcnnRunOptions denseOpts;
            denseOpts.firstLayer = (i == 0);
            denseOpts.functional = false;
            denseOpts.outputDensityHint = (i + 1 < layers.size())
                ? layers[i + 1].inputDensity
                : 0.5;
            DcnnSimulator dcnnSim(dcnnConfig());
            DcnnSimulator dcnnOptSim(dcnnOptConfig());
            lc.dcnn = dcnnSim.runLayer(w, denseOpts);
            lc.dcnnOpt = dcnnOptSim.runLayer(w, denseOpts);

            lc.oracleCycles = oracleCycles(lc.scnn, scnnConfig());
            return lc;
        },
        threads);
    return cmp;
}

std::vector<DensityPoint>
densitySweep(const Network &net, const std::vector<double> &densities,
             int threads)
{
    const TimeLoopModel model;
    const AcceleratorConfig scnnCfg = scnnConfig();
    const AcceleratorConfig dcnnCfg = dcnnConfig();
    const AcceleratorConfig dcnnOptCfg = dcnnOptConfig();

    // Sweep points are independent; estimateNetwork is const (the
    // analytical model holds no mutable state), so one model serves
    // every worker.
    return parallelMap(
        densities,
        [&](double d) {
            const Network swept = withUniformDensity(net, d, d);
            const NetworkResult scnnRes =
                model.estimateNetwork(scnnCfg, swept);
            const NetworkResult dcnnRes =
                model.estimateNetwork(dcnnCfg, swept);
            const NetworkResult dcnnOptRes =
                model.estimateNetwork(dcnnOptCfg, swept);

            DensityPoint p;
            p.density = d;
            p.scnnCycles = static_cast<double>(scnnRes.totalCycles());
            p.scnnEnergy = scnnRes.totalEnergyPj();
            p.dcnnCycles = static_cast<double>(dcnnRes.totalCycles());
            p.dcnnEnergy = dcnnRes.totalEnergyPj();
            p.dcnnOptEnergy = dcnnOptRes.totalEnergyPj();
            return p;
        },
        threads);
}

std::vector<GranularityPoint>
peGranularitySweep(const Network &net,
                   const std::vector<std::pair<int, int>> &grids,
                   uint64_t seed, bool fixedAccum, int threads)
{
    return parallelMap(
        grids,
        [&](const std::pair<int, int> &grid) {
            const auto [rows, cols] = grid;
            const AcceleratorConfig cfg = fixedAccum
                ? scnnWithPeGridFixedAccum(rows, cols)
                : scnnWithPeGrid(rows, cols);
            ScnnSimulator sim(cfg);
            const NetworkResult res = sim.runNetwork(net, seed);

            GranularityPoint p;
            p.peRows = rows;
            p.peCols = cols;
            p.perPeMultipliers = cfg.pe.multipliers();
            p.cycles = res.totalCycles();
            double products = 0.0;
            for (const auto &l : res.layers)
                products += static_cast<double>(l.products);
            const double slots = static_cast<double>(p.cycles) *
                                 cfg.multipliers();
            p.mathUtilization = slots > 0 ? products / slots : 0.0;
            double idle = 0.0;
            for (const auto &l : res.layers)
                idle += l.peIdleFraction * static_cast<double>(l.cycles);
            p.peIdleFraction = p.cycles > 0
                ? idle / static_cast<double>(p.cycles)
                : 0.0;
            return p;
        },
        threads);
}

} // namespace scnn
