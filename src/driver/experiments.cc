#include "driver/experiments.hh"

#include "common/logging.hh"
#include "common/parallel.hh"
#include "nn/model_zoo.hh"
#include "sim/session.hh"

namespace scnn {

double
LayerComparison::speedupScnn() const
{
    return scnn.cycles > 0
        ? static_cast<double>(dcnn.cycles) /
              static_cast<double>(scnn.cycles)
        : 0.0;
}

double
LayerComparison::speedupOracle() const
{
    return oracleCycles > 0
        ? static_cast<double>(dcnn.cycles) /
              static_cast<double>(oracleCycles)
        : 0.0;
}

double
LayerComparison::energyRelDcnn(const LayerResult &r) const
{
    return dcnn.energyPj > 0 ? r.energyPj / dcnn.energyPj : 0.0;
}

uint64_t
NetworkComparison::totalDcnnCycles() const
{
    uint64_t t = 0;
    for (const auto &l : layers)
        t += l.dcnn.cycles;
    return t;
}

uint64_t
NetworkComparison::totalScnnCycles() const
{
    uint64_t t = 0;
    for (const auto &l : layers)
        t += l.scnn.cycles;
    return t;
}

uint64_t
NetworkComparison::totalOracleCycles() const
{
    uint64_t t = 0;
    for (const auto &l : layers)
        t += l.oracleCycles;
    return t;
}

double
NetworkComparison::totalDcnnEnergy() const
{
    double t = 0;
    for (const auto &l : layers)
        t += l.dcnn.energyPj;
    return t;
}

double
NetworkComparison::totalDcnnOptEnergy() const
{
    double t = 0;
    for (const auto &l : layers)
        t += l.dcnnOpt.energyPj;
    return t;
}

double
NetworkComparison::totalScnnEnergy() const
{
    double t = 0;
    for (const auto &l : layers)
        t += l.scnn.energyPj;
    return t;
}

double
NetworkComparison::networkSpeedupScnn() const
{
    const uint64_t s = totalScnnCycles();
    return s > 0
        ? static_cast<double>(totalDcnnCycles()) / static_cast<double>(s)
        : 0.0;
}

double
NetworkComparison::networkSpeedupOracle() const
{
    const uint64_t o = totalOracleCycles();
    return o > 0
        ? static_cast<double>(totalDcnnCycles()) / static_cast<double>(o)
        : 0.0;
}

NetworkComparison
compareNetwork(const Network &net, uint64_t seed, int threads)
{
    // A thin session client: the session owns workload synthesis (one
    // workload per layer, shared across the four architectures),
    // derives the oracle bound from the SCNN run, and fans the layers
    // out over the thread pool.
    SimulationRequest req;
    req.network = net;
    req.seed = seed;
    req.threads = threads;
    req.backends = {{"scnn"}, {"dcnn"}, {"dcnn-opt"}, {"oracle"}};
    const SimulationResponse resp = runSession(req);

    const NetworkResult &scnn = resp.get("scnn").result;
    const NetworkResult &dcnn = resp.get("dcnn").result;
    const NetworkResult &dcnnOpt = resp.get("dcnn-opt").result;
    const NetworkResult &oracle = resp.get("oracle").result;

    NetworkComparison cmp;
    cmp.networkName = net.name();
    cmp.layers.resize(scnn.layers.size());
    for (size_t i = 0; i < cmp.layers.size(); ++i) {
        LayerComparison &lc = cmp.layers[i];
        lc.layerName = scnn.layers[i].layerName;
        lc.scnn = scnn.layers[i];
        lc.dcnn = dcnn.layers[i];
        lc.dcnnOpt = dcnnOpt.layers[i];
        lc.oracleCycles = oracle.layers[i].cycles;
    }
    return cmp;
}

std::vector<DensityPoint>
densitySweep(const Network &net, const std::vector<double> &densities,
             int threads)
{
    const AcceleratorConfig scnnCfg = scnnConfig();
    const AcceleratorConfig dcnnCfg = dcnnConfig();
    const AcceleratorConfig dcnnOptCfg = dcnnOptConfig();

    // Sweep points are independent sessions: TimeLoop (no tensors)
    // over the three architecture configurations at each density.
    // Sessions issued from inside a pool worker run their per-layer
    // loops inline, so the fan-out stays at the sweep level.
    return parallelMap(
        densities,
        [&](double d) {
            SimulationRequest req;
            req.network = withUniformDensity(net, d, d);
            req.backends = {{"timeloop", "scnn", scnnCfg},
                            {"timeloop", "dcnn", dcnnCfg},
                            {"timeloop", "dcnn-opt", dcnnOptCfg}};
            const SimulationResponse resp = runSession(req);

            const NetworkResult &scnnRes = resp.get("scnn").result;
            const NetworkResult &dcnnRes = resp.get("dcnn").result;
            const NetworkResult &dcnnOptRes =
                resp.get("dcnn-opt").result;

            DensityPoint p;
            p.density = d;
            p.scnnCycles = static_cast<double>(scnnRes.totalCycles());
            p.scnnEnergy = scnnRes.totalEnergyPj();
            p.dcnnCycles = static_cast<double>(dcnnRes.totalCycles());
            p.dcnnEnergy = dcnnRes.totalEnergyPj();
            p.dcnnOptEnergy = dcnnOptRes.totalEnergyPj();
            return p;
        },
        threads);
}

std::vector<GranularityPoint>
peGranularitySweep(const Network &net,
                   const std::vector<std::pair<int, int>> &grids,
                   uint64_t seed, bool fixedAccum, int threads)
{
    return parallelMap(
        grids,
        [&](const std::pair<int, int> &grid) {
            const auto [rows, cols] = grid;
            const AcceleratorConfig cfg = fixedAccum
                ? scnnWithPeGridFixedAccum(rows, cols)
                : scnnWithPeGrid(rows, cols);

            SimulationRequest req;
            req.network = net;
            req.seed = seed;
            req.backends = {{"scnn", "scnn", cfg}};
            const SimulationResponse resp = runSession(req);
            const NetworkResult &res = resp.get("scnn").result;

            GranularityPoint p;
            p.peRows = rows;
            p.peCols = cols;
            p.perPeMultipliers = cfg.pe.multipliers();
            p.cycles = res.totalCycles();
            double products = 0.0;
            for (const auto &l : res.layers)
                products += static_cast<double>(l.products);
            const double slots = static_cast<double>(p.cycles) *
                                 cfg.multipliers();
            p.mathUtilization = slots > 0 ? products / slots : 0.0;
            double idle = 0.0;
            for (const auto &l : res.layers)
                idle += l.peIdleFraction * static_cast<double>(l.cycles);
            p.peIdleFraction = p.cycles > 0
                ? idle / static_cast<double>(p.cycles)
                : 0.0;
            return p;
        },
        threads);
}

} // namespace scnn
