#include "driver/experiments.hh"

#include "common/logging.hh"
#include "dcnn/simulator.hh"
#include "nn/model_zoo.hh"
#include "nn/workload.hh"
#include "scnn/oracle.hh"
#include "scnn/simulator.hh"

namespace scnn {

double
LayerComparison::speedupScnn() const
{
    return scnn.cycles > 0
        ? static_cast<double>(dcnn.cycles) /
              static_cast<double>(scnn.cycles)
        : 0.0;
}

double
LayerComparison::speedupOracle() const
{
    return oracleCycles > 0
        ? static_cast<double>(dcnn.cycles) /
              static_cast<double>(oracleCycles)
        : 0.0;
}

double
LayerComparison::energyRelDcnn(const LayerResult &r) const
{
    return dcnn.energyPj > 0 ? r.energyPj / dcnn.energyPj : 0.0;
}

uint64_t
NetworkComparison::totalDcnnCycles() const
{
    uint64_t t = 0;
    for (const auto &l : layers)
        t += l.dcnn.cycles;
    return t;
}

uint64_t
NetworkComparison::totalScnnCycles() const
{
    uint64_t t = 0;
    for (const auto &l : layers)
        t += l.scnn.cycles;
    return t;
}

uint64_t
NetworkComparison::totalOracleCycles() const
{
    uint64_t t = 0;
    for (const auto &l : layers)
        t += l.oracleCycles;
    return t;
}

double
NetworkComparison::totalDcnnEnergy() const
{
    double t = 0;
    for (const auto &l : layers)
        t += l.dcnn.energyPj;
    return t;
}

double
NetworkComparison::totalDcnnOptEnergy() const
{
    double t = 0;
    for (const auto &l : layers)
        t += l.dcnnOpt.energyPj;
    return t;
}

double
NetworkComparison::totalScnnEnergy() const
{
    double t = 0;
    for (const auto &l : layers)
        t += l.scnn.energyPj;
    return t;
}

double
NetworkComparison::networkSpeedupScnn() const
{
    const uint64_t s = totalScnnCycles();
    return s > 0
        ? static_cast<double>(totalDcnnCycles()) / static_cast<double>(s)
        : 0.0;
}

double
NetworkComparison::networkSpeedupOracle() const
{
    const uint64_t o = totalOracleCycles();
    return o > 0
        ? static_cast<double>(totalDcnnCycles()) / static_cast<double>(o)
        : 0.0;
}

NetworkComparison
compareNetwork(const Network &net, uint64_t seed)
{
    NetworkComparison cmp;
    cmp.networkName = net.name();

    ScnnSimulator scnnSim(scnnConfig());
    DcnnSimulator dcnnSim(dcnnConfig());
    DcnnSimulator dcnnOptSim(dcnnOptConfig());
    const AcceleratorConfig scnnCfg = scnnConfig();

    std::vector<ConvLayerParams> layers;
    for (const auto &l : net.layers())
        if (l.inEval)
            layers.push_back(l);

    for (size_t i = 0; i < layers.size(); ++i) {
        const LayerWorkload w = makeWorkload(layers[i], seed);

        LayerComparison lc;
        lc.layerName = layers[i].name;

        RunOptions scnnOpts;
        scnnOpts.firstLayer = (i == 0);
        scnnOpts.outputDensityHint =
            (i + 1 < layers.size()) ? layers[i + 1].inputDensity : 0.5;
        lc.scnn = scnnSim.runLayer(w, scnnOpts);

        DcnnRunOptions denseOpts;
        denseOpts.firstLayer = (i == 0);
        denseOpts.functional = false;
        denseOpts.outputDensityHint =
            (i + 1 < layers.size()) ? layers[i + 1].inputDensity : 0.5;
        lc.dcnn = dcnnSim.runLayer(w, denseOpts);
        lc.dcnnOpt = dcnnOptSim.runLayer(w, denseOpts);

        lc.oracleCycles = oracleCycles(lc.scnn, scnnCfg);
        cmp.layers.push_back(std::move(lc));
    }
    return cmp;
}

std::vector<DensityPoint>
densitySweep(const Network &net, const std::vector<double> &densities)
{
    TimeLoopModel model;
    const AcceleratorConfig scnnCfg = scnnConfig();
    const AcceleratorConfig dcnnCfg = dcnnConfig();
    const AcceleratorConfig dcnnOptCfg = dcnnOptConfig();

    std::vector<DensityPoint> points;
    for (double d : densities) {
        const Network swept = withUniformDensity(net, d, d);
        const NetworkResult scnnRes =
            model.estimateNetwork(scnnCfg, swept);
        const NetworkResult dcnnRes =
            model.estimateNetwork(dcnnCfg, swept);
        const NetworkResult dcnnOptRes =
            model.estimateNetwork(dcnnOptCfg, swept);

        DensityPoint p;
        p.density = d;
        p.scnnCycles = static_cast<double>(scnnRes.totalCycles());
        p.scnnEnergy = scnnRes.totalEnergyPj();
        p.dcnnCycles = static_cast<double>(dcnnRes.totalCycles());
        p.dcnnEnergy = dcnnRes.totalEnergyPj();
        p.dcnnOptEnergy = dcnnOptRes.totalEnergyPj();
        points.push_back(p);
    }
    return points;
}

std::vector<GranularityPoint>
peGranularitySweep(const Network &net,
                   const std::vector<std::pair<int, int>> &grids,
                   uint64_t seed, bool fixedAccum)
{
    std::vector<GranularityPoint> points;
    for (const auto &[rows, cols] : grids) {
        const AcceleratorConfig cfg = fixedAccum
            ? scnnWithPeGridFixedAccum(rows, cols)
            : scnnWithPeGrid(rows, cols);
        ScnnSimulator sim(cfg);
        const NetworkResult res = sim.runNetwork(net, seed);

        GranularityPoint p;
        p.peRows = rows;
        p.peCols = cols;
        p.perPeMultipliers = cfg.pe.multipliers();
        p.cycles = res.totalCycles();
        double products = 0.0;
        for (const auto &l : res.layers)
            products += static_cast<double>(l.products);
        const double slots = static_cast<double>(p.cycles) *
                             cfg.multipliers();
        p.mathUtilization = slots > 0 ? products / slots : 0.0;
        double idle = 0.0;
        for (const auto &l : res.layers)
            idle += l.peIdleFraction * static_cast<double>(l.cycles);
        p.peIdleFraction =
            p.cycles > 0 ? idle / static_cast<double>(p.cycles) : 0.0;
        points.push_back(p);
    }
    return points;
}

} // namespace scnn
