#include "driver/dag_runner.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/random.hh"
#include "nn/reference.hh"
#include "nn/workload.hh"

namespace scnn {

namespace {

/**
 * Topological waves in declaration order: wave w holds every layer
 * whose longest producer chain has length w.  Edges only point
 * backward (Network enforces it), so declaration order is already
 * topological and one forward sweep computes the levels.
 */
std::vector<std::vector<size_t>>
buildWaves(const Network &net)
{
    const size_t n = net.numLayers();
    std::vector<size_t> level(n, 0);
    size_t deepest = 0;
    for (size_t i = 0; i < n; ++i) {
        for (const auto &e : net.inputs(i))
            level[i] = std::max(level[i],
                                level[static_cast<size_t>(e.from)] + 1);
        deepest = std::max(deepest, level[i]);
    }
    std::vector<std::vector<size_t>> waves(deepest + 1);
    for (size_t i = 0; i < n; ++i)
        waves[level[i]].push_back(i);
    return waves;
}

/** Element-wise residual addition, in input order. */
Tensor3
addTensors(const std::vector<Tensor3> &parts)
{
    Tensor3 out = parts[0];
    for (size_t p = 1; p < parts.size(); ++p) {
        const Tensor3 &t = parts[p];
        SCNN_ASSERT(t.channels() == out.channels() &&
                    t.width() == out.width() &&
                    t.height() == out.height(),
                    "residual add: shape mismatch");
        float *dst = out.data();
        const float *src = t.data();
        for (size_t i = 0; i < out.size(); ++i)
            dst[i] += src[i];
    }
    return out;
}

/** The per-layer task: gather + join inputs, run, post-pool. */
struct LayerOutcome
{
    LayerResult result;
    Tensor3 forwarded; ///< post-pooled output for the consumers
};

LayerOutcome
runDagLayer(ScnnSimulator &sim, const Network &net, size_t li,
            const std::vector<Tensor3> &forwarded,
            const DagRunOptions &opts, int pinned)
{
    const ConvLayerParams &layer = net.layer(li);
    const auto &in = net.inputs(li);

    LayerWorkload w;
    w.layer = layer;
    if (in.empty()) {
        // Source layer: synthesize the input image / activations from
        // the layer-name-keyed stream (same draw as the sequential
        // runner and the retired GoogLeNet runner).
        Rng actRng(layer.name + "/activations", opts.seed);
        w.input = makeActivations(layer, actRng);
    } else {
        std::vector<Tensor3> parts;
        parts.reserve(in.size());
        for (const auto &e : in) {
            const Tensor3 &src = forwarded[static_cast<size_t>(e.from)];
            SCNN_ASSERT(src.size() > 0,
                        "DAG executor: producer %d of '%s' has no "
                        "forwarded output", e.from, layer.name.c_str());
            if (e.poolWindow > 0) {
                parts.push_back(maxPool(src, e.poolWindow,
                                        e.poolStride, e.poolPad,
                                        pinned));
            } else {
                parts.push_back(src);
            }
        }
        switch (net.join(li)) {
          case JoinKind::Single:
            w.input = std::move(parts[0]);
            break;
          case JoinKind::Concat:
            w.input = concatChannels(parts);
            break;
          case JoinKind::Add:
            w.input = addTensors(parts);
            break;
        }
    }
    SCNN_ASSERT(w.input.channels() == layer.inChannels &&
                w.input.width() == layer.inWidth &&
                w.input.height() == layer.inHeight,
                "DAG executor: '%s' expects (%d,%d,%d), joined inputs "
                "produced (%d,%d,%d)", layer.name.c_str(),
                layer.inChannels, layer.inWidth, layer.inHeight,
                w.input.channels(), w.input.width(), w.input.height());

    if (opts.manifest != nullptr) {
        std::string error;
        const Tensor4 *mw = opts.manifest->weightsFor(layer, &error);
        if (!error.empty())
            fatal("DAG executor: %s", error.c_str());
        if (mw != nullptr)
            w.weights = *mw;
    }
    if (w.weights.size() == 0) {
        Rng wtRng(layer.name + "/weights", opts.seed);
        w.weights = makeWeights(layer, wtRng);
    }

    RunOptions ro;
    ro.firstLayer = in.empty();
    ro.threads = pinned;
    ro.profile = opts.profile;
    // ro.outputDensityHint stays 0.5: emergent density is measured.

    LayerOutcome out;
    out.result = sim.runLayer(w, ro);

    if (layer.poolWindow > 0) {
        out.forwarded = maxPool(out.result.output, layer.poolWindow,
                                layer.poolStride, layer.poolPad,
                                pinned);
        if (!opts.keepOutputs)
            out.result.output = Tensor3();
    } else if (opts.keepOutputs) {
        out.forwarded = out.result.output;
    } else {
        out.forwarded = std::move(out.result.output);
        out.result.output = Tensor3();
    }
    out.result.stats.set("chained_input_density", w.input.density());
    return out;
}

} // anonymous namespace

NetworkResult
runNetworkDag(ScnnSimulator &sim, const Network &net,
              const DagRunOptions &opts)
{
    const size_t n = net.numLayers();
    SCNN_ASSERT(n > 0, "empty network");
    const int pinned = resolveThreads(opts.threads);

    NetworkResult nr;
    nr.networkName = net.name() + "-chained";
    nr.archName = sim.config().name;
    nr.layers.resize(n);

    // Forwarded (post-pooled) outputs, and how many consumer edges
    // still need each one so tensors are released as the frontier
    // advances.
    std::vector<Tensor3> forwarded(n);
    std::vector<int> pendingUses(n, 0);
    for (size_t i = 0; i < n; ++i)
        for (const auto &e : net.inputs(i))
            ++pendingUses[static_cast<size_t>(e.from)];

    for (const auto &wave : buildWaves(net)) {
        // Fan the wave over the pool; single-member waves run inline
        // so their internal parallel sections keep the full pool.
        std::vector<LayerOutcome> outcomes;
        if (wave.size() == 1) {
            outcomes.push_back(runDagLayer(sim, net, wave[0],
                                           forwarded, opts, pinned));
        } else {
            outcomes = parallelMap(
                wave,
                [&](size_t li) {
                    return runDagLayer(sim, net, li, forwarded, opts,
                                       pinned);
                },
                pinned);
        }
        // Deterministic merge: write back in declaration order, then
        // release producers whose consumers have all run.
        for (size_t m = 0; m < wave.size(); ++m) {
            const size_t li = wave[m];
            nr.layers[li] = std::move(outcomes[m].result);
            forwarded[li] = std::move(outcomes[m].forwarded);
        }
        for (const size_t li : wave) {
            for (const auto &e : net.inputs(li)) {
                const auto from = static_cast<size_t>(e.from);
                if (--pendingUses[from] == 0)
                    forwarded[from] = Tensor3();
            }
        }
    }
    return nr;
}

} // namespace scnn
