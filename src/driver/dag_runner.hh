/**
 * @file
 * Generic chained execution of an arbitrary network DAG on the SCNN
 * simulator: layers are scheduled in topological waves, every wave's
 * members fan out over the common/parallel pool, and each layer
 * consumes its producers' actual simulated outputs -- joined by
 * channel concatenation or residual addition, with optional per-edge
 * and post-layer max-pooling -- so activation sparsity emerges from
 * the computation.  Replaces the retired GoogLeNet-specific runner:
 * the inception DAG is now just a zoo entry with explicit edges, and
 * this executor reproduces the retired runner's results bit-for-bit
 * (pinned by tests/golden/googlenet_chained_digest.json).
 *
 * Determinism contract: results are bit-identical for every thread
 * count.  Wave members are independent (per-layer RNG streams are
 * keyed on the layer name; producers come from earlier waves), each
 * member's internal parallel sections follow the PR 3-4 merge-order
 * contract, and the wave merge writes results back in declaration
 * order regardless of completion order.
 */

#ifndef SCNN_DRIVER_DAG_RUNNER_HH
#define SCNN_DRIVER_DAG_RUNNER_HH

#include <cstdint>

#include "nn/manifest.hh"
#include "nn/network.hh"
#include "scnn/result.hh"
#include "scnn/simulator.hh"

namespace scnn {

/** Options for a chained DAG run. */
struct DagRunOptions
{
    uint64_t seed = 20170624;  ///< image + weight synthesis seed
    int threads = 0;           ///< 0 = SCNN_THREADS / hardware default

    /** Retain each layer's functional output in its LayerResult. */
    bool keepOutputs = true;

    /** Record per-stage wall times (RunOptions::profile). */
    bool profile = false;

    /**
     * Optional weight manifest: layers with an entry run on the real
     * checkpoint weights instead of the seeded synthetic draw.  Shape
     * agreement must have been validated (applyManifest); a mismatch
     * here is a programming error and fatal()s.
     */
    const WeightManifest *manifest = nullptr;
};

/**
 * Run every layer of the network with real activation propagation
 * along the explicit edges.  The caller is expected to have checked
 * `net.topologyErrors()` (the sim/ backend boundary does, rejecting
 * bad requests recoverably); structural problems here are fatal().
 * Per-layer results appear in declaration order.  The per-layer
 * output-density hint stays at its 0.5 default (emergent sparsity is
 * measured, not profiled -- same policy as the retired runner).
 */
NetworkResult runNetworkDag(ScnnSimulator &sim, const Network &net,
                            const DagRunOptions &opts);

} // namespace scnn

#endif // SCNN_DRIVER_DAG_RUNNER_HH
