/**
 * @file
 * Shared experiment harnesses: the three-architecture per-layer
 * comparison that Figures 8/9/10 slice, the density sweep behind
 * Figure 7, and the PE-granularity sweep of Section VI-C.  Bench
 * binaries format these results; tests assert on their shapes.
 *
 * All three harnesses are thin clients of the sim/session layer: the
 * session owns workload synthesis and backend dispatch, and these
 * functions reshape its responses into the figure-specific records.
 */

#ifndef SCNN_DRIVER_EXPERIMENTS_HH
#define SCNN_DRIVER_EXPERIMENTS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "arch/config.hh"
#include "nn/network.hh"
#include "scnn/result.hh"

namespace scnn {

/** Master seed used by every experiment (deterministic repro). */
constexpr uint64_t kExperimentSeed = 20170624; // ISCA'17

/** One layer compared across DCNN / DCNN-opt / SCNN / SCNN(oracle). */
struct LayerComparison
{
    std::string layerName;

    LayerResult dcnn;
    LayerResult dcnnOpt;
    LayerResult scnn;
    uint64_t oracleCycles = 0;

    double speedupScnn() const;    ///< DCNN cycles / SCNN cycles
    double speedupOracle() const;  ///< DCNN cycles / oracle cycles
    double energyRelDcnn(const LayerResult &r) const; ///< r / DCNN
};

/** A whole network compared across the architectures. */
struct NetworkComparison
{
    std::string networkName;
    std::vector<LayerComparison> layers;

    uint64_t totalDcnnCycles() const;
    uint64_t totalScnnCycles() const;
    uint64_t totalOracleCycles() const;
    double totalDcnnEnergy() const;
    double totalDcnnOptEnergy() const;
    double totalScnnEnergy() const;

    double networkSpeedupScnn() const;
    double networkSpeedupOracle() const;
};

/**
 * Run the full three-architecture comparison on a network's
 * evaluation-scope layers with cycle-level simulators.  One workload
 * per layer is shared across architectures.
 *
 * Per-layer comparisons are independent (each layer's workload derives
 * its own RNG stream from the master seed) and fan out across the
 * shared thread pool; results are merged in layer order and are
 * bit-identical for every thread count.
 *
 * @param threads worker threads (0 = SCNN_THREADS / hardware default).
 */
NetworkComparison compareNetwork(const Network &net,
                                 uint64_t seed = kExperimentSeed,
                                 int threads = 0);

/** One point of the Fig. 7 density sweep. */
struct DensityPoint
{
    double density;          ///< weight = activation density
    double dcnnCycles;
    double dcnnEnergy;
    double dcnnOptEnergy;
    double scnnCycles;
    double scnnEnergy;
};

/**
 * The Section VI-A sensitivity study: sweep uniform weight/activation
 * density over the given values on a network using the TimeLoop
 * analytical model, reporting cycles and energy for the three
 * architectures.  Points are independent and fan out across the
 * thread pool (merged in input order; bit-identical for any thread
 * count).
 *
 * @param threads worker threads (0 = SCNN_THREADS / hardware default).
 */
std::vector<DensityPoint>
densitySweep(const Network &net, const std::vector<double> &densities,
             int threads = 0);

/** One configuration of the Section VI-C PE-granularity study. */
struct GranularityPoint
{
    int peRows;
    int peCols;
    int perPeMultipliers;
    uint64_t cycles;
    double mathUtilization;  ///< products / (multipliers * cycles)
    double peIdleFraction;
};

/**
 * Sweep PE granularity at fixed chip-wide multiplier count using the
 * cycle-level SCNN simulator.
 *
 * @param fixedAccum use the fixed-accumulator-capacity scaling
 *        (scnnWithPeGridFixedAccum) instead of proportional scaling;
 *        see EXPERIMENTS.md for why both assumptions are reported.
 * @param threads worker threads across grid configurations (0 =
 *        SCNN_THREADS / hardware default); each configuration's
 *        simulation is otherwise unchanged, so results are
 *        bit-identical for any thread count.
 */
std::vector<GranularityPoint>
peGranularitySweep(const Network &net,
                   const std::vector<std::pair<int, int>> &grids,
                   uint64_t seed = kExperimentSeed,
                   bool fixedAccum = false, int threads = 0);

} // namespace scnn

#endif // SCNN_DRIVER_EXPERIMENTS_HH
