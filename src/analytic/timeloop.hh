/**
 * @file
 * TimeLoop: the paper's analytical CNN-accelerator model (Section V).
 *
 * Given a layer shape, density profile and architecture configuration,
 * TimeLoop computes expected cycle counts via bottleneck analysis
 * (multiplier-array occupancy with fragmentation, weight-broadcast and
 * activation DRAM bandwidth, PPU drain) and expected energy from the
 * same event vocabulary the cycle-level simulators emit.  No tensors
 * are synthesized: all quantities are expectations under Bernoulli
 * sparsity, which is what makes TimeLoop fast enough for design-space
 * sweeps (Fig. 7, Section VI-C).
 *
 * Fragmentation is modelled exactly in expectation: the number of
 * vector fetches of width m over a Binomial/Poisson-distributed
 * non-zero count n is E[ceil(n/m)], evaluated by Poisson summation
 * (with the asymptotic n/m + (m-1)/2m form for large means).
 * Accumulator-bank contention adds a calibrated correction
 * proportional to products-per-operation / banks.
 */

#ifndef SCNN_ANALYTIC_TIMELOOP_HH
#define SCNN_ANALYTIC_TIMELOOP_HH

#include "arch/config.hh"
#include "arch/energy_model.hh"
#include "nn/network.hh"
#include "scnn/result.hh"

namespace scnn {

/** Options for an analytical layer estimate. */
struct AnalyticOptions
{
    bool firstLayer = false;
    /** Expected post-ReLU output density (for OARAM/DRAM accounting). */
    double outputDensityHint = 0.5;

    /**
     * Batch size N (the outermost loop of Fig. 3).  The paper
     * evaluates N = 1 (the common inference case); larger batches
     * re-run the activation-side work N times while the weight
     * broadcast is amortized across the batch, which this model
     * captures (an extension beyond the paper's evaluation).
     */
    int batchN = 1;
};

/**
 * E[ceil(n / m)] for n ~ Poisson(lambda): expected vector-fetch count
 * for lambda expected non-zeros fetched m at a time.
 */
double expectedCeil(double lambda, int m);

/**
 * E[ceil(n / m)] for n ~ Binomial(round(nElems), p): the exact
 * fragmentation expectation for Bernoulli-sparse streams.  Unlike the
 * Poisson form this collapses to the deterministic ceil at p = 1
 * (fully dense streams fragment only at the tail).
 */
double expectedCeilBinomial(double nElems, double p, int m);

class TimeLoopModel
{
  public:
    explicit TimeLoopModel(EnergyModel energy = EnergyModel());

    /**
     * Analytical estimate of one layer on the given architecture
     * (SCNN, DCNN or DCNN-opt).  The returned LayerResult carries no
     * functional output.
     */
    LayerResult estimateLayer(const AcceleratorConfig &cfg,
                              const ConvLayerParams &layer,
                              const AnalyticOptions &opts =
                                  AnalyticOptions()) const;

    /** Estimate a whole network (chaining output density hints). */
    NetworkResult estimateNetwork(const AcceleratorConfig &cfg,
                                  const Network &net,
                                  bool evalOnly = true) const;

    // --- calibration knobs (validated against the cycle simulator) ---

    /**
     * Residual crossbar stall per product of sustained overload; the
     * dominant contention term is the throughput bound
     * max(1, products-per-op / usable banks), matching the queued
     * accumulator model.
     */
    double contentionAlpha = 0.0;
    /** Inter-PE imbalance beyond deterministic tile-size skew. */
    double imbalanceBeta = 1.03;

  private:
    EnergyModel energy_;

    LayerResult estimateScnn(const AcceleratorConfig &cfg,
                             const ConvLayerParams &layer,
                             const AnalyticOptions &opts) const;
    LayerResult estimateDcnn(const AcceleratorConfig &cfg,
                             const ConvLayerParams &layer,
                             const AnalyticOptions &opts) const;
};

/** Scalar summary of an analytic network estimate. */
struct AnalyticScore
{
    uint64_t cycles = 0;
    double energyPj = 0.0;
};

/**
 * One-call TimeLoop estimate of a whole network -- the DSE funnel's
 * cheap pre-filter.  Orders of magnitude faster than cycle-level
 * simulation (no tensors are synthesized), deterministic in
 * (cfg, net, evalOnly).
 */
AnalyticScore analyticScore(const AcceleratorConfig &cfg,
                            const Network &net, bool evalOnly = true);

} // namespace scnn

#endif // SCNN_ANALYTIC_TIMELOOP_HH
