#include "analytic/timeloop.hh"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/logging.hh"
#include "scnn/tiling.hh"
#include "tensor/tensor.hh"

namespace scnn {

namespace {

constexpr double kRleElemBits = kDataBits + kRleIndexBits; // 20
constexpr double kBufElemBits = kDataBits + kCoordBits;    // 26

double
ceilDivD(double a, double b)
{
    return std::ceil(a / b);
}

/** Shorthand for the shared RLE storage expectation. */
double
expectedStored(double n, double d)
{
    return expectedRleStored(n, d);
}

/**
 * Fraction of (input position, filter tap) pairs whose output
 * coordinate lands inside the output plane -- the expected landed
 * fraction of Cartesian products.
 */
double
validPairFraction(const ConvLayerParams &layer)
{
    auto axis = [](int inDim, int filt, int stride, int pad, int outDim) {
        long valid = 0;
        for (int x = 0; x < inDim; ++x) {
            for (int f = 0; f < filt; ++f) {
                const int num = x + pad - f;
                if (num < 0 || num % stride != 0)
                    continue;
                const int o = num / stride;
                if (o >= 0 && o < outDim)
                    ++valid;
            }
        }
        // Normalize by the phase-matched pair count: for stride > 1
        // only ~filt/stride taps phase-match a given input.
        const double pairs = static_cast<double>(inDim) * filt /
                             static_cast<double>(stride);
        return pairs > 0 ? static_cast<double>(valid) / pairs : 0.0;
    };
    return std::min(1.0, axis(layer.inWidth, layer.filterW,
                              layer.strideX, layer.padX,
                              layer.outWidth())) *
           std::min(1.0, axis(layer.inHeight, layer.filterH,
                              layer.strideY, layer.padY,
                              layer.outHeight()));
}

} // anonymous namespace

double
expectedCeilBinomial(double nElems, double p, int m)
{
    SCNN_ASSERT(m > 0, "expectedCeilBinomial needs positive width");
    if (nElems <= 0.0 || p <= 0.0)
        return 0.0;
    p = std::min(p, 1.0);
    const long n = std::lround(nElems);
    if (n <= 0)
        return 0.0;
    if (p >= 1.0 - 1e-12)
        return std::ceil(static_cast<double>(n) / m);
    if (m == 1)
        return nElems * p;

    // Sum the pmf over mean +- 9 sigma in log space (stable for any
    // n); outside that window the mass is negligible.
    const double q = 1.0 - p;
    const double mean = n * p;
    const double sigma = std::sqrt(n * p * q);
    const long kLo = std::max(0l, std::lround(mean - 9.0 * sigma - 2));
    const long kHi = std::min(n, std::lround(mean + 9.0 * sigma + 2));
    const double logP = std::log(p);
    const double logQ = std::log(q);
    const double lgN = std::lgamma(static_cast<double>(n) + 1.0);

    double expect = 0.0;
    for (long k = kLo; k <= kHi; ++k) {
        const double logPmf =
            lgN - std::lgamma(static_cast<double>(k) + 1.0) -
            std::lgamma(static_cast<double>(n - k) + 1.0) +
            k * logP + (n - k) * logQ;
        expect += std::exp(logPmf) *
                  std::ceil(static_cast<double>(k) / m);
    }
    return expect;
}

double
expectedCeil(double lambda, int m)
{
    SCNN_ASSERT(m > 0, "expectedCeil needs positive vector width");
    if (lambda <= 0.0)
        return 0.0;
    if (m == 1)
        return lambda;
    if (lambda > 400.0) {
        // Asymptotic: full vectors plus an average half-vector of
        // fragmentation at the stream tail.
        return lambda / m + static_cast<double>(m - 1) / (2.0 * m);
    }
    // Exact Poisson summation: E[ceil(n/m)] = sum_k P(n=k) ceil(k/m).
    double p = std::exp(-lambda); // P(n = 0)
    double expect = 0.0;
    double cumulative = p;
    for (int k = 1; k < 4000; ++k) {
        p *= lambda / k;
        cumulative += p;
        expect += p * std::ceil(static_cast<double>(k) / m);
        if (cumulative > 1.0 - 1e-12 && k > lambda)
            break;
    }
    return expect;
}

TimeLoopModel::TimeLoopModel(EnergyModel energy) : energy_(energy)
{
}

LayerResult
TimeLoopModel::estimateLayer(const AcceleratorConfig &cfg,
                             const ConvLayerParams &layer,
                             const AnalyticOptions &opts) const
{
    layer.validate();
    cfg.validateOrDie();
    SCNN_ASSERT(opts.batchN >= 1, "batch size must be positive");

    AnalyticOptions single = opts;
    single.batchN = 1;
    LayerResult res = cfg.kind == ArchKind::SCNN
        ? estimateScnn(cfg, layer, single)
        : estimateDcnn(cfg, layer, single);
    if (opts.batchN == 1)
        return res;

    // Batch extension: activation-side work repeats per input while
    // the weight broadcast is amortized across the batch (weights
    // stay resident in the FIFO/buffers between inputs of a batch).
    const double n = static_cast<double>(opts.batchN);
    const double wtBits = static_cast<double>(res.dramWeightBits);

    res.cycles = static_cast<uint64_t>(std::llround(std::max(
        static_cast<double>(res.cycles) * n -
            wtBits / cfg.dramBitsPerCycle * (n - 1.0),
        static_cast<double>(res.cycles))));
    res.computeCycles =
        static_cast<uint64_t>(res.computeCycles * opts.batchN);
    res.mulArrayOps *= static_cast<uint64_t>(opts.batchN);
    res.products *= static_cast<uint64_t>(opts.batchN);
    res.landedProducts *= static_cast<uint64_t>(opts.batchN);
    res.denseMacs *= static_cast<uint64_t>(opts.batchN);

    const double dramAct = static_cast<double>(res.dramActBits) * n;
    res.dramActBits = static_cast<uint64_t>(std::llround(dramAct));
    // Weight DRAM stays a single broadcast.
    EnergyEvents ev = res.events;
    const double actDram =
        ev.dramBits - wtBits; // activation share of DRAM
    ev.scale(n);
    ev.dramBits = wtBits + actDram * n;
    res.events = ev;
    res.energyPj = energy_.total(ev, cfg);
    return res;
}

LayerResult
TimeLoopModel::estimateScnn(const AcceleratorConfig &cfg,
                            const ConvLayerParams &layer,
                            const AnalyticOptions &opts) const
{
    LayerResult res;
    res.layerName = layer.name;
    res.archName = cfg.name;
    res.denseMacs = layer.macs();

    const int numPes = cfg.numPes();
    const int F = cfg.pe.mulF;
    const int I = cfg.pe.mulI;
    const int A = cfg.pe.accumBanks;
    const double wd = layer.weightDensity;
    const double ad = layer.inputDensity;
    const int phases = layer.geometry().phases();
    const int K = layer.outChannels;
    const int C = layer.inChannels;
    const double rs = static_cast<double>(layer.filterW) * layer.filterH;

    SpatialTiling tiling(layer, cfg.peRows, cfg.peCols);
    const int kc = chooseKc(layer, cfg, tiling.maxAccumArea());
    const int numGroups = (K + kc - 1) / kc;

    const int cPerGroup = C / layer.groups;
    const int kPerGroup = K / layer.groups;

    const double landedFrac = validPairFraction(layer);

    // Per-PE activation fetch expectation, cached by tile area.
    std::map<long, double> ecaCache;
    auto eca = [&](long tileArea) {
        auto it = ecaCache.find(tileArea);
        if (it != ecaCache.end())
            return it->second;
        const double v = expectedCeilBinomial(
            static_cast<double>(tileArea) / phases, ad, I);
        ecaCache.emplace(tileArea, v);
        return v;
    };
    // Weight fetch expectation, cached by connected channel count.
    std::map<int, double> ecwCache;
    auto ecw = [&](int connectedK) {
        auto it = ecwCache.find(connectedK);
        if (it != ecwCache.end())
            return it->second;
        const double v =
            expectedCeilBinomial(connectedK * rs / phases, wd, F);
        ecwCache.emplace(connectedK, v);
        return v;
    };

    std::vector<double> prevDrain(numPes, 0.0);
    std::vector<long> tileArea(numPes);
    std::vector<long> overlapArea(numPes);
    std::vector<long> haloArea(numPes);
    for (int pr = 0; pr < cfg.peRows; ++pr) {
        for (int pc = 0; pc < cfg.peCols; ++pc) {
            const int p = pr * cfg.peCols + pc;
            tileArea[p] = tiling.inputTile(pr, pc).area();
            const TileRect acc = tiling.accumRect(pr, pc);
            const TileRect own = tiling.outputTile(pr, pc);
            const int ox0 = std::max(own.x0, acc.x0);
            const int ox1 = std::min(own.x1, acc.x1);
            const int oy0 = std::max(own.y0, acc.y0);
            const int oy1 = std::min(own.y1, acc.y1);
            overlapArea[p] = (ox1 > ox0 && oy1 > oy0)
                ? static_cast<long>(ox1 - ox0) * (oy1 - oy0) : 0;
            haloArea[p] = acc.area() - overlapArea[p];
        }
    }

    double layerCycles = 0.0;
    double computeCycles = 0.0;
    double busyCycleSum = 0.0;
    double idleSum = 0.0;
    double mulOpsTotal = 0.0;
    double productsTotal = 0.0;
    double wfifoEntriesTotal = 0.0;
    double haloElemsTotal = 0.0;
    double ppuElemsTotal = 0.0;
    double wtDramBits = 0.0;

    for (int g = 0; g < numGroups; ++g) {
        const int k0 = g * kc;
        const int k1 = std::min(K, k0 + kc);

        // Connected output channels per convolution group.
        double wtBitsGroup = 0.0;
        double wall = 0.0;
        std::vector<double> peTime(numPes, 0.0);

        // Pre-compute per conv-group quantities.
        std::vector<int> connK(layer.groups);
        for (int cg = 0; cg < layer.groups; ++cg) {
            const int lo = std::max(k0, cg * kPerGroup);
            const int hi = std::min(k1, (cg + 1) * kPerGroup);
            connK[cg] = std::max(0, hi - lo);
            const double blockLen = connK[cg] * rs;
            wtBitsGroup += cPerGroup *
                           expectedStored(blockLen, wd) * kRleElemBits;
        }
        wtDramBits += wtBitsGroup;

        for (int p = 0; p < numPes; ++p) {
            double cyc = 0.0;
            double ops = 0.0;
            double prods = 0.0;
            const double ecaP = eca(tileArea[p]);
            const double lamA =
                static_cast<double>(tileArea[p]) * ad / phases;
            for (int cg = 0; cg < layer.groups; ++cg) {
                if (connK[cg] == 0)
                    continue;
                const double ecwG = ecw(connK[cg]);
                const double lamW = connK[cg] * rs * wd / phases;
                const double opsC = phases * ecaP * ecwG;
                ops += cPerGroup * opsC;
                prods += cPerGroup * phases * lamA * lamW;
            }
            // Contention: the queued crossbar is throughput-bound by
            // the banks reachable from this PE's accumulator
            // footprint (positions x channel offsets of the 2*I
            // stride).
            const double pOp = ops > 0 ? prods / ops : 0.0;
            const double accArea =
                static_cast<double>(overlapArea[p] + haloArea[p]);
            const double channelSlots = std::max(
                1.0, std::min<double>(kc, A / (2.0 * I)));
            const double usableBanks = std::min<double>(
                A, std::max(1.0, std::min<double>(accArea, 2.0 * I)) *
                       channelSlots);
            const double cf =
                std::max(1.0, pOp / usableBanks) +
                contentionAlpha * std::max(0.0, pOp - 1.0) / A;
            cyc = ops * cf;

            busyCycleSum += cyc;
            mulOpsTotal += ops;
            productsTotal += prods;
            // Weights re-streamed per activation vector.
            for (int cg = 0; cg < layer.groups; ++cg) {
                if (connK[cg] == 0)
                    continue;
                const double nnzW = connK[cg] * rs * wd;
                const double avPerChannel = phases * ecaP;
                wfifoEntriesTotal += cPerGroup * avPerChannel * nnzW /
                                     phases;
            }

            const double kcA = k1 - k0;
            const double ownElems = kcA * overlapArea[p];
            const double haloElems = kcA * haloArea[p];
            peTime[p] = std::max(cyc, prevDrain[p]);
            prevDrain[p] = ceilDivD(ownElems, cfg.ppuLanes) +
                           ceilDivD(haloElems, cfg.haloLanes);
            haloElemsTotal += haloElems;
            ppuElemsTotal += ownElems;
            wall = std::max(wall, peTime[p]);
        }
        wall *= imbalanceBeta;
        wall = std::max(wall, wtBitsGroup / cfg.dramBitsPerCycle);
        layerCycles += wall;
        computeCycles += wall;
        for (int p = 0; p < numPes; ++p)
            idleSum += wall - std::min(wall, peTime[p]);
    }
    double finalDrain = 0.0;
    for (int p = 0; p < numPes; ++p)
        finalDrain = std::max(finalDrain, prevDrain[p]);
    layerCycles += finalDrain;

    // --- activation storage / DRAM ---
    const double inStored =
        expectedStored(static_cast<double>(layer.inputCount()), ad);
    const double outStored = expectedStored(
        static_cast<double>(layer.outputCount()),
        opts.outputDensityHint);
    const double maxTileArea =
        static_cast<double>(tiling.maxInputTileArea());
    const double maxInBitsPerPe =
        expectedStored(maxTileArea * C, ad) * kRleElemBits;
    const double outPlane = static_cast<double>(layer.outWidth()) *
                            layer.outHeight();
    const double maxOutBitsPerPe =
        expectedStored(outPlane / numPes * K,
                       opts.outputDensityHint) * kRleElemBits;

    const DramTilingDecision dec = decideDramTiling(
        cfg, static_cast<uint64_t>(maxInBitsPerPe),
        static_cast<uint64_t>(maxOutBitsPerPe));
    res.dramTiled = dec.tiled;
    res.numDramTiles = dec.numTiles;

    double dramActBits = 0.0;
    if (dec.tiled) {
        dramActBits = (inStored + outStored) * kRleElemBits;
        wtDramBits *= dec.numTiles;
    }
    if (opts.firstLayer)
        dramActBits += inStored * kRleElemBits;
    const double dramBits = wtDramBits + dramActBits;
    layerCycles = std::max(layerCycles,
                           dramBits / cfg.dramBitsPerCycle);

    res.cycles = static_cast<uint64_t>(std::llround(layerCycles));
    res.computeCycles =
        static_cast<uint64_t>(std::llround(computeCycles));
    res.drainExposedCycles =
        static_cast<uint64_t>(std::llround(finalDrain));
    res.mulArrayOps = static_cast<uint64_t>(std::llround(mulOpsTotal));
    res.products = static_cast<uint64_t>(std::llround(productsTotal));
    res.landedProducts = static_cast<uint64_t>(
        std::llround(productsTotal * landedFrac));
    res.dramWeightBits = static_cast<uint64_t>(std::llround(wtDramBits));
    res.dramActBits = static_cast<uint64_t>(std::llround(dramActBits));

    const double slotsBusy = busyCycleSum * F * I;
    res.multUtilBusy = slotsBusy > 0 ? productsTotal / slotsBusy : 0.0;
    const double slotsAll = layerCycles * cfg.multipliers();
    res.multUtilOverall = slotsAll > 0 ? productsTotal / slotsAll : 0.0;
    res.peIdleFraction =
        layerCycles > 0 ? idleSum / (numPes * layerCycles) : 0.0;

    // --- energy ---
    EnergyEvents &ev = res.events;
    ev.mults = productsTotal;
    ev.coordComputes = productsTotal;
    ev.xbarTransfers = productsTotal * landedFrac;
    // Accumulation plus the PPU drain pass over the dense group
    // footprint (density-independent).
    ev.accBankAccesses = productsTotal * landedFrac +
                         ppuElemsTotal + haloElemsTotal;
    ev.iaramReadBits = inStored * kRleElemBits * numGroups;
    ev.wfifoReadBits = wfifoEntriesTotal * kBufElemBits;
    ev.oaramWriteBits = outStored * kRleElemBits;
    ev.haloBits = haloElemsTotal * 24.0;
    ev.adds = haloElemsTotal;
    ev.ppuElements = ppuElemsTotal;
    ev.dramBits = dramBits;
    res.energyPj = energy_.total(ev, cfg);

    res.stats.set("kc", kc);
    res.stats.set("num_groups", numGroups);
    return res;
}

LayerResult
TimeLoopModel::estimateDcnn(const AcceleratorConfig &cfg,
                            const ConvLayerParams &layer,
                            const AnalyticOptions &opts) const
{
    LayerResult res;
    res.layerName = layer.name;
    res.archName = cfg.name;
    res.denseMacs = layer.macs();

    const bool gated = cfg.kind == ArchKind::DCNN_OPT;
    const int numPes = cfg.numPes();
    const int dotW = cfg.pe.dotWidth;
    const double crsGroup =
        static_cast<double>(layer.inChannels / layer.groups) *
        layer.filterW * layer.filterH;
    const double dpChunks = std::ceil(crsGroup / dotW);

    SpatialTiling tiling(layer, cfg.peRows, cfg.peCols);

    double wall = 0.0;
    double cyclesTotal = 0.0;
    double inFootprintTotal = 0.0;
    long maxOutTileArea = 0;
    for (int pr = 0; pr < cfg.peRows; ++pr) {
        for (int pc = 0; pc < cfg.peCols; ++pc) {
            const TileRect out = tiling.outputTile(pr, pc);
            maxOutTileArea = std::max(maxOutTileArea, out.area());
            const double cyc = static_cast<double>(out.area()) *
                               layer.outChannels * dpChunks;
            cyclesTotal += cyc;
            wall = std::max(wall, cyc);
            if (!out.empty()) {
                const double wIn =
                    std::min<double>(layer.inWidth,
                                     out.width() * layer.strideX +
                                         layer.filterW - 1);
                const double hIn =
                    std::min<double>(layer.inHeight,
                                     out.height() * layer.strideY +
                                         layer.filterH - 1);
                inFootprintTotal += wIn * hIn;
            }
        }
    }

    const long accEntries = cfg.pe.denseAccBufBytes / 3;
    int kcDense = 1;
    while (kcDense * 2 <= layer.outChannels && maxOutTileArea > 0 &&
           static_cast<long>(kcDense) * 2 * maxOutTileArea <=
               accEntries) {
        kcDense *= 2;
    }
    const int numGroups = (layer.outChannels + kcDense - 1) / kcDense;

    const uint64_t inBytes = layer.inputCount() * kDataBytes;
    const uint64_t outBytes = layer.outputCount() * kDataBytes;
    const bool tiled = inBytes + outBytes > cfg.denseSramBytes;
    res.dramTiled = tiled;
    res.numDramTiles =
        tiled ? static_cast<int>((inBytes + outBytes +
                                  cfg.denseSramBytes - 1) /
                                 cfg.denseSramBytes)
              : 1;

    double dramWeightBits =
        static_cast<double>(layer.weightCount()) * kDataBits;
    if (tiled)
        dramWeightBits *= res.numDramTiles;

    auto actBits = [&](double count, double density) {
        const double dense = count * kDataBits;
        if (!gated)
            return dense;
        // Compression bypass: never worse than dense streaming.
        return std::min(dense,
                        expectedStored(count, density) * kRleElemBits);
    };
    double dramActBits = 0.0;
    if (tiled) {
        dramActBits += actBits(static_cast<double>(layer.inputCount()),
                               layer.inputDensity);
        dramActBits += actBits(static_cast<double>(layer.outputCount()),
                               opts.outputDensityHint);
    }
    if (opts.firstLayer) {
        dramActBits += actBits(static_cast<double>(layer.inputCount()),
                               layer.inputDensity);
    }

    const double dramBits = dramWeightBits + dramActBits;
    const double layerCycles =
        std::max(wall, dramBits / cfg.dramBitsPerCycle);

    res.cycles = static_cast<uint64_t>(std::llround(layerCycles));
    res.computeCycles = static_cast<uint64_t>(std::llround(wall));
    res.dramWeightBits =
        static_cast<uint64_t>(std::llround(dramWeightBits));
    res.dramActBits = static_cast<uint64_t>(std::llround(dramActBits));

    const double slots = cyclesTotal * dotW;
    const double macs = static_cast<double>(layer.macs());
    res.mulArrayOps = static_cast<uint64_t>(std::llround(cyclesTotal));
    res.products = layer.macs();
    res.landedProducts = layer.macs();
    res.multUtilBusy = slots > 0 ? macs / slots : 0.0;
    const double slotsAll = layerCycles * cfg.multipliers();
    res.multUtilOverall = slotsAll > 0 ? macs / slotsAll : 0.0;

    double idleSum = 0.0;
    for (int pr = 0; pr < cfg.peRows; ++pr) {
        for (int pc = 0; pc < cfg.peCols; ++pc) {
            const double cyc =
                static_cast<double>(
                    tiling.outputTile(pr, pc).area()) *
                layer.outChannels * dpChunks;
            idleSum += layerCycles - std::min(layerCycles, cyc);
        }
    }
    res.peIdleFraction =
        layerCycles > 0 ? idleSum / (numPes * layerCycles) : 0.0;

    EnergyEvents &ev = res.events;
    if (gated) {
        const double nzFrac = validPairFraction(layer) *
                              layer.inputDensity * layer.weightDensity;
        ev.mults = macs * std::min(1.0, nzFrac);
        ev.gatedMults = slots - ev.mults;
    } else {
        ev.mults = macs;
        ev.gatedMults = slots - macs;
    }
    ev.adds = ev.mults;
    ev.peBufReadBits =
        cyclesTotal * (dotW * kDataBits +
                       static_cast<double>(dotW * kDataBits) / kcDense +
                       48.0);
    const double inStreamBits = inFootprintTotal * layer.inChannels *
                                kDataBits * numGroups;
    ev.peBufWriteBits =
        inStreamBits +
        static_cast<double>(layer.weightCount()) * kDataBits * numPes;
    ev.denseSramReadBits = inStreamBits;
    ev.denseSramWriteBits =
        static_cast<double>(layer.outputCount()) * kDataBits;
    ev.dramBits = dramBits;
    ev.ppuElements = static_cast<double>(layer.outputCount());
    res.energyPj = energy_.total(ev, cfg);

    res.stats.set("kc_dense", kcDense);
    res.stats.set("num_groups", numGroups);
    return res;
}

NetworkResult
TimeLoopModel::estimateNetwork(const AcceleratorConfig &cfg,
                               const Network &net, bool evalOnly) const
{
    NetworkResult nr;
    nr.networkName = net.name();
    nr.archName = cfg.name;

    std::vector<ConvLayerParams> layers;
    for (const auto &l : net.layers())
        if (!evalOnly || l.inEval)
            layers.push_back(l);

    for (size_t i = 0; i < layers.size(); ++i) {
        AnalyticOptions opts;
        opts.firstLayer = (i == 0);
        opts.outputDensityHint =
            (i + 1 < layers.size()) ? layers[i + 1].inputDensity : 0.5;
        nr.layers.push_back(estimateLayer(cfg, layers[i], opts));
    }
    return nr;
}

AnalyticScore
analyticScore(const AcceleratorConfig &cfg, const Network &net,
              bool evalOnly)
{
    static const TimeLoopModel model;
    const NetworkResult nr = model.estimateNetwork(cfg, net, evalOnly);
    return {nr.totalCycles(), nr.totalEnergyPj()};
}

} // namespace scnn
