#include "tensor/tensor.hh"

#include <algorithm>
#include <cmath>

namespace scnn {

size_t
Tensor3::nonZeros() const
{
    return static_cast<size_t>(
        std::count_if(data_.begin(), data_.end(),
                      [](float v) { return v != 0.0f; }));
}

double
Tensor3::density() const
{
    return data_.empty()
        ? 0.0
        : static_cast<double>(nonZeros()) / static_cast<double>(size());
}

void
Tensor3::clear()
{
    std::fill(data_.begin(), data_.end(), 0.0f);
}

void
Tensor3::relu()
{
    for (auto &v : data_)
        v = std::max(v, 0.0f);
}

size_t
Tensor4::nonZeros() const
{
    return static_cast<size_t>(
        std::count_if(data_.begin(), data_.end(),
                      [](float v) { return v != 0.0f; }));
}

double
Tensor4::density() const
{
    return data_.empty()
        ? 0.0
        : static_cast<double>(nonZeros()) / static_cast<double>(size());
}

double
maxAbsDiff(const Tensor3 &a, const Tensor3 &b)
{
    if (a.channels() != b.channels() || a.width() != b.width() ||
        a.height() != b.height()) {
        fatal("maxAbsDiff: shape mismatch (%d,%d,%d) vs (%d,%d,%d)",
              a.channels(), a.width(), a.height(),
              b.channels(), b.width(), b.height());
    }
    double worst = 0.0;
    const float *pa = a.data();
    const float *pb = b.data();
    for (size_t i = 0; i < a.size(); ++i)
        worst = std::max(worst, std::fabs(static_cast<double>(pa[i]) -
                                          static_cast<double>(pb[i])));
    return worst;
}

bool
approxEqual(const Tensor3 &a, const Tensor3 &b, double tol)
{
    return maxAbsDiff(a, b) <= tol;
}

Tensor3
concatChannels(const std::vector<Tensor3> &parts)
{
    if (parts.empty())
        fatal("concatChannels: no tensors");
    const int w = parts.front().width();
    const int h = parts.front().height();
    int channels = 0;
    for (const auto &t : parts) {
        if (t.width() != w || t.height() != h) {
            fatal("concatChannels: plane mismatch (%dx%d vs %dx%d)",
                  t.width(), t.height(), w, h);
        }
        channels += t.channels();
    }
    Tensor3 out(channels, w, h);
    int base = 0;
    for (const auto &t : parts) {
        for (int c = 0; c < t.channels(); ++c)
            for (int x = 0; x < w; ++x)
                for (int y = 0; y < h; ++y)
                    out.set(base + c, x, y, t.get(c, x, y));
        base += t.channels();
    }
    return out;
}

} // namespace scnn
