/**
 * @file
 * Dense tensor types used across the simulator.
 *
 * Conventions follow the paper's notation (Section III):
 *  - Activations are 3-D: (c, x, y) with c an input channel index,
 *    x in [0, W) and y in [0, H).  A (x, y) slice is a "plane".
 *  - Weights are 4-D: (k, c, r, s) with k an output channel, c an input
 *    channel, and (r, s) the filter coordinates, r in [0, R), s in
 *    [0, S).
 *
 * Values are held as float for arithmetic convenience; storage and
 * traffic are accounted at the paper's 16-bit data size via
 * kDataBits / kDataBytes.  Layout is row-major with the last index
 * fastest.
 */

#ifndef SCNN_TENSOR_TENSOR_HH
#define SCNN_TENSOR_TENSOR_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace scnn {

/** Nominal data-type width used in all storage accounting (Table I). */
constexpr int kDataBits = 16;
constexpr int kDataBytes = 2;

/**
 * Coordinate overhead per value held in the weight FIFO and activation
 * RAMs (Section IV: "a 10-bit overhead for each 16-bit value to encode
 * the coordinates in the compressed-sparse format").
 */
constexpr int kCoordBits = 10;

/** Index width of the run-length encoding (Section IV: four bits). */
constexpr int kRleIndexBits = 4;

/** 3-D activation tensor, indexed (c, x, y). */
class Tensor3
{
  public:
    Tensor3() = default;

    Tensor3(int channels, int width, int height, float fill = 0.0f)
        : c_(channels), w_(width), h_(height),
          data_(static_cast<size_t>(channels) * width * height, fill)
    {
        SCNN_ASSERT(channels >= 0 && width >= 0 && height >= 0,
                    "negative tensor dimension");
    }

    int channels() const { return c_; }
    int width() const { return w_; }
    int height() const { return h_; }
    size_t size() const { return data_.size(); }

    size_t
    index(int c, int x, int y) const
    {
        return (static_cast<size_t>(c) * w_ + x) * h_ + y;
    }

    float
    at(int c, int x, int y) const
    {
        SCNN_ASSERT(inBounds(c, x, y), "Tensor3 index (%d,%d,%d) out of "
                    "bounds (%d,%d,%d)", c, x, y, c_, w_, h_);
        return data_[index(c, x, y)];
    }

    float &
    at(int c, int x, int y)
    {
        SCNN_ASSERT(inBounds(c, x, y), "Tensor3 index (%d,%d,%d) out of "
                    "bounds (%d,%d,%d)", c, x, y, c_, w_, h_);
        return data_[index(c, x, y)];
    }

    /** Unchecked access for hot loops. */
    float get(int c, int x, int y) const { return data_[index(c, x, y)]; }
    void set(int c, int x, int y, float v) { data_[index(c, x, y)] = v; }

    bool
    inBounds(int c, int x, int y) const
    {
        return c >= 0 && c < c_ && x >= 0 && x < w_ && y >= 0 && y < h_;
    }

    const float *data() const { return data_.data(); }
    float *data() { return data_.data(); }

    /** Pointer to the start of channel c's W*H plane. */
    const float *
    plane(int c) const
    {
        return data_.data() + static_cast<size_t>(c) * w_ * h_;
    }

    /** Number of non-zero elements. */
    size_t nonZeros() const;

    /** Fraction of non-zero elements (0 for an empty tensor). */
    double density() const;

    /** Set all elements to zero. */
    void clear();

    /** Apply ReLU (clamp negatives to zero) in place. */
    void relu();

  private:
    int c_ = 0;
    int w_ = 0;
    int h_ = 0;
    std::vector<float> data_;
};

/** 4-D weight tensor, indexed (k, c, r, s). */
class Tensor4
{
  public:
    Tensor4() = default;

    Tensor4(int k, int c, int r, int s, float fill = 0.0f)
        : k_(k), c_(c), r_(r), s_(s),
          data_(static_cast<size_t>(k) * c * r * s, fill)
    {
        SCNN_ASSERT(k >= 0 && c >= 0 && r >= 0 && s >= 0,
                    "negative tensor dimension");
    }

    int k() const { return k_; }
    int c() const { return c_; }
    int r() const { return r_; }
    int s() const { return s_; }
    size_t size() const { return data_.size(); }

    size_t
    index(int k, int c, int r, int s) const
    {
        return ((static_cast<size_t>(k) * c_ + c) * r_ + r) * s_ + s;
    }

    float
    at(int k, int c, int r, int s) const
    {
        SCNN_ASSERT(inBounds(k, c, r, s), "Tensor4 index (%d,%d,%d,%d) "
                    "out of bounds (%d,%d,%d,%d)", k, c, r, s,
                    k_, c_, r_, s_);
        return data_[index(k, c, r, s)];
    }

    float &
    at(int k, int c, int r, int s)
    {
        SCNN_ASSERT(inBounds(k, c, r, s), "Tensor4 index (%d,%d,%d,%d) "
                    "out of bounds (%d,%d,%d,%d)", k, c, r, s,
                    k_, c_, r_, s_);
        return data_[index(k, c, r, s)];
    }

    float
    get(int k, int c, int r, int s) const
    {
        return data_[index(k, c, r, s)];
    }

    bool
    inBounds(int k, int c, int r, int s) const
    {
        return k >= 0 && k < k_ && c >= 0 && c < c_ &&
               r >= 0 && r < r_ && s >= 0 && s < s_;
    }

    const float *data() const { return data_.data(); }
    float *data() { return data_.data(); }

    size_t nonZeros() const;
    double density() const;

  private:
    int k_ = 0;
    int c_ = 0;
    int r_ = 0;
    int s_ = 0;
    std::vector<float> data_;
};

/**
 * Maximum absolute element-wise difference between two tensors of the
 * same shape; fatal() on shape mismatch.  Used by correctness tests to
 * compare simulator outputs against the reference convolution.
 */
double maxAbsDiff(const Tensor3 &a, const Tensor3 &b);

/**
 * Concatenate tensors along the channel dimension (the inception
 * module's output filter concatenation); fatal() if the plane
 * dimensions disagree.
 */
Tensor3 concatChannels(const std::vector<Tensor3> &parts);

/** true when all elements differ by at most tol. */
bool approxEqual(const Tensor3 &a, const Tensor3 &b, double tol = 1e-4);

} // namespace scnn

#endif // SCNN_TENSOR_TENSOR_HH
