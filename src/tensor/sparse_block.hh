/**
 * @file
 * Coordinate-bearing compressed-sparse blocks, i.e. the decoded form
 * the SCNN PE datapath consumes (Section III-B):
 *
 *  "What is key is that decoding a sparse format ultimately yields a
 *   non-zero data value and an index indicating the coordinates of the
 *   value in the weight or input activation matrices."
 *
 * Activations are encoded per input channel over a PE's Wt x Ht tile;
 * weights are encoded per (output-channel group, input channel) over a
 * Kc x R x S subvolume.  Both carry exact RLE storage accounting (via
 * tensor/rle.hh) used for buffer occupancy and DRAM traffic.
 *
 * Storage is structure-of-arrays: per (channel, phase) substream the
 * values and coordinates live in separate flat arrays so the PE's
 * F x I Cartesian-product kernel streams each operand field
 * contiguously.  Coordinates are pre-biased for the kernel --
 * activations carry the padded stride quotients ((x + padX) / strideX,
 * (y + padY) / strideY), weights carry the tap quotients (r / strideX,
 * s / strideY) and k relative to the group base k0 -- so the inner
 * loop computes every output coordinate with one subtraction: within
 * a phase the activation and tap coordinates share the same stride
 * remainder, hence (x + padX - r) / strideX == (x + padX) / strideX -
 * r / strideX exactly, with no per-product division, padding or
 * group-offset arithmetic for *any* stride.  Both containers support
 * rebuild() so a caller can reuse one object (and its heap capacity)
 * across output-channel groups and layers.
 *
 * Strided convolutions are handled by phase decomposition: the dense
 * output o(ox,oy) sums in(ox*sx + r - px, oy*sy + s - py), so an input
 * at x pairs with filter taps r satisfying (x + px) == r (mod sx).
 * Partitioning activation and weight streams by phase keeps the
 * Cartesian product free of extraneous products (the paper's stride-1
 * exposition generalizes this way; AlexNet conv1 has stride 4).  For
 * stride 1 there is exactly one phase and the decomposition is a
 * no-op.
 */

#ifndef SCNN_TENSOR_SPARSE_BLOCK_HH
#define SCNN_TENSOR_SPARSE_BLOCK_HH

#include <cstdint>
#include <vector>

#include "common/simd.hh"
#include "tensor/rle.hh"
#include "tensor/tensor.hh"

namespace scnn {

/** Stride/padding geometry of a convolution. */
struct ConvGeometry
{
    int strideX = 1;
    int strideY = 1;
    int padX = 0;
    int padY = 0;

    int phases() const { return strideX * strideY; }

    int
    actPhase(int x, int y) const
    {
        return ((x + padX) % strideX) * strideY + ((y + padY) % strideY);
    }

    int
    wtPhase(int r, int s) const
    {
        return (r % strideX) * strideY + (s % strideY);
    }
};

/** One decoded activation: value plus its (x, y) input coordinates. */
struct ActEntry
{
    float value;
    int16_t x;
    int16_t y;
};

/** One decoded weight: value plus its (k, r, s) coordinates. */
struct WtEntry
{
    float value;
    int16_t k;
    int16_t r;
    int16_t s;
};

/**
 * Compressed activations of one PE's input tile: per channel, per
 * stride phase, the non-zero entries in (x, y) scan order, stored as
 * structure-of-arrays with pre-padded coordinates, plus RLE storage
 * accounting.
 */
class CompressedActTile
{
  public:
    /** SoA view of one (channel, phase) substream. */
    struct Span
    {
        const float *value = nullptr;
        const int16_t *xq = nullptr; ///< (x + padX) / strideX
        const int16_t *yq = nullptr; ///< (y + padY) / strideY
        size_t count = 0;

        size_t size() const { return count; }
        bool empty() const { return count == 0; }
    };

    CompressedActTile() = default;

    /**
     * @param acts  full input activation tensor.
     * @param x0,x1,y0,y1 the tile rectangle [x0,x1) x [y0,y1).
     * @param geom  convolution geometry (for phase decomposition).
     */
    CompressedActTile(const Tensor3 &acts, int x0, int x1, int y0,
                      int y1, const ConvGeometry &geom)
    {
        rebuild(acts, x0, x1, y0, y1, geom);
    }

    /** Re-encode a tile in place, reusing the heap capacity. */
    void rebuild(const Tensor3 &acts, int x0, int x1, int y0, int y1,
                 const ConvGeometry &geom);

    int numChannels() const { return channels_; }
    int numPhases() const { return phases_; }

    /** SoA substream for (channel, phase). */
    Span
    span(int c, int phase) const
    {
        const size_t li = static_cast<size_t>(c) * phases_ + phase;
        const uint32_t b = offsets_[li];
        return {values_.data() + b, xq_.data() + b, yq_.data() + b,
                offsets_[li + 1] - b};
    }

    /** Decoded (unpadded) entries for (channel, phase); allocates --
     *  for tests and tools, not the kernel path. */
    std::vector<ActEntry> decodedEntries(int c, int phase) const;

    /** Total non-zeros in channel c (all phases). */
    uint64_t
    channelNonZeros(int c) const
    {
        const size_t b = static_cast<size_t>(c) * phases_;
        return offsets_[b + phases_] - offsets_[b];
    }

    /** RLE stored elements (non-zeros + placeholders) in channel c. */
    uint64_t channelStoredElements(int c) const { return stored_[c]; }

    uint64_t nonZeros() const { return nonZeros_; }
    uint64_t storedElements() const { return storedTotal_; }
    uint64_t denseElements() const { return denseElements_; }

    /** Occupied bits at (kDataBits + kRleIndexBits) per stored elem. */
    uint64_t
    storageBits() const
    {
        return storedElements() * (kDataBits + kRleIndexBits);
    }

    int x0() const { return x0_; }
    int x1() const { return x1_; }
    int y0() const { return y0_; }
    int y1() const { return y1_; }

  private:
    int channels_ = 0;
    int phases_ = 1;
    int x0_ = 0, x1_ = 0, y0_ = 0, y1_ = 0;
    int padX_ = 0, padY_ = 0;
    int strideX_ = 1, strideY_ = 1;
    // 64-byte aligned: the PE kernels stream these with full-width
    // vector loads.
    simd::AlignedVec<float> values_;
    simd::AlignedVec<int16_t> xq_;
    simd::AlignedVec<int16_t> yq_;
    /** Substream bounds: entry (c, p) is
     *  [offsets_[c*phases+p], offsets_[c*phases+p+1]). */
    std::vector<uint32_t> offsets_;
    std::vector<uint64_t> stored_;
    uint64_t nonZeros_ = 0;
    uint64_t storedTotal_ = 0;
    uint64_t denseElements_ = 0;
};

/**
 * Compressed weights for one (output-channel group, input channel)
 * pair: non-zero entries over the Kc x R x S subvolume in (r, s, k)
 * scan order, partitioned by stride phase, stored as
 * structure-of-arrays with k held relative to the group base k0, with
 * RLE accounting.
 *
 * Grouped convolutions (AlexNet conv2/4/5) are honored: output channel
 * k connects to input channel c only within the same convolution
 * group; unconnected (k, c) pairs are structurally absent (they occupy
 * no storage and generate no work).
 */
class CompressedWeightBlock
{
  public:
    /** SoA view of one phase substream. */
    struct Span
    {
        const float *value = nullptr;
        const int16_t *kRel = nullptr; ///< k - k0
        const int16_t *rq = nullptr;   ///< r / strideX
        const int16_t *sq = nullptr;   ///< s / strideY
        size_t count = 0;

        size_t size() const { return count; }
        bool empty() const { return count == 0; }
    };

    CompressedWeightBlock() = default;

    /**
     * @param weights   layer weights, shape (K, C/groups, R, S).
     * @param k0,k1     output-channel range [k0, k1) of this group.
     * @param c         global input channel index in [0, C).
     * @param totalC    layer input channel count C.
     * @param convGroups number of convolution groups.
     * @param geom      convolution geometry.
     */
    CompressedWeightBlock(const Tensor4 &weights, int k0, int k1, int c,
                          int totalC, int convGroups,
                          const ConvGeometry &geom)
    {
        rebuild(weights, k0, k1, c, totalC, convGroups, geom);
    }

    /** Re-encode a group block in place, reusing the heap capacity --
     *  the per-group hot path rebuilds one block per input channel
     *  without touching the allocator. */
    void rebuild(const Tensor4 &weights, int k0, int k1, int c,
                 int totalC, int convGroups, const ConvGeometry &geom);

    int numPhases() const { return phases_; }
    int k0() const { return k0_; }

    Span
    span(int phase) const
    {
        const uint32_t b = offsets_[phase];
        return {values_.data() + b, kRel_.data() + b, rq_.data() + b,
                sq_.data() + b, offsets_[phase + 1] - b};
    }

    /** Decoded entries (global k) for a phase; allocates -- for tests
     *  and tools, not the kernel path. */
    std::vector<WtEntry> decodedEntries(int phase) const;

    uint64_t nonZeros() const { return nonZeros_; }
    uint64_t storedElements() const { return stored_; }
    uint64_t denseElements() const { return denseElements_; }

    uint64_t
    storageBits() const
    {
        return storedElements() * (kDataBits + kRleIndexBits);
    }

  private:
    int phases_ = 1;
    int k0_ = 0;
    int strideX_ = 1, strideY_ = 1;
    // 64-byte aligned: the PE kernels stream these with full-width
    // vector loads.
    simd::AlignedVec<float> values_;
    simd::AlignedVec<int16_t> kRel_;
    simd::AlignedVec<int16_t> rq_;
    simd::AlignedVec<int16_t> sq_;
    std::vector<uint32_t> offsets_; ///< phases_ + 1 bounds
    uint64_t stored_ = 0;
    uint64_t nonZeros_ = 0;
    uint64_t denseElements_ = 0;
};

/**
 * RLE accounting for a whole activation tensor encoded per channel
 * (the OARAM/DRAM form).  Returns total stored elements.
 */
uint64_t storedElementsPerChannel(const Tensor3 &acts);

/** RLE accounting for a weight tensor encoded per (k, c) filter. */
uint64_t storedElementsPerFilter(const Tensor4 &weights);

} // namespace scnn

#endif // SCNN_TENSOR_SPARSE_BLOCK_HH
