/**
 * @file
 * Coordinate-bearing compressed-sparse blocks, i.e. the decoded form
 * the SCNN PE datapath consumes (Section III-B):
 *
 *  "What is key is that decoding a sparse format ultimately yields a
 *   non-zero data value and an index indicating the coordinates of the
 *   value in the weight or input activation matrices."
 *
 * Activations are encoded per input channel over a PE's Wt x Ht tile;
 * weights are encoded per (output-channel group, input channel) over a
 * Kc x R x S subvolume.  Both carry exact RLE storage accounting (via
 * tensor/rle.hh) used for buffer occupancy and DRAM traffic.
 *
 * Strided convolutions are handled by phase decomposition: the dense
 * output o(ox,oy) sums in(ox*sx + r - px, oy*sy + s - py), so an input
 * at x pairs with filter taps r satisfying (x + px) == r (mod sx).
 * Partitioning activation and weight streams by phase keeps the
 * Cartesian product free of extraneous products (the paper's stride-1
 * exposition generalizes this way; AlexNet conv1 has stride 4).  For
 * stride 1 there is exactly one phase and the decomposition is a
 * no-op.
 */

#ifndef SCNN_TENSOR_SPARSE_BLOCK_HH
#define SCNN_TENSOR_SPARSE_BLOCK_HH

#include <cstdint>
#include <vector>

#include "tensor/rle.hh"
#include "tensor/tensor.hh"

namespace scnn {

/** Stride/padding geometry of a convolution. */
struct ConvGeometry
{
    int strideX = 1;
    int strideY = 1;
    int padX = 0;
    int padY = 0;

    int phases() const { return strideX * strideY; }

    int
    actPhase(int x, int y) const
    {
        return ((x + padX) % strideX) * strideY + ((y + padY) % strideY);
    }

    int
    wtPhase(int r, int s) const
    {
        return (r % strideX) * strideY + (s % strideY);
    }
};

/** One decoded activation: value plus its (x, y) input coordinates. */
struct ActEntry
{
    float value;
    int16_t x;
    int16_t y;
};

/** One decoded weight: value plus its (k, r, s) coordinates. */
struct WtEntry
{
    float value;
    int16_t k;
    int16_t r;
    int16_t s;
};

/**
 * Compressed activations of one PE's input tile: per channel, per
 * stride phase, the non-zero entries in (x, y) scan order with global
 * input coordinates, plus RLE storage accounting.
 */
class CompressedActTile
{
  public:
    /**
     * @param acts  full input activation tensor.
     * @param x0,x1,y0,y1 the tile rectangle [x0,x1) x [y0,y1).
     * @param geom  convolution geometry (for phase decomposition).
     */
    CompressedActTile(const Tensor3 &acts, int x0, int x1, int y0,
                      int y1, const ConvGeometry &geom);

    int numChannels() const { return channels_; }
    int numPhases() const { return phases_; }

    /** Non-zero entries for (channel, phase). */
    const std::vector<ActEntry> &
    entries(int c, int phase) const
    {
        return lists_[static_cast<size_t>(c) * phases_ + phase];
    }

    /** Total non-zeros in channel c (all phases). */
    uint64_t channelNonZeros(int c) const;

    /** RLE stored elements (non-zeros + placeholders) in channel c. */
    uint64_t channelStoredElements(int c) const { return stored_[c]; }

    uint64_t nonZeros() const { return nonZeros_; }
    uint64_t storedElements() const { return storedTotal_; }
    uint64_t denseElements() const { return denseElements_; }

    /** Occupied bits at (kDataBits + kRleIndexBits) per stored elem. */
    uint64_t
    storageBits() const
    {
        return storedElements() * (kDataBits + kRleIndexBits);
    }

    int x0() const { return x0_; }
    int x1() const { return x1_; }
    int y0() const { return y0_; }
    int y1() const { return y1_; }

  private:
    int channels_;
    int phases_;
    int x0_, x1_, y0_, y1_;
    std::vector<std::vector<ActEntry>> lists_;
    std::vector<uint64_t> stored_;
    uint64_t nonZeros_ = 0;
    uint64_t storedTotal_ = 0;
    uint64_t denseElements_ = 0;
};

/**
 * Compressed weights for one (output-channel group, input channel)
 * pair: non-zero entries over the Kc x R x S subvolume in (k, r, s)
 * scan order, partitioned by stride phase, with RLE accounting.
 *
 * Grouped convolutions (AlexNet conv2/4/5) are honored: output channel
 * k connects to input channel c only within the same convolution
 * group; unconnected (k, c) pairs are structurally absent (they occupy
 * no storage and generate no work).
 */
class CompressedWeightBlock
{
  public:
    /**
     * @param weights   layer weights, shape (K, C/groups, R, S).
     * @param k0,k1     output-channel range [k0, k1) of this group.
     * @param c         global input channel index in [0, C).
     * @param totalC    layer input channel count C.
     * @param convGroups number of convolution groups.
     * @param geom      convolution geometry.
     */
    CompressedWeightBlock(const Tensor4 &weights, int k0, int k1, int c,
                          int totalC, int convGroups,
                          const ConvGeometry &geom);

    int numPhases() const { return phases_; }

    const std::vector<WtEntry> &
    entries(int phase) const
    {
        return lists_[phase];
    }

    uint64_t nonZeros() const { return nonZeros_; }
    uint64_t storedElements() const { return stored_; }
    uint64_t denseElements() const { return denseElements_; }

    uint64_t
    storageBits() const
    {
        return storedElements() * (kDataBits + kRleIndexBits);
    }

  private:
    int phases_;
    std::vector<std::vector<WtEntry>> lists_;
    uint64_t stored_ = 0;
    uint64_t nonZeros_ = 0;
    uint64_t denseElements_ = 0;
};

/**
 * RLE accounting for a whole activation tensor encoded per channel
 * (the OARAM/DRAM form).  Returns total stored elements.
 */
uint64_t storedElementsPerChannel(const Tensor3 &acts);

/** RLE accounting for a weight tensor encoded per (k, c) filter. */
uint64_t storedElementsPerFilter(const Tensor4 &weights);

} // namespace scnn

#endif // SCNN_TENSOR_SPARSE_BLOCK_HH
