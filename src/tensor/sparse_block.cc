#include "tensor/sparse_block.hh"

#include <algorithm>

#include "common/logging.hh"

namespace scnn {

void
CompressedActTile::rebuild(const Tensor3 &acts, int x0, int x1, int y0,
                           int y1, const ConvGeometry &geom)
{
    SCNN_ASSERT(x0 >= 0 && x1 <= acts.width() && y0 >= 0 &&
                y1 <= acts.height() && x0 <= x1 && y0 <= y1,
                "bad tile rectangle [%d,%d)x[%d,%d)", x0, x1, y0, y1);

    channels_ = acts.channels();
    phases_ = geom.phases();
    x0_ = x0;
    x1_ = x1;
    y0_ = y0;
    y1_ = y1;
    padX_ = geom.padX;
    padY_ = geom.padY;
    strideX_ = geom.strideX;
    strideY_ = geom.strideY;

    values_.clear();
    xq_.clear();
    yq_.clear();
    offsets_.assign(static_cast<size_t>(channels_) * phases_ + 1, 0);
    stored_.assign(static_cast<size_t>(channels_), 0);
    nonZeros_ = 0;
    storedTotal_ = 0;
    denseElements_ = 0;

    const uint64_t tileArea = static_cast<uint64_t>(x1 - x0) *
                              static_cast<uint64_t>(y1 - y0);

    if (phases_ == 1) {
        // Stride 1: one substream per channel in plain scan order.
        // Tile rows are contiguous in y, so each row is scanned with
        // vector compares; non-zero values compress-store into the
        // flat SoA arrays and only the surviving lanes get per-entry
        // coordinate work (zero-heavy chunks are skipped in bulk).
        // The RLE accounting streams the same rows through the
        // counter's span feed.
        RleCounter rc;
        const int h = acts.height();
        const int rh = y1 - y0;
        using V = simd::Vec<float>;
        for (int c = 0; c < channels_; ++c) {
            rc.reset();
            const float *plane = acts.plane(c);
            // One worst-case (dense) grow per channel, trimmed once
            // at the end: the scan writes through bare cursors.
            const size_t cur = values_.size();
            values_.resize(cur + tileArea);
            xq_.resize(cur + tileArea);
            yq_.resize(cur + tileArea);
            float *vout = values_.data() + cur;
            int16_t *xout = xq_.data() + cur;
            int16_t *yout = yq_.data() + cur;
            size_t cnt = 0;
            for (int x = x0; x < x1; ++x) {
                const float *row =
                    plane + static_cast<size_t>(x) * h + y0;
                rc.feed(row, static_cast<size_t>(rh));

                // Stride 1: the quotient is the padded coordinate
                // itself.
                const int16_t xp = static_cast<int16_t>(x + padX_);
                int y = 0;
                if constexpr (simd::kVectorBuild) {
                    for (; y + V::kLanes <= rh; y += V::kLanes) {
                        const V v = V::loadu(row + y);
                        simd::LaneMask nz = ~simd::zeroMask(v) &
                                            simd::maskN(V::kLanes);
                        if (!nz)
                            continue;
                        simd::compressStore(vout + cnt, v, nz);
                        size_t k = cnt;
                        while (nz) {
                            const int l = __builtin_ctz(nz);
                            xout[k] = xp;
                            yout[k] = static_cast<int16_t>(y0 + y +
                                                           l + padY_);
                            ++k;
                            nz &= nz - 1;
                        }
                        cnt = k;
                    }
                }
                for (; y < rh; ++y) {
                    const float v = row[y];
                    if (v != 0.0f) {
                        vout[cnt] = v;
                        xout[cnt] = xp;
                        yout[cnt] =
                            static_cast<int16_t>(y0 + y + padY_);
                        ++cnt;
                    }
                }
            }
            values_.resize(cur + cnt);
            xq_.resize(cur + cnt);
            yq_.resize(cur + cnt);
            offsets_[static_cast<size_t>(c) + 1] =
                static_cast<uint32_t>(values_.size());
            stored_[c] = rc.stored;
            storedTotal_ += rc.stored;
            denseElements_ += tileArea;
        }
        nonZeros_ = values_.size();
        return;
    }

    // Strided: substreams partition by phase.  Per channel, a first
    // pass counts non-zeros per phase (and does the RLE accounting of
    // each phase substream); a second pass scatters into the final
    // SoA position via per-phase cursors.  No per-call scratch beyond
    // these two phase-sized arrays.
    std::vector<uint32_t> phaseCount(static_cast<size_t>(phases_));
    std::vector<uint32_t> cursor(static_cast<size_t>(phases_));
    std::vector<RleCounter> counters(static_cast<size_t>(phases_));

    for (int c = 0; c < channels_; ++c) {
        std::fill(phaseCount.begin(), phaseCount.end(), 0);
        for (auto &rc : counters)
            rc.reset();
        for (int x = x0; x < x1; ++x) {
            for (int y = y0; y < y1; ++y) {
                const float v = acts.get(c, x, y);
                const int phase = geom.actPhase(x, y);
                counters[phase].feed(v);
                if (v != 0.0f)
                    ++phaseCount[phase];
            }
        }

        const size_t base = static_cast<size_t>(c) * phases_;
        uint32_t off = offsets_[base];
        for (int p = 0; p < phases_; ++p) {
            cursor[p] = off;
            off += phaseCount[p];
            offsets_[base + p + 1] = off;
        }
        values_.resize(off);
        xq_.resize(off);
        yq_.resize(off);

        for (int x = x0; x < x1; ++x) {
            for (int y = y0; y < y1; ++y) {
                const float v = acts.get(c, x, y);
                if (v == 0.0f)
                    continue;
                const int phase = geom.actPhase(x, y);
                const uint32_t i = cursor[phase]++;
                values_[i] = v;
                xq_[i] = static_cast<int16_t>((x + padX_) / strideX_);
                yq_[i] = static_cast<int16_t>((y + padY_) / strideY_);
            }
        }

        uint64_t stored = 0;
        for (const auto &rc : counters)
            stored += rc.stored;
        stored_[c] = stored;
        storedTotal_ += stored;
        denseElements_ += tileArea;
    }
    nonZeros_ = values_.size();
}

std::vector<ActEntry>
CompressedActTile::decodedEntries(int c, int phase) const
{
    const Span sp = span(c, phase);
    // Phase encodes the stride remainders (see ConvGeometry::actPhase).
    const int rhoX = phase / strideY_;
    const int rhoY = phase % strideY_;
    std::vector<ActEntry> out;
    out.reserve(sp.count);
    for (size_t i = 0; i < sp.count; ++i) {
        out.push_back(
            {sp.value[i],
             static_cast<int16_t>(sp.xq[i] * strideX_ + rhoX - padX_),
             static_cast<int16_t>(sp.yq[i] * strideY_ + rhoY -
                                  padY_)});
    }
    return out;
}

void
CompressedWeightBlock::rebuild(const Tensor4 &weights, int k0, int k1,
                               int c, int totalC, int convGroups,
                               const ConvGeometry &geom)
{
    const int K = weights.k();
    const int cPerGroup = totalC / convGroups;
    const int kPerGroup = K / convGroups;
    SCNN_ASSERT(weights.c() == cPerGroup,
                "weight tensor channel dim %d != C/groups %d",
                weights.c(), cPerGroup);
    SCNN_ASSERT(k0 >= 0 && k1 <= K && k0 <= k1, "bad k range [%d,%d)",
                k0, k1);
    SCNN_ASSERT(c >= 0 && c < totalC, "bad channel %d", c);

    phases_ = geom.phases();
    k0_ = k0;
    strideX_ = geom.strideX;
    strideY_ = geom.strideY;
    values_.clear();
    kRel_.clear();
    rq_.clear();
    sq_.clear();
    offsets_.assign(static_cast<size_t>(phases_) + 1, 0);
    stored_ = 0;
    nonZeros_ = 0;
    denseElements_ = 0;

    const int myConvGroup = c / cPerGroup;
    const int cLocal = c % cPerGroup;
    // In-group output-channel range (structurally absent pairs store
    // nothing and generate no work).
    const int kLo = std::max(k0, myConvGroup * kPerGroup);
    const int kHi = std::min(k1, (myConvGroup + 1) * kPerGroup);

    // Scan order is (r, s, k) with the output channel innermost: a
    // vector of F consecutive non-zero weights then spans F different
    // output channels of the same filter tap, so the F x I products
    // of one multiplier-array operation land at F x I *distinct*
    // accumulator addresses.  (With k outermost, products of one
    // operation alias the same output element and serialize in the
    // accumulator banks -- the contention the paper's A = 2*F*I
    // banking is sized to avoid.)
    if (phases_ == 1) {
        RleCounter rc;
        for (int r = 0; r < weights.r(); ++r) {
            for (int s = 0; s < weights.s(); ++s) {
                for (int k = kLo; k < kHi; ++k) {
                    const float v = weights.get(k, cLocal, r, s);
                    rc.feed(v);
                    if (v != 0.0f) {
                        values_.push_back(v);
                        kRel_.push_back(static_cast<int16_t>(k - k0));
                        // Stride 1: tap quotient == tap coordinate.
                        rq_.push_back(static_cast<int16_t>(r));
                        sq_.push_back(static_cast<int16_t>(s));
                    }
                    ++denseElements_;
                }
            }
        }
        offsets_[1] = static_cast<uint32_t>(values_.size());
        stored_ = rc.stored;
        nonZeros_ = values_.size();
        return;
    }

    std::vector<uint32_t> phaseCount(static_cast<size_t>(phases_));
    std::vector<uint32_t> cursor(static_cast<size_t>(phases_));
    std::vector<RleCounter> counters(static_cast<size_t>(phases_));

    for (int r = 0; r < weights.r(); ++r) {
        for (int s = 0; s < weights.s(); ++s) {
            const int phase = geom.wtPhase(r, s);
            for (int k = kLo; k < kHi; ++k) {
                const float v = weights.get(k, cLocal, r, s);
                counters[phase].feed(v);
                if (v != 0.0f)
                    ++phaseCount[phase];
                ++denseElements_;
            }
        }
    }

    uint32_t off = 0;
    for (int p = 0; p < phases_; ++p) {
        cursor[p] = off;
        off += phaseCount[p];
        offsets_[static_cast<size_t>(p) + 1] = off;
    }
    values_.resize(off);
    kRel_.resize(off);
    rq_.resize(off);
    sq_.resize(off);

    for (int r = 0; r < weights.r(); ++r) {
        for (int s = 0; s < weights.s(); ++s) {
            const int phase = geom.wtPhase(r, s);
            for (int k = kLo; k < kHi; ++k) {
                const float v = weights.get(k, cLocal, r, s);
                if (v == 0.0f)
                    continue;
                const uint32_t i = cursor[phase]++;
                values_[i] = v;
                kRel_[i] = static_cast<int16_t>(k - k0);
                rq_[i] = static_cast<int16_t>(r / strideX_);
                sq_[i] = static_cast<int16_t>(s / strideY_);
            }
        }
    }

    for (const auto &rc : counters)
        stored_ += rc.stored;
    nonZeros_ = off;
}

std::vector<WtEntry>
CompressedWeightBlock::decodedEntries(int phase) const
{
    const Span sp = span(phase);
    // Phase encodes the stride remainders (see ConvGeometry::wtPhase).
    const int rhoX = phase / strideY_;
    const int rhoY = phase % strideY_;
    std::vector<WtEntry> out;
    out.reserve(sp.count);
    for (size_t i = 0; i < sp.count; ++i) {
        out.push_back(
            {sp.value[i], static_cast<int16_t>(sp.kRel[i] + k0_),
             static_cast<int16_t>(sp.rq[i] * strideX_ + rhoX),
             static_cast<int16_t>(sp.sq[i] * strideY_ + rhoY)});
    }
    return out;
}

uint64_t
storedElementsPerChannel(const Tensor3 &acts)
{
    uint64_t total = 0;
    const size_t plane = static_cast<size_t>(acts.width()) *
                         static_cast<size_t>(acts.height());
    for (int c = 0; c < acts.channels(); ++c)
        total += rleStoredElements(FloatSpan(acts.plane(c), plane));
    return total;
}

uint64_t
storedElementsPerFilter(const Tensor4 &weights)
{
    uint64_t total = 0;
    RleCounter rc;
    for (int k = 0; k < weights.k(); ++k) {
        for (int c = 0; c < weights.c(); ++c) {
            rc.reset();
            for (int r = 0; r < weights.r(); ++r)
                for (int s = 0; s < weights.s(); ++s)
                    rc.feed(weights.get(k, c, r, s));
            total += rc.stored;
        }
    }
    return total;
}

} // namespace scnn
