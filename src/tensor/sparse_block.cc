#include "tensor/sparse_block.hh"

#include <algorithm>

#include "common/logging.hh"

namespace scnn {

namespace {

/**
 * RLE-account a scan-order substream: given the dense values of one
 * (channel, phase) substream, count stored elements (non-zeros plus
 * placeholders for zero runs longer than 15).
 */
uint64_t
accountStream(const std::vector<float> &dense)
{
    const RleStream s = rleEncode(dense);
    return s.storedElements();
}

} // anonymous namespace

CompressedActTile::CompressedActTile(const Tensor3 &acts, int x0, int x1,
                                     int y0, int y1,
                                     const ConvGeometry &geom)
    : channels_(acts.channels()), phases_(geom.phases()),
      x0_(x0), x1_(x1), y0_(y0), y1_(y1)
{
    SCNN_ASSERT(x0 >= 0 && x1 <= acts.width() && y0 >= 0 &&
                y1 <= acts.height() && x0 <= x1 && y0 <= y1,
                "bad tile rectangle [%d,%d)x[%d,%d)", x0, x1, y0, y1);

    lists_.resize(static_cast<size_t>(channels_) * phases_);
    stored_.assign(channels_, 0);

    // Scratch dense substreams, one per phase, reused across channels.
    std::vector<std::vector<float>> substream(phases_);

    for (int c = 0; c < channels_; ++c) {
        for (auto &v : substream)
            v.clear();
        for (int x = x0; x < x1; ++x) {
            for (int y = y0; y < y1; ++y) {
                const float v = acts.get(c, x, y);
                const int phase = geom.actPhase(x, y);
                substream[phase].push_back(v);
                if (v != 0.0f) {
                    lists_[static_cast<size_t>(c) * phases_ + phase]
                        .push_back({v, static_cast<int16_t>(x),
                                    static_cast<int16_t>(y)});
                    ++nonZeros_;
                }
            }
        }
        uint64_t stored = 0;
        for (const auto &sub : substream)
            stored += accountStream(sub);
        stored_[c] = stored;
        storedTotal_ += stored;
        denseElements_ += static_cast<uint64_t>(x1 - x0) *
                          static_cast<uint64_t>(y1 - y0);
    }
}

uint64_t
CompressedActTile::channelNonZeros(int c) const
{
    uint64_t n = 0;
    for (int p = 0; p < phases_; ++p)
        n += entries(c, p).size();
    return n;
}

CompressedWeightBlock::CompressedWeightBlock(const Tensor4 &weights,
                                             int k0, int k1, int c,
                                             int totalC, int convGroups,
                                             const ConvGeometry &geom)
    : phases_(geom.phases())
{
    const int K = weights.k();
    const int cPerGroup = totalC / convGroups;
    const int kPerGroup = K / convGroups;
    SCNN_ASSERT(weights.c() == cPerGroup,
                "weight tensor channel dim %d != C/groups %d",
                weights.c(), cPerGroup);
    SCNN_ASSERT(k0 >= 0 && k1 <= K && k0 <= k1, "bad k range [%d,%d)",
                k0, k1);
    SCNN_ASSERT(c >= 0 && c < totalC, "bad channel %d", c);

    lists_.resize(phases_);

    const int myConvGroup = c / cPerGroup;
    const int cLocal = c % cPerGroup;

    std::vector<std::vector<float>> substream(phases_);

    // Scan order is (r, s, k) with the output channel innermost: a
    // vector of F consecutive non-zero weights then spans F different
    // output channels of the same filter tap, so the F x I products
    // of one multiplier-array operation land at F x I *distinct*
    // accumulator addresses.  (With k outermost, products of one
    // operation alias the same output element and serialize in the
    // accumulator banks -- the contention the paper's A = 2*F*I
    // banking is sized to avoid.)
    for (int r = 0; r < weights.r(); ++r) {
        for (int s = 0; s < weights.s(); ++s) {
            const int phase = geom.wtPhase(r, s);
            for (int k = k0; k < k1; ++k) {
                if (k / kPerGroup != myConvGroup)
                    continue; // structurally absent: no storage
                const float v = weights.get(k, cLocal, r, s);
                substream[phase].push_back(v);
                if (v != 0.0f) {
                    lists_[phase].push_back(
                        {v, static_cast<int16_t>(k),
                         static_cast<int16_t>(r),
                         static_cast<int16_t>(s)});
                    ++nonZeros_;
                }
                ++denseElements_;
            }
        }
    }
    for (const auto &sub : substream)
        stored_ += accountStream(sub);
}

uint64_t
storedElementsPerChannel(const Tensor3 &acts)
{
    uint64_t total = 0;
    const size_t plane = static_cast<size_t>(acts.width()) *
                         static_cast<size_t>(acts.height());
    for (int c = 0; c < acts.channels(); ++c) {
        FloatSpan dense(acts.plane(c), plane);
        total += rleEncode(dense).storedElements();
    }
    return total;
}

uint64_t
storedElementsPerFilter(const Tensor4 &weights)
{
    uint64_t total = 0;
    const size_t filter = static_cast<size_t>(weights.r()) *
                          static_cast<size_t>(weights.s());
    std::vector<float> dense(filter);
    for (int k = 0; k < weights.k(); ++k) {
        for (int c = 0; c < weights.c(); ++c) {
            size_t i = 0;
            for (int r = 0; r < weights.r(); ++r)
                for (int s = 0; s < weights.s(); ++s)
                    dense[i++] = weights.get(k, c, r, s);
            total += rleEncode(dense).storedElements();
        }
    }
    return total;
}

} // namespace scnn
