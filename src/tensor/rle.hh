/**
 * @file
 * The paper's compressed-sparse run-length encoding (Section IV).
 *
 * "SCNN uses a simple compressed-sparse encoding approach based on
 *  run-length encoding scheme.  The index vector encodes the number of
 *  zeros between each element in the compressed-sparse data vector.
 *  Four bits per index allows for up to 15 zeros to appear between any
 *  two non-zero elements.  Non-zero elements that are further apart can
 *  have a zero-value placeholder."
 *
 * Each stored element therefore carries a 4-bit zero-run index; runs
 * longer than 15 are broken by zero-valued placeholder elements that
 * occupy a data slot.  The codec below is exact and reversible given
 * the decoded length, and is the single source of truth for compressed
 * size accounting (DRAM traffic, IARAM/OARAM occupancy, tiling
 * decisions).
 */

#ifndef SCNN_TENSOR_RLE_HH
#define SCNN_TENSOR_RLE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/simd.hh"

namespace scnn {

/**
 * Minimal non-owning view of contiguous floats (C++17 stand-in for
 * std::span<const float>).
 */
struct FloatSpan
{
    const float *ptr = nullptr;
    size_t count = 0;

    FloatSpan() = default;
    FloatSpan(const float *p, size_t n) : ptr(p), count(n) {}
    FloatSpan(const std::vector<float> &v) : ptr(v.data()), count(v.size()) {}

    const float *begin() const { return ptr; }
    const float *end() const { return ptr + count; }
    size_t size() const { return count; }
    bool empty() const { return count == 0; }
    float operator[](size_t i) const { return ptr[i]; }
};

/** A run-length compressed 1-D block. */
struct RleStream
{
    /** Stored data elements: non-zeros plus zero placeholders. */
    std::vector<float> values;

    /**
     * Per-element zero-run: number of zeros preceding values[i] in the
     * dense stream (0..maxRun).
     */
    std::vector<uint8_t> zeroRuns;

    /** Length of the dense stream this block encodes. */
    size_t decodedLength = 0;

    /** Number of stored elements (non-zeros + placeholders). */
    size_t storedElements() const { return values.size(); }

    /** Number of placeholder (zero-valued) stored elements. */
    size_t placeholders() const;

    /**
     * Bits occupied in a buffer that stores dataBits of value plus
     * indexBits of run-length index per stored element.
     */
    uint64_t
    bits(int dataBits, int indexBits) const
    {
        return static_cast<uint64_t>(values.size()) *
               static_cast<uint64_t>(dataBits + indexBits);
    }
};

/**
 * Encode a dense stream.
 *
 * @param dense  the dense values.
 * @param maxRun longest zero run expressible in one index (15 for the
 *               paper's 4-bit indices).
 * @return the compressed stream.
 */
RleStream rleEncode(FloatSpan dense, int maxRun = 15);

/**
 * Incremental stored-element counter: feed() the dense stream in scan
 * order and read back exactly rleEncode(stream).storedElements(),
 * without materializing the stream (no allocation).  The single
 * source of truth for the counting rule is rleEncode(); the test
 * suite pins the two against each other.
 */
struct RleCounter
{
    int maxRun = 15;
    int run = 0;
    uint64_t stored = 0;

    RleCounter() = default;
    explicit RleCounter(int maxRunIn) : maxRun(maxRunIn) {}

    void
    feed(float v)
    {
        if (v == 0.0f) {
            if (run == maxRun) {
                // Placeholder element: occupies a stored slot and
                // resets the run counter (matches rleEncode).
                ++stored;
                run = 0;
            } else {
                ++run;
            }
        } else {
            ++stored;
            run = 0;
        }
    }

    /**
     * Feed a contiguous dense span; exactly equivalent to feed()ing
     * each element in order.  The hot path (maxRun = 15) scans the
     * span with full-width vector compares and processes the
     * resulting zero-lane masks with integer run arithmetic: a zero
     * gap of g dense positions entered with run r yields
     * floor((r + g) / 16) placeholder elements and leaves
     * run = (r + g) mod 16, so the per-element branch chain drops out.
     */
    void feed(const float *p, size_t n);

    /** Trailing zeros need no storage; start the next substream. */
    void
    reset()
    {
        run = 0;
        stored = 0;
    }

  private:
    /**
     * Account one chunk of w dense elements whose zero lanes are the
     * set bits of z (bit i = element i == 0.0f).  maxRun must be 15.
     */
    void
    feedZeroMask(simd::LaneMask z, int w)
    {
        simd::LaneMask nz = ~z & simd::maskN(w);
        stored += static_cast<uint64_t>(__builtin_popcount(nz));
        int pos = 0;
        int r = run;
        while (nz) {
            const int i = __builtin_ctz(nz);
            stored += static_cast<uint64_t>(r + (i - pos)) >> 4;
            r = 0;
            pos = i + 1;
            nz &= nz - 1;
        }
        const int tail = r + (w - pos);
        stored += static_cast<uint64_t>(tail) >> 4;
        run = tail & 15;
    }
};

/**
 * Stored elements of a dense stream (non-zeros + placeholders)
 * without building the RleStream; equals
 * rleEncode(dense, maxRun).storedElements().
 */
uint64_t rleStoredElements(FloatSpan dense, int maxRun = 15);

/**
 * Decode a stream back to dense form.
 *
 * @param stream the compressed block.
 * @param n      expected dense length; fatal() if the stream overruns
 *               it.  Trailing zeros are reconstructed.
 */
std::vector<float> rleDecode(const RleStream &stream, size_t n);

/**
 * Expected stored elements for a Bernoulli-sparse stream of length n
 * at density d: non-zeros plus zero placeholders.  Zero runs are
 * geometric; a run of length L needs floor(L/16) placeholders, giving
 * n * d * (1-d)^16 / (1 - (1-d)^16) expected placeholders, tending to
 * n/16 for an all-zero stream.
 */
double expectedRleStored(double n, double d);

} // namespace scnn

#endif // SCNN_TENSOR_RLE_HH
