#include "tensor/rle.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace scnn {

double
expectedRleStored(double n, double d)
{
    if (n <= 0.0)
        return 0.0;
    if (d <= 1e-9)
        return n / 16.0;
    if (d >= 1.0)
        return n;
    const double q16 = std::pow(1.0 - d, 16);
    const double placeholders = n * d * q16 / (1.0 - q16);
    return std::min(n, n * d + placeholders);
}

size_t
RleStream::placeholders() const
{
    size_t n = 0;
    for (float v : values)
        if (v == 0.0f)
            ++n;
    return n;
}

void
RleCounter::feed(const float *p, size_t n)
{
    size_t i = 0;
    if (maxRun == 15) {
        using V = simd::Vec<float>;
        constexpr int W = V::kLanes;
        if constexpr (simd::kVectorBuild) {
            for (; i + W <= n; i += W)
                feedZeroMask(simd::zeroMask(V::loadu(p + i)), W);
        }
    }
    for (; i < n; ++i)
        feed(p[i]);
}

RleStream
rleEncode(FloatSpan dense, int maxRun)
{
    SCNN_ASSERT(maxRun >= 0 && maxRun <= 255, "bad maxRun %d", maxRun);

    RleStream out;
    out.decodedLength = dense.size();

    // The paper's 4-bit-index encoding scans with vector compares:
    // the zero-lane mask of each chunk drives the same run arithmetic
    // as RleCounter (a zero gap of g positions entered with run r
    // emits floor((r + g) / 16) placeholders), and only the stored
    // elements are touched per-element.
    if (maxRun == 15 && simd::kVectorBuild) {
        using V = simd::Vec<float>;
        constexpr int W = V::kLanes;
        const float *p = dense.begin();
        const size_t n = dense.size();
        int run = 0;
        const auto emitGap = [&](int gap) {
            int total = run + gap;
            while (total >= 16) {
                out.values.push_back(0.0f);
                out.zeroRuns.push_back(15);
                total -= 16;
            }
            run = total;
        };
        size_t i = 0;
        for (; i + W <= n; i += W) {
            simd::LaneMask nz =
                ~simd::zeroMask(V::loadu(p + i)) & simd::maskN(W);
            int pos = 0;
            while (nz) {
                const int l = __builtin_ctz(nz);
                emitGap(l - pos);
                out.values.push_back(p[i + l]);
                out.zeroRuns.push_back(static_cast<uint8_t>(run));
                run = 0;
                pos = l + 1;
                nz &= nz - 1;
            }
            emitGap(W - pos);
        }
        for (; i < n; ++i) {
            if (p[i] == 0.0f) {
                emitGap(1);
            } else {
                out.values.push_back(p[i]);
                out.zeroRuns.push_back(static_cast<uint8_t>(run));
                run = 0;
            }
        }
        // Trailing zeros need no storage: the decoder pads to the
        // expected length.
        return out;
    }

    int run = 0;
    for (float v : dense) {
        if (v == 0.0f) {
            if (run == maxRun) {
                // Zero-value placeholder: consumes this position and
                // resets the run counter.
                out.values.push_back(0.0f);
                out.zeroRuns.push_back(static_cast<uint8_t>(run));
                run = 0;
            } else {
                ++run;
            }
        } else {
            out.values.push_back(v);
            out.zeroRuns.push_back(static_cast<uint8_t>(run));
            run = 0;
        }
    }
    // Trailing zeros need no storage: the decoder pads to the expected
    // length.
    return out;
}

uint64_t
rleStoredElements(FloatSpan dense, int maxRun)
{
    SCNN_ASSERT(maxRun >= 0 && maxRun <= 255, "bad maxRun %d", maxRun);
    RleCounter rc(maxRun);
    rc.feed(dense.begin(), dense.size());
    return rc.stored;
}

std::vector<float>
rleDecode(const RleStream &stream, size_t n)
{
    std::vector<float> dense;
    dense.reserve(n);
    SCNN_ASSERT(stream.values.size() == stream.zeroRuns.size(),
                "corrupt RLE stream");
    for (size_t i = 0; i < stream.values.size(); ++i) {
        for (uint8_t z = 0; z < stream.zeroRuns[i]; ++z)
            dense.push_back(0.0f);
        dense.push_back(stream.values[i]);
    }
    if (dense.size() > n) {
        fatal("RLE stream decodes to %zu elements, expected at most %zu",
              dense.size(), n);
    }
    dense.resize(n, 0.0f);
    return dense;
}

} // namespace scnn
