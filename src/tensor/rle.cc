#include "tensor/rle.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace scnn {

double
expectedRleStored(double n, double d)
{
    if (n <= 0.0)
        return 0.0;
    if (d <= 1e-9)
        return n / 16.0;
    if (d >= 1.0)
        return n;
    const double q16 = std::pow(1.0 - d, 16);
    const double placeholders = n * d * q16 / (1.0 - q16);
    return std::min(n, n * d + placeholders);
}

size_t
RleStream::placeholders() const
{
    size_t n = 0;
    for (float v : values)
        if (v == 0.0f)
            ++n;
    return n;
}

RleStream
rleEncode(FloatSpan dense, int maxRun)
{
    SCNN_ASSERT(maxRun >= 0 && maxRun <= 255, "bad maxRun %d", maxRun);

    RleStream out;
    out.decodedLength = dense.size();

    int run = 0;
    for (float v : dense) {
        if (v == 0.0f) {
            if (run == maxRun) {
                // Zero-value placeholder: consumes this position and
                // resets the run counter.
                out.values.push_back(0.0f);
                out.zeroRuns.push_back(static_cast<uint8_t>(run));
                run = 0;
            } else {
                ++run;
            }
        } else {
            out.values.push_back(v);
            out.zeroRuns.push_back(static_cast<uint8_t>(run));
            run = 0;
        }
    }
    // Trailing zeros need no storage: the decoder pads to the expected
    // length.
    return out;
}

uint64_t
rleStoredElements(FloatSpan dense, int maxRun)
{
    SCNN_ASSERT(maxRun >= 0 && maxRun <= 255, "bad maxRun %d", maxRun);
    RleCounter rc(maxRun);
    for (float v : dense)
        rc.feed(v);
    return rc.stored;
}

std::vector<float>
rleDecode(const RleStream &stream, size_t n)
{
    std::vector<float> dense;
    dense.reserve(n);
    SCNN_ASSERT(stream.values.size() == stream.zeroRuns.size(),
                "corrupt RLE stream");
    for (size_t i = 0; i < stream.values.size(); ++i) {
        for (uint8_t z = 0; z < stream.zeroRuns[i]; ++z)
            dense.push_back(0.0f);
        dense.push_back(stream.values[i]);
    }
    if (dense.size() > n) {
        fatal("RLE stream decodes to %zu elements, expected at most %zu",
              dense.size(), n);
    }
    dense.resize(n, 0.0f);
    return dense;
}

} // namespace scnn
