#include "nn/manifest.hh"

#include <cstdio>
#include <cstring>

#include "common/logging.hh"
#include "common/random.hh"
#include "nn/workload.hh"

namespace scnn {

namespace {

constexpr char kMagic[8] = {'S', 'C', 'N', 'N', 'W', 'M', 'F', '1'};
constexpr uint32_t kMaxNameLen = 4096;
constexpr uint32_t kMaxEntries = 100000;
constexpr uint32_t kMaxDim = 65536;
// One tensor is capped well above any conv layer (2^28 floats = 1 GiB)
// so a corrupt dimension field cannot trigger a huge allocation.
constexpr uint64_t kMaxElems = uint64_t(1) << 28;

void
putU32(std::string &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
}

void
putF32(std::string &out, float v)
{
    uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    putU32(out, bits);
}

void
putF64(std::string &out, double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    putU32(out, static_cast<uint32_t>(bits & 0xffffffffu));
    putU32(out, static_cast<uint32_t>(bits >> 32));
}

/** Bounds-checked little-endian reader over the raw bytes. */
struct Cursor
{
    const uint8_t *p;
    size_t left;

    bool
    readU32(uint32_t *v)
    {
        if (left < 4)
            return false;
        *v = uint32_t(p[0]) | uint32_t(p[1]) << 8 |
             uint32_t(p[2]) << 16 | uint32_t(p[3]) << 24;
        p += 4;
        left -= 4;
        return true;
    }

    bool
    readF64(double *v)
    {
        uint32_t lo, hi;
        if (!readU32(&lo) || !readU32(&hi))
            return false;
        const uint64_t bits = uint64_t(lo) | (uint64_t(hi) << 32);
        std::memcpy(v, &bits, sizeof(*v));
        return true;
    }

    bool
    readBytes(void *dst, size_t n)
    {
        if (left < n)
            return false;
        std::memcpy(dst, p, n);
        p += n;
        left -= n;
        return true;
    }
};

} // anonymous namespace

bool
WeightManifest::add(ManifestEntry entry, std::string *error)
{
    if (entry.name.empty() || entry.name.size() > kMaxNameLen) {
        *error = "manifest entry has an empty or oversized name";
        return false;
    }
    if (entry.weights.size() == 0) {
        *error = strfmt("manifest entry '%s' has an empty tensor",
                        entry.name.c_str());
        return false;
    }
    if (find(entry.name) != nullptr) {
        *error = strfmt("manifest has duplicate entry '%s'",
                        entry.name.c_str());
        return false;
    }
    entries_.push_back(std::move(entry));
    return true;
}

const ManifestEntry *
WeightManifest::find(const std::string &name) const
{
    for (const auto &e : entries_)
        if (e.name == name)
            return &e;
    return nullptr;
}

const Tensor4 *
WeightManifest::weightsFor(const ConvLayerParams &layer,
                           std::string *error) const
{
    error->clear();
    const ManifestEntry *e = find(layer.name);
    if (e == nullptr)
        return nullptr;
    const Tensor4 &w = e->weights;
    if (w.k() != layer.outChannels ||
        w.c() != layer.inChannels / layer.groups ||
        w.r() != layer.filterW || w.s() != layer.filterH) {
        *error = strfmt(
            "manifest entry '%s' has shape (%d,%d,%d,%d) but layer "
            "expects (%d,%d,%d,%d)", layer.name.c_str(), w.k(), w.c(),
            w.r(), w.s(), layer.outChannels,
            layer.inChannels / layer.groups, layer.filterW,
            layer.filterH);
        return nullptr;
    }
    return &w;
}

uint64_t
WeightManifest::fingerprint() const
{
    const std::string bytes = serialize();
    uint64_t h = 1469598103934665603ull;
    for (const char c : bytes) {
        h ^= static_cast<uint8_t>(c);
        h *= 1099511628211ull;
    }
    return h;
}

std::string
WeightManifest::serialize() const
{
    std::string out(kMagic, sizeof(kMagic));
    putU32(out, static_cast<uint32_t>(entries_.size()));
    for (const auto &e : entries_) {
        putU32(out, static_cast<uint32_t>(e.name.size()));
        out += e.name;
        putU32(out, static_cast<uint32_t>(e.weights.k()));
        putU32(out, static_cast<uint32_t>(e.weights.c()));
        putU32(out, static_cast<uint32_t>(e.weights.r()));
        putU32(out, static_cast<uint32_t>(e.weights.s()));
        putF64(out, e.inputDensity);
        const float *data = e.weights.data();
        for (size_t i = 0; i < e.weights.size(); ++i)
            putF32(out, data[i]);
    }
    return out;
}

bool
WeightManifest::parse(const std::string &bytes, WeightManifest *out,
                      std::string *error)
{
    *out = WeightManifest();
    Cursor cur{reinterpret_cast<const uint8_t *>(bytes.data()),
               bytes.size()};
    char magic[sizeof(kMagic)];
    if (!cur.readBytes(magic, sizeof(magic)) ||
        std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
        *error = "not a weight manifest (bad magic; expected "
                 "SCNNWMF1)";
        return false;
    }
    uint32_t count = 0;
    if (!cur.readU32(&count) || count > kMaxEntries) {
        *error = "manifest header truncated or entry count "
                 "implausible";
        return false;
    }
    for (uint32_t i = 0; i < count; ++i) {
        uint32_t nameLen = 0;
        if (!cur.readU32(&nameLen) || nameLen == 0 ||
            nameLen > kMaxNameLen || cur.left < nameLen) {
            *error = strfmt("manifest entry %u: truncated or invalid "
                            "name", i);
            return false;
        }
        ManifestEntry e;
        e.name.resize(nameLen);
        cur.readBytes(&e.name[0], nameLen);
        uint32_t k, c, r, s;
        if (!cur.readU32(&k) || !cur.readU32(&c) || !cur.readU32(&r) ||
            !cur.readU32(&s) || !cur.readF64(&e.inputDensity)) {
            *error = strfmt("manifest entry '%s': truncated header",
                            e.name.c_str());
            return false;
        }
        if (k == 0 || c == 0 || r == 0 || s == 0 || k > kMaxDim ||
            c > kMaxDim || r > kMaxDim || s > kMaxDim) {
            *error = strfmt("manifest entry '%s': implausible "
                            "dimensions (%u,%u,%u,%u)", e.name.c_str(),
                            k, c, r, s);
            return false;
        }
        const uint64_t elems = uint64_t(k) * c * r * s;
        if (elems > kMaxElems || cur.left < elems * 4) {
            *error = strfmt("manifest entry '%s': truncated tensor "
                            "data (%llu floats declared, %zu bytes "
                            "left)", e.name.c_str(),
                            static_cast<unsigned long long>(elems),
                            cur.left);
            return false;
        }
        if (e.inputDensity > 1.0 ||
            e.inputDensity != e.inputDensity) { // NaN
            *error = strfmt("manifest entry '%s': input density out "
                            "of range", e.name.c_str());
            return false;
        }
        e.weights = Tensor4(static_cast<int>(k), static_cast<int>(c),
                            static_cast<int>(r), static_cast<int>(s));
        static_assert(sizeof(float) == 4, "float width");
        cur.readBytes(e.weights.data(), elems * 4);
        if (!out->add(std::move(e), error))
            return false;
    }
    if (cur.left != 0) {
        *error = strfmt("manifest has %zu trailing bytes after the "
                        "last entry", cur.left);
        return false;
    }
    return true;
}

bool
writeManifestFile(const std::string &path,
                  const WeightManifest &manifest, std::string *error)
{
    const std::string bytes = manifest.serialize();
    FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
        *error = strfmt("cannot open '%s' for writing", path.c_str());
        return false;
    }
    const bool ok =
        std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
    std::fclose(f);
    if (!ok)
        *error = strfmt("short write to '%s'", path.c_str());
    return ok;
}

bool
loadManifestFile(const std::string &path, WeightManifest *out,
                 std::string *error)
{
    FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
        *error = strfmt("cannot open manifest '%s'", path.c_str());
        return false;
    }
    std::string bytes;
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.append(buf, n);
    const bool readOk = std::feof(f) != 0;
    std::fclose(f);
    if (!readOk) {
        *error = strfmt("error reading manifest '%s'", path.c_str());
        return false;
    }
    return WeightManifest::parse(bytes, out, error);
}

WeightManifest
manifestFromNetwork(const Network &net, uint64_t seed)
{
    WeightManifest m;
    for (const auto &layer : net.layers()) {
        Rng wtRng(layer.name + "/weights", seed);
        ManifestEntry e;
        e.name = layer.name;
        e.weights = makeWeights(layer, wtRng);
        e.inputDensity = layer.inputDensity;
        std::string error;
        if (!m.add(std::move(e), &error))
            fatal("manifestFromNetwork: %s", error.c_str());
    }
    return m;
}

bool
applyManifest(Network &net, const WeightManifest &manifest,
              std::string *error)
{
    size_t matched = 0;
    Network out(net.name());
    for (size_t i = 0; i < net.numLayers(); ++i) {
        ConvLayerParams l = net.layer(i);
        const Tensor4 *w = manifest.weightsFor(l, error);
        if (w == nullptr && !error->empty())
            return false;
        if (w != nullptr) {
            ++matched;
            l.weightDensity = w->density();
            const ManifestEntry *e = manifest.find(l.name);
            if (e->inputDensity >= 0.0)
                l.inputDensity = e->inputDensity;
        }
        out.addLayer(std::move(l), net.inputs(i), net.join(i));
    }
    if (matched == 0) {
        *error = strfmt("manifest matches no layer of network '%s' "
                        "(wrong file?)", net.name().c_str());
        return false;
    }
    net = std::move(out);
    return true;
}

} // namespace scnn
