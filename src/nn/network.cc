#include "nn/network.hh"

#include <algorithm>

#include "common/logging.hh"

namespace scnn {

namespace {

/** (channels, width, height) carried by one edge after its pooling. */
struct EdgeDims
{
    int c, w, h;
};

EdgeDims
edgeDims(const ConvLayerParams &producer, const LayerInput &edge)
{
    EdgeDims d{producer.outChannels, producer.pooledOutWidth(),
               producer.pooledOutHeight()};
    if (edge.poolWindow > 0) {
        d.w = poolOutDim(d.w, edge.poolWindow, edge.poolStride,
                         edge.poolPad);
        d.h = poolOutDim(d.h, edge.poolWindow, edge.poolStride,
                         edge.poolPad);
    }
    return d;
}

} // anonymous namespace

const char *
joinKindName(JoinKind join)
{
    switch (join) {
      case JoinKind::Single: return "single";
      case JoinKind::Concat: return "concat";
      case JoinKind::Add:    return "add";
    }
    return "?";
}

void
Network::addLayer(ConvLayerParams layer)
{
    std::vector<LayerInput> inputs;
    if (!layers_.empty())
        inputs.emplace_back(static_cast<int>(layers_.size()) - 1);
    addLayer(std::move(layer), std::move(inputs), JoinKind::Single);
}

void
Network::addLayer(ConvLayerParams layer, std::vector<LayerInput> inputs,
                  JoinKind join)
{
    layer.validate();
    for (const auto &l : layers_) {
        if (l.name == layer.name) {
            fatal("network '%s': duplicate layer name '%s'",
                  name_.c_str(), layer.name.c_str());
        }
    }
    for (const auto &e : inputs) {
        if (e.from < 0 || e.from >= static_cast<int>(layers_.size())) {
            fatal("network '%s': layer '%s' input edge %d out of "
                  "range (layers may only consume already-added "
                  "layers)", name_.c_str(), layer.name.c_str(), e.from);
        }
        if (e.poolWindow < 0 ||
            (e.poolWindow > 0 && (e.poolStride <= 0 || e.poolPad < 0))) {
            fatal("network '%s': layer '%s' has invalid edge pooling",
                  name_.c_str(), layer.name.c_str());
        }
    }
    if (inputs.size() <= 1 && join != JoinKind::Single) {
        fatal("network '%s': layer '%s' declares a %s join with %zu "
              "input(s); Concat/Add need at least two", name_.c_str(),
              layer.name.c_str(), joinKindName(join), inputs.size());
    }
    if (inputs.size() > 1 && join == JoinKind::Single) {
        fatal("network '%s': layer '%s' has %zu inputs but a single "
              "join; declare Concat or Add", name_.c_str(),
              layer.name.c_str(), inputs.size());
    }
    layers_.push_back(std::move(layer));
    inputs_.push_back(std::move(inputs));
    joins_.push_back(join);
}

std::vector<size_t>
Network::sourceLayers() const
{
    std::vector<size_t> out;
    for (size_t i = 0; i < layers_.size(); ++i)
        if (inputs_[i].empty())
            out.push_back(i);
    return out;
}

std::vector<ConvLayerParams>
Network::evalLayers() const
{
    std::vector<ConvLayerParams> out;
    for (const auto &l : layers_)
        if (l.inEval)
            out.push_back(l);
    return out;
}

size_t
Network::numEvalLayers() const
{
    return static_cast<size_t>(
        std::count_if(layers_.begin(), layers_.end(),
                      [](const ConvLayerParams &l) { return l.inEval; }));
}

bool
Network::isSequential() const
{
    for (size_t i = 1; i < layers_.size(); ++i) {
        const auto &in = inputs_[i];
        if (in.size() != 1 || in[0].from != static_cast<int>(i) - 1 ||
            in[0].poolWindow != 0 || joins_[i] != JoinKind::Single) {
            return false;
        }
        const ConvLayerParams &cur = layers_[i - 1];
        const ConvLayerParams &nxt = layers_[i];
        if (cur.outChannels != nxt.inChannels ||
            cur.pooledOutWidth() != nxt.inWidth ||
            cur.pooledOutHeight() != nxt.inHeight) {
            return false;
        }
    }
    return true;
}

std::vector<std::string>
Network::topologyErrors() const
{
    std::vector<std::string> errors;
    for (size_t i = 0; i < layers_.size(); ++i) {
        const ConvLayerParams &l = layers_[i];
        const auto &in = inputs_[i];
        if (in.empty())
            continue; // source: input synthesized at declared shape
        EdgeDims joined = edgeDims(layers_[in[0].from], in[0]);
        bool consistent = true;
        for (size_t e = 1; e < in.size(); ++e) {
            const EdgeDims d = edgeDims(layers_[in[e].from], in[e]);
            if (d.w != joined.w || d.h != joined.h ||
                (joins_[i] == JoinKind::Add && d.c != joined.c)) {
                errors.push_back(strfmt(
                    "layer '%s': %s-join inputs disagree: '%s' "
                    "produces (%d,%d,%d) vs '%s' (%d,%d,%d)",
                    l.name.c_str(), joinKindName(joins_[i]),
                    layers_[in[0].from].name.c_str(), joined.c,
                    joined.w, joined.h,
                    layers_[in[e].from].name.c_str(), d.c, d.w, d.h));
                consistent = false;
                break;
            }
            if (joins_[i] == JoinKind::Concat)
                joined.c += d.c;
        }
        if (!consistent)
            continue;
        if (joined.c != l.inChannels || joined.w != l.inWidth ||
            joined.h != l.inHeight) {
            errors.push_back(strfmt(
                "layer '%s' declares input shape (%d,%d,%d) but its "
                "%s-joined inputs produce (%d,%d,%d)", l.name.c_str(),
                l.inChannels, l.inWidth, l.inHeight,
                joinKindName(joins_[i]), joined.c, joined.w, joined.h));
        }
    }
    return errors;
}

uint64_t
Network::totalMacs(bool evalOnly) const
{
    uint64_t total = 0;
    for (const auto &l : layers_)
        if (!evalOnly || l.inEval)
            total += l.macs();
    return total;
}

double
Network::totalIdealMacs(bool evalOnly) const
{
    double total = 0;
    for (const auto &l : layers_)
        if (!evalOnly || l.inEval)
            total += l.idealMacs();
    return total;
}

uint64_t
Network::maxLayerWeightBytes() const
{
    uint64_t best = 0;
    for (const auto &l : layers_)
        best = std::max(best, l.weightCount() * kDataBytes);
    return best;
}

uint64_t
Network::maxLayerActivationBytes() const
{
    uint64_t best = 0;
    for (const auto &l : layers_) {
        best = std::max(best, l.inputCount() * kDataBytes);
        best = std::max(best, l.outputCount() * kDataBytes);
    }
    return best;
}

} // namespace scnn
