#include "nn/network.hh"

#include <algorithm>

namespace scnn {

std::vector<ConvLayerParams>
Network::evalLayers() const
{
    std::vector<ConvLayerParams> out;
    for (const auto &l : layers_)
        if (l.inEval)
            out.push_back(l);
    return out;
}

size_t
Network::numEvalLayers() const
{
    return static_cast<size_t>(
        std::count_if(layers_.begin(), layers_.end(),
                      [](const ConvLayerParams &l) { return l.inEval; }));
}

bool
Network::isSequential() const
{
    for (size_t i = 0; i + 1 < layers_.size(); ++i) {
        const ConvLayerParams &cur = layers_[i];
        const ConvLayerParams &nxt = layers_[i + 1];
        int w = cur.outWidth();
        int h = cur.outHeight();
        if (cur.poolWindow > 0) {
            w = (w + 2 * cur.poolPad - cur.poolWindow) /
                    cur.poolStride + 1;
            h = (h + 2 * cur.poolPad - cur.poolWindow) /
                    cur.poolStride + 1;
        }
        if (cur.outChannels != nxt.inChannels || w != nxt.inWidth ||
            h != nxt.inHeight) {
            return false;
        }
    }
    return true;
}

uint64_t
Network::totalMacs(bool evalOnly) const
{
    uint64_t total = 0;
    for (const auto &l : layers_)
        if (!evalOnly || l.inEval)
            total += l.macs();
    return total;
}

double
Network::totalIdealMacs(bool evalOnly) const
{
    double total = 0;
    for (const auto &l : layers_)
        if (!evalOnly || l.inEval)
            total += l.idealMacs();
    return total;
}

uint64_t
Network::maxLayerWeightBytes() const
{
    uint64_t best = 0;
    for (const auto &l : layers_)
        best = std::max(best, l.weightCount() * kDataBytes);
    return best;
}

uint64_t
Network::maxLayerActivationBytes() const
{
    uint64_t best = 0;
    for (const auto &l : layers_) {
        best = std::max(best, l.inputCount() * kDataBytes);
        best = std::max(best, l.outputCount() * kDataBytes);
    }
    return best;
}

} // namespace scnn
