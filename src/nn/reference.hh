/**
 * @file
 * Functional reference implementations: direct convolution (the
 * 7-loop nest of Fig. 3 with batch N = 1, extended with stride,
 * padding and channel groups), ReLU and max-pooling.
 *
 * These are the correctness oracle for both accelerator simulators:
 * every simulated layer's output activations must match the reference
 * bit-for-bit up to floating-point associativity.
 */

#ifndef SCNN_NN_REFERENCE_HH
#define SCNN_NN_REFERENCE_HH

#include "nn/layer.hh"
#include "tensor/tensor.hh"

namespace scnn {

/**
 * Direct convolution of input by weights under the layer's geometry.
 *
 * @param layer    layer parameters (shapes validated against tensors).
 * @param input    (C, W, H) activations.
 * @param weights  (K, C/groups, R, S) filter weights.
 * @param applyRelu whether to clamp negatives in the returned output
 *                 (defaults to the layer's setting).
 * @return (K, outW, outH) output activations.
 */
Tensor3 referenceConv(const ConvLayerParams &layer, const Tensor3 &input,
                      const Tensor4 &weights);

/** As referenceConv but never applies ReLU (raw partial sums). */
Tensor3 referenceConvNoRelu(const ConvLayerParams &layer,
                            const Tensor3 &input, const Tensor4 &weights);

/**
 * Max pooling with a window x window kernel.
 *
 * @param input  (C, W, H) activations.
 * @param window pooling window size.
 * @param stride pooling stride.
 * @param pad    symmetric zero padding.
 */
Tensor3 maxPool(const Tensor3 &input, int window, int stride, int pad);

} // namespace scnn

#endif // SCNN_NN_REFERENCE_HH
