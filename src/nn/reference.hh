/**
 * @file
 * Functional reference implementations: direct convolution (the
 * 7-loop nest of Fig. 3 with batch N = 1, extended with stride,
 * padding and channel groups), ReLU and max-pooling.
 *
 * These are the correctness oracle for both accelerator simulators:
 * every simulated layer's output activations must match the reference
 * bit-for-bit up to floating-point associativity.
 */

#ifndef SCNN_NN_REFERENCE_HH
#define SCNN_NN_REFERENCE_HH

#include "nn/layer.hh"
#include "tensor/tensor.hh"

namespace scnn {

/**
 * Direct convolution of input by weights under the layer's geometry.
 *
 * @param layer    layer parameters (shapes validated against tensors).
 * @param input    (C, W, H) activations.
 * @param weights  (K, C/groups, R, S) filter weights.
 * @param threads  worker threads for the per-output-channel loop (0 =
 *                 SCNN_THREADS / hardware default); the channel planes
 *                 are disjoint, so results are bit-identical for any
 *                 value.
 * @return (K, outW, outH) output activations.
 */
Tensor3 referenceConv(const ConvLayerParams &layer, const Tensor3 &input,
                      const Tensor4 &weights, int threads = 0);

/** As referenceConv but never applies ReLU (raw partial sums). */
Tensor3 referenceConvNoRelu(const ConvLayerParams &layer,
                            const Tensor3 &input, const Tensor4 &weights,
                            int threads = 0);

/**
 * Max pooling with a window x window kernel.
 *
 * @param input  (C, W, H) activations.
 * @param window pooling window size.
 * @param stride pooling stride.
 * @param pad    symmetric zero padding.
 * @param threads worker threads for the per-channel loop (0 = default).
 */
Tensor3 maxPool(const Tensor3 &input, int window, int stride, int pad,
                int threads = 0);

} // namespace scnn

#endif // SCNN_NN_REFERENCE_HH
