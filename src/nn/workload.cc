#include "nn/workload.hh"

#include <algorithm>
#include <cmath>
#include <vector>

namespace scnn {

Tensor3
makeActivations(const ConvLayerParams &layer, Rng &rng)
{
    Tensor3 t(layer.inChannels, layer.inWidth, layer.inHeight);
    const double d = layer.inputDensity;
    const double sigma = layer.actSpatialSigma;

    // Per-channel coarse density field: log-normal gains on a grid of
    // blocks, normalized to unit mean so the global density stays at
    // the profile value (up to clamping).  This reproduces the
    // spatially clustered zeros of real post-ReLU feature maps, which
    // is what creates per-PE load imbalance.
    const int blockW = std::max(2, layer.inWidth / 4);
    const int blockH = std::max(2, layer.inHeight / 4);
    const int nbx = (layer.inWidth + blockW - 1) / blockW;
    const int nby = (layer.inHeight + blockH - 1) / blockH;
    std::vector<double> gain(static_cast<size_t>(nbx) * nby, 1.0);

    // Per-channel gains (strong and nearly-dead channels).
    std::vector<double> channelGain(
        static_cast<size_t>(t.channels()), 1.0);
    const bool modulate = d > 0.0 && d < 1.0 &&
                          (sigma > 0.0 || layer.actChannelSigma > 0.0);
    if (modulate && layer.actChannelSigma > 0.0) {
        for (auto &g : channelGain)
            g = std::exp(layer.actChannelSigma * rng.normal());
    }

    // Raw per-(channel, block) densities, then a clamp-aware
    // renormalization so the realized mean density matches the
    // profile despite min(1, .) saturation of hot regions.
    const size_t nBlocks = gain.size();
    std::vector<double> db(static_cast<size_t>(t.channels()) * nBlocks,
                           d);
    if (modulate) {
        for (int c = 0; c < t.channels(); ++c) {
            for (size_t b = 0; b < nBlocks; ++b) {
                const double g =
                    sigma > 0.0 ? std::exp(sigma * rng.normal()) : 1.0;
                db[static_cast<size_t>(c) * nBlocks + b] =
                    d * channelGain[static_cast<size_t>(c)] * g;
            }
        }
        double scale = 1.0;
        for (int iter = 0; iter < 12; ++iter) {
            double mean = 0.0;
            for (double v : db)
                mean += std::min(1.0, v * scale);
            mean /= static_cast<double>(db.size());
            if (mean > 1e-12)
                scale *= d / mean;
        }
        for (auto &v : db)
            v = std::min(1.0, v * scale);
    }

    for (int c = 0; c < t.channels(); ++c) {
        for (int x = 0; x < t.width(); ++x) {
            for (int y = 0; y < t.height(); ++y) {
                const size_t b =
                    static_cast<size_t>(x / blockW) * nby +
                    (y / blockH);
                const double p =
                    db[static_cast<size_t>(c) * nBlocks + b];
                if (rng.bernoulli(p))
                    t.set(c, x, y,
                          static_cast<float>(rng.uniform(0.1, 1.0)));
            }
        }
    }
    return t;
}

Tensor4
makeWeights(const ConvLayerParams &layer, Rng &rng)
{
    Tensor4 t(layer.outChannels, layer.inChannels / layer.groups,
              layer.filterW, layer.filterH);
    const double d = layer.weightDensity;
    for (int k = 0; k < t.k(); ++k) {
        for (int c = 0; c < t.c(); ++c) {
            for (int r = 0; r < t.r(); ++r) {
                for (int s = 0; s < t.s(); ++s) {
                    if (rng.bernoulli(d)) {
                        const double mag = rng.uniform(0.1, 1.0);
                        const double sign =
                            rng.bernoulli(0.5) ? 1.0 : -1.0;
                        t.at(k, c, r, s) =
                            static_cast<float>(sign * mag);
                    }
                }
            }
        }
    }
    return t;
}

LayerWorkload
makeWorkload(const ConvLayerParams &layer, uint64_t seed)
{
    Rng actRng(layer.name + "/activations", seed);
    Rng wtRng(layer.name + "/weights", seed);
    LayerWorkload w;
    w.layer = layer;
    w.input = makeActivations(layer, actRng);
    w.weights = makeWeights(layer, wtRng);
    return w;
}

} // namespace scnn
