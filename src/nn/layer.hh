/**
 * @file
 * Convolutional layer descriptor and shape arithmetic.
 *
 * A layer is described by the paper's seven-loop parameters (Fig. 2/3):
 * C input channels of W x H activations, K output channels, R x S
 * filters, extended with the stride / padding / channel-group
 * attributes the real networks (AlexNet, GoogLeNet, VGGNet from the
 * Caffe BVLC zoo) require.  Each layer also carries its pruned weight
 * density and measured input-activation density (Fig. 1 profiles),
 * which drive synthetic workload generation.
 */

#ifndef SCNN_NN_LAYER_HH
#define SCNN_NN_LAYER_HH

#include <cstdint>
#include <string>

#include "tensor/sparse_block.hh"

namespace scnn {

/**
 * One spatial dimension of a max-pool output.  The single place the
 * pooled-size formula lives: layer shape queries, topology checks and
 * the pooling kernel itself all call it, so they cannot drift.
 */
inline int
poolOutDim(int in, int window, int stride, int pad)
{
    return (in + 2 * pad - window) / stride + 1;
}

/** Parameters of a single convolutional layer. */
struct ConvLayerParams
{
    std::string name;

    int inChannels = 1;   ///< C
    int outChannels = 1;  ///< K
    int inWidth = 1;      ///< W
    int inHeight = 1;     ///< H
    int filterW = 1;      ///< R
    int filterH = 1;      ///< S
    int strideX = 1;
    int strideY = 1;
    int padX = 0;
    int padY = 0;
    int groups = 1;       ///< channel groups (AlexNet conv2/4/5 use 2)
    bool applyRelu = true;

    /** Pruned weight density (fraction of non-zero weights). */
    double weightDensity = 1.0;
    /** Measured input activation density for this layer. */
    double inputDensity = 1.0;

    /**
     * Spatial clustering of activation sparsity: log-normal sigma of
     * the per-region density modulation used by the workload
     * generator.  Real post-ReLU feature maps have strongly clustered
     * zeros (whole regions of an image are featureless), which is
     * what loads PEs unevenly and drives the paper's barrier/idle
     * results.  0 disables the modulation (i.i.d. Bernoulli).
     */
    double actSpatialSigma = 0.5;

    /**
     * Per-channel density variation (log-normal sigma): real feature
     * extractors have strong and nearly-dead channels, so per-channel
     * non-zero counts vary far more than Bernoulli sampling predicts.
     * Starved channels fragment the activation vectors and are a
     * large part of the paper's measured utilization losses.
     */
    double actChannelSigma = 0.7;

    /**
     * Whether the layer is part of the paper's per-layer evaluation
     * scope (all AlexNet/VGG convs; GoogLeNet inception convs only).
     */
    bool inEval = true;

    /**
     * Max-pooling applied to this layer's output before the next
     * layer (0 = none).  Used by chained whole-network execution; the
     * PPU performs pooling during drain (Section IV), so it costs no
     * extra simulated time.
     */
    int poolWindow = 0;
    int poolStride = 2;
    int poolPad = 0;

    int
    outWidth() const
    {
        return (inWidth + 2 * padX - filterW) / strideX + 1;
    }

    int
    outHeight() const
    {
        return (inHeight + 2 * padY - filterH) / strideY + 1;
    }

    /** Output width after the declared post-pooling (if any). */
    int
    pooledOutWidth() const
    {
        return poolWindow > 0
            ? poolOutDim(outWidth(), poolWindow, poolStride, poolPad)
            : outWidth();
    }

    /** Output height after the declared post-pooling (if any). */
    int
    pooledOutHeight() const
    {
        return poolWindow > 0
            ? poolOutDim(outHeight(), poolWindow, poolStride, poolPad)
            : outHeight();
    }

    /** Weight elements: K * (C/groups) * R * S. */
    uint64_t
    weightCount() const
    {
        return static_cast<uint64_t>(outChannels) *
               (static_cast<uint64_t>(inChannels) / groups) *
               filterW * filterH;
    }

    uint64_t
    inputCount() const
    {
        return static_cast<uint64_t>(inChannels) * inWidth * inHeight;
    }

    uint64_t
    outputCount() const
    {
        return static_cast<uint64_t>(outChannels) * outWidth() *
               outHeight();
    }

    /** Dense multiply count (batch size 1). */
    uint64_t
    macs() const
    {
        return static_cast<uint64_t>(outChannels) * outWidth() *
               outHeight() *
               (static_cast<uint64_t>(inChannels) / groups) *
               filterW * filterH;
    }

    /**
     * Expected non-zero multiplies under the density profile: every
     * product of a non-zero weight and non-zero activation (the
     * paper's "ideal work", Fig. 1 triangles).
     */
    double
    idealMacs() const
    {
        return static_cast<double>(macs()) * weightDensity *
               inputDensity;
    }

    ConvGeometry
    geometry() const
    {
        return ConvGeometry{strideX, strideY, padX, padY};
    }

    /** fatal() if the parameters are inconsistent. */
    void validate() const;

    /** One-line human-readable description. */
    std::string toString() const;
};

/**
 * Convenience factory for the common square stride-1 case.
 */
ConvLayerParams makeConv(const std::string &name, int c, int k, int wh,
                         int rs, int pad, double wDensity,
                         double iaDensity);

/**
 * A fully-connected layer expressed as a 1x1 convolution over a 1x1
 * plane (the paper delegates FC layers to EIE; this path lets
 * whole-network runs complete and is exercised by extension tests).
 */
ConvLayerParams makeFullyConnected(const std::string &name, int inDim,
                                   int outDim, double wDensity,
                                   double iaDensity);

} // namespace scnn

#endif // SCNN_NN_LAYER_HH
