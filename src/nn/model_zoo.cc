#include "nn/model_zoo.hh"

namespace scnn {

namespace {

ConvLayerParams
conv(const std::string &name, int c, int k, int w, int h, int rs,
     int stride, int pad, int groups, double wd, double ad)
{
    ConvLayerParams p;
    p.name = name;
    p.inChannels = c;
    p.outChannels = k;
    p.inWidth = w;
    p.inHeight = h;
    p.filterW = rs;
    p.filterH = rs;
    p.strideX = stride;
    p.strideY = stride;
    p.padX = pad;
    p.padY = pad;
    p.groups = groups;
    p.weightDensity = wd;
    p.inputDensity = ad;
    p.validate();
    return p;
}

/** Per-module parameters of a GoogLeNet inception module. */
struct InceptionSpec
{
    const char *id;   ///< e.g. "IC_3a"
    int wh;           ///< spatial width/height
    int cIn;          ///< module input channels
    int n1x1;
    int n3x3r;
    int n3x3;
    int n5x5r;
    int n5x5;
    int nPool;
    double iaDensity; ///< module input activation density (digitized)
    double wd1x1;     ///< weight densities per branch (digitized)
    double wd3x3r;
    double wd3x3;
    double wd5x5r;
    double wd5x5;
    double wdPool;
};

/** Stage max-pool (3x3/2 pad 1) declared as a branch post-pool. */
ConvLayerParams
withStagePool(ConvLayerParams p, bool stagePool)
{
    if (stagePool) {
        p.poolWindow = 3;
        p.poolStride = 2;
        p.poolPad = 1;
    }
    return p;
}

/**
 * One inception module as explicit DAG edges: the four branches read
 * the module input (the concatenation of the previous module's branch
 * outputs), pool_proj through a 3x3/1 edge max-pool, and the returned
 * edges are the module output for the next module to concatenate.
 * A trailing stage pool (after IC_3b / IC_4e) is declared as a
 * post-pool on each branch output: max-pooling commutes with channel
 * concatenation, so pooling the branches separately is exactly the
 * retired runner's pool-after-concat.
 */
std::vector<LayerInput>
addInception(Network &net, const InceptionSpec &m,
             std::vector<LayerInput> moduleIn, bool stagePool)
{
    const std::string base = std::string(m.id) + "/";
    const JoinKind inJoin = moduleIn.size() > 1 ? JoinKind::Concat
                                                : JoinKind::Single;

    // Reduce layers see the module input.  The 3x3/5x5 layers see the
    // (post-ReLU) reduce outputs, which Fig. 1 shows slightly sparser
    // than the module input.  pool_proj sees the 3x3 stride-1 max-pool
    // of the module input: max-pooling a d-dense plane is close to
    // fully dense for the densities involved, so we cap its density
    // estimate at min(1, 2.2 * d).
    const double reduceOutD = 0.85 * m.iaDensity;
    const double poolD = std::min(1.0, 2.2 * m.iaDensity);

    net.addLayer(withStagePool(conv(base + "1x1", m.cIn, m.n1x1, m.wh,
                                    m.wh, 1, 1, 0, 1, m.wd1x1,
                                    m.iaDensity), stagePool),
                 moduleIn, inJoin);
    const int b1 = static_cast<int>(net.numLayers()) - 1;
    net.addLayer(conv(base + "3x3_reduce", m.cIn, m.n3x3r, m.wh, m.wh,
                      1, 1, 0, 1, m.wd3x3r, m.iaDensity),
                 moduleIn, inJoin);
    const int r3 = static_cast<int>(net.numLayers()) - 1;
    net.addLayer(withStagePool(conv(base + "3x3", m.n3x3r, m.n3x3,
                                    m.wh, m.wh, 3, 1, 1, 1, m.wd3x3,
                                    reduceOutD), stagePool),
                 {LayerInput(r3)});
    const int b3 = static_cast<int>(net.numLayers()) - 1;
    net.addLayer(conv(base + "5x5_reduce", m.cIn, m.n5x5r, m.wh, m.wh,
                      1, 1, 0, 1, m.wd5x5r, m.iaDensity),
                 moduleIn, inJoin);
    const int r5 = static_cast<int>(net.numLayers()) - 1;
    net.addLayer(withStagePool(conv(base + "5x5", m.n5x5r, m.n5x5,
                                    m.wh, m.wh, 5, 1, 2, 1, m.wd5x5,
                                    reduceOutD), stagePool),
                 {LayerInput(r5)});
    const int b5 = static_cast<int>(net.numLayers()) - 1;
    std::vector<LayerInput> poolIn = moduleIn;
    for (auto &e : poolIn) {
        e.poolWindow = 3;
        e.poolStride = 1;
        e.poolPad = 1;
    }
    net.addLayer(withStagePool(conv(base + "pool_proj", m.cIn, m.nPool,
                                    m.wh, m.wh, 1, 1, 0, 1, m.wdPool,
                                    poolD), stagePool),
                 std::move(poolIn), inJoin);
    const int bp = static_cast<int>(net.numLayers()) - 1;
    return {LayerInput(b1), LayerInput(b3), LayerInput(b5),
            LayerInput(bp)};
}

} // anonymous namespace

Network
alexNet()
{
    Network net("AlexNet");
    // Weight densities: Han et al. NIPS'15 pruned AlexNet.
    // Activation densities: digitized from Fig. 1a (conv1 input is the
    // raw image: 100% dense).
    auto conv1 = conv("conv1", 3, 96, 227, 227, 11, 4, 0, 1,
                      0.84, 1.00);
    conv1.poolWindow = 3; // 55x55 -> 27x27
    net.addLayer(conv1);
    auto conv2 = conv("conv2", 96, 256, 27, 27, 5, 1, 2, 2,
                      0.38, 0.55);
    conv2.poolWindow = 3; // 27x27 -> 13x13
    net.addLayer(conv2);
    net.addLayer(conv("conv3", 256, 384, 13, 13, 3, 1, 1, 1,
                      0.35, 0.42));
    net.addLayer(conv("conv4", 384, 384, 13, 13, 3, 1, 1, 2,
                      0.37, 0.45));
    auto conv5 = conv("conv5", 384, 256, 13, 13, 3, 1, 1, 2,
                      0.37, 0.47);
    conv5.poolWindow = 3; // 13x13 -> 6x6 before the FC layers
    net.addLayer(conv5);
    return net;
}

Network
googLeNet()
{
    Network net("GoogLeNet");

    // Stem (outside the paper's per-layer evaluation scope; included
    // for Table I footprint accounting).  Caffe uses ceil-mode 3x3/2
    // pooling (112 -> 56 -> 28); symmetric pad 1 reproduces the
    // shape, and pooling over zero padding is harmless on
    // non-negative post-ReLU data.
    auto stem1 = conv("conv1/7x7_s2", 3, 64, 224, 224, 7, 2, 3, 1,
                      0.70, 1.00);
    stem1.inEval = false;
    stem1.poolWindow = 3; // 112 -> 56
    stem1.poolStride = 2;
    stem1.poolPad = 1;
    net.addLayer(stem1);
    auto stem2r = conv("conv2/3x3_reduce", 64, 64, 56, 56, 1, 1, 0, 1,
                       0.60, 0.65);
    stem2r.inEval = false;
    net.addLayer(stem2r);
    auto stem2 = conv("conv2/3x3", 64, 192, 56, 56, 3, 1, 1, 1,
                      0.45, 0.55);
    stem2.inEval = false;
    stem2.poolWindow = 3; // 56 -> 28
    stem2.poolStride = 2;
    stem2.poolPad = 1;
    net.addLayer(stem2);

    // The nine inception modules: branch widths from the GoogLeNet v1
    // architecture; densities digitized from Fig. 1b (IC_3a / IC_5b
    // shown in the paper; intermediate modules interpolated,
    // activation density declining with depth, weight density 0.30 at
    // its sparsest).
    const InceptionSpec modules[] = {
        {"IC_3a", 28, 192,  64,  96, 128, 16,  32,  32, 0.68,
         0.55, 0.45, 0.40, 0.45, 0.33, 0.52},
        {"IC_3b", 28, 256, 128, 128, 192, 32,  96,  64, 0.62,
         0.52, 0.43, 0.38, 0.43, 0.32, 0.50},
        {"IC_4a", 14, 480, 192,  96, 208, 16,  48,  64, 0.57,
         0.50, 0.42, 0.36, 0.42, 0.31, 0.48},
        {"IC_4b", 14, 512, 160, 112, 224, 24,  64,  64, 0.53,
         0.48, 0.41, 0.35, 0.41, 0.31, 0.46},
        {"IC_4c", 14, 512, 128, 128, 256, 24,  64,  64, 0.50,
         0.46, 0.40, 0.34, 0.40, 0.30, 0.45},
        {"IC_4d", 14, 512, 112, 144, 288, 32,  64,  64, 0.47,
         0.45, 0.39, 0.33, 0.39, 0.30, 0.44},
        {"IC_4e", 14, 528, 256, 160, 320, 32, 128, 128, 0.45,
         0.44, 0.38, 0.32, 0.38, 0.30, 0.43},
        {"IC_5a",  7, 832, 256, 160, 320, 32, 128, 128, 0.43,
         0.43, 0.37, 0.31, 0.37, 0.30, 0.42},
        {"IC_5b",  7, 832, 384, 192, 384, 48, 128, 128, 0.40,
         0.42, 0.36, 0.30, 0.36, 0.30, 0.41},
    };
    std::vector<LayerInput> moduleIn = {
        LayerInput(static_cast<int>(net.numLayers()) - 1)};
    for (const auto &m : modules) {
        // Stage pools sit after IC_3b (28 -> 14) and IC_4e (14 -> 7).
        const bool stagePool = std::string(m.id) == "IC_3b" ||
                               std::string(m.id) == "IC_4e";
        moduleIn = addInception(net, m, std::move(moduleIn), stagePool);
    }
    return net;
}

Network
vgg16()
{
    Network net("VGGNet");
    // Weight densities: Han et al. pruned VGG-16 conv layers.
    // Activation densities: digitized from Fig. 1c.
    struct V { const char *name; int c, k, wh; double wd, ad; };
    const V layers[] = {
        {"conv1_1",   3,  64, 224, 0.58, 1.00},
        {"conv1_2",  64,  64, 224, 0.22, 0.58},
        {"conv2_1",  64, 128, 112, 0.34, 0.52},
        {"conv2_2", 128, 128, 112, 0.36, 0.45},
        {"conv3_1", 128, 256,  56, 0.53, 0.42},
        {"conv3_2", 256, 256,  56, 0.24, 0.38},
        {"conv3_3", 256, 256,  56, 0.42, 0.37},
        {"conv4_1", 256, 512,  28, 0.32, 0.35},
        {"conv4_2", 512, 512,  28, 0.27, 0.33},
        {"conv4_3", 512, 512,  28, 0.34, 0.32},
        {"conv5_1", 512, 512,  14, 0.35, 0.30},
        {"conv5_2", 512, 512,  14, 0.29, 0.28},
        {"conv5_3", 512, 512,  14, 0.36, 0.26},
    };
    for (const auto &l : layers) {
        ConvLayerParams p = conv(l.name, l.c, l.k, l.wh, l.wh, 3, 1,
                                 1, 1, l.wd, l.ad);
        // High-resolution natural-image feature maps: zeros cluster
        // in large featureless regions and channel activity is very
        // uneven, which is what depresses the paper's measured VGG
        // utilization (Fig. 9c).
        p.actSpatialSigma = 1.0;
        p.actChannelSigma = 0.9;
        // 2x2/2 max-pooling after each stage.
        const std::string n = l.name;
        if (n == "conv1_2" || n == "conv2_2" || n == "conv3_3" ||
            n == "conv4_3" || n == "conv5_3") {
            p.poolWindow = 2;
        }
        net.addLayer(p);
    }
    return net;
}

Network
resNet18()
{
    Network net("ResNet18");
    // Pruned-density profile in the spirit of the paper's Fig. 1:
    // weight density declining 0.7 -> 0.3 with depth, activation
    // density 1.0 (raw image) -> ~0.3.  Residual shortcuts are Add
    // joins; the stage-entry shortcut is the usual 1x1/2 projection.
    auto stem = conv("conv1", 3, 64, 224, 224, 7, 2, 3, 1, 0.70, 1.00);
    stem.poolWindow = 3; // 112 -> 56
    stem.poolStride = 2;
    stem.poolPad = 1;
    net.addLayer(stem);

    struct Stage { const char *id; int cIn, c, wh; double wd, ad; };
    const Stage stages[] = {
        {"res2",  64,  64, 56, 0.60, 0.55},
        {"res3",  64, 128, 28, 0.50, 0.45},
        {"res4", 128, 256, 14, 0.40, 0.38},
        {"res5", 256, 512,  7, 0.30, 0.30},
    };
    // The identity feeding the current block: edges whose element-wise
    // sum is the previous block's output.
    std::vector<LayerInput> identity = {
        LayerInput(static_cast<int>(net.numLayers()) - 1)};
    for (const auto &s : stages) {
        const bool down = s.cIn != s.c; // stage entry halves the plane
        const std::string a = std::string(s.id) + "a";
        const std::string b = std::string(s.id) + "b";
        const int inWh = down ? s.wh * 2 : s.wh;
        const JoinKind inJoin = identity.size() > 1 ? JoinKind::Add
                                                    : JoinKind::Single;

        // Block a: conv/conv (+ projection shortcut on downsampling).
        net.addLayer(conv(a + "_1", s.cIn, s.c, inWh, inWh, 3,
                          down ? 2 : 1, 1, 1, s.wd, s.ad),
                     identity, inJoin);
        net.addLayer(conv(a + "_2", s.c, s.c, s.wh, s.wh, 3, 1, 1, 1,
                          s.wd, 0.9 * s.ad),
                     {LayerInput(static_cast<int>(net.numLayers()) - 1)});
        const int a2 = static_cast<int>(net.numLayers()) - 1;
        int shortcut;
        if (down) {
            net.addLayer(conv(a + "_down", s.cIn, s.c, inWh, inWh, 1,
                              2, 0, 1, s.wd, s.ad),
                         identity, inJoin);
            shortcut = static_cast<int>(net.numLayers()) - 1;
            identity = {LayerInput(a2), LayerInput(shortcut)};
        } else {
            // Identity shortcut: block output = conv stack + input.
            identity.insert(identity.begin(), LayerInput(a2));
        }

        // Block b: plain identity block on the stage width.
        net.addLayer(conv(b + "_1", s.c, s.c, s.wh, s.wh, 3, 1, 1, 1,
                          s.wd, 0.85 * s.ad),
                     identity, JoinKind::Add);
        net.addLayer(conv(b + "_2", s.c, s.c, s.wh, s.wh, 3, 1, 1, 1,
                          s.wd, 0.8 * s.ad),
                     {LayerInput(static_cast<int>(net.numLayers()) - 1)});
        identity.insert(identity.begin(),
                        LayerInput(static_cast<int>(net.numLayers()) - 1));
    }
    return net;
}

Network
mobileNet()
{
    Network net("MobileNet");
    // MobileNet-v1 topology: a stride-2 stem then 13 depthwise
    // separable pairs (3x3 depthwise with groups = C, then 1x1
    // pointwise).  Depthwise layers resist pruning (few weights), so
    // their densities stay high while pointwise layers carry the
    // sparsity.
    net.addLayer(conv("conv1", 3, 32, 224, 224, 3, 2, 1, 1,
                      0.80, 1.00));
    struct Pair { int c, k, stride; };
    const Pair pairs[] = {
        {32, 64, 1},    {64, 128, 2},   {128, 128, 1},
        {128, 256, 2},  {256, 256, 1},  {256, 512, 2},
        {512, 512, 1},  {512, 512, 1},  {512, 512, 1},
        {512, 512, 1},  {512, 512, 1},  {512, 1024, 2},
        {1024, 1024, 1},
    };
    int wh = 112;
    double ad = 0.60;
    double wd = 0.55;
    for (size_t i = 0; i < sizeof(pairs) / sizeof(pairs[0]); ++i) {
        const Pair &p = pairs[i];
        const std::string n = std::to_string(i + 1);
        net.addLayer(conv("dw" + n, p.c, p.c, wh, wh, 3, p.stride, 1,
                          p.c, 0.85, ad));
        if (p.stride == 2)
            wh /= 2;
        net.addLayer(conv("pw" + n, p.c, p.k, wh, wh, 1, 1, 0, 1,
                          wd, 0.95 * ad));
        ad = std::max(0.30, ad - 0.02);
        wd = std::max(0.25, wd - 0.02);
    }
    return net;
}

std::vector<Network>
paperNetworks()
{
    return {alexNet(), googLeNet(), vgg16()};
}

Network
withUniformDensity(const Network &net, double weightDensity,
                   double activationDensity)
{
    Network out(net.name() + "-uniform");
    for (size_t i = 0; i < net.numLayers(); ++i) {
        ConvLayerParams l = net.layer(i);
        l.weightDensity = weightDensity;
        l.inputDensity = activationDensity;
        // The Section VI-A sweep is synthetic: sparsity is i.i.d.,
        // with no natural-image clustering.
        l.actSpatialSigma = 0.0;
        l.actChannelSigma = 0.0;
        // Preserve edges and joins so DAG topologies stay runnable.
        out.addLayer(std::move(l), net.inputs(i), net.join(i));
    }
    return out;
}

Network
tinyTestNetwork()
{
    Network net("tiny");
    net.addLayer(conv("t_conv1", 3, 8, 16, 16, 3, 1, 1, 1, 0.6, 0.9));
    net.addLayer(conv("t_conv2", 8, 16, 16, 16, 3, 2, 1, 1, 0.5, 0.5));
    net.addLayer(conv("t_conv3", 16, 16, 8, 8, 1, 1, 0, 1, 0.5, 0.45));
    net.addLayer(conv("t_conv4", 16, 8, 8, 8, 5, 1, 2, 2, 0.4, 0.4));
    return net;
}

Network
tinyResNetwork()
{
    Network net("tiny-res");
    net.addLayer(conv("tr_conv1", 3, 8, 16, 16, 3, 1, 1, 1, 0.6, 0.9));
    net.addLayer(conv("tr_conv2a", 8, 8, 16, 16, 3, 1, 1, 1, 0.5,
                      0.5),
                 {LayerInput(0)});
    net.addLayer(conv("tr_conv2b", 8, 8, 16, 16, 3, 1, 1, 1, 0.5,
                      0.45),
                 {LayerInput(1)});
    // Residual join: conv3 consumes conv2b + the conv1 shortcut.
    net.addLayer(conv("tr_conv3", 8, 16, 16, 16, 3, 2, 1, 1, 0.45,
                      0.5),
                 {LayerInput(2), LayerInput(0)}, JoinKind::Add);
    net.addLayer(conv("tr_conv4", 16, 8, 8, 8, 1, 1, 0, 1, 0.4, 0.4),
                 {LayerInput(3)});
    return net;
}

Network
tinyDwNetwork()
{
    Network net("tiny-dw");
    net.addLayer(conv("td_conv1", 3, 8, 16, 16, 3, 1, 1, 1, 0.6,
                      0.9));
    net.addLayer(conv("td_dw2", 8, 8, 16, 16, 3, 2, 1, 8, 0.85, 0.5));
    net.addLayer(conv("td_pw2", 8, 16, 8, 8, 1, 1, 0, 1, 0.5, 0.45));
    net.addLayer(conv("td_dw3", 16, 16, 8, 8, 3, 1, 1, 16, 0.85,
                      0.4));
    net.addLayer(conv("td_pw3", 16, 16, 8, 8, 1, 1, 0, 1, 0.45,
                      0.4));
    return net;
}

} // namespace scnn
