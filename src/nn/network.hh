/**
 * @file
 * A network is an ordered list of convolutional layers plus the
 * aggregate queries the paper's Table I reports (#conv layers, maximum
 * layer weight/activation footprints, total multiplies).
 */

#ifndef SCNN_NN_NETWORK_HH
#define SCNN_NN_NETWORK_HH

#include <cstdint>
#include <string>
#include <vector>

#include "nn/layer.hh"

namespace scnn {

class Network
{
  public:
    Network() = default;
    explicit Network(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }

    void
    addLayer(ConvLayerParams layer)
    {
        layer.validate();
        layers_.push_back(std::move(layer));
    }

    size_t numLayers() const { return layers_.size(); }
    const ConvLayerParams &layer(size_t i) const { return layers_.at(i); }
    const std::vector<ConvLayerParams> &layers() const { return layers_; }

    /** Layers in the paper's evaluation scope (see inEval). */
    std::vector<ConvLayerParams> evalLayers() const;

    /**
     * True when the layer list forms a sequential chain: each layer's
     * output shape (after its declared max-pooling) matches the next
     * layer's input shape.  Chained execution requires this;
     * GoogLeNet's inception DAG (branches concatenated by channel)
     * fails the check and needs the dedicated DAG runner.
     */
    bool isSequential() const;

    /** Count of evaluation-scope conv layers. */
    size_t numEvalLayers() const;

    /** Total dense multiplies across all layers / eval layers. */
    uint64_t totalMacs(bool evalOnly = false) const;

    /** Expected non-zero multiplies under the density profiles. */
    double totalIdealMacs(bool evalOnly = false) const;

    /** Largest per-layer weight footprint in bytes (2 B/value). */
    uint64_t maxLayerWeightBytes() const;

    /**
     * Largest per-layer activation footprint in bytes: max over layers
     * of max(input, output) at 2 B/value.
     */
    uint64_t maxLayerActivationBytes() const;

  private:
    std::string name_;
    std::vector<ConvLayerParams> layers_;
};

} // namespace scnn

#endif // SCNN_NN_NETWORK_HH
