/**
 * @file
 * A network is a DAG of convolutional layers: an ordered layer list
 * plus explicit input edges (with optional per-edge max-pooling) and a
 * join kind per layer (single input, channel concatenation, residual
 * addition).  Layers added without edges chain sequentially, so the
 * paper's linear networks (AlexNet, VGG) read exactly as before, while
 * GoogLeNet's inception branches and ResNet-style shortcuts are
 * expressed directly.  The class also answers the aggregate queries
 * the paper's Table I reports (#conv layers, maximum layer
 * weight/activation footprints, total multiplies).
 */

#ifndef SCNN_NN_NETWORK_HH
#define SCNN_NN_NETWORK_HH

#include <cstdint>
#include <string>
#include <vector>

#include "nn/layer.hh"

namespace scnn {

/** How a layer combines its input edges. */
enum class JoinKind
{
    Single, ///< one input edge (or none: a source layer)
    Concat, ///< channel-wise concatenation of the inputs, in order
    Add,    ///< element-wise residual addition (identical shapes)
};

/** Human-readable join name ("single", "concat", "add"). */
const char *joinKindName(JoinKind join);

/**
 * One input edge of a layer: the producer layer's index, plus an
 * optional max-pool applied to the producer's output along this edge
 * (after the producer's own declared post-pooling).  GoogLeNet's
 * pool_proj branch (3x3/1 max-pool of the module input) is the
 * motivating case.
 */
struct LayerInput
{
    int from = -1;       ///< producer layer index (must precede)
    int poolWindow = 0;  ///< edge max-pool window (0 = none)
    int poolStride = 2;
    int poolPad = 0;

    LayerInput() = default;
    LayerInput(int fromIdx, int window = 0, int stride = 2, int pad = 0)
        : from(fromIdx), poolWindow(window), poolStride(stride),
          poolPad(pad)
    {
    }
};

class Network
{
  public:
    Network() = default;
    explicit Network(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }

    /**
     * Append a layer chained to the previous one (the first layer
     * becomes the network source).  fatal()s on invalid layer
     * parameters or a duplicate layer name.
     */
    void addLayer(ConvLayerParams layer);

    /**
     * Append a layer with explicit input edges.  An empty edge list
     * declares a source layer (its input activations are synthesized
     * or loaded).  Every edge must point at an already-added layer
     * (indices only point backward, so the graph is acyclic by
     * construction and declaration order is a topological order).
     * fatal()s on invalid parameters, duplicate names, out-of-range
     * edges, or a join inconsistent with the edge count (Concat/Add
     * need at least two inputs; Single takes at most one).
     */
    void addLayer(ConvLayerParams layer, std::vector<LayerInput> inputs,
                  JoinKind join = JoinKind::Single);

    size_t numLayers() const { return layers_.size(); }
    const ConvLayerParams &layer(size_t i) const { return layers_.at(i); }
    const std::vector<ConvLayerParams> &layers() const { return layers_; }

    /** Input edges of layer i (empty = source layer). */
    const std::vector<LayerInput> &inputs(size_t i) const
    {
        return inputs_.at(i);
    }

    /** Join kind of layer i. */
    JoinKind join(size_t i) const { return joins_.at(i); }

    /** Indices of source layers (no input edges). */
    std::vector<size_t> sourceLayers() const;

    /** Layers in the paper's evaluation scope (see inEval). */
    std::vector<ConvLayerParams> evalLayers() const;

    /**
     * True when the explicit edges form a single sequential chain
     * (each layer's one un-pooled input edge is the previous layer)
     * AND each layer's post-pooled output shape matches the next
     * layer's declared input shape.  Chained sequential execution
     * (ScnnSimulator::runNetworkChained) requires this; everything
     * else goes through the generic DAG executor.  Topology comes
     * from the edges, never from shape coincidence: a branching DAG
     * whose consecutive layers happen to agree shape-wise is still a
     * DAG.
     */
    bool isSequential() const;

    /**
     * Structural and shape problems of the DAG: joins whose edge
     * count is wrong for their kind, Concat inputs with mismatched
     * planes, Add inputs with mismatched shapes, and layers whose
     * declared input shape disagrees with what their joined
     * (post-pool, post-edge-pool) inputs produce.  Empty means the
     * network is executable as a DAG.  Kept non-fatal so the service
     * boundary can reject bad requests recoverably.
     */
    std::vector<std::string> topologyErrors() const;

    /** Count of evaluation-scope conv layers. */
    size_t numEvalLayers() const;

    /** Total dense multiplies across all layers / eval layers. */
    uint64_t totalMacs(bool evalOnly = false) const;

    /** Expected non-zero multiplies under the density profiles. */
    double totalIdealMacs(bool evalOnly = false) const;

    /** Largest per-layer weight footprint in bytes (2 B/value). */
    uint64_t maxLayerWeightBytes() const;

    /**
     * Largest per-layer activation footprint in bytes: max over layers
     * of max(input, output) at 2 B/value.
     */
    uint64_t maxLayerActivationBytes() const;

  private:
    std::string name_;
    std::vector<ConvLayerParams> layers_;
    std::vector<std::vector<LayerInput>> inputs_; ///< per layer
    std::vector<JoinKind> joins_;                 ///< per layer
};

} // namespace scnn

#endif // SCNN_NN_NETWORK_HH
