/**
 * @file
 * Weight manifests: a flat binary container carrying real per-layer
 * weight tensors (and optionally measured input-activation densities)
 * so simulations can run against pruned checkpoints instead of
 * Bernoulli-sampled synthetic weights.
 *
 * Format `SCNNWMF1` (all integers little-endian):
 *
 *     8  bytes  magic "SCNNWMF1"
 *     4  bytes  uint32 entry count
 *     per entry:
 *       4 bytes       uint32 layer-name length N (1..4096)
 *       N bytes       layer name (no NUL)
 *       16 bytes      uint32 k, c, r, s  (weight dims; c = C/groups)
 *       8 bytes       float64 input density (< 0 = not provided)
 *       k*c*r*s*4 b   float32 weights, row-major (k, c, r, s)
 *
 * Parsing is defensive and never fatal()s: truncated, oversized or
 * corrupt manifests come back as error strings so the service
 * boundary can reject the request and keep serving.
 */

#ifndef SCNN_NN_MANIFEST_HH
#define SCNN_NN_MANIFEST_HH

#include <cstdint>
#include <string>
#include <vector>

#include "nn/network.hh"
#include "tensor/tensor.hh"

namespace scnn {

/** One named weight tensor (plus optional measured input density). */
struct ManifestEntry
{
    std::string name;          ///< layer name the tensor belongs to
    Tensor4 weights;           ///< (K, C/groups, R, S)
    double inputDensity = -1.; ///< measured input density; < 0 = unset
};

/** An in-memory weight manifest: ordered entries, unique names. */
class WeightManifest
{
  public:
    /** Append an entry; returns false (with *error set) on problems. */
    bool add(ManifestEntry entry, std::string *error);

    size_t numEntries() const { return entries_.size(); }
    const std::vector<ManifestEntry> &entries() const { return entries_; }

    /** Entry for a layer name, or nullptr when absent. */
    const ManifestEntry *find(const std::string &name) const;

    /**
     * Weights for a layer: nullptr with *error empty when the
     * manifest has no entry (caller falls back to synthesis), nullptr
     * with *error set when an entry exists but its dimensions do not
     * match the layer's (K, C/groups, R, S).
     */
    const Tensor4 *weightsFor(const ConvLayerParams &layer,
                              std::string *error) const;

    /** FNV-1a 64 over the serialized bytes (cache/signature key). */
    uint64_t fingerprint() const;

    /** Serialize to the SCNNWMF1 byte format. */
    std::string serialize() const;

    /**
     * Parse from bytes.  Returns false and sets *error on anything
     * malformed; *out is unspecified on failure.
     */
    static bool parse(const std::string &bytes, WeightManifest *out,
                      std::string *error);

  private:
    std::vector<ManifestEntry> entries_;
};

/** Write a manifest file; false + *error on I/O failure. */
bool writeManifestFile(const std::string &path,
                       const WeightManifest &manifest,
                       std::string *error);

/** Load and parse a manifest file; false + *error on failure. */
bool loadManifestFile(const std::string &path, WeightManifest *out,
                      std::string *error);

/**
 * A manifest carrying the network's synthetic seeded weights (the
 * exact tensors makeWeights() would draw).  Running with this
 * manifest reproduces the synthetic run bit-for-bit, which is both
 * the round-trip test and the easiest way to produce a valid example
 * file for a zoo entry.
 */
WeightManifest manifestFromNetwork(const Network &net, uint64_t seed);

/**
 * Rebind a network to a manifest: every layer with a manifest entry
 * gets its weightDensity replaced by the tensor's actual density and,
 * when the entry provides one, its inputDensity replaced by the
 * measured value.  Layers without entries are untouched (partial
 * manifests are allowed).  Returns false with *error set when an
 * entry's dimensions do not match its layer, or when no entry matches
 * any layer (almost certainly the wrong file).
 */
bool applyManifest(Network &net, const WeightManifest &manifest,
                   std::string *error);

} // namespace scnn

#endif // SCNN_NN_MANIFEST_HH
