#include "nn/layer.hh"

#include "common/logging.hh"

namespace scnn {

void
ConvLayerParams::validate() const
{
    if (inChannels <= 0 || outChannels <= 0 || inWidth <= 0 ||
        inHeight <= 0 || filterW <= 0 || filterH <= 0) {
        fatal("layer %s: non-positive dimension", name.c_str());
    }
    if (strideX <= 0 || strideY <= 0)
        fatal("layer %s: non-positive stride", name.c_str());
    if (padX < 0 || padY < 0)
        fatal("layer %s: negative padding", name.c_str());
    if (groups <= 0 || inChannels % groups != 0 ||
        outChannels % groups != 0) {
        fatal("layer %s: groups=%d must divide C=%d and K=%d",
              name.c_str(), groups, inChannels, outChannels);
    }
    if (outWidth() <= 0 || outHeight() <= 0)
        fatal("layer %s: empty output plane", name.c_str());
    if (weightDensity < 0.0 || weightDensity > 1.0 ||
        inputDensity < 0.0 || inputDensity > 1.0) {
        fatal("layer %s: density out of [0,1]", name.c_str());
    }
}

std::string
ConvLayerParams::toString() const
{
    return strfmt("%s: C=%d K=%d %dx%d filt %dx%d stride %d pad %d "
                  "groups %d (wd=%.2f, ad=%.2f)",
                  name.c_str(), inChannels, outChannels, inWidth,
                  inHeight, filterW, filterH, strideX, padX, groups,
                  weightDensity, inputDensity);
}

ConvLayerParams
makeConv(const std::string &name, int c, int k, int wh, int rs, int pad,
         double wDensity, double iaDensity)
{
    ConvLayerParams p;
    p.name = name;
    p.inChannels = c;
    p.outChannels = k;
    p.inWidth = wh;
    p.inHeight = wh;
    p.filterW = rs;
    p.filterH = rs;
    p.padX = pad;
    p.padY = pad;
    p.weightDensity = wDensity;
    p.inputDensity = iaDensity;
    p.validate();
    return p;
}

ConvLayerParams
makeFullyConnected(const std::string &name, int inDim, int outDim,
                   double wDensity, double iaDensity)
{
    ConvLayerParams p;
    p.name = name;
    p.inChannels = inDim;
    p.outChannels = outDim;
    p.inWidth = 1;
    p.inHeight = 1;
    p.filterW = 1;
    p.filterH = 1;
    p.weightDensity = wDensity;
    p.inputDensity = iaDensity;
    p.applyRelu = true;
    p.validate();
    return p;
}

} // namespace scnn
