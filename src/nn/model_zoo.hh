/**
 * @file
 * The paper's three benchmark networks (Section II, Table I), defined
 * from the Caffe BVLC Model Zoo topologies, together with per-layer
 * pruned weight densities and measured input-activation densities.
 *
 * Density provenance (documented substitution, see DESIGN.md): the
 * paper prunes with Han et al. [15] and measures activations through
 * pycaffe; neither artifact ships with the paper.  Weight densities
 * here follow the published per-layer pruning results of Han et al.
 * (NIPS 2015 / Deep Compression) for AlexNet and VGG-16, and Fig. 1's
 * reported range (minimum ~30%) for GoogLeNet.  Activation densities
 * are digitized from Fig. 1: 100% for the raw-image first layer,
 * 30-70% elsewhere, trending downward with depth.  SCNN's behaviour
 * depends on the non-zero counts and their distribution, which these
 * profiles reproduce.
 */

#ifndef SCNN_NN_MODEL_ZOO_HH
#define SCNN_NN_MODEL_ZOO_HH

#include <string>
#include <vector>

#include "nn/network.hh"

namespace scnn {

/**
 * AlexNet: 5 conv layers (conv2/4/5 use 2 channel groups), 227x227
 * input, ~0.7 G multiplies.
 */
Network alexNet();

/**
 * GoogLeNet: the 54 convolutions inside the 9 inception modules
 * (evaluation scope, as in the paper) plus the 3 stem convolutions
 * (inEval = false; they account for Table I's maximum activation
 * footprint).
 */
Network googLeNet();

/**
 * VGG-16: 13 conv layers, all 3x3/pad 1; the paper's proxy for large
 * inputs that force DRAM tiling (Section VI-D).
 */
Network vgg16();

/**
 * ResNet-18-style extension network (not a paper workload): 20 convs
 * over 4 residual stages with Add-join shortcuts and 1x1/2 projection
 * shortcuts at stage entries, with a plausible pruned-density
 * profile.  Exercises the DAG executor's residual path at scale.
 */
Network resNet18();

/**
 * MobileNet-v1-style extension network (not a paper workload): a
 * stride-2 stem and 13 depthwise-separable pairs (3x3 depthwise with
 * groups = C, 1x1 pointwise).  Sequential topology; exercises extreme
 * channel grouping.
 */
Network mobileNet();

/** All three paper networks. */
std::vector<Network> paperNetworks();

/**
 * The synthetic sensitivity benchmark of Section VI-A: a copy of the
 * given network with every layer's weight and activation density
 * overridden to the same value (first-layer activations included, as
 * the sweep is artificial).
 */
Network withUniformDensity(const Network &net, double weightDensity,
                           double activationDensity);

/**
 * A small synthetic network used by tests and the quickstart example:
 * not a paper workload, but exercises every code path (stride,
 * padding, groups, 1x1 filters) at toy sizes.
 */
Network tinyTestNetwork();

/**
 * A toy residual DAG (5 layers, one Add join with a two-block
 * shortcut): the fast regression target for DAG-executor determinism
 * and the CI chained-DAG smoke.
 */
Network tinyResNetwork();

/**
 * A toy depthwise-separable chain (5 layers, two depthwise convs with
 * groups = C): fast coverage for extreme grouping in chained mode.
 */
Network tinyDwNetwork();

} // namespace scnn

#endif // SCNN_NN_MODEL_ZOO_HH
