/**
 * @file
 * Synthetic sparse workload generation.
 *
 * The paper drives its simulator with pruned Caffe weights and
 * pycaffe-extracted activations; we synthesize tensors with the same
 * per-layer densities (see model_zoo.hh for provenance).  Non-zero
 * positions are Bernoulli-sampled per element; activation magnitudes
 * are positive (layer inputs are post-ReLU), weights are signed.  All
 * draws are deterministic in (network/layer label, master seed).
 */

#ifndef SCNN_NN_WORKLOAD_HH
#define SCNN_NN_WORKLOAD_HH

#include <cstdint>

#include "common/random.hh"
#include "nn/layer.hh"
#include "tensor/tensor.hh"

namespace scnn {

/** A layer plus concrete input/weight tensors ready to simulate. */
struct LayerWorkload
{
    ConvLayerParams layer;
    Tensor3 input;    ///< (C, W, H), density ~ layer.inputDensity
    Tensor4 weights;  ///< (K, C/groups, R, S), density ~ weightDensity
};

/**
 * Generate input activations for a layer at its profile density.
 * Values are uniform in (0.1, 1] (post-ReLU magnitudes).
 */
Tensor3 makeActivations(const ConvLayerParams &layer, Rng &rng);

/**
 * Generate pruned weights for a layer at its profile density.  Values
 * are uniform in +-(0.1, 1].
 */
Tensor4 makeWeights(const ConvLayerParams &layer, Rng &rng);

/**
 * Generate the full workload for a layer.  The RNG stream is derived
 * from (layer name, seed) so per-layer workloads are independent and
 * stable under reordering.
 */
LayerWorkload makeWorkload(const ConvLayerParams &layer, uint64_t seed);

} // namespace scnn

#endif // SCNN_NN_WORKLOAD_HH
