#include "nn/quantize.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "nn/reference.hh"

namespace scnn {

QuantScale
chooseScale(const float *data, size_t n, int dataBits)
{
    SCNN_ASSERT(dataBits >= 2 && dataBits <= 31, "bad data width");
    float peak = 0.0f;
    for (size_t i = 0; i < n; ++i)
        peak = std::max(peak, std::fabs(data[i]));
    QuantScale s;
    const double maxCode = static_cast<double>((1 << (dataBits - 1)) - 1);
    s.scale = peak > 0.0f ? static_cast<double>(peak) / maxCode
                          : 1.0 / maxCode;
    return s;
}

int32_t
quantize(float v, const QuantScale &s, int dataBits)
{
    const int32_t maxCode = (1 << (dataBits - 1)) - 1;
    const int32_t minCode = -maxCode - 1;
    const double q = std::nearbyint(static_cast<double>(v) / s.scale);
    return static_cast<int32_t>(
        std::clamp(q, static_cast<double>(minCode),
                   static_cast<double>(maxCode)));
}

float
dequantize(int32_t q, const QuantScale &s)
{
    return static_cast<float>(q * s.scale);
}

QuantStats
quantizedConv(const ConvLayerParams &layer, const Tensor3 &input,
              const Tensor4 &weights, const QuantConfig &cfg,
              Tensor3 *out)
{
    layer.validate();
    SCNN_ASSERT(cfg.productShift >= 0 && cfg.productShift < 31,
                "bad product shift");

    const QuantScale sa =
        chooseScale(input.data(), input.size(), cfg.dataBits);
    const QuantScale sw =
        chooseScale(weights.data(), weights.size(), cfg.dataBits);

    // Quantize operands once.
    std::vector<int32_t> qa(input.size());
    for (size_t i = 0; i < input.size(); ++i)
        qa[i] = quantize(input.data()[i], sa, cfg.dataBits);
    std::vector<int32_t> qw(weights.size());
    for (size_t i = 0; i < weights.size(); ++i)
        qw[i] = quantize(weights.data()[i], sw, cfg.dataBits);

    const int64_t accMax = (1ll << (cfg.accumBits - 1)) - 1;
    const int64_t accMin = -accMax - 1;
    // One accumulator LSB corresponds to this real value.
    const double accLsb =
        sa.scale * sw.scale * static_cast<double>(1ll << cfg.productShift);

    const int outW = layer.outWidth();
    const int outH = layer.outHeight();
    const int cPerGroup = layer.inChannels / layer.groups;
    const int kPerGroup = layer.outChannels / layer.groups;

    Tensor3 result(layer.outChannels, outW, outH);
    const Tensor3 reference =
        referenceConvNoRelu(layer, input, weights);

    QuantStats st;
    double sqErr = 0.0;
    double sqRef = 0.0;

    for (int k = 0; k < layer.outChannels; ++k) {
        const int group = k / kPerGroup;
        const int cBase = group * cPerGroup;
        for (int ox = 0; ox < outW; ++ox) {
            for (int oy = 0; oy < outH; ++oy) {
                int64_t acc = 0;
                for (int cl = 0; cl < cPerGroup; ++cl) {
                    for (int r = 0; r < layer.filterW; ++r) {
                        const int x =
                            ox * layer.strideX + r - layer.padX;
                        if (x < 0 || x >= layer.inWidth)
                            continue;
                        for (int s = 0; s < layer.filterH; ++s) {
                            const int y =
                                oy * layer.strideY + s - layer.padY;
                            if (y < 0 || y >= layer.inHeight)
                                continue;
                            const int64_t prod =
                                static_cast<int64_t>(
                                    qa[input.index(cBase + cl, x,
                                                   y)]) *
                                qw[weights.index(k, cl, r, s)];
                            // Round-to-nearest shift back to operand
                            // precision.
                            const int64_t round =
                                cfg.productShift > 0
                                    ? (1ll << (cfg.productShift - 1))
                                    : 0;
                            acc += (prod + round) >> cfg.productShift;
                            if (acc > accMax) {
                                acc = accMax;
                                ++st.accumSaturations;
                            } else if (acc < accMin) {
                                acc = accMin;
                                ++st.accumSaturations;
                            }
                        }
                    }
                }
                double v = static_cast<double>(acc) * accLsb;
                if (layer.applyRelu)
                    v = std::max(v, 0.0);
                double ref =
                    static_cast<double>(reference.get(k, ox, oy));
                if (layer.applyRelu)
                    ref = std::max(ref, 0.0);
                result.set(k, ox, oy, static_cast<float>(v));
                const double err = v - ref;
                st.maxAbsError =
                    std::max(st.maxAbsError, std::fabs(err));
                sqErr += err * err;
                sqRef += ref * ref;
            }
        }
    }
    const double n = static_cast<double>(result.size());
    st.rmsError = std::sqrt(sqErr / n);
    st.referenceRms = std::sqrt(sqRef / n);
    if (out != nullptr)
        *out = std::move(result);
    return st;
}

} // namespace scnn
