#include "nn/reference.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"
#include "common/parallel.hh"

namespace scnn {

namespace {

Tensor3
convImpl(const ConvLayerParams &layer, const Tensor3 &input,
         const Tensor4 &weights, bool relu, int threads)
{
    SCNN_ASSERT(input.channels() == layer.inChannels &&
                input.width() == layer.inWidth &&
                input.height() == layer.inHeight,
                "reference conv: input shape mismatch for %s",
                layer.name.c_str());
    SCNN_ASSERT(weights.k() == layer.outChannels &&
                weights.c() == layer.inChannels / layer.groups &&
                weights.r() == layer.filterW &&
                weights.s() == layer.filterH,
                "reference conv: weight shape mismatch for %s",
                layer.name.c_str());

    const int outW = layer.outWidth();
    const int outH = layer.outHeight();
    const int cPerGroup = layer.inChannels / layer.groups;
    const int kPerGroup = layer.outChannels / layer.groups;

    Tensor3 out(layer.outChannels, outW, outH);

    // Output channels write disjoint planes, so the loop parallelizes
    // with bit-identical results for any thread count.
    parallelFor(
        static_cast<size_t>(layer.outChannels),
        [&](size_t ki) {
        const int k = static_cast<int>(ki);
        const int group = k / kPerGroup;
        const int cBase = group * cPerGroup;
        for (int ox = 0; ox < outW; ++ox) {
            for (int oy = 0; oy < outH; ++oy) {
                double acc = 0.0;
                for (int cl = 0; cl < cPerGroup; ++cl) {
                    for (int r = 0; r < layer.filterW; ++r) {
                        const int x =
                            ox * layer.strideX + r - layer.padX;
                        if (x < 0 || x >= layer.inWidth)
                            continue;
                        for (int s = 0; s < layer.filterH; ++s) {
                            const int y =
                                oy * layer.strideY + s - layer.padY;
                            if (y < 0 || y >= layer.inHeight)
                                continue;
                            acc += static_cast<double>(
                                       input.get(cBase + cl, x, y)) *
                                   static_cast<double>(
                                       weights.get(k, cl, r, s));
                        }
                    }
                }
                float v = static_cast<float>(acc);
                if (relu)
                    v = std::max(v, 0.0f);
                out.set(k, ox, oy, v);
            }
        }
    }, threads);
    return out;
}

} // anonymous namespace

Tensor3
referenceConv(const ConvLayerParams &layer, const Tensor3 &input,
              const Tensor4 &weights, int threads)
{
    return convImpl(layer, input, weights, layer.applyRelu, threads);
}

Tensor3
referenceConvNoRelu(const ConvLayerParams &layer, const Tensor3 &input,
                    const Tensor4 &weights, int threads)
{
    return convImpl(layer, input, weights, false, threads);
}

Tensor3
maxPool(const Tensor3 &input, int window, int stride, int pad,
        int threads)
{
    SCNN_ASSERT(window > 0 && stride > 0 && pad >= 0,
                "bad pooling parameters");
    const int outW = poolOutDim(input.width(), window, stride, pad);
    const int outH = poolOutDim(input.height(), window, stride, pad);
    SCNN_ASSERT(outW > 0 && outH > 0, "empty pooled plane");

    Tensor3 out(input.channels(), outW, outH);
    parallelFor(
        static_cast<size_t>(input.channels()),
        [&](size_t ci) {
        const int c = static_cast<int>(ci);
        for (int ox = 0; ox < outW; ++ox) {
            for (int oy = 0; oy < outH; ++oy) {
                float best = -std::numeric_limits<float>::infinity();
                bool any = false;
                for (int r = 0; r < window; ++r) {
                    const int x = ox * stride + r - pad;
                    if (x < 0 || x >= input.width())
                        continue;
                    for (int s = 0; s < window; ++s) {
                        const int y = oy * stride + s - pad;
                        if (y < 0 || y >= input.height())
                            continue;
                        best = std::max(best, input.get(c, x, y));
                        any = true;
                    }
                }
                out.set(c, ox, oy, any ? best : 0.0f);
            }
        }
    }, threads);
    return out;
}

} // namespace scnn
