/**
 * @file
 * Fixed-point datapath model (Table II: 16-bit multipliers, 24-bit
 * accumulators).
 *
 * The simulators carry float values for convenience; this module
 * models what the real datapath computes: activations and weights
 * quantized to signed 16-bit fixed point with per-tensor scales,
 * products accumulated in a 24-bit saturating accumulator (with a
 * configurable pre-accumulation shift, as hardware uses to fit the
 * 32-bit products), and outputs requantized.  The quantization study
 * bench uses it to show that the paper's 16-bit datapath is adequate
 * for inference-scale convolutions.
 */

#ifndef SCNN_NN_QUANTIZE_HH
#define SCNN_NN_QUANTIZE_HH

#include <cstdint>

#include "nn/layer.hh"
#include "tensor/tensor.hh"

namespace scnn {

/** Parameters of the fixed-point datapath. */
struct QuantConfig
{
    int dataBits = 16;   ///< operand width (Table II)
    int accumBits = 24;  ///< accumulator width (Table II)
    /**
     * Right-shift (round-to-nearest) applied to each product before
     * accumulation.  The Q1.(dataBits-1) convention shifts by
     * dataBits-1, which re-aligns the product to operand precision
     * and leaves the 24-bit accumulator 2^(accumBits-dataBits) = 256x
     * of headroom over full-scale operands.
     */
    int productShift = 15;
};

/** Result of quantizing a tensor: scale chosen per tensor. */
struct QuantScale
{
    double scale = 1.0;  ///< real value = q * scale
};

/**
 * Per-tensor symmetric scale so the maximum |value| maps to the
 * largest representable code.
 */
QuantScale chooseScale(const float *data, size_t n, int dataBits);

/** Quantize one value with the given scale (round-to-nearest,
 *  saturating). */
int32_t quantize(float v, const QuantScale &s, int dataBits);

/** Dequantize. */
float dequantize(int32_t q, const QuantScale &s);

/** Statistics of a fixed-point convolution. */
struct QuantStats
{
    uint64_t accumSaturations = 0; ///< clamped accumulator updates
    double maxAbsError = 0.0;      ///< vs float reference
    double rmsError = 0.0;
    double referenceRms = 0.0;     ///< scale of the float output
};

/**
 * Run the layer's convolution entirely in the fixed-point datapath
 * (quantized operands, shifted products, saturating 24-bit
 * accumulation), dequantize the result and compare with the float
 * reference.
 *
 * @param layer   layer parameters.
 * @param input   float activations (will be quantized internally).
 * @param weights float weights.
 * @param cfg     datapath widths.
 * @param out     optional dequantized output.
 */
QuantStats quantizedConv(const ConvLayerParams &layer,
                         const Tensor3 &input, const Tensor4 &weights,
                         const QuantConfig &cfg,
                         Tensor3 *out = nullptr);

} // namespace scnn

#endif // SCNN_NN_QUANTIZE_HH
