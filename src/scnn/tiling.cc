#include "scnn/tiling.hh"

#include <algorithm>

#include "common/logging.hh"

namespace scnn {

std::vector<int>
partitionBounds(int n, int parts)
{
    SCNN_ASSERT(n >= 0 && parts > 0, "bad partition (%d into %d)", n,
                parts);
    std::vector<int> bounds(static_cast<size_t>(parts) + 1);
    for (int i = 0; i <= parts; ++i) {
        bounds[static_cast<size_t>(i)] =
            static_cast<int>((static_cast<long>(n) * i) / parts);
    }
    return bounds;
}

SpatialTiling::SpatialTiling(const ConvLayerParams &layer, int peRows,
                             int peCols)
    : layer_(layer), peRows_(peRows), peCols_(peCols)
{
    SCNN_ASSERT(peRows > 0 && peCols > 0, "empty PE grid");
    xBounds_ = partitionBounds(layer.inWidth, peRows);
    yBounds_ = partitionBounds(layer.inHeight, peCols);
    oxBounds_ = partitionBounds(layer.outWidth(), peRows);
    oyBounds_ = partitionBounds(layer.outHeight(), peCols);
}

TileRect
SpatialTiling::inputTile(int pr, int pc) const
{
    return {xBounds_[pr], xBounds_[pr + 1], yBounds_[pc],
            yBounds_[pc + 1]};
}

TileRect
SpatialTiling::outputTile(int pr, int pc) const
{
    return {oxBounds_[pr], oxBounds_[pr + 1], oyBounds_[pc],
            oyBounds_[pc + 1]};
}

TileRect
SpatialTiling::accumRect(int pr, int pc) const
{
    const TileRect in = inputTile(pr, pc);
    if (in.empty())
        return {0, 0, 0, 0};

    // An input at x contributes to outputs ox = (x + padX - r)/strideX
    // for r in [0, R).  The smallest reachable ox comes from the
    // largest r at the smallest x; the largest from r = 0 at the
    // largest x.  Clamp to the output plane.
    auto floorDiv = [](int a, int b) {
        return a >= 0 ? a / b : -((-a + b - 1) / b);
    };
    auto ceilDiv = [](int a, int b) {
        return a >= 0 ? (a + b - 1) / b : -((-a) / b);
    };

    const int oxLo = ceilDiv(in.x0 + layer_.padX - (layer_.filterW - 1),
                             layer_.strideX);
    const int oxHi =
        floorDiv(in.x1 - 1 + layer_.padX, layer_.strideX) + 1;
    const int oyLo = ceilDiv(in.y0 + layer_.padY - (layer_.filterH - 1),
                             layer_.strideY);
    const int oyHi =
        floorDiv(in.y1 - 1 + layer_.padY, layer_.strideY) + 1;

    TileRect acc;
    acc.x0 = std::clamp(oxLo, 0, layer_.outWidth());
    acc.x1 = std::clamp(oxHi, 0, layer_.outWidth());
    acc.y0 = std::clamp(oyLo, 0, layer_.outHeight());
    acc.y1 = std::clamp(oyHi, 0, layer_.outHeight());
    if (acc.empty())
        return {0, 0, 0, 0};
    return acc;
}

TileRect
SpatialTiling::inputHaloTile(int pr, int pc) const
{
    const TileRect out = outputTile(pr, pc);
    if (out.empty())
        return {0, 0, 0, 0};
    TileRect in;
    in.x0 = std::max(0, out.x0 * layer_.strideX - layer_.padX);
    in.x1 = std::min(layer_.inWidth,
                     (out.x1 - 1) * layer_.strideX - layer_.padX +
                         layer_.filterW);
    in.y0 = std::max(0, out.y0 * layer_.strideY - layer_.padY);
    in.y1 = std::min(layer_.inHeight,
                     (out.y1 - 1) * layer_.strideY - layer_.padY +
                         layer_.filterH);
    if (in.empty())
        return {0, 0, 0, 0};
    return in;
}

long
SpatialTiling::maxAccumArea() const
{
    long best = 0;
    for (int pr = 0; pr < peRows_; ++pr)
        for (int pc = 0; pc < peCols_; ++pc)
            best = std::max(best, accumRect(pr, pc).area());
    return best;
}

long
SpatialTiling::maxInputTileArea() const
{
    long best = 0;
    for (int pr = 0; pr < peRows_; ++pr)
        for (int pc = 0; pc < peCols_; ++pc)
            best = std::max(best, inputTile(pr, pc).area());
    return best;
}

int
chooseKc(const ConvLayerParams &layer, const AcceleratorConfig &cfg,
         long maxAccumArea)
{
    const long capacity = static_cast<long>(cfg.pe.accumBanks) *
                          cfg.pe.accumEntriesPerBank;
    SCNN_ASSERT(capacity > 0, "accumulator has no entries");

    if (maxAccumArea <= 0)
        return 1;

    const int cap = cfg.pe.kcCap > 0 ? cfg.pe.kcCap
                                     : cfg.pe.accumEntriesPerBank;
    int kc = 1;
    while (kc * 2 <= layer.outChannels &&
           static_cast<long>(kc) * 2 * maxAccumArea <= capacity &&
           kc * 2 <= cap) {
        kc *= 2;
    }
    if (static_cast<long>(kc) * maxAccumArea > capacity) {
        warn("layer %s: accumulator footprint %ld exceeds capacity %ld "
             "even at Kc=1; modelling with Kc=1",
             layer.name.c_str(), maxAccumArea, capacity);
    }
    return kc;
}

DramTilingDecision
decideDramTiling(const AcceleratorConfig &cfg,
                 uint64_t inputBitsPerPeMax, uint64_t outputBitsPerPeMax)
{
    DramTilingDecision d;
    d.inputBitsPerPeMax = inputBitsPerPeMax;
    d.outputBitsPerPeMax = outputBitsPerPeMax;

    const uint64_t iaramBits =
        static_cast<uint64_t>(cfg.pe.iaramBytes) * 8;
    const uint64_t oaramBits =
        static_cast<uint64_t>(cfg.pe.oaramBytes) * 8;

    uint64_t tiles = 1;
    if (inputBitsPerPeMax > iaramBits) {
        tiles = std::max(tiles,
                         (inputBitsPerPeMax + iaramBits - 1) / iaramBits);
    }
    if (outputBitsPerPeMax > oaramBits) {
        tiles = std::max(tiles,
                         (outputBitsPerPeMax + oaramBits - 1) / oaramBits);
    }
    d.tiled = tiles > 1;
    d.numTiles = static_cast<int>(tiles);
    return d;
}

} // namespace scnn
