#include "scnn/oracle.hh"

#include <algorithm>

namespace scnn {

uint64_t
oracleCycles(const LayerResult &scnnResult, const AcceleratorConfig &cfg)
{
    const uint64_t mults =
        static_cast<uint64_t>(std::max(1, cfg.multipliers()));
    return std::max<uint64_t>(
        1, (scnnResult.landedProducts + mults - 1) / mults);
}

double
oracleCyclesExpected(const ConvLayerParams &layer,
                     const AcceleratorConfig &cfg)
{
    const double mults =
        static_cast<double>(std::max(1, cfg.multipliers()));
    return std::max(1.0, layer.idealMacs() / mults);
}

} // namespace scnn
