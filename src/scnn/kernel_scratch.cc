#include "scnn/kernel_scratch.hh"

namespace scnn {

KernelScratch &
KernelScratch::local()
{
    static thread_local KernelScratch scratch;
    return scratch;
}

} // namespace scnn
