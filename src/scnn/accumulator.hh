/**
 * @file
 * The SCNN PE's banked accumulation unit (Fig. 6): an F*I -> A
 * arbitrated crossbar scattering products into A accumulator banks,
 * each fronted by a small queue.
 *
 * Each bank retires one read-add-write per cycle.  The multiplier
 * array issues one Cartesian-product operation per cycle and stalls
 * only when a bank's queue would overflow (backpressure), so short
 * bursts of same-bank products are absorbed and only sustained
 * overload serializes.  The paper sizes A = 2*F*I so the average load
 * is half a product per bank per cycle, which this model shows to be
 * amply sufficient ("A = 2*F*I sufficiently reduces accumulator bank
 * contention").
 *
 * The bank hash interleaves consecutive output positions and offsets
 * output channels by 2*I, so the F x I products of a fully dense
 * operation (I consecutive positions x F consecutive channels) map to
 * F x I distinct banks.
 */

#ifndef SCNN_SCNN_ACCUMULATOR_HH
#define SCNN_SCNN_ACCUMULATOR_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/stats.hh"

namespace scnn {

class AccumulatorBanks
{
  public:
    /**
     * @param numBanks      A, the number of accumulator banks.
     * @param channelStride bank offset between adjacent output
     *        channels of a group (the PE uses 2*I).
     * @param queueDepth    per-bank input queue entries.
     */
    explicit AccumulatorBanks(int numBanks, int channelStride = 8,
                              int queueDepth = 4)
        : numBanks_(numBanks), channelStride_(channelStride),
          queueDepth_(queueDepth),
          bankMask_((numBanks & (numBanks - 1)) == 0 ? numBanks - 1
                                                     : -1),
          nextFree_(static_cast<size_t>(numBanks), 0)
    {
        SCNN_ASSERT(numBanks > 0, "accumulator needs at least one bank");
        SCNN_ASSERT(channelStride > 0, "bad channel stride");
        SCNN_ASSERT(queueDepth > 0, "bad queue depth");
    }

    int numBanks() const { return numBanks_; }
    uint64_t now() const { return now_; }

    /** Reset queues and the local clock (new group / new PE pass). */
    void
    reset()
    {
        std::fill(nextFree_.begin(), nextFree_.end(), 0);
        now_ = 0;
    }

    /**
     * Bank index for a product landing at accumulator-local address
     * (kLocal, axLocal, ayLocal) within a group footprint whose
     * y-extent is accH positions.
     */
    int
    bankOf(int kLocal, int axLocal, int ayLocal, int accH) const
    {
        return bankOfAddr(static_cast<long>(axLocal) * accH + ayLocal +
                          static_cast<long>(kLocal) * channelStride_);
    }

    /**
     * Bank of a precomputed accumulator-local address (position
     * offset plus kLocal * channelStride()); lets the PE kernel share
     * the position sub-expression with its private-buffer index.
     */
    int
    bankOfAddr(long addr) const
    {
        // Power-of-two bank counts (the common case: A = 2*F*I = 32)
        // hash with a mask instead of an integer division; addresses
        // are non-negative, so the results are identical.
        return static_cast<int>(bankMask_ >= 0 ? (addr & bankMask_)
                                               : (addr % numBanks_));
    }

    long channelStride() const { return channelStride_; }

    /** numBanks - 1 when a power of two, else -1 (hash uses %). */
    long bankMask() const { return bankMask_; }

    /** Begin a multiplier-array operation at the current cycle. */
    void
    beginOp()
    {
        opMax_ = 0;
    }

    /** Route one product of the current operation to a bank. */
    void
    route(int bank)
    {
        uint64_t &nf = nextFree_[static_cast<size_t>(bank)];
        nf = (nf > now_ ? nf : now_) + 1;
        const uint64_t backlog = nf - now_;
        if (backlog > opMax_)
            opMax_ = backlog;
    }

    /**
     * Register-resident operation state for the PE kernel hot path:
     * the current cycle and the deepest backlog live in a caller
     * local instead of being re-loaded/stored through the object for
     * every product.  Semantically identical to
     * beginOp()/route()/finishOp().
     */
    struct OpState
    {
        uint64_t now;
        uint64_t opMax;
    };

    OpState opBegin() const { return {now_, 0}; }

    void
    opRoute(OpState &op, int bank)
    {
        uint64_t &nf = nextFree_[static_cast<size_t>(bank)];
        nf = (nf > op.now ? nf : op.now) + 1;
        const uint64_t backlog = nf - op.now;
        if (backlog > op.opMax)
            op.opMax = backlog;
    }

    /** @return cycles consumed by the operation (>= 1). */
    uint64_t
    opFinish(const OpState &op)
    {
        opMax_ = op.opMax;
        return finishOp();
    }

    /**
     * Finish the operation: the array issues the next operation one
     * cycle later unless a bank queue is over capacity, in which case
     * it stalls until the queue drains.
     *
     * @return cycles consumed by this operation (>= 1).
     */
    uint64_t
    finishOp()
    {
        uint64_t next = now_ + 1;
        if (opMax_ > static_cast<uint64_t>(queueDepth_)) {
            // Deepest backlog exceeds the queue: stall until it fits.
            const uint64_t drainAt =
                now_ + opMax_ - static_cast<uint64_t>(queueDepth_);
            if (drainAt > next)
                next = drainAt;
        }
        const uint64_t cost = next - now_;
        now_ = next;
        // Stall-free ops (the overwhelming majority) batch into one
        // weighted histogram sample flushed on read: counts, totals
        // and the (integer-valued) weighted sum come out identical,
        // without a floating-point bucket computation per operation.
        if (cost == 1)
            ++unitCostOps_;
        else
            costHist_.sample(static_cast<double>(cost));
        return cost;
    }

    /** Histogram of per-op cost (1 = no stall). */
    const Histogram &
    costHistogram() const
    {
        if (unitCostOps_ > 0) {
            costHist_.sample(1.0, unitCostOps_);
            unitCostOps_ = 0;
        }
        return costHist_;
    }

  private:
    int numBanks_;
    long channelStride_;
    int queueDepth_;
    long bankMask_; ///< numBanks - 1 when a power of two, else -1
    std::vector<uint64_t> nextFree_;
    uint64_t now_ = 0;
    uint64_t opMax_ = 0;
    mutable Histogram costHist_{1.0, 17.0, 16};
    mutable uint64_t unitCostOps_ = 0;
};

} // namespace scnn

#endif // SCNN_SCNN_ACCUMULATOR_HH
