/**
 * @file
 * Spatial tiling of activation planes across the PE array, selection
 * of the output-channel group size Kc, and the DRAM tiling decision
 * for layers whose activations exceed on-chip RAM (Sections III-A,
 * IV, VI-D).
 */

#ifndef SCNN_SCNN_TILING_HH
#define SCNN_SCNN_TILING_HH

#include <cstdint>
#include <vector>

#include "arch/config.hh"
#include "nn/layer.hh"

namespace scnn {

/** Half-open rectangle [x0,x1) x [y0,y1). */
struct TileRect
{
    int x0 = 0;
    int x1 = 0;
    int y0 = 0;
    int y1 = 0;

    int width() const { return x1 - x0; }
    int height() const { return y1 - y0; }
    long area() const { return static_cast<long>(width()) * height(); }
    bool empty() const { return width() <= 0 || height() <= 0; }
};

/**
 * Partition [0, n) into `parts` nearly equal ranges.
 *
 * @return parts+1 boundaries; range i is [b[i], b[i+1]).  When
 *         n < parts the trailing ranges are empty.
 */
std::vector<int> partitionBounds(int n, int parts);

/**
 * The PlanarTiled decomposition for one layer: each PE (pr, pc) owns a
 * disjoint input tile (halo-free: inputs are strictly partitioned,
 * outputs use halos per Section III-A) and a disjoint output tile of
 * the same grid structure.
 *
 * The accumulator rectangle of a PE is the full output footprint its
 * input tile can touch: for stride-1 convolution a (Wt+R-1) x
 * (Ht+S-1) region (clamped to the output plane).  The halo is the
 * accumulator region outside the PE's own output tile.
 */
class SpatialTiling
{
  public:
    SpatialTiling(const ConvLayerParams &layer, int peRows, int peCols);

    int peRows() const { return peRows_; }
    int peCols() const { return peCols_; }

    TileRect inputTile(int pr, int pc) const;
    TileRect outputTile(int pr, int pc) const;

    /** Output-plane footprint reachable from the PE's input tile. */
    TileRect accumRect(int pr, int pc) const;

    /**
     * Input-plane footprint needed to compute the PE's output tile
     * (the input-halo alternative of Section III-A: inputs replicated
     * across neighbouring PEs, outputs strictly private).
     */
    TileRect inputHaloTile(int pr, int pc) const;

    /** Largest accumulator footprint across all PEs (for Kc). */
    long maxAccumArea() const;

    /** Largest input tile area across PEs. */
    long maxInputTileArea() const;

  private:
    const ConvLayerParams &layer_;
    int peRows_;
    int peCols_;
    std::vector<int> xBounds_;
    std::vector<int> yBounds_;
    std::vector<int> oxBounds_;
    std::vector<int> oyBounds_;
};

/**
 * Choose the output-channel group size Kc (Section III-A): the
 * largest power of two such that a group's accumulator footprint
 * Kc * maxAccumArea fits in the PE's A x E accumulator entries, capped
 * at the per-bank entry count (so a bank can hold a full channel
 * group for each output position hashed to it) and clamped to [1, K].
 *
 * The paper does not publish its exact sizing rule; this heuristic
 * reproduces its qualitative behaviour (small Kc for large tiles,
 * e.g. Kc = 1 for VGG conv1; Kc saturating for the tiny late-network
 * tiles).  See EXPERIMENTS.md for the divergence note.
 */
int chooseKc(const ConvLayerParams &layer, const AcceleratorConfig &cfg,
             long maxAccumArea);

/** Result of the on-chip capacity check for a layer. */
struct DramTilingDecision
{
    bool tiled = false;      ///< activations must spill to DRAM
    int numTiles = 1;        ///< number of temporal passes
    uint64_t inputBitsPerPeMax = 0;  ///< worst-PE compressed input bits
    uint64_t outputBitsPerPeMax = 0; ///< worst-PE compressed output bits
};

/**
 * Decide whether a layer's compressed activations fit in the per-PE
 * IARAM/OARAM (SCNN) and, if not, how many temporal tiles are needed
 * (Section VI-D).
 *
 * @param inputBitsPerPeMax  worst-case per-PE compressed input bits.
 * @param outputBitsPerPeMax worst-case per-PE compressed output bits.
 */
DramTilingDecision decideDramTiling(const AcceleratorConfig &cfg,
                                    uint64_t inputBitsPerPeMax,
                                    uint64_t outputBitsPerPeMax);

} // namespace scnn

#endif // SCNN_SCNN_TILING_HH
