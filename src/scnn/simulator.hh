/**
 * @file
 * Cycle-level simulator of the complete SCNN accelerator (Section IV,
 * Fig. 5): an array of PEs executing PT-IS-CP-sparse, a layer
 * sequencer walking output-channel groups with a global inter-PE
 * barrier at group boundaries, double-buffered accumulator drain
 * through the PPU (halo exchange, ReLU, recompression into OARAM),
 * compressed weight broadcast from DRAM, and the DRAM tiling path for
 * layers whose activations exceed on-chip RAM.
 *
 * The simulator is always functional: output activations are computed
 * and can be checked against the reference convolution, which
 * validates the coordinate computation, halo handling and dataflow
 * end-to-end.
 */

#ifndef SCNN_SCNN_SIMULATOR_HH
#define SCNN_SCNN_SIMULATOR_HH

#include "arch/config.hh"
#include "arch/energy_model.hh"
#include "nn/manifest.hh"
#include "nn/network.hh"
#include "nn/workload.hh"
#include "scnn/result.hh"

namespace scnn {

class ScnnSimulator
{
  public:
    explicit ScnnSimulator(AcceleratorConfig cfg = scnnConfig(),
                           EnergyModel energy = EnergyModel());

    /** Simulate one layer on a concrete workload. */
    LayerResult runLayer(const LayerWorkload &workload,
                         const RunOptions &opts = RunOptions());

    /**
     * Simulate every layer of a network on synthetic workloads drawn
     * at the per-layer profile densities.
     *
     * @param net      the network.
     * @param seed     master seed for workload synthesis.
     * @param evalOnly restrict to the paper's evaluation scope.
     * @param threads  worker threads; resolved once through
     *                 common/parallel and pinned into every layer's
     *                 RunOptions (0 = SCNN_THREADS / hardware
     *                 default).
     */
    NetworkResult runNetwork(const Network &net, uint64_t seed,
                             bool evalOnly = true, int threads = 0);

    /**
     * Chained whole-network execution: each layer consumes the
     * previous layer's actual simulated output (with the declared
     * max-pooling between stages), so activation sparsity emerges
     * from the computation instead of being drawn from the profile.
     * Requires a sequential topology (AlexNet/VGG-style; anything
     * with branches, joins or edge pools is rejected with fatal() --
     * the sim/ service layer gates on Network::isSequential() and
     * routes DAGs to the generic driver/dag_runner executor instead).
     * Per-layer results carry a "chained_input_density" stat with the
     * emergent density.
     *
     * @param keepOutputs retain each layer's functional output tensor
     *        in its LayerResult.  When false the output is moved into
     *        the next layer's input (or dropped after pooling)
     *        instead of deep-copied -- callers that only read
     *        stats/densities (the CLI, throughput benches) skip one
     *        full-tensor copy per layer.
     * @param profile record per-stage wall times (RunOptions::profile)
     *        in every layer's stats.
     * @param manifest optional weight manifest: layers with an entry
     *        run on the real checkpoint weights instead of the seeded
     *        synthetic draw (shape agreement pre-validated by
     *        applyManifest; mismatches here fatal()).
     */
    NetworkResult runNetworkChained(const Network &net, uint64_t seed,
                                    int threads = 0,
                                    bool keepOutputs = true,
                                    bool profile = false,
                                    const WeightManifest *manifest =
                                        nullptr);

    const AcceleratorConfig &config() const { return cfg_; }
    const EnergyModel &energyModel() const { return energy_; }

  private:
    AcceleratorConfig cfg_;
    EnergyModel energy_;
};

} // namespace scnn

#endif // SCNN_SCNN_SIMULATOR_HH
