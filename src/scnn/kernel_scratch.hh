/**
 * @file
 * Reusable per-thread scratch for the SCNN layer hot path.
 *
 * ScnnSimulator::runLayer keeps all mutable state local to the call
 * so one simulator instance can serve concurrent per-layer tasks
 * (the sim/session layer fans layers over the thread pool).  The
 * buffers it needs -- compressed input tiles, per-input-channel
 * weight blocks rebuilt for every output-channel group, per-PE
 * functional accumulators, the per-group output merge plane, and the
 * per-PE bookkeeping arrays -- used to be reallocated per call (and
 * the weight blocks per *group*).  KernelScratch owns them instead:
 * one instance per OS thread (thread_local), fetched at the top of
 * runLayer and reused across groups, layers and networks handled by
 * that thread.
 *
 * Safety: a thread runs at most one runLayer frame at a time (nested
 * parallel sections execute inline on pool workers and never enter
 * runLayer recursively), so the frame owns its thread's scratch for
 * the duration of the call.  Workers spawned by the frame's inner
 * parallelFor sections write only into per-slot elements of these
 * vectors, never into their own thread's scratch.
 */

#ifndef SCNN_SCNN_KERNEL_SCRATCH_HH
#define SCNN_SCNN_KERNEL_SCRATCH_HH

#include <cstdint>
#include <vector>

#include "common/simd.hh"
#include "scnn/pe.hh"
#include "tensor/sparse_block.hh"

namespace scnn {

struct KernelScratch
{
    /** Per-PE compressed input tiles (rebuilt per layer). */
    std::vector<CompressedActTile> tiles;

    /** Per-input-channel weight blocks (rebuilt per group). */
    std::vector<CompressedWeightBlock> wtBlocks;

    /** Per-PE private functional accumulators (reset per group). */
    std::vector<GroupAccum> groupAccums;

    /** Per-PE pass stats for the current group. */
    std::vector<PeGroupStats> groupStats;

    /**
     * Dense (kc, outW, outH) double-precision merge plane for one
     * output-channel group (output-halo mode, where neighbouring
     * accumulator rects overlap and PE drains must merge).  Aligned
     * so the vectorized drain rows start on cache-line boundaries.
     */
    simd::AlignedVec<double> groupPlane;

    /** Per-PE scratch for the output RLE accounting fan-out. */
    std::vector<uint64_t> perPeStored;

    // Per-PE sequencer bookkeeping.
    std::vector<uint64_t> prevDrain;
    std::vector<uint64_t> peGroupTime;
    std::vector<uint64_t> busyCycles;

    /**
     * Per-weight address offsets of the current (channel, phase)
     * substream, precomputed once per pass by the PE kernel (the
     * weight span is re-streamed against every stationary activation
     * vector, so the per-entry multiply moves out of the product
     * loop):
     *   wBank[j] = kRel * channelStride - (rq * accH + sq)
     *   wAcc[j]  = kRel * accPlane      - (rq * accH + sq)
     * so bank address and private-buffer index are single additions
     * to the activation's position base.  The scalar functional
     * kernel packs the pair into one 64-bit word (wAcc high, wBank
     * low) so the product loop issues a single load per weight; the
     * SIMD kernels keep wBank/wAcc as separate int32 lane arrays,
     * padded to a full vector width past the substream end (pad lanes
     * are masked or replaced by sentinels, never routed or stored).
     */
    simd::AlignedVec<int32_t> wBank;
    simd::AlignedVec<uint64_t> wPacked;
    simd::AlignedVec<int32_t> wAcc;

    /**
     * Per-activation state of the current stationary vector (up to I
     * entries): position base, value, raw quotient coordinates, and
     * whether every tap of the substream lands in the window (the
     * interior fast path skips the per-product landing check).
     * aPosI32 is the SIMD kernels' int32 copy of aPos (interior
     * products always have non-negative in-range addresses), padded
     * to a full vector width.
     */
    std::vector<long> aPos;
    simd::AlignedVec<double> aVal;
    simd::AlignedVec<int32_t> aPosI32;
    std::vector<int> aXq;
    std::vector<int> aYq;
    std::vector<uint8_t> aInterior;

    /**
     * The SIMD kernels' bank next-free clocks, held as 32-bit values
     * relative to a rebased epoch of the pass clock (residual
     * backlogs are tiny, so 2^30 cycles of headroom costs one
     * rebase per billion cycles).  Sized numBanks plus one full lane
     * width: masked-off op lanes are redirected to the per-lane pad
     * slots, whose backlog provably never alters an op cost.
     */
    simd::AlignedVec<uint32_t> bankClock32;

    /** The calling thread's scratch (created on first use). */
    static KernelScratch &local();
};

} // namespace scnn

#endif // SCNN_SCNN_KERNEL_SCRATCH_HH
