#include "scnn/pe.hh"

#include <algorithm>

namespace scnn {

ProcessingElement::ProcessingElement(const AcceleratorConfig &cfg,
                                     const ConvLayerParams &layer,
                                     TileRect inTile, TileRect outTile,
                                     TileRect accRect)
    : cfg_(cfg), layer_(layer), inTile_(inTile), outTile_(outTile),
      accRect_(accRect), banks_(cfg.pe.accumBanks, 2 * cfg.pe.mulI,
                                cfg.pe.xbarQueueDepth)
{
    const int ox0 = std::max(outTile_.x0, accRect_.x0);
    const int ox1 = std::min(outTile_.x1, accRect_.x1);
    const int oy0 = std::max(outTile_.y0, accRect_.y0);
    const int oy1 = std::min(outTile_.y1, accRect_.y1);
    overlapArea_ = (ox1 > ox0 && oy1 > oy0)
        ? static_cast<long>(ox1 - ox0) * (oy1 - oy0)
        : 0;
}

PeGroupStats
ProcessingElement::runGroup(const CompressedActTile &acts,
                            const std::vector<CompressedWeightBlock>
                                &wtBlocks,
                            int k0, GroupAccum *accum)
{
    PeGroupStats st;
    if (inTile_.empty() || accRect_.empty())
        return st;

    banks_.reset();

    const int F = cfg_.pe.mulF;
    const int I = cfg_.pe.mulI;
    const int padX = layer_.padX;
    const int padY = layer_.padY;
    const int strideX = layer_.strideX;
    const int strideY = layer_.strideY;
    const int accH = accRect_.height();
    const int phases = layer_.geometry().phases();

    // Landing window: with output halos the PE accumulates every
    // in-plane product of its private inputs (the accumulator rect
    // covers them by construction); with input halos only products
    // for its private output tile land -- edge products of the
    // replicated inputs are computed by a neighbour as well and are
    // dropped here.
    const int loX = cfg_.pe.inputHalos ? accRect_.x0 : 0;
    const int hiX = cfg_.pe.inputHalos ? accRect_.x1
                                       : layer_.outWidth();
    const int loY = cfg_.pe.inputHalos ? accRect_.y0 : 0;
    const int hiY = cfg_.pe.inputHalos ? accRect_.y1
                                       : layer_.outHeight();

    for (int c = 0; c < acts.numChannels(); ++c) {
        const CompressedWeightBlock &block = wtBlocks[c];
        for (int p = 0; p < phases; ++p) {
            const std::vector<ActEntry> &A = acts.entries(c, p);
            const std::vector<WtEntry> &W = block.entries(p);
            if (A.empty() || W.empty())
                continue;

            st.actEntries += A.size();

            const size_t nA = A.size();
            const size_t nW = W.size();
            for (size_t ai = 0; ai < nA; ai += I) {
                const size_t aEnd = std::min(nA, ai + I);
                // Weights are re-streamed from the FIFO against each
                // stationary activation vector (Fig. 4, loop D).
                st.wtEntries += nW;
                for (size_t wi = 0; wi < nW; wi += F) {
                    const size_t wEnd = std::min(nW, wi + F);
                    banks_.beginOp();
                    st.products += (aEnd - ai) * (wEnd - wi);
                    for (size_t a = ai; a < aEnd; ++a) {
                        const int axp = A[a].x + padX;
                        const int ayp = A[a].y + padY;
                        for (size_t w = wi; w < wEnd; ++w) {
                            // Phases match, so the divisions are
                            // exact.
                            const int ox = (axp - W[w].r) / strideX;
                            const int oy = (ayp - W[w].s) / strideY;
                            if (ox < loX || ox >= hiX || oy < loY ||
                                oy >= hiY) {
                                continue; // edge product: slot burned
                            }
                            ++st.landed;
                            const int bank = banks_.bankOf(
                                W[w].k - k0, ox - accRect_.x0,
                                oy - accRect_.y0, accH);
                            banks_.route(bank);
                            if (accum) {
                                // Landed coordinates always fall in
                                // accRect (it covers the reachable
                                // output footprint), so the private
                                // buffer needs no bounds checks.
                                accum->at(W[w].k - k0, ox, oy) +=
                                    static_cast<double>(A[a].value) *
                                    static_cast<double>(W[w].value);
                            }
                        }
                    }
                    const uint64_t opc = banks_.finishOp();
                    st.cycles += opc;
                    st.conflictStalls += opc - 1;
                    ++st.mulOps;
                }
            }
        }
    }
    return st;
}

} // namespace scnn
