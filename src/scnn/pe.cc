#include "scnn/pe.hh"

#include <algorithm>

#include "common/simd.hh"
#include "scnn/kernel_scratch.hh"

namespace scnn {

#if defined(SCNN_SIMD_AVX512)

/*
 * Vectorized interior-op helpers (AVX-512 lane layer).
 *
 * Lane layout of an F = I = 4 operation: lane l holds the product of
 * stationary activation row l >> 2 and weight column l & 3, i.e. the
 * exact (i outer, w inner) order of the scalar kernel.
 *
 * Bank routing uses a conflict-count scheme that is *algebraically
 * identical* to routing the op's products one at a time through
 * AccumulatorBanks::opRoute: within one operation the clock `now` is
 * fixed, so k same-bank products leave that bank at
 * max(nextFree, now) + k and the deepest per-product backlog equals
 * the deepest final per-bank backlog.  vpconflictd gives each lane
 * the count of earlier same-bank lanes, every lane computes its
 * cumulative backlog from the *pre-op* clocks (the gather precedes
 * the scatter), and the ascending-lane scatter order guarantees the
 * last (fully counted) lane wins each bank's clock.
 *
 * The SIMD kernels keep the bank clocks as 32-bit values relative to
 * a rebased epoch of the pass clock (KernelScratch::bankClock32), so
 * one full-width gather + scatter serves all 16 lanes; residual
 * backlogs never exceed the queue depth, and the epoch rebases long
 * before 2^32 relative cycles.  Masked-off tail lanes are redirected
 * to per-lane sentinel slots in the pad region past the live banks,
 * so they can never alias a live bank, and they are excluded from
 * the backlog maximum, so the op cost comes from live lanes alone.
 *
 * Functional accumulation scatters products into the private
 * GroupAccum.  Every product of a clean operation owns a distinct
 * precomputed accumulator offset, so gather-add-scatter performs the
 * same single add per address as the scalar loop and the result is
 * bit-identical regardless of lane order.  When vpconflictd detects
 * two lanes sharing an address (e.g. two (activation, tap) pairs of
 * one op reaching the same output element), the op falls back to the
 * scalar accumulation order -- the documented
 * scatter-with-conflict-fallback contract.
 */
namespace {

using simd::LaneMask;
using simd::Vec;

alignas(64) constexpr int32_t kRow4Idx[16] = {0, 0, 0, 0, 1, 1, 1, 1,
                                              2, 2, 2, 2, 3, 3, 3, 3};
alignas(64) constexpr int32_t kLaneIota[16] = {0, 1, 2,  3,  4,  5,
                                               6, 7, 8,  9,  10, 11,
                                               12, 13, 14, 15};

/** Valid-lane mask of a (rows x cols) op in the 4x4 lane layout. */
inline LaneMask
mask4x4(size_t rows, int cols)
{
    return (static_cast<LaneMask>((1u << cols) - 1) * 0x1111u) &
           simd::maskN(static_cast<int>(4 * rows));
}

/**
 * Route one operation chunk of up to 16 products; @return the chunk's
 * deepest cumulative backlog (composes with further chunks of the
 * same op by max).  Lanes outside m route to their pad sentinel slot.
 */
inline uint32_t
routeOp16(uint32_t *clk, uint32_t now32, Vec<int32_t> ids, LaneMask m,
          Vec<int32_t> sentinels)
{
    ids = simd::select(sentinels, ids, m);
    const Vec<int32_t> cnt = simd::popcount(simd::conflict(ids)) +
                             Vec<int32_t>::broadcast(1);
    const Vec<int32_t> nowV =
        Vec<int32_t>::broadcast(static_cast<int32_t>(now32));
    const Vec<int32_t> nf = simd::gather32(clk, ids);
    const Vec<int32_t> bk = (simd::maxU32(nf, nowV) - nowV) + cnt;
    simd::scatter32(clk, ids, nowV + bk);
    // Only the live lanes feed the op maximum: sentinel slots are
    // re-routed by every chunk of an op, so their backlog is not
    // bounded by the live residual bound within a multi-chunk op.
    return simd::reduceMaxU32(bk, m);
}

/** Conflict-free 16-lane gather-add-scatter accumulation. */
inline void
accumOp16(double *acc, Vec<int32_t> ids, LaneMask m, Vec<double> avLo,
          Vec<double> avHi, Vec<double> wv)
{
    // Explicit mul then add: the scalar twin compiles to the same two
    // IEEE roundings (-ffp-contract=off), keeping results identical.
    const Vec<double> lo = simd::gatherF64(acc, ids, 0, m) + avLo * wv;
    simd::scatterF64(acc, ids, 0, lo, m);
    const Vec<double> hi = simd::gatherF64(acc, ids, 1, m) + avHi * wv;
    simd::scatterF64(acc, ids, 1, hi, m);
}

/** Conflict-free 8-lane gather-add-scatter accumulation. */
inline void
accumOp8(double *acc, Vec<int32_t> ids, LaneMask m, Vec<double> av,
         Vec<double> wv)
{
    const Vec<double> s = simd::gatherF64(acc, ids, 0, m) + av * wv;
    simd::scatterF64(acc, ids, 0, s, m);
}

} // anonymous namespace

#endif // SCNN_SIMD_AVX512

ProcessingElement::ProcessingElement(const AcceleratorConfig &cfg,
                                     const ConvLayerParams &layer,
                                     TileRect inTile, TileRect outTile,
                                     TileRect accRect)
    : cfg_(cfg), layer_(layer), inTile_(inTile), outTile_(outTile),
      accRect_(accRect), banks_(cfg.pe.accumBanks, 2 * cfg.pe.mulI,
                                cfg.pe.xbarQueueDepth)
{
    const int ox0 = std::max(outTile_.x0, accRect_.x0);
    const int ox1 = std::min(outTile_.x1, accRect_.x1);
    const int oy0 = std::max(outTile_.y0, accRect_.y0);
    const int oy1 = std::min(outTile_.y1, accRect_.y1);
    overlapArea_ = (ox1 > ox0 && oy1 > oy0)
        ? static_cast<long>(ox1 - ox0) * (oy1 - oy0)
        : 0;

    // Select the kernel pair once per layer: stride-1 layers take the
    // single-phase path, the paper's F = I = 4 multiplier geometry
    // gets the unrolled-op instantiation, and on builds whose lane
    // layer supports the vector scheme the SIMD twins are bound
    // unless SCNN_SIMD=scalar forces the scalar ones.  The vector
    // scheme needs a power-of-two bank hash and int32-addressable
    // accumulator footprints (both always true for the paper's
    // configurations).
    const bool stride1 = layer_.strideX == 1 && layer_.strideY == 1;
    const bool fi4 = cfg_.pe.mulF == 4 && cfg_.pe.mulI == 4;
    if constexpr (simd::kKernelVectorized) {
        // The vector kernels hold accumulator offsets in int32 lanes:
        // the largest address is bounded by (kc + R + 2) * accArea
        // (kRel * accPlane plus an activation base that can overhang
        // the plane by maxRq rows), with kc capped by the Kc policy.
        const long maxKc = std::min<long>(
            layer_.outChannels,
            cfg_.pe.kcCap > 0 ? cfg_.pe.kcCap
                              : cfg_.pe.accumEntriesPerBank);
        const long maxAddr =
            (maxKc + layer_.filterW + 2) * accRect_.area();
        const bool vec = simd::mode() == simd::Mode::Native &&
                         banks_.bankMask() >= 0 &&
                         maxAddr < (INT32_MAX / 2);
        if (vec) {
            selectKernels<true>(stride1, fi4);
            return;
        }
    }
    selectKernels<false>(stride1, fi4);
}

template <bool Simd>
void
ProcessingElement::selectKernels(bool stride1, bool fi4)
{
    if (fi4) {
        if (stride1) {
            kernelFunctional_ =
                &ProcessingElement::runGroupImpl<true, true, 4, Simd>;
            kernelStatsOnly_ =
                &ProcessingElement::runGroupImpl<false, true, 4, Simd>;
        } else {
            kernelFunctional_ =
                &ProcessingElement::runGroupImpl<true, false, 4, Simd>;
            kernelStatsOnly_ =
                &ProcessingElement::runGroupImpl<false, false, 4,
                                                 Simd>;
        }
    } else if (stride1) {
        kernelFunctional_ =
            &ProcessingElement::runGroupImpl<true, true, 0, Simd>;
        kernelStatsOnly_ =
            &ProcessingElement::runGroupImpl<false, true, 0, Simd>;
    } else {
        kernelFunctional_ =
            &ProcessingElement::runGroupImpl<true, false, 0, Simd>;
        kernelStatsOnly_ =
            &ProcessingElement::runGroupImpl<false, false, 0, Simd>;
    }
}

/**
 * The F x I Cartesian-product kernel (Fig. 4).  Template parameters
 * compile the two per-product conditionals of the generic loop out of
 * the hot path:
 *  - Functional: accumulate value products into the private GroupAccum
 *    (false: timing/work counters only, no accumulator memory touched);
 *  - Stride1: output coordinates are plain subtractions of pre-padded
 *    activation coordinates and filter taps (general strides divide by
 *    the stride after phase decomposition; the divisions are exact);
 *  - Simd: interior (no landing check) operations run on the SIMD
 *    lane layer -- vector bank ids, conflict-count routing and
 *    gather/scatter accumulation -- with bit-identical results; edge
 *    operations always take the scalar path.
 */
template <bool Functional, bool Stride1, int FixedFI, bool Simd>
PeGroupStats
ProcessingElement::runGroupImpl(const CompressedActTile &acts,
                                const std::vector<CompressedWeightBlock>
                                    &wtBlocks,
                                GroupAccum *accum)
{
    PeGroupStats st;

    const size_t F = FixedFI > 0 ? static_cast<size_t>(FixedFI)
                                 : static_cast<size_t>(cfg_.pe.mulF);
    const size_t I = FixedFI > 0 ? static_cast<size_t>(FixedFI)
                                 : static_cast<size_t>(cfg_.pe.mulI);
    const int accH = accRect_.height();
    const int accX0 = accRect_.x0;
    const int accY0 = accRect_.y0;
    const int phases = Stride1 ? 1 : layer_.geometry().phases();

    // Landing window: with output halos the PE accumulates every
    // in-plane product of its private inputs (the accumulator rect
    // covers them by construction); with input halos only products
    // for its private output tile land -- edge products of the
    // replicated inputs are computed by a neighbour as well and are
    // dropped here.
    const int loX = cfg_.pe.inputHalos ? accRect_.x0 : 0;
    const int hiX = cfg_.pe.inputHalos ? accRect_.x1
                                       : layer_.outWidth();
    const int loY = cfg_.pe.inputHalos ? accRect_.y0 : 0;
    const int hiY = cfg_.pe.inputHalos ? accRect_.y1
                                       : layer_.outHeight();
    // One unsigned comparison per axis covers both window bounds.
    const unsigned winW = static_cast<unsigned>(hiX - loX);
    const unsigned winH = static_cast<unsigned>(hiY - loY);

    // Private accumulator layout, hoisted out of the product loop.
    // The GroupAccum rect is this PE's accRect, so the bank address
    // and the buffer index share the (ox, oy) position offset:
    //   pos    = (ox - accX0) * accH + (oy - accY0)
    //   bank   = hash(pos + kRel * channelStride)
    //   buffer = kRel * accPlane + pos
    // pos splits into an activation base minus a per-weight offset,
    // and the per-weight parts fold into the precomputed wBank/wAcc
    // arrays (see KernelScratch), leaving one addition per product.
    double *accBase = nullptr;
    long accPlane = 0;
    if (Functional) {
        accBase = accum->values.data();
        accPlane = accum->rect.area();
        SCNN_ASSERT(accum->values.size() <=
                        static_cast<size_t>(INT32_MAX),
                    "group accumulator exceeds 2^31 entries");
    }
    const long chanStride = banks_.channelStride();
    KernelScratch &ks = KernelScratch::local();
    ks.aPos.resize(I);
    ks.aXq.resize(I);
    ks.aYq.resize(I);
    ks.aInterior.resize(I);
    if constexpr (Simd) {
        // Padded, zero-initialized lane copies: stationary vectors
        // shorter than the pad leave deterministic values in the
        // unused lanes, which the vector ops mask or sentinel away.
        ks.aVal.assign(std::max<size_t>(I, 4), 0.0);
        ks.aPosI32.assign(std::max<size_t>(I, 16), 0);
    } else {
        ks.aVal.resize(std::max<size_t>(I, 4));
    }
    long *const aPos = ks.aPos.data();
    double *const aVal = ks.aVal.data();
    int *const aXq = ks.aXq.data();
    int *const aYq = ks.aYq.data();
    uint8_t *const aInterior = ks.aInterior.data();

#if defined(SCNN_SIMD_AVX512)
    [[maybe_unused]] Vec<int32_t> rowIdxV{}, bankMaskV{}, sentinelV{};
    [[maybe_unused]] uint32_t *clk = nullptr;
    [[maybe_unused]] uint64_t clockEpoch = 0;
    if constexpr (Simd) {
        rowIdxV = Vec<int32_t>::load(kRow4Idx);
        bankMaskV = Vec<int32_t>::broadcast(
            static_cast<int32_t>(banks_.bankMask()));
        sentinelV = Vec<int32_t>::load(kLaneIota) +
                    Vec<int32_t>::broadcast(banks_.numBanks());
        // Pass-relative 32-bit bank clocks plus the 16 sentinel pad
        // slots; banks_.reset() has zeroed the pass clock.
        ks.bankClock32.assign(
            static_cast<size_t>(banks_.numBanks()) + 16, 0);
        clk = ks.bankClock32.data();
    }
    // Pass clock relative to the rebased epoch; residual backlogs are
    // bounded by the queue depth, so rebasing far below 2^32 keeps
    // every relative value exact.
    const auto curNow32 = [&]() -> uint32_t {
        const uint64_t now = banks_.now();
        if (now - clockEpoch >= (1ull << 30)) {
            const uint32_t shift =
                static_cast<uint32_t>(now - clockEpoch);
            for (auto &c : ks.bankClock32)
                c = c > shift ? c - shift : 0;
            clockEpoch = now;
        }
        return static_cast<uint32_t>(now - clockEpoch);
    };
#endif

    // Scalar-op wrappers: the SIMD kernels route their edge (landing-
    // checked) products through the same 32-bit clock array as the
    // vector interior ops, reusing OpState::opMax as the backlog
    // accumulator so opFinish() is common to both paths; the scalar
    // kernels route through AccumulatorBanks directly.
    [[maybe_unused]] uint32_t edgeNow32 = 0;
    const auto beginOp = [&]() -> AccumulatorBanks::OpState {
#if defined(SCNN_SIMD_AVX512)
        if constexpr (Simd) {
            edgeNow32 = curNow32();
            return {0, 0};
        }
#endif
        return banks_.opBegin();
    };
    const auto routeProduct = [&](AccumulatorBanks::OpState &op,
                                  int bank) {
#if defined(SCNN_SIMD_AVX512)
        if constexpr (Simd) {
            uint32_t &nf = clk[bank];
            nf = (nf > edgeNow32 ? nf : edgeNow32) + 1;
            const uint32_t backlog = nf - edgeNow32;
            if (backlog > op.opMax)
                op.opMax = backlog;
            return;
        }
#endif
        banks_.opRoute(op, bank);
    };

    uint64_t cycles = 0, mulOps = 0, products = 0, landed = 0;
    uint64_t actEntries = 0, wtEntries = 0, conflictStalls = 0;

    for (int c = 0; c < acts.numChannels(); ++c) {
        const CompressedWeightBlock &block = wtBlocks[c];
        for (int p = 0; p < phases; ++p) {
            const CompressedActTile::Span A = acts.span(c, p);
            const CompressedWeightBlock::Span W = block.span(p);
            if (A.empty() || W.empty())
                continue;

            actEntries += A.count;

            const size_t nA = A.count;
            const size_t nW = W.count;

            // Fold the per-weight address parts once per substream
            // (the span is re-streamed nA / I times below) and track
            // the tap-coordinate extremes for the interior test.  The
            // SIMD kernels keep wBank/wAcc padded one full vector
            // past nW so tail-chunk lane loads stay in bounds (the
            // pad lanes are masked or sentineled, never used).
            ks.wBank.resize(Simd ? nW + 16 : nW);
            if (Functional) {
                ks.wPacked.resize(nW);
                if (Simd)
                    ks.wAcc.resize(nW + 16);
            }
            int minRq = W.rq[0], maxRq = W.rq[0];
            int minSq = W.sq[0], maxSq = W.sq[0];
            for (size_t j = 0; j < nW; ++j) {
                const int rq = W.rq[j];
                const int sq = W.sq[j];
                minRq = std::min(minRq, rq);
                maxRq = std::max(maxRq, rq);
                minSq = std::min(minSq, sq);
                maxSq = std::max(maxSq, sq);
                const long wp = static_cast<long>(rq) * accH + sq;
                const int32_t bank = static_cast<int32_t>(
                    W.kRel[j] * chanStride - wp);
                ks.wBank[j] = bank;
                if (Functional) {
                    const int32_t acc = static_cast<int32_t>(
                        W.kRel[j] * accPlane - wp);
                    ks.wPacked[j] =
                        (static_cast<uint64_t>(
                             static_cast<uint32_t>(acc))
                         << 32) |
                        static_cast<uint32_t>(bank);
                    if constexpr (Simd)
                        ks.wAcc[j] = acc;
                }
            }
            if constexpr (Simd) {
                for (size_t j = nW; j < nW + 16; ++j)
                    ks.wBank[j] = 0;
                if (Functional)
                    for (size_t j = nW; j < nW + 16; ++j)
                        ks.wAcc[j] = 0;
            }
            const int32_t *wBank = ks.wBank.data();
            const uint64_t *wPacked =
                Functional ? ks.wPacked.data() : nullptr;
            [[maybe_unused]] const int32_t *wAcc =
                (Simd && Functional) ? ks.wAcc.data() : nullptr;

            for (size_t ai = 0; ai < nA; ai += I) {
                const size_t aEnd = std::min(nA, ai + I);
                const size_t nAv = aEnd - ai;

                // Stationary-vector state, computed once per vector
                // instead of once per weight chunk.  An activation is
                // "interior" when every tap of this substream lands
                // in the window; the product loop then needs no
                // per-product landing check.
                bool allInterior = true;
                for (size_t i = 0; i < nAv; ++i) {
                    const int axq = A.xq[ai + i];
                    const int ayq = A.yq[ai + i];
                    aXq[i] = axq;
                    aYq[i] = ayq;
                    aPos[i] = static_cast<long>(axq - accX0) * accH +
                              (ayq - accY0);
                    if constexpr (Simd)
                        ks.aPosI32[i] =
                            static_cast<int32_t>(aPos[i]);
                    aInterior[i] =
                        static_cast<uint8_t>(axq - maxRq >= loX &&
                                             axq - minRq < hiX &&
                                             ayq - maxSq >= loY &&
                                             ayq - minSq < hiY);
                    allInterior = allInterior && aInterior[i] != 0;
                    if (Functional)
                        aVal[i] =
                            static_cast<double>(A.value[ai + i]);
                }

                // Weights are re-streamed from the FIFO against each
                // stationary activation vector (Fig. 4, loop D).
                wtEntries += nW;

                if (allInterior) {
#if defined(SCNN_SIMD_AVX512)
                    if constexpr (Simd) {
                        if constexpr (FixedFI == 4) {
                            // One zmm per op: 4 stationary rows x a
                            // broadcast 4-weight column, masked when
                            // the stationary vector or the final
                            // weight chunk is ragged.
                            const Vec<int32_t> basesV = simd::permute(
                                Vec<int32_t>::load(
                                    ks.aPosI32.data()),
                                rowIdxV);
                            for (size_t wi = 0; wi < nW; wi += 4) {
                                const int fw = static_cast<int>(
                                    std::min<size_t>(4, nW - wi));
                                const LaneMask m = mask4x4(nAv, fw);
                                const uint32_t now32 = curNow32();
                                const Vec<int32_t> idsB =
                                    (basesV +
                                     Vec<int32_t>::broadcast4(
                                         wBank + wi)) &
                                    bankMaskV;
                                const uint32_t opMax = routeOp16(
                                    clk, now32, idsB, m, sentinelV);
                                const uint64_t opc = banks_.opFinish(
                                    {0, opMax});
                                cycles += opc;
                                conflictStalls += opc - 1;
                                ++mulOps;
                                products += nAv * fw;
                                landed += nAv * fw;
                                if constexpr (Functional) {
                                    const Vec<int32_t> idsA =
                                        basesV +
                                        Vec<int32_t>::broadcast4(
                                            wAcc + wi);
                                    if (!simd::hasConflict(idsA, m)) {
                                        accumOp16(
                                            accBase, idsA, m,
                                            simd::dupHalves(aVal[0],
                                                            aVal[1]),
                                            simd::dupHalves(aVal[2],
                                                            aVal[3]),
                                            simd::dup4Floats(
                                                W.value + wi, fw));
                                    } else {
                                        // Conflict fallback: scalar
                                        // order (i outer, w inner).
                                        for (size_t i = 0; i < nAv;
                                             ++i) {
                                            const long base = aPos[i];
                                            const double av = aVal[i];
                                            for (size_t w = wi;
                                                 w <
                                                 wi + static_cast<
                                                          size_t>(fw);
                                                 ++w)
                                                accBase[base +
                                                        wAcc[w]] +=
                                                    av *
                                                    static_cast<
                                                        double>(
                                                        W.value[w]);
                                        }
                                    }
                                }
                            }
                        } else {
                            // Generic F/I: per-row half-width chunks
                            // composed into one op cost.
                            for (size_t wi = 0; wi < nW; wi += F) {
                                const size_t wEnd =
                                    std::min(nW, wi + F);
                                const uint32_t now32 = curNow32();
                                uint32_t opMax = 0;
                                for (size_t i = 0; i < nAv; ++i) {
                                    const int32_t base =
                                        ks.aPosI32[i];
                                    const Vec<int32_t> baseV =
                                        Vec<int32_t>::broadcast(base);
                                    [[maybe_unused]] Vec<double> avV{};
                                    if constexpr (Functional)
                                        avV = Vec<double>::broadcast(
                                            aVal[i]);
                                    for (size_t w = wi; w < wEnd;
                                         w += 8) {
                                        const int n = static_cast<int>(
                                            std::min<size_t>(
                                                8, wEnd - w));
                                        const LaneMask m =
                                            simd::maskN(n);
                                        const Vec<int32_t> idsB =
                                            (baseV +
                                             Vec<int32_t>::loadu(
                                                 wBank + w)) &
                                            bankMaskV;
                                        opMax = std::max(
                                            opMax,
                                            routeOp16(clk, now32,
                                                      idsB, m,
                                                      sentinelV));
                                        if constexpr (Functional) {
                                            const Vec<int32_t> idsA =
                                                baseV +
                                                Vec<int32_t>::loadu(
                                                    wAcc + w);
                                            if (!simd::hasConflict(
                                                    idsA, m)) {
                                                accumOp8(
                                                    accBase, idsA, m,
                                                    avV,
                                                    simd::cvt8Floats(
                                                        W.value + w,
                                                        m));
                                            } else {
                                                const double av =
                                                    aVal[i];
                                                for (size_t w2 = w;
                                                     w2 <
                                                     w + static_cast<
                                                             size_t>(
                                                             n);
                                                     ++w2)
                                                    accBase
                                                        [static_cast<
                                                             long>(
                                                             base) +
                                                         wAcc[w2]] +=
                                                        av *
                                                        static_cast<
                                                            double>(
                                                            W.value
                                                                [w2]);
                                            }
                                        }
                                    }
                                }
                                const uint64_t opc = banks_.opFinish(
                                    {0, opMax});
                                cycles += opc;
                                conflictStalls += opc - 1;
                                ++mulOps;
                                products += nAv * (wEnd - wi);
                                landed += nAv * (wEnd - wi);
                            }
                        }
                        continue;
                    }
#endif // SCNN_SIMD_AVX512
                    // Every product of every op of this stationary
                    // vector lands: no per-product or per-activation
                    // checks at all.  With a compile-time F the full
                    // chunks run with a constant trip count (the
                    // loop unrolls); only the tail chunk is generic.
                    const size_t nWfull =
                        FixedFI > 0 ? nW - nW % F : 0;
                    for (size_t wi = 0; wi < nWfull; wi += F) {
                        AccumulatorBanks::OpState op =
                            beginOp();
                        products += nAv * F;
                        landed += nAv * F;
                        const auto productRow = [&](size_t i) {
                            const long base = aPos[i];
                            if (Functional) {
                                const double av = aVal[i];
                                for (size_t w = wi; w < wi + F; ++w) {
                                    const uint64_t pk = wPacked[w];
                                    routeProduct(
                                        op,
                                        banks_.bankOfAddr(
                                            base +
                                            static_cast<int32_t>(
                                                pk)));
                                    accBase[base +
                                            static_cast<int32_t>(
                                                pk >> 32)] +=
                                        av * static_cast<double>(
                                                 W.value[w]);
                                }
                            } else {
                                for (size_t w = wi; w < wi + F; ++w) {
                                    routeProduct(
                                        op, banks_.bankOfAddr(
                                                base + wBank[w]));
                                }
                            }
                        };
                        if (nAv == I) {
                            // Full stationary vector: constant trip
                            // count, the whole F x I op straight-
                            // lines.
                            for (size_t i = 0; i < I; ++i)
                                productRow(i);
                        } else {
                            for (size_t i = 0; i < nAv; ++i)
                                productRow(i);
                        }
                        const uint64_t opc = banks_.opFinish(op);
                        cycles += opc;
                        conflictStalls += opc - 1;
                        ++mulOps;
                    }
                    for (size_t wi = nWfull; wi < nW; wi += F) {
                        const size_t wEnd = std::min(nW, wi + F);
                        AccumulatorBanks::OpState op =
                            beginOp();
                        products += nAv * (wEnd - wi);
                        landed += nAv * (wEnd - wi);
                        for (size_t i = 0; i < nAv; ++i) {
                            const long base = aPos[i];
                            if (Functional) {
                                const double av = aVal[i];
                                for (size_t w = wi; w < wEnd; ++w) {
                                    const uint64_t pk = wPacked[w];
                                    routeProduct(
                                        op,
                                        banks_.bankOfAddr(
                                            base +
                                            static_cast<int32_t>(
                                                pk)));
                                    accBase[base +
                                            static_cast<int32_t>(
                                                pk >> 32)] +=
                                        av * static_cast<double>(
                                                 W.value[w]);
                                }
                            } else {
                                for (size_t w = wi; w < wEnd; ++w) {
                                    routeProduct(
                                        op, banks_.bankOfAddr(
                                                base + wBank[w]));
                                }
                            }
                        }
                        const uint64_t opc = banks_.opFinish(op);
                        cycles += opc;
                        conflictStalls += opc - 1;
                        ++mulOps;
                    }
                    continue;
                }

                for (size_t wi = 0; wi < nW; wi += F) {
                    const size_t wEnd = std::min(nW, wi + F);
                    AccumulatorBanks::OpState op = beginOp();
                    products += nAv * (wEnd - wi);
                    for (size_t i = 0; i < nAv; ++i) {
                        const long base = aPos[i];
                        double av = 0.0;
                        if (Functional)
                            av = aVal[i];
                        if (aInterior[i]) {
                            // Interior fast path: every product
                            // lands.
                            landed += wEnd - wi;
                            for (size_t w = wi; w < wEnd; ++w) {
                                if (Functional) {
                                    const uint64_t pk = wPacked[w];
                                    routeProduct(
                                        op,
                                        banks_.bankOfAddr(
                                            base +
                                            static_cast<int32_t>(pk)));
                                    accBase[base +
                                            static_cast<int32_t>(
                                                pk >> 32)] +=
                                        av * static_cast<double>(
                                                 W.value[w]);
                                } else {
                                    routeProduct(
                                        op, banks_.bankOfAddr(
                                                base + wBank[w]));
                                }
                            }
                            continue;
                        }
                        const int axq = aXq[i];
                        const int ayq = aYq[i];
                        for (size_t w = wi; w < wEnd; ++w) {
                            // Operand coordinates are stored as
                            // stride quotients and phases match, so
                            // the output coordinate is one
                            // subtraction for any stride.
                            const int ox = axq - W.rq[w];
                            const int oy = ayq - W.sq[w];
                            if (static_cast<unsigned>(ox - loX) >=
                                    winW ||
                                static_cast<unsigned>(oy - loY) >=
                                    winH) {
                                continue; // edge product: slot burned
                            }
                            ++landed;
                            if (Functional) {
                                const uint64_t pk = wPacked[w];
                                routeProduct(
                                    op,
                                    banks_.bankOfAddr(
                                        base +
                                        static_cast<int32_t>(pk)));
                                // Landed coordinates always fall in
                                // accRect (it covers the reachable
                                // output footprint), so the private
                                // buffer needs no bounds checks.
                                accBase[base + static_cast<int32_t>(
                                                   pk >> 32)] +=
                                    av *
                                    static_cast<double>(W.value[w]);
                            } else {
                                routeProduct(
                                    op, banks_.bankOfAddr(
                                            base + wBank[w]));
                            }
                        }
                    }
                    const uint64_t opc = banks_.opFinish(op);
                    cycles += opc;
                    conflictStalls += opc - 1;
                    ++mulOps;
                }
            }
        }
    }

    st.cycles = cycles;
    st.mulOps = mulOps;
    st.products = products;
    st.landed = landed;
    st.actEntries = actEntries;
    st.wtEntries = wtEntries;
    st.conflictStalls = conflictStalls;
    return st;
}

PeGroupStats
ProcessingElement::runGroup(const CompressedActTile &acts,
                            const std::vector<CompressedWeightBlock>
                                &wtBlocks,
                            int k0, GroupAccum *accum)
{
    if (inTile_.empty() || accRect_.empty())
        return PeGroupStats();

    SCNN_ASSERT(wtBlocks.empty() ||
                    wtBlocks.front().k0() == k0,
                "weight blocks built for group k0=%d, runGroup got "
                "k0=%d", wtBlocks.empty() ? -1 : wtBlocks.front().k0(),
                k0);

    banks_.reset();
    return accum
        ? (this->*kernelFunctional_)(acts, wtBlocks, accum)
        : (this->*kernelStatsOnly_)(acts, wtBlocks, nullptr);
}

} // namespace scnn
