#include "scnn/pe.hh"

#include <algorithm>

#include "scnn/kernel_scratch.hh"

namespace scnn {

ProcessingElement::ProcessingElement(const AcceleratorConfig &cfg,
                                     const ConvLayerParams &layer,
                                     TileRect inTile, TileRect outTile,
                                     TileRect accRect)
    : cfg_(cfg), layer_(layer), inTile_(inTile), outTile_(outTile),
      accRect_(accRect), banks_(cfg.pe.accumBanks, 2 * cfg.pe.mulI,
                                cfg.pe.xbarQueueDepth)
{
    const int ox0 = std::max(outTile_.x0, accRect_.x0);
    const int ox1 = std::min(outTile_.x1, accRect_.x1);
    const int oy0 = std::max(outTile_.y0, accRect_.y0);
    const int oy1 = std::min(outTile_.y1, accRect_.y1);
    overlapArea_ = (ox1 > ox0 && oy1 > oy0)
        ? static_cast<long>(ox1 - ox0) * (oy1 - oy0)
        : 0;

    // Select the kernel pair once per layer: stride-1 layers take the
    // single-phase path, and the paper's F = I = 4 multiplier
    // geometry gets the unrolled-op instantiation.
    const bool stride1 = layer_.strideX == 1 && layer_.strideY == 1;
    if (cfg_.pe.mulF == 4 && cfg_.pe.mulI == 4) {
        if (stride1) {
            kernelFunctional_ =
                &ProcessingElement::runGroupImpl<true, true, 4>;
            kernelStatsOnly_ =
                &ProcessingElement::runGroupImpl<false, true, 4>;
        } else {
            kernelFunctional_ =
                &ProcessingElement::runGroupImpl<true, false, 4>;
            kernelStatsOnly_ =
                &ProcessingElement::runGroupImpl<false, false, 4>;
        }
    } else if (stride1) {
        kernelFunctional_ =
            &ProcessingElement::runGroupImpl<true, true, 0>;
        kernelStatsOnly_ =
            &ProcessingElement::runGroupImpl<false, true, 0>;
    } else {
        kernelFunctional_ =
            &ProcessingElement::runGroupImpl<true, false, 0>;
        kernelStatsOnly_ =
            &ProcessingElement::runGroupImpl<false, false, 0>;
    }
}

/**
 * The F x I Cartesian-product kernel (Fig. 4).  Template parameters
 * compile the two per-product conditionals of the generic loop out of
 * the hot path:
 *  - Functional: accumulate value products into the private GroupAccum
 *    (false: timing/work counters only, no accumulator memory touched);
 *  - Stride1: output coordinates are plain subtractions of pre-padded
 *    activation coordinates and filter taps (general strides divide by
 *    the stride after phase decomposition; the divisions are exact).
 */
template <bool Functional, bool Stride1, int FixedFI>
PeGroupStats
ProcessingElement::runGroupImpl(const CompressedActTile &acts,
                                const std::vector<CompressedWeightBlock>
                                    &wtBlocks,
                                GroupAccum *accum)
{
    PeGroupStats st;

    const size_t F = FixedFI > 0 ? static_cast<size_t>(FixedFI)
                                 : static_cast<size_t>(cfg_.pe.mulF);
    const size_t I = FixedFI > 0 ? static_cast<size_t>(FixedFI)
                                 : static_cast<size_t>(cfg_.pe.mulI);
    const int accH = accRect_.height();
    const int accX0 = accRect_.x0;
    const int accY0 = accRect_.y0;
    const int phases = Stride1 ? 1 : layer_.geometry().phases();

    // Landing window: with output halos the PE accumulates every
    // in-plane product of its private inputs (the accumulator rect
    // covers them by construction); with input halos only products
    // for its private output tile land -- edge products of the
    // replicated inputs are computed by a neighbour as well and are
    // dropped here.
    const int loX = cfg_.pe.inputHalos ? accRect_.x0 : 0;
    const int hiX = cfg_.pe.inputHalos ? accRect_.x1
                                       : layer_.outWidth();
    const int loY = cfg_.pe.inputHalos ? accRect_.y0 : 0;
    const int hiY = cfg_.pe.inputHalos ? accRect_.y1
                                       : layer_.outHeight();
    // One unsigned comparison per axis covers both window bounds.
    const unsigned winW = static_cast<unsigned>(hiX - loX);
    const unsigned winH = static_cast<unsigned>(hiY - loY);

    // Private accumulator layout, hoisted out of the product loop.
    // The GroupAccum rect is this PE's accRect, so the bank address
    // and the buffer index share the (ox, oy) position offset:
    //   pos    = (ox - accX0) * accH + (oy - accY0)
    //   bank   = hash(pos + kRel * channelStride)
    //   buffer = kRel * accPlane + pos
    // pos splits into an activation base minus a per-weight offset,
    // and the per-weight parts fold into the precomputed wBank/wAcc
    // arrays (see KernelScratch), leaving one addition per product.
    double *accBase = nullptr;
    long accPlane = 0;
    if (Functional) {
        accBase = accum->values.data();
        accPlane = accum->rect.area();
        SCNN_ASSERT(accum->values.size() <=
                        static_cast<size_t>(INT32_MAX),
                    "group accumulator exceeds 2^31 entries");
    }
    const long chanStride = banks_.channelStride();
    KernelScratch &ks = KernelScratch::local();
    ks.aPos.resize(I);
    ks.aVal.resize(I);
    ks.aXq.resize(I);
    ks.aYq.resize(I);
    ks.aInterior.resize(I);
    long *const aPos = ks.aPos.data();
    double *const aVal = ks.aVal.data();
    int *const aXq = ks.aXq.data();
    int *const aYq = ks.aYq.data();
    uint8_t *const aInterior = ks.aInterior.data();

    uint64_t cycles = 0, mulOps = 0, products = 0, landed = 0;
    uint64_t actEntries = 0, wtEntries = 0, conflictStalls = 0;

    for (int c = 0; c < acts.numChannels(); ++c) {
        const CompressedWeightBlock &block = wtBlocks[c];
        for (int p = 0; p < phases; ++p) {
            const CompressedActTile::Span A = acts.span(c, p);
            const CompressedWeightBlock::Span W = block.span(p);
            if (A.empty() || W.empty())
                continue;

            actEntries += A.count;

            const size_t nA = A.count;
            const size_t nW = W.count;

            // Fold the per-weight address parts once per substream
            // (the span is re-streamed nA / I times below) and track
            // the tap-coordinate extremes for the interior test.
            ks.wBank.resize(nW);
            if (Functional)
                ks.wPacked.resize(nW);
            int minRq = W.rq[0], maxRq = W.rq[0];
            int minSq = W.sq[0], maxSq = W.sq[0];
            for (size_t j = 0; j < nW; ++j) {
                const int rq = W.rq[j];
                const int sq = W.sq[j];
                minRq = std::min(minRq, rq);
                maxRq = std::max(maxRq, rq);
                minSq = std::min(minSq, sq);
                maxSq = std::max(maxSq, sq);
                const long wp = static_cast<long>(rq) * accH + sq;
                const int32_t bank = static_cast<int32_t>(
                    W.kRel[j] * chanStride - wp);
                ks.wBank[j] = bank;
                if (Functional) {
                    const int32_t acc = static_cast<int32_t>(
                        W.kRel[j] * accPlane - wp);
                    ks.wPacked[j] =
                        (static_cast<uint64_t>(
                             static_cast<uint32_t>(acc))
                         << 32) |
                        static_cast<uint32_t>(bank);
                }
            }
            const int32_t *wBank = ks.wBank.data();
            const uint64_t *wPacked =
                Functional ? ks.wPacked.data() : nullptr;

            for (size_t ai = 0; ai < nA; ai += I) {
                const size_t aEnd = std::min(nA, ai + I);
                const size_t nAv = aEnd - ai;

                // Stationary-vector state, computed once per vector
                // instead of once per weight chunk.  An activation is
                // "interior" when every tap of this substream lands
                // in the window; the product loop then needs no
                // per-product landing check.
                bool allInterior = true;
                for (size_t i = 0; i < nAv; ++i) {
                    const int axq = A.xq[ai + i];
                    const int ayq = A.yq[ai + i];
                    aXq[i] = axq;
                    aYq[i] = ayq;
                    aPos[i] = static_cast<long>(axq - accX0) * accH +
                              (ayq - accY0);
                    aInterior[i] =
                        static_cast<uint8_t>(axq - maxRq >= loX &&
                                             axq - minRq < hiX &&
                                             ayq - maxSq >= loY &&
                                             ayq - minSq < hiY);
                    allInterior = allInterior && aInterior[i] != 0;
                    if (Functional)
                        aVal[i] =
                            static_cast<double>(A.value[ai + i]);
                }

                // Weights are re-streamed from the FIFO against each
                // stationary activation vector (Fig. 4, loop D).
                wtEntries += nW;

                if (allInterior) {
                    // Every product of every op of this stationary
                    // vector lands: no per-product or per-activation
                    // checks at all.  With a compile-time F the full
                    // chunks run with a constant trip count (the
                    // loop unrolls); only the tail chunk is generic.
                    const size_t nWfull =
                        FixedFI > 0 ? nW - nW % F : 0;
                    for (size_t wi = 0; wi < nWfull; wi += F) {
                        AccumulatorBanks::OpState op =
                            banks_.opBegin();
                        products += nAv * F;
                        landed += nAv * F;
                        const auto productRow = [&](size_t i) {
                            const long base = aPos[i];
                            if (Functional) {
                                const double av = aVal[i];
                                for (size_t w = wi; w < wi + F; ++w) {
                                    const uint64_t pk = wPacked[w];
                                    banks_.opRoute(
                                        op,
                                        banks_.bankOfAddr(
                                            base +
                                            static_cast<int32_t>(
                                                pk)));
                                    accBase[base +
                                            static_cast<int32_t>(
                                                pk >> 32)] +=
                                        av * static_cast<double>(
                                                 W.value[w]);
                                }
                            } else {
                                for (size_t w = wi; w < wi + F; ++w) {
                                    banks_.opRoute(
                                        op, banks_.bankOfAddr(
                                                base + wBank[w]));
                                }
                            }
                        };
                        if (nAv == I) {
                            // Full stationary vector: constant trip
                            // count, the whole F x I op straight-
                            // lines.
                            for (size_t i = 0; i < I; ++i)
                                productRow(i);
                        } else {
                            for (size_t i = 0; i < nAv; ++i)
                                productRow(i);
                        }
                        const uint64_t opc = banks_.opFinish(op);
                        cycles += opc;
                        conflictStalls += opc - 1;
                        ++mulOps;
                    }
                    for (size_t wi = nWfull; wi < nW; wi += F) {
                        const size_t wEnd = std::min(nW, wi + F);
                        AccumulatorBanks::OpState op =
                            banks_.opBegin();
                        products += nAv * (wEnd - wi);
                        landed += nAv * (wEnd - wi);
                        for (size_t i = 0; i < nAv; ++i) {
                            const long base = aPos[i];
                            if (Functional) {
                                const double av = aVal[i];
                                for (size_t w = wi; w < wEnd; ++w) {
                                    const uint64_t pk = wPacked[w];
                                    banks_.opRoute(
                                        op,
                                        banks_.bankOfAddr(
                                            base +
                                            static_cast<int32_t>(
                                                pk)));
                                    accBase[base +
                                            static_cast<int32_t>(
                                                pk >> 32)] +=
                                        av * static_cast<double>(
                                                 W.value[w]);
                                }
                            } else {
                                for (size_t w = wi; w < wEnd; ++w) {
                                    banks_.opRoute(
                                        op, banks_.bankOfAddr(
                                                base + wBank[w]));
                                }
                            }
                        }
                        const uint64_t opc = banks_.opFinish(op);
                        cycles += opc;
                        conflictStalls += opc - 1;
                        ++mulOps;
                    }
                    continue;
                }

                for (size_t wi = 0; wi < nW; wi += F) {
                    const size_t wEnd = std::min(nW, wi + F);
                    AccumulatorBanks::OpState op = banks_.opBegin();
                    products += nAv * (wEnd - wi);
                    for (size_t i = 0; i < nAv; ++i) {
                        const long base = aPos[i];
                        double av = 0.0;
                        if (Functional)
                            av = aVal[i];
                        if (aInterior[i]) {
                            // Interior fast path: every product
                            // lands.
                            landed += wEnd - wi;
                            for (size_t w = wi; w < wEnd; ++w) {
                                if (Functional) {
                                    const uint64_t pk = wPacked[w];
                                    banks_.opRoute(
                                        op,
                                        banks_.bankOfAddr(
                                            base +
                                            static_cast<int32_t>(pk)));
                                    accBase[base +
                                            static_cast<int32_t>(
                                                pk >> 32)] +=
                                        av * static_cast<double>(
                                                 W.value[w]);
                                } else {
                                    banks_.opRoute(
                                        op, banks_.bankOfAddr(
                                                base + wBank[w]));
                                }
                            }
                            continue;
                        }
                        const int axq = aXq[i];
                        const int ayq = aYq[i];
                        for (size_t w = wi; w < wEnd; ++w) {
                            // Operand coordinates are stored as
                            // stride quotients and phases match, so
                            // the output coordinate is one
                            // subtraction for any stride.
                            const int ox = axq - W.rq[w];
                            const int oy = ayq - W.sq[w];
                            if (static_cast<unsigned>(ox - loX) >=
                                    winW ||
                                static_cast<unsigned>(oy - loY) >=
                                    winH) {
                                continue; // edge product: slot burned
                            }
                            ++landed;
                            if (Functional) {
                                const uint64_t pk = wPacked[w];
                                banks_.opRoute(
                                    op,
                                    banks_.bankOfAddr(
                                        base +
                                        static_cast<int32_t>(pk)));
                                // Landed coordinates always fall in
                                // accRect (it covers the reachable
                                // output footprint), so the private
                                // buffer needs no bounds checks.
                                accBase[base + static_cast<int32_t>(
                                                   pk >> 32)] +=
                                    av *
                                    static_cast<double>(W.value[w]);
                            } else {
                                banks_.opRoute(
                                    op, banks_.bankOfAddr(
                                            base + wBank[w]));
                            }
                        }
                    }
                    const uint64_t opc = banks_.opFinish(op);
                    cycles += opc;
                    conflictStalls += opc - 1;
                    ++mulOps;
                }
            }
        }
    }

    st.cycles = cycles;
    st.mulOps = mulOps;
    st.products = products;
    st.landed = landed;
    st.actEntries = actEntries;
    st.wtEntries = wtEntries;
    st.conflictStalls = conflictStalls;
    return st;
}

PeGroupStats
ProcessingElement::runGroup(const CompressedActTile &acts,
                            const std::vector<CompressedWeightBlock>
                                &wtBlocks,
                            int k0, GroupAccum *accum)
{
    if (inTile_.empty() || accRect_.empty())
        return PeGroupStats();

    SCNN_ASSERT(wtBlocks.empty() ||
                    wtBlocks.front().k0() == k0,
                "weight blocks built for group k0=%d, runGroup got "
                "k0=%d", wtBlocks.empty() ? -1 : wtBlocks.front().k0(),
                k0);

    banks_.reset();
    return accum
        ? (this->*kernelFunctional_)(acts, wtBlocks, accum)
        : (this->*kernelStatsOnly_)(acts, wtBlocks, nullptr);
}

} // namespace scnn
