#include "scnn/simulator.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/simd.hh"
#include "nn/reference.hh"
#include "scnn/kernel_scratch.hh"
#include "scnn/pe.hh"
#include "scnn/tiling.hh"

namespace scnn {

namespace {

constexpr uint64_t kRleElemBits = kDataBits + kRleIndexBits;   // 20
constexpr uint64_t kBufElemBits = kDataBits + kCoordBits;      // 26

uint64_t
ceilDiv(uint64_t a, uint64_t b)
{
    return (a + b - 1) / b;
}

/**
 * RLE storage accounting of a tensor region restricted to one PE's
 * output tile, encoded per channel in scan order (the OARAM form).
 * Streams through the incremental counter: no dense scratch buffer
 * and no per-channel RleStream allocation.
 */
uint64_t
storedElementsInTile(const Tensor3 &t, const TileRect &tile)
{
    if (tile.empty())
        return 0;
    uint64_t total = 0;
    const int h = t.height();
    const int rh = tile.height();
    RleCounter rc;
    for (int c = 0; c < t.channels(); ++c) {
        rc.reset();
        const float *plane = t.plane(c);
        // Rows are contiguous in y; the span feed scans them with
        // vector compares.
        for (int x = tile.x0; x < tile.x1; ++x)
            rc.feed(plane + static_cast<size_t>(x) * h + tile.y0,
                    static_cast<size_t>(rh));
        total += rc.stored;
    }
    return total;
}

/**
 * dst[i] += src[i] over one accumulator-rect row (contiguous in oy).
 * Dense vector adds replace the old skip-if-zero merge: adding an
 * exact 0.0 is an identity on every value the plane can hold (partial
 * sums are never -0.0: products of non-zero floats cannot underflow
 * to zero in double, and round-to-nearest addition never produces
 * -0.0 from distinct operands), so the result is bit-identical.
 */
void
addRow(double *dst, const double *src, long n)
{
    using V = simd::Vec<double>;
    long i = 0;
    if constexpr (simd::kVectorBuild) {
        for (; i + V::kLanes <= n; i += V::kLanes)
            (V::loadu(dst + i) + V::loadu(src + i)).storeu(dst + i);
    }
    for (; i < n; ++i)
        dst[i] += src[i];
}

/**
 * Convert one drained row of double partial sums to the float output
 * (optionally ReLU-clamped).  The vector clamp keeps the exact
 * std::max(f, 0.0f) semantics: only lanes strictly below zero are
 * replaced.
 */
template <bool Relu>
void
drainRowToFloat(const double *src, float *dst, long n)
{
    using VD = simd::Vec<double>;
    using VF = simd::Vec<float>;
    long i = 0;
    if constexpr (simd::kVectorBuild) {
        for (; i + VF::kLanes <= n; i += VF::kLanes) {
            VF f = simd::narrowToFloat(
                VD::loadu(src + i), VD::loadu(src + i + VD::kLanes));
            if constexpr (Relu)
                f = simd::select(f, VF::zero(), simd::ltZeroMask(f));
            f.storeu(dst + i);
        }
    }
    for (; i < n; ++i) {
        float f = static_cast<float>(src[i]);
        if constexpr (Relu)
            f = std::max(f, 0.0f);
        dst[i] = f;
    }
}

/**
 * Wall-clock accumulator for the four pipeline stages reported by
 * --profile.  Inactive (no clock reads) unless RunOptions::profile.
 */
struct StageClock
{
    enum Stage { Compress = 0, Kernel, Drain, Encode, NumStages };

    explicit StageClock(bool enabled) : on(enabled) {}

    void
    start()
    {
        if (on)
            t0 = std::chrono::steady_clock::now();
    }

    void
    stop(Stage s)
    {
        if (!on)
            return;
        const auto t1 = std::chrono::steady_clock::now();
        ms[s] += std::chrono::duration<double, std::milli>(t1 - t0)
                     .count();
    }

    bool on;
    std::chrono::steady_clock::time_point t0;
    double ms[NumStages] = {0.0, 0.0, 0.0, 0.0};
};

} // anonymous namespace

ScnnSimulator::ScnnSimulator(AcceleratorConfig cfg, EnergyModel energy)
    : cfg_(std::move(cfg)), energy_(energy)
{
    cfg_.validateOrDie();
    SCNN_ASSERT(cfg_.kind == ArchKind::SCNN,
                "ScnnSimulator requires an SCNN configuration");
}

LayerResult
ScnnSimulator::runLayer(const LayerWorkload &workload,
                        const RunOptions &opts)
{
    const ConvLayerParams &layer = workload.layer;
    layer.validate();

    const int numPes = cfg_.numPes();
    const int outW = layer.outWidth();
    const int outH = layer.outHeight();
    const int K = layer.outChannels;
    const int C = layer.inChannels;
    const ConvGeometry geom = layer.geometry();

    LayerResult res;
    res.layerName = layer.name;
    res.archName = cfg_.name;
    res.denseMacs = layer.macs();

    SpatialTiling tiling(layer, cfg_.peRows, cfg_.peCols);
    long maxAccArea = tiling.maxAccumArea();
    if (cfg_.pe.inputHalos) {
        // Input-halo accumulators cover only the private output tile.
        maxAccArea = 0;
        for (int pr = 0; pr < cfg_.peRows; ++pr)
            for (int pc = 0; pc < cfg_.peCols; ++pc)
                maxAccArea = std::max(
                    maxAccArea, tiling.outputTile(pr, pc).area());
    }
    const int kc = chooseKc(layer, cfg_, maxAccArea);
    const int numGroups = static_cast<int>(ceilDiv(K, kc));

    // All large reusable buffers live in the calling thread's scratch
    // and survive across groups, layers and networks.
    KernelScratch &scratch = KernelScratch::local();
    StageClock clock(opts.profile);

    // --- compress each PE's input tile (parallel: slot-per-PE) ---
    clock.start();
    scratch.tiles.resize(static_cast<size_t>(numPes));
    std::vector<std::unique_ptr<ProcessingElement>> pes(
        static_cast<size_t>(numPes));
    parallelFor(
        static_cast<size_t>(numPes),
        [&](size_t p) {
            const int pr = static_cast<int>(p) / cfg_.peCols;
            const int pc = static_cast<int>(p) % cfg_.peCols;
            // Output halos: disjoint input tiles, accumulator covers
            // the reachable output footprint.  Input halos: the input
            // footprint of the private output tile is replicated and
            // the accumulator covers exactly the output tile.
            const TileRect out = tiling.outputTile(pr, pc);
            const TileRect in = cfg_.pe.inputHalos
                ? tiling.inputHaloTile(pr, pc)
                : tiling.inputTile(pr, pc);
            const TileRect acc = cfg_.pe.inputHalos
                ? out
                : tiling.accumRect(pr, pc);
            scratch.tiles[p].rebuild(workload.input, in.x0, in.x1,
                                     in.y0, in.y1, geom);
            pes[p] = std::make_unique<ProcessingElement>(
                cfg_, layer, in, out, acc);
        },
        opts.threads);
    clock.stop(StageClock::Compress);
    uint64_t inStoredTotal = 0;
    uint64_t maxInBitsPerPe = 0;
    for (int p = 0; p < numPes; ++p) {
        inStoredTotal += scratch.tiles[p].storedElements();
        maxInBitsPerPe =
            std::max(maxInBitsPerPe, scratch.tiles[p].storageBits());
    }

    // --- functional output and merge scratch ---
    // In output-halo mode neighbouring accumulator rects overlap, so
    // PE drains merge through a dense (kc, outW, outH) double plane
    // per group.  In input-halo mode every accumulator rect is the
    // PE's private output tile: drains are disjoint and go straight
    // into the output tensor.
    const bool functional = opts.functional;
    const bool disjointDrain = cfg_.pe.inputHalos;
    Tensor3 out = functional ? Tensor3(K, outW, outH) : Tensor3();
    if (functional) {
        scratch.groupAccums.resize(static_cast<size_t>(numPes));
        if (!disjointDrain) {
            scratch.groupPlane.resize(static_cast<size_t>(kc) * outW *
                                      outH);
        }
    }

    // --- per-PE running state ---
    scratch.prevDrain.assign(static_cast<size_t>(numPes), 0);
    scratch.peGroupTime.assign(static_cast<size_t>(numPes), 0);
    scratch.busyCycles.assign(static_cast<size_t>(numPes), 0);
    scratch.groupStats.resize(static_cast<size_t>(numPes));

    uint64_t layerCycles = 0;
    uint64_t idleCycleSum = 0;
    uint64_t computeCyclesMax = 0;
    uint64_t wtDramBits = 0;
    uint64_t actFetchedEntries = 0;
    uint64_t wtFetchedEntries = 0;
    uint64_t haloElemsTotal = 0;
    uint64_t ppuElemsTotal = 0;
    uint64_t conflictStallTotal = 0;

    scratch.wtBlocks.resize(static_cast<size_t>(C));
    for (int g = 0; g < numGroups; ++g) {
        const int k0 = g * kc;
        const int k1 = std::min(K, k0 + kc);
        const int kcActual = k1 - k0;

        // Weight-block construction RLE-encodes a Kc x R x S volume
        // per input channel; channels are independent, so rebuild the
        // per-channel blocks in place (slot-per-channel, capacity
        // reused across groups) and account serially in channel
        // order.
        clock.start();
        parallelFor(
            static_cast<size_t>(C),
            [&](size_t c) {
                scratch.wtBlocks[c].rebuild(workload.weights, k0, k1,
                                            static_cast<int>(c), C,
                                            layer.groups, geom);
            },
            opts.threads);
        clock.stop(StageClock::Compress);
        uint64_t wtBitsGroup = 0;
        for (int c = 0; c < C; ++c)
            wtBitsGroup += scratch.wtBlocks[c].storedElements() *
                           kRleElemBits;
        wtDramBits += wtBitsGroup;

        // The per-(PE, group) passes between the inter-PE barriers are
        // independent: run them across the pool, then merge stats and
        // functional partial sums deterministically in PE order.
        clock.start();
        parallelFor(
            static_cast<size_t>(numPes),
            [&](size_t p) {
                GroupAccum *ga = nullptr;
                if (functional) {
                    ga = &scratch.groupAccums[p];
                    ga->reset(pes[p]->accRect(), kcActual);
                }
                scratch.groupStats[p] = pes[p]->runGroup(
                    scratch.tiles[p], scratch.wtBlocks, k0, ga);
            },
            opts.threads);
        clock.stop(StageClock::Kernel);

        clock.start();
        if (functional && !disjointDrain) {
            scratch.groupPlane.assign(
                static_cast<size_t>(kcActual) * outW * outH, 0.0);
        }
        uint64_t wallCompute = 0;
        for (int p = 0; p < numPes; ++p) {
            const PeGroupStats &st = scratch.groupStats[p];

            if (functional) {
                // Per-tile drain of the PE's private buffer, in PE
                // order, one contiguous oy row at a time on the lane
                // layer.  Input-halo mode (disjoint accumulator
                // rects) converts straight into the output tensor;
                // output-halo mode merges into the group plane.
                const GroupAccum &ga = scratch.groupAccums[p];
                const double *src = ga.values.data();
                const int rh = ga.rect.height();
                for (int kl = 0; kl < ga.kc; ++kl) {
                    for (int ox = ga.rect.x0; ox < ga.rect.x1; ++ox) {
                        if (disjointDrain) {
                            float *dst = out.data() +
                                (static_cast<size_t>(k0 + kl) * outW +
                                 ox) *
                                    outH +
                                ga.rect.y0;
                            if (layer.applyRelu)
                                drainRowToFloat<true>(src, dst, rh);
                            else
                                drainRowToFloat<false>(src, dst, rh);
                        } else {
                            addRow(scratch.groupPlane.data() +
                                       (static_cast<size_t>(kl) *
                                            outW +
                                        ox) *
                                           outH +
                                       ga.rect.y0,
                                   src, rh);
                        }
                        src += rh;
                    }
                }
            }

            res.mulArrayOps += st.mulOps;
            res.products += st.products;
            res.landedProducts += st.landed;
            actFetchedEntries += st.actEntries;
            wtFetchedEntries += st.wtEntries;
            conflictStallTotal += st.conflictStalls;
            scratch.busyCycles[p] += st.cycles;

            // Drain of the previous group's accumulator overlaps this
            // group's compute (double buffering, Section IV).
            scratch.peGroupTime[p] =
                std::max(st.cycles, scratch.prevDrain[p]);

            const uint64_t ownElems = static_cast<uint64_t>(kcActual) *
                                      pes[p]->overlapArea();
            const uint64_t haloElems = static_cast<uint64_t>(kcActual) *
                                       pes[p]->haloAreaPerChannel();
            scratch.prevDrain[p] =
                ceilDiv(ownElems, cfg_.ppuLanes) +
                ceilDiv(haloElems, cfg_.haloLanes);
            haloElemsTotal += haloElems;
            ppuElemsTotal += ownElems;
            wallCompute = std::max(wallCompute, scratch.peGroupTime[p]);
        }

        if (functional && !disjointDrain) {
            // This group owns output channels [k0, k1) exclusively, so
            // the merged plane is final: post-activate and store.  The
            // plane and the output channel block are both dense and
            // contiguous, so this is one long vector row.
            const double *src = scratch.groupPlane.data();
            float *dst = out.data() +
                         static_cast<size_t>(k0) * outW * outH;
            const long n = static_cast<long>(kcActual) * outW * outH;
            if (layer.applyRelu)
                drainRowToFloat<true>(src, dst, n);
            else
                drainRowToFloat<false>(src, dst, n);
        }
        clock.stop(StageClock::Drain);

        // Weight broadcast for this group must stream from DRAM; the
        // group cannot complete faster than the broadcast.
        const uint64_t wall =
            std::max(wallCompute,
                     ceilDiv(wtBitsGroup,
                             static_cast<uint64_t>(cfg_.dramBitsPerCycle)));
        layerCycles += wall;
        computeCyclesMax += wallCompute;
        for (int p = 0; p < numPes; ++p)
            idleCycleSum += wall - scratch.peGroupTime[p];
    }

    // Final drain of the last group is exposed.
    uint64_t finalDrain = 0;
    for (int p = 0; p < numPes; ++p)
        finalDrain = std::max(finalDrain, scratch.prevDrain[p]);
    layerCycles += finalDrain;
    res.drainExposedCycles = finalDrain;

    // --- OARAM occupancy and DRAM tiling decision ---
    // Capacity decisions use the measured density profile (see
    // RunOptions::outputDensityHint); the actually-produced
    // compressed size is reported in the stats.
    clock.start();
    uint64_t outStoredActual = 0;
    if (functional) {
        scratch.perPeStored.assign(static_cast<size_t>(numPes), 0);
        parallelFor(
            static_cast<size_t>(numPes),
            [&](size_t p) {
                const int pr = static_cast<int>(p) / cfg_.peCols;
                const int pc = static_cast<int>(p) % cfg_.peCols;
                scratch.perPeStored[p] = storedElementsInTile(
                    out, tiling.outputTile(pr, pc));
            },
            opts.threads);
        for (int p = 0; p < numPes; ++p)
            outStoredActual += scratch.perPeStored[static_cast<size_t>(p)];
    }
    clock.stop(StageClock::Encode);

    long maxOutTileArea = 0;
    for (int pr = 0; pr < cfg_.peRows; ++pr)
        for (int pc = 0; pc < cfg_.peCols; ++pc)
            maxOutTileArea = std::max(
                maxOutTileArea, tiling.outputTile(pr, pc).area());
    const double outPlane =
        static_cast<double>(outW) * static_cast<double>(outH);
    const uint64_t outStoredTotal = static_cast<uint64_t>(
        expectedRleStored(static_cast<double>(layer.outputCount()),
                          opts.outputDensityHint));
    // Worst-PE estimate: largest tile share plus a clustering margin.
    const double worstShare =
        outPlane > 0 ? static_cast<double>(maxOutTileArea) / outPlane
                     : 0.0;
    const uint64_t maxOutBitsPerPe = static_cast<uint64_t>(
        1.15 * expectedRleStored(static_cast<double>(
                                     layer.outputCount()) * worstShare,
                                 opts.outputDensityHint) *
        kRleElemBits);

    const DramTilingDecision dramDec =
        decideDramTiling(cfg_, maxInBitsPerPe, maxOutBitsPerPe);
    res.dramTiled = dramDec.tiled;
    res.numDramTiles = dramDec.numTiles;

    uint64_t dramActBits = 0;
    if (dramDec.tiled) {
        // Activations stream to/from DRAM per temporal tile; weights
        // are re-broadcast for each tile.  DRAM latency overlaps
        // compute (Section IV), so only a bandwidth bound applies.
        dramActBits = (inStoredTotal + outStoredTotal) * kRleElemBits;
        wtDramBits *= static_cast<uint64_t>(dramDec.numTiles);
    }
    if (opts.firstLayer)
        dramActBits += inStoredTotal * kRleElemBits;

    const uint64_t dramBits = wtDramBits + dramActBits;
    layerCycles = std::max(
        layerCycles,
        ceilDiv(dramBits, static_cast<uint64_t>(cfg_.dramBitsPerCycle)));

    res.cycles = layerCycles;
    res.computeCycles = computeCyclesMax;
    res.dramWeightBits = wtDramBits;
    res.dramActBits = dramActBits;
    res.output = std::move(out);

    // --- utilization ---
    uint64_t busyTotal = 0;
    for (int p = 0; p < numPes; ++p)
        busyTotal += scratch.busyCycles[p];
    const double slotsBusy = static_cast<double>(busyTotal) *
                             cfg_.pe.mulF * cfg_.pe.mulI;
    res.multUtilBusy =
        slotsBusy > 0 ? static_cast<double>(res.products) / slotsBusy
                      : 0.0;
    const double slotsAll = static_cast<double>(layerCycles) *
                            cfg_.multipliers();
    res.multUtilOverall =
        slotsAll > 0 ? static_cast<double>(res.products) / slotsAll
                     : 0.0;
    res.peIdleFraction =
        layerCycles > 0
            ? static_cast<double>(idleCycleSum) /
                  (static_cast<double>(numPes) *
                   static_cast<double>(layerCycles))
            : 0.0;

    // --- energy events ---
    EnergyEvents &ev = res.events;
    ev.mults = static_cast<double>(res.products);
    ev.coordComputes = static_cast<double>(res.products);
    ev.xbarTransfers = static_cast<double>(res.landedProducts);
    // Accumulation plus the PPU's drain pass, which reads every
    // (dense) accumulator slot of the group footprint regardless of
    // how sparse the inputs were.
    ev.accBankAccesses = static_cast<double>(res.landedProducts) +
                         static_cast<double>(ppuElemsTotal) +
                         static_cast<double>(haloElemsTotal);
    // IARAM streams are re-read once per output-channel group.
    uint64_t iaramBits = 0;
    for (int p = 0; p < numPes; ++p)
        iaramBits += scratch.tiles[p].storageBits();
    ev.iaramReadBits =
        static_cast<double>(iaramBits) * static_cast<double>(numGroups);
    ev.wfifoReadBits =
        static_cast<double>(wtFetchedEntries) * kBufElemBits;
    ev.oaramWriteBits =
        static_cast<double>(outStoredTotal) * kRleElemBits;
    ev.haloBits = static_cast<double>(haloElemsTotal) * 24.0;
    ev.adds = static_cast<double>(haloElemsTotal); // PPU halo merges
    ev.ppuElements = static_cast<double>(ppuElemsTotal);
    ev.dramBits = static_cast<double>(dramBits);
    res.energyPj = energy_.total(ev, cfg_);

    // --- extra stats ---
    res.stats.set("kc", kc);
    res.stats.set("num_groups", numGroups);
    res.stats.set("conflict_stall_cycles",
                  static_cast<double>(conflictStallTotal));
    res.stats.set("act_entries_fetched",
                  static_cast<double>(actFetchedEntries));
    res.stats.set("wt_entries_fetched",
                  static_cast<double>(wtFetchedEntries));
    res.stats.set("in_stored_elements",
                  static_cast<double>(inStoredTotal));
    res.stats.set("out_stored_elements",
                  static_cast<double>(outStoredTotal));
    res.stats.set("out_stored_elements_actual",
                  static_cast<double>(outStoredActual));
    res.stats.set("max_in_bits_per_pe",
                  static_cast<double>(maxInBitsPerPe));
    res.stats.set("max_out_bits_per_pe",
                  static_cast<double>(maxOutBitsPerPe));
    res.stats.set("final_drain_cycles", static_cast<double>(finalDrain));
    res.stats.set("idle_cycle_sum", static_cast<double>(idleCycleSum));
    if (functional)
        res.stats.set("output_density", res.output.density());
    if (opts.profile) {
        res.stats.set("profile_compress_ms",
                      clock.ms[StageClock::Compress]);
        res.stats.set("profile_kernel_ms",
                      clock.ms[StageClock::Kernel]);
        res.stats.set("profile_drain_ms", clock.ms[StageClock::Drain]);
        res.stats.set("profile_encode_ms",
                      clock.ms[StageClock::Encode]);
    }
    return res;
}

NetworkResult
ScnnSimulator::runNetwork(const Network &net, uint64_t seed,
                          bool evalOnly, int threads)
{
    NetworkResult nr;
    nr.networkName = net.name();
    nr.archName = cfg_.name;
    std::vector<ConvLayerParams> layers;
    for (const auto &l : net.layers())
        if (!evalOnly || l.inEval)
            layers.push_back(l);

    // Resolve the worker count once and pin it for every layer so the
    // whole run agrees on one value.
    const int pinned = resolveThreads(threads);
    for (size_t i = 0; i < layers.size(); ++i) {
        const LayerWorkload w = makeWorkload(layers[i], seed);
        RunOptions opts;
        opts.firstLayer = (i == 0);
        opts.outputDensityHint =
            (i + 1 < layers.size()) ? layers[i + 1].inputDensity : 0.5;
        opts.threads = pinned;
        nr.layers.push_back(runLayer(w, opts));
    }
    return nr;
}

NetworkResult
ScnnSimulator::runNetworkChained(const Network &net, uint64_t seed,
                                 int threads, bool keepOutputs,
                                 bool profile,
                                 const WeightManifest *manifest)
{
    NetworkResult nr;
    nr.networkName = net.name() + "-chained";
    nr.archName = cfg_.name;

    const auto &layers = net.layers();
    SCNN_ASSERT(!layers.empty(), "empty network");

    Rng actRng(layers.front().name + "/activations", seed);
    Tensor3 act = makeActivations(layers.front(), actRng);

    const int pinned = resolveThreads(threads);
    for (size_t i = 0; i < layers.size(); ++i) {
        const ConvLayerParams &layer = layers[i];
        if (act.channels() != layer.inChannels ||
            act.width() != layer.inWidth ||
            act.height() != layer.inHeight) {
            fatal("chained execution: layer %s expects (%d,%d,%d) "
                  "input but the previous stage produced (%d,%d,%d); "
                  "chained mode requires a sequential topology",
                  layer.name.c_str(), layer.inChannels, layer.inWidth,
                  layer.inHeight, act.channels(), act.width(),
                  act.height());
        }

        LayerWorkload w;
        w.layer = layer;
        w.input = std::move(act);
        if (manifest != nullptr) {
            std::string error;
            const Tensor4 *mw = manifest->weightsFor(layer, &error);
            if (!error.empty())
                fatal("chained execution: %s", error.c_str());
            if (mw != nullptr)
                w.weights = *mw;
        }
        if (w.weights.size() == 0) {
            Rng wtRng(layer.name + "/weights", seed);
            w.weights = makeWeights(layer, wtRng);
        }

        RunOptions opts;
        opts.firstLayer = (i == 0);
        opts.outputDensityHint =
            (i + 1 < layers.size()) ? layers[i + 1].inputDensity : 0.5;
        opts.threads = pinned;
        opts.profile = profile;
        LayerResult res = runLayer(w, opts);

        // Feed the output forward without deep-copying it: pooling
        // reads it in place, and a caller that does not keep per-layer
        // outputs lets the tensor move straight into the next stage.
        if (layer.poolWindow > 0) {
            act = maxPool(res.output, layer.poolWindow,
                          layer.poolStride, layer.poolPad,
                          opts.threads);
            if (!keepOutputs)
                res.output = Tensor3();
        } else if (keepOutputs) {
            act = res.output;
        } else {
            act = std::move(res.output);
        }
        res.stats.set("chained_input_density", w.input.density());
        nr.layers.push_back(std::move(res));
    }
    return nr;
}

} // namespace scnn
