/**
 * @file
 * Result records shared by the SCNN and DCNN simulators and the
 * analytical model: per-layer timing/energy/utilization plus the
 * functional output activations, and network-level aggregates.
 */

#ifndef SCNN_SCNN_RESULT_HH
#define SCNN_SCNN_RESULT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "arch/energy_model.hh"
#include "common/stats.hh"
#include "tensor/tensor.hh"

namespace scnn {

/** Options controlling a single layer simulation. */
struct RunOptions
{
    /**
     * First layer of a network run: input activations must be
     * streamed from DRAM (later layers find them on chip unless the
     * layer is DRAM-tiled).
     */
    bool firstLayer = false;

    /**
     * Compute functional output values.  The SCNN simulator is always
     * functional (its timing depends on non-zero positions anyway);
     * the dense simulator can skip the arithmetic for large layers
     * since its timing is position-independent.
     */
    bool functional = true;

    /**
     * Expected post-ReLU output density, used for OARAM occupancy and
     * DRAM accounting.  Synthetic workload values make the raw
     * partial sums ~50% positive regardless of the real network's
     * statistics, so capacity decisions use the measured profile (the
     * next layer's input density) instead; network runners wire this
     * in.  The actually-produced compressed size is still reported in
     * the stats.
     */
    double outputDensityHint = 0.5;

    /**
     * Worker threads for the per-(PE, output-channel-group) passes
     * (and other per-layer parallel sections).  0 resolves through
     * the SCNN_THREADS / hardware-concurrency chain in
     * common/parallel.hh; the session layer resolves once per request
     * and pins the value here so every backend sees the same count.
     * Results are bit-identical for every value.
     */
    int threads = 0;

    /**
     * Batch size N (the outermost loop of Fig. 3).  Only the analytic
     * TimeLoop backend models N > 1 (weight broadcast amortized across
     * the batch); the cycle-level simulators are N = 1.
     */
    int batchN = 1;

    /**
     * Record per-stage wall time (compress / kernel / drain / encode)
     * into the layer stats as profile_*_ms entries.  Off by default:
     * the timer reads would otherwise sit on the hot path, and the
     * extra stats keys would perturb stat-set comparisons.
     */
    bool profile = false;
};

/** Outcome of simulating one convolutional layer. */
struct LayerResult
{
    std::string layerName;
    std::string archName;

    // --- timing ---
    uint64_t cycles = 0;          ///< total layer cycles
    uint64_t computeCycles = 0;   ///< multiplier-array active portion
    uint64_t drainExposedCycles = 0; ///< PPU drain not hidden by compute

    // --- work ---
    uint64_t mulArrayOps = 0;     ///< multiplier-array operations
    uint64_t products = 0;        ///< non-zero products computed
    uint64_t landedProducts = 0;  ///< products accumulated (in-plane)
    uint64_t denseMacs = 0;       ///< dense-equivalent multiply count

    /** Useful products per multiplier slot during busy cycles. */
    double multUtilBusy = 0.0;
    /** Useful products per multiplier slot over all layer cycles. */
    double multUtilOverall = 0.0;
    /** Mean fraction of cycles PEs sit at the inter-PE barrier. */
    double peIdleFraction = 0.0;

    // --- energy ---
    EnergyEvents events;
    double energyPj = 0.0;

    // --- memory system ---
    uint64_t dramWeightBits = 0;
    uint64_t dramActBits = 0;
    bool dramTiled = false;       ///< activations spilled to DRAM
    int numDramTiles = 1;

    // --- functional output (post-activation) ---
    Tensor3 output;

    /** Additional named stats (bank conflicts, per-PE spread, ...). */
    StatSet stats;
};

/** Outcome of simulating a network layer-by-layer. */
struct NetworkResult
{
    std::string networkName;
    std::string archName;
    std::vector<LayerResult> layers;

    uint64_t
    totalCycles() const
    {
        uint64_t total = 0;
        for (const auto &l : layers)
            total += l.cycles;
        return total;
    }

    double
    totalEnergyPj() const
    {
        double total = 0;
        for (const auto &l : layers)
            total += l.energyPj;
        return total;
    }

    uint64_t
    totalProducts() const
    {
        uint64_t total = 0;
        for (const auto &l : layers)
            total += l.products;
        return total;
    }
};

} // namespace scnn

#endif // SCNN_SCNN_RESULT_HH
