/**
 * @file
 * The SCNN processing element (Fig. 6) executing the PT-IS-CP-sparse
 * dataflow for one output-channel group over its input tile.
 *
 * Per multiplier-array operation the PE:
 *   1. holds a vector of up to I non-zero activations stationary
 *      (fetched once per (group, channel) pass over the IARAM),
 *   2. streams vectors of up to F non-zero weights from the FIFO,
 *   3. computes the full F x I Cartesian product,
 *   4. computes output coordinates from the operand coordinates and
 *      scatters the products through the arbitrated crossbar into the
 *      accumulator banks; same-bank products serialize.
 *
 * Products whose output coordinate falls outside the output plane
 * (activation near the plane border paired with an out-of-range filter
 * tap) occupy a multiplier slot but are dropped before the crossbar.
 *
 * The F x I kernel is template-specialized on {functional, stats-only}
 * x {stride-1 fast path, general stride} and the pair of variants is
 * selected once at PE construction: the stride-1 path computes output
 * coordinates with plain subtraction (no division), and the stats-only
 * path compiles the functional accumulation out entirely (the cycle /
 * product / stall counters do not depend on it).  Both consume the
 * structure-of-arrays substreams of tensor/sparse_block.hh, whose
 * coordinates are pre-biased (x + padX, k - k0) so the inner loop is
 * branch-light streaming over flat arrays.
 */

#ifndef SCNN_SCNN_PE_HH
#define SCNN_SCNN_PE_HH

#include <cstdint>
#include <vector>

#include "arch/config.hh"
#include "common/simd.hh"
#include "nn/layer.hh"
#include "scnn/accumulator.hh"
#include "scnn/tiling.hh"
#include "tensor/sparse_block.hh"

namespace scnn {

/** Timing/work counters from one (PE, output-channel group) pass. */
struct PeGroupStats
{
    uint64_t cycles = 0;        ///< multiplier-array cycles incl stalls
    uint64_t mulOps = 0;        ///< multiplier-array operations
    uint64_t products = 0;      ///< non-zero products computed
    uint64_t landed = 0;        ///< products routed to accumulators
    uint64_t actEntries = 0;    ///< activation entries fetched (IARAM)
    uint64_t wtEntries = 0;     ///< weight entries fetched (FIFO)
    uint64_t conflictStalls = 0;///< extra cycles from bank conflicts
};

/**
 * Private functional accumulation buffer for one (PE, output-channel
 * group) pass: a dense (kc, accRect) volume the PE owns exclusively,
 * so group passes of different PEs can run on different threads.  The
 * simulator drains these into the layer's output plane serially in PE
 * order, which makes the summation order -- and hence every output
 * bit -- independent of the thread count.
 */
struct GroupAccum
{
    TileRect rect;              ///< output-plane window covered
    int kc = 0;                 ///< output channels in the group
    /** (kLocal, ox - x0, oy - y0) dense; 64-byte aligned so vector
     *  gathers/drains never split cache lines. */
    simd::AlignedVec<double> values;

    void
    reset(const TileRect &r, int kcActual)
    {
        rect = r;
        kc = kcActual;
        values.assign(static_cast<size_t>(kc) * rect.area(), 0.0);
    }

    double &
    at(int kLocal, int ox, int oy)
    {
        const size_t idx =
            (static_cast<size_t>(kLocal) * rect.width() +
             static_cast<size_t>(ox - rect.x0)) *
                rect.height() +
            static_cast<size_t>(oy - rect.y0);
        return values[idx];
    }
};

class ProcessingElement
{
  public:
    /**
     * @param cfg     accelerator configuration (uses pe.mulF/mulI and
     *                accumulator banking).
     * @param layer   layer being executed.
     * @param inTile  this PE's disjoint input tile.
     * @param outTile this PE's disjoint output tile (OARAM range).
     * @param accRect full accumulator footprint (outTile plus halo).
     */
    ProcessingElement(const AcceleratorConfig &cfg,
                      const ConvLayerParams &layer, TileRect inTile,
                      TileRect outTile, TileRect accRect);

    /**
     * Execute one output-channel group [k0, k0 + kc).
     *
     * @param acts     this PE's compressed input activations.
     * @param wtBlocks per-input-channel compressed weight blocks for
     *                 this group (shared across PEs); their k0 must
     *                 match the k0 argument.
     * @param k0       first output channel of the group.
     * @param accum    optional private functional accumulator for this
     *                 pass; must be reset() over this PE's accRect and
     *                 the group's channel count.  Landed products are
     *                 added at (k - k0, ox, oy).  When null the
     *                 stats-only kernel runs and no accumulator memory
     *                 is touched.
     */
    PeGroupStats runGroup(const CompressedActTile &acts,
                          const std::vector<CompressedWeightBlock>
                              &wtBlocks,
                          int k0, GroupAccum *accum);

    const TileRect &inTile() const { return inTile_; }
    const TileRect &outTile() const { return outTile_; }
    const TileRect &accRect() const { return accRect_; }

    /** Halo positions per output channel: accumulator area outside
     *  the PE's own output tile. */
    long
    haloAreaPerChannel() const
    {
        return accRect_.area() - overlapArea_;
    }

    /** Own output positions covered by the accumulator footprint. */
    long overlapArea() const { return overlapArea_; }

    AccumulatorBanks &banks() { return banks_; }

  private:
    /**
     * @tparam FixedFI compile-time multiplier-array geometry F = I =
     *         FixedFI (0 = use the configured pe.mulF / pe.mulI at
     *         runtime).  The paper's F = I = 4 gets a dedicated
     *         instantiation whose op loops fully unroll.
     * @tparam Simd interior ops run on the SIMD lane layer
     *         (common/simd.hh): vectorized bank ids, conflict-count
     *         routing and gather/scatter accumulation.  Only selected
     *         when the build tier supports it and SCNN_SIMD is not
     *         forcing the scalar twins; results are bit-identical
     *         either way.
     */
    template <bool Functional, bool Stride1, int FixedFI, bool Simd>
    PeGroupStats runGroupImpl(const CompressedActTile &acts,
                              const std::vector<CompressedWeightBlock>
                                  &wtBlocks,
                              GroupAccum *accum);

    using KernelFn = PeGroupStats (ProcessingElement::*)(
        const CompressedActTile &,
        const std::vector<CompressedWeightBlock> &, GroupAccum *);

    /** Bind the {functional, stats-only} pair for this layer. */
    template <bool Simd>
    void selectKernels(bool stride1, bool fi4);

    const AcceleratorConfig &cfg_;
    const ConvLayerParams &layer_;
    TileRect inTile_;
    TileRect outTile_;
    TileRect accRect_;
    long overlapArea_ = 0;
    AccumulatorBanks banks_;
    KernelFn kernelFunctional_;  ///< selected once per layer
    KernelFn kernelStatsOnly_;   ///< selected once per layer
};

} // namespace scnn

#endif // SCNN_SCNN_PE_HH
