/**
 * @file
 * SCNN(oracle) (Section VI-B): the upper-bound design whose cycle
 * count is the number of multiplications required for Cartesian
 * product-based convolution divided by the number of on-chip
 * multipliers -- i.e. perfect utilization, no fragmentation, no
 * barriers, no contention.
 */

#ifndef SCNN_SCNN_ORACLE_HH
#define SCNN_SCNN_ORACLE_HH

#include <cstdint>

#include "arch/config.hh"
#include "nn/layer.hh"
#include "scnn/result.hh"

namespace scnn {

/**
 * Oracle cycles from a measured SCNN layer result (uses the actual
 * non-zero product count of the simulated workload).
 */
uint64_t oracleCycles(const LayerResult &scnnResult,
                      const AcceleratorConfig &cfg);

/**
 * Closed-form oracle cycles from the layer's density profile (expected
 * non-zero multiplies / multipliers); used by the analytical model.
 */
double oracleCyclesExpected(const ConvLayerParams &layer,
                            const AcceleratorConfig &cfg);

} // namespace scnn

#endif // SCNN_SCNN_ORACLE_HH
