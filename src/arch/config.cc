#include "arch/config.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace scnn {

const char *
archKindName(ArchKind kind)
{
    switch (kind) {
      case ArchKind::SCNN:
        return "SCNN";
      case ArchKind::DCNN:
        return "DCNN";
      case ArchKind::DCNN_OPT:
        return "DCNN-opt";
    }
    return "?";
}

std::vector<std::string>
AcceleratorConfig::validate() const
{
    std::vector<std::string> errors;
    auto err = [&](const std::string &what) {
        errors.push_back(strfmt("config %s: ", name.c_str()) + what);
    };

    if (peRows <= 0 || peCols <= 0)
        err(strfmt("empty PE array (%dx%d)", peRows, peCols));
    if (kind == ArchKind::SCNN) {
        if (pe.mulF <= 0 || pe.mulI <= 0)
            err(strfmt("empty multiplier array (F=%d, I=%d)",
                       pe.mulF, pe.mulI));
        if (pe.accumBanks <= 0 || pe.accumEntriesPerBank <= 0)
            err(strfmt("empty accumulator (%d banks x %d entries)",
                       pe.accumBanks, pe.accumEntriesPerBank));
        if (pe.iaramBytes <= 0 || pe.oaramBytes <= 0)
            err(strfmt("empty activation RAM (IARAM %d B, OARAM %d B)",
                       pe.iaramBytes, pe.oaramBytes));
        if (pe.weightFifoBytes <= 0)
            err("empty weight FIFO");
        if (pe.xbarQueueDepth <= 0)
            err("empty crossbar queue");
        if (pe.kcCap < 0)
            err(strfmt("negative Kc cap %d", pe.kcCap));
    } else {
        if (pe.dotWidth <= 0)
            err(strfmt("empty dot-product unit (width %d)",
                       pe.dotWidth));
        if (denseSramBytes == 0)
            err("no dense SRAM");
    }
    if (dramBitsPerCycle <= 0)
        err("no DRAM bandwidth");
    if (ppuLanes <= 0 || haloLanes <= 0)
        err(strfmt("bad PPU/halo lanes (%d/%d)", ppuLanes, haloLanes));
    if (clockGhz <= 0.0)
        err("non-positive clock frequency");
    return errors;
}

void
AcceleratorConfig::validateOrDie() const
{
    const std::vector<std::string> errors = validate();
    if (!errors.empty())
        fatal("%s", joinConfigErrors(errors).c_str());
}

std::string
joinConfigErrors(const std::vector<std::string> &errors)
{
    std::string joined;
    for (const auto &e : errors) {
        if (!joined.empty())
            joined += "; ";
        joined += e;
    }
    return joined;
}

bool
operator==(const PeConfig &a, const PeConfig &b)
{
    return a.mulF == b.mulF && a.mulI == b.mulI &&
           a.accumBanks == b.accumBanks &&
           a.accumEntriesPerBank == b.accumEntriesPerBank &&
           a.xbarQueueDepth == b.xbarQueueDepth &&
           a.iaramBytes == b.iaramBytes &&
           a.oaramBytes == b.oaramBytes &&
           a.weightFifoBytes == b.weightFifoBytes &&
           a.kcCap == b.kcCap && a.inputHalos == b.inputHalos &&
           a.dotWidth == b.dotWidth &&
           a.denseInBufBytes == b.denseInBufBytes &&
           a.denseWtBufBytes == b.denseWtBufBytes &&
           a.denseAccBufBytes == b.denseAccBufBytes;
}

bool
operator!=(const PeConfig &a, const PeConfig &b)
{
    return !(a == b);
}

bool
operator==(const AcceleratorConfig &a, const AcceleratorConfig &b)
{
    // Name excluded on purpose: equality means "the same hardware",
    // and benches/tests routinely mutate parameters without renaming.
    return a.kind == b.kind && a.peRows == b.peRows &&
           a.peCols == b.peCols && a.pe == b.pe &&
           a.clockGhz == b.clockGhz &&
           a.dramBitsPerCycle == b.dramBitsPerCycle &&
           a.denseSramBytes == b.denseSramBytes &&
           a.ppuLanes == b.ppuLanes && a.haloLanes == b.haloLanes;
}

bool
operator!=(const AcceleratorConfig &a, const AcceleratorConfig &b)
{
    return !(a == b);
}

AcceleratorConfig
scnnConfig()
{
    AcceleratorConfig cfg;
    cfg.name = "SCNN";
    cfg.kind = ArchKind::SCNN;
    cfg.validateOrDie();
    return cfg;
}

AcceleratorConfig
dcnnConfig()
{
    AcceleratorConfig cfg;
    cfg.name = "DCNN";
    cfg.kind = ArchKind::DCNN;
    cfg.validateOrDie();
    return cfg;
}

AcceleratorConfig
dcnnOptConfig()
{
    AcceleratorConfig cfg;
    cfg.name = "DCNN-opt";
    cfg.kind = ArchKind::DCNN_OPT;
    cfg.validateOrDie();
    return cfg;
}

const std::vector<std::string> &
configFieldNames()
{
    static const std::vector<std::string> fields = {
        "pe_rows", "pe_cols", "mul_f", "mul_i", "accum_banks",
        "accum_entries_per_bank", "xbar_queue_depth", "iaram_bytes",
        "oaram_bytes", "weight_fifo_bytes", "kc_cap", "input_halos",
        "ppu_lanes", "halo_lanes", "dram_bits_per_cycle",
    };
    return fields;
}

bool
setConfigField(AcceleratorConfig &cfg, const std::string &field,
               int64_t value)
{
    const int iv = static_cast<int>(value);
    if (field == "pe_rows") cfg.peRows = iv;
    else if (field == "pe_cols") cfg.peCols = iv;
    else if (field == "mul_f") cfg.pe.mulF = iv;
    else if (field == "mul_i") cfg.pe.mulI = iv;
    else if (field == "accum_banks") cfg.pe.accumBanks = iv;
    else if (field == "accum_entries_per_bank")
        cfg.pe.accumEntriesPerBank = iv;
    else if (field == "xbar_queue_depth") cfg.pe.xbarQueueDepth = iv;
    else if (field == "iaram_bytes") cfg.pe.iaramBytes = iv;
    else if (field == "oaram_bytes") cfg.pe.oaramBytes = iv;
    else if (field == "weight_fifo_bytes")
        cfg.pe.weightFifoBytes = iv;
    else if (field == "kc_cap") cfg.pe.kcCap = iv;
    else if (field == "input_halos") cfg.pe.inputHalos = (value != 0);
    else if (field == "ppu_lanes") cfg.ppuLanes = iv;
    else if (field == "halo_lanes") cfg.haloLanes = iv;
    else if (field == "dram_bits_per_cycle")
        cfg.dramBitsPerCycle = iv;
    else return false;
    return true;
}

bool
getConfigField(const AcceleratorConfig &cfg, const std::string &field,
               int64_t &value)
{
    if (field == "pe_rows") value = cfg.peRows;
    else if (field == "pe_cols") value = cfg.peCols;
    else if (field == "mul_f") value = cfg.pe.mulF;
    else if (field == "mul_i") value = cfg.pe.mulI;
    else if (field == "accum_banks") value = cfg.pe.accumBanks;
    else if (field == "accum_entries_per_bank")
        value = cfg.pe.accumEntriesPerBank;
    else if (field == "xbar_queue_depth")
        value = cfg.pe.xbarQueueDepth;
    else if (field == "iaram_bytes") value = cfg.pe.iaramBytes;
    else if (field == "oaram_bytes") value = cfg.pe.oaramBytes;
    else if (field == "weight_fifo_bytes")
        value = cfg.pe.weightFifoBytes;
    else if (field == "kc_cap") value = cfg.pe.kcCap;
    else if (field == "input_halos")
        value = cfg.pe.inputHalos ? 1 : 0;
    else if (field == "ppu_lanes") value = cfg.ppuLanes;
    else if (field == "halo_lanes") value = cfg.haloLanes;
    else if (field == "dram_bits_per_cycle")
        value = cfg.dramBitsPerCycle;
    else return false;
    return true;
}

std::string
configSignature(const AcceleratorConfig &cfg)
{
    // Every field operator== compares, in a fixed order; covers the
    // dense-PE parameters too so DCNN-base sweeps hash correctly.
    std::string sig = archKindName(cfg.kind);
    const long long ints[] = {
        cfg.peRows, cfg.peCols, cfg.pe.mulF, cfg.pe.mulI,
        cfg.pe.accumBanks, cfg.pe.accumEntriesPerBank,
        cfg.pe.xbarQueueDepth, cfg.pe.iaramBytes, cfg.pe.oaramBytes,
        cfg.pe.weightFifoBytes, cfg.pe.kcCap,
        cfg.pe.inputHalos ? 1 : 0, cfg.pe.dotWidth,
        cfg.pe.denseInBufBytes, cfg.pe.denseWtBufBytes,
        cfg.pe.denseAccBufBytes, cfg.dramBitsPerCycle,
        static_cast<long long>(cfg.denseSramBytes), cfg.ppuLanes,
        cfg.haloLanes,
    };
    for (long long v : ints)
        sig += strfmt(",%lld", v);
    sig += strfmt(",%.17g", cfg.clockGhz);
    return sig;
}

AcceleratorConfig
scnnWithPeGrid(int rows, int cols)
{
    AcceleratorConfig base = scnnConfig();
    const int totalMuls = base.multipliers();
    const uint64_t totalActRam = base.activationSramBytes();

    const int numPes = rows * cols;
    SCNN_ASSERT(numPes > 0 && totalMuls % numPes == 0,
                "PE grid %dx%d does not divide %d multipliers",
                rows, cols, totalMuls);
    const int perPe = totalMuls / numPes;
    // Factor the per-PE multiplier count into the most square F x I
    // geometry (F >= I), e.g. 256 -> 16x16, 32 -> 8x4.
    int mulI = 1;
    for (int i = 1; i <= perPe; ++i) {
        if (perPe % i == 0 && i * i <= perPe)
            mulI = i;
    }
    const int mulF = perPe / mulI;

    AcceleratorConfig cfg = base;
    cfg.name = strfmt("SCNN-%dx%d", rows, cols);
    cfg.peRows = rows;
    cfg.peCols = cols;
    cfg.pe.mulF = mulF;
    cfg.pe.mulI = mulI;
    cfg.pe.accumBanks = 2 * perPe;
    cfg.pe.iaramBytes =
        static_cast<int>(totalActRam / 2 / static_cast<uint64_t>(numPes));
    cfg.pe.oaramBytes = cfg.pe.iaramBytes;
    // Scale the weight FIFO with the array so replayable block sizes
    // stay proportional.
    cfg.pe.weightFifoBytes =
        scnnConfig().pe.weightFifoBytes * perPe / 16;
    cfg.validateOrDie();
    return cfg;
}

AcceleratorConfig
scnnWithPeGridFixedAccum(int rows, int cols)
{
    AcceleratorConfig cfg = scnnWithPeGrid(rows, cols);
    cfg.name = strfmt("SCNN-%dx%d-fixedacc", rows, cols);
    // Table II accumulator macro: 1024 total entries per PE.
    const int totalEntries = 32 * 32;
    cfg.pe.accumEntriesPerBank =
        std::max(1, totalEntries / cfg.pe.accumBanks);
    // Keep the Kc cap at the Table II value rather than the (now
    // tiny) per-bank entry count.
    cfg.pe.kcCap = 32;
    cfg.validateOrDie();
    return cfg;
}

} // namespace scnn
