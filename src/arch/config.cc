#include "arch/config.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace scnn {

const char *
archKindName(ArchKind kind)
{
    switch (kind) {
      case ArchKind::SCNN:
        return "SCNN";
      case ArchKind::DCNN:
        return "DCNN";
      case ArchKind::DCNN_OPT:
        return "DCNN-opt";
    }
    return "?";
}

void
AcceleratorConfig::validate() const
{
    if (peRows <= 0 || peCols <= 0)
        fatal("config %s: empty PE array", name.c_str());
    if (kind == ArchKind::SCNN) {
        if (pe.mulF <= 0 || pe.mulI <= 0)
            fatal("config %s: empty multiplier array", name.c_str());
        if (pe.accumBanks <= 0 || pe.accumEntriesPerBank <= 0)
            fatal("config %s: empty accumulator", name.c_str());
        if (pe.iaramBytes <= 0 || pe.oaramBytes <= 0)
            fatal("config %s: empty activation RAM", name.c_str());
    } else {
        if (pe.dotWidth <= 0)
            fatal("config %s: empty dot-product unit", name.c_str());
        if (denseSramBytes == 0)
            fatal("config %s: no dense SRAM", name.c_str());
    }
    if (dramBitsPerCycle <= 0)
        fatal("config %s: no DRAM bandwidth", name.c_str());
    if (ppuLanes <= 0 || haloLanes <= 0)
        fatal("config %s: bad PPU/halo lanes", name.c_str());
}

AcceleratorConfig
scnnConfig()
{
    AcceleratorConfig cfg;
    cfg.name = "SCNN";
    cfg.kind = ArchKind::SCNN;
    cfg.validate();
    return cfg;
}

AcceleratorConfig
dcnnConfig()
{
    AcceleratorConfig cfg;
    cfg.name = "DCNN";
    cfg.kind = ArchKind::DCNN;
    cfg.validate();
    return cfg;
}

AcceleratorConfig
dcnnOptConfig()
{
    AcceleratorConfig cfg;
    cfg.name = "DCNN-opt";
    cfg.kind = ArchKind::DCNN_OPT;
    cfg.validate();
    return cfg;
}

AcceleratorConfig
scnnWithPeGrid(int rows, int cols)
{
    AcceleratorConfig base = scnnConfig();
    const int totalMuls = base.multipliers();
    const uint64_t totalActRam = base.activationSramBytes();

    const int numPes = rows * cols;
    SCNN_ASSERT(numPes > 0 && totalMuls % numPes == 0,
                "PE grid %dx%d does not divide %d multipliers",
                rows, cols, totalMuls);
    const int perPe = totalMuls / numPes;
    // Factor the per-PE multiplier count into the most square F x I
    // geometry (F >= I), e.g. 256 -> 16x16, 32 -> 8x4.
    int mulI = 1;
    for (int i = 1; i <= perPe; ++i) {
        if (perPe % i == 0 && i * i <= perPe)
            mulI = i;
    }
    const int mulF = perPe / mulI;

    AcceleratorConfig cfg = base;
    cfg.name = strfmt("SCNN-%dx%d", rows, cols);
    cfg.peRows = rows;
    cfg.peCols = cols;
    cfg.pe.mulF = mulF;
    cfg.pe.mulI = mulI;
    cfg.pe.accumBanks = 2 * perPe;
    cfg.pe.iaramBytes =
        static_cast<int>(totalActRam / 2 / static_cast<uint64_t>(numPes));
    cfg.pe.oaramBytes = cfg.pe.iaramBytes;
    // Scale the weight FIFO with the array so replayable block sizes
    // stay proportional.
    cfg.pe.weightFifoBytes =
        scnnConfig().pe.weightFifoBytes * perPe / 16;
    cfg.validate();
    return cfg;
}

AcceleratorConfig
scnnWithPeGridFixedAccum(int rows, int cols)
{
    AcceleratorConfig cfg = scnnWithPeGrid(rows, cols);
    cfg.name = strfmt("SCNN-%dx%d-fixedacc", rows, cols);
    // Table II accumulator macro: 1024 total entries per PE.
    const int totalEntries = 32 * 32;
    cfg.pe.accumEntriesPerBank =
        std::max(1, totalEntries / cfg.pe.accumBanks);
    // Keep the Kc cap at the Table II value rather than the (now
    // tiny) per-bank entry count.
    cfg.pe.kcCap = 32;
    cfg.validate();
    return cfg;
}

} // namespace scnn
