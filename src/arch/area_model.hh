/**
 * @file
 * Area model (paper Tables III and IV).
 *
 * The paper obtains areas from SystemC -> Catapult HLS -> Design
 * Compiler synthesis in TSMC 16 nm and feeds the per-structure results
 * into TimeLoop as constants.  We reproduce the published constants
 * and scale them with configuration parameters: SRAM area per KB,
 * multiplier area per ALU, crossbar area per port pair, accumulator
 * area per KB (latch arrays, higher cost due to 32-way banking), and a
 * fixed per-PE "other" term (control, coordinate computation, PPU).
 *
 * Calibration targets (Table III): IARAM+OARAM 20 KB -> 0.031 mm2,
 * weight FIFO 0.5 KB -> 0.004, 16 multipliers -> 0.008, 16x32 crossbar
 * -> 0.026, 6 KB accumulator -> 0.036, other -> 0.019; PE total 0.123,
 * 64-PE SCNN ~7.9 mm2, DCNN ~5.9 mm2 (Table IV).
 */

#ifndef SCNN_ARCH_AREA_MODEL_HH
#define SCNN_ARCH_AREA_MODEL_HH

#include <map>
#include <string>

#include "arch/config.hh"

namespace scnn {

/** Component-labelled area result (mm^2). */
struct AreaBreakdown
{
    std::map<std::string, double> components;

    double total() const;
};

class AreaModel
{
  public:
    // mm^2 per KB of standard dual-ported SRAM (10 KB class).
    double sramMm2PerKb = 0.031 / 20.0;
    // mm^2 per KB of dense multi-bank SRAM (2 MB class).
    double bigSramMm2PerKb = 0.0020;
    // mm^2 per KB of latch-array buffer (weight FIFO).
    double latchMm2PerKb = 0.004 / 0.5;
    // mm^2 per 16-bit multiplier ALU.
    double multMm2 = 0.008 / 16.0;
    // mm^2 per (input port x output port) of the scatter crossbar.
    double xbarMm2PerPortPair = 0.026 / (16.0 * 32.0);
    // mm^2 per KB of banked accumulator storage (incl. adders).
    double accumMm2PerKb = 0.036 / 6.0;
    // Fixed per-PE control/coordinate/PPU area.
    double scnnOtherMm2 = 0.019;
    // Fixed per-PE control for the dense PE (simpler: no coordinate
    // computation or compression logic).
    double dcnnOtherMm2 = 0.010;
    // Chip-level sequencer + DRAM interface.
    double chipOverheadMm2 = 0.03;

    /** Accumulator bytes per SCNN PE (banks * entries * 24-bit, double
     *  buffered). */
    static uint64_t accumulatorBytes(const PeConfig &pe);

    /** Per-PE area breakdown for the given configuration. */
    AreaBreakdown peArea(const AcceleratorConfig &cfg) const;

    /** Whole-chip area breakdown. */
    AreaBreakdown chipArea(const AcceleratorConfig &cfg) const;
};

} // namespace scnn

#endif // SCNN_ARCH_AREA_MODEL_HH
