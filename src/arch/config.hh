/**
 * @file
 * Accelerator configurations (paper Tables II and IV).
 *
 * Three architectures are modelled:
 *  - SCNN:     64 PEs x (4x4 multiplier array), PT-IS-CP-sparse, 32
 *              accumulator banks per PE, 10 KB IARAM + 10 KB OARAM per
 *              PE (1 MB activation RAM chip-wide), 50-entry weight
 *              FIFO.
 *  - DCNN:     same 1024 multipliers arranged as 64 PEs with a 16-wide
 *              dot-product unit each (PT-IS-DP-dense), 2 MB dense
 *              activation SRAM.
 *  - DCNN-opt: DCNN plus zero-operand multiplier gating and compressed
 *              DRAM activation traffic (energy optimizations only).
 *
 * The PE-granularity study (Section VI-C) re-arranges the same 1024
 * multipliers into fewer, larger PEs via scnnWithPeGrid().
 */

#ifndef SCNN_ARCH_CONFIG_HH
#define SCNN_ARCH_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

namespace scnn {

/** Which accelerator architecture a configuration describes. */
enum class ArchKind
{
    SCNN,
    DCNN,
    DCNN_OPT,
};

/** @return printable name of an ArchKind. */
const char *archKindName(ArchKind kind);

/** Per-PE microarchitecture parameters. */
struct PeConfig
{
    // --- SCNN PE (Fig. 6, Table II) ---
    int mulF = 4;                 ///< weight-side vector width F
    int mulI = 4;                 ///< activation-side vector width I
    int accumBanks = 32;          ///< A (paper: A = 2 * F * I)
    int accumEntriesPerBank = 32; ///< entries per accumulator bank
    int xbarQueueDepth = 4;       ///< per-bank crossbar queue entries
    int iaramBytes = 10 * 1024;   ///< sparse input activation RAM
    int oaramBytes = 10 * 1024;   ///< sparse output activation RAM
    int weightFifoBytes = 500;    ///< 50-entry weight FIFO (Table II)

    /**
     * Cap on the output-channel group size Kc; 0 means the default
     * policy (cap at accumEntriesPerBank).  Used by the Kc-policy
     * ablation bench.
     */
    int kcCap = 0;

    /**
     * Resolve cross-tile dependencies with input halos instead of
     * output halos (Section III-A): each PE stores a replicated input
     * footprint covering its private output tile, computes edge
     * products redundantly, and skips the neighbour partial-sum
     * exchange.  The paper uses output halos and claims the
     * difference is minimal; the halo ablation bench quantifies it.
     */
    bool inputHalos = false;

    // --- DCNN PE ---
    int dotWidth = 16;            ///< dot-product width (multipliers/PE)
    int denseInBufBytes = 2 * 1024;  ///< per-PE dense input buffer
    int denseWtBufBytes = 1 * 1024;  ///< per-PE dense weight buffer
    int denseAccBufBytes = 2 * 1024; ///< per-PE dense accumulator buffer

    /** SCNN multipliers in this PE. */
    int multipliers() const { return mulF * mulI; }
};

/** Whole-accelerator configuration. */
struct AcceleratorConfig
{
    std::string name = "SCNN";
    ArchKind kind = ArchKind::SCNN;

    int peRows = 8;
    int peCols = 8;
    PeConfig pe;

    double clockGhz = 1.0;        ///< Section IV: "slightly more than
                                  ///  1 GHz"; used only for reporting
    /**
     * DRAM bandwidth bound: 1024 bits/cycle = 128 GB/s at 1 GHz
     * (HBM-class, consistent with the 2 pJ/bit access energy), enough
     * to hide tiled activation traffic behind compute as Section IV
     * assumes.
     */
    int dramBitsPerCycle = 1024;

    /** DCNN/DCNN-opt dense inter-layer activation SRAM (Table IV). */
    uint64_t denseSramBytes = 2ull * 1024 * 1024;

    /**
     * PPU drain throughput: output elements processed per cycle.
     * The PPU reads the drained accumulator banks in parallel, so it
     * sustains a wide scan (half the bank count by default).
     */
    int ppuLanes = 16;

    /** Neighbour-halo link width: elements exchanged per cycle. */
    int haloLanes = 8;

    int numPes() const { return peRows * peCols; }

    /** Total multipliers on chip. */
    int
    multipliers() const
    {
        const int perPe = (kind == ArchKind::SCNN)
            ? pe.multipliers() : pe.dotWidth;
        return numPes() * perPe;
    }

    /** Total on-chip activation storage in bytes. */
    uint64_t
    activationSramBytes() const
    {
        if (kind == ArchKind::SCNN) {
            return static_cast<uint64_t>(numPes()) *
                   (pe.iaramBytes + pe.oaramBytes);
        }
        return denseSramBytes;
    }

    /**
     * Check the configuration for inconsistent parameters.
     *
     * @return one descriptive message per problem found (empty when
     *         the configuration is usable).  The backend registry
     *         refuses to construct a simulator from a configuration
     *         with a non-empty error list; callers that cannot
     *         recover use validateOrDie() instead.
     */
    std::vector<std::string> validate() const;

    /** fatal() with the joined validate() errors, if any. */
    void validateOrDie() const;
};

/** Field-wise equality (used e.g. to match oracle/SCNN runs). */
bool operator==(const PeConfig &a, const PeConfig &b);
bool operator!=(const PeConfig &a, const PeConfig &b);
bool operator==(const AcceleratorConfig &a, const AcceleratorConfig &b);
bool operator!=(const AcceleratorConfig &a, const AcceleratorConfig &b);

/** Join a validate() error list into one "; "-separated message. */
std::string joinConfigErrors(const std::vector<std::string> &errors);

/**
 * The integer configuration fields addressable by snake_case name --
 * the vocabulary shared by the DSE sweep axes (src/dse/spec) and the
 * wire protocol's per-backend "config" override (docs/PROTOCOL.md).
 * Booleans (input_halos) are carried as 0/1.
 */
const std::vector<std::string> &configFieldNames();

/**
 * Set one named field on a configuration.
 *
 * @return false when `field` is not in configFieldNames(); the value
 *         is applied unchecked otherwise (callers run validate()).
 */
bool setConfigField(AcceleratorConfig &cfg, const std::string &field,
                    int64_t value);

/** Read one named field; false when `field` is unknown. */
bool getConfigField(const AcceleratorConfig &cfg,
                    const std::string &field, int64_t &value);

/**
 * Canonical signature of every parameter of a configuration (the name
 * is excluded, matching operator==).  Equal signatures imply equal
 * simulation behaviour; shardForRequest() folds this into the routing
 * hash for config-override requests.
 */
std::string configSignature(const AcceleratorConfig &cfg);

/** The paper's SCNN configuration (Table II). */
AcceleratorConfig scnnConfig();

/** The paper's dense baseline (Table IV). */
AcceleratorConfig dcnnConfig();

/** DCNN plus the two energy optimizations (Table IV). */
AcceleratorConfig dcnnOptConfig();

/**
 * SCNN with the same 1024 multipliers re-arranged as a rows x cols PE
 * grid (Section VI-C): per-PE F = I = sqrt(1024 / #PEs), accumulator
 * banking kept at A = 2 * F * I, per-bank entries fixed (so total
 * accumulator capacity scales with PE size), and the 1 MB activation
 * RAM re-divided across PEs.
 */
AcceleratorConfig scnnWithPeGrid(int rows, int cols);

/**
 * Alternative scaling for the Section VI-C study: banking bandwidth
 * still scales (A = 2 * F * I) but the per-PE accumulator *capacity*
 * is pinned to the Table II design's 1024 entries (the synthesized
 * bank macro is reused, not regrown).  Under this assumption larger
 * PEs are forced to small output-channel groups (Kc) on large tiles,
 * which reproduces the paper's finding that few big PEs lose to many
 * small ones.  See EXPERIMENTS.md for the comparison of both
 * assumptions.
 */
AcceleratorConfig scnnWithPeGridFixedAccum(int rows, int cols);

} // namespace scnn

#endif // SCNN_ARCH_CONFIG_HH
