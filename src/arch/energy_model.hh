/**
 * @file
 * Event-based energy model.
 *
 * The paper applies per-event energies derived from 16 nm synthesis to
 * the event counts its simulator / TimeLoop produce (Section V).  We
 * reproduce that methodology: both simulators emit an EnergyEvents
 * record, and this model converts it to picojoules using a documented
 * table of per-event constants.
 *
 * Constant provenance: the values follow the usual published 16 nm
 * scaling of the Horowitz ISSCC'14 45 nm numbers (a 16-bit multiply in
 * the 0.1-0.2 pJ range, small-SRAM accesses a fraction of a pJ, DRAM
 * hundreds of pJ per 16-bit word).  Absolute joules are not the
 * reproduction target -- the paper reports energy *relative to DCNN*
 * -- but the cost ordering DRAM >> large SRAM >> small SRAM/crossbar >>
 * ALU that drives its conclusions is preserved.  All constants are
 * mutable fields so ablation benches can perturb them.
 */

#ifndef SCNN_ARCH_ENERGY_MODEL_HH
#define SCNN_ARCH_ENERGY_MODEL_HH

#include <map>
#include <string>

#include "arch/config.hh"

namespace scnn {

/**
 * Raw event counts from a simulated layer.  Doubles rather than
 * integers because the analytical model produces expectations.
 */
struct EnergyEvents
{
    double mults = 0;           ///< executed 16-bit multiplies
    double gatedMults = 0;      ///< gated / idle multiplier slots
    double adds = 0;            ///< 24-bit accumulations
    double accBankAccesses = 0; ///< SCNN accumulator read-add-write ops
    double xbarTransfers = 0;   ///< products through the scatter xbar
    double coordComputes = 0;   ///< output coordinate computations

    double iaramReadBits = 0;   ///< SCNN IARAM reads (data+coord bits)
    double oaramReadBits = 0;
    double oaramWriteBits = 0;
    double wfifoReadBits = 0;   ///< weight FIFO reads

    double peBufReadBits = 0;   ///< DCNN per-PE buffer reads
    double peBufWriteBits = 0;
    double denseSramReadBits = 0;  ///< DCNN 2MB activation SRAM
    double denseSramWriteBits = 0;

    double dramBits = 0;        ///< off-chip traffic, both directions
    double haloBits = 0;        ///< neighbour halo exchange
    double ppuElements = 0;     ///< ReLU + encode operations

    EnergyEvents &operator+=(const EnergyEvents &o);
    EnergyEvents &scale(double f);
};

/** Per-event energy constants (picojoules). */
class EnergyModel
{
  public:
    // ALU events.  The 16-bit multiply dominates per-MAC on-chip
    // energy in this technology estimate (as in the paper, where
    // DCNN-opt's zero-operand gating alone buys a large fraction of
    // its 2x improvement).
    double multPj = 0.32;        ///< 16-bit multiply
    double gatedMultPj = 0.025;  ///< gated multiplier slot (clocking)
    double addPj = 0.06;         ///< 24-bit add
    double coordPj = 0.02;       ///< output coordinate computation

    // SCNN scatter/accumulate
    double xbarPj = 0.17;        ///< F*I -> A arbitrated crossbar hop
    double accBankPj = 0.22;     ///< bank read-add-write (24-bit)

    // Storage (per bit)
    double smallBufPjPerBit = 0.002;  ///< <=1 KB latch arrays (FIFO)
    double sram10KPjPerBit = 0.015;   ///< ~10 KB SRAM (IARAM/OARAM)
    double sram32KPjPerBit = 0.022;   ///< ~32 KB SRAM
    double sram2MPjPerBit = 0.060;    ///< multi-bank 2 MB SRAM
    double dramPjPerBit = 2.0;        ///< HBM-class DRAM access
    double haloPjPerBit = 0.070;      ///< nearest-neighbour link
    double ppuElementPj = 0.05;       ///< ReLU + RLE encode per value

    /** Total energy (pJ) of an event record under config cfg. */
    double total(const EnergyEvents &ev,
                 const AcceleratorConfig &cfg) const;

    /** Per-category breakdown (pJ), keys stable for tests/benches. */
    std::map<std::string, double>
    breakdown(const EnergyEvents &ev,
              const AcceleratorConfig &cfg) const;

    /**
     * Per-bit access energy for an SRAM of the given capacity
     * (piecewise interpolation over the constants above).
     */
    double sramPjPerBit(uint64_t capacityBytes) const;
};

} // namespace scnn

#endif // SCNN_ARCH_ENERGY_MODEL_HH
