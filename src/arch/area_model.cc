#include "arch/area_model.hh"

namespace scnn {

double
AreaBreakdown::total() const
{
    double sum = 0.0;
    for (const auto &[k, v] : components)
        sum += v;
    return sum;
}

uint64_t
AreaModel::accumulatorBytes(const PeConfig &pe)
{
    // 24-bit entries, double buffered (Section IV).
    const uint64_t entries = static_cast<uint64_t>(pe.accumBanks) *
                             pe.accumEntriesPerBank;
    return entries * 3 * 2;
}

AreaBreakdown
AreaModel::peArea(const AcceleratorConfig &cfg) const
{
    AreaBreakdown area;
    const PeConfig &pe = cfg.pe;

    if (cfg.kind == ArchKind::SCNN) {
        const double actKb =
            static_cast<double>(pe.iaramBytes + pe.oaramBytes) / 1024.0;
        area.components["iaram_oaram"] = actKb * sramMm2PerKb;
        area.components["weight_fifo"] =
            static_cast<double>(pe.weightFifoBytes) / 1024.0 *
            latchMm2PerKb;
        area.components["multiplier_array"] =
            pe.multipliers() * multMm2;
        area.components["scatter_network"] =
            static_cast<double>(pe.multipliers()) * pe.accumBanks *
            xbarMm2PerPortPair;
        area.components["accumulator_buffers"] =
            static_cast<double>(accumulatorBytes(pe)) / 1024.0 *
            accumMm2PerKb;
        area.components["other"] = scnnOtherMm2;
    } else {
        const double bufKb =
            static_cast<double>(pe.denseInBufBytes +
                                pe.denseWtBufBytes +
                                pe.denseAccBufBytes) / 1024.0;
        area.components["pe_buffers"] = bufKb * sramMm2PerKb;
        area.components["multiplier_array"] = pe.dotWidth * multMm2;
        // Dot-product reduction tree: one adder per multiplier,
        // folded into the ALU estimate at ~25% of a multiplier.
        area.components["adder_tree"] = pe.dotWidth * multMm2 * 0.25;
        area.components["other"] = dcnnOtherMm2;
    }
    return area;
}

AreaBreakdown
AreaModel::chipArea(const AcceleratorConfig &cfg) const
{
    AreaBreakdown area;
    const AreaBreakdown pe = peArea(cfg);
    for (const auto &[k, v] : pe.components)
        area.components["pe." + k] = v * cfg.numPes();
    if (cfg.kind != ArchKind::SCNN) {
        area.components["dense_sram"] =
            static_cast<double>(cfg.denseSramBytes) / 1024.0 *
            bigSramMm2PerKb;
    }
    area.components["chip_overhead"] = chipOverheadMm2;
    return area;
}

} // namespace scnn
