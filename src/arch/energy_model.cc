#include "arch/energy_model.hh"

#include <cmath>

namespace scnn {

EnergyEvents &
EnergyEvents::operator+=(const EnergyEvents &o)
{
    mults += o.mults;
    gatedMults += o.gatedMults;
    adds += o.adds;
    accBankAccesses += o.accBankAccesses;
    xbarTransfers += o.xbarTransfers;
    coordComputes += o.coordComputes;
    iaramReadBits += o.iaramReadBits;
    oaramReadBits += o.oaramReadBits;
    oaramWriteBits += o.oaramWriteBits;
    wfifoReadBits += o.wfifoReadBits;
    peBufReadBits += o.peBufReadBits;
    peBufWriteBits += o.peBufWriteBits;
    denseSramReadBits += o.denseSramReadBits;
    denseSramWriteBits += o.denseSramWriteBits;
    dramBits += o.dramBits;
    haloBits += o.haloBits;
    ppuElements += o.ppuElements;
    return *this;
}

EnergyEvents &
EnergyEvents::scale(double f)
{
    mults *= f;
    gatedMults *= f;
    adds *= f;
    accBankAccesses *= f;
    xbarTransfers *= f;
    coordComputes *= f;
    iaramReadBits *= f;
    oaramReadBits *= f;
    oaramWriteBits *= f;
    wfifoReadBits *= f;
    peBufReadBits *= f;
    peBufWriteBits *= f;
    denseSramReadBits *= f;
    denseSramWriteBits *= f;
    dramBits *= f;
    haloBits *= f;
    ppuElements *= f;
    return *this;
}

double
EnergyModel::sramPjPerBit(uint64_t capacityBytes) const
{
    // Piecewise-linear in log-capacity between the anchor points.
    struct Pt { double kb; double pj; };
    const Pt pts[] = {
        {1.0, smallBufPjPerBit},
        {10.0, sram10KPjPerBit},
        {32.0, sram32KPjPerBit},
        {2048.0, sram2MPjPerBit},
    };
    const double kb =
        std::max(0.0625, static_cast<double>(capacityBytes) / 1024.0);
    if (kb <= pts[0].kb)
        return pts[0].pj;
    for (size_t i = 1; i < std::size(pts); ++i) {
        if (kb <= pts[i].kb) {
            const double t = (std::log2(kb) - std::log2(pts[i - 1].kb)) /
                             (std::log2(pts[i].kb) -
                              std::log2(pts[i - 1].kb));
            return pts[i - 1].pj + t * (pts[i].pj - pts[i - 1].pj);
        }
    }
    return pts[std::size(pts) - 1].pj;
}

std::map<std::string, double>
EnergyModel::breakdown(const EnergyEvents &ev,
                       const AcceleratorConfig &cfg) const
{
    std::map<std::string, double> out;

    out["alu"] = ev.mults * multPj + ev.gatedMults * gatedMultPj +
                 ev.adds * addPj + ev.coordComputes * coordPj;
    out["scatter_accum"] =
        ev.xbarTransfers * xbarPj + ev.accBankAccesses * accBankPj;

    const double iaramPj = sramPjPerBit(cfg.pe.iaramBytes);
    const double oaramPj = sramPjPerBit(cfg.pe.oaramBytes);
    out["act_ram"] = ev.iaramReadBits * iaramPj +
                     (ev.oaramReadBits + ev.oaramWriteBits) * oaramPj;
    out["weight_fifo"] = ev.wfifoReadBits * smallBufPjPerBit;

    const double peBufPj = sramPjPerBit(cfg.pe.denseInBufBytes);
    out["pe_buffers"] =
        (ev.peBufReadBits + ev.peBufWriteBits) * peBufPj;
    const double denseSramPj = sramPjPerBit(cfg.denseSramBytes);
    out["dense_sram"] =
        (ev.denseSramReadBits + ev.denseSramWriteBits) * denseSramPj;

    out["dram"] = ev.dramBits * dramPjPerBit;
    out["halo"] = ev.haloBits * haloPjPerBit;
    out["ppu"] = ev.ppuElements * ppuElementPj;
    return out;
}

double
EnergyModel::total(const EnergyEvents &ev,
                   const AcceleratorConfig &cfg) const
{
    double sum = 0.0;
    for (const auto &[k, v] : breakdown(ev, cfg))
        sum += v;
    return sum;
}

} // namespace scnn
