/**
 * @file
 * Streaming Pareto-frontier extraction over the design-space
 * objectives (cycles, energy, area), all minimized.
 *
 * The DSE funnel feeds evaluated configuration points into a
 * ParetoFront one at a time (sweeps are resumable streams, so the
 * engine cannot assume it sees the whole population at once).  The
 * frontier is the non-dominated set: a point is dropped exactly when
 * some other point is no worse on every objective and strictly better
 * on at least one.  Points that tie on *every* objective are mutually
 * non-dominating and are all retained (distinct configurations can
 * share an objective vector); re-adding a point id that is already on
 * the frontier is a no-op, so replaying a checkpoint cannot inflate
 * the frontier.
 *
 * paretoFronts() peels rank-k fronts (rank 1 = the frontier, rank 2 =
 * the frontier after removing rank 1, ...) for --top-k reporting.
 */

#ifndef SCNN_DSE_PARETO_HH
#define SCNN_DSE_PARETO_HH

#include <cstdint>
#include <string>
#include <vector>

namespace scnn {

/** One evaluated design point with its (minimized) objectives. */
struct DsePoint
{
    /** Canonical point id ("pe_rows=4,mul_f=8,..."). */
    std::string id;

    /** Axis indices into the SweepSpec (one per axis). */
    std::vector<int> indices;

    // --- objectives, all lower-is-better ---
    uint64_t cycles = 0;   ///< simulated network cycles
    double energyPj = 0.0; ///< simulated network energy
    double areaMm2 = 0.0;  ///< modelled chip area
};

/**
 * @return true when `a` dominates `b`: no worse on every objective
 *         and strictly better on at least one.  A point never
 *         dominates an objective-wise identical point.
 */
bool dominates(const DsePoint &a, const DsePoint &b);

class ParetoFront
{
  public:
    /**
     * Offer a point to the frontier.
     *
     * @return true when the point is now on the frontier (it was not
     *         dominated by any member); dominated members are removed.
     *         False when an existing member dominates it, or when a
     *         member with the same id is already present (duplicate
     *         replays are no-ops regardless of their objectives).
     */
    bool add(DsePoint p);

    /** Current frontier, in insertion order. */
    const std::vector<DsePoint> &points() const { return points_; }

    size_t size() const { return points_.size(); }
    bool empty() const { return points_.empty(); }

    /**
     * The frontier sorted for reporting: ascending (cycles, energyPj,
     * areaMm2, id) -- a deterministic order independent of insertion
     * order, so straight-through and resumed sweeps serialize
     * identical frontiers.
     */
    std::vector<DsePoint> sorted() const;

  private:
    std::vector<DsePoint> points_;
};

/** Deterministic report order: ascending (cycles, energy, area, id). */
void sortForReport(std::vector<DsePoint> &points);

/**
 * Successive non-dominated fronts of `points` (rank 1 first), at most
 * `maxRanks` of them (0 = all).  Duplicate ids keep their first
 * occurrence only.  Each front comes back in report order.
 */
std::vector<std::vector<DsePoint>>
paretoFronts(std::vector<DsePoint> points, int maxRanks);

} // namespace scnn

#endif // SCNN_DSE_PARETO_HH
