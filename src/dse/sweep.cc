/**
 * @file
 * Sweep strategies and the funnel driver.
 */

#include "dse/sweep.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>
#include <limits>
#include <map>
#include <set>

#include "analytic/timeloop.hh"
#include "arch/area_model.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "sim/simulator.hh"

namespace scnn {

const char *
sweepStrategyName(SweepStrategy s)
{
    switch (s) {
      case SweepStrategy::Grid: return "grid";
      case SweepStrategy::Random: return "random";
      case SweepStrategy::Evolve: return "evolve";
    }
    panic("bad SweepStrategy %d", (int)s);
}

bool
sweepStrategyFromName(const std::string &name, SweepStrategy &s)
{
    if (name == "grid") s = SweepStrategy::Grid;
    else if (name == "random") s = SweepStrategy::Random;
    else if (name == "evolve") s = SweepStrategy::Evolve;
    else return false;
    return true;
}

namespace {

using Clock = std::chrono::steady_clock;

/**
 * A deterministic source of candidate points.  The driver calls
 * next() for candidates, observe() once per candidate with its final
 * record (fresh or replayed), and flushes pending evaluations
 * whenever wantsFlush() -- adaptive strategies use that to see a full
 * generation's results before producing the next.
 */
class CandidateStream
{
  public:
    virtual ~CandidateStream() = default;
    virtual bool next(std::vector<int> &indices) = 0;
    virtual void observe(const CheckpointRecord &rec) { (void)rec; }
    virtual bool wantsFlush() const { return false; }
};

class GridStream : public CandidateStream
{
  public:
    GridStream(const SweepSpec &spec, const SweepOptions &options)
        : spec_(spec), total_(spec.totalPoints()),
          limit_(options.maxPoints), ordinal_(options.shardIndex),
          step_(options.shardCount)
    {
    }

    bool
    next(std::vector<int> &indices) override
    {
        if (ordinal_ >= total_ || (limit_ > 0 && emitted_ >= limit_))
            return false;
        indices = spec_.indicesFor(ordinal_);
        ordinal_ += step_;
        ++emitted_;
        return true;
    }

  private:
    const SweepSpec &spec_;
    const uint64_t total_;
    const uint64_t limit_;
    uint64_t ordinal_;
    const uint64_t step_;
    uint64_t emitted_ = 0;
};

class RandomStream : public CandidateStream
{
  public:
    RandomStream(const SweepSpec &spec, const SweepOptions &options)
        : spec_(spec), total_(spec.totalPoints()),
          rng_("dse/random", options.seed ^ hashLabel(spec.name)),
          shardIndex_(options.shardIndex),
          shardCount_(options.shardCount)
    {
        limit_ = options.maxPoints > 0
                     ? options.maxPoints
                     : std::min<uint64_t>(total_, 256);
        // Draw without replacement, giving up after a bounded number
        // of collisions so small spaces terminate.
        maxDraws_ = limit_ * 4 + 16;
    }

    bool
    next(std::vector<int> &indices) override
    {
        while (emitted_ < limit_ && draws_ < maxDraws_) {
            const uint64_t ordinal = rng_.uniformInt(total_);
            ++draws_;
            if (!picked_.insert(ordinal).second)
                continue;
            const uint64_t unique = emitted_++;
            if (unique % static_cast<uint64_t>(shardCount_) !=
                static_cast<uint64_t>(shardIndex_))
                continue;
            indices = spec_.indicesFor(ordinal);
            return true;
        }
        return false;
    }

  private:
    const SweepSpec &spec_;
    const uint64_t total_;
    Rng rng_;
    const int shardIndex_;
    const int shardCount_;
    uint64_t limit_ = 0;
    uint64_t maxDraws_ = 0;
    uint64_t draws_ = 0;
    uint64_t emitted_ = 0;
    std::set<uint64_t> picked_;
};

/**
 * Seeded (mu + lambda)-style evolutionary search over axis indices:
 * tournament selection over everything observed so far, uniform
 * crossover, per-gene mutation.  Deterministic under a fixed seed
 * because observations arrive in candidate order (the driver
 * guarantees that, resumed or not).
 */
class EvolveStream : public CandidateStream
{
  public:
    EvolveStream(const SweepSpec &spec, const SweepOptions &options)
        : spec_(spec),
          rng_("dse/evolve", options.seed ^ hashLabel(spec.name))
    {
        budget_ = options.maxPoints > 0 ? options.maxPoints : 128;
        population_ = static_cast<int>(
            std::min<uint64_t>(16, spec.totalPoints()));
    }

    bool
    next(std::vector<int> &indices) override
    {
        if (emitted_ >= budget_)
            return false;
        if (queue_.empty())
            buildGeneration();
        indices = queue_.front();
        queue_.pop_front();
        ++emitted_;
        return true;
    }

    void
    observe(const CheckpointRecord &rec) override
    {
        double fitness = std::numeric_limits<double>::infinity();
        switch (rec.stage) {
          case DseStage::Simulated:
            fitness = static_cast<double>(rec.cycles) * rec.energyPj;
            break;
          case DseStage::Pruned:
            // Pruned points still guide the search, discounted so a
            // simulated point always beats its analytic sibling.
            fitness = 4.0 * static_cast<double>(rec.analyticCycles) *
                      rec.analyticEnergyPj;
            break;
          case DseStage::Invalid:
          case DseStage::Error:
            break;
        }
        // Keep the first observation of an id (replays repeat ids).
        if (fitnessById_.emplace(rec.pointId, fitness).second)
            observed_.push_back({rec.indices, fitness});
    }

    bool wantsFlush() const override { return queue_.empty(); }

  private:
    std::vector<int>
    randomGenome()
    {
        std::vector<int> g(spec_.axes.size());
        for (size_t i = 0; i < g.size(); ++i)
            g[i] = static_cast<int>(
                rng_.uniformInt(spec_.axes[i].values.size()));
        return g;
    }

    const std::vector<int> &
    tournament()
    {
        const size_t a = rng_.uniformInt(observed_.size());
        const size_t b = rng_.uniformInt(observed_.size());
        return observed_[observed_[a].fitness <= observed_[b].fitness
                             ? a : b].indices;
    }

    void
    buildGeneration()
    {
        if (observed_.empty()) {
            for (int i = 0; i < population_; ++i)
                queue_.push_back(randomGenome());
            return;
        }
        for (int c = 0; c < population_; ++c) {
            const std::vector<int> &pa = tournament();
            const std::vector<int> &pb = tournament();
            std::vector<int> child(spec_.axes.size());
            for (size_t i = 0; i < child.size(); ++i) {
                child[i] = rng_.bernoulli(0.5) ? pa[i] : pb[i];
                if (rng_.bernoulli(0.35))
                    child[i] = static_cast<int>(rng_.uniformInt(
                        spec_.axes[i].values.size()));
            }
            queue_.push_back(std::move(child));
        }
    }

    struct Observed
    {
        std::vector<int> indices;
        double fitness;
    };

    const SweepSpec &spec_;
    Rng rng_;
    uint64_t budget_ = 0;
    int population_ = 0;
    uint64_t emitted_ = 0;
    std::deque<std::vector<int>> queue_;
    std::map<std::string, double> fitnessById_;
    std::vector<Observed> observed_;
};

std::unique_ptr<CandidateStream>
makeStream(const SweepSpec &spec, const SweepOptions &options)
{
    switch (options.strategy) {
      case SweepStrategy::Grid:
        return std::make_unique<GridStream>(spec, options);
      case SweepStrategy::Random:
        return std::make_unique<RandomStream>(spec, options);
      case SweepStrategy::Evolve:
        return std::make_unique<EvolveStream>(spec, options);
    }
    panic("bad SweepStrategy %d", (int)options.strategy);
}

/** One candidate waiting for its batch to complete. */
struct Pending
{
    CheckpointRecord record;
    bool fresh = false;    ///< needs appending to the checkpoint
    bool needsSim = false; ///< stage decided at flush
    AcceleratorConfig cfg; ///< materialized (needsSim only)
};

} // namespace

SweepOutcome
runSweep(const SweepSpec &spec, const Network &net,
         DseEvaluator &evaluator, const SweepOptions &options)
{
    SCNN_ASSERT(options.batchSize > 0, "batch size must be positive");
    SCNN_ASSERT(options.pruneFactor > 1.0,
                "prune factor must exceed 1");
    SCNN_ASSERT(options.shardCount >= 1 && options.shardIndex >= 0 &&
                    options.shardIndex < options.shardCount,
                "bad shard %d/%d", options.shardIndex,
                options.shardCount);
    if (options.strategy == SweepStrategy::Evolve)
        SCNN_ASSERT(options.shardCount == 1,
                    "evolve cannot split across shards (its "
                    "trajectory depends on every evaluation)");

    // Replay state: every point already in the checkpoint, by id.
    // `fromCheckpoint` keeps the pre-run ids apart so stats.resumed
    // counts genuine replays, not ids this run evaluated and the
    // strategy re-emitted later (evolve does that).
    std::map<std::string, CheckpointRecord> seen;
    std::set<std::string> fromCheckpoint;
    if (!options.checkpointPath.empty()) {
        std::vector<CheckpointRecord> records;
        bool droppedTail = false;
        std::string error;
        if (!loadCheckpoint(options.checkpointPath, records,
                            droppedTail, error))
            throw SimulationError(error);
        if (droppedTail) {
            warn("checkpoint %s has a torn final line; that point "
                 "will be re-evaluated",
                 options.checkpointPath.c_str());
            // Neutralize the fragment before appending: rewrite the
            // surviving records, or the first fresh append would glue
            // onto the torn line and hard-fail the *next* load.
            FILE *f = std::fopen(options.checkpointPath.c_str(), "wb");
            if (!f)
                throw SimulationError("cannot rewrite checkpoint: " +
                                      options.checkpointPath);
            for (const CheckpointRecord &rec : records) {
                const std::string line =
                    serializeCheckpointRecord(rec) + "\n";
                if (std::fwrite(line.data(), 1, line.size(), f) !=
                    line.size()) {
                    std::fclose(f);
                    throw SimulationError(
                        "cannot rewrite checkpoint: " +
                        options.checkpointPath);
                }
            }
            std::fclose(f);
        }
        for (CheckpointRecord &rec : records) {
            fromCheckpoint.insert(rec.pointId);
            seen[rec.pointId] = std::move(rec);
        }
    }

    CheckpointWriter writer;
    if (!options.checkpointPath.empty()) {
        std::string error;
        if (!writer.open(options.checkpointPath, error))
            throw SimulationError(error);
    }

    std::unique_ptr<CandidateStream> stream =
        makeStream(spec, options);
    const AreaModel areaModel;

    SweepOutcome outcome;
    FunnelStats &stats = outcome.stats;
    uint64_t bestAnalytic = std::numeric_limits<uint64_t>::max();
    uint64_t newRecords = 0;
    std::vector<Pending> pending;
    size_t pendingSim = 0;

    // Finalize the pending window: simulate the survivors, append
    // fresh records in candidate order, feed frontier and strategy.
    // Returns false when stopAfter says to leave the rest for a
    // resume.
    auto flush = [&]() -> bool {
        if (pending.empty())
            return true;
        std::vector<AcceleratorConfig> configs;
        std::vector<size_t> configOwner;
        for (size_t i = 0; i < pending.size(); ++i) {
            if (pending[i].needsSim) {
                configs.push_back(pending[i].cfg);
                configOwner.push_back(i);
            }
        }
        if (!configs.empty()) {
            const auto start = Clock::now();
            const std::vector<EvalResult> results =
                evaluator.evaluate(configs);
            stats.evalSeconds +=
                std::chrono::duration<double>(Clock::now() - start)
                    .count();
            SCNN_ASSERT(results.size() == configs.size(),
                        "evaluator returned %zu results for %zu "
                        "configs", results.size(), configs.size());
            for (size_t i = 0; i < results.size(); ++i) {
                Pending &p = pending[configOwner[i]];
                if (results[i].ok) {
                    p.record.stage = DseStage::Simulated;
                    p.record.cycles = results[i].cycles;
                    p.record.energyPj = results[i].energyPj;
                    p.record.areaMm2 =
                        areaModel.chipArea(p.cfg).total();
                } else {
                    p.record.stage = DseStage::Error;
                    p.record.error = results[i].error;
                }
            }
        }
        bool stop = false;
        for (Pending &p : pending) {
            // Cut exactly at the requested record count: the rest of
            // the window stays unwritten and a resume re-evaluates
            // it, keeping the partial checkpoint a strict byte
            // prefix of an uninterrupted run's.
            if (options.stopAfter > 0 &&
                newRecords >= options.stopAfter) {
                stop = true;
                break;
            }
            const CheckpointRecord &rec = p.record;
            if (p.fresh) {
                if (writer.isOpen() && !writer.add(rec))
                    throw SimulationError(
                        "checkpoint write failed: " +
                        options.checkpointPath);
                seen[rec.pointId] = rec;
                ++newRecords;
            }
            switch (rec.stage) {
              case DseStage::Invalid: ++stats.invalid; break;
              case DseStage::Pruned: ++stats.pruned; break;
              case DseStage::Error: ++stats.errors; break;
              case DseStage::Simulated: {
                ++stats.simulated;
                DsePoint point;
                point.id = rec.pointId;
                point.indices = rec.indices;
                point.cycles = rec.cycles;
                point.energyPj = rec.energyPj;
                point.areaMm2 = rec.areaMm2;
                outcome.simulatedPoints.push_back(point);
                outcome.frontier.add(std::move(point));
                break;
              }
            }
            stream->observe(rec);
        }
        pending.clear();
        pendingSim = 0;
        if (writer.isOpen() && !writer.flush())
            throw SimulationError("checkpoint fsync failed: " +
                                  options.checkpointPath);
        if (stop) {
            outcome.stoppedEarly = true;
            return false;
        }
        return true;
    };

    std::set<std::string> emittedThisRun;
    bool running = true;
    while (running) {
        if (pendingSim >= static_cast<size_t>(options.batchSize) ||
            (!pending.empty() && stream->wantsFlush())) {
            if (!flush())
                break;
        }
        std::vector<int> indices;
        if (!stream->next(indices)) {
            running = false;
            flush();
            break;
        }
        ++stats.candidates;
        const std::string id = spec.pointId(indices);

        const auto seenIt = seen.find(id);
        if (seenIt != seen.end()) {
            // Replay: feed the funnel and the strategy exactly as a
            // fresh evaluation would, without re-evaluating.
            if (fromCheckpoint.count(id))
                ++stats.resumed;
            Pending p;
            p.record = seenIt->second;
            if (p.record.stage != DseStage::Invalid)
                bestAnalytic = std::min(bestAnalytic,
                                        p.record.analyticCycles);
            pending.push_back(std::move(p));
            continue;
        }
        if (!emittedThisRun.insert(id).second)
            continue; // in-flight duplicate (evolve twins in a batch)

        Pending p;
        p.fresh = true;
        p.record.pointId = id;
        p.record.indices = indices;
        const std::vector<std::string> problems =
            spec.materialize(indices, p.cfg);
        if (!problems.empty()) {
            p.record.stage = DseStage::Invalid;
            p.record.error = joinConfigErrors(problems);
        } else {
            const AnalyticScore score = analyticScore(p.cfg, net);
            p.record.analyticCycles = score.cycles;
            p.record.analyticEnergyPj = score.energyPj;
            bestAnalytic = std::min(bestAnalytic, score.cycles);
            if (static_cast<double>(score.cycles) >
                options.pruneFactor *
                    static_cast<double>(bestAnalytic)) {
                p.record.stage = DseStage::Pruned;
            } else {
                p.needsSim = true;
                ++pendingSim;
            }
        }
        pending.push_back(std::move(p));
    }
    writer.close();
    return outcome;
}

} // namespace scnn
