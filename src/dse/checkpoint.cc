/**
 * @file
 * Checkpoint record serialization and the durable append writer.
 */

#include "dse/checkpoint.hh"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/json.hh"
#include "common/logging.hh"

namespace scnn {

const char *
dseStageName(DseStage stage)
{
    switch (stage) {
      case DseStage::Invalid: return "invalid";
      case DseStage::Pruned: return "pruned";
      case DseStage::Simulated: return "simulated";
      case DseStage::Error: return "error";
    }
    panic("bad DseStage %d", (int)stage);
}

namespace {

bool
stageFromName(const std::string &name, DseStage &stage)
{
    if (name == "invalid") stage = DseStage::Invalid;
    else if (name == "pruned") stage = DseStage::Pruned;
    else if (name == "simulated") stage = DseStage::Simulated;
    else if (name == "error") stage = DseStage::Error;
    else return false;
    return true;
}

} // namespace

std::string
serializeCheckpointRecord(const CheckpointRecord &rec)
{
    JsonWriter w;
    w.beginObject();
    w.key("schema").value("scnn.dse_checkpoint.v1");
    w.key("point").value(rec.pointId);
    w.key("indices").beginArray();
    for (int idx : rec.indices)
        w.value(idx);
    w.endArray();
    w.key("stage").value(dseStageName(rec.stage));
    if (rec.stage != DseStage::Invalid) {
        w.key("analytic_cycles").value(rec.analyticCycles);
        w.key("analytic_energy_pj").value(rec.analyticEnergyPj);
    }
    if (rec.stage == DseStage::Simulated) {
        w.key("cycles").value(rec.cycles);
        w.key("energy_pj").value(rec.energyPj);
        w.key("area_mm2").value(rec.areaMm2);
    }
    if (!rec.error.empty())
        w.key("error").value(rec.error);
    w.endObject();
    return w.str();
}

bool
parseCheckpointRecord(const std::string &line, CheckpointRecord &rec,
                      std::string &error)
{
    JsonValue doc;
    if (!parseJson(line, doc, error))
        return false;
    if (!doc.isObject()) {
        error = "checkpoint record must be an object";
        return false;
    }
    const JsonValue *schema = doc.find("schema");
    if (!schema || !schema->isString() ||
        schema->string != "scnn.dse_checkpoint.v1") {
        error = "missing or wrong checkpoint schema";
        return false;
    }

    for (const auto &member : doc.object) {
        const std::string &k = member.first;
        if (k != "schema" && k != "point" && k != "indices" &&
            k != "stage" && k != "analytic_cycles" &&
            k != "analytic_energy_pj" && k != "cycles" &&
            k != "energy_pj" && k != "area_mm2" && k != "error") {
            error = strfmt("unknown checkpoint key '%s'", k.c_str());
            return false;
        }
    }

    rec = CheckpointRecord();
    const JsonValue *point = doc.find("point");
    if (!point || !point->isString() || point->string.empty()) {
        error = "record requires a non-empty \"point\"";
        return false;
    }
    rec.pointId = point->string;

    const JsonValue *indices = doc.find("indices");
    if (!indices || !indices->isArray()) {
        error = "record requires an \"indices\" array";
        return false;
    }
    for (const JsonValue &v : indices->array) {
        if (!v.isNumber() || !v.isUnsigned) {
            error = "indices must be non-negative integers";
            return false;
        }
        rec.indices.push_back(static_cast<int>(v.uint64));
    }

    const JsonValue *stage = doc.find("stage");
    if (!stage || !stage->isString() ||
        !stageFromName(stage->string, rec.stage)) {
        error = "record requires a valid \"stage\"";
        return false;
    }

    if (rec.stage != DseStage::Invalid) {
        const JsonValue *ac = doc.find("analytic_cycles");
        const JsonValue *ae = doc.find("analytic_energy_pj");
        if (!ac || !ac->isUnsigned || !ae || !ae->isNumber()) {
            error = "record requires analytic scores";
            return false;
        }
        rec.analyticCycles = ac->uint64;
        rec.analyticEnergyPj = ae->number;
    }
    if (rec.stage == DseStage::Simulated) {
        const JsonValue *cy = doc.find("cycles");
        const JsonValue *en = doc.find("energy_pj");
        const JsonValue *ar = doc.find("area_mm2");
        if (!cy || !cy->isUnsigned || !en || !en->isNumber() ||
            !ar || !ar->isNumber()) {
            error = "simulated record requires objective values";
            return false;
        }
        rec.cycles = cy->uint64;
        rec.energyPj = en->number;
        rec.areaMm2 = ar->number;
    }
    if (const JsonValue *err = doc.find("error")) {
        if (!err->isString()) {
            error = "\"error\" must be a string";
            return false;
        }
        rec.error = err->string;
    }
    return true;
}

bool
loadCheckpoint(const std::string &path,
               std::vector<CheckpointRecord> &records, bool &droppedTail,
               std::string &error)
{
    records.clear();
    droppedTail = false;

    std::ifstream in(path, std::ios::binary);
    if (!in)
        return true; // fresh sweep

    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();

    size_t pos = 0;
    while (pos < text.size()) {
        const size_t nl = text.find('\n', pos);
        const bool complete = nl != std::string::npos;
        const std::string line =
            text.substr(pos, complete ? nl - pos : std::string::npos);
        const size_t next = complete ? nl + 1 : text.size();

        if (line.empty()) {
            pos = next;
            continue;
        }

        CheckpointRecord rec;
        std::string lineError;
        if (!parseCheckpointRecord(line, rec, lineError)) {
            // A torn tail (crash mid-append) is expected; anything
            // earlier means the file is not ours.
            if (next >= text.size()) {
                droppedTail = true;
                return true;
            }
            error = strfmt("corrupt checkpoint record in %s "
                           "(not the final line): %s",
                           path.c_str(), lineError.c_str());
            return false;
        }
        if (!complete) {
            // Parsed but unterminated: the final fsync never landed,
            // so treat it as torn and re-evaluate the point.
            droppedTail = true;
            return true;
        }
        records.push_back(std::move(rec));
        pos = next;
    }
    return true;
}

bool
CheckpointWriter::open(const std::string &path, std::string &error,
                       ChkWriterOptions options)
{
    SCNN_ASSERT(!file_, "checkpoint writer reopened");
    SCNN_ASSERT(options.syncEvery > 0, "syncEvery must be positive");
    file_ = std::fopen(path.c_str(), "ab");
    if (!file_) {
        error = strfmt("cannot open checkpoint %s: %s", path.c_str(),
                       std::strerror(errno));
        return false;
    }
    options_ = options;
    sinceSync_ = 0;
    return true;
}

bool
CheckpointWriter::add(const CheckpointRecord &rec)
{
    SCNN_ASSERT(file_, "checkpoint writer not open");
    const std::string line = serializeCheckpointRecord(rec);
    if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||
        std::fputc('\n', file_) == EOF)
        return false;
    if (++sinceSync_ >= options_.syncEvery)
        return flush();
    return true;
}

bool
CheckpointWriter::flush()
{
    SCNN_ASSERT(file_, "checkpoint writer not open");
    if (std::fflush(file_) != 0)
        return false;
    if (::fsync(fileno(file_)) != 0)
        return false;
    sinceSync_ = 0;
    return true;
}

void
CheckpointWriter::close()
{
    if (!file_)
        return;
    flush();
    std::fclose(file_);
    file_ = nullptr;
}

} // namespace scnn
