/**
 * @file
 * SweepSpec parsing and point materialization.
 */

#include "dse/spec.hh"

#include <fstream>
#include <set>
#include <sstream>

#include "common/json.hh"
#include "common/logging.hh"

namespace scnn {

namespace {

/** Product cap: specs beyond this are almost certainly typos. */
constexpr uint64_t kMaxPoints = 1ull << 40;

bool
expectObjectKeys(const JsonValue &obj, const std::set<std::string> &keys,
                 const char *what, std::string &error)
{
    for (const auto &member : obj.object) {
        if (!keys.count(member.first)) {
            error = strfmt("unknown key \"%s\" in %s",
                           member.first.c_str(), what);
            return false;
        }
    }
    return true;
}

bool
intField(const JsonValue &obj, const char *key, int64_t &out,
         bool &present, std::string &error)
{
    present = false;
    const JsonValue *v = obj.find(key);
    if (!v)
        return true;
    // Accept any integral-valued number the parser saw (isUnsigned
    // covers non-negative literals; small negatives come back as exact
    // doubles).
    if (!v->isNumber() || v->number != static_cast<double>(
            static_cast<int64_t>(v->number))) {
        error = strfmt("\"%s\" must be an integer", key);
        return false;
    }
    out = v->isUnsigned ? static_cast<int64_t>(v->uint64)
                        : static_cast<int64_t>(v->number);
    present = true;
    return true;
}

bool
parseAxis(const JsonValue &node, SweepAxis &axis, std::string &error)
{
    if (!node.isObject()) {
        error = "axis entries must be objects";
        return false;
    }
    if (!expectObjectKeys(node, {"field", "values", "range", "log2"},
                          "axis", error))
        return false;

    const JsonValue *field = node.find("field");
    if (!field || !field->isString()) {
        error = "axis requires a string \"field\"";
        return false;
    }
    axis.field = field->string;
    {
        AcceleratorConfig probe;
        if (!setConfigField(probe, axis.field, 1)) {
            error = strfmt("unknown sweep field \"%s\"",
                           axis.field.c_str());
            return false;
        }
    }

    const JsonValue *values = node.find("values");
    const JsonValue *range = node.find("range");
    const JsonValue *log2 = node.find("log2");
    const int kinds = !!values + !!range + !!log2;
    if (kinds != 1) {
        error = strfmt("axis \"%s\" needs exactly one of "
                       "\"values\"/\"range\"/\"log2\"",
                       axis.field.c_str());
        return false;
    }

    if (values) {
        if (!values->isArray() || values->array.empty()) {
            error = strfmt("axis \"%s\": \"values\" must be a "
                           "non-empty array", axis.field.c_str());
            return false;
        }
        for (const JsonValue &v : values->array) {
            if (!v.isNumber() || v.number != static_cast<double>(
                    static_cast<int64_t>(v.number))) {
                error = strfmt("axis \"%s\": values must be integers",
                               axis.field.c_str());
                return false;
            }
            axis.values.push_back(
                v.isUnsigned ? static_cast<int64_t>(v.uint64)
                             : static_cast<int64_t>(v.number));
        }
        return true;
    }

    const JsonValue &spec = range ? *range : *log2;
    const char *kind = range ? "range" : "log2";
    if (!spec.isObject()) {
        error = strfmt("axis \"%s\": \"%s\" must be an object",
                       axis.field.c_str(), kind);
        return false;
    }
    if (!expectObjectKeys(spec,
                          range ? std::set<std::string>{"lo", "hi", "step"}
                                : std::set<std::string>{"lo", "hi"},
                          kind, error))
        return false;

    int64_t lo = 0, hi = 0, step = 1;
    bool haveLo = false, haveHi = false, haveStep = false;
    if (!intField(spec, "lo", lo, haveLo, error) ||
        !intField(spec, "hi", hi, haveHi, error) ||
        !intField(spec, "step", step, haveStep, error))
        return false;
    if (!haveLo || !haveHi) {
        error = strfmt("axis \"%s\": \"%s\" requires \"lo\" and \"hi\"",
                       axis.field.c_str(), kind);
        return false;
    }
    if (hi < lo) {
        error = strfmt("axis \"%s\": hi < lo", axis.field.c_str());
        return false;
    }

    if (range) {
        if (haveStep && step <= 0) {
            error = strfmt("axis \"%s\": step must be positive",
                           axis.field.c_str());
            return false;
        }
        for (int64_t v = lo; v <= hi; v += step)
            axis.values.push_back(v);
    } else {
        if (lo <= 0) {
            error = strfmt("axis \"%s\": log2 lo must be positive",
                           axis.field.c_str());
            return false;
        }
        for (int64_t v = lo; v <= hi; v *= 2)
            axis.values.push_back(v);
    }
    return true;
}

} // namespace

const std::vector<std::string> &
sweepableFields()
{
    return configFieldNames();
}

uint64_t
SweepSpec::totalPoints() const
{
    uint64_t total = 1;
    for (const SweepAxis &axis : axes) {
        total *= axis.values.size();
        SCNN_ASSERT(total <= kMaxPoints, "sweep space overflow");
    }
    return total;
}

std::vector<int>
SweepSpec::indicesFor(uint64_t ordinal) const
{
    SCNN_ASSERT(ordinal < totalPoints(), "ordinal %llu out of range",
                (unsigned long long)ordinal);
    std::vector<int> indices(axes.size(), 0);
    for (size_t i = axes.size(); i-- > 0;) {
        const uint64_t n = axes[i].values.size();
        indices[i] = static_cast<int>(ordinal % n);
        ordinal /= n;
    }
    return indices;
}

std::string
SweepSpec::pointId(const std::vector<int> &indices) const
{
    SCNN_ASSERT(indices.size() == axes.size(),
                "index arity %zu != axis count %zu", indices.size(),
                axes.size());
    std::string id;
    for (size_t i = 0; i < axes.size(); ++i) {
        SCNN_ASSERT(indices[i] >= 0 &&
                    (size_t)indices[i] < axes[i].values.size(),
                    "index %d out of range on axis %s", indices[i],
                    axes[i].field.c_str());
        if (!id.empty())
            id += ',';
        id += strfmt("%s=%lld", axes[i].field.c_str(),
                     (long long)axes[i].values[indices[i]]);
    }
    return id;
}

std::vector<std::string>
SweepSpec::materialize(const std::vector<int> &indices,
                       AcceleratorConfig &cfg) const
{
    SCNN_ASSERT(indices.size() == axes.size(),
                "index arity %zu != axis count %zu", indices.size(),
                axes.size());
    cfg = base;
    for (size_t i = 0; i < axes.size(); ++i) {
        const bool known =
            setConfigField(cfg, axes[i].field,
                           axes[i].values[indices[i]]);
        SCNN_ASSERT(known, "unknown field %s survived parsing",
                    axes[i].field.c_str());
    }
    cfg.name = pointId(indices);
    return cfg.validate();
}

bool
parseSweepSpec(const std::string &text, SweepSpec &spec,
               std::string &error)
{
    JsonValue doc;
    if (!parseJson(text, doc, error))
        return false;
    if (!doc.isObject()) {
        error = "spec must be a JSON object";
        return false;
    }
    if (!expectObjectKeys(doc, {"schema", "name", "base", "axes"},
                          "spec", error))
        return false;

    const JsonValue *schema = doc.find("schema");
    if (!schema || !schema->isString() ||
        schema->string != "scnn.dse_spec.v1") {
        error = "spec requires \"schema\": \"scnn.dse_spec.v1\"";
        return false;
    }

    spec = SweepSpec();
    if (const JsonValue *name = doc.find("name")) {
        if (!name->isString()) {
            error = "\"name\" must be a string";
            return false;
        }
        spec.name = name->string;
    }

    spec.base = scnnConfig();
    if (const JsonValue *base = doc.find("base")) {
        if (!base->isString()) {
            error = "\"base\" must be a string";
            return false;
        }
        if (base->string == "scnn") spec.base = scnnConfig();
        else if (base->string == "dcnn") spec.base = dcnnConfig();
        else if (base->string == "dcnn-opt") spec.base = dcnnOptConfig();
        else {
            error = strfmt("unknown base \"%s\" (scnn|dcnn|dcnn-opt)",
                           base->string.c_str());
            return false;
        }
    }

    const JsonValue *axes = doc.find("axes");
    if (!axes || !axes->isArray() || axes->array.empty()) {
        error = "spec requires a non-empty \"axes\" array";
        return false;
    }
    std::set<std::string> seenFields;
    for (const JsonValue &node : axes->array) {
        SweepAxis axis;
        if (!parseAxis(node, axis, error))
            return false;
        if (!seenFields.insert(axis.field).second) {
            error = strfmt("duplicate axis for field \"%s\"",
                           axis.field.c_str());
            return false;
        }
        spec.axes.push_back(std::move(axis));
    }

    uint64_t total = 1;
    for (const SweepAxis &axis : spec.axes) {
        total *= axis.values.size();
        if (total > kMaxPoints) {
            error = "sweep space exceeds 2^40 points";
            return false;
        }
    }
    return true;
}

bool
loadSweepSpec(const std::string &path, SweepSpec &spec,
              std::string &error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        error = strfmt("cannot open spec file %s", path.c_str());
        return false;
    }
    std::ostringstream text;
    text << in.rdbuf();
    return parseSweepSpec(text.str(), spec, error);
}

} // namespace scnn
