/**
 * @file
 * Full-simulation evaluators for the DSE funnel's survivors.
 *
 * Two interchangeable implementations score a batch of candidate
 * configurations on one network:
 *
 *  - In-process: a private SimulationService (bounded queue, worker
 *    threads, workload cache) run inside the sweep process.
 *  - Remote: JSON-lines requests with per-backend "config" overrides
 *    against a fleet of `scnn_serve --listen` shards, routed with
 *    shardForRequest() (one client thread per shard, one request in
 *    flight per connection; "shed" replies are retried after a short
 *    delay).
 *
 * Simulation is a pure function of (network, seed, config) with
 * bit-identical results across thread counts and SIMD modes, and the
 * response JSON serializes doubles with %.17g, so both evaluators
 * produce bit-identical objective values -- the acceptance criterion
 * that the Pareto frontier is the same in-process and through a TCP
 * fleet rests on exactly this.
 */

#ifndef SCNN_DSE_EVALUATE_HH
#define SCNN_DSE_EVALUATE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "arch/config.hh"
#include "nn/network.hh"

namespace scnn {

/** Outcome of fully simulating one candidate configuration. */
struct EvalResult
{
    bool ok = false;
    std::string error;    ///< failure reason when !ok
    uint64_t cycles = 0;
    double energyPj = 0.0;
};

class DseEvaluator
{
  public:
    virtual ~DseEvaluator() = default;

    /**
     * Simulate every configuration in `configs` on the evaluator's
     * network; returns one result per config, in input order.  Never
     * throws for per-point failures (they come back as !ok results);
     * throws SimulationError when the evaluator itself breaks (e.g.
     * a shard connection dies).
     */
    virtual std::vector<EvalResult>
    evaluate(const std::vector<AcceleratorConfig> &configs) = 0;

    /** Human-readable transport description for the report. */
    virtual std::string describe() const = 0;
};

/** Resolve a zoo network by its wire name; false if unknown. */
bool networkByName(const std::string &name, Network &net);

struct InProcessEvalOptions
{
    int workers = 2;        ///< concurrent sessions
    int sessionThreads = 1; ///< pool threads per session
};

std::unique_ptr<DseEvaluator>
makeInProcessEvaluator(Network net, uint64_t seed,
                       InProcessEvalOptions options =
                           InProcessEvalOptions());

struct RemoteEvalOptions
{
    /** Rounds of re-sending a shed request before giving up. */
    int maxShedRetries = 1000;
    /** Delay between shed retries (ms). */
    double shedRetryDelayMs = 20.0;
};

/**
 * Connect to a fleet of scnn_serve shards.  `endpoints[i]` ("host:port")
 * must be shard i of an `endpoints.size()`-shard fleet -- requests are
 * routed with shardForRequest().  `networkName` is the wire name the
 * shards resolve ("tiny", "alexnet", ...).  Returns nullptr with
 * `error` set when any connection fails.
 */
std::unique_ptr<DseEvaluator>
makeRemoteEvaluator(const std::vector<std::string> &endpoints,
                    const std::string &networkName, uint64_t seed,
                    std::string &error,
                    RemoteEvalOptions options = RemoteEvalOptions());

/**
 * The JSON-lines request line a remote evaluation sends for one
 * configuration (exposed for tests and docs examples): a single
 * backend spec whose "config" carries every sweepable field of `cfg`.
 */
std::string remoteRequestLine(const std::string &networkName,
                              uint64_t seed,
                              const AcceleratorConfig &cfg);

} // namespace scnn

#endif // SCNN_DSE_EVALUATE_HH
