/**
 * @file
 * Full-simulation evaluators for the DSE funnel's survivors.
 *
 * Two interchangeable implementations score a batch of candidate
 * configurations on one network:
 *
 *  - In-process: a private SimulationService (bounded queue, worker
 *    threads, workload cache) run inside the sweep process.
 *  - Remote: JSON-lines requests with per-backend "config" overrides
 *    against a fleet of `scnn_serve --listen` shards, routed with
 *    shardForRequest() (one client thread per shard, one request in
 *    flight per connection; "shed" replies are retried after a short
 *    delay).
 *
 * Simulation is a pure function of (network, seed, config) with
 * bit-identical results across thread counts and SIMD modes, and the
 * response JSON serializes doubles with %.17g, so both evaluators
 * produce bit-identical objective values -- the acceptance criterion
 * that the Pareto frontier is the same in-process and through a TCP
 * fleet rests on exactly this.
 */

#ifndef SCNN_DSE_EVALUATE_HH
#define SCNN_DSE_EVALUATE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "arch/config.hh"
#include "common/retry.hh"
#include "nn/network.hh"

namespace scnn {

/** Outcome of fully simulating one candidate configuration. */
struct EvalResult
{
    bool ok = false;
    std::string error;    ///< failure reason when !ok
    uint64_t cycles = 0;
    double energyPj = 0.0;
};

/**
 * What an evaluator survived: the report's `faults` block.  All
 * counters are cumulative over the evaluator's lifetime.
 */
struct FaultStats
{
    /** Reconnection attempts after a shard connection died. */
    uint64_t reconnects = 0;
    /** Points re-routed off a dead shard onto a survivor. */
    uint64_t failovers = 0;
    /** Shed replies answered by re-sending after backoff. */
    uint64_t retries = 0;
};

class DseEvaluator
{
  public:
    virtual ~DseEvaluator() = default;

    /**
     * Simulate every configuration in `configs` on the evaluator's
     * network; returns one result per config, in input order.  Never
     * throws for per-point failures (they come back as !ok results);
     * throws SimulationError when the evaluator itself breaks (e.g.
     * every shard of the fleet is dead).
     */
    virtual std::vector<EvalResult>
    evaluate(const std::vector<AcceleratorConfig> &configs) = 0;

    /** Human-readable transport description for the report. */
    virtual std::string describe() const = 0;

    /** Fault counters so far (all zero for in-process evaluation). */
    virtual FaultStats faults() const { return FaultStats(); }
};

/** Resolve a zoo network by its wire name; false if unknown. */
bool networkByName(const std::string &name, Network &net);

struct InProcessEvalOptions
{
    int workers = 2;        ///< concurrent sessions
    int sessionThreads = 1; ///< pool threads per session
};

std::unique_ptr<DseEvaluator>
makeInProcessEvaluator(Network net, uint64_t seed,
                       InProcessEvalOptions options =
                           InProcessEvalOptions());

struct RemoteEvalOptions
{
    /**
     * Backoff between re-sends of a shed request.  Shedding is the
     * fleet's normal saturation response, so the budget is generous:
     * unlimited attempts under a 20-second planned-delay deadline.
     */
    RetryPolicy shedRetry{/*baseDelayMs=*/5.0, /*multiplier=*/1.5,
                          /*maxDelayMs=*/200.0, /*jitter=*/0.25,
                          /*maxAttempts=*/0, /*deadlineMs=*/20000.0};

    /**
     * Backoff between reconnection attempts after a shard connection
     * dies.  A dead process refuses instantly, so a short budget
     * decides quickly between "restarting" and "gone" -- after which
     * the shard's remaining points fail over to the survivors.
     */
    RetryPolicy reconnect{/*baseDelayMs=*/50.0, /*multiplier=*/2.0,
                          /*maxDelayMs=*/500.0, /*jitter=*/0.25,
                          /*maxAttempts=*/4, /*deadlineMs=*/0.0};

    /**
     * Cap on one socket read while awaiting a reply (ms; 0 = wait
     * forever).  A blackholed connection (peer alive but silent) is
     * treated exactly like a dead one: reconnect, then fail over.
     * The default is sized far above any legitimate simulation.
     */
    double ioTimeoutMs = 120000.0;
};

/**
 * Connect to a fleet of scnn_serve shards.  `endpoints[i]` ("host:port")
 * must be shard i of an `endpoints.size()`-shard fleet -- requests are
 * routed with shardForRequest().  `networkName` is the wire name the
 * shards resolve ("tiny", "alexnet", ...).  Every endpoint is health-
 * probed (a {"ping"} round trip) before the evaluator is returned;
 * nullptr with `error` set when any connection or probe fails.
 *
 * Mid-sweep resilience: a connection that dies or times out is
 * reconnected under `options.reconnect`; a shard whose budget is
 * exhausted is declared dead and its unfinished points are re-routed
 * to the surviving shards (losing cache affinity, never correctness
 * -- simulation is a pure function of the request).  evaluate()
 * throws only when the whole fleet is dead.
 */
std::unique_ptr<DseEvaluator>
makeRemoteEvaluator(const std::vector<std::string> &endpoints,
                    const std::string &networkName, uint64_t seed,
                    std::string &error,
                    RemoteEvalOptions options = RemoteEvalOptions());

/**
 * The JSON-lines request line a remote evaluation sends for one
 * configuration (exposed for tests and docs examples): a single
 * backend spec whose "config" carries every sweepable field of `cfg`.
 */
std::string remoteRequestLine(const std::string &networkName,
                              uint64_t seed,
                              const AcceleratorConfig &cfg);

} // namespace scnn

#endif // SCNN_DSE_EVALUATE_HH
