/**
 * @file
 * Sweep-space description for design-space exploration.
 *
 * A `SweepSpec` names a base configuration (the paper's SCNN design by
 * default) and a list of axes, each varying one integer
 * `AcceleratorConfig`/`PeConfig` field over an explicit value list, an
 * inclusive stepped range, or a log2 ladder.  The sweep space is the
 * cartesian product of the axes; a point is addressed by one index per
 * axis and materialized by applying the axis values on top of the base
 * config, then checked with `AcceleratorConfig::validate()` (invalid
 * corners of the product are recorded, not silently skipped, so
 * checkpoint accounting covers the whole space).
 *
 * Specs are parsed from JSON (`scnn.dse_spec.v1`):
 *
 *     {"schema": "scnn.dse_spec.v1",
 *      "name": "pe-grid-tiny",
 *      "base": "scnn",
 *      "axes": [
 *        {"field": "pe_rows", "values": [2, 4, 8]},
 *        {"field": "accum_banks", "log2": {"lo": 8, "hi": 64}},
 *        {"field": "kc_cap", "range": {"lo": 0, "hi": 32, "step": 16}}]}
 *
 * Unknown keys anywhere in the document are rejected (same contract as
 * the service request parser) so a typo'd axis cannot silently sweep
 * nothing.
 */

#ifndef SCNN_DSE_SPEC_HH
#define SCNN_DSE_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "arch/config.hh"

namespace scnn {

/** One sweep axis: a config field and its candidate values. */
struct SweepAxis
{
    std::string field;           ///< snake_case field name (see below)
    std::vector<int64_t> values; ///< expanded candidate values, in order
};

/** Field names an axis may vary; also the pointId() key order. */
const std::vector<std::string> &sweepableFields();

struct SweepSpec
{
    std::string name;        ///< spec name (report metadata)
    AcceleratorConfig base;  ///< configuration the axes perturb
    std::vector<SweepAxis> axes;

    /** Cartesian-product size (capped: parse rejects > 2^40 points). */
    uint64_t totalPoints() const;

    /**
     * Decode a flat enumeration ordinal into per-axis indices
     * (row-major: the last axis varies fastest).
     */
    std::vector<int> indicesFor(uint64_t ordinal) const;

    /**
     * Canonical point id, e.g. "accum_banks=16,pe_rows=4": the swept
     * fields in axis order with their values.  Stable across runs and
     * processes; the checkpoint/dedupe key.
     */
    std::string pointId(const std::vector<int> &indices) const;

    /**
     * Build the configuration at `indices` on top of `base`.
     *
     * @return empty error list when the point is valid; otherwise the
     *         `validate()` messages (cfg is still the materialized,
     *         invalid configuration).
     */
    std::vector<std::string>
    materialize(const std::vector<int> &indices,
                AcceleratorConfig &cfg) const;
};

/**
 * Parse a `scnn.dse_spec.v1` document.  Returns false with a
 * descriptive `error` on malformed JSON, unknown keys/fields,
 * empty/duplicate axes, non-positive ranges, or an oversized product.
 * Never throws.
 */
bool parseSweepSpec(const std::string &text, SweepSpec &spec,
                    std::string &error);

/** parseSweepSpec() on a file's contents. */
bool loadSweepSpec(const std::string &path, SweepSpec &spec,
                   std::string &error);

} // namespace scnn

#endif // SCNN_DSE_SPEC_HH
