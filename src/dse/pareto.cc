/**
 * @file
 * Pareto-frontier engine implementation.
 */

#include "dse/pareto.hh"

#include <algorithm>
#include <unordered_set>

namespace scnn {

bool
dominates(const DsePoint &a, const DsePoint &b)
{
    if (a.cycles > b.cycles || a.energyPj > b.energyPj ||
        a.areaMm2 > b.areaMm2)
        return false;
    return a.cycles < b.cycles || a.energyPj < b.energyPj ||
           a.areaMm2 < b.areaMm2;
}

bool
ParetoFront::add(DsePoint p)
{
    for (const DsePoint &q : points_) {
        if (q.id == p.id)
            return false;
        if (dominates(q, p))
            return false;
    }
    points_.erase(std::remove_if(points_.begin(), points_.end(),
                                 [&](const DsePoint &q) {
                                     return dominates(p, q);
                                 }),
                  points_.end());
    points_.push_back(std::move(p));
    return true;
}

std::vector<DsePoint>
ParetoFront::sorted() const
{
    std::vector<DsePoint> out = points_;
    sortForReport(out);
    return out;
}

void
sortForReport(std::vector<DsePoint> &points)
{
    std::sort(points.begin(), points.end(),
              [](const DsePoint &a, const DsePoint &b) {
                  if (a.cycles != b.cycles)
                      return a.cycles < b.cycles;
                  if (a.energyPj != b.energyPj)
                      return a.energyPj < b.energyPj;
                  if (a.areaMm2 != b.areaMm2)
                      return a.areaMm2 < b.areaMm2;
                  return a.id < b.id;
              });
}

std::vector<std::vector<DsePoint>>
paretoFronts(std::vector<DsePoint> points, int maxRanks)
{
    // Drop later duplicates of the same id up front so a replayed
    // point cannot appear on two ranks.
    std::unordered_set<std::string> seen;
    std::vector<DsePoint> pool;
    pool.reserve(points.size());
    for (DsePoint &p : points) {
        if (seen.insert(p.id).second)
            pool.push_back(std::move(p));
    }

    std::vector<std::vector<DsePoint>> fronts;
    while (!pool.empty() &&
           (maxRanks <= 0 || (int)fronts.size() < maxRanks)) {
        std::vector<DsePoint> front, rest;
        for (const DsePoint &p : pool) {
            bool dominated = false;
            for (const DsePoint &q : pool) {
                if (dominates(q, p)) {
                    dominated = true;
                    break;
                }
            }
            (dominated ? rest : front).push_back(p);
        }
        sortForReport(front);
        fronts.push_back(std::move(front));
        pool = std::move(rest);
    }
    return fronts;
}

} // namespace scnn
