/**
 * @file
 * Append-only JSON-lines sweep checkpoint (`scnn.dse_checkpoint.v1`).
 *
 * Every evaluated point -- invalid, analytically pruned, fully
 * simulated, or failed -- appends exactly one record, so a killed
 * sweep resumes by replaying the file and skipping every point it has
 * already seen.  Records are deliberately timestamp-free and
 * serialized with a fixed key order: the byte content of a checkpoint
 * depends only on (spec, network, strategy, seed), which is what lets
 * the resume tests compare a kill+resume run against a straight-through
 * run byte-for-byte after sorting lines.
 *
 * Durability contract: records are buffered and fsync'd in batches
 * (`ChkWriterOptions::syncEvery`), so a crash loses at most the last
 * unsynced batch plus possibly a torn final line.  The loader
 * therefore tolerates exactly one trailing partial/corrupt line (the
 * point is simply re-evaluated on resume); corruption anywhere earlier
 * is a hard error -- that file was not produced by this writer.
 */

#ifndef SCNN_DSE_CHECKPOINT_HH
#define SCNN_DSE_CHECKPOINT_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace scnn {

/** How far through the funnel a point got. */
enum class DseStage
{
    Invalid,   ///< failed AcceleratorConfig::validate()
    Pruned,    ///< analytic score over the adaptive threshold
    Simulated, ///< full simulation completed
    Error,     ///< simulation attempted and failed
};

const char *dseStageName(DseStage stage);

/** One checkpoint line. */
struct CheckpointRecord
{
    std::string pointId;      ///< SweepSpec::pointId()
    std::vector<int> indices; ///< axis indices of the point
    DseStage stage = DseStage::Invalid;

    // Analytic funnel score (absent for Invalid).
    uint64_t analyticCycles = 0;
    double analyticEnergyPj = 0.0;

    // Full-simulation objectives (Simulated only).
    uint64_t cycles = 0;
    double energyPj = 0.0;
    double areaMm2 = 0.0;

    /** Diagnostic for Invalid/Error records. */
    std::string error;
};

/** Serialize one record as a single JSON line (no trailing newline). */
std::string serializeCheckpointRecord(const CheckpointRecord &rec);

/**
 * Parse one checkpoint line.  Returns false with `error` set on
 * malformed JSON, a wrong schema, or missing/mistyped fields.
 */
bool parseCheckpointRecord(const std::string &line,
                           CheckpointRecord &rec, std::string &error);

/**
 * Load a checkpoint file.  `records` receives every parsed record in
 * file order (callers dedupe by pointId; last occurrence wins).
 *
 * A missing file is success with zero records (a fresh sweep).  A
 * final line that is incomplete (no trailing newline) or unparsable is
 * dropped -- `droppedTail` is set true so the caller can log the
 * re-evaluation.  An unparsable line anywhere *before* the last is a
 * hard failure.
 */
bool loadCheckpoint(const std::string &path,
                    std::vector<CheckpointRecord> &records,
                    bool &droppedTail, std::string &error);

struct ChkWriterOptions
{
    /** fsync after this many appended records (and on flush/close). */
    int syncEvery = 16;
};

/**
 * Append-only checkpoint writer.  open() creates or appends; add()
 * writes one line through stdio and fsyncs every `syncEvery` records.
 */
class CheckpointWriter
{
  public:
    CheckpointWriter() = default;
    ~CheckpointWriter() { close(); }

    CheckpointWriter(const CheckpointWriter &) = delete;
    CheckpointWriter &operator=(const CheckpointWriter &) = delete;

    /** Open for appending; returns false with `error` on failure. */
    bool open(const std::string &path, std::string &error,
              ChkWriterOptions options = ChkWriterOptions());

    /** Append one record; returns false on a write error. */
    bool add(const CheckpointRecord &rec);

    /** Flush stdio buffers and fsync. */
    bool flush();

    /** flush() then close the file; idempotent. */
    void close();

    bool isOpen() const { return file_ != nullptr; }

  private:
    FILE *file_ = nullptr;
    ChkWriterOptions options_;
    int sinceSync_ = 0;
};

} // namespace scnn

#endif // SCNN_DSE_CHECKPOINT_HH
