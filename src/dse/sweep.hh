/**
 * @file
 * The sweep driver: strategy -> analytic funnel -> full simulation ->
 * Pareto frontier, with resumable checkpointing.
 *
 * A strategy (grid, random, or a seeded evolutionary search) emits
 * candidate points in a deterministic order.  Each candidate flows
 * through the funnel:
 *
 *   1. materialize + validate()          -> stage "invalid"
 *   2. analytic (TimeLoop) score; prune
 *      when analytic cycles exceed
 *      pruneFactor x best-so-far         -> stage "pruned"
 *   3. full simulation via a
 *      DseEvaluator (in-process or
 *      TCP fleet), in batches            -> stage "simulated"/"error"
 *
 * Every candidate appends exactly one checkpoint record, in candidate
 * order.  Resume replays the checkpoint before running: replayed
 * points are not re-evaluated, but they feed the funnel state (the
 * adaptive threshold), the frontier and the strategy exactly as a
 * fresh evaluation would, so a killed-and-resumed sweep walks the
 * identical trajectory and its checkpoint converges to the same bytes
 * as a straight-through run.
 *
 * The prune threshold is intentionally one-sided (cycles only): the
 * funnel's job is to discard configurations that are analytically far
 * off the throughput frontier cheaply, not to decide Pareto
 * membership -- that is the simulator's and the Pareto engine's job.
 */

#ifndef SCNN_DSE_SWEEP_HH
#define SCNN_DSE_SWEEP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "dse/checkpoint.hh"
#include "dse/evaluate.hh"
#include "dse/pareto.hh"
#include "dse/spec.hh"

namespace scnn {

enum class SweepStrategy
{
    Grid,   ///< exhaustive cartesian enumeration
    Random, ///< seeded uniform sampling (without re-evaluation)
    Evolve, ///< seeded mutation/crossover over axis indices
};

const char *sweepStrategyName(SweepStrategy s);
bool sweepStrategyFromName(const std::string &name, SweepStrategy &s);

struct SweepOptions
{
    SweepStrategy strategy = SweepStrategy::Grid;

    /** Strategy seed (random/evolve); the trajectory is a pure
     *  function of (spec, network, strategy, seed, shard). */
    uint64_t seed = 1;

    /**
     * Candidate budget.  Grid: 0 = the whole space.  Random: number
     * of draws (0 = min(space, 256)).  Evolve: newly *simulated or
     * pruned* point budget (0 = 128).
     */
    uint64_t maxPoints = 0;

    /** Analytic prune threshold multiplier (> 1).  A candidate is
     *  pruned when its analytic cycles exceed pruneFactor x the best
     *  analytic cycles seen so far. */
    double pruneFactor = 1.25;

    /** Enumeration split for multi-process sweeps: this process
     *  handles candidates with sequence % shardCount == shardIndex.
     *  Rejected for Evolve (its trajectory is not splittable). */
    int shardIndex = 0;
    int shardCount = 1;

    /** Checkpoint file; empty = no checkpointing (and no resume). */
    std::string checkpointPath;

    /** Survivors simulated per evaluator batch. */
    int batchSize = 16;

    /** Stop (leaving the checkpoint resumable) after this many new
     *  records; 0 = run to completion.  The kill+resume tests use
     *  this to emulate a crash at a deterministic spot. */
    uint64_t stopAfter = 0;
};

/** Funnel accounting over one run (resumed points included). */
struct FunnelStats
{
    uint64_t candidates = 0; ///< points the strategy emitted
    uint64_t resumed = 0;    ///< replayed from the checkpoint
    uint64_t invalid = 0;
    uint64_t pruned = 0;
    uint64_t simulated = 0;
    uint64_t errors = 0;
    double evalSeconds = 0.0; ///< wall time in DseEvaluator::evaluate
};

struct SweepOutcome
{
    bool stoppedEarly = false; ///< stopAfter hit; checkpoint resumable
    FunnelStats stats;

    /** Every fully simulated point (replayed + fresh), with
     *  objectives, in funnel order. */
    std::vector<DsePoint> simulatedPoints;

    /** The non-dominated set over simulatedPoints. */
    ParetoFront frontier;
};

/**
 * Run a sweep.  Throws SimulationError on environment failures (an
 * unreadable checkpoint, a lost shard connection, an unwritable
 * checkpoint file); per-point simulation failures become stage
 * "error" records and the sweep continues.
 */
SweepOutcome runSweep(const SweepSpec &spec, const Network &net,
                      DseEvaluator &evaluator,
                      const SweepOptions &options);

} // namespace scnn

#endif // SCNN_DSE_SWEEP_HH
