/**
 * @file
 * In-process and remote (TCP fleet) DSE evaluators.
 */

#include "dse/evaluate.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/json.hh"
#include "common/logging.hh"
#include "nn/model_zoo.hh"
#include "sim/frontend.hh"
#include "sim/service.hh"
#include "sim/simulator.hh"

namespace scnn {

namespace {

/** Registry backend matching a configuration's architecture kind. */
const char *
backendForKind(ArchKind kind)
{
    switch (kind) {
      case ArchKind::SCNN: return "scnn";
      case ArchKind::DCNN: return "dcnn";
      case ArchKind::DCNN_OPT: return "dcnn-opt";
    }
    panic("bad ArchKind %d", (int)kind);
}

const char *
baseNameForKind(ArchKind kind)
{
    switch (kind) {
      case ArchKind::SCNN: return "scnn";
      case ArchKind::DCNN: return "dcnn";
      case ArchKind::DCNN_OPT: return "dcnn-opt";
    }
    panic("bad ArchKind %d", (int)kind);
}

/** The request a sweep point simulates, shared by both transports. */
SimulationRequest
requestFor(const Network &net, uint64_t seed,
           const AcceleratorConfig &cfg)
{
    SimulationRequest req;
    req.network = net;
    req.seed = seed;
    req.threads = 1;
    req.evalOnly = true;
    BackendSpec spec;
    spec.backend = backendForKind(cfg.kind);
    spec.config = cfg;
    req.backends.push_back(std::move(spec));
    return req;
}

// --- in-process --------------------------------------------------------

class InProcessEvaluator : public DseEvaluator
{
  public:
    InProcessEvaluator(Network net, uint64_t seed,
                       InProcessEvalOptions options)
        : net_(std::move(net)), seed_(seed)
    {
        ServiceConfig cfg;
        cfg.workers = options.workers;
        cfg.sessionThreads = options.sessionThreads;
        service_ = std::make_unique<SimulationService>(cfg);
    }

    std::vector<EvalResult>
    evaluate(const std::vector<AcceleratorConfig> &configs) override
    {
        std::vector<SessionTicket> tickets;
        tickets.reserve(configs.size());
        for (const AcceleratorConfig &cfg : configs)
            tickets.push_back(
                service_->submit(requestFor(net_, seed_, cfg)));

        std::vector<EvalResult> results(configs.size());
        for (size_t i = 0; i < tickets.size(); ++i) {
            const ServiceReply reply = tickets[i].wait();
            EvalResult &r = results[i];
            if (reply.outcome != ServiceOutcome::Ok) {
                r.error = reply.error;
                continue;
            }
            const BackendRun &run = reply.response->runs.at(0);
            if (!run.ok) {
                r.error = run.error;
                continue;
            }
            r.ok = true;
            r.cycles = run.result.totalCycles();
            r.energyPj = run.result.totalEnergyPj();
        }
        return results;
    }

    std::string describe() const override { return "in-process"; }

  private:
    Network net_;
    uint64_t seed_;
    std::unique_ptr<SimulationService> service_;
};

// --- remote fleet ------------------------------------------------------

/**
 * One shard's connection: a socket plus a line-buffered reader, with
 * reconnection (the endpoint is remembered) and a ping/pong health
 * probe.  All I/O is deadline-capped by the caller's timeout; a
 * vanished or silent peer surfaces as a false return, never a signal
 * or an unbounded block.
 */
class ShardConnection
{
  public:
    ~ShardConnection() { close(); }

    bool
    connectTo(const std::string &endpoint, std::string &error)
    {
        std::string host = "127.0.0.1", portPart = endpoint;
        const size_t colon = endpoint.rfind(':');
        if (colon != std::string::npos) {
            host = endpoint.substr(0, colon);
            portPart = endpoint.substr(colon + 1);
        }
        char *end = nullptr;
        const long port = std::strtol(portPart.c_str(), &end, 10);
        if (end == portPart.c_str() || *end != '\0' || port <= 0 ||
            port > 65535) {
            error = strfmt("bad endpoint '%s' (want host:port)",
                           endpoint.c_str());
            return false;
        }
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd_ < 0) {
            error = strfmt("socket: %s", std::strerror(errno));
            return false;
        }
        sockaddr_in addr;
        std::memset(&addr, 0, sizeof(addr));
        addr.sin_family = AF_INET;
        addr.sin_port = htons(static_cast<uint16_t>(port));
        if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
            error = strfmt("bad endpoint host '%s' (want an IPv4 "
                           "address)", host.c_str());
            return false;
        }
        if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            error = strfmt("cannot connect to %s: %s",
                           endpoint.c_str(), std::strerror(errno));
            close();
            return false;
        }
        endpoint_ = endpoint;
        return true;
    }

    /** Drop the connection (half-finished replies included). */
    void
    close()
    {
        if (fd_ >= 0)
            ::close(fd_);
        fd_ = -1;
        buffer_.clear();
    }

    bool alive() const { return fd_ >= 0; }

    /** Re-dial the remembered endpoint (a fresh, empty stream). */
    bool
    reconnect(std::string &error)
    {
        const std::string endpoint = endpoint_;
        close();
        return connectTo(endpoint, error);
    }

    bool
    sendLine(const std::string &line)
    {
        std::string out = line;
        out += '\n';
        // MSG_NOSIGNAL inside: a shard dying mid-send is a false
        // return here, never a SIGPIPE.
        return writeAllFd(fd_, out.data(), out.size());
    }

    /**
     * Next reply line; `timeoutMs` caps every individual wait for
     * bytes (0 = wait forever).  False on EOF, error or timeout --
     * the caller cannot tell a dead peer from a silent one, and
     * treats both as a lost connection.
     */
    bool
    recvLine(std::string &line, double timeoutMs)
    {
        for (;;) {
            const size_t nl = buffer_.find('\n');
            if (nl != std::string::npos) {
                line = buffer_.substr(0, nl);
                buffer_.erase(0, nl + 1);
                return true;
            }
            if (timeoutMs > 0.0) {
                struct pollfd pfd = {fd_, POLLIN, 0};
                const int rv =
                    ::poll(&pfd, 1, static_cast<int>(timeoutMs) + 1);
                if (rv < 0 && errno == EINTR)
                    continue;
                if (rv <= 0)
                    return false; // timeout or poll failure
            }
            char chunk[4096];
            const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
            if (n < 0 && errno == EINTR)
                continue;
            if (n <= 0)
                return false;
            buffer_.append(chunk, static_cast<size_t>(n));
        }
    }

    /**
     * Health probe: one {"ping"} round trip, expecting a pong that
     * echoes the token.  Bypasses the shard's admission queue, so a
     * busy shard still passes; only a dead, wedged or misdialed
     * endpoint fails.
     */
    bool
    probe(double timeoutMs, std::string &error)
    {
        const uint64_t token = ++probeToken_;
        JsonWriter w;
        w.beginObject();
        w.key("ping").value(token);
        w.endObject();
        if (!sendLine(w.str())) {
            error = strfmt("%s: connection lost while sending the "
                           "health probe", endpoint_.c_str());
            return false;
        }
        std::string reply;
        if (!recvLine(reply, timeoutMs)) {
            error = strfmt("%s: no reply to the health probe",
                           endpoint_.c_str());
            return false;
        }
        JsonValue doc;
        std::string parseError;
        const JsonValue *schema = nullptr, *echo = nullptr;
        if (!parseJson(reply, doc, parseError) ||
            !(schema = doc.find("schema")) || !schema->isString() ||
            schema->string != "scnn.service_pong.v1" ||
            !(echo = doc.find("ping")) || !echo->isUnsigned ||
            echo->uint64 != token) {
            error = strfmt("%s: bad health-probe reply: %s",
                           endpoint_.c_str(), reply.c_str());
            return false;
        }
        return true;
    }

    const std::string &endpoint() const { return endpoint_; }

  private:
    int fd_ = -1;
    std::string endpoint_;
    std::string buffer_;
    uint64_t probeToken_ = 0;
};

/** Parse one reply line into an EvalResult; "shed" asks for a retry. */
bool
parseReplyLine(const std::string &line, EvalResult &r, bool &shed)
{
    shed = false;
    r = EvalResult();
    JsonValue doc;
    std::string parseError;
    if (!parseJson(line, doc, parseError)) {
        r.error = "unparsable reply: " + parseError;
        return true;
    }
    const JsonValue *schema = doc.find("schema");
    if (!schema || !schema->isString()) {
        r.error = "reply without a schema";
        return true;
    }
    if (schema->string == "scnn.service_error.v1") {
        const JsonValue *outcome = doc.find("outcome");
        if (outcome && outcome->isString() &&
            outcome->string == "shed") {
            shed = true;
            return true;
        }
        const JsonValue *err = doc.find("error");
        r.error = err && err->isString() ? err->string
                                         : "service error";
        return true;
    }
    if (schema->string != "scnn.simulation_response.v1") {
        r.error = "unexpected reply schema " + schema->string;
        return true;
    }
    const JsonValue *backends = doc.find("backends");
    if (!backends || !backends->isArray() || backends->array.empty()) {
        r.error = "reply without backends";
        return true;
    }
    const JsonValue &run = backends->array[0];
    const JsonValue *ok = run.find("ok");
    if (!ok || !ok->isBool() || !ok->boolean) {
        const JsonValue *err = run.find("error");
        r.error = err && err->isString() ? err->string
                                         : "backend failed";
        return true;
    }
    const JsonValue *totals = run.find("totals");
    const JsonValue *cycles = totals ? totals->find("cycles") : nullptr;
    const JsonValue *energy =
        totals ? totals->find("energy_pj") : nullptr;
    if (!cycles || !cycles->isUnsigned || !energy ||
        !energy->isNumber()) {
        r.error = "reply without totals";
        return true;
    }
    r.ok = true;
    r.cycles = cycles->uint64;
    // JsonWriter emits doubles with %.17g, so this round-trips the
    // server's energy bit-exactly -- remote and in-process frontiers
    // compare equal on doubles because of this.
    r.energyPj = energy->number;
    return true;
}

void
sleepMs(double ms)
{
    if (ms > 0.0)
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(ms));
}

class RemoteEvaluator : public DseEvaluator
{
  public:
    RemoteEvaluator(std::vector<std::unique_ptr<ShardConnection>> conns,
                    Network net, std::string networkName,
                    uint64_t seed, RemoteEvalOptions options)
        : conns_(std::move(conns)), net_(std::move(net)),
          networkName_(std::move(networkName)), seed_(seed),
          options_(options)
    {
    }

    /**
     * Phased scatter/gather with failover.  Each round runs one
     * thread per live shard over that shard's pending points (one
     * request in flight per connection: replies are in-order per
     * stream, and a window of one can never deadlock against the
     * server's bounded reorder buffer).  A shard whose connection
     * dies -- and stays dead through the reconnect budget -- leaves
     * its unfinished points behind; between rounds those points are
     * re-routed round-robin onto the survivors (cache affinity is
     * lost, correctness is not: simulation is a pure function of the
     * request).  Only a fully dead fleet throws.
     */
    std::vector<EvalResult>
    evaluate(const std::vector<AcceleratorConfig> &configs) override
    {
        const int nShards = static_cast<int>(conns_.size());
        std::vector<std::vector<size_t>> slices(conns_.size());
        for (size_t i = 0; i < configs.size(); ++i) {
            const int shard = shardForRequest(
                requestFor(net_, seed_, configs[i]), nShards);
            slices[shard].push_back(i);
        }

        std::vector<EvalResult> results(configs.size());
        std::vector<std::string> failures(conns_.size());
        for (;;) {
            std::vector<std::vector<size_t>> leftovers(conns_.size());
            std::vector<std::thread> threads;
            for (size_t s = 0; s < conns_.size(); ++s) {
                if (slices[s].empty())
                    continue;
                // A shard already declared dead (possibly in an
                // earlier evaluate() call) owes its whole slice to
                // the failover pool immediately.
                if (!conns_[s]->alive()) {
                    leftovers[s] = std::move(slices[s]);
                    continue;
                }
                threads.emplace_back([&, s] {
                    runSlice(s, slices[s], configs, results,
                             leftovers[s], failures[s]);
                });
            }
            for (auto &t : threads)
                t.join();

            // Everything a shard that died this round still owed, in
            // stable (slice) order; a surviving shard's leftover list
            // is empty by construction.
            std::vector<size_t> orphans;
            for (size_t s = 0; s < conns_.size(); ++s) {
                slices[s].clear();
                orphans.insert(orphans.end(), leftovers[s].begin(),
                               leftovers[s].end());
            }
            if (orphans.empty())
                return results;

            std::vector<size_t> survivors;
            for (size_t s = 0; s < conns_.size(); ++s)
                if (conns_[s]->alive())
                    survivors.push_back(s);
            if (survivors.empty()) {
                std::string detail;
                for (size_t s = 0; s < conns_.size(); ++s)
                    if (!failures[s].empty())
                        detail += strfmt("%sshard %zu (%s): %s",
                                         detail.empty() ? "" : "; ",
                                         s,
                                         conns_[s]->endpoint().c_str(),
                                         failures[s].c_str());
                throw SimulationError(strfmt(
                    "every shard of the fleet is dead "
                    "(%zu point(s) unevaluated): %s",
                    orphans.size(), detail.c_str()));
            }
            failovers_.fetch_add(orphans.size());
            warn("dse: failing %zu point(s) over to %zu surviving "
                 "shard(s)",
                 orphans.size(), survivors.size());
            for (size_t i = 0; i < orphans.size(); ++i)
                slices[survivors[i % survivors.size()]].push_back(
                    orphans[i]);
        }
    }

    std::string
    describe() const override
    {
        return strfmt("remote (%zu shard%s)", conns_.size(),
                      conns_.size() == 1 ? "" : "s");
    }

    FaultStats
    faults() const override
    {
        FaultStats f;
        f.reconnects = reconnects_.load();
        f.failovers = failovers_.load();
        f.retries = retries_.load();
        return f;
    }

  private:
    /**
     * Reconnect `conn` under the configured backoff, probing each
     * fresh connection before trusting it.  False leaves the
     * connection closed: the shard is dead for this sweep.
     */
    bool
    reconnectWithBackoff(size_t shard, ShardConnection &conn,
                         std::string &failure)
    {
        RetrySchedule retry(options_.reconnect, seed_,
                            strfmt("reconnect/shard %zu", shard));
        double delayMs = 0.0;
        std::string error;
        while (retry.next(delayMs)) {
            sleepMs(delayMs);
            reconnects_.fetch_add(1);
            if (conn.reconnect(error) &&
                conn.probe(options_.ioTimeoutMs, error))
                return true;
            conn.close();
        }
        failure = strfmt("gave up after %d reconnect attempt(s): %s",
                         retry.attempts(), error.c_str());
        return false;
    }

    /**
     * Serve one shard's slice.  Points not completed when the shard
     * is declared dead land in `leftover` (for failover); `failure`
     * records why.
     */
    void
    runSlice(size_t shard, const std::vector<size_t> &slice,
             const std::vector<AcceleratorConfig> &configs,
             std::vector<EvalResult> &results,
             std::vector<size_t> &leftover, std::string &failure)
    {
        ShardConnection &conn = *conns_[shard];
        for (size_t pos = 0; pos < slice.size(); ++pos) {
            const size_t idx = slice[pos];
            const std::string line =
                remoteRequestLine(networkName_, seed_, configs[idx]);
            RetrySchedule shedRetry(
                options_.shedRetry, seed_,
                strfmt("shed/point %zu", idx));
            for (;;) {
                if (!conn.alive() &&
                    !reconnectWithBackoff(shard, conn, failure)) {
                    leftover.assign(slice.begin() +
                                        static_cast<long>(pos),
                                    slice.end());
                    return;
                }
                std::string reply;
                if (!conn.sendLine(line) ||
                    !conn.recvLine(reply, options_.ioTimeoutMs)) {
                    // Dead or silent: drop the connection and loop
                    // into the reconnect path.  The request may have
                    // run on the shard anyway; re-sending is safe
                    // because simulation is pure and the service
                    // memoizes by request signature.
                    conn.close();
                    continue;
                }
                bool shed = false;
                parseReplyLine(reply, results[idx], shed);
                if (!shed)
                    break;
                double delayMs = 0.0;
                if (!shedRetry.next(delayMs)) {
                    results[idx].ok = false;
                    results[idx].error = strfmt(
                        "shed by shard %zu after %d retries", shard,
                        shedRetry.attempts());
                    break;
                }
                retries_.fetch_add(1);
                sleepMs(delayMs);
            }
        }
    }

    std::vector<std::unique_ptr<ShardConnection>> conns_;
    Network net_;
    std::string networkName_;
    uint64_t seed_;
    RemoteEvalOptions options_;
    std::atomic<uint64_t> reconnects_{0};
    std::atomic<uint64_t> failovers_{0};
    std::atomic<uint64_t> retries_{0};
};

} // namespace

bool
networkByName(const std::string &name, Network &net)
{
    if (name == "alexnet") net = alexNet();
    else if (name == "googlenet") net = googLeNet();
    else if (name == "vgg16") net = vgg16();
    else if (name == "resnet18") net = resNet18();
    else if (name == "mobilenet") net = mobileNet();
    else if (name == "tiny") net = tinyTestNetwork();
    else if (name == "tiny-res") net = tinyResNetwork();
    else if (name == "tiny-dw") net = tinyDwNetwork();
    else return false;
    return true;
}

std::string
remoteRequestLine(const std::string &networkName, uint64_t seed,
                  const AcceleratorConfig &cfg)
{
    JsonWriter w;
    w.beginObject();
    w.key("network").value(networkName);
    w.key("backends").beginArray();
    w.beginObject();
    w.key("backend").value(backendForKind(cfg.kind));
    w.key("config").beginObject();
    w.key("base").value(baseNameForKind(cfg.kind));
    for (const std::string &field : configFieldNames()) {
        int64_t value = 0;
        SCNN_ASSERT(getConfigField(cfg, field, value),
                    "field %s not readable", field.c_str());
        w.key(field).value(static_cast<uint64_t>(value));
    }
    w.endObject();
    w.endObject();
    w.endArray();
    w.key("seed").value(seed);
    w.key("threads").value(1);
    w.endObject();
    return w.str();
}

std::unique_ptr<DseEvaluator>
makeInProcessEvaluator(Network net, uint64_t seed,
                       InProcessEvalOptions options)
{
    return std::make_unique<InProcessEvaluator>(std::move(net), seed,
                                                options);
}

std::unique_ptr<DseEvaluator>
makeRemoteEvaluator(const std::vector<std::string> &endpoints,
                    const std::string &networkName, uint64_t seed,
                    std::string &error, RemoteEvalOptions options)
{
    SCNN_ASSERT(!endpoints.empty(), "remote evaluator needs endpoints");
    std::string problem = validateRetryPolicy(options.shedRetry);
    if (problem.empty())
        problem = validateRetryPolicy(options.reconnect);
    if (!problem.empty()) {
        error = strfmt("bad retry policy: %s", problem.c_str());
        return nullptr;
    }
    Network net;
    if (!networkByName(networkName, net)) {
        error = strfmt("unknown network '%s'", networkName.c_str());
        return nullptr;
    }
    std::vector<std::unique_ptr<ShardConnection>> conns;
    for (const std::string &endpoint : endpoints) {
        auto conn = std::make_unique<ShardConnection>();
        // Connect *and* probe: a listener that accepts but never
        // serves (misdialed port, wedged process) fails here, at
        // startup, not three minutes into the sweep.
        if (!conn->connectTo(endpoint, error) ||
            !conn->probe(options.ioTimeoutMs, error))
            return nullptr;
        conns.push_back(std::move(conn));
    }
    return std::make_unique<RemoteEvaluator>(
        std::move(conns), std::move(net), networkName, seed, options);
}

} // namespace scnn
