/**
 * @file
 * In-process and remote (TCP fleet) DSE evaluators.
 */

#include "dse/evaluate.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/json.hh"
#include "common/logging.hh"
#include "nn/model_zoo.hh"
#include "sim/service.hh"
#include "sim/simulator.hh"

namespace scnn {

namespace {

/** Registry backend matching a configuration's architecture kind. */
const char *
backendForKind(ArchKind kind)
{
    switch (kind) {
      case ArchKind::SCNN: return "scnn";
      case ArchKind::DCNN: return "dcnn";
      case ArchKind::DCNN_OPT: return "dcnn-opt";
    }
    panic("bad ArchKind %d", (int)kind);
}

const char *
baseNameForKind(ArchKind kind)
{
    switch (kind) {
      case ArchKind::SCNN: return "scnn";
      case ArchKind::DCNN: return "dcnn";
      case ArchKind::DCNN_OPT: return "dcnn-opt";
    }
    panic("bad ArchKind %d", (int)kind);
}

/** The request a sweep point simulates, shared by both transports. */
SimulationRequest
requestFor(const Network &net, uint64_t seed,
           const AcceleratorConfig &cfg)
{
    SimulationRequest req;
    req.network = net;
    req.seed = seed;
    req.threads = 1;
    req.evalOnly = true;
    BackendSpec spec;
    spec.backend = backendForKind(cfg.kind);
    spec.config = cfg;
    req.backends.push_back(std::move(spec));
    return req;
}

// --- in-process --------------------------------------------------------

class InProcessEvaluator : public DseEvaluator
{
  public:
    InProcessEvaluator(Network net, uint64_t seed,
                       InProcessEvalOptions options)
        : net_(std::move(net)), seed_(seed)
    {
        ServiceConfig cfg;
        cfg.workers = options.workers;
        cfg.sessionThreads = options.sessionThreads;
        service_ = std::make_unique<SimulationService>(cfg);
    }

    std::vector<EvalResult>
    evaluate(const std::vector<AcceleratorConfig> &configs) override
    {
        std::vector<SessionTicket> tickets;
        tickets.reserve(configs.size());
        for (const AcceleratorConfig &cfg : configs)
            tickets.push_back(
                service_->submit(requestFor(net_, seed_, cfg)));

        std::vector<EvalResult> results(configs.size());
        for (size_t i = 0; i < tickets.size(); ++i) {
            const ServiceReply reply = tickets[i].wait();
            EvalResult &r = results[i];
            if (reply.outcome != ServiceOutcome::Ok) {
                r.error = reply.error;
                continue;
            }
            const BackendRun &run = reply.response->runs.at(0);
            if (!run.ok) {
                r.error = run.error;
                continue;
            }
            r.ok = true;
            r.cycles = run.result.totalCycles();
            r.energyPj = run.result.totalEnergyPj();
        }
        return results;
    }

    std::string describe() const override { return "in-process"; }

  private:
    Network net_;
    uint64_t seed_;
    std::unique_ptr<SimulationService> service_;
};

// --- remote fleet ------------------------------------------------------

/** One connected shard: a socket plus a line-buffered reader. */
class ShardConnection
{
  public:
    ~ShardConnection()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    bool
    connectTo(const std::string &endpoint, std::string &error)
    {
        std::string host = "127.0.0.1", portPart = endpoint;
        const size_t colon = endpoint.rfind(':');
        if (colon != std::string::npos) {
            host = endpoint.substr(0, colon);
            portPart = endpoint.substr(colon + 1);
        }
        char *end = nullptr;
        const long port = std::strtol(portPart.c_str(), &end, 10);
        if (end == portPart.c_str() || *end != '\0' || port <= 0 ||
            port > 65535) {
            error = strfmt("bad endpoint '%s' (want host:port)",
                           endpoint.c_str());
            return false;
        }
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd_ < 0) {
            error = strfmt("socket: %s", std::strerror(errno));
            return false;
        }
        sockaddr_in addr;
        std::memset(&addr, 0, sizeof(addr));
        addr.sin_family = AF_INET;
        addr.sin_port = htons(static_cast<uint16_t>(port));
        if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
            error = strfmt("bad endpoint host '%s' (want an IPv4 "
                           "address)", host.c_str());
            return false;
        }
        if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            error = strfmt("cannot connect to %s: %s",
                           endpoint.c_str(), std::strerror(errno));
            return false;
        }
        endpoint_ = endpoint;
        return true;
    }

    bool
    sendLine(const std::string &line)
    {
        std::string out = line;
        out += '\n';
        size_t off = 0;
        while (off < out.size()) {
            const ssize_t n =
                ::write(fd_, out.data() + off, out.size() - off);
            if (n <= 0) {
                if (n < 0 && errno == EINTR)
                    continue;
                return false;
            }
            off += static_cast<size_t>(n);
        }
        return true;
    }

    bool
    recvLine(std::string &line)
    {
        for (;;) {
            const size_t nl = buffer_.find('\n');
            if (nl != std::string::npos) {
                line = buffer_.substr(0, nl);
                buffer_.erase(0, nl + 1);
                return true;
            }
            char chunk[4096];
            const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
            if (n < 0 && errno == EINTR)
                continue;
            if (n <= 0)
                return false;
            buffer_.append(chunk, static_cast<size_t>(n));
        }
    }

    const std::string &endpoint() const { return endpoint_; }

  private:
    int fd_ = -1;
    std::string endpoint_;
    std::string buffer_;
};

/** Parse one reply line into an EvalResult; "shed" asks for a retry. */
bool
parseReplyLine(const std::string &line, EvalResult &r, bool &shed)
{
    shed = false;
    r = EvalResult();
    JsonValue doc;
    std::string parseError;
    if (!parseJson(line, doc, parseError)) {
        r.error = "unparsable reply: " + parseError;
        return true;
    }
    const JsonValue *schema = doc.find("schema");
    if (!schema || !schema->isString()) {
        r.error = "reply without a schema";
        return true;
    }
    if (schema->string == "scnn.service_error.v1") {
        const JsonValue *outcome = doc.find("outcome");
        if (outcome && outcome->isString() &&
            outcome->string == "shed") {
            shed = true;
            return true;
        }
        const JsonValue *err = doc.find("error");
        r.error = err && err->isString() ? err->string
                                         : "service error";
        return true;
    }
    if (schema->string != "scnn.simulation_response.v1") {
        r.error = "unexpected reply schema " + schema->string;
        return true;
    }
    const JsonValue *backends = doc.find("backends");
    if (!backends || !backends->isArray() || backends->array.empty()) {
        r.error = "reply without backends";
        return true;
    }
    const JsonValue &run = backends->array[0];
    const JsonValue *ok = run.find("ok");
    if (!ok || !ok->isBool() || !ok->boolean) {
        const JsonValue *err = run.find("error");
        r.error = err && err->isString() ? err->string
                                         : "backend failed";
        return true;
    }
    const JsonValue *totals = run.find("totals");
    const JsonValue *cycles = totals ? totals->find("cycles") : nullptr;
    const JsonValue *energy =
        totals ? totals->find("energy_pj") : nullptr;
    if (!cycles || !cycles->isUnsigned || !energy ||
        !energy->isNumber()) {
        r.error = "reply without totals";
        return true;
    }
    r.ok = true;
    r.cycles = cycles->uint64;
    // JsonWriter emits doubles with %.17g, so this round-trips the
    // server's energy bit-exactly -- remote and in-process frontiers
    // compare equal on doubles because of this.
    r.energyPj = energy->number;
    return true;
}

class RemoteEvaluator : public DseEvaluator
{
  public:
    RemoteEvaluator(std::vector<std::unique_ptr<ShardConnection>> conns,
                    Network net, std::string networkName,
                    uint64_t seed, RemoteEvalOptions options)
        : conns_(std::move(conns)), net_(std::move(net)),
          networkName_(std::move(networkName)), seed_(seed),
          options_(options)
    {
    }

    std::vector<EvalResult>
    evaluate(const std::vector<AcceleratorConfig> &configs) override
    {
        const int nShards = static_cast<int>(conns_.size());
        std::vector<std::vector<size_t>> slices(conns_.size());
        for (size_t i = 0; i < configs.size(); ++i) {
            const int shard = shardForRequest(
                requestFor(net_, seed_, configs[i]), nShards);
            slices[shard].push_back(i);
        }

        // One thread per shard, one request in flight per connection:
        // replies are in-order per stream, and a window of one can
        // never deadlock against the server's bounded reorder buffer.
        std::vector<EvalResult> results(configs.size());
        std::vector<std::string> failures(conns_.size());
        std::vector<std::thread> threads;
        for (size_t s = 0; s < conns_.size(); ++s) {
            threads.emplace_back([&, s] {
                runSlice(*conns_[s], slices[s], configs, results,
                         failures[s]);
            });
        }
        for (auto &t : threads)
            t.join();
        for (size_t s = 0; s < failures.size(); ++s)
            if (!failures[s].empty())
                throw SimulationError(
                    strfmt("shard %zu (%s): %s", s,
                           conns_[s]->endpoint().c_str(),
                           failures[s].c_str()));
        return results;
    }

    std::string
    describe() const override
    {
        return strfmt("remote (%zu shard%s)", conns_.size(),
                      conns_.size() == 1 ? "" : "s");
    }

  private:
    void
    runSlice(ShardConnection &conn, const std::vector<size_t> &slice,
             const std::vector<AcceleratorConfig> &configs,
             std::vector<EvalResult> &results, std::string &failure)
    {
        for (size_t idx : slice) {
            const std::string line =
                remoteRequestLine(networkName_, seed_, configs[idx]);
            int retries = 0;
            for (;;) {
                if (!conn.sendLine(line)) {
                    failure = "connection lost while sending";
                    return;
                }
                std::string reply;
                if (!conn.recvLine(reply)) {
                    failure = "connection lost while receiving";
                    return;
                }
                bool shed = false;
                parseReplyLine(reply, results[idx], shed);
                if (!shed)
                    break;
                if (++retries > options_.maxShedRetries) {
                    results[idx].ok = false;
                    results[idx].error =
                        "shed by the shard after retries";
                    break;
                }
                std::this_thread::sleep_for(
                    std::chrono::duration<double, std::milli>(
                        options_.shedRetryDelayMs));
            }
        }
    }

    std::vector<std::unique_ptr<ShardConnection>> conns_;
    Network net_;
    std::string networkName_;
    uint64_t seed_;
    RemoteEvalOptions options_;
};

} // namespace

bool
networkByName(const std::string &name, Network &net)
{
    if (name == "alexnet") net = alexNet();
    else if (name == "googlenet") net = googLeNet();
    else if (name == "vgg16") net = vgg16();
    else if (name == "tiny") net = tinyTestNetwork();
    else return false;
    return true;
}

std::string
remoteRequestLine(const std::string &networkName, uint64_t seed,
                  const AcceleratorConfig &cfg)
{
    JsonWriter w;
    w.beginObject();
    w.key("network").value(networkName);
    w.key("backends").beginArray();
    w.beginObject();
    w.key("backend").value(backendForKind(cfg.kind));
    w.key("config").beginObject();
    w.key("base").value(baseNameForKind(cfg.kind));
    for (const std::string &field : configFieldNames()) {
        int64_t value = 0;
        SCNN_ASSERT(getConfigField(cfg, field, value),
                    "field %s not readable", field.c_str());
        w.key(field).value(static_cast<uint64_t>(value));
    }
    w.endObject();
    w.endObject();
    w.endArray();
    w.key("seed").value(seed);
    w.key("threads").value(1);
    w.endObject();
    return w.str();
}

std::unique_ptr<DseEvaluator>
makeInProcessEvaluator(Network net, uint64_t seed,
                       InProcessEvalOptions options)
{
    return std::make_unique<InProcessEvaluator>(std::move(net), seed,
                                                options);
}

std::unique_ptr<DseEvaluator>
makeRemoteEvaluator(const std::vector<std::string> &endpoints,
                    const std::string &networkName, uint64_t seed,
                    std::string &error, RemoteEvalOptions options)
{
    SCNN_ASSERT(!endpoints.empty(), "remote evaluator needs endpoints");
    Network net;
    if (!networkByName(networkName, net)) {
        error = strfmt("unknown network '%s'", networkName.c_str());
        return nullptr;
    }
    std::vector<std::unique_ptr<ShardConnection>> conns;
    for (const std::string &endpoint : endpoints) {
        auto conn = std::make_unique<ShardConnection>();
        if (!conn->connectTo(endpoint, error))
            return nullptr;
        conns.push_back(std::move(conn));
    }
    return std::make_unique<RemoteEvaluator>(
        std::move(conns), std::move(net), networkName, seed, options);
}

} // namespace scnn
