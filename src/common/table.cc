#include "common/table.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace scnn {

Table::Table(std::string name, std::vector<std::string> header)
    : name_(std::move(name)), header_(std::move(header))
{
    SCNN_ASSERT(!header_.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    SCNN_ASSERT(cells.size() == header_.size(),
                "table '%s': row arity %zu != header arity %zu",
                name_.c_str(), cells.size(), header_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double v, int precision)
{
    return strfmt("%.*f", precision, v);
}

std::string
Table::toString() const
{
    std::vector<size_t> width(header_.size());
    for (size_t c = 0; c < header_.size(); ++c)
        width[c] = header_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    std::ostringstream os;
    os << "== " << name_ << " ==\n";
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << (c ? "  " : "");
            os << row[c];
            os << std::string(width[c] - row[c].size(), ' ');
        }
        os << "\n";
    };
    emit_row(header_);
    size_t total = header_.size() - 1;
    for (size_t c = 0; c < header_.size(); ++c)
        total += width[c] + 1;
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        emit_row(row);
    return os.str();
}

void
Table::print() const
{
    std::fputs(toString().c_str(), stdout);
    std::fputs("\n", stdout);
    if (const char *dir = std::getenv("SCNN_CSV_DIR"))
        writeCsv(dir);
}

void
Table::writeCsv(const std::string &dir) const
{
    const std::string path = dir + "/" + name_ + ".csv";
    std::ofstream out(path);
    if (!out) {
        warn("cannot write CSV file %s", path.c_str());
        return;
    }
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c)
            out << (c ? "," : "") << row[c];
        out << "\n";
    };
    emit(header_);
    for (const auto &row : rows_)
        emit(row);
}

} // namespace scnn
