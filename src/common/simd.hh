/**
 * @file
 * Portable SIMD lane layer for the SoA kernel stack.
 *
 * One ISA tier is picked at build time from what the compiler is
 * allowed to emit (see SCNN_SIMD_ARCH in CMakeLists.txt):
 *
 *   tier      float lanes  double lanes  int32 lanes
 *   avx512         16            8            16
 *   avx2            8            4             8
 *   neon            4            2             4
 *   scalar          1            1             1
 *
 * `Vec<T>` (T = float, double, int32_t) wraps one native register of
 * that tier with load/store/broadcast/arithmetic plus the sparse-
 * kernel specials: zero-lane masks, compress-store, 64-bit gather/
 * scatter addressed by int32 lanes, conflict detection and lane
 * popcounts.  Capabilities that only exist on some tiers (gather,
 * scatter, conflict detection) are exposed as constexpr flags so
 * kernels can `if constexpr` their way to the widest scheme the build
 * supports; everything else has a correct scalar-loop fallback, so
 * code written against the layer compiles on every tier.
 *
 * Runtime override: SCNN_SIMD=scalar|native (default native) selects
 * between the vectorized kernels and their scalar twins at kernel-
 * dispatch time.  The override exists for parity testing -- both paths
 * are required to produce bit-identical functional results and stats
 * -- and as an escape hatch; it does not change the compiled tier.
 *
 * Masks are plain uint32_t with one bit per lane (bit i = lane i),
 * so mask plumbing is identical on every tier.
 */

#ifndef SCNN_COMMON_SIMD_HH
#define SCNN_COMMON_SIMD_HH

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#if defined(__AVX512F__) && defined(__AVX512CD__) && \
    defined(__AVX512VL__) && defined(__AVX512BW__) && \
    defined(__AVX512DQ__)
#define SCNN_SIMD_AVX512 1
#include <immintrin.h>
#elif defined(__AVX2__)
#define SCNN_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(__ARM_NEON) && defined(__aarch64__)
#define SCNN_SIMD_NEON 1
#include <arm_neon.h>
#else
#define SCNN_SIMD_SCALAR 1
#endif

namespace scnn {
namespace simd {

// ---------------------------------------------------------------- tier

#if defined(SCNN_SIMD_AVX512)
constexpr int kFloatLanes = 16;
constexpr int kDoubleLanes = 8;
constexpr int kInt32Lanes = 16;
constexpr bool kHasGather = true;
constexpr bool kHasScatter = true;
constexpr bool kHasConflict = true;
constexpr bool kHasCompress = true;
constexpr const char *kTierName = "avx512";
#elif defined(SCNN_SIMD_AVX2)
constexpr int kFloatLanes = 8;
constexpr int kDoubleLanes = 4;
constexpr int kInt32Lanes = 8;
constexpr bool kHasGather = true;
constexpr bool kHasScatter = false;
constexpr bool kHasConflict = false;
constexpr bool kHasCompress = false;
constexpr const char *kTierName = "avx2";
#elif defined(SCNN_SIMD_NEON)
constexpr int kFloatLanes = 4;
constexpr int kDoubleLanes = 2;
constexpr int kInt32Lanes = 4;
constexpr bool kHasGather = false;
constexpr bool kHasScatter = false;
constexpr bool kHasConflict = false;
constexpr bool kHasCompress = false;
constexpr const char *kTierName = "neon";
#else
constexpr int kFloatLanes = 1;
constexpr int kDoubleLanes = 1;
constexpr int kInt32Lanes = 1;
constexpr bool kHasGather = false;
constexpr bool kHasScatter = false;
constexpr bool kHasConflict = false;
constexpr bool kHasCompress = false;
constexpr const char *kTierName = "scalar";
#endif

/** True when the build tier has lanes at all (not the scalar tier). */
constexpr bool kVectorBuild = kFloatLanes > 1;

/**
 * True when the PE Cartesian-product kernels have a vector scheme on
 * this tier.  The scheme needs hardware gather + scatter + conflict
 * detection (AVX-512); AVX2/NEON/scalar builds run the scalar PE
 * kernels regardless of SCNN_SIMD while still vectorizing the RLE,
 * compress and drain scans through Vec<T>.
 */
constexpr bool kKernelVectorized =
    kHasGather && kHasScatter && kHasConflict;

/** One bit per lane, bit i = lane i. */
using LaneMask = uint32_t;

constexpr LaneMask
maskN(int n)
{
    return n >= 32 ? ~LaneMask(0) : ((LaneMask(1) << n) - 1);
}

// ------------------------------------------------------- runtime mode

enum class Mode { Scalar, Native };

/**
 * Active kernel-dispatch mode: Native unless SCNN_SIMD=scalar (read
 * once at first use).  SCNN_SIMD=native is accepted and explicit;
 * anything else is fatal so CI legs cannot silently fall through.
 */
Mode mode();

/** Override the mode (parity tests alternate per case). */
void setMode(Mode m);

/** Build-tier name, e.g. "avx512". */
const char *tierName();

/**
 * Human-readable description of the active kernel configuration,
 * e.g. "avx512 (16 float lanes, native)" or "avx512, forced scalar".
 */
const char *activeDescription();

// ----------------------------------------------------- aligned vector

/**
 * Minimal 64-byte-aligning allocator: SoA kernel buffers allocated
 * through it start on a cache-line boundary, so full-width vector
 * loads never split a line.  Value-equal to std::allocator for
 * container semantics (rebinding, equality).
 */
template <typename T, size_t Align = 64>
struct AlignedAllocator
{
    using value_type = T;

    AlignedAllocator() = default;
    template <typename U>
    AlignedAllocator(const AlignedAllocator<U, Align> &)
    {
    }

    template <typename U>
    struct rebind
    {
        using other = AlignedAllocator<U, Align>;
    };

    T *
    allocate(size_t n)
    {
        if (n == 0)
            return nullptr;
        void *p = ::operator new(n * sizeof(T),
                                 std::align_val_t(Align));
        return static_cast<T *>(p);
    }

    void
    deallocate(T *p, size_t)
    {
        ::operator delete(p, std::align_val_t(Align));
    }

    bool operator==(const AlignedAllocator &) const { return true; }
    bool operator!=(const AlignedAllocator &) const { return false; }
};

/** 64-byte-aligned std::vector: drop-in for kernel SoA buffers. */
template <typename T>
using AlignedVec = std::vector<T, AlignedAllocator<T>>;

// ------------------------------------------------------------- Vec<T>

template <typename T>
struct Vec;

#if defined(SCNN_SIMD_AVX512)

template <>
struct Vec<float>
{
    static constexpr int kLanes = 16;
    __m512 v;

    static Vec loadu(const float *p) { return {_mm512_loadu_ps(p)}; }
    static Vec load(const float *p) { return {_mm512_load_ps(p)}; }
    static Vec broadcast(float x) { return {_mm512_set1_ps(x)}; }
    static Vec zero() { return {_mm512_setzero_ps()}; }
    void storeu(float *p) const { _mm512_storeu_ps(p, v); }
    void store(float *p) const { _mm512_store_ps(p, v); }

    friend Vec operator+(Vec a, Vec b)
    {
        return {_mm512_add_ps(a.v, b.v)};
    }
    friend Vec operator*(Vec a, Vec b)
    {
        return {_mm512_mul_ps(a.v, b.v)};
    }
};

/** Fused multiply-add a*b + c (one rounding). */
inline Vec<float>
fma(Vec<float> a, Vec<float> b, Vec<float> c)
{
    return {_mm512_fmadd_ps(a.v, b.v, c.v)};
}

/** Lanes equal to +/-0.0f. */
inline LaneMask
zeroMask(Vec<float> a)
{
    return _mm512_cmp_ps_mask(a.v, _mm512_setzero_ps(), _CMP_EQ_OQ);
}

/** Lanes strictly less than 0.0f (matches scalar `f < 0.0f`). */
inline LaneMask
ltZeroMask(Vec<float> a)
{
    return _mm512_cmp_ps_mask(a.v, _mm512_setzero_ps(), _CMP_LT_OQ);
}

/** Per-lane select: mask bit set -> b, clear -> a. */
inline Vec<float>
select(Vec<float> a, Vec<float> b, LaneMask m)
{
    return {_mm512_mask_mov_ps(a.v, static_cast<__mmask16>(m), b.v)};
}

/**
 * Store the lanes selected by m contiguously at p; @return the number
 * of lanes stored.
 */
inline int
compressStore(float *p, Vec<float> a, LaneMask m)
{
    _mm512_mask_compressstoreu_ps(p, static_cast<__mmask16>(m), a.v);
    return __builtin_popcount(m);
}

template <>
struct Vec<double>
{
    static constexpr int kLanes = 8;
    __m512d v;

    static Vec loadu(const double *p) { return {_mm512_loadu_pd(p)}; }
    static Vec load(const double *p) { return {_mm512_load_pd(p)}; }
    static Vec broadcast(double x) { return {_mm512_set1_pd(x)}; }
    static Vec zero() { return {_mm512_setzero_pd()}; }
    void storeu(double *p) const { _mm512_storeu_pd(p, v); }
    void store(double *p) const { _mm512_store_pd(p, v); }

    friend Vec operator+(Vec a, Vec b)
    {
        return {_mm512_add_pd(a.v, b.v)};
    }
    friend Vec operator*(Vec a, Vec b)
    {
        return {_mm512_mul_pd(a.v, b.v)};
    }
};

inline Vec<double>
fma(Vec<double> a, Vec<double> b, Vec<double> c)
{
    return {_mm512_fmadd_pd(a.v, b.v, c.v)};
}

template <>
struct Vec<int32_t>
{
    static constexpr int kLanes = 16;
    __m512i v;

    static Vec loadu(const int32_t *p)
    {
        return {_mm512_loadu_si512(p)};
    }
    static Vec load(const int32_t *p)
    {
        return {_mm512_load_si512(p)};
    }
    static Vec broadcast(int32_t x) { return {_mm512_set1_epi32(x)}; }
    static Vec zero() { return {_mm512_setzero_si512()}; }
    void storeu(int32_t *p) const { _mm512_storeu_si512(p, v); }
    void store(int32_t *p) const { _mm512_store_si512(p, v); }

    /** Broadcast 4 consecutive int32 to every 128-bit group. */
    static Vec
    broadcast4(const int32_t *p)
    {
        return {_mm512_broadcast_i32x4(
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(p)))};
    }

    friend Vec operator+(Vec a, Vec b)
    {
        return {_mm512_add_epi32(a.v, b.v)};
    }
    friend Vec operator-(Vec a, Vec b)
    {
        return {_mm512_sub_epi32(a.v, b.v)};
    }
    friend Vec operator&(Vec a, Vec b)
    {
        return {_mm512_and_si512(a.v, b.v)};
    }
};

/** Per-lane unsigned max on 32-bit lanes. */
inline Vec<int32_t>
maxU32(Vec<int32_t> a, Vec<int32_t> b)
{
    return {_mm512_max_epu32(a.v, b.v)};
}

/** Unsigned max across all 32-bit lanes. */
inline uint32_t
reduceMaxU32(Vec<int32_t> a)
{
    return _mm512_reduce_max_epu32(a.v);
}

/** Unsigned max across the 32-bit lanes selected by m (0 if none). */
inline uint32_t
reduceMaxU32(Vec<int32_t> a, LaneMask m)
{
    return _mm512_mask_reduce_max_epu32(static_cast<__mmask16>(m),
                                        a.v);
}

/** Gather 32-bit lanes p[idx[i]] for all int32 index lanes. */
inline Vec<int32_t>
gather32(const uint32_t *p, Vec<int32_t> idx)
{
    return {_mm512_i32gather_epi32(idx.v, p, 4)};
}

/**
 * Scatter 32-bit lanes to p[idx[i]].  Lanes are written in ascending
 * lane order, so with duplicate indices the highest lane wins (the
 * conflict-count routing scheme relies on this).
 */
inline void
scatter32(uint32_t *p, Vec<int32_t> idx, Vec<int32_t> a)
{
    _mm512_i32scatter_epi32(p, idx.v, a.v, 4);
}

/** Lane-table permute: out[i] = table[idx[i] & 15]. */
inline Vec<int32_t>
permute(Vec<int32_t> table, Vec<int32_t> idx)
{
    return {_mm512_permutexvar_epi32(idx.v, table.v)};
}

/** Per-lane select: mask bit set -> b, clear -> a. */
inline Vec<int32_t>
select(Vec<int32_t> a, Vec<int32_t> b, LaneMask m)
{
    return {
        _mm512_mask_mov_epi32(a.v, static_cast<__mmask16>(m), b.v)};
}

/**
 * Conflict detection (AVX-512CD): lane i receives a bitmask of the
 * lanes j < i holding the same value.
 */
inline Vec<int32_t>
conflict(Vec<int32_t> a)
{
    return {_mm512_conflict_epi32(a.v)};
}

/** Per-lane popcount. */
inline Vec<int32_t>
popcount(Vec<int32_t> a)
{
#if defined(__AVX512VPOPCNTDQ__)
    return {_mm512_popcnt_epi32(a.v)};
#else
    // SWAR popcount; conflict masks only populate the low 16 bits but
    // this is correct for full 32-bit lanes.
    __m512i x = a.v;
    const __m512i m1 = _mm512_set1_epi32(0x55555555);
    const __m512i m2 = _mm512_set1_epi32(0x33333333);
    const __m512i m4 = _mm512_set1_epi32(0x0f0f0f0f);
    x = _mm512_sub_epi32(x,
                         _mm512_and_si512(_mm512_srli_epi32(x, 1), m1));
    x = _mm512_add_epi32(_mm512_and_si512(x, m2),
                         _mm512_and_si512(_mm512_srli_epi32(x, 2), m2));
    x = _mm512_and_si512(_mm512_add_epi32(x, _mm512_srli_epi32(x, 4)),
                         m4);
    x = _mm512_add_epi32(x, _mm512_srli_epi32(x, 8));
    x = _mm512_add_epi32(x, _mm512_srli_epi32(x, 16));
    return {_mm512_and_si512(x, _mm512_set1_epi32(0x3f))};
#endif
}

/** Any lane of a equal to an earlier lane? (masked to valid lanes) */
inline bool
hasConflict(Vec<int32_t> ids, LaneMask valid)
{
    const __m512i c = _mm512_conflict_epi32(ids.v);
    return _mm512_mask_test_epi32_mask(static_cast<__mmask16>(valid),
                                       c, c) != 0;
}

namespace detail {
inline __m256i
idxHalf(Vec<int32_t> idx, int half)
{
    return half == 0 ? _mm512_castsi512_si256(idx.v)
                     : _mm512_extracti64x4_epi64(idx.v, 1);
}
inline __mmask8
maskHalf(LaneMask m, int half)
{
    return static_cast<__mmask8>(half == 0 ? m : (m >> 8));
}
} // namespace detail

inline Vec<double>
gatherF64(const double *p, Vec<int32_t> idx, int half, LaneMask m)
{
    return {_mm512_mask_i32gather_pd(_mm512_setzero_pd(),
                                     detail::maskHalf(m, half),
                                     detail::idxHalf(idx, half), p, 8)};
}

inline void
scatterF64(double *p, Vec<int32_t> idx, int half, Vec<double> a,
           LaneMask m)
{
    _mm512_mask_i32scatter_pd(p, detail::maskHalf(m, half),
                              detail::idxHalf(idx, half), a.v, 8);
}

/** [lo, lo, lo, lo, hi, hi, hi, hi] for the F = 4 row pairs. */
inline Vec<double>
dupHalves(double lo, double hi)
{
    return {_mm512_insertf64x4(_mm512_broadcastsd_pd(_mm_set_sd(lo)),
                               _mm256_set1_pd(hi), 1)};
}

/**
 * Convert the first n (<= 4) floats at p to doubles, duplicated to
 * both 256-bit halves; lanes past n read nothing (masked load) and
 * convert from zero.
 */
inline Vec<double>
dup4Floats(const float *p, int n = 4)
{
    const __m128 f = n >= 4
        ? _mm_loadu_ps(p)
        : _mm_maskz_loadu_ps(static_cast<__mmask8>(maskN(n)), p);
    return {_mm512_broadcast_f64x4(_mm256_cvtps_pd(f))};
}

/**
 * Convert the float lanes selected by m (low 8 bits) at p to doubles;
 * masked-off lanes read nothing and convert from zero.
 */
inline Vec<double>
cvt8Floats(const float *p, LaneMask m)
{
    return {_mm512_cvtps_pd(
        _mm256_maskz_loadu_ps(static_cast<__mmask8>(m), p))};
}

/** Narrow two double vectors to one float vector [lo..., hi...]. */
inline Vec<float>
narrowToFloat(Vec<double> lo, Vec<double> hi)
{
    return {_mm512_insertf32x8(
        _mm512_castps256_ps512(_mm512_cvtpd_ps(lo.v)),
        _mm512_cvtpd_ps(hi.v), 1)};
}

#elif defined(SCNN_SIMD_AVX2)

template <>
struct Vec<float>
{
    static constexpr int kLanes = 8;
    __m256 v;

    static Vec loadu(const float *p) { return {_mm256_loadu_ps(p)}; }
    static Vec load(const float *p) { return {_mm256_load_ps(p)}; }
    static Vec broadcast(float x) { return {_mm256_set1_ps(x)}; }
    static Vec zero() { return {_mm256_setzero_ps()}; }
    void storeu(float *p) const { _mm256_storeu_ps(p, v); }
    void store(float *p) const { _mm256_store_ps(p, v); }

    friend Vec operator+(Vec a, Vec b)
    {
        return {_mm256_add_ps(a.v, b.v)};
    }
    friend Vec operator*(Vec a, Vec b)
    {
        return {_mm256_mul_ps(a.v, b.v)};
    }
};

inline Vec<float>
fma(Vec<float> a, Vec<float> b, Vec<float> c)
{
#if defined(__FMA__)
    return {_mm256_fmadd_ps(a.v, b.v, c.v)};
#else
    return {_mm256_add_ps(_mm256_mul_ps(a.v, b.v), c.v)};
#endif
}

inline LaneMask
zeroMask(Vec<float> a)
{
    return static_cast<LaneMask>(_mm256_movemask_ps(
        _mm256_cmp_ps(a.v, _mm256_setzero_ps(), _CMP_EQ_OQ)));
}

inline LaneMask
ltZeroMask(Vec<float> a)
{
    return static_cast<LaneMask>(_mm256_movemask_ps(
        _mm256_cmp_ps(a.v, _mm256_setzero_ps(), _CMP_LT_OQ)));
}

inline Vec<float>
select(Vec<float> a, Vec<float> b, LaneMask m)
{
    alignas(32) static const uint32_t kBit[8] = {1, 2, 4, 8,
                                                 16, 32, 64, 128};
    const __m256i bits =
        _mm256_load_si256(reinterpret_cast<const __m256i *>(kBit));
    const __m256i sel = _mm256_cmpeq_epi32(
        _mm256_and_si256(_mm256_set1_epi32(static_cast<int>(m)), bits),
        bits);
    return {_mm256_blendv_ps(a.v, b.v, _mm256_castsi256_ps(sel))};
}

inline int
compressStore(float *p, Vec<float> a, LaneMask m)
{
    alignas(32) float tmp[8];
    _mm256_storeu_ps(tmp, a.v);
    int n = 0;
    LaneMask bits = m & 0xffu;
    while (bits) {
        const int i = __builtin_ctz(bits);
        p[n++] = tmp[i];
        bits &= bits - 1;
    }
    return n;
}

template <>
struct Vec<double>
{
    static constexpr int kLanes = 4;
    __m256d v;

    static Vec loadu(const double *p) { return {_mm256_loadu_pd(p)}; }
    static Vec load(const double *p) { return {_mm256_load_pd(p)}; }
    static Vec broadcast(double x) { return {_mm256_set1_pd(x)}; }
    static Vec zero() { return {_mm256_setzero_pd()}; }
    void storeu(double *p) const { _mm256_storeu_pd(p, v); }
    void store(double *p) const { _mm256_store_pd(p, v); }

    friend Vec operator+(Vec a, Vec b)
    {
        return {_mm256_add_pd(a.v, b.v)};
    }
    friend Vec operator*(Vec a, Vec b)
    {
        return {_mm256_mul_pd(a.v, b.v)};
    }
};

inline Vec<double>
fma(Vec<double> a, Vec<double> b, Vec<double> c)
{
#if defined(__FMA__)
    return {_mm256_fmadd_pd(a.v, b.v, c.v)};
#else
    return {_mm256_add_pd(_mm256_mul_pd(a.v, b.v), c.v)};
#endif
}

template <>
struct Vec<int32_t>
{
    static constexpr int kLanes = 8;
    __m256i v;

    static Vec loadu(const int32_t *p)
    {
        return {_mm256_loadu_si256(reinterpret_cast<const __m256i *>(p))};
    }
    static Vec load(const int32_t *p)
    {
        return {_mm256_load_si256(reinterpret_cast<const __m256i *>(p))};
    }
    static Vec broadcast(int32_t x) { return {_mm256_set1_epi32(x)}; }
    static Vec zero() { return {_mm256_setzero_si256()}; }
    void storeu(int32_t *p) const
    {
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(p), v);
    }
    void store(int32_t *p) const
    {
        _mm256_store_si256(reinterpret_cast<__m256i *>(p), v);
    }

    static Vec
    broadcast4(const int32_t *p)
    {
        return {_mm256_broadcastsi128_si256(
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(p)))};
    }

    friend Vec operator+(Vec a, Vec b)
    {
        return {_mm256_add_epi32(a.v, b.v)};
    }
    friend Vec operator&(Vec a, Vec b)
    {
        return {_mm256_and_si256(a.v, b.v)};
    }
};

/** Narrow two double vectors to one float vector [lo..., hi...]. */
inline Vec<float>
narrowToFloat(Vec<double> lo, Vec<double> hi)
{
    return {_mm256_insertf128_ps(
        _mm256_castps128_ps256(_mm256_cvtpd_ps(lo.v)),
        _mm256_cvtpd_ps(hi.v), 1)};
}

/**
 * Gather 4 doubles p[idx[i]] from the int32 index lanes in half
 * `half`; masked-off lanes return 0.  (AVX2 has no scatter; callers
 * store lanes back through memory.)
 */
inline Vec<double>
gatherF64(const double *p, Vec<int32_t> idx, int half, LaneMask m)
{
    alignas(32) static const uint64_t kBit[4] = {1, 2, 4, 8};
    const __m128i h = half == 0 ? _mm256_castsi256_si128(idx.v)
                                : _mm256_extracti128_si256(idx.v, 1);
    const LaneMask hm = (half == 0 ? m : (m >> 4)) & 0xf;
    const __m256i bits =
        _mm256_load_si256(reinterpret_cast<const __m256i *>(kBit));
    const __m256i sel = _mm256_cmpeq_epi64(
        _mm256_and_si256(_mm256_set1_epi64x(static_cast<long long>(hm)),
                         bits),
        bits);
    return {_mm256_mask_i32gather_pd(_mm256_setzero_pd(), p, h,
                                     _mm256_castsi256_pd(sel), 8)};
}

#elif defined(SCNN_SIMD_NEON)

template <>
struct Vec<float>
{
    static constexpr int kLanes = 4;
    float32x4_t v;

    static Vec loadu(const float *p) { return {vld1q_f32(p)}; }
    static Vec load(const float *p) { return {vld1q_f32(p)}; }
    static Vec broadcast(float x) { return {vdupq_n_f32(x)}; }
    static Vec zero() { return {vdupq_n_f32(0.0f)}; }
    void storeu(float *p) const { vst1q_f32(p, v); }
    void store(float *p) const { vst1q_f32(p, v); }

    friend Vec operator+(Vec a, Vec b) { return {vaddq_f32(a.v, b.v)}; }
    friend Vec operator*(Vec a, Vec b) { return {vmulq_f32(a.v, b.v)}; }
};

inline Vec<float>
fma(Vec<float> a, Vec<float> b, Vec<float> c)
{
    return {vfmaq_f32(c.v, a.v, b.v)};
}

namespace detail {
inline LaneMask
maskFromU32(uint32x4_t m)
{
    // Narrow each lane to one bit: lane i contributes bit i.
    alignas(16) uint32_t tmp[4];
    vst1q_u32(tmp, m);
    return (tmp[0] & 1u) | ((tmp[1] & 1u) << 1) | ((tmp[2] & 1u) << 2) |
           ((tmp[3] & 1u) << 3);
}
} // namespace detail

inline LaneMask
zeroMask(Vec<float> a)
{
    return detail::maskFromU32(vceqq_f32(a.v, vdupq_n_f32(0.0f)));
}

inline LaneMask
ltZeroMask(Vec<float> a)
{
    return detail::maskFromU32(vcltq_f32(a.v, vdupq_n_f32(0.0f)));
}

inline Vec<float>
select(Vec<float> a, Vec<float> b, LaneMask m)
{
    alignas(16) float tmp[4];
    vst1q_f32(tmp, a.v);
    alignas(16) float tb[4];
    vst1q_f32(tb, b.v);
    for (int i = 0; i < 4; ++i)
        if (m & (1u << i))
            tmp[i] = tb[i];
    return {vld1q_f32(tmp)};
}

inline int
compressStore(float *p, Vec<float> a, LaneMask m)
{
    alignas(16) float tmp[4];
    vst1q_f32(tmp, a.v);
    int n = 0;
    LaneMask bits = m & 0xfu;
    while (bits) {
        p[n++] = tmp[__builtin_ctz(bits)];
        bits &= bits - 1;
    }
    return n;
}

template <>
struct Vec<double>
{
    static constexpr int kLanes = 2;
    float64x2_t v;

    static Vec loadu(const double *p) { return {vld1q_f64(p)}; }
    static Vec load(const double *p) { return {vld1q_f64(p)}; }
    static Vec broadcast(double x) { return {vdupq_n_f64(x)}; }
    static Vec zero() { return {vdupq_n_f64(0.0)}; }
    void storeu(double *p) const { vst1q_f64(p, v); }
    void store(double *p) const { vst1q_f64(p, v); }

    friend Vec operator+(Vec a, Vec b) { return {vaddq_f64(a.v, b.v)}; }
    friend Vec operator*(Vec a, Vec b) { return {vmulq_f64(a.v, b.v)}; }
};

inline Vec<double>
fma(Vec<double> a, Vec<double> b, Vec<double> c)
{
    return {vfmaq_f64(c.v, a.v, b.v)};
}

template <>
struct Vec<int32_t>
{
    static constexpr int kLanes = 4;
    int32x4_t v;

    static Vec loadu(const int32_t *p) { return {vld1q_s32(p)}; }
    static Vec load(const int32_t *p) { return {vld1q_s32(p)}; }
    static Vec broadcast(int32_t x) { return {vdupq_n_s32(x)}; }
    static Vec zero() { return {vdupq_n_s32(0)}; }
    void storeu(int32_t *p) const { vst1q_s32(p, v); }
    void store(int32_t *p) const { vst1q_s32(p, v); }

    friend Vec operator+(Vec a, Vec b) { return {vaddq_s32(a.v, b.v)}; }
    friend Vec operator&(Vec a, Vec b) { return {vandq_s32(a.v, b.v)}; }
};

/** Narrow two double vectors to one float vector [lo..., hi...]. */
inline Vec<float>
narrowToFloat(Vec<double> lo, Vec<double> hi)
{
    return {vcombine_f32(vcvt_f32_f64(lo.v), vcvt_f32_f64(hi.v))};
}

#else // scalar tier

/** One-lane implementation shared by the scalar-tier specializations. */
template <typename T>
struct Vec
{
    static constexpr int kLanes = 1;
    T v;

    static Vec loadu(const T *p) { return {*p}; }
    static Vec load(const T *p) { return {*p}; }
    static Vec broadcast(T x) { return {x}; }
    static Vec zero() { return {T(0)}; }
    void storeu(T *p) const { *p = v; }
    void store(T *p) const { *p = v; }

    friend Vec operator+(Vec a, Vec b)
    {
        return {static_cast<T>(a.v + b.v)};
    }
    friend Vec operator*(Vec a, Vec b)
    {
        return {static_cast<T>(a.v * b.v)};
    }
};

inline Vec<int32_t>
operator&(Vec<int32_t> a, Vec<int32_t> b)
{
    return {a.v & b.v};
}

inline Vec<float>
fma(Vec<float> a, Vec<float> b, Vec<float> c)
{
    return {a.v * b.v + c.v};
}

inline Vec<double>
fma(Vec<double> a, Vec<double> b, Vec<double> c)
{
    return {a.v * b.v + c.v};
}

inline LaneMask
zeroMask(Vec<float> a)
{
    return a.v == 0.0f ? 1u : 0u;
}

inline LaneMask
ltZeroMask(Vec<float> a)
{
    return a.v < 0.0f ? 1u : 0u;
}

inline Vec<float>
select(Vec<float> a, Vec<float> b, LaneMask m)
{
    return (m & 1u) ? b : a;
}

inline int
compressStore(float *p, Vec<float> a, LaneMask m)
{
    if (m & 1u) {
        *p = a.v;
        return 1;
    }
    return 0;
}

/**
 * Scalar-tier placeholder so guarded vector code compiles; callers
 * gate on kVectorBuild (two double lanes cannot narrow into one
 * float lane), so the second operand is never meaningful here.
 */
inline Vec<float>
narrowToFloat(Vec<double> lo, Vec<double>)
{
    return {static_cast<float>(lo.v)};
}

#endif // tier selection

} // namespace simd
} // namespace scnn

#endif // SCNN_COMMON_SIMD_HH
