#include "common/simd.hh"

#include <atomic>
#include <cstring>
#include <string>

#include "common/logging.hh"

namespace scnn {
namespace simd {

namespace {

std::atomic<Mode> gMode{Mode::Native};

Mode
modeFromEnv()
{
    const char *env = std::getenv("SCNN_SIMD");
    if (env == nullptr || *env == '\0')
        return Mode::Native;
    if (std::strcmp(env, "native") == 0)
        return Mode::Native;
    if (std::strcmp(env, "scalar") == 0)
        return Mode::Scalar;
    fatal("SCNN_SIMD='%s' is not a valid mode (scalar|native)", env);
}

std::atomic<bool> gInitialized{false};

} // anonymous namespace

Mode
mode()
{
    if (!gInitialized.load(std::memory_order_acquire)) {
        gMode.store(modeFromEnv(), std::memory_order_relaxed);
        gInitialized.store(true, std::memory_order_release);
    }
    return gMode.load(std::memory_order_relaxed);
}

void
setMode(Mode m)
{
    gInitialized.store(true, std::memory_order_release);
    gMode.store(m, std::memory_order_relaxed);
}

const char *
tierName()
{
    return kTierName;
}

const char *
activeDescription()
{
    static std::string desc = [] {
        std::string s = kTierName;
        s += " (";
        s += std::to_string(kFloatLanes);
        s += kFloatLanes == 1 ? " float lane" : " float lanes";
        s += ")";
        return s;
    }();
    static std::string descScalar = desc + ", forced scalar kernels";
    static std::string descNative = desc + ", native kernels";
    if (!kKernelVectorized)
        return desc.c_str();
    return mode() == Mode::Scalar ? descScalar.c_str()
                                  : descNative.c_str();
}

} // namespace simd
} // namespace scnn
