/**
 * @file
 * Paper-style table output.  Every bench binary prints its table or
 * figure series through this helper so the formatting matches across
 * experiments, and optionally mirrors the rows into a CSV file when the
 * SCNN_CSV_DIR environment variable names a writable directory.
 */

#ifndef SCNN_COMMON_TABLE_HH
#define SCNN_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace scnn {

/**
 * Column-aligned text table with an optional CSV mirror.
 *
 * Usage:
 * @code
 *   Table t("fig8a_alexnet", {"Layer", "DCNN", "SCNN", "oracle"});
 *   t.addRow({"conv1", "1.00", "1.23", "2.9"});
 *   t.print();   // stdout + $SCNN_CSV_DIR/fig8a_alexnet.csv if set
 * @endcode
 */
class Table
{
  public:
    Table(std::string name, std::vector<std::string> header);

    /** Append a row; must have the same arity as the header. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format doubles with the given precision. */
    static std::string num(double v, int precision = 3);

    /** Render to a string (no CSV side effect). */
    std::string toString() const;

    /** Print to stdout and mirror to CSV when SCNN_CSV_DIR is set. */
    void print() const;

    size_t rows() const { return rows_.size(); }
    const std::vector<std::string> &row(size_t i) const { return rows_.at(i); }

  private:
    std::string name_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;

    void writeCsv(const std::string &dir) const;
};

} // namespace scnn

#endif // SCNN_COMMON_TABLE_HH
