#include "common/json.hh"

#include <cmath>
#include <cstdio>

#include "common/logging.hh"

namespace scnn {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
JsonWriter::comma()
{
    if (needComma_ && !afterKey_)
        out_ += ',';
    needComma_ = true;
    afterKey_ = false;
}

void
JsonWriter::raw(const std::string &s)
{
    comma();
    out_ += s;
}

JsonWriter &
JsonWriter::beginObject()
{
    raw("{");
    stack_.push_back(true);
    needComma_ = false;
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    SCNN_ASSERT(!stack_.empty() && stack_.back(),
                "endObject outside an object");
    stack_.pop_back();
    out_ += '}';
    needComma_ = true;
    afterKey_ = false;
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    raw("[");
    stack_.push_back(false);
    needComma_ = false;
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    SCNN_ASSERT(!stack_.empty() && !stack_.back(),
                "endArray outside an array");
    stack_.pop_back();
    out_ += ']';
    needComma_ = true;
    afterKey_ = false;
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    SCNN_ASSERT(!stack_.empty() && stack_.back(),
                "key outside an object");
    comma();
    out_ += '"' + jsonEscape(name) + "\":";
    afterKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    raw('"' + jsonEscape(v) + '"');
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(double v)
{
    if (!std::isfinite(v)) {
        raw("null");
        return *this;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    raw(buf);
    return *this;
}

JsonWriter &
JsonWriter::value(uint64_t v)
{
    raw(std::to_string(v));
    return *this;
}

JsonWriter &
JsonWriter::value(int v)
{
    raw(std::to_string(v));
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    raw(v ? "true" : "false");
    return *this;
}

std::string
JsonWriter::str() const
{
    SCNN_ASSERT(stack_.empty(), "unbalanced JSON document");
    return out_;
}

bool
writeJsonFile(const std::string &path, const std::string &doc)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        warn("cannot write %s", path.c_str());
        return false;
    }
    std::fputs(doc.c_str(), f);
    std::fputc('\n', f);
    std::fclose(f);
    return true;
}

} // namespace scnn
