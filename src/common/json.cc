#include "common/json.hh"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.hh"

namespace scnn {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
JsonWriter::comma()
{
    if (needComma_ && !afterKey_)
        out_ += ',';
    needComma_ = true;
    afterKey_ = false;
}

void
JsonWriter::raw(const std::string &s)
{
    comma();
    out_ += s;
}

JsonWriter &
JsonWriter::beginObject()
{
    raw("{");
    stack_.push_back(true);
    needComma_ = false;
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    SCNN_ASSERT(!stack_.empty() && stack_.back(),
                "endObject outside an object");
    stack_.pop_back();
    out_ += '}';
    needComma_ = true;
    afterKey_ = false;
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    raw("[");
    stack_.push_back(false);
    needComma_ = false;
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    SCNN_ASSERT(!stack_.empty() && !stack_.back(),
                "endArray outside an array");
    stack_.pop_back();
    out_ += ']';
    needComma_ = true;
    afterKey_ = false;
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    SCNN_ASSERT(!stack_.empty() && stack_.back(),
                "key outside an object");
    comma();
    out_ += '"' + jsonEscape(name) + "\":";
    afterKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    raw('"' + jsonEscape(v) + '"');
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(double v)
{
    if (!std::isfinite(v)) {
        raw("null");
        return *this;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    raw(buf);
    return *this;
}

JsonWriter &
JsonWriter::value(uint64_t v)
{
    raw(std::to_string(v));
    return *this;
}

JsonWriter &
JsonWriter::value(int v)
{
    raw(std::to_string(v));
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    raw(v ? "true" : "false");
    return *this;
}

std::string
JsonWriter::str() const
{
    SCNN_ASSERT(stack_.empty(), "unbalanced JSON document");
    return out_;
}

bool
writeJsonFile(const std::string &path, const std::string &doc)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        warn("cannot write %s", path.c_str());
        return false;
    }
    std::fputs(doc.c_str(), f);
    std::fputc('\n', f);
    std::fclose(f);
    return true;
}

// --- parser -----------------------------------------------------------

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &kv : object)
        if (kv.first == key)
            return &kv.second;
    return nullptr;
}

const char *
JsonValue::kindName(Kind k)
{
    switch (k) {
    case Kind::Null:
        return "null";
    case Kind::Bool:
        return "bool";
    case Kind::Number:
        return "number";
    case Kind::String:
        return "string";
    case Kind::Array:
        return "array";
    case Kind::Object:
        return "object";
    }
    return "?";
}

namespace {

/**
 * Recursive-descent parser over a fixed buffer.  Failure is reported
 * through fail() (records the first error with its byte offset) and a
 * false return threaded up the call chain; no exceptions, so a parse
 * attempt on adversarial input cannot escape the false/error contract.
 */
class JsonParser
{
  public:
    JsonParser(const std::string &text, const JsonParseLimits &limits)
        : text_(text), limits_(limits)
    {
    }

    bool
    parse(JsonValue &out, std::string &error)
    {
        if (text_.size() > limits_.maxDocumentBytes) {
            error = strfmt("document of %zu bytes exceeds the %zu-byte"
                           " limit", text_.size(),
                           limits_.maxDocumentBytes);
            return false;
        }
        if (!parseValue(out, 0) || !expectEnd()) {
            error = error_;
            return false;
        }
        return true;
    }

  private:
    bool
    fail(const char *what)
    {
        if (error_.empty())
            error_ = strfmt("%s at byte %zu", what, pos_);
        return false;
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    expectEnd()
    {
        skipSpace();
        if (pos_ != text_.size())
            return fail("trailing characters after the JSON value");
        return true;
    }

    bool
    literal(const char *word)
    {
        const size_t n = std::strlen(word);
        if (text_.compare(pos_, n, word) != 0)
            return fail("unrecognized literal");
        pos_ += n;
        return true;
    }

    bool
    countElement()
    {
        if (++elements_ > limits_.maxElements)
            return fail("too many array/object elements");
        return true;
    }

    bool
    parseString(std::string &out)
    {
        // Caller consumed the opening quote.
        out.clear();
        while (true) {
            if (pos_ >= text_.size())
                return fail("unterminated string");
            if (out.size() > limits_.maxStringBytes)
                return fail("string exceeds the length limit");
            const unsigned char c =
                static_cast<unsigned char>(text_[pos_]);
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                out += static_cast<char>(c);
                ++pos_;
                continue;
            }
            ++pos_; // consume the backslash
            if (pos_ >= text_.size())
                return fail("unterminated escape sequence");
            const char e = text_[pos_++];
            switch (e) {
            case '"':
                out += '"';
                break;
            case '\\':
                out += '\\';
                break;
            case '/':
                out += '/';
                break;
            case 'b':
                out += '\b';
                break;
            case 'f':
                out += '\f';
                break;
            case 'n':
                out += '\n';
                break;
            case 'r':
                out += '\r';
                break;
            case 't':
                out += '\t';
                break;
            case 'u': {
                unsigned cp = 0;
                if (!parseHex4(cp))
                    return false;
                if (cp >= 0xd800 && cp <= 0xdbff) {
                    // High surrogate: require the low half.
                    if (text_.compare(pos_, 2, "\\u") != 0)
                        return fail("unpaired UTF-16 surrogate");
                    pos_ += 2;
                    unsigned lo = 0;
                    if (!parseHex4(lo))
                        return false;
                    if (lo < 0xdc00 || lo > 0xdfff)
                        return fail("invalid UTF-16 surrogate pair");
                    cp = 0x10000 + ((cp - 0xd800) << 10) +
                         (lo - 0xdc00);
                } else if (cp >= 0xdc00 && cp <= 0xdfff) {
                    return fail("unpaired UTF-16 surrogate");
                }
                appendUtf8(out, cp);
                break;
            }
            default:
                return fail("unknown escape sequence");
            }
        }
    }

    bool
    parseHex4(unsigned &out)
    {
        if (pos_ + 4 > text_.size())
            return fail("truncated \\u escape");
        out = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text_[pos_++];
            out <<= 4;
            if (c >= '0' && c <= '9')
                out |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                out |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                out |= static_cast<unsigned>(c - 'A' + 10);
            else
                return fail("bad hex digit in \\u escape");
        }
        return true;
    }

    static void
    appendUtf8(std::string &out, unsigned cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xc0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xe0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else {
            out += static_cast<char>(0xf0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        }
    }

    bool
    parseNumber(JsonValue &out)
    {
        const size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        auto digits = [&] {
            const size_t first = pos_;
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9')
                ++pos_;
            return pos_ > first;
        };
        if (pos_ < text_.size() && text_[pos_] == '0') {
            ++pos_; // leading zero: no further integer digits
        } else if (!digits()) {
            pos_ = start;
            return fail("malformed number");
        }
        bool integral = true;
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            integral = false;
            if (!digits())
                return fail("malformed number (missing fraction)");
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            integral = false;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (!digits())
                return fail("malformed number (missing exponent)");
        }
        const std::string lit = text_.substr(start, pos_ - start);
        out.kind = JsonValue::Kind::Number;
        errno = 0;
        out.number = std::strtod(lit.c_str(), nullptr);
        if (!std::isfinite(out.number))
            return fail("number out of double range");
        if (integral && lit[0] != '-') {
            errno = 0;
            char *end = nullptr;
            const unsigned long long u =
                std::strtoull(lit.c_str(), &end, 10);
            if (errno == 0 && end != nullptr && *end == '\0') {
                out.isUnsigned = true;
                out.uint64 = static_cast<uint64_t>(u);
            }
        }
        return true;
    }

    bool
    parseValue(JsonValue &out, size_t depth)
    {
        if (depth > limits_.maxDepth)
            return fail("nesting exceeds the depth limit");
        skipSpace();
        if (pos_ >= text_.size())
            return fail("unexpected end of document");
        const char c = text_[pos_];
        switch (c) {
        case 'n':
            out.kind = JsonValue::Kind::Null;
            return literal("null");
        case 't':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return literal("true");
        case 'f':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return literal("false");
        case '"':
            ++pos_;
            out.kind = JsonValue::Kind::String;
            return parseString(out.string);
        case '[': {
            ++pos_;
            out.kind = JsonValue::Kind::Array;
            skipSpace();
            if (pos_ < text_.size() && text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            while (true) {
                if (!countElement())
                    return false;
                out.array.emplace_back();
                if (!parseValue(out.array.back(), depth + 1))
                    return false;
                skipSpace();
                if (pos_ >= text_.size())
                    return fail("unterminated array");
                if (text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (text_[pos_] == ']') {
                    ++pos_;
                    return true;
                }
                return fail("expected ',' or ']' in array");
            }
        }
        case '{': {
            ++pos_;
            out.kind = JsonValue::Kind::Object;
            skipSpace();
            if (pos_ < text_.size() && text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            while (true) {
                if (!countElement())
                    return false;
                skipSpace();
                if (pos_ >= text_.size() || text_[pos_] != '"')
                    return fail("expected a string object key");
                ++pos_;
                std::string key;
                if (!parseString(key))
                    return false;
                if (out.find(key) != nullptr)
                    return fail("duplicate object key");
                skipSpace();
                if (pos_ >= text_.size() || text_[pos_] != ':')
                    return fail("expected ':' after object key");
                ++pos_;
                out.object.emplace_back(std::move(key), JsonValue());
                if (!parseValue(out.object.back().second, depth + 1))
                    return false;
                skipSpace();
                if (pos_ >= text_.size())
                    return fail("unterminated object");
                if (text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (text_[pos_] == '}') {
                    ++pos_;
                    return true;
                }
                return fail("expected ',' or '}' in object");
            }
        }
        default:
            if (c == '-' || (c >= '0' && c <= '9'))
                return parseNumber(out);
            return fail("unexpected character");
        }
    }

    const std::string &text_;
    const JsonParseLimits &limits_;
    size_t pos_ = 0;
    size_t elements_ = 0;
    std::string error_;
};

} // anonymous namespace

bool
parseJson(const std::string &text, JsonValue &out, std::string &error,
          const JsonParseLimits &limits)
{
    out = JsonValue();
    error.clear();
    JsonParser parser(text, limits);
    return parser.parse(out, error);
}

} // namespace scnn
