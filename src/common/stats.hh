/**
 * @file
 * Lightweight statistics containers used throughout the simulators:
 * counters, scalar accumulators (min/max/mean), histograms, and a named
 * registry (StatSet) that can be dumped in a readable form.
 *
 * These mirror (in miniature) the role of gem5's stats package: every
 * simulator structure owns named stats that benches and tests inspect.
 */

#ifndef SCNN_COMMON_STATS_HH
#define SCNN_COMMON_STATS_HH

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace scnn {

/** Monotonically increasing event counter. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator+=(uint64_t n) { value_ += n; return *this; }
    Counter &operator++() { ++value_; return *this; }

    uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    uint64_t value_ = 0;
};

/**
 * Accumulates samples of a scalar quantity and exposes count, sum,
 * mean, min, and max.
 */
class Accumulator
{
  public:
    void
    sample(double v)
    {
        ++count_;
        sum_ += v;
        if (v < min_) min_ = v;
        if (v > max_) max_ = v;
    }

    uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    void
    reset()
    {
        count_ = 0;
        sum_ = 0.0;
        min_ = std::numeric_limits<double>::infinity();
        max_ = -std::numeric_limits<double>::infinity();
    }

  private:
    uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Fixed-bucket histogram over [lo, hi) with out-of-range samples
 * clamped into the first/last bucket.  Used e.g. for per-operation
 * accumulator-bank conflict depth.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, size_t buckets);

    void sample(double v, uint64_t weight = 1);

    size_t buckets() const { return counts_.size(); }
    uint64_t bucketCount(size_t i) const { return counts_.at(i); }
    double bucketLo(size_t i) const;
    double bucketHi(size_t i) const;
    uint64_t totalSamples() const { return total_; }
    double mean() const { return total_ ? weightedSum_ / static_cast<double>(total_) : 0.0; }

    void reset();

    /** Multi-line human-readable rendering. */
    std::string toString(const std::string &name) const;

  private:
    double lo_;
    double hi_;
    std::vector<uint64_t> counts_;
    uint64_t total_ = 0;
    double weightedSum_ = 0.0;
};

/**
 * A named collection of scalar statistics.  Simulators fill one of
 * these per layer; tests assert on entries by name, and benches print
 * them.  Values are stored as doubles; counters convert exactly up to
 * 2^53 which far exceeds any event count in these experiments.
 */
class StatSet
{
  public:
    void set(const std::string &name, double value);
    void add(const std::string &name, double delta);

    bool has(const std::string &name) const;

    /** @return value for name; fatal() if absent. */
    double get(const std::string &name) const;

    /** @return value for name, or fallback if absent. */
    double getOr(const std::string &name, double fallback) const;

    const std::map<std::string, double> &entries() const { return map_; }

    /** Merge another StatSet by summing matching entries. */
    void accumulate(const StatSet &other);

    std::string toString(const std::string &title) const;

  private:
    std::map<std::string, double> map_;
};

} // namespace scnn

#endif // SCNN_COMMON_STATS_HH
