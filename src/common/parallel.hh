/**
 * @file
 * Shared parallel-execution subsystem: a fixed-size thread pool (no
 * work stealing) with parallelFor / parallelMap helpers used by the
 * cycle-level simulators and the experiment drivers.
 *
 * Determinism contract: callers must make each index of a parallelFor
 * write only to its own slot(s) and perform any cross-index reduction
 * serially in index order after the parallel section returns.  Under
 * that discipline results are bit-identical for every thread count
 * (including 1), which the test suite asserts end-to-end.
 *
 * Thread-count resolution, in priority order:
 *   1. an explicit per-call / per-run `threads` value > 0,
 *   2. setDefaultThreads(n) with n > 0 (e.g. from a --threads flag),
 *   3. the SCNN_THREADS environment variable,
 *   4. std::thread::hardware_concurrency().
 *
 * Nested parallelism is guarded: a parallelFor issued from inside a
 * pool worker runs inline on that worker (no new tasks), so fanning
 * out at the experiment level automatically serializes the per-layer
 * inner loops instead of oversubscribing or deadlocking the pool.
 */

#ifndef SCNN_COMMON_PARALLEL_HH
#define SCNN_COMMON_PARALLEL_HH

#include <cstddef>
#include <functional>
#include <vector>

namespace scnn {

/**
 * Resolve a requested thread count: `requested` > 0 wins, else the
 * setDefaultThreads() override, else SCNN_THREADS, else the hardware
 * concurrency (at least 1).
 */
int resolveThreads(int requested = 0);

/**
 * Override the default thread count for subsequent parallel sections
 * (0 restores automatic resolution).  Returns the previous override.
 */
int setDefaultThreads(int n);

/** True when called from inside a pool worker (nested region). */
bool inParallelRegion();

/**
 * Run body(i) for i in [0, n) across up to `threads` threads (resolved
 * via resolveThreads).  Indices are claimed dynamically, so the
 * execution order is unspecified; the caller guarantees per-index
 * isolation (see the determinism contract above).  The calling thread
 * participates in the work.  If any body throws, the first exception
 * (in completion order) is rethrown on the caller after all workers
 * finish; remaining unclaimed indices are skipped.
 *
 * Runs inline (serially, in index order) when n <= 1, the resolved
 * thread count is 1, or the caller is already inside a parallel
 * region.
 */
void parallelFor(size_t n, const std::function<void(size_t)> &body,
                 int threads = 0);

/**
 * Map fn over items with parallelFor, collecting results in item
 * order.  The result type must be default-constructible and movable.
 */
template <typename T, typename F>
auto
parallelMap(const std::vector<T> &items, F &&fn, int threads = 0)
    -> std::vector<decltype(fn(items[size_t(0)]))>
{
    using R = decltype(fn(items[size_t(0)]));
    std::vector<R> out(items.size());
    parallelFor(
        items.size(), [&](size_t i) { out[i] = fn(items[i]); }, threads);
    return out;
}

/**
 * Parse a `--threads=N` (or `--threads N`) argument out of argv,
 * apply it via setDefaultThreads, and compact argv in place.  Returns
 * the new argc.  Shared by the CLI tools and bench binaries so they
 * all expose the same contract.
 */
int consumeThreadsFlag(int argc, char **argv);

} // namespace scnn

#endif // SCNN_COMMON_PARALLEL_HH
