#include "common/retry.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace scnn {

std::string
validateRetryPolicy(const RetryPolicy &policy)
{
    if (!(policy.baseDelayMs >= 0.0))
        return "baseDelayMs must be >= 0";
    if (!(policy.multiplier >= 1.0))
        return "multiplier must be >= 1";
    if (!(policy.maxDelayMs >= policy.baseDelayMs))
        return "maxDelayMs must be >= baseDelayMs";
    if (!(policy.jitter >= 0.0 && policy.jitter < 1.0))
        return "jitter must be in [0, 1)";
    if (policy.maxAttempts < 0)
        return "maxAttempts must be >= 0";
    if (!(policy.deadlineMs >= 0.0))
        return "deadlineMs must be >= 0";
    if (policy.maxAttempts == 0 && policy.deadlineMs == 0.0)
        return "one of maxAttempts and deadlineMs must bound the "
               "schedule";
    return "";
}

RetrySchedule::RetrySchedule(const RetryPolicy &policy, uint64_t seed,
                             const std::string &label)
    : policy_(policy), seed_(seed), label_(label),
      rng_("retry/" + label, seed)
{
    const std::string problem = validateRetryPolicy(policy);
    SCNN_ASSERT(problem.empty(), "bad RetryPolicy (%s): %s",
                label.c_str(), problem.c_str());
}

bool
RetrySchedule::next(double &delayMs)
{
    if (policy_.maxAttempts > 0 && attempts_ >= policy_.maxAttempts)
        return false;
    // Exponential growth clamped at the ceiling; computed from the
    // attempt number, not the previous jittered value, so jitter
    // never compounds.
    double planned = policy_.baseDelayMs *
                     std::pow(policy_.multiplier, attempts_);
    planned = std::min(planned, policy_.maxDelayMs);
    if (policy_.jitter > 0.0)
        planned *= rng_.uniform(1.0 - policy_.jitter,
                                1.0 + policy_.jitter);
    if (policy_.deadlineMs > 0.0 &&
        plannedMs_ + planned > policy_.deadlineMs)
        return false;
    plannedMs_ += planned;
    ++attempts_;
    delayMs = planned;
    return true;
}

void
RetrySchedule::reset()
{
    attempts_ = 0;
    plannedMs_ = 0.0;
    rng_ = Rng("retry/" + label_, seed_);
}

} // namespace scnn
