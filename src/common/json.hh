/**
 * @file
 * Minimal JSON support: a streaming writer for machine-readable bench
 * output (the BENCH_*.json files that track the perf trajectory across
 * PRs) and a defensive recursive-descent parser for the simulation
 * service's JSON-lines request protocol (tools/scnn_serve).
 *
 * The parser is built for untrusted input: it never throws and never
 * fatal()s -- malformed documents produce a false return plus a
 * position-tagged error string -- and it enforces explicit limits
 * (nesting depth, string length, element count, document size) so
 * adversarial lines cannot exhaust the server.
 */

#ifndef SCNN_COMMON_JSON_HH
#define SCNN_COMMON_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace scnn {

class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Object member key; must be followed by a value or container. */
    JsonWriter &key(const std::string &name);

    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(double v);
    JsonWriter &value(uint64_t v);
    JsonWriter &value(int v);
    JsonWriter &value(bool v);

    /** The finished document; fatal() if containers are unbalanced. */
    std::string str() const;

  private:
    void comma();
    void raw(const std::string &s);

    std::string out_;
    /** Stack entry: true = in object, false = in array. */
    std::vector<bool> stack_;
    bool needComma_ = false;
    bool afterKey_ = false;
};

/** JSON string escaping (quotes, backslashes, control characters). */
std::string jsonEscape(const std::string &s);

/**
 * Write a JSON document to a file.  Returns false (with a warn) when
 * the file cannot be written -- bench runs should not die on an
 * unwritable results directory.
 */
bool writeJsonFile(const std::string &path, const std::string &doc);

/** Parser limits; defaults are sized for service request lines. */
struct JsonParseLimits
{
    size_t maxDepth = 32;            ///< nesting depth
    size_t maxStringBytes = 1 << 16; ///< one string literal
    size_t maxElements = 4096;       ///< total array/object members
    size_t maxDocumentBytes = 1 << 20; ///< whole document
};

/**
 * A parsed JSON value.  Numbers are kept as doubles plus an exact
 * unsigned view when the literal was a non-negative integer that fits
 * uint64_t (seeds exceed the 53-bit double mantissa).  Object members
 * preserve insertion order; duplicate keys are a parse error (the
 * service must not silently drop half of a conflicting request).
 */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    bool isUnsigned = false;   ///< uint64 holds the exact value
    uint64_t uint64 = 0;
    std::string string;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** Object member by key; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;

    static const char *kindName(Kind k);
};

/**
 * Parse a complete JSON document (trailing garbage is an error).
 * Returns false and sets `error` (with a byte offset) on malformed
 * input or any exceeded limit; never throws, never fatal()s.
 */
bool parseJson(const std::string &text, JsonValue &out,
               std::string &error,
               const JsonParseLimits &limits = JsonParseLimits());

} // namespace scnn

#endif // SCNN_COMMON_JSON_HH
