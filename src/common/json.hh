/**
 * @file
 * Minimal streaming JSON writer for machine-readable bench output
 * (the BENCH_*.json files that track the perf trajectory across PRs).
 * Commas and indentation are managed automatically; values are
 * emitted in insertion order.  Not a parser -- write-only.
 */

#ifndef SCNN_COMMON_JSON_HH
#define SCNN_COMMON_JSON_HH

#include <cstdint>
#include <string>
#include <vector>

namespace scnn {

class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Object member key; must be followed by a value or container. */
    JsonWriter &key(const std::string &name);

    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(double v);
    JsonWriter &value(uint64_t v);
    JsonWriter &value(int v);
    JsonWriter &value(bool v);

    /** The finished document; fatal() if containers are unbalanced. */
    std::string str() const;

  private:
    void comma();
    void raw(const std::string &s);

    std::string out_;
    /** Stack entry: true = in object, false = in array. */
    std::vector<bool> stack_;
    bool needComma_ = false;
    bool afterKey_ = false;
};

/** JSON string escaping (quotes, backslashes, control characters). */
std::string jsonEscape(const std::string &s);

/**
 * Write a JSON document to a file.  Returns false (with a warn) when
 * the file cannot be written -- bench runs should not die on an
 * unwritable results directory.
 */
bool writeJsonFile(const std::string &path, const std::string &doc);

} // namespace scnn

#endif // SCNN_COMMON_JSON_HH
