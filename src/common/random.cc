#include "common/random.hh"

#include <cmath>

#include "common/logging.hh"

namespace scnn {

namespace {

inline uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // anonymous namespace

uint64_t
Rng::splitmix64(uint64_t &state)
{
    uint64_t z = (state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

void
Rng::seedFrom(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
    // xoshiro must not start from the all-zero state.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 0x9E3779B97F4A7C15ull;
}

Rng::Rng(uint64_t seed)
{
    seedFrom(seed);
}

Rng::Rng(const std::string &label, uint64_t seed)
{
    seedFrom(seed ^ hashLabel(label));
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

uint64_t
Rng::uniformInt(uint64_t n)
{
    SCNN_ASSERT(n > 0, "uniformInt needs a positive bound");
    // Rejection sampling to avoid modulo bias.
    const uint64_t limit = ~0ull - (~0ull % n);
    uint64_t x;
    do {
        x = next();
    } while (x >= limit);
    return x % n;
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

double
Rng::normal()
{
    if (hasCachedNormal_) {
        hasCachedNormal_ = false;
        return cachedNormal_;
    }
    double u1 = 0.0;
    while (u1 <= 1e-300)
        u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cachedNormal_ = r * std::sin(theta);
    hasCachedNormal_ = true;
    return r * std::cos(theta);
}

Rng
Rng::split(const std::string &label)
{
    return Rng(label, next());
}

uint64_t
hashLabel(const std::string &label)
{
    uint64_t h = 0xCBF29CE484222325ull;
    for (unsigned char c : label) {
        h ^= c;
        h *= 0x100000001B3ull;
    }
    return h;
}

} // namespace scnn
