/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * Every experiment in this repository is seeded explicitly so results
 * are bit-reproducible across runs and machines.  The generator is
 * xoshiro256** (Blackman & Vigna), seeded through SplitMix64 so that
 * small human-friendly seeds expand into well-distributed state.
 */

#ifndef SCNN_COMMON_RANDOM_HH
#define SCNN_COMMON_RANDOM_HH

#include <cstdint>
#include <string>

namespace scnn {

/**
 * xoshiro256** PRNG.  Fast, high-quality, 2^256-1 period.  Not
 * cryptographic; used only for synthetic tensor generation and
 * tie-breaking in models.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(uint64_t seed = 0x5CA77E5u);

    /**
     * Construct from a string label plus a seed, so independent
     * workloads ("alexnet/conv3/weights") derive independent streams
     * from one master seed.
     */
    Rng(const std::string &label, uint64_t seed);

    /** Next raw 64-bit output. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n).  @pre n > 0. */
    uint64_t uniformInt(uint64_t n);

    /** Bernoulli trial with probability p of returning true. */
    bool bernoulli(double p);

    /** Standard normal via Box-Muller (unit mean-zero gaussian). */
    double normal();

    /**
     * Split off an independent child generator for the given label.
     * Children are independent of the parent's future outputs.
     */
    Rng split(const std::string &label);

  private:
    uint64_t s_[4];

    static uint64_t splitmix64(uint64_t &state);
    void seedFrom(uint64_t seed);

    /** Cached second Box-Muller variate. */
    double cachedNormal_ = 0.0;
    bool hasCachedNormal_ = false;
};

/** Stable 64-bit FNV-1a hash of a string (used to derive seeds). */
uint64_t hashLabel(const std::string &label);

} // namespace scnn

#endif // SCNN_COMMON_RANDOM_HH
