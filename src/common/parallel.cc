#include "common/parallel.hh"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

#include "common/logging.hh"

namespace scnn {

namespace {

/** Hard cap on pool size: beyond this, extra requested threads just
 *  share the existing workers. */
constexpr int kMaxPoolThreads = 256;

thread_local bool tlsInWorker = false;

std::atomic<int> defaultThreadsOverride{0};

int
envThreads()
{
    static const int cached = [] {
        const char *s = std::getenv("SCNN_THREADS");
        if (s == nullptr || *s == '\0')
            return 0;
        char *end = nullptr;
        const long v = std::strtol(s, &end, 10);
        if (end == s || *end != '\0' || v < 0) {
            warn("ignoring malformed SCNN_THREADS='%s'", s);
            return 0;
        }
        return static_cast<int>(std::min(
            v, static_cast<long>(kMaxPoolThreads)));
    }();
    return cached;
}

/**
 * Fixed-size pool of workers fed from one FIFO queue.  Workers are
 * spawned on demand up to the requested concurrency (never destroyed
 * until process exit); there is no work stealing -- parallelFor hands
 * each worker a self-scheduling loop over an atomic index instead.
 */
class ThreadPool
{
  public:
    static ThreadPool &
    instance()
    {
        static ThreadPool pool;
        return pool;
    }

    /** Enqueue a task, growing the pool toward `wanted` workers. */
    void
    submit(std::function<void()> task, int wanted)
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            ensureWorkersLocked(wanted);
            queue_.push_back(std::move(task));
        }
        cv_.notify_one();
    }

  private:
    ThreadPool() = default;

    ~ThreadPool()
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            stop_ = true;
        }
        cv_.notify_all();
        for (auto &w : workers_)
            w.join();
    }

    void
    ensureWorkersLocked(int wanted)
    {
        wanted = std::min(wanted, kMaxPoolThreads);
        while (static_cast<int>(workers_.size()) < wanted)
            workers_.emplace_back([this] { workerLoop(); });
    }

    void
    workerLoop()
    {
        tlsInWorker = true;
        for (;;) {
            std::function<void()> task;
            {
                std::unique_lock<std::mutex> lock(mu_);
                cv_.wait(lock,
                         [this] { return stop_ || !queue_.empty(); });
                if (stop_ && queue_.empty())
                    return;
                task = std::move(queue_.front());
                queue_.pop_front();
            }
            task();
        }
    }

    std::mutex mu_;
    std::condition_variable cv_;
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    bool stop_ = false;
};

/** Shared state of one parallelFor invocation. */
struct ForState
{
    std::atomic<size_t> next{0};
    size_t n = 0;
    const std::function<void(size_t)> *body = nullptr;

    std::mutex mu;
    std::condition_variable done;
    int live = 0;               ///< helper tasks still running
    std::exception_ptr error;   ///< first failure
    std::atomic<bool> cancelled{false};

    void
    runIndices()
    {
        for (;;) {
            if (cancelled.load(std::memory_order_relaxed))
                return;
            const size_t i = next.fetch_add(1);
            if (i >= n)
                return;
            try {
                (*body)(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(mu);
                if (!error)
                    error = std::current_exception();
                cancelled.store(true, std::memory_order_relaxed);
                return;
            }
        }
    }
};

} // anonymous namespace

int
setDefaultThreads(int n)
{
    SCNN_ASSERT(n >= 0, "negative thread count %d", n);
    return defaultThreadsOverride.exchange(
        std::min(n, kMaxPoolThreads));
}

int
resolveThreads(int requested)
{
    if (requested > 0)
        return std::min(requested, kMaxPoolThreads);
    const int overridden = defaultThreadsOverride.load();
    if (overridden > 0)
        return overridden;
    const int env = envThreads();
    if (env > 0)
        return env;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(
                        std::min<unsigned>(hw, kMaxPoolThreads))
                  : 1;
}

bool
inParallelRegion()
{
    return tlsInWorker;
}

void
parallelFor(size_t n, const std::function<void(size_t)> &body,
            int threads)
{
    if (n == 0)
        return;
    const int t = resolveThreads(threads);
    if (t <= 1 || n == 1 || tlsInWorker) {
        // Serial path: in index order, exceptions propagate directly.
        for (size_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    const int helpers = static_cast<int>(
        std::min<size_t>(static_cast<size_t>(t) - 1, n - 1));
    auto state = std::make_shared<ForState>();
    state->n = n;
    state->body = &body;
    state->live = helpers;

    for (int h = 0; h < helpers; ++h) {
        ThreadPool::instance().submit(
            [state] {
                state->runIndices();
                std::lock_guard<std::mutex> lock(state->mu);
                if (--state->live == 0)
                    state->done.notify_all();
            },
            helpers);
    }

    // The caller participates instead of blocking idle.  It counts as
    // a parallel region meanwhile, so nested parallelFors issued from
    // caller-executed indices inline just like on pool workers.
    tlsInWorker = true;
    state->runIndices();
    tlsInWorker = false;

    std::unique_lock<std::mutex> lock(state->mu);
    state->done.wait(lock, [&] { return state->live == 0; });
    if (state->error)
        std::rethrow_exception(state->error);
}

namespace {

/** Parse a --threads value; user errors are fatal(), not panics. */
int
parseThreadsValue(const char *s)
{
    char *end = nullptr;
    const long v = std::strtol(s, &end, 10);
    if (end == s || *end != '\0' || v < 0) {
        fatal("bad --threads value '%s' (want a non-negative integer)",
              s);
    }
    return static_cast<int>(
        std::min(v, static_cast<long>(kMaxPoolThreads)));
}

} // anonymous namespace

int
consumeThreadsFlag(int argc, char **argv)
{
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--threads=", 10) == 0) {
            setDefaultThreads(parseThreadsValue(arg + 10));
        } else if (std::strcmp(arg, "--threads") == 0 &&
                   i + 1 < argc) {
            setDefaultThreads(parseThreadsValue(argv[++i]));
        } else {
            argv[out++] = argv[i];
        }
    }
    for (int i = out; i < argc; ++i)
        argv[i] = nullptr;
    return out;
}

} // namespace scnn
