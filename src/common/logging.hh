/**
 * @file
 * Status and error reporting for the SCNN simulator, in the spirit of
 * gem5's logging facilities.
 *
 * Four severity levels are provided:
 *  - panic():  something happened that should never happen regardless of
 *              user input, i.e. a simulator bug.  Aborts (core dump).
 *  - fatal():  the simulation cannot continue because of a user error
 *              (bad configuration, impossible layer shape).  Exits with
 *              status 1.
 *  - warn():   something is suspicious or approximated; the run
 *              continues.
 *  - inform(): plain status output.
 *
 * All functions accept printf-style format strings and are checked by
 * the compiler.
 */

#ifndef SCNN_COMMON_LOGGING_HH
#define SCNN_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace scnn {

/**
 * Render a printf-style format string into a std::string.
 *
 * @param fmt printf-style format.
 * @return the formatted string.
 */
std::string strfmt(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** va_list flavour of strfmt(). */
std::string vstrfmt(const char *fmt, va_list args);

/**
 * Report a simulator bug and abort.  Never returns.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user error and exit(1).  Never returns.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a suspicious condition; execution continues. */
void warn(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report normal operating status. */
void inform(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Control whether warn()/inform() produce output (useful in tests and
 * quiet benchmark runs).  panic()/fatal() are never silenced.
 *
 * @param quiet true suppresses warn()/inform() output.
 * @return the previous quiet setting.
 */
bool setQuiet(bool quiet);

/** @return current quiet setting. */
bool isQuiet();

/**
 * Simulator assertion used on hot paths that must also hold in release
 * builds.  Unlike assert(), this is always checked.
 */
#define SCNN_ASSERT(cond, ...)                                          \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::scnn::panic("assertion '%s' failed at %s:%d: %s",         \
                          #cond, __FILE__, __LINE__,                    \
                          ::scnn::strfmt(__VA_ARGS__).c_str());         \
        }                                                               \
    } while (0)

} // namespace scnn

#endif // SCNN_COMMON_LOGGING_HH
