#include "common/stats.hh"

#include <cmath>
#include <sstream>

#include "common/logging.hh"

namespace scnn {

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0)
{
    SCNN_ASSERT(hi > lo && buckets > 0,
                "histogram needs hi > lo and at least one bucket");
}

void
Histogram::sample(double v, uint64_t weight)
{
    const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
    auto idx = static_cast<long>(std::floor((v - lo_) / w));
    if (idx < 0)
        idx = 0;
    if (idx >= static_cast<long>(counts_.size()))
        idx = static_cast<long>(counts_.size()) - 1;
    counts_[static_cast<size_t>(idx)] += weight;
    total_ += weight;
    weightedSum_ += v * static_cast<double>(weight);
}

double
Histogram::bucketLo(size_t i) const
{
    const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
    return lo_ + w * static_cast<double>(i);
}

double
Histogram::bucketHi(size_t i) const
{
    const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
    return lo_ + w * static_cast<double>(i + 1);
}

void
Histogram::reset()
{
    for (auto &c : counts_)
        c = 0;
    total_ = 0;
    weightedSum_ = 0.0;
}

std::string
Histogram::toString(const std::string &name) const
{
    std::ostringstream os;
    os << name << " (n=" << total_ << ", mean=" << mean() << ")\n";
    for (size_t i = 0; i < counts_.size(); ++i) {
        if (counts_[i] == 0)
            continue;
        os << strfmt("  [%8.3g, %8.3g): %llu\n", bucketLo(i), bucketHi(i),
                     static_cast<unsigned long long>(counts_[i]));
    }
    return os.str();
}

void
StatSet::set(const std::string &name, double value)
{
    map_[name] = value;
}

void
StatSet::add(const std::string &name, double delta)
{
    map_[name] += delta;
}

bool
StatSet::has(const std::string &name) const
{
    return map_.count(name) > 0;
}

double
StatSet::get(const std::string &name) const
{
    auto it = map_.find(name);
    if (it == map_.end())
        fatal("StatSet: no stat named '%s'", name.c_str());
    return it->second;
}

double
StatSet::getOr(const std::string &name, double fallback) const
{
    auto it = map_.find(name);
    return it == map_.end() ? fallback : it->second;
}

void
StatSet::accumulate(const StatSet &other)
{
    for (const auto &[k, v] : other.map_)
        map_[k] += v;
}

std::string
StatSet::toString(const std::string &title) const
{
    std::ostringstream os;
    os << title << "\n";
    for (const auto &[k, v] : map_)
        os << strfmt("  %-32s %.6g\n", k.c_str(), v);
    return os.str();
}

} // namespace scnn
