/**
 * @file
 * Deadline-capped exponential backoff with deterministic seeded
 * jitter -- the one retry policy every reconnect/retry site in the
 * serving and DSE stack routes through.
 *
 * Retrying is where distributed systems quietly lose their
 * determinism and their manners: ad-hoc retry loops either hammer a
 * saturated peer (no backoff), retry forever (no deadline), or
 * synchronize into thundering herds (no jitter).  This policy fixes
 * all three while keeping the repository's reproducibility contract:
 * the jitter comes from the seeded Rng, so the exact delay sequence
 * of attempt 1, 2, 3, ... is a pure function of (policy, label,
 * seed) -- a chaos test can assert on it, and two runs of the same
 * sweep back off identically.
 *
 * The budget is expressed over *planned* delay, not wall-clock time:
 * a RetrySchedule sums the delays it has handed out and refuses the
 * attempt that would push the total past deadlineMs.  That keeps the
 * schedule deterministic (no clock reads) while still bounding how
 * long a caller can spin against a dead peer.
 *
 * Typical use:
 *
 *   RetrySchedule retry(policy, seed, "shard 3 reconnect");
 *   double delayMs;
 *   while (retry.next(delayMs)) {
 *       sleepFor(delayMs);
 *       if (tryTheThing())
 *           break;
 *   }
 *   // retry budget exhausted -> escalate (fail over, give up)
 */

#ifndef SCNN_COMMON_RETRY_HH
#define SCNN_COMMON_RETRY_HH

#include <cstdint>
#include <string>

#include "common/random.hh"

namespace scnn {

/** Shape of an exponential-backoff retry budget. */
struct RetryPolicy
{
    /** Delay before the first retry (before jitter). */
    double baseDelayMs = 10.0;

    /** Per-attempt growth factor (>= 1). */
    double multiplier = 2.0;

    /** Ceiling a single delay is clamped to (before jitter). */
    double maxDelayMs = 1000.0;

    /**
     * Jitter fraction in [0, 1): each delay is scaled by a factor
     * drawn uniformly from [1 - jitter, 1 + jitter).  0 disables
     * jitter entirely.
     */
    double jitter = 0.25;

    /** Hard cap on attempts; 0 = bounded by the deadline only. */
    int maxAttempts = 8;

    /**
     * Budget over the *sum of planned delays*: the attempt whose
     * delay would push the running total past this is refused.
     * 0 = bounded by maxAttempts only.  At least one of maxAttempts
     * and deadlineMs must be nonzero.
     */
    double deadlineMs = 0.0;
};

/**
 * One retry sequence under a policy.  next() hands out the delay to
 * sleep before the upcoming attempt; false means the budget (attempts
 * or deadline) is exhausted and the caller should escalate.  The
 * delay sequence is deterministic in (policy, seed, label).
 */
class RetrySchedule
{
  public:
    RetrySchedule(const RetryPolicy &policy, uint64_t seed,
                  const std::string &label);

    /**
     * Plan the next attempt.  On true, `delayMs` is the jittered
     * delay to wait before retrying.  On false the budget is spent
     * and `delayMs` is untouched.
     */
    bool next(double &delayMs);

    /** Attempts handed out so far. */
    int attempts() const { return attempts_; }

    /** Total delay handed out so far (ms). */
    double plannedMs() const { return plannedMs_; }

    /** Forget all progress: the next next() starts from attempt 1. */
    void reset();

  private:
    const RetryPolicy policy_;
    const uint64_t seed_;
    const std::string label_;
    Rng rng_;
    int attempts_ = 0;
    double plannedMs_ = 0.0;
};

/** Validate a policy; returns a description of the first problem, or
 *  an empty string when the policy is usable. */
std::string validateRetryPolicy(const RetryPolicy &policy);

} // namespace scnn

#endif // SCNN_COMMON_RETRY_HH
