/**
 * @file
 * Dense baseline accelerators (Section V, Table IV).
 *
 * DCNN executes PT-IS-DP-dense: the same 1024 multipliers as SCNN,
 * arranged as 64 PEs each with a 16-wide dot-product unit.  Each PE
 * owns a disjoint output tile; for each output pixel and output
 * channel it reduces the (C/groups) x R x S receptive field in
 * dot-product chunks, holding input chunks stationary across an
 * output-channel group.  Utilization losses come from reduction-length
 * padding (ceil(CRS/16)) and output-tile fragmentation.
 *
 * DCNN-opt is identical in timing but adds two energy optimizations:
 * zero-operand multiplier gating, and RLE compression of DRAM
 * activation traffic (Section V).
 *
 * Timing and event counts are closed-form in the layer shape (dense
 * execution is data-independent), so the simulator only touches the
 * tensors for optional functional output and for measured densities.
 */

#ifndef SCNN_DCNN_SIMULATOR_HH
#define SCNN_DCNN_SIMULATOR_HH

#include "arch/config.hh"
#include "arch/energy_model.hh"
#include "nn/network.hh"
#include "nn/workload.hh"
#include "scnn/result.hh"

namespace scnn {

/**
 * Options for dense runs.  DCNN-opt's compressed-DRAM accounting uses
 * the base outputDensityHint when the run is not functional; the
 * network runner wires in the next layer's measured input density
 * (which is this layer's output density by construction).
 */
struct DcnnRunOptions : RunOptions
{
};

class DcnnSimulator
{
  public:
    explicit DcnnSimulator(AcceleratorConfig cfg = dcnnConfig(),
                           EnergyModel energy = EnergyModel());

    LayerResult runLayer(const LayerWorkload &workload,
                         const DcnnRunOptions &opts = DcnnRunOptions());

    NetworkResult runNetwork(const Network &net, uint64_t seed,
                             bool evalOnly = true,
                             bool functional = false,
                             int threads = 0);

    const AcceleratorConfig &config() const { return cfg_; }

  private:
    AcceleratorConfig cfg_;
    EnergyModel energy_;
};

/**
 * Fraction of the R x S x outW x outH tap space whose input coordinate
 * lands inside the (unpadded) input plane.  Dense hardware spends a
 * multiplier slot on every tap; padded taps read zero, which matters
 * for DCNN-opt's gating statistics.
 */
double validTapFraction(const ConvLayerParams &layer);

} // namespace scnn

#endif // SCNN_DCNN_SIMULATOR_HH
