#include "dcnn/simulator.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "nn/reference.hh"
#include "scnn/tiling.hh"
#include "tensor/sparse_block.hh"

namespace scnn {

namespace {

constexpr uint64_t kRleElemBits = kDataBits + kRleIndexBits; // 20

uint64_t
ceilDiv(uint64_t a, uint64_t b)
{
    return (a + b - 1) / b;
}

/** Input-plane footprint (with halo) needed for an output tile. */
long
inputFootprint(const ConvLayerParams &layer, const TileRect &outTile)
{
    if (outTile.empty())
        return 0;
    const int x0 = std::max(0, outTile.x0 * layer.strideX - layer.padX);
    const int x1 = std::min(layer.inWidth,
                            (outTile.x1 - 1) * layer.strideX -
                                layer.padX + layer.filterW);
    const int y0 = std::max(0, outTile.y0 * layer.strideY - layer.padY);
    const int y1 = std::min(layer.inHeight,
                            (outTile.y1 - 1) * layer.strideY -
                                layer.padY + layer.filterH);
    if (x1 <= x0 || y1 <= y0)
        return 0;
    return static_cast<long>(x1 - x0) * (y1 - y0);
}

/** Largest power-of-two Kc whose accumulator footprint fits. */
int
chooseDenseKc(const ConvLayerParams &layer, const AcceleratorConfig &cfg,
              long maxOutTileArea)
{
    const long entries = cfg.pe.denseAccBufBytes / 3; // 24-bit entries
    if (maxOutTileArea <= 0)
        return 1;
    int kc = 1;
    while (kc * 2 <= layer.outChannels &&
           static_cast<long>(kc) * 2 * maxOutTileArea <= entries) {
        kc *= 2;
    }
    return kc;
}

} // anonymous namespace

double
validTapFraction(const ConvLayerParams &layer)
{
    // Separable in x and y.
    auto axisFraction = [](int out, int filt, int stride, int pad,
                           int inDim) {
        long valid = 0;
        for (int o = 0; o < out; ++o) {
            for (int f = 0; f < filt; ++f) {
                const int x = o * stride + f - pad;
                if (x >= 0 && x < inDim)
                    ++valid;
            }
        }
        return static_cast<double>(valid) /
               (static_cast<double>(out) * filt);
    };
    return axisFraction(layer.outWidth(), layer.filterW, layer.strideX,
                        layer.padX, layer.inWidth) *
           axisFraction(layer.outHeight(), layer.filterH, layer.strideY,
                        layer.padY, layer.inHeight);
}

DcnnSimulator::DcnnSimulator(AcceleratorConfig cfg, EnergyModel energy)
    : cfg_(std::move(cfg)), energy_(energy)
{
    cfg_.validateOrDie();
    SCNN_ASSERT(cfg_.kind == ArchKind::DCNN ||
                cfg_.kind == ArchKind::DCNN_OPT,
                "DcnnSimulator requires a dense configuration");
}

LayerResult
DcnnSimulator::runLayer(const LayerWorkload &workload,
                        const DcnnRunOptions &opts)
{
    const ConvLayerParams &layer = workload.layer;
    layer.validate();
    const bool gated = cfg_.kind == ArchKind::DCNN_OPT;

    LayerResult res;
    res.layerName = layer.name;
    res.archName = cfg_.name;
    res.denseMacs = layer.macs();

    const int numPes = cfg_.numPes();
    const int dotW = cfg_.pe.dotWidth;
    const uint64_t crsGroup =
        static_cast<uint64_t>(layer.inChannels / layer.groups) *
        layer.filterW * layer.filterH;
    const uint64_t dpChunks = ceilDiv(crsGroup, dotW);

    SpatialTiling tiling(layer, cfg_.peRows, cfg_.peCols);

    long maxOutTileArea = 0;
    for (int pr = 0; pr < cfg_.peRows; ++pr)
        for (int pc = 0; pc < cfg_.peCols; ++pc)
            maxOutTileArea = std::max(
                maxOutTileArea, tiling.outputTile(pr, pc).area());
    const int kcDense = chooseDenseKc(layer, cfg_, maxOutTileArea);
    const int numGroups =
        static_cast<int>(ceilDiv(layer.outChannels, kcDense));

    // --- timing: each PE processes its output tile independently ---
    // Dense timing is closed-form in the layer shape (a handful of
    // arithmetic ops per PE), so this loop stays serial; the hot part
    // of a dense run is the functional referenceConv below, which is
    // parallelized.  peCycles is kept for the idle accounting.
    std::vector<uint64_t> peCycles(static_cast<size_t>(numPes), 0);
    uint64_t wall = 0;
    uint64_t cyclesTotal = 0;
    uint64_t inFootprintTotal = 0;
    for (int p = 0; p < numPes; ++p) {
        const int pr = p / cfg_.peCols;
        const int pc = p % cfg_.peCols;
        const TileRect out = tiling.outputTile(pr, pc);
        const uint64_t cyclesPe = static_cast<uint64_t>(out.area()) *
                                  layer.outChannels * dpChunks;
        peCycles[static_cast<size_t>(p)] = cyclesPe;
        cyclesTotal += cyclesPe;
        wall = std::max(wall, cyclesPe);
        inFootprintTotal +=
            static_cast<uint64_t>(inputFootprint(layer, out));
    }

    // --- DRAM / dense SRAM capacity ---
    const uint64_t inBytes = layer.inputCount() * kDataBytes;
    const uint64_t outBytes = layer.outputCount() * kDataBytes;
    const bool tiled = inBytes + outBytes > cfg_.denseSramBytes;
    res.dramTiled = tiled;
    res.numDramTiles = tiled
        ? static_cast<int>(ceilDiv(inBytes + outBytes,
                                   cfg_.denseSramBytes))
        : 1;

    const double measuredInDensity = workload.input.density();
    const double measuredWtDensity = workload.weights.density();

    uint64_t dramWeightBits = layer.weightCount() * kDataBits;
    if (tiled) {
        // Weights re-broadcast once per temporal activation tile.
        dramWeightBits *= static_cast<uint64_t>(res.numDramTiles);
    }

    uint64_t dramActBits = 0;
    auto actDramBits = [&](uint64_t denseCount, double density,
                           const Tensor3 *tensor) -> uint64_t {
        const uint64_t dense = denseCount * kDataBits;
        if (!gated)
            return dense;
        // DCNN-opt: RLE-compressed DRAM transfers, bypassed when the
        // data is dense enough that the 4-bit indices would inflate
        // the traffic.
        uint64_t compressed;
        if (tensor != nullptr) {
            compressed =
                storedElementsPerChannel(*tensor) * kRleElemBits;
        } else {
            compressed = static_cast<uint64_t>(
                std::ceil(static_cast<double>(denseCount) *
                          std::min(1.0, density + 0.02)) *
                kRleElemBits);
        }
        return std::min(dense, compressed);
    };
    if (tiled) {
        dramActBits += actDramBits(layer.inputCount(), measuredInDensity,
                                   &workload.input);
        dramActBits += actDramBits(layer.outputCount(),
                                   opts.outputDensityHint, nullptr);
    }
    if (opts.firstLayer) {
        dramActBits += actDramBits(layer.inputCount(), measuredInDensity,
                                   &workload.input);
    }

    const uint64_t dramBits = dramWeightBits + dramActBits;
    const uint64_t layerCycles = std::max(
        wall,
        ceilDiv(dramBits, static_cast<uint64_t>(cfg_.dramBitsPerCycle)));

    res.cycles = layerCycles;
    res.computeCycles = wall;
    res.dramWeightBits = dramWeightBits;
    res.dramActBits = dramActBits;

    // --- work accounting ---
    const uint64_t slots = cyclesTotal * static_cast<uint64_t>(dotW);
    res.mulArrayOps = cyclesTotal;
    res.products = res.denseMacs; // taps the hardware spends slots on
    res.landedProducts = res.denseMacs;

    res.multUtilBusy =
        slots > 0 ? static_cast<double>(res.denseMacs) /
                        static_cast<double>(slots)
                  : 0.0;
    const double slotsAll = static_cast<double>(layerCycles) *
                            cfg_.multipliers();
    res.multUtilOverall =
        slotsAll > 0
            ? static_cast<double>(res.denseMacs) / slotsAll
            : 0.0;
    uint64_t idleSum = 0;
    for (int p = 0; p < numPes; ++p) {
        idleSum += layerCycles -
                   std::min(layerCycles, peCycles[static_cast<size_t>(p)]);
    }
    res.peIdleFraction =
        layerCycles > 0
            ? static_cast<double>(idleSum) /
                  (static_cast<double>(numPes) *
                   static_cast<double>(layerCycles))
            : 0.0;

    // --- energy events ---
    EnergyEvents &ev = res.events;
    const double slotsD = static_cast<double>(slots);
    const double macsD = static_cast<double>(res.denseMacs);
    if (gated) {
        const double nzFrac = validTapFraction(layer) *
                              measuredInDensity * measuredWtDensity;
        ev.mults = macsD * nzFrac;
        ev.gatedMults = slotsD - ev.mults;
    } else {
        ev.mults = macsD;
        ev.gatedMults = slotsD - macsD;
    }
    ev.adds = ev.mults; // reduction tree adds track real products

    // Per-cycle buffer traffic: a weight vector every cycle, an input
    // vector every Kc cycles (input stationary), one 24-bit
    // accumulator read-modify-write.
    const double cyclesD = static_cast<double>(cyclesTotal);
    ev.peBufReadBits =
        cyclesD * (dotW * kDataBits +
                   static_cast<double>(dotW * kDataBits) / kcDense +
                   48.0);
    // Buffer fills: input footprints (re-streamed from the dense SRAM
    // once per output-channel group) and one copy of each broadcast
    // weight chunk per PE.
    const double inStreamBits =
        static_cast<double>(inFootprintTotal) *
        static_cast<double>(layer.inChannels) * kDataBits *
        static_cast<double>(numGroups);
    ev.peBufWriteBits =
        inStreamBits +
        static_cast<double>(layer.weightCount()) * kDataBits *
            static_cast<double>(numPes);
    ev.denseSramReadBits = inStreamBits;
    ev.denseSramWriteBits =
        static_cast<double>(layer.outputCount()) * kDataBits;
    ev.dramBits = static_cast<double>(dramBits);
    ev.ppuElements = static_cast<double>(layer.outputCount());
    res.energyPj = energy_.total(ev, cfg_);

    // --- functional output ---
    if (opts.functional) {
        res.output = referenceConv(layer, workload.input,
                                   workload.weights, opts.threads);
    } else {
        res.output = Tensor3();
    }

    res.stats.set("kc_dense", kcDense);
    res.stats.set("num_groups", numGroups);
    res.stats.set("dp_chunks", static_cast<double>(dpChunks));
    res.stats.set("slots", slotsD);
    return res;
}

NetworkResult
DcnnSimulator::runNetwork(const Network &net, uint64_t seed,
                          bool evalOnly, bool functional, int threads)
{
    NetworkResult nr;
    nr.networkName = net.name();
    nr.archName = cfg_.name;

    std::vector<ConvLayerParams> layers;
    for (const auto &l : net.layers())
        if (!evalOnly || l.inEval)
            layers.push_back(l);

    const int pinned = resolveThreads(threads);
    for (size_t i = 0; i < layers.size(); ++i) {
        const LayerWorkload w = makeWorkload(layers[i], seed);
        DcnnRunOptions opts;
        opts.firstLayer = (i == 0);
        opts.functional = functional;
        // Output density of layer i is the measured input density of
        // layer i+1 in the paper's profiles.
        opts.outputDensityHint =
            (i + 1 < layers.size()) ? layers[i + 1].inputDensity : 0.5;
        opts.threads = pinned;
        nr.layers.push_back(runLayer(w, opts));
    }
    return nr;
}

} // namespace scnn
