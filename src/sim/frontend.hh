/**
 * @file
 * The JSON-lines front end of the simulation service: one byte stream
 * in (requests, one JSON object per line), one byte stream out
 * (replies, one JSON line per input line, in input order).
 *
 * tools/scnn_serve uses this for both of its transports -- the
 * stdin/stdout pipe and every accepted TCP connection run the same
 * serveLineStream() loop over one shared SimulationService -- and the
 * TCP integration tests drive it through real sockets.  The protocol
 * itself is specified in docs/PROTOCOL.md.
 *
 * Per stream the loop guarantees:
 *
 *  - exactly one reply line per request line, in request order, even
 *    though sessions complete out of order (a bounded reorder buffer
 *    with a dedicated writer thread re-sequences them);
 *  - a parse error, an oversized line or an empty line produces a
 *    structured "scnn.service_error.v1" reply, never a dropped line
 *    or a crash;
 *  - admission control in one of two modes: *blocking* (submit()
 *    blocks while the service queue is full, pushing backpressure
 *    into the transport -- the pipe mode) or *shedding* (trySubmit();
 *    a saturated queue turns the line into an immediate
 *    outcome:"shed" error reply -- the TCP mode, where one slow
 *    client must not stall the listener).
 *
 * A stream stops at transport EOF, when the peer vanishes mid-write,
 * or when `stopFd` becomes readable (the server's forced-drain
 * signal); in every case the reorder buffer is drained first, so a
 * reply is written for every request that was admitted.
 */

#ifndef SCNN_SIM_FRONTEND_HH
#define SCNN_SIM_FRONTEND_HH

#include <cstdint>
#include <string>

#include "sim/service.hh"

namespace scnn {

/** Per-stream behaviour of serveLineStream(). */
struct FrontendOptions
{
    /** Copy each request line to stderr before serving (trace aid). */
    bool echo = false;

    /**
     * Admission policy: false = blocking submit() (backpressure up
     * the transport), true = trySubmit() with an outcome:"shed"
     * error reply when the admission queue is saturated.
     */
    bool shed = false;

    /** Hard cap on one request line; longer lines get an error line. */
    size_t maxLineBytes = 1 << 20;

    /** Stream label used in --echo traces ("stdin", "client 3"). */
    std::string peer = "stdin";
};

/** What a finished stream did (for metrics and tests). */
struct StreamOutcome
{
    uint64_t lines = 0;      ///< request lines consumed
    uint64_t shed = 0;       ///< lines refused at admission
    bool writeFailed = false; ///< peer vanished mid-write
    bool forcedStop = false;  ///< stopFd fired before EOF
};

/**
 * One "scnn.service_error.v1" reply line.  `outcome` is one of
 * "error", "cancelled", "deadline_expired" or "shed"; `line` is the
 * 0-based request line the reply answers.
 */
std::string serviceErrorLine(uint64_t line, const char *outcome,
                             const std::string &message);

/** The reply line for a completed service reply (the response JSON
 *  verbatim on Ok, a service_error line otherwise). */
std::string serviceReplyLine(uint64_t line, const ServiceReply &reply);

/**
 * Serve one byte stream of the JSON-lines protocol: read request
 * lines from `inFd`, write reply lines to `outFd`, both until EOF
 * (or peer loss, or `stopFd` readable).  Blocks the calling thread
 * for the stream's lifetime; spawns one internal writer thread.
 *
 * @param stopFd when >= 0, a fd polled alongside `inFd`; once it
 *        becomes readable the stream stops consuming input (pending
 *        replies are still flushed).  Pass the read end of the
 *        server's drain pipe.
 */
StreamOutcome serveLineStream(SimulationService &service, int inFd,
                              int outFd, const FrontendOptions &opts,
                              int stopFd = -1);

} // namespace scnn

#endif // SCNN_SIM_FRONTEND_HH
