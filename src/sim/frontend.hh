/**
 * @file
 * The JSON-lines front end of the simulation service: one byte stream
 * in (requests, one JSON object per line), one byte stream out
 * (replies, one JSON line per input line, in input order).
 *
 * tools/scnn_serve uses this for both of its transports -- the
 * stdin/stdout pipe and every accepted TCP connection run the same
 * serveLineStream() loop over one shared SimulationService -- and the
 * TCP integration tests drive it through real sockets.  The protocol
 * itself is specified in docs/PROTOCOL.md.
 *
 * Per stream the loop guarantees:
 *
 *  - exactly one reply line per request line, in request order, even
 *    though sessions complete out of order (a bounded reorder buffer
 *    with a dedicated writer thread re-sequences them);
 *  - a parse error, an oversized line or an empty line produces a
 *    structured "scnn.service_error.v1" reply, never a dropped line
 *    or a crash;
 *  - a {"ping": 1} line is answered with "scnn.service_pong.v1"
 *    without touching the admission queue -- the fleet's health
 *    check stays cheap and cannot be shed;
 *  - admission control in one of two modes: *blocking* (submit()
 *    blocks while the service queue is full, pushing backpressure
 *    into the transport -- the pipe mode) or *shedding* (trySubmit();
 *    a saturated queue turns the line into an immediate
 *    outcome:"shed" error reply -- the TCP mode, where one slow
 *    client must not stall the listener).
 *
 * A stream stops at transport EOF, when the peer vanishes mid-write,
 * when a read deadline expires (slow-loris defense: an idle timeout
 * bounds the wait for a line to *start*, a line timeout bounds the
 * time a started line may take to finish), or when `stopFd` becomes
 * readable (the server's forced-drain signal); in every case the
 * reorder buffer is drained first, so a reply is written for every
 * request that was admitted.
 */

#ifndef SCNN_SIM_FRONTEND_HH
#define SCNN_SIM_FRONTEND_HH

#include <cstdint>
#include <string>

#include "sim/service.hh"

namespace scnn {

/**
 * Buffered line reader over a fd, with an optional stop fd polled
 * alongside it and optional read deadlines.  EOF yields a trailing
 * unterminated line (a pipe that ends without '\n' still carried a
 * request); a stop signal or an expired deadline drops any partial
 * line -- forced drain and slow-loris cutoff both mean "consume
 * nothing further".
 *
 * Public (not an implementation detail of serveLineStream) so the
 * adversarial I/O tests can drive it over pipes directly: 1-byte
 * reads, partial lines at the size limit, EOF mid-line, stop-fd
 * wakeups and deadline expiry are all pinned behaviours.
 */
class FdLineReader
{
  public:
    struct Options
    {
        /** Hard cap on one line; the overflow is consumed and the
         *  line is flagged oversized rather than failing the
         *  stream. */
        size_t maxLineBytes = 1 << 20;

        /** Max wall time waiting for a line to *start* (ms); 0 =
         *  wait forever.  An idle peer past this is cut off. */
        double idleTimeoutMs = 0.0;

        /** Max wall time between a line's first byte and its newline
         *  (ms); 0 = unbounded.  A peer trickling one byte at a time
         *  (slow loris) is cut off. */
        double lineTimeoutMs = 0.0;
    };

    enum class Result
    {
        Line,     ///< a complete request line was produced
        Eof,      ///< transport EOF (no trailing data)
        Stopped,  ///< stopFd fired
        TimedOut, ///< idle or line deadline expired
    };

    FdLineReader(int fd, int stopFd, Options options);

    /** Next request line.  `oversized` is set when the line exceeded
     *  maxLineBytes (the overflow was discarded). */
    Result next(std::string &line, bool &oversized);

  private:
    enum class Fill { Data, Eof, Stopped, TimedOut };

    Fill fill(double deadlineMs, bool deadlineArmed);

    const int fd_;
    const int stopFd_;
    const Options options_;
    std::string buf_;
    size_t pos_ = 0;
};

/** Per-stream behaviour of serveLineStream(). */
struct FrontendOptions
{
    /** Copy each request line to stderr before serving (trace aid). */
    bool echo = false;

    /**
     * Admission policy: false = blocking submit() (backpressure up
     * the transport), true = trySubmit() with an outcome:"shed"
     * error reply when the admission queue is saturated.
     */
    bool shed = false;

    /** Hard cap on one request line; longer lines get an error line. */
    size_t maxLineBytes = 1 << 20;

    /** Read deadlines (FdLineReader::Options semantics); 0 = off. */
    double idleTimeoutMs = 0.0;
    double lineTimeoutMs = 0.0;

    /** Stream label used in --echo traces ("stdin", "client 3"). */
    std::string peer = "stdin";
};

/** What a finished stream did (for metrics and tests). */
struct StreamOutcome
{
    uint64_t lines = 0;      ///< request lines consumed
    uint64_t shed = 0;       ///< lines refused at admission
    uint64_t pings = 0;      ///< health-check lines answered
    bool writeFailed = false; ///< peer vanished mid-write
    bool forcedStop = false;  ///< stopFd fired before EOF
    bool timedOut = false;    ///< a read deadline cut the stream
};

/**
 * One "scnn.service_error.v1" reply line.  `outcome` is one of
 * "error", "cancelled", "deadline_expired" or "shed"; `line` is the
 * 0-based request line the reply answers.
 */
std::string serviceErrorLine(uint64_t line, const char *outcome,
                             const std::string &message);

/** The reply line for a completed service reply (the response JSON
 *  verbatim on Ok, a service_error line otherwise). */
std::string serviceReplyLine(uint64_t line, const ServiceReply &reply);

/**
 * True when `line` is a health-check request: a JSON object whose
 * only key is "ping" with a non-negative integer value.  Anything
 * else -- including malformed JSON -- is not a ping and flows down
 * the normal request path.
 */
bool isPingLine(const std::string &line, uint64_t &echo);

/**
 * The "scnn.service_pong.v1" reply to a ping: echoes the ping value
 * and carries a cheap liveness snapshot (queue depth, in-flight
 * sessions, shard identity when configured) so probers can make
 * routing decisions from one round trip.
 */
std::string servicePongLine(uint64_t line, uint64_t echo,
                            const SimulationService &service);

/**
 * Full write with EINTR retry; false once the peer is gone (EPIPE /
 * ECONNRESET included).  Socket writes are flagged MSG_NOSIGNAL, so
 * a vanished peer surfaces here as a return value even in processes
 * that did not ignore SIGPIPE.
 */
bool writeAllFd(int fd, const char *data, size_t n);

/**
 * Ignore SIGPIPE process-wide.  Every long-lived tool that writes to
 * sockets or pipes (scnn_serve, scnn_dse) calls this at startup: a
 * peer vanishing mid-write must surface as EPIPE on the write, never
 * as a process-killing signal.
 */
void ignoreSigpipe();

/**
 * Serve one byte stream of the JSON-lines protocol: read request
 * lines from `inFd`, write reply lines to `outFd`, both until EOF
 * (or peer loss, or a read deadline, or `stopFd` readable).  Blocks
 * the calling thread for the stream's lifetime; spawns one internal
 * writer thread.
 *
 * @param stopFd when >= 0, a fd polled alongside `inFd`; once it
 *        becomes readable the stream stops consuming input (pending
 *        replies are still flushed).  Pass the read end of the
 *        server's drain pipe.
 */
StreamOutcome serveLineStream(SimulationService &service, int inFd,
                              int outFd, const FrontendOptions &opts,
                              int stopFd = -1);

} // namespace scnn

#endif // SCNN_SIM_FRONTEND_HH
