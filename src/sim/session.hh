/**
 * @file
 * The request/response session layer over the unified Simulator
 * interface: a SimulationRequest names a network, a backend set and
 * run parameters; runSession() owns workload synthesis (one synthetic
 * workload per layer, shared across every requested backend, so
 * backend comparisons are apples-to-apples by construction), fans the
 * per-layer work out over the shared thread pool, gates each backend
 * on its declared capabilities, and returns a structured
 * SimulationResponse that serializes to JSON via common/json.
 *
 * The experiment harnesses (compareNetwork, densitySweep,
 * peGranularitySweep) and the scnn_sim CLI are thin clients of this
 * layer; future scaling work (sharding, batching, remote serving)
 * slots in behind the same request/response types.
 */

#ifndef SCNN_SIM_SESSION_HH
#define SCNN_SIM_SESSION_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "nn/network.hh"
#include "sim/simulator.hh"

namespace scnn {

/** One backend requested in a session. */
struct BackendSpec
{
    /** Registry name ("scnn", "dcnn", "dcnn-opt", "oracle", ...). */
    std::string backend;

    /**
     * Key the response is looked up by (useful when one backend runs
     * under several configurations in the same request, e.g. TimeLoop
     * over the SCNN and DCNN configs).  Defaults to the backend name.
     */
    std::string label;

    /** Configuration override; the registry default when unset. */
    std::optional<AcceleratorConfig> config;

    /** Functional outputs: -1 = backend default, else 0/1. */
    int functional = -1;
};

/** A simulation request: network x backends x run parameters. */
struct SimulationRequest
{
    Network network;
    std::vector<BackendSpec> backends;

    /** Master seed for workload synthesis. */
    uint64_t seed = 20170624; // ISCA'17

    /**
     * Worker threads (0 = SCNN_THREADS / hardware default); resolved
     * once through common/parallel and pinned for the whole session.
     * Results are bit-identical for every value.
     */
    int threads = 0;

    /** Chained execution (capability-gated per backend). */
    bool chained = false;

    /** Restrict to the paper's evaluation scope. */
    bool evalOnly = true;

    /**
     * Chained runs only: keep each layer's functional output tensor
     * in the response (NetworkRunOptions::keepOutputs).  Clients that
     * only read stats pass false to skip a per-layer tensor copy.
     */
    bool keepOutputs = true;

    /**
     * Per-stage wall-time profiling (RunOptions::profile): layers of
     * profiled runs carry profile_{compress,kernel,drain,encode}_ms
     * stats.
     */
    bool profile = false;
};

/** Per-backend outcome of a session. */
struct BackendRun
{
    std::string backend;  ///< registry name
    std::string label;    ///< lookup key (request's label)
    std::string arch;     ///< configuration name ("SCNN", "DCNN", ...)
    BackendCapabilities capabilities;

    /** False when construction or capability gating rejected the run. */
    bool ok = false;
    std::string error;    ///< rejection reason when !ok

    NetworkResult result; ///< empty when !ok
};

/** Structured outcome of a session. */
struct SimulationResponse
{
    std::string network;
    uint64_t seed = 0;
    bool chained = false;
    int threads = 0;      ///< resolved worker-thread count

    std::vector<BackendRun> runs; ///< one per requested backend

    /** Run by label; nullptr when absent. */
    const BackendRun *find(const std::string &label) const;

    /** Successful run by label; throws SimulationError otherwise. */
    const BackendRun &get(const std::string &label) const;

    /** True when every requested backend ran successfully. */
    bool allOk() const;
};

/**
 * Execute a request.  Backend construction and capability problems
 * are reported per backend in the response (the session never
 * fatal()s on a rejected backend); programming errors such as an
 * empty backend list or duplicate labels still assert.
 *
 * Non-chained sessions run the shared-workload comparison: layers fan
 * out across the thread pool, each layer synthesizes its workload
 * once and every backend consumes the same tensors, and an "oracle"
 * spec is derived from the "scnn" run with the same configuration
 * instead of re-simulating.  Chained sessions delegate whole-network
 * execution to each backend in turn.
 */
SimulationResponse runSession(const SimulationRequest &request);

/**
 * Serialize a response as a JSON document (schema
 * "scnn.simulation_response.v1"): request parameters, then one entry
 * per backend with capabilities, totals, per-layer metrics and named
 * stats.  Functional output tensors are omitted.
 */
std::string toJson(const SimulationResponse &response);

} // namespace scnn

#endif // SCNN_SIM_SESSION_HH
