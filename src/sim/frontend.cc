#include "sim/frontend.hh"

#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <mutex>
#include <poll.h>
#include <thread>
#include <unistd.h>

#include "common/json.hh"
#include "common/logging.hh"

namespace scnn {

namespace {

/** Full write with EINTR retry; false once the peer is gone. */
bool
writeAll(int fd, const char *data, size_t n)
{
    while (n > 0) {
        const ssize_t w = ::write(fd, data, n);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += w;
        n -= static_cast<size_t>(w);
    }
    return true;
}

/**
 * Buffered line reader over a fd, with an optional stop fd polled
 * alongside it.  EOF yields a trailing unterminated line (a pipe that
 * ends without '\n' still carried a request); a stop signal drops
 * any partial line -- forced drain means "consume nothing further".
 */
class FdLineReader
{
  public:
    FdLineReader(int fd, int stopFd, size_t maxLine)
        : fd_(fd), stopFd_(stopFd), maxLine_(maxLine)
    {
    }

    bool stopped() const { return stopped_; }

    /** Next request line; false at EOF / stop / peer error. */
    bool
    next(std::string &line, bool &oversized)
    {
        line.clear();
        oversized = false;
        for (;;) {
            while (pos_ < buf_.size()) {
                const char c = buf_[pos_++];
                if (c == '\n')
                    return true;
                if (line.size() < maxLine_)
                    line += c;
                else
                    oversized = true;
            }
            buf_.clear();
            pos_ = 0;
            switch (fill()) {
            case Fill::Data:
                break;
            case Fill::Eof:
                return !line.empty();
            case Fill::Stopped:
                stopped_ = true;
                return false;
            }
        }
    }

  private:
    enum class Fill { Data, Eof, Stopped };

    Fill
    fill()
    {
        for (;;) {
            struct pollfd fds[2];
            fds[0] = {fd_, POLLIN, 0};
            fds[1] = {stopFd_, POLLIN, 0};
            const nfds_t n = stopFd_ >= 0 ? 2 : 1;
            if (::poll(fds, n, -1) < 0) {
                if (errno == EINTR)
                    continue;
                return Fill::Eof;
            }
            if (n == 2 && (fds[1].revents & (POLLIN | POLLHUP)))
                return Fill::Stopped;
            if (!(fds[0].revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            char chunk[1 << 16];
            const ssize_t r = ::read(fd_, chunk, sizeof(chunk));
            if (r < 0) {
                if (errno == EINTR)
                    continue;
                return Fill::Eof;
            }
            if (r == 0)
                return Fill::Eof;
            buf_.append(chunk, static_cast<size_t>(r));
            return Fill::Data;
        }
    }

    const int fd_;
    const int stopFd_;
    const size_t maxLine_;
    std::string buf_;
    size_t pos_ = 0;
    bool stopped_ = false;
};

/** An input line's slot in the in-order output sequence. */
struct PendingLine
{
    bool ready = false;   ///< `text` already final (parse/shed error)
    std::string text;     ///< ready output line
    SessionTicket ticket; ///< pending session otherwise
};

/**
 * In-order reply writer: a dedicated thread drains a bounded deque of
 * pending lines, waiting on each head-of-line ticket in turn, so a
 * completed reply is emitted as soon as its predecessors are -- even
 * while the reader sits blocked on the transport (request/response-
 * lockstep clients would otherwise deadlock).  The bound makes the
 * reorder buffer itself apply backpressure for lines that never reach
 * the service queue (parse errors, oversized lines, shed lines):
 * push() blocks until the writer catches up, so a flood of garbage
 * cannot grow memory without limit.  A failed write (peer gone)
 * flips writeFailed(); the writer then discards -- the reader should
 * stop feeding it, and finish() still drains every slot.
 */
class OrderedEmitter
{
  public:
    OrderedEmitter(int outFd, size_t capacity)
        : outFd_(outFd), capacity_(capacity),
          writer_([this] { writerLoop(); })
    {
    }

    /** Append the next line's slot; blocks while the buffer is full. */
    void
    push(PendingLine slot)
    {
        std::unique_lock<std::mutex> lock(mu_);
        space_.wait(lock, [&] { return pending_.size() < capacity_; });
        pending_.push_back(std::move(slot));
        ready_.notify_one();
    }

    /** Signal EOF, drain everything, join the writer. */
    void
    finish()
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            eof_ = true;
        }
        ready_.notify_one();
        writer_.join();
    }

    bool
    writeFailed() const
    {
        return writeFailed_.load(std::memory_order_relaxed);
    }

  private:
    void
    writerLoop()
    {
        uint64_t lineNo = 0;
        for (;;) {
            PendingLine slot;
            {
                std::unique_lock<std::mutex> lock(mu_);
                ready_.wait(lock,
                            [&] { return eof_ || !pending_.empty(); });
                if (pending_.empty())
                    return; // EOF and fully drained
                slot = std::move(pending_.front());
                pending_.pop_front();
            }
            space_.notify_one();
            if (writeFailed()) {
                // The peer is gone: discard, but still wait out the
                // ticket so every admitted session is accounted for
                // before finish() returns.
                if (!slot.ready)
                    slot.ticket.wait();
                ++lineNo;
                continue;
            }
            // ticket.wait() blocks only this writer; the reader
            // keeps accepting lines meanwhile.
            std::string text =
                slot.ready ? std::move(slot.text)
                           : serviceReplyLine(lineNo, slot.ticket.wait());
            text += '\n';
            if (!writeAll(outFd_, text.data(), text.size()))
                writeFailed_.store(true, std::memory_order_relaxed);
            ++lineNo;
        }
    }

    const int outFd_;
    const size_t capacity_;
    std::mutex mu_;
    std::condition_variable ready_;
    std::condition_variable space_;
    std::deque<PendingLine> pending_;
    bool eof_ = false;
    std::atomic<bool> writeFailed_{false};
    std::thread writer_;
};

} // anonymous namespace

std::string
serviceErrorLine(uint64_t line, const char *outcome,
                 const std::string &message)
{
    JsonWriter w;
    w.beginObject();
    w.key("schema").value("scnn.service_error.v1");
    w.key("line").value(line);
    w.key("outcome").value(outcome);
    w.key("error").value(message);
    w.endObject();
    return w.str();
}

std::string
serviceReplyLine(uint64_t line, const ServiceReply &reply)
{
    switch (reply.outcome) {
    case ServiceOutcome::Ok:
        return *reply.responseJson;
    case ServiceOutcome::Cancelled:
        return serviceErrorLine(line, "cancelled", reply.error);
    case ServiceOutcome::DeadlineExpired:
        return serviceErrorLine(line, "deadline_expired", reply.error);
    case ServiceOutcome::Error:
        break;
    }
    return serviceErrorLine(line, "error", reply.error);
}

StreamOutcome
serveLineStream(SimulationService &service, int inFd, int outFd,
                const FrontendOptions &opts, int stopFd)
{
    StreamOutcome out;
    // The reorder bound covers everything the service can have in
    // flight plus a slab of ready (error/shed) lines.
    OrderedEmitter emitter(
        outFd,
        static_cast<size_t>(service.config().queueCapacity) +
            static_cast<size_t>(service.config().workers) + 64);
    FdLineReader reader(inFd, stopFd, opts.maxLineBytes);

    std::string line;
    bool oversized = false;
    uint64_t lineNo = 0;
    while (reader.next(line, oversized)) {
        if (emitter.writeFailed())
            break;
        if (opts.echo)
            std::fprintf(stderr, "%s line %llu: %s\n",
                         opts.peer.c_str(),
                         static_cast<unsigned long long>(lineNo),
                         line.c_str());
        PendingLine slot;
        if (oversized) {
            slot.ready = true;
            slot.text = serviceErrorLine(
                lineNo, "error",
                strfmt("request line exceeds the %zu-byte limit",
                       opts.maxLineBytes));
        } else if (line.find_first_not_of(" \t\r") ==
                   std::string::npos) {
            slot.ready = true;
            slot.text = serviceErrorLine(lineNo, "error", "empty line");
        } else {
            ParsedServiceRequest parsed;
            std::string error;
            if (!parseRequestLine(line, parsed, error)) {
                slot.ready = true;
                slot.text = serviceErrorLine(lineNo, "error", error);
            } else if (opts.shed) {
                auto ticket = service.trySubmit(
                    std::move(parsed.request), parsed.deadlineMs);
                if (ticket) {
                    slot.ticket = std::move(*ticket);
                } else {
                    ++out.shed;
                    slot.ready = true;
                    slot.text = serviceErrorLine(
                        lineNo, "shed",
                        strfmt("admission queue full (capacity %d): "
                               "request shed",
                               service.config().queueCapacity));
                }
            } else {
                // submit() blocks while the queue is full: admission
                // backpressure travels up to the transport.
                slot.ticket = service.submit(std::move(parsed.request),
                                             parsed.deadlineMs);
            }
        }
        emitter.push(std::move(slot));
        ++lineNo;
    }
    emitter.finish();
    out.lines = lineNo;
    out.writeFailed = emitter.writeFailed();
    out.forcedStop = reader.stopped();
    return out;
}

} // namespace scnn
