#include "sim/frontend.hh"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <deque>
#include <mutex>
#include <poll.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

#include "common/json.hh"
#include "common/logging.hh"

namespace scnn {

namespace {

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     start)
        .count();
}

/** An input line's slot in the in-order output sequence. */
struct PendingLine
{
    bool ready = false;   ///< `text` already final (parse/shed error)
    std::string text;     ///< ready output line
    SessionTicket ticket; ///< pending session otherwise
};

/**
 * In-order reply writer: a dedicated thread drains a bounded deque of
 * pending lines, waiting on each head-of-line ticket in turn, so a
 * completed reply is emitted as soon as its predecessors are -- even
 * while the reader sits blocked on the transport (request/response-
 * lockstep clients would otherwise deadlock).  The bound makes the
 * reorder buffer itself apply backpressure for lines that never reach
 * the service queue (parse errors, oversized lines, shed lines):
 * push() blocks until the writer catches up, so a flood of garbage
 * cannot grow memory without limit.  A failed write (peer gone)
 * flips writeFailed(); the writer then discards -- the reader should
 * stop feeding it, and finish() still drains every slot.
 */
class OrderedEmitter
{
  public:
    OrderedEmitter(int outFd, size_t capacity)
        : outFd_(outFd), capacity_(capacity),
          writer_([this] { writerLoop(); })
    {
    }

    /** Append the next line's slot; blocks while the buffer is full. */
    void
    push(PendingLine slot)
    {
        std::unique_lock<std::mutex> lock(mu_);
        space_.wait(lock, [&] { return pending_.size() < capacity_; });
        pending_.push_back(std::move(slot));
        ready_.notify_one();
    }

    /** Signal EOF, drain everything, join the writer. */
    void
    finish()
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            eof_ = true;
        }
        ready_.notify_one();
        writer_.join();
    }

    bool
    writeFailed() const
    {
        return writeFailed_.load(std::memory_order_relaxed);
    }

  private:
    void
    writerLoop()
    {
        uint64_t lineNo = 0;
        for (;;) {
            PendingLine slot;
            {
                std::unique_lock<std::mutex> lock(mu_);
                ready_.wait(lock,
                            [&] { return eof_ || !pending_.empty(); });
                if (pending_.empty())
                    return; // EOF and fully drained
                slot = std::move(pending_.front());
                pending_.pop_front();
            }
            space_.notify_one();
            if (writeFailed()) {
                // The peer is gone: discard, but still wait out the
                // ticket so every admitted session is accounted for
                // before finish() returns.
                if (!slot.ready)
                    slot.ticket.wait();
                ++lineNo;
                continue;
            }
            // ticket.wait() blocks only this writer; the reader
            // keeps accepting lines meanwhile.
            std::string text =
                slot.ready ? std::move(slot.text)
                           : serviceReplyLine(lineNo, slot.ticket.wait());
            text += '\n';
            if (!writeAllFd(outFd_, text.data(), text.size()))
                writeFailed_.store(true, std::memory_order_relaxed);
            ++lineNo;
        }
    }

    const int outFd_;
    const size_t capacity_;
    std::mutex mu_;
    std::condition_variable ready_;
    std::condition_variable space_;
    std::deque<PendingLine> pending_;
    bool eof_ = false;
    std::atomic<bool> writeFailed_{false};
    std::thread writer_;
};

} // anonymous namespace

bool
writeAllFd(int fd, const char *data, size_t n)
{
    while (n > 0) {
        // MSG_NOSIGNAL turns a vanished socket peer into EPIPE even
        // in processes that left SIGPIPE at its default; non-socket
        // fds (pipes, files) reject the flag with ENOTSOCK and fall
        // through to plain write().
        ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
        if (w < 0 && (errno == ENOTSOCK || errno == EOPNOTSUPP))
            w = ::write(fd, data, n);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            // EPIPE / ECONNRESET: the peer is gone.  Any other error
            // equally ends the stream -- the caller's contract is
            // "false means stop writing", not errno taxonomy.
            return false;
        }
        data += w;
        n -= static_cast<size_t>(w);
    }
    return true;
}

void
ignoreSigpipe()
{
    ::signal(SIGPIPE, SIG_IGN);
}

// --- FdLineReader ------------------------------------------------------

FdLineReader::FdLineReader(int fd, int stopFd, Options options)
    : fd_(fd), stopFd_(stopFd), options_(options)
{
}

FdLineReader::Result
FdLineReader::next(std::string &line, bool &oversized)
{
    line.clear();
    oversized = false;
    // Two clocks: the idle clock runs from this call until the line's
    // first byte; the line clock runs from that first byte until its
    // newline.  Bytes already buffered count as "arrived".
    const Clock::time_point idleStart = Clock::now();
    Clock::time_point lineStart;
    bool started = pos_ < buf_.size();
    if (started)
        lineStart = idleStart;
    for (;;) {
        while (pos_ < buf_.size()) {
            if (!started) {
                started = true;
                lineStart = Clock::now();
            }
            const char c = buf_[pos_++];
            if (c == '\n')
                return Result::Line;
            if (line.size() < options_.maxLineBytes)
                line += c;
            else
                oversized = true;
        }
        buf_.clear();
        pos_ = 0;

        double budgetMs = 0.0;
        bool armed = false;
        if (started && options_.lineTimeoutMs > 0.0) {
            budgetMs = options_.lineTimeoutMs - msSince(lineStart);
            armed = true;
        } else if (!started && options_.idleTimeoutMs > 0.0) {
            budgetMs = options_.idleTimeoutMs - msSince(idleStart);
            armed = true;
        }
        if (armed && budgetMs <= 0.0)
            return Result::TimedOut;

        switch (fill(budgetMs, armed)) {
        case Fill::Data:
            break;
        case Fill::Eof:
            return line.empty() ? Result::Eof : Result::Line;
        case Fill::Stopped:
            return Result::Stopped;
        case Fill::TimedOut:
            return Result::TimedOut;
        }
    }
}

FdLineReader::Fill
FdLineReader::fill(double deadlineMs, bool deadlineArmed)
{
    const Clock::time_point start = Clock::now();
    for (;;) {
        int timeout = -1;
        if (deadlineArmed) {
            const double remaining = deadlineMs - msSince(start);
            if (remaining <= 0.0)
                return Fill::TimedOut;
            // Round up so a sub-millisecond remainder still waits
            // instead of spinning.
            timeout = static_cast<int>(remaining) + 1;
        }
        struct pollfd fds[2];
        fds[0] = {fd_, POLLIN, 0};
        fds[1] = {stopFd_, POLLIN, 0};
        const nfds_t n = stopFd_ >= 0 ? 2 : 1;
        const int rv = ::poll(fds, n, timeout);
        if (rv < 0) {
            if (errno == EINTR)
                continue;
            return Fill::Eof;
        }
        if (rv == 0)
            return Fill::TimedOut;
        if (n == 2 && (fds[1].revents & (POLLIN | POLLHUP)))
            return Fill::Stopped;
        if (!(fds[0].revents & (POLLIN | POLLHUP | POLLERR)))
            continue;
        char chunk[1 << 16];
        const ssize_t r = ::read(fd_, chunk, sizeof(chunk));
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return Fill::Eof;
        }
        if (r == 0)
            return Fill::Eof;
        buf_.append(chunk, static_cast<size_t>(r));
        return Fill::Data;
    }
}

// --- reply lines -------------------------------------------------------

std::string
serviceErrorLine(uint64_t line, const char *outcome,
                 const std::string &message)
{
    JsonWriter w;
    w.beginObject();
    w.key("schema").value("scnn.service_error.v1");
    w.key("line").value(line);
    w.key("outcome").value(outcome);
    w.key("error").value(message);
    w.endObject();
    return w.str();
}

std::string
serviceReplyLine(uint64_t line, const ServiceReply &reply)
{
    switch (reply.outcome) {
    case ServiceOutcome::Ok:
        return *reply.responseJson;
    case ServiceOutcome::Cancelled:
        return serviceErrorLine(line, "cancelled", reply.error);
    case ServiceOutcome::DeadlineExpired:
        return serviceErrorLine(line, "deadline_expired", reply.error);
    case ServiceOutcome::Error:
        break;
    }
    return serviceErrorLine(line, "error", reply.error);
}

bool
isPingLine(const std::string &line, uint64_t &echo)
{
    // Cheap pre-filter: every ping contains the key.  Anything
    // without it skips the JSON parse entirely, so the health path
    // adds nothing to the request hot path.
    if (line.find("\"ping\"") == std::string::npos)
        return false;
    JsonValue doc;
    std::string error;
    if (!parseJson(line, doc, error) || !doc.isObject() ||
        doc.object.size() != 1)
        return false;
    const JsonValue *ping = doc.find("ping");
    if (!ping || !ping->isNumber() || !ping->isUnsigned)
        return false;
    echo = ping->uint64;
    return true;
}

std::string
servicePongLine(uint64_t line, uint64_t echo,
                const SimulationService &service)
{
    const ServiceStats s = service.stats();
    JsonWriter w;
    w.beginObject();
    w.key("schema").value("scnn.service_pong.v1");
    w.key("line").value(line);
    w.key("ping").value(echo);
    w.key("queue_depth").value(s.queueDepth);
    w.key("inflight").value(s.inflight);
    w.key("queue_capacity").value(service.config().queueCapacity);
    if (service.config().shardCount > 0) {
        w.key("shard").beginObject();
        w.key("index").value(service.config().shardIndex);
        w.key("count").value(service.config().shardCount);
        w.endObject();
    }
    w.endObject();
    return w.str();
}

StreamOutcome
serveLineStream(SimulationService &service, int inFd, int outFd,
                const FrontendOptions &opts, int stopFd)
{
    StreamOutcome out;
    // The reorder bound covers everything the service can have in
    // flight plus a slab of ready (error/shed) lines.
    OrderedEmitter emitter(
        outFd,
        static_cast<size_t>(service.config().queueCapacity) +
            static_cast<size_t>(service.config().workers) + 64);
    FdLineReader::Options ro;
    ro.maxLineBytes = opts.maxLineBytes;
    ro.idleTimeoutMs = opts.idleTimeoutMs;
    ro.lineTimeoutMs = opts.lineTimeoutMs;
    FdLineReader reader(inFd, stopFd, ro);

    std::string line;
    bool oversized = false;
    uint64_t lineNo = 0;
    for (;;) {
        const FdLineReader::Result rr = reader.next(line, oversized);
        if (rr != FdLineReader::Result::Line) {
            out.forcedStop = rr == FdLineReader::Result::Stopped;
            out.timedOut = rr == FdLineReader::Result::TimedOut;
            break;
        }
        if (emitter.writeFailed())
            break;
        if (opts.echo)
            std::fprintf(stderr, "%s line %llu: %s\n",
                         opts.peer.c_str(),
                         static_cast<unsigned long long>(lineNo),
                         line.c_str());
        PendingLine slot;
        uint64_t pingEcho = 0;
        if (oversized) {
            slot.ready = true;
            slot.text = serviceErrorLine(
                lineNo, "error",
                strfmt("request line exceeds the %zu-byte limit",
                       opts.maxLineBytes));
        } else if (line.find_first_not_of(" \t\r") ==
                   std::string::npos) {
            slot.ready = true;
            slot.text = serviceErrorLine(lineNo, "error", "empty line");
        } else if (isPingLine(line, pingEcho)) {
            // Health checks bypass admission entirely: a saturated
            // queue must not make the fleet look dead.
            ++out.pings;
            slot.ready = true;
            slot.text = servicePongLine(lineNo, pingEcho, service);
        } else {
            ParsedServiceRequest parsed;
            std::string error;
            if (!parseRequestLine(line, parsed, error)) {
                slot.ready = true;
                slot.text = serviceErrorLine(lineNo, "error", error);
            } else if (opts.shed) {
                auto ticket = service.trySubmit(
                    std::move(parsed.request), parsed.deadlineMs);
                if (ticket) {
                    slot.ticket = std::move(*ticket);
                } else {
                    ++out.shed;
                    slot.ready = true;
                    slot.text = serviceErrorLine(
                        lineNo, "shed",
                        strfmt("admission queue full (capacity %d): "
                               "request shed",
                               service.config().queueCapacity));
                }
            } else {
                // submit() blocks while the queue is full: admission
                // backpressure travels up to the transport.
                slot.ticket = service.submit(std::move(parsed.request),
                                             parsed.deadlineMs);
            }
        }
        emitter.push(std::move(slot));
        ++lineNo;
    }
    emitter.finish();
    out.lines = lineNo;
    out.writeFailed = emitter.writeFailed();
    return out;
}

} // namespace scnn
