#include "sim/registry.hh"

#include <utility>

#include "common/logging.hh"
#include "sim/backends.hh"

namespace scnn {

BackendRegistry &
BackendRegistry::instance()
{
    static BackendRegistry registry;
    return registry;
}

BackendRegistry::BackendRegistry()
{
    // The five paper architectures.  "scnn"/"oracle"/"timeloop"
    // default to the Table II SCNN configuration; "timeloop" accepts
    // any kind (it models all three architectures analytically).
    registerBackend("scnn", scnnConfig, [](AcceleratorConfig cfg) {
        return std::unique_ptr<Simulator>(
            new ScnnBackend(std::move(cfg)));
    });
    registerBackend("dcnn", dcnnConfig, [](AcceleratorConfig cfg) {
        return std::unique_ptr<Simulator>(
            new DcnnBackend(std::move(cfg)));
    });
    registerBackend("dcnn-opt", dcnnOptConfig,
                    [](AcceleratorConfig cfg) {
        return std::unique_ptr<Simulator>(
            new DcnnBackend(std::move(cfg)));
    });
    registerBackend("oracle", scnnConfig, [](AcceleratorConfig cfg) {
        return std::unique_ptr<Simulator>(
            new OracleBackend(std::move(cfg)));
    });
    registerBackend("timeloop", scnnConfig, [](AcceleratorConfig cfg) {
        return std::unique_ptr<Simulator>(
            new TimeLoopBackend(std::move(cfg)));
    });
}

void
BackendRegistry::registerBackend(const std::string &name,
                                 ConfigFactory defaultConfig,
                                 SimulatorFactory factory)
{
    SCNN_ASSERT(!name.empty() && defaultConfig && factory,
                "incomplete backend registration");
    std::lock_guard<std::mutex> lock(mutex_);
    entries_[name] =
        Entry{std::move(defaultConfig), std::move(factory)};
}

bool
BackendRegistry::has(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.count(name) > 0;
}

std::vector<std::string>
BackendRegistry::names() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto &kv : entries_)
        out.push_back(kv.first); // std::map: already sorted
    return out;
}

BackendRegistry::Entry
BackendRegistry::lookup(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(name);
    if (it == entries_.end()) {
        std::string known;
        for (const auto &kv : entries_) {
            if (!known.empty())
                known += ", ";
            known += kv.first;
        }
        throw SimulationError(
            strfmt("unknown backend '%s' (registered: %s)",
                   name.c_str(), known.c_str()));
    }
    return it->second;
}

AcceleratorConfig
BackendRegistry::defaultConfig(const std::string &name) const
{
    return lookup(name).defaultConfig();
}

std::unique_ptr<Simulator>
BackendRegistry::make(const std::string &name) const
{
    const Entry entry = lookup(name);
    return entry.factory(entry.defaultConfig());
}

std::unique_ptr<Simulator>
BackendRegistry::make(const std::string &name,
                      AcceleratorConfig cfg) const
{
    // The adapters validate kind and parameter consistency and throw
    // SimulationError with the full descriptive error list.
    return lookup(name).factory(std::move(cfg));
}

std::unique_ptr<Simulator>
makeSimulator(const std::string &name)
{
    return BackendRegistry::instance().make(name);
}

std::unique_ptr<Simulator>
makeSimulator(const std::string &name, AcceleratorConfig cfg)
{
    return BackendRegistry::instance().make(name, std::move(cfg));
}

std::vector<std::string>
registeredBackends()
{
    return BackendRegistry::instance().names();
}

} // namespace scnn
