#include "sim/service.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <set>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "nn/manifest.hh"
#include "nn/model_zoo.hh"
#include "nn/workload.hh"
#include "sim/registry.hh"

namespace scnn {

namespace {

using Clock = std::chrono::steady_clock;

/** Retained latency samples for the percentile window. */
constexpr size_t kLatencyWindow = 8192;

double
msSince(Clock::time_point start, Clock::time_point end)
{
    return std::chrono::duration<double, std::milli>(end - start)
        .count();
}

std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/**
 * Percentile over an unordered sample window (nearest-rank).  Zero
 * when no samples were retained yet.
 */
double
percentile(std::vector<double> samples, double p)
{
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    const size_t rank = static_cast<size_t>(
        std::min<double>(samples.size() - 1,
                         std::ceil(p * samples.size()) - 1));
    return samples[rank];
}

/**
 * Full request signature for the response cache.  Covers every
 * SimulationRequest field that can influence the response bytes
 * (threads included: the resolved count is echoed in the JSON).
 * Requests with explicit config overrides are not signable by this
 * scheme and bypass the response cache.
 */
std::string
requestSignature(const SimulationRequest &request)
{
    std::string sig = workloadCacheKey(request);
    sig += "|threads=" + std::to_string(request.threads);
    sig += request.chained ? "|chained" : "";
    sig += request.keepOutputs ? "|keep" : "";
    for (const auto &spec : request.backends) {
        const std::string &label =
            spec.label.empty() ? spec.backend : spec.label;
        // Backend and label are client-controlled strings: length-
        // prefix them so no crafted name can collide with another
        // request's delimiter structure and steal its cache entry.
        sig += "|spec=" + std::to_string(spec.backend.size()) + ":" +
               spec.backend + "," + std::to_string(label.size()) +
               ":" + label + "," + std::to_string(spec.functional);
    }
    return sig;
}

bool
responseCacheable(const SimulationRequest &request)
{
    if (request.profile)
        return false; // wall times are volatile
    for (const auto &spec : request.backends)
        if (spec.config)
            return false; // config not covered by the signature
    return true;
}

/**
 * Whether a backend simulates concrete tensors (memoized per name:
 * cycleLevel is a property of the architecture kind, not of the
 * configuration).  Unknown names report false -- they fail per
 * backend in the session and need no tensors.
 */
bool
backendIsCycleLevel(const std::string &name)
{
    static std::mutex mu;
    static std::map<std::string, bool> memo;
    std::lock_guard<std::mutex> lock(mu);
    auto it = memo.find(name);
    if (it != memo.end())
        return it->second;
    bool cycle = false;
    try {
        cycle = makeSimulator(name)->capabilities().cycleLevel;
    } catch (const SimulationError &) {
        cycle = false;
    }
    memo.emplace(name, cycle);
    return cycle;
}

/**
 * Service-side mirror of the session's needTensors gate: analytic-
 * only requests (and oracle specs that will derive from an scnn
 * sibling) run on layer parameters alone, so prefetching workload
 * tensors for them would only burn synthesis time and cache space.
 * Conservative in the donor direction: an oracle whose configuration
 * ends up not matching its scnn sibling simply synthesizes inside
 * the session (uncached), which is correct either way.
 */
bool
requestWantsTensors(const SimulationRequest &request)
{
    bool hasScnn = false;
    for (const auto &spec : request.backends)
        hasScnn = hasScnn || spec.backend == "scnn";
    for (const auto &spec : request.backends) {
        if (!backendIsCycleLevel(spec.backend))
            continue;
        if (spec.backend == "oracle" && hasScnn)
            continue; // derives from the sibling's run
        return true;
    }
    return false;
}

/**
 * Request-content validation shared by submit paths: problems a
 * session would treat as programming errors (and panic on) must come
 * back as structured Error replies from a service that accepts
 * arbitrary client requests.
 */
std::string
validateRequest(const SimulationRequest &request)
{
    if (request.backends.empty())
        return "request has no backends";
    if (request.threads < 0)
        return "negative thread budget " +
               std::to_string(request.threads);
    std::set<std::string> labels;
    for (const auto &spec : request.backends) {
        if (spec.backend.empty())
            return "backend spec with an empty backend name";
        const std::string &label =
            spec.label.empty() ? spec.backend : spec.label;
        if (!labels.insert(label).second)
            return "duplicate backend label '" + label + "'";
    }
    return "";
}

} // anonymous namespace

std::string
networkSignature(const Network &net)
{
    std::string sig =
        std::to_string(net.name().size()) + ":" + net.name();
    for (size_t i = 0; i < net.numLayers(); ++i) {
        const ConvLayerParams &l = net.layer(i);
        sig += ";" + std::to_string(l.name.size()) + ":" + l.name +
               ":";
        const int ints[] = {l.inChannels, l.outChannels, l.inWidth,
                            l.inHeight,   l.filterW,     l.filterH,
                            l.strideX,    l.strideY,     l.padX,
                            l.padY,       l.groups,      l.poolWindow,
                            l.poolStride, l.poolPad};
        for (int v : ints)
            sig += std::to_string(v) + ",";
        sig += l.applyRelu ? "r," : "-,";
        sig += l.inEval ? "e," : "-,";
        sig += fmtDouble(l.weightDensity) + "," +
               fmtDouble(l.inputDensity) + "," +
               fmtDouble(l.actSpatialSigma) + "," +
               fmtDouble(l.actChannelSigma);
        // Topology: edges, edge pools and join kinds distinguish
        // shape-coincident networks whose chained results differ.
        sig += "|";
        sig += joinKindName(net.join(i));
        for (const auto &in : net.inputs(i))
            sig += strfmt("<%d~%d/%d/%d", in.from, in.poolWindow,
                          in.poolStride, in.poolPad);
    }
    return sig;
}

std::string
workloadCacheKey(const SimulationRequest &request)
{
    // Every input of makeWorkload(): network signature (every layer
    // parameter, densities included) x seed x evalOnly.  Requests
    // carrying a weight manifest run on different tensors, so the
    // manifest fingerprint joins the key.
    std::string key = networkSignature(request.network) +
                      "|seed=" + std::to_string(request.seed) +
                      "|eval=" + (request.evalOnly ? "1" : "0");
    if (request.manifest != nullptr)
        key += strfmt("|mf=%016llx",
                      static_cast<unsigned long long>(
                          request.manifest->fingerprint()));
    return key;
}

int
shardForRequest(const SimulationRequest &request, int nShards)
{
    SCNN_ASSERT(nShards > 0, "shardForRequest with %d shards",
                nShards);
    std::string key = workloadCacheKey(request);
    // Config-override requests (the DSE sweep traffic) fold the
    // override into the routing key: they bypass the response cache
    // anyway, and routing purely by workload signature would pin an
    // entire single-network sweep to one shard while the rest of the
    // fleet idles.  The workload cache still converges -- each shard
    // synthesizes the network's tensors once.  Requests without
    // overrides keep the exact PR 6 placement.
    bool overridden = false;
    for (const auto &spec : request.backends) {
        if (spec.config) {
            key += "|cfg=" + configSignature(*spec.config);
            overridden = true;
        }
    }
    uint64_t h = hashLabel(key);
    if (overridden) {
        // FNV-1a's low bits avalanche poorly over near-identical
        // strings, and `% nShards` keeps only the low bits; finalize
        // so a sweep's traffic spreads across the fleet.
        h += 0x9E3779B97F4A7C15ull;
        h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
        h = (h ^ (h >> 27)) * 0x94D049BB133111EBull;
        h ^= h >> 31;
    }
    return static_cast<int>(h % static_cast<uint64_t>(nShards));
}

const char *
serviceOutcomeName(ServiceOutcome o)
{
    switch (o) {
    case ServiceOutcome::Ok:
        return "ok";
    case ServiceOutcome::Error:
        return "error";
    case ServiceOutcome::Cancelled:
        return "cancelled";
    case ServiceOutcome::DeadlineExpired:
        return "deadline_expired";
    }
    return "?";
}

// --- SessionTicket ----------------------------------------------------

struct SessionTicket::State
{
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    ServiceReply reply;
    uint64_t index = 0;
    std::shared_ptr<std::atomic<bool>> cancel =
        std::make_shared<std::atomic<bool>>(false);
};

ServiceReply
SessionTicket::wait() const
{
    SCNN_ASSERT(state_ != nullptr, "wait() on an empty ticket");
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock, [&] { return state_->done; });
    return state_->reply;
}

bool
SessionTicket::done() const
{
    SCNN_ASSERT(state_ != nullptr, "done() on an empty ticket");
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->done;
}

bool
SessionTicket::cancel()
{
    SCNN_ASSERT(state_ != nullptr, "cancel() on an empty ticket");
    state_->cancel->store(true, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(state_->mu);
    return !state_->done;
}

uint64_t
SessionTicket::index() const
{
    SCNN_ASSERT(state_ != nullptr, "index() on an empty ticket");
    return state_->index;
}

// --- SimulationService ------------------------------------------------

struct SimulationService::Job
{
    SimulationRequest request;
    double deadlineMs = 0.0;
    Clock::time_point submitted;
    Clock::time_point started;
    std::shared_ptr<SessionTicket::State> state;
};

SimulationService::SimulationService(ServiceConfig cfg) : cfg_(cfg)
{
    SCNN_ASSERT(cfg_.workers > 0, "service needs at least one worker");
    SCNN_ASSERT(cfg_.queueCapacity > 0,
                "service needs a positive queue capacity");
    latencyMs_.reserve(kLatencyWindow);
    queuedMs_.reserve(kLatencyWindow);
    workers_.reserve(static_cast<size_t>(cfg_.workers));
    for (int i = 0; i < cfg_.workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

SimulationService::~SimulationService()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    // Workers drain the remaining queue before exiting (a queued
    // request is a promise); callers wanting a fast teardown cancel
    // their tickets first.
    workAvailable_.notify_all();
    spaceAvailable_.notify_all();
    for (auto &w : workers_)
        w.join();
}

SessionTicket
SimulationService::finishedTicket(ServiceReply reply)
{
    SessionTicket ticket;
    ticket.state_ = std::make_shared<SessionTicket::State>();
    ticket.state_->index = reply.requestIndex;
    ticket.state_->done = true;
    ticket.state_->reply = std::move(reply);
    return ticket;
}

SessionTicket
SimulationService::submit(SimulationRequest request, double deadlineMs)
{
    return *submitImpl(std::move(request), deadlineMs, true);
}

std::optional<SessionTicket>
SimulationService::trySubmit(SimulationRequest request,
                             double deadlineMs)
{
    return submitImpl(std::move(request), deadlineMs, false);
}

std::optional<SessionTicket>
SimulationService::submitImpl(SimulationRequest request,
                              double deadlineMs, bool blocking)
{
    std::unique_lock<std::mutex> lock(mu_);
    if (blocking) {
        spaceAvailable_.wait(lock, [&] {
            return stop_ ||
                   queue_.size() <
                       static_cast<size_t>(cfg_.queueCapacity);
        });
    } else if (!stop_ &&
               queue_.size() >=
                   static_cast<size_t>(cfg_.queueCapacity)) {
        ++shed_;
        return std::nullopt;
    }
    const uint64_t index = nextIndex_++;
    if (stop_) {
        ++errors_;
        ServiceReply reply;
        reply.outcome = ServiceOutcome::Error;
        reply.requestIndex = index;
        reply.error = "request #" + std::to_string(index) +
                      ": service is shutting down";
        return finishedTicket(std::move(reply));
    }
    const std::string invalid = validateRequest(request);
    if (!invalid.empty()) {
        ++errors_;
        ServiceReply reply;
        reply.outcome = ServiceOutcome::Error;
        reply.requestIndex = index;
        reply.error =
            "request #" + std::to_string(index) + ": " + invalid;
        return finishedTicket(std::move(reply));
    }

    auto job = std::make_shared<Job>();
    job->request = std::move(request);
    job->deadlineMs =
        deadlineMs > 0.0 ? deadlineMs : cfg_.defaultDeadlineMs;
    job->submitted = Clock::now();
    job->state = std::make_shared<SessionTicket::State>();
    job->state->index = index;

    SessionTicket ticket;
    ticket.state_ = job->state;

    queue_.push_back(std::move(job));
    maxQueueDepth_ =
        std::max(maxQueueDepth_, static_cast<int>(queue_.size()));
    lock.unlock();
    workAvailable_.notify_one();
    return ticket;
}

void
SimulationService::drain()
{
    std::unique_lock<std::mutex> lock(mu_);
    idle_.wait(lock, [&] { return queue_.empty() && inflight_ == 0; });
}

void
SimulationService::workerLoop()
{
    for (;;) {
        std::shared_ptr<Job> job;
        {
            std::unique_lock<std::mutex> lock(mu_);
            workAvailable_.wait(lock, [&] {
                return stop_ || !queue_.empty();
            });
            if (queue_.empty()) {
                if (stop_)
                    return;
                continue;
            }
            job = std::move(queue_.front());
            queue_.pop_front();
            ++inflight_;
        }
        spaceAvailable_.notify_one();
        process(job);
        {
            std::lock_guard<std::mutex> lock(mu_);
            --inflight_;
            if (queue_.empty() && inflight_ == 0)
                idle_.notify_all();
        }
    }
}

std::shared_ptr<const std::vector<LayerWorkload>>
SimulationService::workloadsFor(const SimulationRequest &request,
                                bool &hit)
{
    const std::string key = workloadCacheKey(request);
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = workloadCache_.find(key);
        if (it != workloadCache_.end()) {
            ++workloadHits_;
            hit = true;
            workloadLru_.splice(workloadLru_.begin(), workloadLru_,
                                it->second.lru);
            return it->second.workloads;
        }
        ++workloadMisses_;
        hit = false;
    }

    // Synthesize outside the service lock (this is the expensive
    // part the cache amortizes).  Concurrent misses on one key may
    // synthesize twice; the tensors are deterministic, so whichever
    // insertion wins the entry is identical.
    auto built = std::make_shared<std::vector<LayerWorkload>>();
    for (const auto &layer : sessionLayers(request)) {
        LayerWorkload w = makeWorkload(layer, request.seed);
        if (request.manifest != nullptr) {
            // Shape mismatches were rejected at request parse time
            // (applyManifest); absent entries keep the synthetic draw.
            std::string err;
            const Tensor4 *mw =
                request.manifest->weightsFor(layer, &err);
            if (mw != nullptr && err.empty())
                w.weights = *mw;
        }
        built->push_back(std::move(w));
    }

    std::lock_guard<std::mutex> lock(mu_);
    auto it = workloadCache_.find(key);
    if (it != workloadCache_.end())
        return it->second.workloads;
    workloadLru_.push_front(key);
    workloadCache_[key] = {built, workloadLru_.begin()};
    while (workloadCache_.size() > cfg_.workloadCacheCapacity) {
        workloadCache_.erase(workloadLru_.back());
        workloadLru_.pop_back();
    }
    return built;
}

void
SimulationService::complete(const std::shared_ptr<Job> &job,
                            ServiceReply reply)
{
    reply.requestIndex = job->state->index;
    const Clock::time_point now = Clock::now();
    reply.queueMs = msSince(job->submitted, job->started);
    reply.runMs = msSince(job->started, now);
    const double totalMs = msSince(job->submitted, now);

    {
        std::lock_guard<std::mutex> lock(mu_);
        switch (reply.outcome) {
        case ServiceOutcome::Ok:
            ++completedOk_;
            break;
        case ServiceOutcome::Error:
            ++errors_;
            break;
        case ServiceOutcome::Cancelled:
            ++cancelled_;
            break;
        case ServiceOutcome::DeadlineExpired:
            ++deadlineExpired_;
            break;
        }
        latencyMaxMs_ = std::max(latencyMaxMs_, totalMs);
        if (latencyMs_.size() < kLatencyWindow) {
            latencyMs_.push_back(totalMs);
        } else {
            latencyMs_[latencyNext_] = totalMs;
            latencyNext_ = (latencyNext_ + 1) % kLatencyWindow;
        }
        if (queuedMs_.size() < kLatencyWindow) {
            queuedMs_.push_back(reply.queueMs);
        } else {
            queuedMs_[queuedNext_] = reply.queueMs;
            queuedNext_ = (queuedNext_ + 1) % kLatencyWindow;
        }
    }

    auto &state = *job->state;
    {
        std::lock_guard<std::mutex> lock(state.mu);
        state.reply = std::move(reply);
        state.done = true;
    }
    state.cv.notify_all();
}

void
SimulationService::process(const std::shared_ptr<Job> &job)
{
    job->started = Clock::now();
    const uint64_t index = job->state->index;
    const std::string tag = "request #" + std::to_string(index);
    ServiceReply reply;

    if (job->state->cancel->load(std::memory_order_relaxed)) {
        reply.outcome = ServiceOutcome::Cancelled;
        reply.error = tag + ": cancelled while queued";
        complete(job, std::move(reply));
        return;
    }
    const double waitedMs = msSince(job->submitted, job->started);
    if (job->deadlineMs > 0.0 && waitedMs > job->deadlineMs) {
        reply.outcome = ServiceOutcome::DeadlineExpired;
        reply.error = tag + ": deadline of " +
                      fmtDouble(job->deadlineMs) +
                      " ms expired after " + fmtDouble(waitedMs) +
                      " ms in queue";
        complete(job, std::move(reply));
        return;
    }

    SimulationRequest &req = job->request;
    // Budget the session's parallel sections: concurrent sessions
    // share the one process pool, so a request that left threads = 0
    // gets the configured per-session slice rather than the whole
    // machine.
    if (req.threads == 0 && cfg_.sessionThreads > 0)
        req.threads = cfg_.sessionThreads;

    const bool cacheable =
        cfg_.cacheResponses && responseCacheable(req);
    std::string signature;
    if (cacheable) {
        signature = requestSignature(req);
        bool hit = false;
        {
            std::lock_guard<std::mutex> lock(mu_);
            auto it = responseCache_.find(signature);
            if (it != responseCache_.end()) {
                ++responseHits_;
                responseLru_.splice(responseLru_.begin(),
                                    responseLru_, it->second.lru);
                reply.outcome = ServiceOutcome::Ok;
                reply.response = it->second.response;
                reply.responseJson = it->second.json;
                reply.responseCacheHit = true;
                hit = true;
            } else {
                ++responseMisses_;
            }
        }
        if (hit) {
            complete(job, std::move(reply));
            return;
        }
    }

    if (cfg_.cacheWorkloads && !req.chained &&
        !req.sharedWorkloads && requestWantsTensors(req))
        req.sharedWorkloads =
            workloadsFor(req, reply.workloadCacheHit);

    req.cancel = job->state->cancel;
    try {
        auto response = std::make_shared<SimulationResponse>(
            runSession(req));
        auto json =
            std::make_shared<const std::string>(toJson(*response));
        reply.outcome = ServiceOutcome::Ok;
        reply.response = std::move(response);
        reply.responseJson = std::move(json);
        if (cacheable) {
            std::lock_guard<std::mutex> lock(mu_);
            if (responseCache_.find(signature) ==
                responseCache_.end()) {
                responseLru_.push_front(signature);
                responseCache_[signature] = {reply.response,
                                             reply.responseJson,
                                             responseLru_.begin()};
                while (responseCache_.size() >
                       cfg_.responseCacheCapacity) {
                    responseCache_.erase(responseLru_.back());
                    responseLru_.pop_back();
                }
            }
        }
    } catch (const SimulationError &e) {
        if (job->state->cancel->load(std::memory_order_relaxed)) {
            reply.outcome = ServiceOutcome::Cancelled;
            reply.error = tag + ": cancelled mid-flight (" +
                          e.what() + ")";
        } else {
            reply.outcome = ServiceOutcome::Error;
            reply.error = tag + ": " + e.what();
        }
    } catch (const std::exception &e) {
        reply.outcome = ServiceOutcome::Error;
        reply.error = tag + ": unexpected exception: " + e.what();
    }
    complete(job, std::move(reply));
}

ServiceStats
SimulationService::stats() const
{
    ServiceStats s;
    std::vector<double> latency, queued;
    {
        std::lock_guard<std::mutex> lock(mu_);
        s.submitted = nextIndex_;
        s.completedOk = completedOk_;
        s.errors = errors_;
        s.cancelled = cancelled_;
        s.deadlineExpired = deadlineExpired_;
        s.shed = shed_;
        s.queueDepth = static_cast<int>(queue_.size());
        s.inflight = inflight_;
        s.maxQueueDepth = maxQueueDepth_;
        s.workloadCacheHits = workloadHits_;
        s.workloadCacheMisses = workloadMisses_;
        s.workloadCacheEntries = workloadCache_.size();
        s.responseCacheHits = responseHits_;
        s.responseCacheMisses = responseMisses_;
        s.responseCacheEntries = responseCache_.size();
        s.latencyMaxMs = latencyMaxMs_;
        latency = latencyMs_;
        queued = queuedMs_;
    }
    s.latencyP50Ms = percentile(latency, 0.50);
    s.latencyP95Ms = percentile(latency, 0.95);
    s.queueP50Ms = percentile(queued, 0.50);
    s.queueP95Ms = percentile(std::move(queued), 0.95);
    return s;
}

std::string
SimulationService::statsJson(
    const std::function<void(JsonWriter &)> &extra) const
{
    const ServiceStats s = stats();
    auto rate = [](uint64_t hits, uint64_t misses) {
        const uint64_t total = hits + misses;
        return total == 0
            ? 0.0
            : static_cast<double>(hits) / static_cast<double>(total);
    };
    JsonWriter w;
    w.beginObject();
    w.key("schema").value("scnn.service_stats.v1");
    w.key("workers").value(cfg_.workers);
    w.key("queue_capacity").value(cfg_.queueCapacity);
    w.key("session_threads").value(cfg_.sessionThreads);
    w.key("submitted").value(s.submitted);
    w.key("completed_ok").value(s.completedOk);
    w.key("errors").value(s.errors);
    w.key("cancelled").value(s.cancelled);
    w.key("deadline_expired").value(s.deadlineExpired);
    w.key("shed").value(s.shed);
    // Monotonic per-outcome counters under one roof: what a DSE
    // driver's funnel accounting cross-checks against (the flat keys
    // above stay for the dashboards that already scrape them).
    w.key("requests_total").beginObject();
    w.key("submitted").value(s.submitted);
    w.key("ok").value(s.completedOk);
    w.key("error").value(s.errors);
    w.key("cancelled").value(s.cancelled);
    w.key("deadline_expired").value(s.deadlineExpired);
    w.key("shed").value(s.shed);
    w.endObject();
    if (cfg_.shardCount > 0) {
        w.key("shard").beginObject();
        w.key("index").value(cfg_.shardIndex);
        w.key("count").value(cfg_.shardCount);
        w.endObject();
    }
    w.key("queue_depth").value(s.queueDepth);
    w.key("inflight").value(s.inflight);
    w.key("max_queue_depth").value(s.maxQueueDepth);
    w.key("workload_cache").beginObject();
    w.key("enabled").value(cfg_.cacheWorkloads);
    w.key("entries").value(static_cast<uint64_t>(
        s.workloadCacheEntries));
    w.key("hits").value(s.workloadCacheHits);
    w.key("misses").value(s.workloadCacheMisses);
    w.key("hit_rate").value(
        rate(s.workloadCacheHits, s.workloadCacheMisses));
    w.endObject();
    w.key("response_cache").beginObject();
    w.key("enabled").value(cfg_.cacheResponses);
    w.key("entries").value(static_cast<uint64_t>(
        s.responseCacheEntries));
    w.key("hits").value(s.responseCacheHits);
    w.key("misses").value(s.responseCacheMisses);
    w.key("hit_rate").value(
        rate(s.responseCacheHits, s.responseCacheMisses));
    w.endObject();
    w.key("latency_ms").beginObject();
    w.key("p50").value(s.latencyP50Ms);
    w.key("p95").value(s.latencyP95Ms);
    w.key("max").value(s.latencyMaxMs);
    w.endObject();
    w.key("queue_ms").beginObject();
    w.key("p50").value(s.queueP50Ms);
    w.key("p95").value(s.queueP95Ms);
    w.endObject();
    if (extra)
        extra(w);
    w.endObject();
    return w.str();
}

// --- JSON-lines request parsing ---------------------------------------

namespace {

/** Limits for one protocol line; see also the scnn_serve line cap. */
const JsonParseLimits &
requestLimits()
{
    static const JsonParseLimits limits = [] {
        JsonParseLimits l;
        l.maxDepth = 8;          // request documents are shallow
        l.maxStringBytes = 256;  // names and labels only
        l.maxElements = 256;
        l.maxDocumentBytes = 1 << 16;
        return l;
    }();
    return limits;
}

constexpr size_t kMaxBackendSpecs = 32;

bool
asBool(const JsonValue &v, const char *field, bool &out,
       std::string &error)
{
    if (!v.isBool()) {
        error = std::string("'") + field + "' must be a boolean, got " +
                JsonValue::kindName(v.kind);
        return false;
    }
    out = v.boolean;
    return true;
}

bool
asBoundedInt(const JsonValue &v, const char *field, int64_t lo,
             int64_t hi, int64_t &out, std::string &error)
{
    if (!v.isNumber() || v.number != std::floor(v.number)) {
        error = std::string("'") + field + "' must be an integer";
        return false;
    }
    if (v.number < static_cast<double>(lo) ||
        v.number > static_cast<double>(hi)) {
        error = std::string("'") + field + "' out of range [" +
                std::to_string(lo) + ", " + std::to_string(hi) + "]";
        return false;
    }
    out = static_cast<int64_t>(v.number);
    return true;
}

/**
 * A backend spec's "config" override: a base architecture plus named
 * integer fields (the configFieldNames() vocabulary).  Validation of
 * the *values* is deferred to the registry, which reports a
 * structured per-backend failure -- the protocol's contract for
 * semantic problems; this parser only rejects structural ones
 * (unknown keys, wrong types).
 */
bool
parseConfigOverride(const JsonValue &v, AcceleratorConfig &cfg,
                    std::string &error)
{
    if (!v.isObject()) {
        error = std::string("'config' must be an object, got ") +
                JsonValue::kindName(v.kind);
        return false;
    }
    cfg = scnnConfig();
    // Resolve "base" first regardless of key order: the base decides
    // which defaults the field overrides land on.
    for (const auto &kv : v.object) {
        if (kv.first != "base")
            continue;
        const JsonValue &val = kv.second;
        if (!val.isString()) {
            error = "config 'base' must be a string";
            return false;
        }
        if (val.string == "scnn") cfg = scnnConfig();
        else if (val.string == "dcnn") cfg = dcnnConfig();
        else if (val.string == "dcnn-opt") cfg = dcnnOptConfig();
        else {
            error = "unknown config base '" + val.string +
                    "' (want scnn|dcnn|dcnn-opt)";
            return false;
        }
    }
    for (const auto &kv : v.object) {
        const std::string &key = kv.first;
        const JsonValue &val = kv.second;
        if (key == "base")
            continue;
        int64_t value = 0;
        if (val.isBool()) {
            value = val.boolean ? 1 : 0;
        } else if (!asBoundedInt(val, key.c_str(), 0, int64_t(1) << 40,
                                 value, error)) {
            return false;
        }
        if (!setConfigField(cfg, key, value)) {
            error = "unknown config field '" + key + "'";
            return false;
        }
    }
    cfg.name = "override";
    return true;
}

bool
parseBackendSpec(const JsonValue &v, BackendSpec &spec,
                 std::string &error)
{
    if (v.isString()) {
        if (v.string.empty()) {
            error = "backend name must not be empty";
            return false;
        }
        spec.backend = v.string;
        return true;
    }
    if (!v.isObject()) {
        error = std::string("backend spec must be a string or an "
                            "object, got ") +
                JsonValue::kindName(v.kind);
        return false;
    }
    for (const auto &kv : v.object) {
        const std::string &key = kv.first;
        const JsonValue &val = kv.second;
        if (key == "backend" || key == "label") {
            if (!val.isString() || val.string.empty()) {
                error = "'" + key + "' must be a non-empty string";
                return false;
            }
            (key == "backend" ? spec.backend : spec.label) =
                val.string;
        } else if (key == "config") {
            AcceleratorConfig cfg;
            if (!parseConfigOverride(val, cfg, error))
                return false;
            spec.config = std::move(cfg);
        } else if (key == "functional") {
            if (val.isBool()) {
                spec.functional = val.boolean ? 1 : 0;
            } else {
                int64_t f = 0;
                if (!asBoundedInt(val, "functional", -1, 1, f, error))
                    return false;
                spec.functional = static_cast<int>(f);
            }
        } else {
            error = "unknown backend spec key '" + key + "'";
            return false;
        }
    }
    if (spec.backend.empty()) {
        error = "backend spec object needs a 'backend' name";
        return false;
    }
    return true;
}

} // anonymous namespace

bool
parseRequestLine(const std::string &line, ParsedServiceRequest &out,
                 std::string &error)
{
    out = ParsedServiceRequest();
    JsonValue doc;
    if (!parseJson(line, doc, error, requestLimits()))
        return false;
    if (!doc.isObject()) {
        error = std::string("request must be a JSON object, got ") +
                JsonValue::kindName(doc.kind);
        return false;
    }

    SimulationRequest &req = out.request;
    std::string networkName;
    std::string manifestPath;
    double densityW = -1.0, densityA = -1.0;

    for (const auto &kv : doc.object) {
        const std::string &key = kv.first;
        const JsonValue &v = kv.second;
        if (key == "network") {
            if (!v.isString()) {
                error = "'network' must be a string";
                return false;
            }
            networkName = v.string;
        } else if (key == "backends") {
            if (!v.isArray()) {
                error = "'backends' must be an array";
                return false;
            }
            if (v.array.empty()) {
                error = "'backends' must not be empty";
                return false;
            }
            if (v.array.size() > kMaxBackendSpecs) {
                error = "'backends' has " +
                        std::to_string(v.array.size()) +
                        " entries (limit " +
                        std::to_string(kMaxBackendSpecs) + ")";
                return false;
            }
            for (const auto &entry : v.array) {
                BackendSpec spec;
                if (!parseBackendSpec(entry, spec, error))
                    return false;
                req.backends.push_back(std::move(spec));
            }
        } else if (key == "seed") {
            if (!v.isNumber() || !v.isUnsigned) {
                error = "'seed' must be a non-negative integer";
                return false;
            }
            req.seed = v.uint64;
        } else if (key == "threads") {
            int64_t t = 0;
            if (!asBoundedInt(v, "threads", 0, 256, t, error))
                return false;
            req.threads = static_cast<int>(t);
        } else if (key == "chained") {
            if (!asBool(v, "chained", req.chained, error))
                return false;
        } else if (key == "eval_only") {
            if (!asBool(v, "eval_only", req.evalOnly, error))
                return false;
        } else if (key == "keep_outputs") {
            if (!asBool(v, "keep_outputs", req.keepOutputs, error))
                return false;
        } else if (key == "profile") {
            if (!asBool(v, "profile", req.profile, error))
                return false;
        } else if (key == "density") {
            if (!v.isArray() || v.array.size() != 2 ||
                !v.array[0].isNumber() || !v.array[1].isNumber()) {
                error = "'density' must be a [weight, activation] "
                        "pair of numbers";
                return false;
            }
            densityW = v.array[0].number;
            densityA = v.array[1].number;
            if (!(densityW > 0.0 && densityW <= 1.0) ||
                !(densityA > 0.0 && densityA <= 1.0)) {
                error = "'density' values must be in (0, 1]";
                return false;
            }
        } else if (key == "manifest") {
            if (!v.isString() || v.string.empty()) {
                error = "'manifest' must be a non-empty path to an "
                        "SCNNWMF1 weight-manifest file";
                return false;
            }
            manifestPath = v.string;
        } else if (key == "deadline_ms") {
            if (!v.isNumber() || !(v.number >= 0.0)) {
                error = "'deadline_ms' must be a non-negative number";
                return false;
            }
            out.deadlineMs = v.number;
        } else {
            error = "unknown request key '" + key + "'";
            return false;
        }
    }

    if (networkName.empty()) {
        error = "request needs a 'network'";
        return false;
    }
    if (req.backends.empty()) {
        error = "request needs a non-empty 'backends' array";
        return false;
    }
    if (networkName == "alexnet")
        req.network = alexNet();
    else if (networkName == "googlenet")
        req.network = googLeNet();
    else if (networkName == "vgg16")
        req.network = vgg16();
    else if (networkName == "resnet18")
        req.network = resNet18();
    else if (networkName == "mobilenet")
        req.network = mobileNet();
    else if (networkName == "tiny")
        req.network = tinyTestNetwork();
    else if (networkName == "tiny-res")
        req.network = tinyResNetwork();
    else if (networkName == "tiny-dw")
        req.network = tinyDwNetwork();
    else {
        error = "unknown network '" + networkName +
                "' (want alexnet|googlenet|vgg16|resnet18|mobilenet|"
                "tiny|tiny-res|tiny-dw)";
        return false;
    }
    if (densityW > 0.0)
        req.network = withUniformDensity(req.network, densityW,
                                         densityA);
    if (!manifestPath.empty()) {
        auto manifest = std::make_shared<WeightManifest>();
        if (!loadManifestFile(manifestPath, manifest.get(), &error))
            return false;
        // Rebind the network's densities/weights to the checkpoint;
        // shape mismatches and no-layer-matched manifests are clean
        // request rejections, not session failures.
        if (!applyManifest(req.network, *manifest, &error))
            return false;
        req.manifest = std::move(manifest);
    }

    // Chained execution feeds each layer's functional output forward,
    // so a spec that disables functional output cannot chain (the CLI
    // enforces the same combination).
    if (req.chained)
        for (const auto &spec : req.backends)
            if (spec.functional == 0) {
                error = "chained requests cannot disable functional "
                        "output (backend '" +
                        spec.backend + "')";
                return false;
            }

    const std::string invalid = validateRequest(req);
    if (!invalid.empty()) {
        error = invalid;
        return false;
    }
    return true;
}

} // namespace scnn
