/**
 * @file
 * The unified simulation interface: every architecture model in the
 * repo (cycle-level SCNN, dense DCNN / DCNN-opt, the SCNN(oracle)
 * bound, the TimeLoop analytical model) is reachable through one
 * polymorphic `Simulator` with a declared capability set.  Backends
 * are constructed by name through the BackendRegistry
 * (sim/registry.hh) and driven either directly or through the
 * request/response session layer (sim/session.hh), which owns
 * workload synthesis and result serialization.
 *
 * The concrete engine classes (ScnnSimulator, DcnnSimulator,
 * TimeLoopModel) remain the implementation layer; this interface is
 * the service seam every driver, tool and bench goes through.
 */

#ifndef SCNN_SIM_SIMULATOR_HH
#define SCNN_SIM_SIMULATOR_HH

#include <cstdint>
#include <stdexcept>
#include <string>

#include "arch/config.hh"
#include "nn/manifest.hh"
#include "nn/network.hh"
#include "nn/workload.hh"
#include "scnn/result.hh"

namespace scnn {

/**
 * A recoverable simulation-service error: unknown backend name,
 * invalid or mismatched configuration, or a request outside the
 * backend's declared capabilities.  Unlike fatal(), which kills the
 * process on unrecoverable user errors deep in the engines, a
 * SimulationError is thrown at the service boundary so sessions can
 * report per-backend failures and continue with the remaining
 * backends.
 */
class SimulationError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** What a backend can do; sessions gate requests on these flags. */
struct BackendCapabilities
{
    /**
     * Cycle-level simulation of concrete tensors (SCNN/DCNN/oracle)
     * as opposed to analytic expectation (TimeLoop).  Sessions only
     * synthesize workload tensors when a cycle-level backend asks.
     */
    bool cycleLevel = false;

    /** Can produce functional output activations. */
    bool functional = false;

    /**
     * Whether network-mode runs compute functional outputs by
     * default.  SCNN's timing depends on non-zero positions, so it is
     * always functional; the dense baselines skip the arithmetic in
     * sweeps because their timing is position-independent.
     */
    bool functionalByDefault = false;

    /**
     * Chained whole-network execution on sequential topologies (each
     * layer consumes the previous layer's simulated output).
     */
    bool chained = false;

    /**
     * Chained execution of arbitrary network DAGs (branch fan-out,
     * channel concatenation, residual addition, per-edge pooling) via
     * the generic DAG executor (driver/dag_runner.hh).
     */
    bool chainedDag = false;
};

/** Options for a whole-network simulation request. */
struct NetworkRunOptions
{
    /** Master seed for workload synthesis. */
    uint64_t seed = 20170624; // ISCA'17

    /** Restrict to the paper's evaluation scope (see inEval). */
    bool evalOnly = true;

    /**
     * Chained execution: activation sparsity emerges from the
     * computation instead of being drawn from the profile.  Requires
     * the `chained` capability (or `chainedDag` for non-sequential
     * topologies); backends without it throw SimulationError.
     */
    bool chained = false;

    /**
     * Compute functional outputs per layer; -1 uses the backend's
     * functionalByDefault capability.
     */
    int functional = -1;

    /**
     * Worker threads (0 = SCNN_THREADS / hardware default).  Resolved
     * once per run and pinned into every per-layer RunOptions so all
     * parallel sections agree; results are bit-identical for every
     * value.
     */
    int threads = 0;

    /**
     * Chained runs only: retain each layer's functional output tensor
     * in its LayerResult.  Callers that read stats/densities only
     * (the CLI, throughput benches) pass false to skip one
     * full-tensor deep copy per layer.
     */
    bool keepOutputs = true;

    /** Record per-stage wall times (RunOptions::profile) per layer. */
    bool profile = false;

    /**
     * Optional weight manifest (nn/manifest.hh): layers with an entry
     * run on the real checkpoint weights instead of the seeded
     * synthetic draw.  Not owned; the caller (session layer) keeps it
     * alive for the duration of the run and is expected to have
     * applied it to the network (applyManifest) so densities and
     * shapes agree.
     */
    const WeightManifest *manifest = nullptr;
};

/**
 * The unified simulator interface.  Implementations adapt the
 * concrete engines; construct them through makeSimulator() in
 * sim/registry.hh rather than directly.
 */
class Simulator
{
  public:
    virtual ~Simulator() = default;

    /** Registry name of this backend ("scnn", "timeloop", ...). */
    virtual std::string name() const = 0;

    virtual BackendCapabilities capabilities() const = 0;

    virtual const AcceleratorConfig &config() const = 0;

    /**
     * Simulate (or analytically estimate) one layer on a concrete
     * workload.  Analytic backends read only workload.layer; sessions
     * may pass an empty-tensor shell when no cycle-level backend is
     * in the request.
     */
    virtual LayerResult simulateLayer(const LayerWorkload &workload,
                                      const RunOptions &opts) = 0;

    /**
     * Simulate every layer of a network.  Profile-driven by default;
     * chained when opts.chained and the topology (or the GoogLeNet
     * DAG runner) allows it.  Throws SimulationError on requests
     * outside this backend's capabilities.
     */
    virtual NetworkResult simulateNetwork(const Network &net,
                                          const NetworkRunOptions &opts) = 0;
};

} // namespace scnn

#endif // SCNN_SIM_SIMULATOR_HH
