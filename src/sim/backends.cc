#include "sim/backends.hh"

#include <utility>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "driver/dag_runner.hh"
#include "scnn/oracle.hh"

namespace scnn {

namespace {

/** Which architecture kinds a backend's engine accepts. */
enum class KindRequirement
{
    Scnn,  ///< ArchKind::SCNN only
    Dense, ///< DCNN or DCNN_OPT
    Any,   ///< any kind (the analytic model covers all three)
};

/**
 * Validate a configuration and check its architecture kind before it
 * reaches an engine constructor (which would fatal()/panic() on the
 * same problems); the service boundary reports them recoverably.
 */
AcceleratorConfig
checkedConfig(AcceleratorConfig cfg, KindRequirement want,
              const char *backend)
{
    const std::vector<std::string> errors = cfg.validate();
    if (!errors.empty()) {
        throw SimulationError(
            strfmt("backend '%s': invalid configuration: ", backend) +
            joinConfigErrors(errors));
    }
    const bool isScnn = cfg.kind == ArchKind::SCNN;
    const bool ok = want == KindRequirement::Any ||
                    (want == KindRequirement::Scnn) == isScnn;
    if (!ok) {
        throw SimulationError(strfmt(
            "backend '%s' requires a%s configuration, got kind %s "
            "(config '%s')", backend,
            want == KindRequirement::Scnn ? "n SCNN"
                                          : " dense DCNN/DCNN-opt",
            archKindName(cfg.kind), cfg.name.c_str()));
    }
    return cfg;
}

/**
 * The shared profile-driven network loop: one synthetic workload per
 * layer at the profile densities, with the first-layer flag and the
 * next layer's measured input density (this layer's output density by
 * construction) wired into the options.  Tensors are only synthesized
 * for cycle-level backends; analytic ones get a shell workload
 * carrying just the layer parameters.  This is the single place the
 * per-layer option chaining lives for every backend.
 */
NetworkResult
profileNetworkRun(Simulator &backend, const Network &net,
                  const NetworkRunOptions &opts)
{
    const BackendCapabilities caps = backend.capabilities();
    const int pinned = resolveThreads(opts.threads);
    const bool functional = opts.functional < 0
        ? caps.functionalByDefault
        : opts.functional != 0;

    NetworkResult nr;
    nr.networkName = net.name();
    nr.archName = backend.config().name;

    std::vector<ConvLayerParams> layers;
    for (const auto &l : net.layers())
        if (!opts.evalOnly || l.inEval)
            layers.push_back(l);

    for (size_t i = 0; i < layers.size(); ++i) {
        LayerWorkload w;
        if (caps.cycleLevel) {
            w = makeWorkload(layers[i], opts.seed);
            if (opts.manifest != nullptr) {
                std::string error;
                const Tensor4 *mw =
                    opts.manifest->weightsFor(layers[i], &error);
                if (!error.empty())
                    throw SimulationError(error);
                if (mw != nullptr)
                    w.weights = *mw;
            }
        } else {
            w.layer = layers[i];
        }

        RunOptions ro;
        ro.firstLayer = (i == 0);
        ro.outputDensityHint =
            (i + 1 < layers.size()) ? layers[i + 1].inputDensity : 0.5;
        ro.functional = functional;
        ro.threads = pinned;
        ro.profile = opts.profile;
        nr.layers.push_back(backend.simulateLayer(w, ro));
    }
    return nr;
}

/**
 * Chained whole-network dispatch on the SCNN engine: sequential
 * topologies run layer-to-layer with profile-wired density hints;
 * everything else goes through the generic DAG executor.  Structural
 * problems (mismatched joins, shape-inconsistent edges) are a clean
 * rejection (not a fatal()).
 */
NetworkResult
scnnChainedRun(ScnnSimulator &sim, const Network &net,
               const NetworkRunOptions &opts, const char *backend)
{
    const int pinned = resolveThreads(opts.threads);
    if (net.isSequential())
        return sim.runNetworkChained(net, opts.seed, pinned,
                                     opts.keepOutputs, opts.profile,
                                     opts.manifest);
    const std::vector<std::string> errors = net.topologyErrors();
    if (!errors.empty()) {
        throw SimulationError(strfmt(
            "backend '%s': network '%s' is neither sequential nor an "
            "executable DAG: ", backend, net.name().c_str()) +
            joinConfigErrors(errors));
    }
    DagRunOptions dagOpts;
    dagOpts.seed = opts.seed;
    dagOpts.threads = pinned;
    dagOpts.keepOutputs = opts.keepOutputs;
    dagOpts.profile = opts.profile;
    dagOpts.manifest = opts.manifest;
    return runNetworkDag(sim, net, dagOpts);
}

/** checkedConfig for the dense engine, blaming the right backend. */
AcceleratorConfig
checkedDenseConfig(AcceleratorConfig cfg)
{
    const char *backend =
        cfg.kind == ArchKind::DCNN_OPT ? "dcnn-opt" : "dcnn";
    return checkedConfig(std::move(cfg), KindRequirement::Dense,
                         backend);
}

[[noreturn]] void
rejectChained(const char *backend)
{
    throw SimulationError(strfmt(
        "backend '%s' does not support chained execution (activation "
        "propagation needs a functional cycle-level model); use "
        "'scnn' or 'oracle'", backend));
}

} // anonymous namespace

// --- ScnnBackend ------------------------------------------------------

ScnnBackend::ScnnBackend(AcceleratorConfig cfg)
    : sim_(checkedConfig(std::move(cfg), KindRequirement::Scnn, "scnn"))
{
}

BackendCapabilities
ScnnBackend::capabilities() const
{
    BackendCapabilities caps;
    caps.cycleLevel = true;
    caps.functional = true;
    caps.functionalByDefault = true; // timing depends on positions
    caps.chained = true;
    caps.chainedDag = true;
    return caps;
}

const AcceleratorConfig &
ScnnBackend::config() const
{
    return sim_.config();
}

LayerResult
ScnnBackend::simulateLayer(const LayerWorkload &workload,
                           const RunOptions &opts)
{
    return sim_.runLayer(workload, opts);
}

NetworkResult
ScnnBackend::simulateNetwork(const Network &net,
                             const NetworkRunOptions &opts)
{
    if (opts.chained)
        return scnnChainedRun(sim_, net, opts, "scnn");
    return profileNetworkRun(*this, net, opts);
}

// --- DcnnBackend ------------------------------------------------------

DcnnBackend::DcnnBackend(AcceleratorConfig cfg)
    : sim_(checkedDenseConfig(std::move(cfg)))
{
}

std::string
DcnnBackend::name() const
{
    return sim_.config().kind == ArchKind::DCNN_OPT ? "dcnn-opt"
                                                    : "dcnn";
}

BackendCapabilities
DcnnBackend::capabilities() const
{
    BackendCapabilities caps;
    caps.cycleLevel = true;
    caps.functional = true;
    // Dense timing is position-independent, so sweeps skip the
    // arithmetic by default.
    caps.functionalByDefault = false;
    return caps;
}

const AcceleratorConfig &
DcnnBackend::config() const
{
    return sim_.config();
}

LayerResult
DcnnBackend::simulateLayer(const LayerWorkload &workload,
                           const RunOptions &opts)
{
    DcnnRunOptions dense;
    static_cast<RunOptions &>(dense) = opts;
    return sim_.runLayer(workload, dense);
}

NetworkResult
DcnnBackend::simulateNetwork(const Network &net,
                             const NetworkRunOptions &opts)
{
    if (opts.chained)
        rejectChained(name().c_str());
    return profileNetworkRun(*this, net, opts);
}

// --- OracleBackend ----------------------------------------------------

LayerResult
deriveOracleResult(const LayerResult &scnnResult,
                   const AcceleratorConfig &cfg)
{
    LayerResult r = scnnResult;
    r.archName = "SCNN-oracle";
    r.stats.set("scnn_cycles", static_cast<double>(scnnResult.cycles));
    r.cycles = oracleCycles(scnnResult, cfg);
    // Perfect utilization: no fragmentation, barriers or exposed
    // drain.  Work counts, functional output and energy events are
    // the measured SCNN run's (the oracle is the same hardware minus
    // all stalls; the paper defines it as a performance bound only).
    r.computeCycles = r.cycles;
    r.drainExposedCycles = 0;
    r.peIdleFraction = 0.0;
    const double slots = static_cast<double>(r.cycles) *
                         static_cast<double>(cfg.multipliers());
    // The bound packs landed (in-plane) products perfectly.
    r.multUtilBusy = slots > 0
        ? static_cast<double>(r.landedProducts) / slots
        : 0.0;
    r.multUtilOverall = r.multUtilBusy;
    return r;
}

OracleBackend::OracleBackend(AcceleratorConfig cfg)
    : sim_(checkedConfig(std::move(cfg), KindRequirement::Scnn, "oracle"))
{
}

BackendCapabilities
OracleBackend::capabilities() const
{
    BackendCapabilities caps;
    caps.cycleLevel = true; // needs the measured non-zero products
    caps.functional = true;
    caps.functionalByDefault = true;
    caps.chained = true;    // wraps the SCNN engine entirely
    caps.chainedDag = true;
    return caps;
}

const AcceleratorConfig &
OracleBackend::config() const
{
    return sim_.config();
}

LayerResult
OracleBackend::simulateLayer(const LayerWorkload &workload,
                             const RunOptions &opts)
{
    return deriveOracleResult(sim_.runLayer(workload, opts),
                              sim_.config());
}

NetworkResult
OracleBackend::simulateNetwork(const Network &net,
                               const NetworkRunOptions &opts)
{
    if (!opts.chained)
        return profileNetworkRun(*this, net, opts);
    NetworkResult nr = scnnChainedRun(sim_, net, opts, "oracle");
    for (auto &l : nr.layers)
        l = deriveOracleResult(l, sim_.config());
    nr.archName = "SCNN-oracle";
    return nr;
}

// --- TimeLoopBackend --------------------------------------------------

TimeLoopBackend::TimeLoopBackend(AcceleratorConfig cfg)
    : cfg_(checkedConfig(std::move(cfg), KindRequirement::Any,
                         "timeloop"))
{
}

BackendCapabilities
TimeLoopBackend::capabilities() const
{
    return BackendCapabilities(); // analytic: everything false
}

LayerResult
TimeLoopBackend::simulateLayer(const LayerWorkload &workload,
                               const RunOptions &opts)
{
    AnalyticOptions ao;
    ao.firstLayer = opts.firstLayer;
    ao.outputDensityHint = opts.outputDensityHint;
    ao.batchN = opts.batchN;
    return model_.estimateLayer(cfg_, workload.layer, ao);
}

NetworkResult
TimeLoopBackend::simulateNetwork(const Network &net,
                                 const NetworkRunOptions &opts)
{
    if (opts.chained)
        rejectChained("timeloop");
    return profileNetworkRun(*this, net, opts);
}

} // namespace scnn
