#include "sim/session.hh"

#include <memory>
#include <set>
#include <utility>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "nn/workload.hh"
#include "sim/backends.hh"
#include "sim/registry.hh"

namespace scnn {

const BackendRun *
SimulationResponse::find(const std::string &label) const
{
    for (const auto &r : runs)
        if (r.label == label)
            return &r;
    return nullptr;
}

const BackendRun &
SimulationResponse::get(const std::string &label) const
{
    const BackendRun *run = find(label);
    if (run == nullptr)
        throw SimulationError("no backend run labelled '" + label +
                              "' in the response");
    if (!run->ok)
        throw SimulationError("backend run '" + label +
                              "' failed: " + run->error);
    return *run;
}

bool
SimulationResponse::allOk() const
{
    for (const auto &r : runs)
        if (!r.ok)
            return false;
    return true;
}

namespace {

/**
 * The donor index an "oracle" spec derives from: an ok "scnn" run on
 * field-wise identical hardware (config equality, names aside), so
 * the oracle bound can be computed from the measured SCNN result
 * instead of re-simulating the layer.  -1 when spec `idx` is not an
 * oracle or no donor exists (the oracle then simulates on its own).
 */
int
oracleDonor(const std::vector<BackendSpec> &specs,
            const std::vector<BackendRun> &runs,
            const std::vector<std::unique_ptr<Simulator>> &sims,
            size_t idx)
{
    if (specs[idx].backend != "oracle" || !runs[idx].ok)
        return -1;
    for (size_t j = 0; j < specs.size(); ++j) {
        if (j == idx || !runs[j].ok)
            continue;
        if (specs[j].backend == "scnn" &&
            sims[j]->config() == sims[idx]->config()) {
            return static_cast<int>(j);
        }
    }
    return -1;
}

/**
 * Attribution tag for a backend spec's errors: multiplexed-service
 * clients see many responses interleaved, so every SimulationError a
 * session surfaces names the spec (label + registry name) and its
 * index in the request that raised it.
 */
std::string
specTag(const std::string &label, const std::string &backend,
        size_t idx)
{
    return "backend spec #" + std::to_string(idx) + " ('" + label +
           "', " + backend + ")";
}

/** Throw when the request's cancel flag has been raised. */
void
checkCancelled(const SimulationRequest &request, const char *where)
{
    if (request.cancel &&
        request.cancel->load(std::memory_order_relaxed))
        throw SimulationError(std::string("session cancelled ") +
                              where);
}

} // anonymous namespace

std::vector<ConvLayerParams>
sessionLayers(const SimulationRequest &request)
{
    std::vector<ConvLayerParams> layers;
    for (const auto &l : request.network.layers())
        if (!request.evalOnly || l.inEval)
            layers.push_back(l);
    return layers;
}

SimulationResponse
runSession(const SimulationRequest &request)
{
    const std::vector<BackendSpec> &specs = request.backends;
    SCNN_ASSERT(!specs.empty(),
                "session request needs at least one backend");

    SimulationResponse resp;
    resp.network = request.network.name();
    resp.seed = request.seed;
    resp.chained = request.chained;
    // Resolve the worker count once; every per-layer RunOptions and
    // fan-out below reuses this pinned value (the satellite contract:
    // one resolution helper in common/parallel, no per-call-site
    // duplication).
    resp.threads = resolveThreads(request.threads);

    // --- construct backends (validation + kind checks up front) ---
    resp.runs.resize(specs.size());
    std::vector<std::unique_ptr<Simulator>> sims(specs.size());
    std::set<std::string> labels;
    for (size_t i = 0; i < specs.size(); ++i) {
        BackendRun &run = resp.runs[i];
        run.backend = specs[i].backend;
        run.label = specs[i].label.empty() ? specs[i].backend
                                           : specs[i].label;
        SCNN_ASSERT(labels.insert(run.label).second,
                    "duplicate backend label '%s' in session request",
                    run.label.c_str());
        try {
            sims[i] = specs[i].config
                ? makeSimulator(specs[i].backend, *specs[i].config)
                : makeSimulator(specs[i].backend);
            run.arch = sims[i]->config().name;
            run.capabilities = sims[i]->capabilities();
            run.ok = true;
        } catch (const SimulationError &e) {
            run.ok = false;
            run.error =
                specTag(run.label, run.backend, i) + ": " + e.what();
        }
    }

    // --- chained mode: whole-network delegation per backend ---
    if (request.chained) {
        for (size_t i = 0; i < specs.size(); ++i) {
            if (!resp.runs[i].ok)
                continue;
            checkCancelled(request,
                           "before a chained backend started");
            NetworkRunOptions opts;
            opts.seed = request.seed;
            opts.evalOnly = request.evalOnly;
            opts.chained = true;
            opts.functional = specs[i].functional;
            opts.threads = resp.threads;
            opts.keepOutputs = request.keepOutputs;
            opts.profile = request.profile;
            opts.manifest = request.manifest.get();
            try {
                resp.runs[i].result =
                    sims[i]->simulateNetwork(request.network, opts);
            } catch (const SimulationError &e) {
                resp.runs[i].ok = false;
                resp.runs[i].error =
                    specTag(resp.runs[i].label, resp.runs[i].backend,
                            i) +
                    ": " + e.what();
            }
        }
        return resp;
    }

    // --- shared-workload comparison mode ---
    const std::vector<ConvLayerParams> layers = sessionLayers(request);
    const std::vector<LayerWorkload> *shared =
        request.sharedWorkloads ? request.sharedWorkloads.get()
                                : nullptr;
    if (shared != nullptr) {
        SCNN_ASSERT(shared->size() == layers.size(),
                    "sharedWorkloads has %zu entries for %zu session "
                    "layers", shared->size(), layers.size());
        for (size_t i = 0; i < layers.size(); ++i)
            SCNN_ASSERT((*shared)[i].layer.name == layers[i].name,
                        "sharedWorkloads[%zu] is '%s', session layer "
                        "is '%s'", i, (*shared)[i].layer.name.c_str(),
                        layers[i].name.c_str());
    }

    // Workload tensors are only synthesized when a cycle-level
    // backend consumes them; analytic-only requests (e.g. TimeLoop
    // density sweeps) run on shape/density parameters alone.  An
    // oracle spec with an scnn donor never touches the tensors
    // itself.
    bool needTensors = false;
    for (size_t i = 0; i < specs.size(); ++i)
        if (resp.runs[i].ok && resp.runs[i].capabilities.cycleLevel &&
            oracleDonor(specs, resp.runs, sims, i) < 0)
            needTensors = true;

    // Each layer's workload owns an RNG stream derived from (layer
    // name, seed), so per-layer tasks are independent: fan them out
    // and merge in layer order.  Engines keep all mutable state local
    // to a call, so one Simulator instance per backend serves every
    // concurrent layer task.
    std::vector<size_t> indices(layers.size());
    for (size_t i = 0; i < indices.size(); ++i)
        indices[i] = i;
    const auto perLayer = parallelMap(
        indices,
        [&](size_t li) {
            checkCancelled(request, ("before layer '" +
                                     layers[li].name + "'").c_str());
            // Shared (cached) workloads are consumed in place -- no
            // per-request tensor copy; otherwise synthesize locally.
            LayerWorkload local;
            if (shared == nullptr) {
                if (needTensors) {
                    local = makeWorkload(layers[li], request.seed);
                    if (request.manifest != nullptr) {
                        std::string error;
                        const Tensor4 *mw =
                            request.manifest->weightsFor(layers[li],
                                                         &error);
                        if (!error.empty())
                            throw SimulationError(error);
                        if (mw != nullptr)
                            local.weights = *mw;
                    }
                } else {
                    local.layer = layers[li];
                }
            }
            const LayerWorkload &w =
                shared != nullptr ? (*shared)[li] : local;

            RunOptions base;
            base.firstLayer = (li == 0);
            base.outputDensityHint = (li + 1 < layers.size())
                ? layers[li + 1].inputDensity
                : 0.5;
            base.threads = resp.threads;
            base.profile = request.profile;

            std::vector<LayerResult> row(specs.size());
            // Two passes so an oracle spec can derive from its scnn
            // donor's result for this layer (one simulation, two
            // views -- exactly the pre-redesign compareNetwork
            // arrangement).
            for (int pass = 0; pass < 2; ++pass) {
                for (size_t i = 0; i < specs.size(); ++i) {
                    if (!resp.runs[i].ok)
                        continue;
                    const int donor =
                        oracleDonor(specs, resp.runs, sims, i);
                    if ((donor >= 0) != (pass == 1))
                        continue;
                    if (donor >= 0) {
                        row[i] = deriveOracleResult(
                            row[static_cast<size_t>(donor)],
                            sims[i]->config());
                        continue;
                    }
                    RunOptions opts = base;
                    opts.functional = specs[i].functional < 0
                        ? resp.runs[i].capabilities.functionalByDefault
                        : specs[i].functional != 0;
                    try {
                        row[i] = sims[i]->simulateLayer(w, opts);
                    } catch (const SimulationError &e) {
                        throw SimulationError(
                            specTag(resp.runs[i].label,
                                    resp.runs[i].backend, i) +
                            ", layer '" + w.layer.name +
                            "': " + e.what());
                    }
                }
            }
            return row;
        },
        resp.threads);

    for (size_t i = 0; i < specs.size(); ++i) {
        if (!resp.runs[i].ok)
            continue;
        NetworkResult &nr = resp.runs[i].result;
        nr.networkName = resp.network;
        nr.archName = resp.runs[i].arch;
        nr.layers.reserve(layers.size());
        for (const auto &row : perLayer)
            nr.layers.push_back(row[i]);
    }
    return resp;
}

namespace {

void
writeLayer(JsonWriter &w, const LayerResult &l)
{
    w.beginObject();
    w.key("name").value(l.layerName);
    w.key("cycles").value(l.cycles);
    w.key("compute_cycles").value(l.computeCycles);
    w.key("drain_exposed_cycles").value(l.drainExposedCycles);
    w.key("mul_array_ops").value(l.mulArrayOps);
    w.key("products").value(l.products);
    w.key("landed_products").value(l.landedProducts);
    w.key("dense_macs").value(l.denseMacs);
    w.key("mult_util_busy").value(l.multUtilBusy);
    w.key("mult_util_overall").value(l.multUtilOverall);
    w.key("pe_idle_fraction").value(l.peIdleFraction);
    w.key("energy_pj").value(l.energyPj);
    w.key("dram_weight_bits").value(l.dramWeightBits);
    w.key("dram_act_bits").value(l.dramActBits);
    w.key("dram_tiled").value(l.dramTiled);
    w.key("num_dram_tiles").value(l.numDramTiles);
    w.key("stats").beginObject();
    for (const auto &kv : l.stats.entries())
        w.key(kv.first).value(kv.second);
    w.endObject();
    w.endObject();
}

} // anonymous namespace

std::string
toJson(const SimulationResponse &response)
{
    JsonWriter w;
    w.beginObject();
    w.key("schema").value("scnn.simulation_response.v1");
    w.key("network").value(response.network);
    w.key("seed").value(response.seed);
    w.key("chained").value(response.chained);
    w.key("threads").value(response.threads);

    w.key("backends").beginArray();
    for (const auto &run : response.runs) {
        w.beginObject();
        w.key("backend").value(run.backend);
        w.key("label").value(run.label);
        w.key("arch").value(run.arch);
        w.key("ok").value(run.ok);
        if (!run.ok) {
            w.key("error").value(run.error);
            w.endObject();
            continue;
        }
        w.key("capabilities").beginObject();
        w.key("cycle_level").value(run.capabilities.cycleLevel);
        w.key("functional").value(run.capabilities.functional);
        w.key("chained").value(run.capabilities.chained);
        w.key("chained_dag").value(run.capabilities.chainedDag);
        w.endObject();

        const NetworkResult &nr = run.result;
        w.key("totals").beginObject();
        w.key("cycles").value(nr.totalCycles());
        w.key("energy_pj").value(nr.totalEnergyPj());
        w.key("products").value(nr.totalProducts());
        w.key("layers").value(
            static_cast<uint64_t>(nr.layers.size()));
        w.endObject();

        w.key("layers").beginArray();
        for (const auto &l : nr.layers)
            writeLayer(w, l);
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

} // namespace scnn
