/**
 * @file
 * Adapters wrapping the concrete simulation engines behind the
 * unified Simulator interface: ScnnBackend (cycle-level
 * PT-IS-CP-sparse, chained sequential + GoogLeNet DAG), DcnnBackend
 * (dense baseline, serves both DCNN and DCNN-opt via configuration),
 * OracleBackend (SCNN(oracle): perfect-utilization cycle bound
 * derived from a measured SCNN run) and TimeLoopBackend (analytical
 * expectations, no tensors).
 *
 * Construct these through the BackendRegistry (sim/registry.hh); the
 * classes are exposed so tests can assert on adapter behaviour
 * directly.
 */

#ifndef SCNN_SIM_BACKENDS_HH
#define SCNN_SIM_BACKENDS_HH

#include "analytic/timeloop.hh"
#include "dcnn/simulator.hh"
#include "scnn/simulator.hh"
#include "sim/simulator.hh"

namespace scnn {

/** Cycle-level SCNN (PT-IS-CP-sparse). */
class ScnnBackend : public Simulator
{
  public:
    explicit ScnnBackend(AcceleratorConfig cfg);

    std::string name() const override { return "scnn"; }
    BackendCapabilities capabilities() const override;
    const AcceleratorConfig &config() const override;

    LayerResult simulateLayer(const LayerWorkload &workload,
                              const RunOptions &opts) override;
    NetworkResult simulateNetwork(const Network &net,
                                  const NetworkRunOptions &opts) override;

  private:
    ScnnSimulator sim_;
};

/** Dense baseline: DCNN or DCNN-opt depending on the configuration. */
class DcnnBackend : public Simulator
{
  public:
    explicit DcnnBackend(AcceleratorConfig cfg);

    std::string name() const override;
    BackendCapabilities capabilities() const override;
    const AcceleratorConfig &config() const override;

    LayerResult simulateLayer(const LayerWorkload &workload,
                              const RunOptions &opts) override;
    NetworkResult simulateNetwork(const Network &net,
                                  const NetworkRunOptions &opts) override;

  private:
    DcnnSimulator sim_;
};

/**
 * SCNN(oracle): runs the cycle-level SCNN engine and replaces the
 * cycle count with the Section VI-B upper bound (non-zero products /
 * multipliers, no fragmentation or barriers).  When a session request
 * also contains an SCNN backend with the same configuration, the
 * session derives the oracle from that run instead of re-simulating
 * (see deriveOracleResult).
 */
class OracleBackend : public Simulator
{
  public:
    explicit OracleBackend(AcceleratorConfig cfg);

    std::string name() const override { return "oracle"; }
    BackendCapabilities capabilities() const override;
    const AcceleratorConfig &config() const override;

    LayerResult simulateLayer(const LayerWorkload &workload,
                              const RunOptions &opts) override;
    NetworkResult simulateNetwork(const Network &net,
                                  const NetworkRunOptions &opts) override;

  private:
    ScnnSimulator sim_;
};

/**
 * Rewrite a measured SCNN layer result into the corresponding
 * SCNN(oracle) result (the pure function OracleBackend applies).
 */
LayerResult deriveOracleResult(const LayerResult &scnnResult,
                               const AcceleratorConfig &cfg);

/** TimeLoop analytical model (no tensors; expectations only). */
class TimeLoopBackend : public Simulator
{
  public:
    explicit TimeLoopBackend(AcceleratorConfig cfg);

    std::string name() const override { return "timeloop"; }
    BackendCapabilities capabilities() const override;
    const AcceleratorConfig &config() const override { return cfg_; }

    LayerResult simulateLayer(const LayerWorkload &workload,
                              const RunOptions &opts) override;
    NetworkResult simulateNetwork(const Network &net,
                                  const NetworkRunOptions &opts) override;

  private:
    AcceleratorConfig cfg_;
    TimeLoopModel model_;
};

} // namespace scnn

#endif // SCNN_SIM_BACKENDS_HH
