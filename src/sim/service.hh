/**
 * @file
 * The concurrent simulation service: a long-lived front end that
 * accepts many SimulationRequests at once and multiplexes them over
 * the process-wide compute resources.
 *
 *  - Admission: a bounded FIFO request queue.  submit() blocks when
 *    the queue is full (backpressure toward the producer); trySubmit()
 *    refuses instead.  Requests are identified by their arrival index.
 *
 *  - Scheduling: a fixed set of service workers (the max-inflight
 *    bound) each runs one session at a time through runSession().
 *    Service workers are plain threads, NOT common/parallel pool
 *    workers, so a session's internal parallelFor fans out to the one
 *    shared pool exactly as it does for a standalone runSession() --
 *    no nested pool, no oversubscription.  Each session gets a thread
 *    budget (request.threads, defaulted to ServiceConfig::
 *    sessionThreads) so concurrent sessions share the pool instead of
 *    each claiming the whole machine.
 *
 *  - Workload cache: (network signature x seed x evalOnly) -> the
 *    immutable per-layer tensors a non-chained session consumes.  N
 *    requests for the same network synthesize once; makeWorkload() is
 *    deterministic in (layer name, seed), so cached and fresh tensors
 *    are bit-identical.
 *
 *  - Response cache: simulation here is a pure function of the
 *    request (results are bit-identical across thread counts and SIMD
 *    modes, which the test suite asserts), so completed responses are
 *    memoized by full request signature.  Repeat requests are served
 *    the same immutable response object -- byte-identical JSON --
 *    without re-simulating.  Profiled requests and requests with
 *    explicit config overrides bypass this cache.
 *
 *  - Deadlines and cancellation: a request carries an optional
 *    deadline (milliseconds from submission).  A request whose
 *    deadline has passed when a worker picks it up is failed with
 *    DeadlineExpired without running.  SessionTicket::cancel() raises
 *    a flag the session checks between layers (and between chained
 *    backends); a cancelled session aborts and reports Cancelled.
 *
 *  - Metrics: queue depth, latency percentiles, cache hit rates and
 *    outcome counters, exposed as a "scnn.service_stats.v1" JSON
 *    block (statsJson()).
 *
 * The JSON-lines request parser for tools/scnn_serve lives here too,
 * so the server loop and the robustness tests share one
 * implementation.
 */

#ifndef SCNN_SIM_SERVICE_HH
#define SCNN_SIM_SERVICE_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "sim/session.hh"

namespace scnn {

class JsonWriter;

/** Static configuration of a SimulationService. */
struct ServiceConfig
{
    /**
     * Service workers = the max number of in-flight sessions.  Each
     * worker drives one session at a time; sessions' internal
     * parallel sections share the one process-wide pool.
     */
    int workers = 2;

    /** Bounded FIFO admission queue (excluding in-flight sessions). */
    int queueCapacity = 64;

    /**
     * Default per-session thread budget applied to requests that left
     * threads = 0.  With several sessions in flight, budgeting 1-2
     * threads each shares the pool fairly; 0 keeps the standalone
     * behaviour (each session resolves to the full default), which
     * oversubscribes under load.
     */
    int sessionThreads = 1;

    bool cacheWorkloads = true;
    bool cacheResponses = true;

    /** LRU capacities (entries). */
    size_t workloadCacheCapacity = 8;
    size_t responseCacheCapacity = 64;

    /**
     * Deadline (ms from submission) applied to requests submitted
     * without one.  0 = no deadline.
     */
    double defaultDeadlineMs = 0.0;

    /**
     * Shard identity in a multi-process fleet (scnn_serve --shard /
     * SCNN_SHARD=i/N): echoed in statsJson() so a DSE driver can
     * cross-check its routing against server-side counters.
     * shardCount 0 = not part of a fleet (no "shard" stats block).
     */
    int shardIndex = 0;
    int shardCount = 0;
};

/** Terminal state of a serviced request. */
enum class ServiceOutcome
{
    Ok,              ///< response delivered
    Error,           ///< request invalid or session raised
    Cancelled,       ///< cancelled before completion
    DeadlineExpired, ///< deadline passed while queued
};

const char *serviceOutcomeName(ServiceOutcome o);

/** What a ticket resolves to. */
struct ServiceReply
{
    ServiceOutcome outcome = ServiceOutcome::Error;

    /** Arrival index of the request (0-based, service lifetime). */
    uint64_t requestIndex = 0;

    /** Error description when outcome != Ok (tagged "request #N"). */
    std::string error;

    /** The response; null unless outcome == Ok.  Immutable, shared
     *  with the caches and other tickets. */
    std::shared_ptr<const SimulationResponse> response;

    /** toJson(*response), serialized once; null unless Ok.  Repeat
     *  requests share the identical bytes. */
    std::shared_ptr<const std::string> responseJson;

    bool responseCacheHit = false;
    bool workloadCacheHit = false;

    double queueMs = 0.0; ///< admission -> dequeue
    double runMs = 0.0;   ///< dequeue -> completion
};

/**
 * Handle to one submitted request.  Copyable (shared state); wait()
 * blocks until the service completes the request.
 */
class SessionTicket
{
  public:
    SessionTicket() = default;

    /**
     * Blocks until the reply is available, then returns it (by
     * value: the heavy payloads are shared pointers, and a ticket
     * may be a temporary -- submit(...).wait() is a supported
     * idiom).
     */
    ServiceReply wait() const;

    /** True once the reply is available (wait() will not block). */
    bool done() const;

    /**
     * Request cancellation.  Returns true when the request had not
     * yet completed (the reply will be Cancelled if the flag is seen
     * before the session finishes; a session that wins the race still
     * completes Ok).  False when the reply was already delivered.
     */
    bool cancel();

    /** Arrival index of the request. */
    uint64_t index() const;

  private:
    friend class SimulationService;
    struct State;
    std::shared_ptr<State> state_;
};

/** A metrics snapshot; see statsJson() for the serialized form. */
struct ServiceStats
{
    uint64_t submitted = 0;
    uint64_t completedOk = 0;
    uint64_t errors = 0;
    uint64_t cancelled = 0;
    uint64_t deadlineExpired = 0;
    uint64_t shed = 0; ///< trySubmit() refusals (queue saturated)

    int queueDepth = 0;    ///< currently queued (not in flight)
    int inflight = 0;      ///< sessions running right now
    int maxQueueDepth = 0; ///< high-water mark

    uint64_t workloadCacheHits = 0;
    uint64_t workloadCacheMisses = 0;
    size_t workloadCacheEntries = 0;
    uint64_t responseCacheHits = 0;
    uint64_t responseCacheMisses = 0;
    size_t responseCacheEntries = 0;

    /** End-to-end latency (submission -> completion) percentiles over
     *  the retained sample window, in ms. */
    double latencyP50Ms = 0.0;
    double latencyP95Ms = 0.0;
    double latencyMaxMs = 0.0;
    double queueP50Ms = 0.0;
    double queueP95Ms = 0.0;
};

class SimulationService
{
  public:
    explicit SimulationService(ServiceConfig cfg = ServiceConfig());

    /** Stops admission, completes all queued work, joins workers. */
    ~SimulationService();

    SimulationService(const SimulationService &) = delete;
    SimulationService &operator=(const SimulationService &) = delete;

    /**
     * Enqueue a request; blocks while the queue is full
     * (backpressure).  deadlineMs <= 0 applies the configured
     * default.  Invalid requests (empty backend list, duplicate
     * labels, negative threads) resolve immediately to an Error reply
     * -- the service never panics on request content.
     */
    SessionTicket submit(SimulationRequest request,
                         double deadlineMs = 0.0);

    /** Non-blocking submit; nullopt when the queue is full. */
    std::optional<SessionTicket> trySubmit(SimulationRequest request,
                                           double deadlineMs = 0.0);

    /** Blocks until no request is queued or in flight. */
    void drain();

    ServiceStats stats() const;

    /**
     * Metrics snapshot, schema "scnn.service_stats.v1".  `extra`,
     * when set, is invoked with the writer positioned inside the top-
     * level object so a host (scnn_serve) can append its own blocks
     * -- e.g. transport-level connection counters -- without string
     * splicing.
     */
    std::string statsJson(
        const std::function<void(JsonWriter &)> &extra = {}) const;

    const ServiceConfig &config() const { return cfg_; }

  private:
    struct Job;

    std::optional<SessionTicket> submitImpl(SimulationRequest request,
                                            double deadlineMs,
                                            bool blocking);
    void workerLoop();
    void process(const std::shared_ptr<Job> &job);
    void complete(const std::shared_ptr<Job> &job, ServiceReply reply);
    std::shared_ptr<const std::vector<LayerWorkload>>
    workloadsFor(const SimulationRequest &request, bool &hit);
    SessionTicket finishedTicket(ServiceReply reply);

    ServiceConfig cfg_;

    mutable std::mutex mu_;
    std::condition_variable workAvailable_;
    std::condition_variable spaceAvailable_;
    std::condition_variable idle_;
    std::deque<std::shared_ptr<Job>> queue_;
    std::vector<std::thread> workers_;
    bool stop_ = false;

    uint64_t nextIndex_ = 0;
    int inflight_ = 0;
    int maxQueueDepth_ = 0;
    uint64_t completedOk_ = 0, errors_ = 0, cancelled_ = 0,
             deadlineExpired_ = 0, shed_ = 0;

    /** Latency sample window (ring, kLatencyWindow entries). */
    std::vector<double> latencyMs_, queuedMs_;
    size_t latencyNext_ = 0, queuedNext_ = 0;
    double latencyMaxMs_ = 0.0;

    /** LRU caches: key -> value, most-recently-used list front. */
    struct WorkloadEntry
    {
        std::shared_ptr<const std::vector<LayerWorkload>> workloads;
        std::list<std::string>::iterator lru;
    };
    struct ResponseEntry
    {
        std::shared_ptr<const SimulationResponse> response;
        std::shared_ptr<const std::string> json;
        std::list<std::string>::iterator lru;
    };
    std::map<std::string, WorkloadEntry> workloadCache_;
    std::list<std::string> workloadLru_;
    uint64_t workloadHits_ = 0, workloadMisses_ = 0;
    std::map<std::string, ResponseEntry> responseCache_;
    std::list<std::string> responseLru_;
    uint64_t responseHits_ = 0, responseMisses_ = 0;
};

/**
 * One line of the JSON-lines request protocol, parsed.  See
 * parseRequestLine() for the field reference.
 */
struct ParsedServiceRequest
{
    SimulationRequest request;
    double deadlineMs = 0.0; ///< 0 = none / service default
};

/**
 * Parse one request line of the scnn_serve protocol:
 *
 *   {"network": "tiny" | "alexnet" | "googlenet" | "vgg16",
 *    "backends": ["scnn", {"backend": "timeloop", "label": "tl",
 *                          "functional": 0}, ...],
 *    "seed": 20170624, "threads": 1, "chained": false,
 *    "eval_only": true, "keep_outputs": false, "profile": false,
 *    "density": [0.5, 0.5], "deadline_ms": 250}
 *
 * Only "network" and "backends" are required.  Unknown keys, wrong
 * types, duplicate labels, out-of-range values and oversized
 * documents are reported as a false return with a descriptive
 * `error`; this function never throws and never fatal()s.  An
 * unknown *backend name* parses fine -- the session reports it as a
 * structured per-backend failure, which is the protocol's contract.
 */
bool parseRequestLine(const std::string &line,
                      ParsedServiceRequest &out, std::string &error);

/**
 * Canonical signature of a network's full parameter set (name plus
 * every field of every layer).  Two networks with equal signatures
 * synthesize identical workloads at equal seeds; the service's cache
 * keys build on this.
 */
std::string networkSignature(const Network &net);

/**
 * The workload signature of a request: networkSignature() x seed x
 * evalOnly -- exactly the service's workload-cache key.  Requests
 * with equal keys consume identical synthesized tensors.
 */
std::string workloadCacheKey(const SimulationRequest &request);

/**
 * Deterministic shard routing for multi-process serving: the shard
 * index (in [0, nShards)) a request belongs to, derived from a
 * stable hash of its workload signature.  Routing by workload
 * signature -- not by full request -- sends every request that
 * shares synthesized tensors to the same shard, so each shard's
 * workload and response LRU caches stay hot on its slice of the
 * request space.  Clients and routers must use this one function so
 * a shard fleet agrees on the placement (see docs/OPERATIONS.md).
 */
int shardForRequest(const SimulationRequest &request, int nShards);

} // namespace scnn

#endif // SCNN_SIM_SERVICE_HH
