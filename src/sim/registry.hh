/**
 * @file
 * String-keyed backend factory: every architecture model registers
 * under a stable name ("scnn", "dcnn", "dcnn-opt", "oracle",
 * "timeloop") with a default configuration, and all drivers, tools
 * and benches construct simulators through makeSimulator() instead of
 * naming engine classes.  Adding a backend (a new dataflow, a remote
 * proxy, a batched wrapper) is one registerBackend() call; every
 * session client, the scnn_sim CLI and the JSON reporting pick it up
 * by name with no further plumbing.
 *
 * Construction validates the configuration (AcceleratorConfig::
 * validate) and the architecture kind up front and reports problems
 * as SimulationError, so inconsistent grids or accumulator parameters
 * fail with a descriptive message instead of being silently accepted
 * (or fatal()ing deep inside an engine).
 */

#ifndef SCNN_SIM_REGISTRY_HH
#define SCNN_SIM_REGISTRY_HH

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sim/simulator.hh"

namespace scnn {

/** Builds a Simulator from an already-validated configuration. */
using SimulatorFactory =
    std::function<std::unique_ptr<Simulator>(AcceleratorConfig)>;

/** Produces the backend's default configuration. */
using ConfigFactory = std::function<AcceleratorConfig()>;

class BackendRegistry
{
  public:
    /** The process-wide registry (built-ins pre-registered). */
    static BackendRegistry &instance();

    /**
     * Register (or replace) a backend.  Thread-safe; typically called
     * once at startup for extension backends.
     */
    void registerBackend(const std::string &name,
                         ConfigFactory defaultConfig,
                         SimulatorFactory factory);

    bool has(const std::string &name) const;

    /** Registered backend names, sorted. */
    std::vector<std::string> names() const;

    /**
     * The backend's default configuration (what make(name) uses).
     * Throws SimulationError on unknown names.
     */
    AcceleratorConfig defaultConfig(const std::string &name) const;

    /** Construct a backend with its default configuration. */
    std::unique_ptr<Simulator> make(const std::string &name) const;

    /**
     * Construct a backend with an explicit configuration.  The
     * configuration is validated first; a non-empty error list (or a
     * kind mismatch) throws SimulationError with every problem named.
     */
    std::unique_ptr<Simulator> make(const std::string &name,
                                    AcceleratorConfig cfg) const;

  private:
    BackendRegistry(); // registers the built-in backends

    struct Entry
    {
        ConfigFactory defaultConfig;
        SimulatorFactory factory;
    };

    Entry lookup(const std::string &name) const;

    mutable std::mutex mutex_;
    std::map<std::string, Entry> entries_;
};

/** Shorthand for BackendRegistry::instance().make(name). */
std::unique_ptr<Simulator> makeSimulator(const std::string &name);

/** Shorthand for BackendRegistry::instance().make(name, cfg). */
std::unique_ptr<Simulator> makeSimulator(const std::string &name,
                                         AcceleratorConfig cfg);

/** Shorthand for BackendRegistry::instance().names(). */
std::vector<std::string> registeredBackends();

} // namespace scnn

#endif // SCNN_SIM_REGISTRY_HH
