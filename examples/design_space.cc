/**
 * @file
 * Design-space exploration with the TimeLoop analytical model: sweep
 * the multiplier-array geometry, accumulator banking and PE count,
 * and print performance / area / energy for GoogLeNet, i.e. the kind
 * of study the paper used TimeLoop for (Section V).
 *
 *   $ ./build/examples/design_space
 */

#include <cstdio>

#include "common/logging.hh"
#include "arch/area_model.hh"
#include "common/table.hh"
#include "nn/model_zoo.hh"
#include "sim/registry.hh"

using namespace scnn;

int
main()
{
    const Network net = googLeNet();
    const AreaModel areaModel;

    std::printf("TimeLoop design-space exploration on %s\n\n",
                net.name().c_str());

    Table t("design_space",
            {"Config", "PEs", "FxI", "Banks", "Cycles (M)",
             "Energy (uJ)", "Area (mm2)", "Perf/Area"});

    struct Cand { int rows, cols, f, i, banks; };
    const Cand cands[] = {
        {8, 8, 4, 4, 32},   // paper SCNN
        {8, 8, 4, 4, 16},   // halved banking
        {8, 8, 2, 8, 32},   // skewed array
        {8, 8, 8, 8, 128},  // 4x multipliers
        {4, 4, 8, 8, 128},  // fewer, bigger PEs
        {16, 8, 4, 2, 16},  // more, smaller PEs
    };

    double bestCycles = 0.0;
    for (const auto &c : cands) {
        AcceleratorConfig cfg = scnnConfig();
        cfg.peRows = c.rows;
        cfg.peCols = c.cols;
        cfg.pe.mulF = c.f;
        cfg.pe.mulI = c.i;
        cfg.pe.accumBanks = c.banks;
        cfg.name = strfmt("SCNN-%dx%d-%dx%d", c.rows, c.cols, c.f,
                          c.i);

        // The registry validates the candidate configuration; a bad
        // one fails with the full descriptive error list.
        const NetworkResult r = makeSimulator("timeloop", cfg)
                                    ->simulateNetwork(net,
                                                      NetworkRunOptions());
        const double cycles =
            static_cast<double>(r.totalCycles());
        if (bestCycles == 0.0)
            bestCycles = cycles;
        const double area = areaModel.chipArea(cfg).total();
        t.addRow({cfg.name,
                  std::to_string(cfg.numPes()),
                  strfmt("%dx%d", c.f, c.i),
                  std::to_string(c.banks),
                  Table::num(cycles / 1e6, 2),
                  Table::num(r.totalEnergyPj() / 1e6, 1),
                  Table::num(area, 1),
                  Table::num(bestCycles / cycles / area, 3)});
    }
    t.print();
    std::printf("Perf/Area is normalized to the paper configuration's "
                "performance.\n");
    return 0;
}
