/**
 * @file
 * Demonstrates the compressed-sparse encoding on its own: encode
 * synthetic activation planes at several densities, show stored
 * elements, placeholder counts, compression ratios and the coordinate
 * overhead budget, and verify lossless round-tripping.
 *
 *   $ ./build/examples/compression_tool [density ...]
 */

#include <cstdio>
#include <cstdlib>
#include <span>
#include <vector>

#include "common/random.hh"
#include "common/table.hh"
#include "tensor/rle.hh"
#include "tensor/tensor.hh"

using namespace scnn;

int
main(int argc, char **argv)
{
    std::vector<double> densities;
    for (int i = 1; i < argc; ++i)
        densities.push_back(std::atof(argv[i]));
    if (densities.empty())
        densities = {0.01, 0.05, 0.1, 0.2, 0.35, 0.5, 0.7, 1.0};

    const size_t n = 56 * 56; // one activation plane
    Rng rng(2017);

    Table t("compression_tool",
            {"Density", "Non-zeros", "Stored", "Placeholders",
             "Bits/dense-value", "Ratio vs dense16", "Round trip"});

    for (double d : densities) {
        std::vector<float> plane(n, 0.0f);
        for (auto &v : plane)
            if (rng.bernoulli(d))
                v = static_cast<float>(rng.uniform(0.1, 1.0));

        const RleStream enc = rleEncode(plane);
        const std::vector<float> dec = rleDecode(enc, n);
        bool ok = true;
        for (size_t i = 0; i < n; ++i)
            ok &= (dec[i] == plane[i]);

        const double bits =
            static_cast<double>(enc.bits(kDataBits, kRleIndexBits));
        size_t nnz = 0;
        for (float v : plane)
            nnz += (v != 0.0f);

        t.addRow({Table::num(d, 2), std::to_string(nnz),
                  std::to_string(enc.storedElements()),
                  std::to_string(enc.placeholders()),
                  Table::num(bits / n, 2),
                  Table::num(16.0 * n / bits, 2) + "x",
                  ok ? "exact" : "FAILED"});
    }
    t.print();
    std::printf("Each stored element carries %d data bits + %d-bit "
                "zero-run index (Section IV).\n", kDataBits,
                kRleIndexBits);
    return 0;
}
