/**
 * @file
 * Whole-network example: run pruned AlexNet's convolutional layers
 * through the SCNN cycle-level simulator, layer by layer, printing
 * the per-layer timing/energy/utilization table and the end-to-end
 * summary (the data behind Figs. 8a/9a/10a).
 *
 *   $ ./build/examples/alexnet_inference
 */

#include <cstdio>

#include "common/table.hh"
#include "driver/experiments.hh"
#include "nn/model_zoo.hh"

using namespace scnn;

int
main()
{
    const Network net = alexNet();
    std::printf("Simulating %s (%zu conv layers)...\n\n",
                net.name().c_str(), net.numLayers());

    const NetworkComparison cmp = compareNetwork(net);

    Table t("alexnet_inference",
            {"Layer", "SCNN cycles", "DCNN cycles", "Speedup",
             "Mult util", "PE idle", "Energy vs DCNN", "DRAM tiled"});
    for (const auto &l : cmp.layers) {
        t.addRow({l.layerName,
                  std::to_string(l.scnn.cycles),
                  std::to_string(l.dcnn.cycles),
                  Table::num(l.speedupScnn(), 2) + "x",
                  Table::num(l.scnn.multUtilBusy, 2),
                  Table::num(l.scnn.peIdleFraction, 2),
                  Table::num(l.energyRelDcnn(l.scnn), 2),
                  l.scnn.dramTiled ? "yes" : "no"});
    }
    t.print();

    const double us =
        static_cast<double>(cmp.totalScnnCycles()) / 1e3; // 1 GHz
    std::printf("Network: %.2fx speedup over DCNN, %.2fx energy "
                "efficiency, ~%.0f us/inference at 1 GHz\n",
                cmp.networkSpeedupScnn(),
                cmp.totalDcnnEnergy() / cmp.totalScnnEnergy(), us);
    return 0;
}
