/**
 * @file
 * Whole-network DAG example: run GoogLeNet end to end on SCNN with
 * real activation propagation through the stem, all nine inception
 * modules (branch convolutions + channel concatenation) and the stage
 * pools.  Activation sparsity *emerges* from the computation; the
 * table compares it with the static density profile used by the
 * paper-reproduction benches.
 *
 *   $ ./build/examples/googlenet_chained
 */

#include <cstdio>

#include "common/table.hh"
#include "nn/model_zoo.hh"
#include "sim/registry.hh"

using namespace scnn;

int
main()
{
    std::printf("Chained GoogLeNet inference on SCNN (emergent "
                "sparsity)...\n\n");

    // The scnn backend's chainedDag capability routes GoogLeNet's
    // inception DAG through the generic DAG executor.
    const auto sim = makeSimulator("scnn");
    const Network net = googLeNet();
    NetworkRunOptions opts;
    opts.seed = 2017;
    opts.chained = true;
    const NetworkResult nr = sim->simulateNetwork(net, opts);

    Table t("googlenet_chained",
            {"Layer", "Cycles", "Mult util", "Emergent out density",
             "Profile in density (next)"});
    for (size_t i = 0; i < nr.layers.size(); ++i) {
        const auto &l = nr.layers[i];
        const double profNext = (i + 1 < nr.layers.size())
            ? net.layer(i + 1).inputDensity : 0.0;
        t.addRow({l.layerName, std::to_string(l.cycles),
                  Table::num(l.multUtilBusy, 2),
                  Table::num(l.stats.getOr("output_density", 0.0), 2),
                  Table::num(profNext, 2)});
    }
    t.print();

    const double us =
        static_cast<double>(nr.totalCycles()) / 1e3; // 1 GHz
    std::printf("end-to-end: %llu cycles (~%.0f us at 1 GHz), "
                "%.1f uJ across %zu convolutions\n",
                static_cast<unsigned long long>(nr.totalCycles()), us,
                nr.totalEnergyPj() / 1e6, nr.layers.size());
    std::printf("\nNote: emergent densities reflect synthetic weight "
                "values (~50%% positive partial sums); the\n"
                "paper-reproduction benches instead pin each layer's "
                "input density to the measured profile.\n");
    return 0;
}
