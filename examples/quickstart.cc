/**
 * @file
 * Quickstart: define a convolutional layer, synthesize a sparse
 * workload, simulate it on SCNN and the dense DCNN baseline, check
 * the output against the reference convolution, and print the
 * headline numbers.
 *
 *   $ ./build/examples/quickstart
 */

#include <cstdio>

#include "nn/reference.hh"
#include "nn/workload.hh"
#include "sim/backends.hh"
#include "sim/registry.hh"

using namespace scnn;

int
main()
{
    // 1. Describe a layer (GoogLeNet IC_4a 3x3-ish) with its pruned
    //    weight density and measured input-activation density.
    ConvLayerParams layer;
    layer.name = "demo_conv";
    layer.inChannels = 96;
    layer.outChannels = 208;
    layer.inWidth = layer.inHeight = 14;
    layer.filterW = layer.filterH = 3;
    layer.padX = layer.padY = 1;
    layer.weightDensity = 0.36;
    layer.inputDensity = 0.43;
    layer.validate();

    // 2. Synthesize a deterministic sparse workload at those
    //    densities.
    const LayerWorkload w = makeWorkload(layer, /*seed=*/1);
    std::printf("layer: %s\n", layer.toString().c_str());
    std::printf("dense MACs: %.1f M, ideal non-zero MACs: %.1f M\n",
                static_cast<double>(layer.macs()) / 1e6,
                layer.idealMacs() / 1e6);

    // 3. Simulate on SCNN (cycle-level, functional).  Backends are
    //    constructed by name through the registry.
    const auto scnnSim = makeSimulator("scnn");
    const LayerResult scnnRes = scnnSim->simulateLayer(w, RunOptions());

    // 4. Validate against the reference convolution.
    const Tensor3 expected = referenceConv(layer, w.input, w.weights);
    std::printf("functional check vs reference conv: max |diff| = "
                "%.2e\n", maxAbsDiff(scnnRes.output, expected));

    // 5. Simulate the dense baseline and compare.
    const auto dcnnSim = makeSimulator("dcnn");
    const LayerResult dcnnRes = dcnnSim->simulateLayer(w, RunOptions());

    std::printf("\n%-22s %12s %12s\n", "", "SCNN", "DCNN");
    std::printf("%-22s %12llu %12llu\n", "cycles",
                static_cast<unsigned long long>(scnnRes.cycles),
                static_cast<unsigned long long>(dcnnRes.cycles));
    std::printf("%-22s %12.3f %12.3f\n", "multiplier util",
                scnnRes.multUtilBusy, dcnnRes.multUtilBusy);
    std::printf("%-22s %12.1f %12.1f\n", "energy (nJ)",
                scnnRes.energyPj / 1e3, dcnnRes.energyPj / 1e3);
    // The oracle bound is a pure function of the measured SCNN run --
    // no second simulation needed.
    const LayerResult oracleRes =
        deriveOracleResult(scnnRes, scnnSim->config());
    std::printf("\nSCNN speedup over DCNN: %.2fx (oracle bound "
                "%.2fx)\n",
                static_cast<double>(dcnnRes.cycles) / scnnRes.cycles,
                static_cast<double>(dcnnRes.cycles) /
                    oracleRes.cycles);
    return 0;
}
