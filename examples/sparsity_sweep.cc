/**
 * @file
 * The paper's synthetic sensitivity experiment (Section VI-A) on a
 * single layer: sweep weight/activation density and watch the sparse
 * architecture overtake the dense one.  Uses both the cycle-level
 * simulator (ground truth) and the TimeLoop analytical model so their
 * agreement is visible.
 *
 *   $ ./build/examples/sparsity_sweep
 */

#include <cstdio>

#include "nn/workload.hh"
#include "sim/registry.hh"

using namespace scnn;

int
main()
{
    ConvLayerParams base;
    base.name = "sweep_conv";
    base.inChannels = 128;
    base.outChannels = 128;
    base.inWidth = base.inHeight = 28;
    base.filterW = base.filterH = 3;
    base.padX = base.padY = 1;
    base.validate();

    const auto scnnSim = makeSimulator("scnn");
    const auto dcnnSim = makeSimulator("dcnn");
    const auto analytic = makeSimulator("timeloop");

    std::printf("%8s %14s %14s %14s %10s\n", "density", "SCNN cycles",
                "SCNN (model)", "DCNN cycles", "speedup");
    for (double d = 0.1; d <= 1.001; d += 0.1) {
        ConvLayerParams layer = base;
        layer.weightDensity = d;
        layer.inputDensity = d;
        layer.name = "sweep_conv";

        const LayerWorkload w = makeWorkload(layer, 77);
        const LayerResult s = scnnSim->simulateLayer(w, RunOptions());
        const LayerResult dn = dcnnSim->simulateLayer(w, RunOptions());
        const LayerResult model =
            analytic->simulateLayer(w, RunOptions());

        std::printf("%8.1f %14llu %14llu %14llu %9.2fx\n", d,
                    static_cast<unsigned long long>(s.cycles),
                    static_cast<unsigned long long>(model.cycles),
                    static_cast<unsigned long long>(dn.cycles),
                    static_cast<double>(dn.cycles) /
                        static_cast<double>(s.cycles));
    }
    std::printf("\nThe crossover (speedup > 1) should appear around "
                "0.8-0.9 density, as in Fig. 7a.\n");
    return 0;
}
