/** @file Unit tests for dense tensor types. */

#include <gtest/gtest.h>

#include "tensor/tensor.hh"

namespace scnn {
namespace {

TEST(Tensor3, ShapeAndFill)
{
    Tensor3 t(2, 3, 4, 1.5f);
    EXPECT_EQ(t.channels(), 2);
    EXPECT_EQ(t.width(), 3);
    EXPECT_EQ(t.height(), 4);
    EXPECT_EQ(t.size(), 24u);
    EXPECT_FLOAT_EQ(t.at(1, 2, 3), 1.5f);
}

TEST(Tensor3, IndexingIsRowMajorHeightFastest)
{
    Tensor3 t(2, 3, 4);
    EXPECT_EQ(t.index(0, 0, 0), 0u);
    EXPECT_EQ(t.index(0, 0, 1), 1u);
    EXPECT_EQ(t.index(0, 1, 0), 4u);
    EXPECT_EQ(t.index(1, 0, 0), 12u);
}

TEST(Tensor3, SetGetRoundTrip)
{
    Tensor3 t(3, 5, 7);
    t.set(2, 4, 6, -2.25f);
    EXPECT_FLOAT_EQ(t.get(2, 4, 6), -2.25f);
    t.at(0, 0, 0) = 9.0f;
    EXPECT_FLOAT_EQ(t.at(0, 0, 0), 9.0f);
}

TEST(Tensor3, OutOfBoundsAtPanics)
{
    Tensor3 t(1, 2, 2);
    EXPECT_DEATH(t.at(0, 2, 0), "out of");
    EXPECT_DEATH(t.at(-1, 0, 0), "out of");
}

TEST(Tensor3, PlanePointsToChannelStart)
{
    Tensor3 t(2, 2, 2);
    t.set(1, 0, 0, 5.0f);
    EXPECT_FLOAT_EQ(t.plane(1)[0], 5.0f);
}

TEST(Tensor3, NonZerosAndDensity)
{
    Tensor3 t(1, 2, 5);
    EXPECT_EQ(t.nonZeros(), 0u);
    t.set(0, 0, 0, 1.0f);
    t.set(0, 1, 4, 2.0f);
    EXPECT_EQ(t.nonZeros(), 2u);
    EXPECT_DOUBLE_EQ(t.density(), 0.2);
}

TEST(Tensor3, ReluClampsNegatives)
{
    Tensor3 t(1, 1, 3);
    t.set(0, 0, 0, -1.0f);
    t.set(0, 0, 1, 0.0f);
    t.set(0, 0, 2, 2.0f);
    t.relu();
    EXPECT_FLOAT_EQ(t.get(0, 0, 0), 0.0f);
    EXPECT_FLOAT_EQ(t.get(0, 0, 1), 0.0f);
    EXPECT_FLOAT_EQ(t.get(0, 0, 2), 2.0f);
}

TEST(Tensor3, ClearZeroes)
{
    Tensor3 t(1, 2, 2, 3.0f);
    t.clear();
    EXPECT_EQ(t.nonZeros(), 0u);
}

TEST(Tensor4, ShapeAndIndexing)
{
    Tensor4 w(2, 3, 4, 5);
    EXPECT_EQ(w.size(), 120u);
    EXPECT_EQ(w.index(0, 0, 0, 1), 1u);
    EXPECT_EQ(w.index(0, 0, 1, 0), 5u);
    EXPECT_EQ(w.index(0, 1, 0, 0), 20u);
    EXPECT_EQ(w.index(1, 0, 0, 0), 60u);
}

TEST(Tensor4, DensityCountsNonZeros)
{
    Tensor4 w(1, 1, 2, 2);
    w.at(0, 0, 0, 0) = 1.0f;
    EXPECT_EQ(w.nonZeros(), 1u);
    EXPECT_DOUBLE_EQ(w.density(), 0.25);
}

TEST(Tensor4, OutOfBoundsPanics)
{
    Tensor4 w(1, 1, 1, 1);
    EXPECT_DEATH(w.at(1, 0, 0, 0), "out of");
}

TEST(MaxAbsDiff, FindsWorstDeviation)
{
    Tensor3 a(1, 2, 2);
    Tensor3 b(1, 2, 2);
    a.set(0, 1, 1, 1.0f);
    b.set(0, 1, 1, 1.5f);
    b.set(0, 0, 0, -0.25f);
    EXPECT_DOUBLE_EQ(maxAbsDiff(a, b), 0.5);
    EXPECT_FALSE(approxEqual(a, b, 0.4));
    EXPECT_TRUE(approxEqual(a, b, 0.6));
}

TEST(MaxAbsDiff, ShapeMismatchIsFatal)
{
    Tensor3 a(1, 2, 2);
    Tensor3 b(1, 2, 3);
    EXPECT_EXIT(maxAbsDiff(a, b), ::testing::ExitedWithCode(1),
                "shape mismatch");
}

TEST(EmptyTensor, DensityZero)
{
    Tensor3 t;
    EXPECT_DOUBLE_EQ(t.density(), 0.0);
    EXPECT_EQ(t.size(), 0u);
}

} // anonymous namespace
} // namespace scnn
