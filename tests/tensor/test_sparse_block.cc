/** @file Unit tests for coordinate-bearing compressed blocks. */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "tensor/sparse_block.hh"

namespace scnn {
namespace {

TEST(ConvGeometry, SinglePhaseForStrideOne)
{
    ConvGeometry g;
    EXPECT_EQ(g.phases(), 1);
    EXPECT_EQ(g.actPhase(5, 9), 0);
    EXPECT_EQ(g.wtPhase(2, 2), 0);
}

TEST(ConvGeometry, PhasesMatchForStride)
{
    ConvGeometry g{2, 2, 1, 1};
    EXPECT_EQ(g.phases(), 4);
    // An activation at x with phase p pairs with taps r of equal
    // phase: (x + padX) % 2 == r % 2.
    for (int x = 0; x < 6; ++x)
        for (int r = 0; r < 4; ++r)
            if (((x + 1) % 2) == (r % 2))
                EXPECT_EQ(g.actPhase(x, 0) / 2, g.wtPhase(r, 0) / 2);
}

TEST(CompressedActTile, CollectsNonZerosWithCoords)
{
    Tensor3 acts(2, 4, 4);
    acts.set(0, 1, 2, 3.0f);
    acts.set(1, 3, 3, 4.0f);
    acts.set(1, 0, 0, 5.0f); // outside tile below

    ConvGeometry g;
    CompressedActTile tile(acts, 1, 4, 1, 4, g);
    EXPECT_EQ(tile.numChannels(), 2);
    EXPECT_EQ(tile.nonZeros(), 2u);

    const auto &c0 = tile.decodedEntries(0, 0);
    ASSERT_EQ(c0.size(), 1u);
    EXPECT_EQ(c0[0].x, 1);
    EXPECT_EQ(c0[0].y, 2);
    EXPECT_FLOAT_EQ(c0[0].value, 3.0f);

    EXPECT_EQ(tile.channelNonZeros(1), 1u);
}

TEST(CompressedActTile, StorageAccountsPlaceholders)
{
    // A 6x6 all-zero channel needs placeholders (36 zeros -> 2).
    Tensor3 acts(1, 6, 6);
    ConvGeometry g;
    CompressedActTile tile(acts, 0, 6, 0, 6, g);
    EXPECT_EQ(tile.nonZeros(), 0u);
    EXPECT_EQ(tile.storedElements(), 2u);
    EXPECT_EQ(tile.storageBits(), 2u * 20u);
    EXPECT_EQ(tile.denseElements(), 36u);
}

TEST(CompressedActTile, EmptyTile)
{
    Tensor3 acts(2, 4, 4, 1.0f);
    ConvGeometry g;
    CompressedActTile tile(acts, 2, 2, 0, 4, g);
    EXPECT_EQ(tile.nonZeros(), 0u);
    EXPECT_EQ(tile.storedElements(), 0u);
}

TEST(CompressedActTile, PhasePartitionCoversAll)
{
    Rng rng(3);
    Tensor3 acts(3, 9, 9);
    for (int c = 0; c < 3; ++c)
        for (int x = 0; x < 9; ++x)
            for (int y = 0; y < 9; ++y)
                if (rng.bernoulli(0.5))
                    acts.set(c, x, y, 1.0f);

    ConvGeometry g{2, 3, 0, 1};
    CompressedActTile tile(acts, 0, 9, 0, 9, g);
    uint64_t total = 0;
    for (int c = 0; c < 3; ++c)
        for (int p = 0; p < g.phases(); ++p) {
            for (const auto &e : tile.decodedEntries(c, p))
                EXPECT_EQ(g.actPhase(e.x, e.y), p);
            total += tile.decodedEntries(c, p).size();
        }
    EXPECT_EQ(total, acts.nonZeros());
}

TEST(CompressedWeightBlock, CollectsGroupRange)
{
    Tensor4 w(4, 2, 3, 3);
    w.at(1, 0, 0, 0) = 1.0f;
    w.at(2, 0, 1, 1) = 2.0f; // outside [0,2) group below
    w.at(0, 1, 2, 2) = 3.0f; // channel 1, not channel 0

    ConvGeometry g;
    CompressedWeightBlock block(w, 0, 2, 0, 2, 1, g);
    ASSERT_EQ(block.nonZeros(), 1u);
    const auto &e = block.decodedEntries(0);
    EXPECT_EQ(e[0].k, 1);
    EXPECT_EQ(e[0].r, 0);
    EXPECT_EQ(e[0].s, 0);
    EXPECT_EQ(block.denseElements(), 2u * 9u);
}

TEST(CompressedWeightBlock, ScanOrderIsRSKWithChannelInnermost)
{
    Tensor4 w(2, 1, 2, 2, 1.0f); // all non-zero
    ConvGeometry g;
    CompressedWeightBlock block(w, 0, 2, 0, 1, 1, g);
    const auto &e = block.decodedEntries(0);
    ASSERT_EQ(e.size(), 8u);
    // (r, s, k) lexicographic, k innermost: consecutive vector
    // entries span output channels so Cartesian-product outputs land
    // at distinct accumulator addresses.
    EXPECT_TRUE(e[0].k == 0 && e[0].r == 0 && e[0].s == 0);
    EXPECT_TRUE(e[1].k == 1 && e[1].r == 0 && e[1].s == 0);
    EXPECT_TRUE(e[2].k == 0 && e[2].r == 0 && e[2].s == 1);
    EXPECT_TRUE(e[4].k == 0 && e[4].r == 1 && e[4].s == 0);
}

TEST(CompressedWeightBlock, GroupedConvSkipsUnconnected)
{
    // K=4, C=4, groups=2: channels 0-1 connect to k 0-1 only.
    Tensor4 w(4, 2, 1, 1, 1.0f);
    ConvGeometry g;
    CompressedWeightBlock lo(w, 0, 4, 0, 4, 2, g);
    // Channel 0 connects to k 0,1 only.
    EXPECT_EQ(lo.nonZeros(), 2u);
    for (const auto &e : lo.decodedEntries(0))
        EXPECT_LT(e.k, 2);

    CompressedWeightBlock hi(w, 0, 4, 3, 4, 2, g);
    EXPECT_EQ(hi.nonZeros(), 2u);
    for (const auto &e : hi.decodedEntries(0))
        EXPECT_GE(e.k, 2);

    // A group range fully outside the conv group stores nothing.
    CompressedWeightBlock none(w, 0, 2, 3, 4, 2, g);
    EXPECT_EQ(none.nonZeros(), 0u);
    EXPECT_EQ(none.denseElements(), 0u);
}

TEST(CompressedWeightBlock, PhasePartition)
{
    Tensor4 w(1, 1, 4, 4, 1.0f);
    ConvGeometry g{2, 2, 0, 0};
    CompressedWeightBlock block(w, 0, 1, 0, 1, 1, g);
    uint64_t total = 0;
    for (int p = 0; p < 4; ++p) {
        for (const auto &e : block.decodedEntries(p))
            EXPECT_EQ(g.wtPhase(e.r, e.s), p);
        total += block.decodedEntries(p).size();
    }
    EXPECT_EQ(total, 16u);
}

TEST(StoredElements, PerChannelMatchesManualEncode)
{
    Tensor3 acts(2, 3, 3);
    acts.set(0, 0, 0, 1.0f);
    acts.set(1, 2, 2, 2.0f);
    // channel 0: value at first position -> 1 stored; channel 1:
    // value at last position (8 zeros before) -> 1 stored.
    EXPECT_EQ(storedElementsPerChannel(acts), 2u);
}

TEST(StoredElements, PerFilterCountsEachKC)
{
    Tensor4 w(2, 2, 3, 3);
    w.at(0, 0, 0, 0) = 1.0f;
    w.at(1, 1, 2, 2) = 1.0f;
    EXPECT_EQ(storedElementsPerFilter(w), 2u);
}

} // anonymous namespace
} // namespace scnn
