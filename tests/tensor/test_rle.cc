/** @file Unit and property tests for the run-length codec. */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "tensor/rle.hh"

namespace scnn {
namespace {

TEST(Rle, EncodesSimpleStream)
{
    // 0 0 3 0 5  ->  (run 2, 3), (run 1, 5)
    const std::vector<float> dense = {0, 0, 3, 0, 5};
    const RleStream s = rleEncode(dense);
    ASSERT_EQ(s.storedElements(), 2u);
    EXPECT_FLOAT_EQ(s.values[0], 3.0f);
    EXPECT_EQ(s.zeroRuns[0], 2);
    EXPECT_FLOAT_EQ(s.values[1], 5.0f);
    EXPECT_EQ(s.zeroRuns[1], 1);
    EXPECT_EQ(s.placeholders(), 0u);
}

TEST(Rle, AllZerosStoresNothing)
{
    const std::vector<float> dense(40, 0.0f);
    const RleStream s = rleEncode(dense);
    // Runs up to 15 need no storage until a value arrives; with 40
    // zeros the encoder emits placeholders every 16 positions.
    EXPECT_EQ(s.storedElements(), 2u);
    EXPECT_EQ(s.placeholders(), 2u);
    const auto dec = rleDecode(s, 40);
    for (float v : dec)
        EXPECT_EQ(v, 0.0f);
}

TEST(Rle, ShortZeroTailNeedsNoStorage)
{
    const std::vector<float> dense = {1, 0, 0, 0};
    const RleStream s = rleEncode(dense);
    EXPECT_EQ(s.storedElements(), 1u);
    EXPECT_EQ(rleDecode(s, 4).size(), 4u);
}

TEST(Rle, PlaceholderInsertedForLongRun)
{
    // 20 zeros between two values: placeholder after 15 zeros.
    std::vector<float> dense(22, 0.0f);
    dense[0] = 1.0f;
    dense[21] = 2.0f;
    const RleStream s = rleEncode(dense);
    ASSERT_EQ(s.storedElements(), 3u);
    EXPECT_FLOAT_EQ(s.values[1], 0.0f); // placeholder
    EXPECT_EQ(s.zeroRuns[1], 15);
    EXPECT_EQ(s.zeroRuns[2], 4); // 20 zeros = 15 + placeholder + 4
    EXPECT_EQ(s.placeholders(), 1u);

    const auto dec = rleDecode(s, 22);
    EXPECT_FLOAT_EQ(dec[0], 1.0f);
    EXPECT_FLOAT_EQ(dec[21], 2.0f);
}

TEST(Rle, ExactlyMaxRunNeedsNoPlaceholder)
{
    std::vector<float> dense(17, 0.0f);
    dense[0] = 1.0f;
    dense[16] = 2.0f; // 15 zeros between
    const RleStream s = rleEncode(dense);
    EXPECT_EQ(s.storedElements(), 2u);
    EXPECT_EQ(s.zeroRuns[1], 15);
}

TEST(Rle, DenseStreamStoresEverything)
{
    std::vector<float> dense(64, 1.0f);
    const RleStream s = rleEncode(dense);
    EXPECT_EQ(s.storedElements(), 64u);
    for (auto r : s.zeroRuns)
        EXPECT_EQ(r, 0);
}

TEST(Rle, BitsAccounting)
{
    std::vector<float> dense = {1, 0, 2};
    const RleStream s = rleEncode(dense);
    EXPECT_EQ(s.bits(16, 4), 2u * 20u);
    EXPECT_EQ(s.bits(16, 10), 2u * 26u);
}

TEST(Rle, CustomMaxRun)
{
    std::vector<float> dense(10, 0.0f);
    dense[9] = 1.0f; // 9 zeros then a value
    const RleStream s = rleEncode(dense, 3);
    // Runs of 3 force placeholders every 4 positions: 9 zeros ->
    // placeholder at positions 3 and 7, then value with run 1.
    EXPECT_EQ(s.storedElements(), 3u);
    const auto dec = rleDecode(s, 10);
    EXPECT_FLOAT_EQ(dec[9], 1.0f);
}

TEST(Rle, DecodeOverrunIsFatal)
{
    std::vector<float> dense = {1, 2, 3};
    const RleStream s = rleEncode(dense);
    EXPECT_EXIT(rleDecode(s, 2), ::testing::ExitedWithCode(1),
                "decodes to");
}

TEST(Rle, EmptyStream)
{
    const RleStream s = rleEncode(std::vector<float>{});
    EXPECT_EQ(s.storedElements(), 0u);
    EXPECT_TRUE(rleDecode(s, 0).empty());
}

/** Property: encode/decode round-trips exactly at any density. */
class RleRoundTrip : public ::testing::TestWithParam<double>
{
};

TEST_P(RleRoundTrip, Lossless)
{
    const double density = GetParam();
    Rng rng(static_cast<uint64_t>(density * 1000) + 17);
    for (int trial = 0; trial < 20; ++trial) {
        const size_t n = 1 + rng.uniformInt(400);
        std::vector<float> dense(n, 0.0f);
        for (auto &v : dense)
            if (rng.bernoulli(density))
                v = static_cast<float>(rng.uniform(0.1, 1.0));
        const RleStream s = rleEncode(dense);
        const auto dec = rleDecode(s, n);
        ASSERT_EQ(dec.size(), n);
        for (size_t i = 0; i < n; ++i)
            ASSERT_EQ(dec[i], dense[i]) << "i=" << i << " n=" << n;
        // Stored element count is nnz + placeholders.
        size_t nnz = 0;
        for (float v : dense)
            nnz += (v != 0.0f);
        EXPECT_EQ(s.storedElements(), nnz + s.placeholders());
    }
}

INSTANTIATE_TEST_SUITE_P(Densities, RleRoundTrip,
                         ::testing::Values(0.0, 0.01, 0.05, 0.1, 0.25,
                                           0.5, 0.75, 0.9, 1.0));

TEST(RleCounter, MatchesEncoderStoredElements)
{
    // The incremental counter is the allocation-free twin of
    // rleEncode's accounting; pin them against each other across
    // densities and run lengths, including all-zero streams and the
    // default 15-zero index limit.
    Rng rng(99);
    for (double density : {0.0, 0.01, 0.06, 0.3, 1.0}) {
        for (size_t n : {size_t(0), size_t(1), size_t(17),
                         size_t(1000)}) {
            std::vector<float> dense(n, 0.0f);
            for (auto &v : dense)
                if (rng.bernoulli(density))
                    v = static_cast<float>(rng.uniform(0.1, 1.0));

            RleCounter rc;
            for (float v : dense)
                rc.feed(v);
            EXPECT_EQ(rc.stored, rleEncode(dense).storedElements())
                << "density=" << density << " n=" << n;
            EXPECT_EQ(rleStoredElements(dense),
                      rleEncode(dense).storedElements());
        }
    }

    // Non-default maxRun.
    std::vector<float> zeros(64, 0.0f);
    RleCounter rc(7);
    for (float v : zeros)
        rc.feed(v);
    EXPECT_EQ(rc.stored, rleEncode(zeros, 7).storedElements());
}

} // anonymous namespace
} // namespace scnn
