/**
 * @file
 * Property tests for the analytical RLE storage expectation against
 * the exact codec on Bernoulli streams: the expectation drives the
 * DRAM-traffic and buffer-occupancy models, so its error bounds
 * matter.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "tensor/rle.hh"

namespace scnn {
namespace {

TEST(RleExpectation, Extremes)
{
    EXPECT_DOUBLE_EQ(expectedRleStored(0.0, 0.5), 0.0);
    EXPECT_DOUBLE_EQ(expectedRleStored(1000.0, 1.0), 1000.0);
    // All-zero stream: one placeholder per 16 positions.
    EXPECT_NEAR(expectedRleStored(1600.0, 0.0), 100.0, 1e-9);
}

TEST(RleExpectation, MonotonicInDensityAboveFloor)
{
    // Above the placeholder floor the stored count grows with
    // density.
    double prev = 0.0;
    for (double d : {0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0}) {
        const double v = expectedRleStored(10000.0, d);
        EXPECT_GT(v, prev) << d;
        prev = v;
    }
}

TEST(RleExpectation, NeverExceedsLength)
{
    for (double d : {0.0, 0.3, 0.9, 1.0})
        EXPECT_LE(expectedRleStored(500.0, d), 500.0);
}

class RleExpectationVsCodec : public ::testing::TestWithParam<double>
{
};

TEST_P(RleExpectationVsCodec, WithinTwoPercent)
{
    const double d = GetParam();
    const size_t n = 1 << 16;
    Rng rng(static_cast<uint64_t>(d * 1e4) + 3);

    std::vector<float> dense(n, 0.0f);
    for (auto &v : dense)
        if (rng.bernoulli(d))
            v = 1.0f;

    const double actual =
        static_cast<double>(rleEncode(dense).storedElements());
    const double expected =
        expectedRleStored(static_cast<double>(n), d);
    EXPECT_NEAR(actual, expected, std::max(64.0, 0.02 * actual))
        << "density " << d;
}

INSTANTIATE_TEST_SUITE_P(Densities, RleExpectationVsCodec,
                         ::testing::Values(0.01, 0.02, 0.05, 0.1,
                                           0.25, 0.5, 0.75, 0.95));

TEST(RleExpectation, PlaceholderShareSmallAtModerateDensity)
{
    // At the networks' typical 0.3-0.6 densities, placeholders are a
    // negligible fraction -- the paper's "without incurring any
    // noticeable degradation in compression efficiency".
    for (double d : {0.3, 0.4, 0.5, 0.6}) {
        const double stored = expectedRleStored(1e6, d);
        const double placeholders = stored - 1e6 * d;
        EXPECT_LT(placeholders / stored, 0.01) << d;
    }
}

} // anonymous namespace
} // namespace scnn
