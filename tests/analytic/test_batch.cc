/** @file Tests of the batch-size extension in the analytical model. */

#include <gtest/gtest.h>

#include "analytic/timeloop.hh"

namespace scnn {
namespace {

ConvLayerParams
layer()
{
    return makeConv("batch", 64, 64, 28, 3, 1, 0.4, 0.4);
}

TEST(Batch, NOneIsIdentity)
{
    TimeLoopModel model;
    AnalyticOptions one;
    one.batchN = 1;
    const LayerResult a =
        model.estimateLayer(scnnConfig(), layer(), one);
    const LayerResult b = model.estimateLayer(scnnConfig(), layer());
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_DOUBLE_EQ(a.energyPj, b.energyPj);
}

TEST(Batch, ComputeScalesLinearly)
{
    TimeLoopModel model;
    AnalyticOptions n4;
    n4.batchN = 4;
    const LayerResult a = model.estimateLayer(scnnConfig(), layer());
    const LayerResult b =
        model.estimateLayer(scnnConfig(), layer(), n4);
    EXPECT_EQ(b.products, 4 * a.products);
    EXPECT_EQ(b.denseMacs, 4 * a.denseMacs);
    EXPECT_EQ(b.computeCycles, 4 * a.computeCycles);
}

TEST(Batch, WeightDramAmortized)
{
    TimeLoopModel model;
    AnalyticOptions n8;
    n8.batchN = 8;
    const LayerResult a = model.estimateLayer(scnnConfig(), layer());
    const LayerResult b =
        model.estimateLayer(scnnConfig(), layer(), n8);
    // Weight broadcast bits unchanged by batching.
    EXPECT_EQ(b.dramWeightBits, a.dramWeightBits);
    // Per-inference energy strictly improves.
    EXPECT_LT(b.energyPj / 8.0, a.energyPj);
}

TEST(Batch, PerInferenceEnergyMonotone)
{
    TimeLoopModel model;
    double prev = 1e300;
    for (int n : {1, 2, 4, 8, 16, 32}) {
        AnalyticOptions opts;
        opts.batchN = n;
        const LayerResult r =
            model.estimateLayer(scnnConfig(), layer(), opts);
        const double perInf = r.energyPj / n;
        EXPECT_LT(perInf, prev + 1e-6) << n;
        prev = perInf;
    }
}

TEST(Batch, WorksForDenseArchToo)
{
    TimeLoopModel model;
    AnalyticOptions n4;
    n4.batchN = 4;
    const LayerResult a = model.estimateLayer(dcnnConfig(), layer());
    const LayerResult b =
        model.estimateLayer(dcnnConfig(), layer(), n4);
    EXPECT_EQ(b.denseMacs, 4 * a.denseMacs);
    EXPECT_LT(b.energyPj / 4.0, a.energyPj);
}

TEST(Batch, RejectsNonPositive)
{
    TimeLoopModel model;
    AnalyticOptions bad;
    bad.batchN = 0;
    EXPECT_DEATH(model.estimateLayer(scnnConfig(), layer(), bad),
                 "batch");
}

} // anonymous namespace
} // namespace scnn
