/** @file TimeLoop analytical-model tests, incl. cycle-sim validation. */

#include <gtest/gtest.h>

#include <cmath>

#include "analytic/timeloop.hh"
#include "dcnn/simulator.hh"
#include "nn/model_zoo.hh"
#include "nn/workload.hh"
#include "scnn/oracle.hh"
#include "scnn/simulator.hh"

namespace scnn {
namespace {

TEST(ExpectedCeil, ZeroLambdaIsZero)
{
    EXPECT_DOUBLE_EQ(expectedCeil(0.0, 4), 0.0);
}

TEST(ExpectedCeil, WidthOneIsIdentity)
{
    EXPECT_DOUBLE_EQ(expectedCeil(3.7, 1), 3.7);
}

TEST(ExpectedCeil, SmallLambdaApproachesProbabilityOfAny)
{
    // For lambda << 1 and any m, E[ceil(n/m)] ~ P(n >= 1) = 1-e^-l.
    const double lam = 0.1;
    EXPECT_NEAR(expectedCeil(lam, 4), 1.0 - std::exp(-lam), 0.01);
}

TEST(ExpectedCeil, LargeLambdaHasHalfVectorTail)
{
    const double v = expectedCeil(1000.0, 4);
    EXPECT_NEAR(v, 1000.0 / 4.0 + 3.0 / 8.0, 0.5);
}

TEST(ExpectedCeil, MonotonicInLambda)
{
    double prev = 0.0;
    for (double lam : {0.1, 0.5, 1.0, 2.0, 5.0, 20.0, 100.0, 500.0}) {
        const double v = expectedCeil(lam, 4);
        EXPECT_GT(v, prev);
        prev = v;
    }
}

TEST(ExpectedCeil, ExceedsNaiveDivision)
{
    // Fragmentation can only add fetches: E[ceil(n/m)] >= lambda/m.
    for (double lam : {0.5, 3.0, 17.0, 64.0})
        EXPECT_GE(expectedCeil(lam, 4), lam / 4.0);
}

TEST(TimeLoop, DcnnMatchesCycleSimulatorExactly)
{
    // Dense timing is data-independent, so the analytical and
    // cycle-level dense models must agree exactly on compute cycles.
    const ConvLayerParams p =
        makeConv("tl_dense", 32, 64, 28, 3, 1, 0.5, 0.5);
    TimeLoopModel model;
    const LayerResult analytic =
        model.estimateLayer(dcnnConfig(), p);
    DcnnSimulator sim(dcnnConfig());
    const LayerResult simulated = sim.runLayer(makeWorkload(p, 5));
    EXPECT_EQ(analytic.computeCycles, simulated.computeCycles);
}

class TimeLoopVsSim : public ::testing::TestWithParam<double>
{
};

TEST_P(TimeLoopVsSim, ScnnCyclesWithinTolerance)
{
    const double d = GetParam();
    ConvLayerParams p = makeConv("tl_scnn", 64, 64, 28, 3, 1, d, d);
    // TimeLoop models i.i.d. sparsity; validate on its own terms.
    p.actSpatialSigma = 0.0;
    p.actChannelSigma = 0.0;
    TimeLoopModel model;
    const LayerResult analytic =
        model.estimateLayer(scnnConfig(), p);
    ScnnSimulator sim(scnnConfig());
    const LayerResult simulated = sim.runLayer(makeWorkload(p, 5));
    const double rel =
        static_cast<double>(analytic.cycles) /
        static_cast<double>(simulated.cycles);
    EXPECT_GT(rel, 0.8) << "density " << d;
    EXPECT_LT(rel, 1.25) << "density " << d;
}

INSTANTIATE_TEST_SUITE_P(Densities, TimeLoopVsSim,
                         ::testing::Values(0.2, 0.35, 0.5, 0.7, 1.0));

TEST(TimeLoop, ProductsMatchExpectation)
{
    const ConvLayerParams p =
        makeConv("tl_prod", 32, 32, 16, 3, 1, 0.4, 0.5);
    TimeLoopModel model;
    const LayerResult r = model.estimateLayer(scnnConfig(), p);
    // Expected products = dense MACs-equivalent pair count: total
    // non-zero (act, weight) same-channel pairs.
    const double expected = 32.0 * (16.0 * 16.0 * 0.5) *
                            (32.0 * 9.0 * 0.4);
    EXPECT_NEAR(static_cast<double>(r.products), expected,
                expected * 0.01);
}

TEST(TimeLoop, CyclesMonotonicInDensity)
{
    TimeLoopModel model;
    uint64_t prev = 0;
    for (double d : {0.1, 0.3, 0.5, 0.7, 0.9}) {
        const ConvLayerParams p =
            makeConv("tl_mono", 64, 64, 28, 3, 1, d, d);
        const LayerResult r = model.estimateLayer(scnnConfig(), p);
        EXPECT_GT(r.cycles, prev) << d;
        prev = r.cycles;
    }
}

TEST(TimeLoop, ScnnBeatsDcnnAtLowDensityNotAtHigh)
{
    TimeLoopModel model;
    const ConvLayerParams sparse =
        makeConv("tl_lo", 128, 128, 28, 3, 1, 0.25, 0.25);
    const ConvLayerParams dense =
        makeConv("tl_hi", 128, 128, 28, 3, 1, 1.0, 1.0);

    const uint64_t scnnLo =
        model.estimateLayer(scnnConfig(), sparse).cycles;
    const uint64_t dcnnLo =
        model.estimateLayer(dcnnConfig(), sparse).cycles;
    EXPECT_LT(scnnLo, dcnnLo);

    const uint64_t scnnHi =
        model.estimateLayer(scnnConfig(), dense).cycles;
    const uint64_t dcnnHi =
        model.estimateLayer(dcnnConfig(), dense).cycles;
    EXPECT_GT(scnnHi, dcnnHi); // SCNN pays overhead at full density
}

TEST(TimeLoop, EnergyCrossoversInPaperBands)
{
    // Fig. 7b: SCNN beats DCNN below ~0.83 density and DCNN-opt
    // below ~0.60.  Allow generous bands around the paper values.
    TimeLoopModel model;
    const Network net = googLeNet();

    auto energyAt = [&](const AcceleratorConfig &cfg, double dRaw) {
        const double d = std::min(dRaw, 1.0);
        const Network swept = withUniformDensity(net, d, d);
        return model.estimateNetwork(cfg, swept).totalEnergyPj();
    };

    double crossDcnn = 0.0;
    double crossOpt = 0.0;
    for (double d = 0.1; d <= 1.001; d += 0.05) {
        const double scnn = energyAt(scnnConfig(), d);
        if (scnn <= energyAt(dcnnConfig(), d))
            crossDcnn = d;
        if (scnn <= energyAt(dcnnOptConfig(), d))
            crossOpt = d;
    }
    EXPECT_GT(crossDcnn, 0.65);
    EXPECT_LT(crossDcnn, 1.0);
    EXPECT_GT(crossOpt, 0.40);
    EXPECT_LT(crossOpt, 0.85);
    EXPECT_GT(crossDcnn, crossOpt);
}

TEST(TimeLoop, NetworkEstimateCoversEvalScope)
{
    TimeLoopModel model;
    const NetworkResult nr =
        model.estimateNetwork(scnnConfig(), googLeNet());
    EXPECT_EQ(nr.layers.size(), googLeNet().numEvalLayers());
    EXPECT_GT(nr.totalCycles(), 0u);
}

TEST(TimeLoop, OracleIsLowerBound)
{
    TimeLoopModel model;
    const ConvLayerParams p =
        makeConv("tl_or", 64, 64, 28, 3, 1, 0.4, 0.4);
    const LayerResult r = model.estimateLayer(scnnConfig(), p);
    EXPECT_GE(static_cast<double>(r.cycles),
              oracleCyclesExpected(p, scnnConfig()));
}

} // anonymous namespace
} // namespace scnn
