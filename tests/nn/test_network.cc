/** @file Unit tests for the network container. */

#include <gtest/gtest.h>

#include "nn/network.hh"

namespace scnn {
namespace {

Network
twoLayerNet()
{
    Network net("test");
    net.addLayer(makeConv("a", 4, 8, 10, 3, 1, 0.5, 1.0));
    ConvLayerParams b = makeConv("b", 8, 4, 10, 3, 1, 0.25, 0.5);
    b.inEval = false;
    net.addLayer(b);
    return net;
}

TEST(Network, AddAndAccessLayers)
{
    const Network net = twoLayerNet();
    EXPECT_EQ(net.numLayers(), 2u);
    EXPECT_EQ(net.layer(0).name, "a");
    EXPECT_EQ(net.layer(1).name, "b");
}

TEST(Network, EvalScopeFiltering)
{
    const Network net = twoLayerNet();
    EXPECT_EQ(net.numEvalLayers(), 1u);
    const auto eval = net.evalLayers();
    ASSERT_EQ(eval.size(), 1u);
    EXPECT_EQ(eval[0].name, "a");
}

TEST(Network, TotalMacsRespectsScope)
{
    const Network net = twoLayerNet();
    const uint64_t a = net.layer(0).macs();
    const uint64_t b = net.layer(1).macs();
    EXPECT_EQ(net.totalMacs(false), a + b);
    EXPECT_EQ(net.totalMacs(true), a);
}

TEST(Network, TotalIdealMacs)
{
    const Network net = twoLayerNet();
    EXPECT_NEAR(net.totalIdealMacs(true), net.layer(0).idealMacs(),
                1e-9);
}

TEST(Network, MaxFootprints)
{
    const Network net = twoLayerNet();
    // Layer a weights: 8*4*9 = 288 values; layer b: 4*8*9 = 288.
    EXPECT_EQ(net.maxLayerWeightBytes(), 288u * 2u);
    // Activations: max(in, out) over layers = 8*100 = 800 values.
    EXPECT_EQ(net.maxLayerActivationBytes(), 800u * 2u);
}

TEST(Network, AddLayerValidates)
{
    Network net("bad");
    ConvLayerParams p = makeConv("x", 4, 8, 10, 3, 1, 0.5, 1.0);
    p.groups = 3;
    EXPECT_EXIT(net.addLayer(p), ::testing::ExitedWithCode(1),
                "groups");
}

} // anonymous namespace
} // namespace scnn
