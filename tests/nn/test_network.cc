/** @file Unit tests for the network container. */

#include <gtest/gtest.h>

#include "nn/network.hh"

namespace scnn {
namespace {

Network
twoLayerNet()
{
    Network net("test");
    net.addLayer(makeConv("a", 4, 8, 10, 3, 1, 0.5, 1.0));
    ConvLayerParams b = makeConv("b", 8, 4, 10, 3, 1, 0.25, 0.5);
    b.inEval = false;
    net.addLayer(b);
    return net;
}

TEST(Network, AddAndAccessLayers)
{
    const Network net = twoLayerNet();
    EXPECT_EQ(net.numLayers(), 2u);
    EXPECT_EQ(net.layer(0).name, "a");
    EXPECT_EQ(net.layer(1).name, "b");
}

TEST(Network, EvalScopeFiltering)
{
    const Network net = twoLayerNet();
    EXPECT_EQ(net.numEvalLayers(), 1u);
    const auto eval = net.evalLayers();
    ASSERT_EQ(eval.size(), 1u);
    EXPECT_EQ(eval[0].name, "a");
}

TEST(Network, TotalMacsRespectsScope)
{
    const Network net = twoLayerNet();
    const uint64_t a = net.layer(0).macs();
    const uint64_t b = net.layer(1).macs();
    EXPECT_EQ(net.totalMacs(false), a + b);
    EXPECT_EQ(net.totalMacs(true), a);
}

TEST(Network, TotalIdealMacs)
{
    const Network net = twoLayerNet();
    EXPECT_NEAR(net.totalIdealMacs(true), net.layer(0).idealMacs(),
                1e-9);
}

TEST(Network, MaxFootprints)
{
    const Network net = twoLayerNet();
    // Layer a weights: 8*4*9 = 288 values; layer b: 4*8*9 = 288.
    EXPECT_EQ(net.maxLayerWeightBytes(), 288u * 2u);
    // Activations: max(in, out) over layers = 8*100 = 800 values.
    EXPECT_EQ(net.maxLayerActivationBytes(), 800u * 2u);
}

TEST(Network, AddLayerValidates)
{
    Network net("bad");
    ConvLayerParams p = makeConv("x", 4, 8, 10, 3, 1, 0.5, 1.0);
    p.groups = 3;
    EXPECT_EXIT(net.addLayer(p), ::testing::ExitedWithCode(1),
                "groups");
}

// Regression: map::emplace in the retired per-name index silently
// kept the first of two same-named layers; duplicates are now a
// construction-time error.
TEST(Network, DuplicateLayerNameIsFatal)
{
    Network net("dup");
    net.addLayer(makeConv("same", 4, 4, 8, 3, 1, 0.5, 0.5));
    EXPECT_EXIT(net.addLayer(makeConv("same", 4, 4, 8, 3, 1, 0.5, 0.5)),
                ::testing::ExitedWithCode(1), "duplicate layer name");
}

TEST(Network, EdgeMustPointBackward)
{
    Network net("fwd");
    net.addLayer(makeConv("a", 4, 4, 8, 3, 1, 0.5, 0.5));
    EXPECT_EXIT(net.addLayer(makeConv("b", 4, 4, 8, 3, 1, 0.5, 0.5),
                             {LayerInput(5)}),
                ::testing::ExitedWithCode(1), "out of range");
}

TEST(Network, JoinKindMustMatchEdgeCount)
{
    Network net("joins");
    net.addLayer(makeConv("a", 4, 4, 8, 3, 1, 0.5, 0.5));
    EXPECT_EXIT(net.addLayer(makeConv("b", 4, 4, 8, 3, 1, 0.5, 0.5),
                             {LayerInput(0)}, JoinKind::Add),
                ::testing::ExitedWithCode(1), "at least two");
}

// Regression for the shape-coincidence bug: isSequential() used to be
// inferred from consecutive shape compatibility alone, so a branching
// DAG whose layers all happen to agree shape-wise was misclassified
// as a chain.  Topology now comes from the explicit edges.
TEST(Network, ShapeCoincidentDagIsNotSequential)
{
    Network net("coincident");
    net.addLayer(makeConv("a", 4, 4, 8, 3, 1, 0.5, 0.5));
    net.addLayer(makeConv("b", 4, 4, 8, 3, 1, 0.5, 0.5),
                 {LayerInput(0)});
    // Branch: c also consumes a, but its shape would chain after b.
    net.addLayer(makeConv("c", 4, 4, 8, 3, 1, 0.5, 0.5),
                 {LayerInput(0)});
    EXPECT_FALSE(net.isSequential());
    EXPECT_TRUE(net.topologyErrors().empty());
}

TEST(Network, SequentialNeedsCompatibleShapesToo)
{
    Network net("chain");
    net.addLayer(makeConv("a", 4, 8, 8, 3, 1, 0.5, 0.5));
    net.addLayer(makeConv("b", 8, 4, 8, 3, 1, 0.5, 0.5));
    EXPECT_TRUE(net.isSequential());

    Network bad("badchain");
    bad.addLayer(makeConv("a", 4, 8, 8, 3, 1, 0.5, 0.5));
    bad.addLayer(makeConv("b", 16, 4, 8, 3, 1, 0.5, 0.5)); // mismatch
    EXPECT_FALSE(bad.isSequential());
    EXPECT_FALSE(bad.topologyErrors().empty());
}

TEST(Network, EdgeAndJoinAccessors)
{
    Network net("dag");
    net.addLayer(makeConv("a", 4, 4, 8, 3, 1, 0.5, 0.5));
    net.addLayer(makeConv("b", 4, 4, 8, 3, 1, 0.5, 0.5),
                 {LayerInput(0)});
    net.addLayer(makeConv("c", 8, 4, 8, 3, 1, 0.5, 0.5),
                 {LayerInput(0), LayerInput(1)}, JoinKind::Concat);
    EXPECT_TRUE(net.inputs(0).empty());
    ASSERT_EQ(net.inputs(2).size(), 2u);
    EXPECT_EQ(net.inputs(2)[0].from, 0);
    EXPECT_EQ(net.inputs(2)[1].from, 1);
    EXPECT_EQ(net.join(2), JoinKind::Concat);
    ASSERT_EQ(net.sourceLayers().size(), 1u);
    EXPECT_EQ(net.sourceLayers()[0], 0u);
    EXPECT_TRUE(net.topologyErrors().empty());
    EXPECT_FALSE(net.isSequential());
}

TEST(Network, TopologyErrorsCatchJoinShapeDisagreements)
{
    Network net("badadd");
    net.addLayer(makeConv("a", 4, 4, 8, 3, 1, 0.5, 0.5));
    net.addLayer(makeConv("b", 4, 8, 8, 3, 1, 0.5, 0.5),
                 {LayerInput(0)});
    // Add-join of 4-channel and 8-channel outputs cannot work.
    net.addLayer(makeConv("c", 4, 4, 8, 3, 1, 0.5, 0.5),
                 {LayerInput(0), LayerInput(1)}, JoinKind::Add);
    const auto errors = net.topologyErrors();
    ASSERT_FALSE(errors.empty());
    EXPECT_NE(errors[0].find("add-join"), std::string::npos);
}

TEST(Network, PoolOutDimMatchesConvention)
{
    // GoogLeNet stem: 112 -> 3x3/2 pad 1 -> 56.
    EXPECT_EQ(poolOutDim(112, 3, 2, 1), 56);
    // pool_proj: 28 -> 3x3/1 pad 1 -> 28 (shape-preserving).
    EXPECT_EQ(poolOutDim(28, 3, 1, 1), 28);
    EXPECT_EQ(poolOutDim(8, 2, 2, 0), 4);
}

} // anonymous namespace
} // namespace scnn
