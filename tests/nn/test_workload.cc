/** @file Unit tests for synthetic sparse workload generation. */

#include <gtest/gtest.h>

#include "nn/workload.hh"

namespace scnn {
namespace {

TEST(Workload, ActivationDensityNearTarget)
{
    const ConvLayerParams p =
        makeConv("w", 32, 8, 32, 3, 1, 0.5, 0.37);
    Rng rng(1);
    const Tensor3 acts = makeActivations(p, rng);
    EXPECT_NEAR(acts.density(), 0.37, 0.01);
}

TEST(Workload, WeightDensityNearTarget)
{
    const ConvLayerParams p =
        makeConv("w", 64, 64, 8, 3, 1, 0.42, 0.5);
    Rng rng(2);
    const Tensor4 w = makeWeights(p, rng);
    EXPECT_NEAR(w.density(), 0.42, 0.01);
}

TEST(Workload, ActivationsAreNonNegative)
{
    const ConvLayerParams p = makeConv("w", 8, 8, 16, 3, 1, 0.5, 0.5);
    Rng rng(3);
    const Tensor3 acts = makeActivations(p, rng);
    for (size_t i = 0; i < acts.size(); ++i)
        EXPECT_GE(acts.data()[i], 0.0f);
}

TEST(Workload, WeightsAreSigned)
{
    const ConvLayerParams p =
        makeConv("w", 16, 16, 8, 3, 1, 0.8, 0.5);
    Rng rng(4);
    const Tensor4 w = makeWeights(p, rng);
    int pos = 0;
    int neg = 0;
    for (size_t i = 0; i < w.size(); ++i) {
        pos += w.data()[i] > 0.0f;
        neg += w.data()[i] < 0.0f;
    }
    EXPECT_GT(pos, 100);
    EXPECT_GT(neg, 100);
}

TEST(Workload, GroupedWeightShape)
{
    ConvLayerParams p = makeConv("w", 8, 16, 8, 3, 1, 0.5, 0.5);
    p.groups = 2;
    p.validate();
    const LayerWorkload w = makeWorkload(p, 5);
    EXPECT_EQ(w.weights.k(), 16);
    EXPECT_EQ(w.weights.c(), 4); // C / groups
}

TEST(Workload, DeterministicInSeed)
{
    const ConvLayerParams p = makeConv("w", 4, 4, 8, 3, 1, 0.5, 0.5);
    const LayerWorkload a = makeWorkload(p, 9);
    const LayerWorkload b = makeWorkload(p, 9);
    EXPECT_DOUBLE_EQ(maxAbsDiff(a.input, b.input), 0.0);
    for (size_t i = 0; i < a.weights.size(); ++i)
        EXPECT_EQ(a.weights.data()[i], b.weights.data()[i]);
}

TEST(Workload, DifferentSeedsDiffer)
{
    const ConvLayerParams p = makeConv("w", 4, 4, 8, 3, 1, 0.5, 0.5);
    const LayerWorkload a = makeWorkload(p, 1);
    const LayerWorkload b = makeWorkload(p, 2);
    EXPECT_GT(maxAbsDiff(a.input, b.input), 0.0);
}

TEST(Workload, LayerNameSeparatesStreams)
{
    ConvLayerParams p1 = makeConv("conv_a", 4, 4, 8, 3, 1, 0.5, 0.5);
    ConvLayerParams p2 = p1;
    p2.name = "conv_b";
    const LayerWorkload a = makeWorkload(p1, 3);
    const LayerWorkload b = makeWorkload(p2, 3);
    EXPECT_GT(maxAbsDiff(a.input, b.input), 0.0);
}

TEST(Workload, ExtremeDensities)
{
    ConvLayerParams p = makeConv("w", 8, 8, 16, 3, 1, 0.0, 1.0);
    const LayerWorkload w = makeWorkload(p, 11);
    EXPECT_EQ(w.weights.nonZeros(), 0u);
    EXPECT_EQ(w.input.nonZeros(), w.input.size());
}

} // anonymous namespace
} // namespace scnn
