/** @file Unit tests for layer descriptors and shape math. */

#include <gtest/gtest.h>

#include "nn/layer.hh"

namespace scnn {
namespace {

TEST(Layer, OutputShapeSamePadding)
{
    const ConvLayerParams p =
        makeConv("l", 8, 16, 14, 3, 1, 0.5, 0.5);
    EXPECT_EQ(p.outWidth(), 14);
    EXPECT_EQ(p.outHeight(), 14);
}

TEST(Layer, OutputShapeValidConv)
{
    const ConvLayerParams p = makeConv("l", 8, 16, 14, 3, 0, 0.5, 0.5);
    EXPECT_EQ(p.outWidth(), 12);
}

TEST(Layer, OutputShapeStrided)
{
    ConvLayerParams p = makeConv("l", 3, 96, 227, 11, 0, 1.0, 1.0);
    p.strideX = p.strideY = 4;
    EXPECT_EQ(p.outWidth(), 55); // AlexNet conv1
    EXPECT_EQ(p.outHeight(), 55);
}

TEST(Layer, CountsMatchClosedForms)
{
    ConvLayerParams p = makeConv("l", 6, 10, 8, 3, 1, 0.5, 0.5);
    EXPECT_EQ(p.weightCount(), 10u * 6u * 9u);
    EXPECT_EQ(p.inputCount(), 6u * 64u);
    EXPECT_EQ(p.outputCount(), 10u * 64u);
    EXPECT_EQ(p.macs(), 10u * 64u * 6u * 9u);
}

TEST(Layer, GroupedCountsDivideChannels)
{
    ConvLayerParams p = makeConv("l", 8, 16, 8, 3, 1, 0.5, 0.5);
    p.groups = 2;
    p.validate();
    EXPECT_EQ(p.weightCount(), 16u * 4u * 9u);
    EXPECT_EQ(p.macs(), 16u * 64u * 4u * 9u);
}

TEST(Layer, IdealMacsScalesWithDensities)
{
    ConvLayerParams p = makeConv("l", 4, 4, 8, 3, 1, 0.5, 0.4);
    EXPECT_NEAR(p.idealMacs(),
                static_cast<double>(p.macs()) * 0.2, 1e-9);
}

TEST(Layer, ValidateRejectsBadGroups)
{
    ConvLayerParams p = makeConv("l", 8, 16, 8, 3, 1, 0.5, 0.5);
    p.groups = 3; // does not divide 8 or 16
    EXPECT_EXIT(p.validate(), ::testing::ExitedWithCode(1), "groups");
}

TEST(Layer, ValidateRejectsNonPositiveDims)
{
    ConvLayerParams p;
    p.name = "bad";
    p.inChannels = 0;
    EXPECT_EXIT(p.validate(), ::testing::ExitedWithCode(1),
                "non-positive");
}

TEST(Layer, ValidateRejectsEmptyOutput)
{
    ConvLayerParams p = makeConv("l", 1, 1, 4, 3, 0, 1.0, 1.0);
    p.filterW = p.filterH = 9; // bigger than padded input
    EXPECT_EXIT(p.validate(), ::testing::ExitedWithCode(1),
                "empty output");
}

TEST(Layer, ValidateRejectsBadDensity)
{
    ConvLayerParams p = makeConv("l", 1, 1, 4, 3, 1, 1.0, 1.0);
    p.weightDensity = 1.5;
    EXPECT_EXIT(p.validate(), ::testing::ExitedWithCode(1), "density");
}

TEST(Layer, ToStringMentionsNameAndDims)
{
    const ConvLayerParams p = makeConv("myconv", 8, 16, 14, 3, 1,
                                       0.5, 0.5);
    const std::string s = p.toString();
    EXPECT_NE(s.find("myconv"), std::string::npos);
    EXPECT_NE(s.find("C=8"), std::string::npos);
    EXPECT_NE(s.find("K=16"), std::string::npos);
}

TEST(Layer, FullyConnectedAsOneByOne)
{
    const ConvLayerParams p =
        makeFullyConnected("fc6", 4096, 1000, 0.1, 0.3);
    EXPECT_EQ(p.inWidth, 1);
    EXPECT_EQ(p.filterW, 1);
    EXPECT_EQ(p.macs(), 4096u * 1000u);
    EXPECT_EQ(p.outputCount(), 1000u);
}

} // anonymous namespace
} // namespace scnn
