/** @file Tests of the 16-bit/24-bit fixed-point datapath model. */

#include <gtest/gtest.h>

#include "nn/quantize.hh"
#include "nn/workload.hh"

namespace scnn {
namespace {

TEST(Quantize, ScaleMapsPeakToMaxCode)
{
    const float data[] = {0.5f, -2.0f, 1.0f};
    const QuantScale s = chooseScale(data, 3, 16);
    EXPECT_EQ(quantize(-2.0f, s, 16), -32767);
    EXPECT_EQ(quantize(2.0f, s, 16), 32767);
    EXPECT_NEAR(dequantize(quantize(0.5f, s, 16), s), 0.5f, 1e-4);
}

TEST(Quantize, ZeroTensorHasUsableScale)
{
    const float zeros[4] = {0, 0, 0, 0};
    const QuantScale s = chooseScale(zeros, 4, 16);
    EXPECT_GT(s.scale, 0.0);
    EXPECT_EQ(quantize(0.0f, s, 16), 0);
}

TEST(Quantize, RoundTripErrorBoundedByHalfLsb)
{
    const float data[] = {0.31f, -0.77f, 0.999f, -0.004f};
    const QuantScale s = chooseScale(data, 4, 16);
    for (float v : data) {
        const float back = dequantize(quantize(v, s, 16), s);
        EXPECT_NEAR(back, v, s.scale * 0.5 + 1e-7);
    }
}

TEST(QuantizedConv, SixteenBitPathIsAccurate)
{
    // Table II's 16-bit multipliers / 24-bit accumulators must yield
    // outputs within a fraction of a percent of the float reference
    // on typical layers -- the premise of the paper's datapath.
    const ConvLayerParams p =
        makeConv("q16", 16, 16, 14, 3, 1, 0.4, 0.4);
    const LayerWorkload w = makeWorkload(p, 9);
    const QuantStats st =
        quantizedConv(p, w.input, w.weights, QuantConfig{});
    EXPECT_EQ(st.accumSaturations, 0u);
    EXPECT_LT(st.rmsError, 0.005 * st.referenceRms);
}

TEST(QuantizedConv, EightBitPathDegrades)
{
    const ConvLayerParams p =
        makeConv("q8", 16, 16, 14, 3, 1, 0.4, 0.4);
    const LayerWorkload w = makeWorkload(p, 9);
    QuantConfig lo;
    lo.dataBits = 8;
    lo.accumBits = 16;
    lo.productShift = 7;
    const QuantStats a =
        quantizedConv(p, w.input, w.weights, QuantConfig{});
    const QuantStats b = quantizedConv(p, w.input, w.weights, lo);
    EXPECT_GT(b.rmsError, 4.0 * a.rmsError);
}

TEST(QuantizedConv, NarrowAccumulatorSaturates)
{
    // A 12-bit accumulator with no product shift headroom must clamp
    // on a reduction of hundreds of products.
    const ConvLayerParams p =
        makeConv("qsat", 64, 4, 8, 3, 1, 1.0, 1.0);
    const LayerWorkload w = makeWorkload(p, 9);
    QuantConfig narrow;
    narrow.accumBits = 16;
    narrow.productShift = 15;
    const QuantStats st =
        quantizedConv(p, w.input, w.weights, narrow);
    EXPECT_GT(st.accumSaturations, 0u);
}

TEST(QuantizedConv, OutputTensorProduced)
{
    const ConvLayerParams p =
        makeConv("qout", 4, 4, 8, 3, 1, 0.5, 0.5);
    const LayerWorkload w = makeWorkload(p, 2);
    Tensor3 out;
    quantizedConv(p, w.input, w.weights, QuantConfig{}, &out);
    EXPECT_EQ(out.channels(), 4);
    EXPECT_EQ(out.width(), p.outWidth());
    // ReLU applied per layer setting.
    for (size_t i = 0; i < out.size(); ++i)
        EXPECT_GE(out.data()[i], 0.0f);
}

} // anonymous namespace
} // namespace scnn
