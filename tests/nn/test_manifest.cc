/**
 * @file
 * Unit tests for the SCNNWMF1 weight-manifest container: round-trip
 * serialization, defensive rejection of truncated/corrupt bytes, and
 * the applyManifest density/shape rebinding semantics.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "nn/manifest.hh"
#include "nn/model_zoo.hh"
#include "nn/workload.hh"

namespace scnn {
namespace {

WeightManifest
tinyManifest()
{
    return manifestFromNetwork(tinyTestNetwork(), 11);
}

TEST(Manifest, RoundTripsThroughBytes)
{
    const WeightManifest m = tinyManifest();
    const std::string bytes = m.serialize();

    WeightManifest back;
    std::string error;
    ASSERT_TRUE(WeightManifest::parse(bytes, &back, &error)) << error;
    ASSERT_EQ(back.numEntries(), m.numEntries());
    EXPECT_EQ(back.fingerprint(), m.fingerprint());
    for (size_t i = 0; i < m.numEntries(); ++i) {
        const ManifestEntry &a = m.entries()[i];
        const ManifestEntry &b = back.entries()[i];
        EXPECT_EQ(a.name, b.name);
        EXPECT_EQ(a.inputDensity, b.inputDensity);
        ASSERT_EQ(a.weights.size(), b.weights.size());
        for (size_t j = 0; j < a.weights.size(); ++j)
            EXPECT_EQ(a.weights.data()[j], b.weights.data()[j]);
    }
    EXPECT_EQ(back.serialize(), bytes);
}

TEST(Manifest, RoundTripsThroughAFile)
{
    const WeightManifest m = tinyManifest();
    const std::string path = ::testing::TempDir() + "tiny.scnnwm";
    std::string error;
    ASSERT_TRUE(writeManifestFile(path, m, &error)) << error;

    WeightManifest back;
    ASSERT_TRUE(loadManifestFile(path, &back, &error)) << error;
    EXPECT_EQ(back.fingerprint(), m.fingerprint());
    std::remove(path.c_str());
}

TEST(Manifest, RejectsBadMagic)
{
    std::string bytes = tinyManifest().serialize();
    bytes[0] = 'X';
    WeightManifest out;
    std::string error;
    EXPECT_FALSE(WeightManifest::parse(bytes, &out, &error));
    EXPECT_NE(error.find("magic"), std::string::npos);
}

TEST(Manifest, RejectsTruncationAtEveryPrefix)
{
    const std::string bytes = tinyManifest().serialize();
    // Every proper prefix must be rejected with an error (sample the
    // boundaries plus a stride through the tensor data).
    for (size_t cut = 0; cut < bytes.size();
         cut += (cut < 64 ? 1 : 97)) {
        WeightManifest out;
        std::string error;
        EXPECT_FALSE(WeightManifest::parse(bytes.substr(0, cut), &out,
                                           &error))
            << "prefix of " << cut << " bytes parsed";
        EXPECT_FALSE(error.empty());
    }
}

TEST(Manifest, RejectsTrailingBytes)
{
    std::string bytes = tinyManifest().serialize();
    bytes += "junk";
    WeightManifest out;
    std::string error;
    EXPECT_FALSE(WeightManifest::parse(bytes, &out, &error));
    EXPECT_NE(error.find("trailing"), std::string::npos);
}

TEST(Manifest, RejectsImplausibleDimensions)
{
    const WeightManifest m = tinyManifest();
    std::string bytes = m.serialize();
    // Corrupt the first entry's K field (right after magic, count,
    // name length and name bytes) to a huge value.
    const size_t kOffset =
        8 + 4 + 4 + m.entries()[0].name.size();
    bytes[kOffset] = static_cast<char>(0xff);
    bytes[kOffset + 1] = static_cast<char>(0xff);
    bytes[kOffset + 2] = static_cast<char>(0xff);
    bytes[kOffset + 3] = static_cast<char>(0x7f);
    WeightManifest out;
    std::string error;
    EXPECT_FALSE(WeightManifest::parse(bytes, &out, &error));
    EXPECT_FALSE(error.empty());
}

TEST(Manifest, RejectsDuplicateEntries)
{
    WeightManifest m;
    std::string error;
    ManifestEntry e;
    e.name = "dup";
    e.weights = Tensor4(1, 1, 1, 1);
    ASSERT_TRUE(m.add(e, &error)) << error;
    EXPECT_FALSE(m.add(e, &error));
    EXPECT_NE(error.find("duplicate"), std::string::npos);
}

TEST(Manifest, WeightsForDistinguishesAbsentFromMismatched)
{
    const Network net = tinyTestNetwork();
    WeightManifest m;
    std::string error;
    ManifestEntry e;
    e.name = net.layer(0).name;
    e.weights = Tensor4(1, 1, 1, 1); // wrong shape for t_conv1
    ASSERT_TRUE(m.add(std::move(e), &error)) << error;

    // Absent: nullptr, no error (caller synthesizes).
    EXPECT_EQ(m.weightsFor(net.layer(1), &error), nullptr);
    EXPECT_TRUE(error.empty());

    // Present but mismatched: nullptr with a shape error.
    EXPECT_EQ(m.weightsFor(net.layer(0), &error), nullptr);
    EXPECT_NE(error.find("shape"), std::string::npos);
}

TEST(Manifest, ApplyRebindsDensitiesAndPreservesEdges)
{
    Network net = tinyResNetwork();
    const WeightManifest m = manifestFromNetwork(net, 42);
    std::string error;
    ASSERT_TRUE(applyManifest(net, m, &error)) << error;

    // Densities now reflect the actual tensors, not the profile.
    for (size_t i = 0; i < net.numLayers(); ++i) {
        const ManifestEntry *e = m.find(net.layer(i).name);
        ASSERT_NE(e, nullptr);
        EXPECT_EQ(net.layer(i).weightDensity, e->weights.density());
    }
    // The residual edge structure survived the rebind.
    EXPECT_FALSE(net.isSequential());
    EXPECT_TRUE(net.topologyErrors().empty());
}

TEST(Manifest, ApplyRejectsUnrelatedManifest)
{
    Network net = tinyTestNetwork();
    const WeightManifest m = manifestFromNetwork(tinyDwNetwork(), 7);
    std::string error;
    EXPECT_FALSE(applyManifest(net, m, &error));
    EXPECT_NE(error.find("matches no layer"), std::string::npos);
}

} // anonymous namespace
} // namespace scnn
