/**
 * @file
 * Statistical tests of the clustered-sparsity workload generator: the
 * realized density must track the profile despite the log-normal
 * spatial/channel modulation, and the modulation must actually create
 * the per-channel and per-region variance it claims.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "nn/workload.hh"

namespace scnn {
namespace {

ConvLayerParams
bigLayer(double d, double spatialSigma, double channelSigma)
{
    ConvLayerParams p = makeConv("ws", 64, 8, 56, 3, 1, 0.5, d);
    p.actSpatialSigma = spatialSigma;
    p.actChannelSigma = channelSigma;
    return p;
}

double
channelDensityStd(const Tensor3 &t)
{
    const double plane = static_cast<double>(t.width()) * t.height();
    double mean = 0.0;
    std::vector<double> dens;
    for (int c = 0; c < t.channels(); ++c) {
        size_t nz = 0;
        for (int x = 0; x < t.width(); ++x)
            for (int y = 0; y < t.height(); ++y)
                nz += (t.get(c, x, y) != 0.0f);
        dens.push_back(static_cast<double>(nz) / plane);
        mean += dens.back();
    }
    mean /= static_cast<double>(dens.size());
    double var = 0.0;
    for (double v : dens)
        var += (v - mean) * (v - mean);
    return std::sqrt(var / static_cast<double>(dens.size()));
}

TEST(WorkloadStats, DensityTracksProfileDespiteClustering)
{
    for (double d : {0.2, 0.4, 0.6, 0.8}) {
        Rng rng(7);
        const Tensor3 t =
            makeActivations(bigLayer(d, 0.8, 0.9), rng);
        EXPECT_NEAR(t.density(), d, 0.03) << d;
    }
}

TEST(WorkloadStats, ChannelSigmaCreatesChannelVariance)
{
    Rng a(9);
    const Tensor3 iid = makeActivations(bigLayer(0.4, 0.0, 0.0), a);
    Rng b(9);
    const Tensor3 clustered =
        makeActivations(bigLayer(0.4, 0.0, 0.9), b);
    EXPECT_GT(channelDensityStd(clustered),
              2.0 * channelDensityStd(iid));
}

TEST(WorkloadStats, SpatialSigmaCreatesRegionVariance)
{
    // Compare quadrant densities: clustered maps vary across
    // quadrants far more than i.i.d. ones.
    auto quadrantStd = [](const Tensor3 &t) {
        const int hw = t.width() / 2;
        const int hh = t.height() / 2;
        double mean = 0.0;
        std::vector<double> dens;
        for (int qx = 0; qx < 2; ++qx) {
            for (int qy = 0; qy < 2; ++qy) {
                size_t nz = 0;
                for (int x = qx * hw; x < (qx + 1) * hw; ++x)
                    for (int y = qy * hh; y < (qy + 1) * hh; ++y)
                        for (int c = 0; c < t.channels(); ++c)
                            nz += (t.get(c, x, y) != 0.0f);
                dens.push_back(static_cast<double>(nz));
                mean += dens.back();
            }
        }
        mean /= 4.0;
        double var = 0.0;
        for (double v : dens)
            var += (v - mean) * (v - mean);
        return std::sqrt(var / 4.0) / mean;
    };

    Rng a(11);
    const Tensor3 iid = makeActivations(bigLayer(0.4, 0.0, 0.0), a);
    Rng b(11);
    const Tensor3 clustered =
        makeActivations(bigLayer(0.4, 1.2, 0.0), b);
    EXPECT_GT(quadrantStd(clustered), 2.0 * quadrantStd(iid));
}

TEST(WorkloadStats, FullyDenseUnaffectedByModulation)
{
    Rng rng(13);
    const Tensor3 t = makeActivations(bigLayer(1.0, 1.0, 1.0), rng);
    EXPECT_DOUBLE_EQ(t.density(), 1.0);
}

TEST(WorkloadStats, ZeroSigmaIsIid)
{
    // With sigmas off, quadrant non-zero counts should agree within
    // binomial noise.
    ConvLayerParams p = bigLayer(0.5, 0.0, 0.0);
    Rng rng(15);
    const Tensor3 t = makeActivations(p, rng);
    EXPECT_NEAR(t.density(), 0.5, 0.01);
}

} // anonymous namespace
} // namespace scnn
