/** @file Unit tests for the reference convolution / pooling oracle. */

#include <gtest/gtest.h>

#include "nn/reference.hh"

namespace scnn {
namespace {

TEST(ReferenceConv, IdentityFilterCopiesInput)
{
    ConvLayerParams p = makeConv("id", 1, 1, 4, 1, 0, 1.0, 1.0);
    p.applyRelu = false;
    Tensor3 in(1, 4, 4);
    for (int x = 0; x < 4; ++x)
        for (int y = 0; y < 4; ++y)
            in.set(0, x, y, static_cast<float>(x * 4 + y - 5));
    Tensor4 w(1, 1, 1, 1);
    w.at(0, 0, 0, 0) = 1.0f;

    const Tensor3 out = referenceConv(p, in, w);
    EXPECT_DOUBLE_EQ(maxAbsDiff(out, in), 0.0);
}

TEST(ReferenceConv, HandComputedThreeByThree)
{
    // 3x3 all-ones filter over a plane of ones, pad 1: interior = 9,
    // edges = 6, corners = 4.
    ConvLayerParams p = makeConv("box", 1, 1, 4, 3, 1, 1.0, 1.0);
    Tensor3 in(1, 4, 4, 1.0f);
    Tensor4 w(1, 1, 3, 3, 1.0f);
    const Tensor3 out = referenceConv(p, in, w);
    EXPECT_FLOAT_EQ(out.get(0, 1, 1), 9.0f);
    EXPECT_FLOAT_EQ(out.get(0, 0, 1), 6.0f);
    EXPECT_FLOAT_EQ(out.get(0, 0, 0), 4.0f);
}

TEST(ReferenceConv, ReluClamps)
{
    ConvLayerParams p = makeConv("neg", 1, 1, 2, 1, 0, 1.0, 1.0);
    Tensor3 in(1, 2, 2, 1.0f);
    Tensor4 w(1, 1, 1, 1);
    w.at(0, 0, 0, 0) = -2.0f;
    const Tensor3 relu = referenceConv(p, in, w);
    EXPECT_FLOAT_EQ(relu.get(0, 0, 0), 0.0f);
    const Tensor3 raw = referenceConvNoRelu(p, in, w);
    EXPECT_FLOAT_EQ(raw.get(0, 0, 0), -2.0f);
}

TEST(ReferenceConv, StrideSkipsPositions)
{
    ConvLayerParams p = makeConv("st", 1, 1, 5, 1, 0, 1.0, 1.0);
    p.strideX = p.strideY = 2;
    Tensor3 in(1, 5, 5);
    in.set(0, 2, 2, 7.0f);
    Tensor4 w(1, 1, 1, 1);
    w.at(0, 0, 0, 0) = 1.0f;
    const Tensor3 out = referenceConv(p, in, w);
    EXPECT_EQ(out.width(), 3);
    EXPECT_FLOAT_EQ(out.get(0, 1, 1), 7.0f);
    EXPECT_FLOAT_EQ(out.get(0, 0, 0), 0.0f);
}

TEST(ReferenceConv, GroupedConvIsolatesChannels)
{
    // groups=2: k=0 sees channels {0,1}, k=1 sees channels {2,3}.
    ConvLayerParams p = makeConv("grp", 4, 2, 2, 1, 0, 1.0, 1.0);
    p.groups = 2;
    p.applyRelu = false;
    p.validate();
    Tensor3 in(4, 2, 2);
    in.set(0, 0, 0, 1.0f);
    in.set(2, 0, 0, 10.0f);
    Tensor4 w(2, 2, 1, 1, 1.0f); // all ones

    const Tensor3 out = referenceConv(p, in, w);
    EXPECT_FLOAT_EQ(out.get(0, 0, 0), 1.0f);
    EXPECT_FLOAT_EQ(out.get(1, 0, 0), 10.0f);
}

TEST(ReferenceConv, ChannelAccumulation)
{
    ConvLayerParams p = makeConv("acc", 3, 1, 1, 1, 0, 1.0, 1.0);
    p.applyRelu = false;
    Tensor3 in(3, 1, 1);
    in.set(0, 0, 0, 1.0f);
    in.set(1, 0, 0, 2.0f);
    in.set(2, 0, 0, 3.0f);
    Tensor4 w(1, 3, 1, 1);
    w.at(0, 0, 0, 0) = 1.0f;
    w.at(0, 1, 0, 0) = 10.0f;
    w.at(0, 2, 0, 0) = 100.0f;
    const Tensor3 out = referenceConv(p, in, w);
    EXPECT_FLOAT_EQ(out.get(0, 0, 0), 1.0f + 20.0f + 300.0f);
}

TEST(ReferenceConv, ShapeMismatchIsFatal)
{
    const ConvLayerParams p = makeConv("m", 2, 2, 4, 3, 1, 1.0, 1.0);
    Tensor3 in(3, 4, 4); // wrong channel count
    Tensor4 w(2, 2, 3, 3);
    EXPECT_DEATH(referenceConv(p, in, w), "input shape");
}

TEST(MaxPool, BasicWindow)
{
    Tensor3 in(1, 4, 4);
    in.set(0, 0, 0, 1.0f);
    in.set(0, 1, 1, 5.0f);
    in.set(0, 3, 3, 2.0f);
    const Tensor3 out = maxPool(in, 2, 2, 0);
    EXPECT_EQ(out.width(), 2);
    EXPECT_FLOAT_EQ(out.get(0, 0, 0), 5.0f);
    EXPECT_FLOAT_EQ(out.get(0, 1, 1), 2.0f);
}

TEST(MaxPool, StrideOneSamePad)
{
    Tensor3 in(1, 3, 3);
    in.set(0, 1, 1, 4.0f);
    const Tensor3 out = maxPool(in, 3, 1, 1);
    EXPECT_EQ(out.width(), 3);
    // Every window includes the center.
    for (int x = 0; x < 3; ++x)
        for (int y = 0; y < 3; ++y)
            EXPECT_FLOAT_EQ(out.get(0, x, y), 4.0f);
}

TEST(MaxPool, NegativeValuesSurvive)
{
    Tensor3 in(1, 2, 2, -3.0f);
    const Tensor3 out = maxPool(in, 2, 2, 0);
    EXPECT_FLOAT_EQ(out.get(0, 0, 0), -3.0f);
}

} // anonymous namespace
} // namespace scnn
