/**
 * @file
 * Model-zoo tests: the network definitions must reproduce the paper's
 * Table I characteristics (layer counts, footprints, multiply counts)
 * and the documented density ranges of Fig. 1.
 */

#include <gtest/gtest.h>

#include "nn/model_zoo.hh"

namespace scnn {
namespace {

TEST(AlexNet, LayerCountAndNames)
{
    const Network net = alexNet();
    ASSERT_EQ(net.numLayers(), 5u);
    EXPECT_EQ(net.numEvalLayers(), 5u);
    EXPECT_EQ(net.layer(0).name, "conv1");
    EXPECT_EQ(net.layer(4).name, "conv5");
}

TEST(AlexNet, TableOneCharacteristics)
{
    const Network net = alexNet();
    // Total multiplies ~0.69 B (grouped AlexNet).
    const double b = static_cast<double>(net.totalMacs(true)) / 1e9;
    EXPECT_NEAR(b, 0.69, 0.05);
    // Max layer weights ~1.73 MB (conv3: 384x256x3x3 @ 2B).
    EXPECT_NEAR(static_cast<double>(net.maxLayerWeightBytes()) / 1e6,
                1.77, 0.1);
    // Paper reports 0.31 MB, which matches conv1's *input* (the
    // 3x227x227 image).  Our definition takes max(input, output) over
    // layers, which is conv1's output (96x55x55 @ 2 B = 0.58 MB); the
    // deviation is recorded in EXPERIMENTS.md.
    EXPECT_NEAR(
        static_cast<double>(net.maxLayerActivationBytes()) / 1e6,
        0.58, 0.05);
}

TEST(AlexNet, Conv1IsDenseStride4)
{
    const auto &conv1 = alexNet().layer(0);
    EXPECT_EQ(conv1.strideX, 4);
    EXPECT_DOUBLE_EQ(conv1.inputDensity, 1.0);
    EXPECT_EQ(conv1.outWidth(), 55);
}

TEST(AlexNet, GroupedLayers)
{
    const Network net = alexNet();
    EXPECT_EQ(net.layer(1).groups, 2);
    EXPECT_EQ(net.layer(2).groups, 1);
    EXPECT_EQ(net.layer(3).groups, 2);
    EXPECT_EQ(net.layer(4).groups, 2);
}

TEST(GoogLeNet, FiftyFourInceptionConvs)
{
    const Network net = googLeNet();
    EXPECT_EQ(net.numEvalLayers(), 54u);
    EXPECT_EQ(net.numLayers(), 57u); // + 3 stem convs
}

TEST(GoogLeNet, TableOneCharacteristics)
{
    const Network net = googLeNet();
    // Inception-scope multiplies ~1.1 B.
    const double b = static_cast<double>(net.totalMacs(true)) / 1e9;
    EXPECT_NEAR(b, 1.1, 0.15);
    // Max weights ~1.32 MB (IC_5b 3x3: 384x192x3x3 @ 2B).
    EXPECT_NEAR(static_cast<double>(net.maxLayerWeightBytes()) / 1e6,
                1.33, 0.1);
    // Max activations ~1.52 MB (stem conv1 output, 64x112x112 @ 2B).
    EXPECT_NEAR(
        static_cast<double>(net.maxLayerActivationBytes()) / 1e6,
        1.6, 0.15);
}

TEST(GoogLeNet, ModuleStructure)
{
    const Network net = googLeNet();
    // Each module contributes 6 convs named with the module id.
    int ic5b = 0;
    for (const auto &l : net.layers())
        if (l.name.rfind("IC_5b/", 0) == 0)
            ++ic5b;
    EXPECT_EQ(ic5b, 6);
    // IC_5b convs operate on 7x7 planes.
    for (const auto &l : net.layers())
        if (l.name.rfind("IC_5b/", 0) == 0)
            EXPECT_EQ(l.inWidth, 7);
}

TEST(GoogLeNet, WeightDensityFloorIsThirtyPercent)
{
    for (const auto &l : googLeNet().layers()) {
        if (!l.inEval)
            continue;
        EXPECT_GE(l.weightDensity, 0.30);
        EXPECT_LE(l.weightDensity, 0.60);
    }
}

TEST(Vgg16, ThirteenConvLayers)
{
    const Network net = vgg16();
    EXPECT_EQ(net.numLayers(), 13u);
    EXPECT_EQ(net.numEvalLayers(), 13u);
    for (const auto &l : net.layers()) {
        EXPECT_EQ(l.filterW, 3);
        EXPECT_EQ(l.padX, 1);
        EXPECT_EQ(l.strideX, 1);
    }
}

TEST(Vgg16, TableOneCharacteristics)
{
    const Network net = vgg16();
    const double b = static_cast<double>(net.totalMacs(true)) / 1e9;
    EXPECT_NEAR(b, 15.3, 0.3);
    EXPECT_NEAR(static_cast<double>(net.maxLayerWeightBytes()) / 1e6,
                4.7, 0.3); // 512x512x3x3 @ 2B
    EXPECT_NEAR(
        static_cast<double>(net.maxLayerActivationBytes()) / 1e6,
        6.4, 0.3); // 64x224x224 @ 2B
}

TEST(PaperNetworks, SeventyTwoEvalLayers)
{
    size_t total = 0;
    for (const auto &net : paperNetworks())
        total += net.numEvalLayers();
    EXPECT_EQ(total, 72u); // Section VI-D: "72 total evaluated layers"
}

TEST(DensityProfiles, WithinFigureOneRanges)
{
    for (const auto &net : paperNetworks()) {
        for (const auto &l : net.layers()) {
            EXPECT_GE(l.weightDensity, 0.2) << l.name;
            EXPECT_LE(l.weightDensity, 0.9) << l.name;
            EXPECT_GE(l.inputDensity, 0.15) << l.name;
            EXPECT_LE(l.inputDensity, 1.0) << l.name;
        }
    }
}

TEST(DensityProfiles, TypicalWorkReductionAroundFourX)
{
    // Fig. 1: "Typical layers can reduce work by a factor of 4, and
    // can reach as high as a factor of ten."
    for (const auto &net : paperNetworks()) {
        const double reduction =
            static_cast<double>(net.totalMacs(true)) /
            net.totalIdealMacs(true);
        EXPECT_GE(reduction, 2.0) << net.name();
        EXPECT_LE(reduction, 12.0) << net.name();
    }
}

TEST(UniformDensity, OverridesEveryLayer)
{
    const Network swept = withUniformDensity(googLeNet(), 0.3, 0.4);
    for (const auto &l : swept.layers()) {
        EXPECT_DOUBLE_EQ(l.weightDensity, 0.3);
        EXPECT_DOUBLE_EQ(l.inputDensity, 0.4);
    }
    EXPECT_EQ(swept.numLayers(), googLeNet().numLayers());
}

TEST(TinyNetwork, CoversGeometryFeatures)
{
    const Network net = tinyTestNetwork();
    bool hasStride = false;
    bool hasGroups = false;
    bool hasOneByOne = false;
    for (const auto &l : net.layers()) {
        hasStride |= l.strideX > 1;
        hasGroups |= l.groups > 1;
        hasOneByOne |= l.filterW == 1;
    }
    EXPECT_TRUE(hasStride);
    EXPECT_TRUE(hasGroups);
    EXPECT_TRUE(hasOneByOne);
}

} // anonymous namespace
} // namespace scnn
