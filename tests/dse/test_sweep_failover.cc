/**
 * @file
 * Fleet-resilience suite for scnn_dse (SCNN_DSE_BIN) against live
 * scnn_serve shards (SCNN_SERVE_BIN) and the deterministic chaos
 * proxy (SCNN_FAULTPROXY_BIN):
 *
 *  - SIGKILLing a shard mid-sweep re-routes its points to the
 *    survivor: the sweep still exits 0, the funnel reports the
 *    failovers, and the frontier is identical to the undisturbed
 *    in-process run (losing a shard loses cache affinity, never
 *    correctness);
 *  - a reset storm (every connection RST after a few replies) forces
 *    reconnects but changes nothing about the result;
 *  - a blackholed endpoint fails the startup health probe within the
 *    configured --io-timeout-ms instead of hanging the sweep.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fcntl.h>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "common/json.hh"

namespace scnn {
namespace {

using Clock = std::chrono::steady_clock;

std::string
uniquePath(const char *stem)
{
    static std::atomic<int> counter{0};
    return testing::TempDir() + stem + "_" +
           std::to_string(getpid()) + "_" +
           std::to_string(counter.fetch_add(1));
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

pid_t
spawn(const std::vector<std::string> &args,
      const std::string &stderrPath)
{
    std::vector<char *> argv;
    for (const auto &a : args)
        argv.push_back(const_cast<char *>(a.c_str()));
    argv.push_back(nullptr);

    const pid_t pid = fork();
    if (pid != 0)
        return pid;
    const int devnull = open("/dev/null", O_RDWR);
    dup2(devnull, STDIN_FILENO);
    dup2(devnull, STDOUT_FILENO);
    const int errFd = open(stderrPath.c_str(),
                           O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (errFd >= 0)
        dup2(errFd, STDERR_FILENO);
    execv(argv[0], argv.data());
    _exit(127);
}

int
waitForExit(pid_t pid, double timeoutSec = 120.0)
{
    const auto deadline =
        Clock::now() + std::chrono::duration<double>(timeoutSec);
    int status = 0;
    for (;;) {
        const pid_t r = waitpid(pid, &status, WNOHANG);
        if (r == pid)
            break;
        if (Clock::now() > deadline) {
            kill(pid, SIGKILL);
            waitpid(pid, &status, 0);
            ADD_FAILURE() << "process did not exit in " << timeoutSec
                          << "s; killed";
            return -1;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return WIFEXITED(status) ? WEXITSTATUS(status) : -WTERMSIG(status);
}

int
runDse(const std::vector<std::string> &extraArgs,
       std::string *errOut = nullptr)
{
    const std::string errPath = uniquePath("fo_dse_err");
    std::vector<std::string> args = {SCNN_DSE_BIN};
    args.insert(args.end(), extraArgs.begin(), extraArgs.end());
    const int status = waitForExit(spawn(args, errPath));
    if (errOut)
        *errOut = slurp(errPath);
    return status;
}

/** Same 12-point spec the CLI suite sweeps; finishes in seconds. */
std::string
writeSpec()
{
    const std::string path = uniquePath("fo_spec");
    std::ofstream out(path);
    out << R"({"schema": "scnn.dse_spec.v1", "name": "failover-test",
               "axes": [
                 {"field": "pe_rows", "values": [2, 4, 8]},
                 {"field": "mul_i", "values": [1, 2]},
                 {"field": "accum_banks", "values": [16, 32]}]})";
    return path;
}

JsonValue
loadReport(const std::string &path)
{
    JsonValue v;
    std::string error;
    EXPECT_TRUE(parseJson(slurp(path), v, error)) << error;
    return v;
}

uint64_t
faultField(const JsonValue &report, const char *field)
{
    const JsonValue *funnel = report.find("funnel");
    EXPECT_NE(funnel, nullptr);
    const JsonValue *faults = funnel ? funnel->find("faults") : nullptr;
    EXPECT_NE(faults, nullptr);
    const JsonValue *v = faults ? faults->find(field) : nullptr;
    EXPECT_NE(v, nullptr) << field;
    return v ? v->uint64 : 0;
}

void
expectSameFrontier(const JsonValue &ref, const JsonValue &got)
{
    const auto &fa = ref.find("frontier")->array;
    const auto &fb = got.find("frontier")->array;
    ASSERT_EQ(fa.size(), fb.size());
    ASSERT_FALSE(fa.empty());
    for (size_t i = 0; i < fa.size(); ++i) {
        EXPECT_EQ(fa[i].find("point")->string,
                  fb[i].find("point")->string);
        EXPECT_EQ(fa[i].find("cycles")->uint64,
                  fb[i].find("cycles")->uint64);
        // Bit-exact: %.17g round trip, no tolerance.
        EXPECT_EQ(fa[i].find("energy_pj")->number,
                  fb[i].find("energy_pj")->number);
        EXPECT_EQ(fa[i].find("area_mm2")->number,
                  fb[i].find("area_mm2")->number);
    }
}

struct Shard
{
    pid_t pid = -1;
    int port = 0;
    std::string errPath;
    std::string metricsPath;
};

Shard
startShard(int index, int count,
           const std::vector<std::string> &extraArgs = {})
{
    Shard s;
    s.errPath = uniquePath("fo_shard_err");
    s.metricsPath = uniquePath("fo_shard_metrics");
    const std::string portFile = uniquePath("fo_shard_port");
    std::vector<std::string> args = {
        SCNN_SERVE_BIN, "--listen=127.0.0.1:0",
        "--port-file=" + portFile,
        "--shard=" + std::to_string(index) + "/" +
            std::to_string(count),
        "--metrics=" + s.metricsPath};
    args.insert(args.end(), extraArgs.begin(), extraArgs.end());
    s.pid = spawn(args, s.errPath);
    const auto deadline = Clock::now() + std::chrono::seconds(30);
    while (Clock::now() < deadline) {
        const std::string text = slurp(portFile);
        if (!text.empty()) {
            s.port = std::atoi(text.c_str());
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_GT(s.port, 0) << slurp(s.errPath);
    return s;
}

struct Proxy
{
    pid_t pid = -1;
    int port = 0;
    std::string errPath;
};

Proxy
startProxy(int upstreamPort, const std::vector<std::string> &faultArgs)
{
    Proxy p;
    p.errPath = uniquePath("fo_proxy_err");
    const std::string portFile = uniquePath("fo_proxy_port");
    std::vector<std::string> args = {
        SCNN_FAULTPROXY_BIN, "--listen=127.0.0.1:0",
        "--port-file=" + portFile,
        "--upstream=127.0.0.1:" + std::to_string(upstreamPort)};
    args.insert(args.end(), faultArgs.begin(), faultArgs.end());
    p.pid = spawn(args, p.errPath);
    const auto deadline = Clock::now() + std::chrono::seconds(30);
    while (Clock::now() < deadline) {
        const std::string text = slurp(portFile);
        if (!text.empty()) {
            p.port = std::atoi(text.c_str());
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_GT(p.port, 0) << slurp(p.errPath);
    return p;
}

TEST(SweepFailover, SigkilledShardFailsOverWithAnIdenticalFrontier)
{
    const std::string spec = writeSpec();

    // The undisturbed reference: the same sweep, in process.
    const std::string localReport = uniquePath("fo_local");
    std::string err;
    ASSERT_EQ(runDse({"--spec=" + spec, "--network=tiny", "--quiet",
                      "--json=" + localReport},
                     &err),
              0)
        << err;

    // A 2-shard fleet; the doomed shard echoes every line it reads.
    Shard survivor = startShard(0, 2);
    Shard doomed = startShard(1, 2, {"--echo"});

    // Run the sweep in small batches and SIGKILL the doomed shard the
    // moment it echoes its first *simulation* request.  (Not its
    // first echoed line: that is the evaluator's startup health
    // probe, and a kill in the probe's echo-to-pong window is a
    // legitimate startup failure -- there is no sweep yet to fail
    // over.)  From then on every point routed to it must fail over.
    const std::string remoteReport = uniquePath("fo_remote");
    std::thread killer([&] {
        const auto deadline = Clock::now() + std::chrono::seconds(60);
        while (Clock::now() < deadline) {
            if (slurp(doomed.errPath).find("backends") !=
                std::string::npos) {
                kill(doomed.pid, SIGKILL);
                return;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        ADD_FAILURE() << "doomed shard never echoed a request";
    });
    const int status =
        runDse({"--spec=" + spec, "--network=tiny", "--quiet",
                "--batch=4",
                "--connect=127.0.0.1:" +
                    std::to_string(survivor.port) + ",127.0.0.1:" +
                    std::to_string(doomed.port),
                "--json=" + remoteReport},
               &err);
    killer.join();
    ASSERT_EQ(status, 0) << err;
    // The sweep's own log told the operator what happened.
    EXPECT_NE(err.find("surviving shard"), std::string::npos) << err;

    int killed = 0;
    waitpid(doomed.pid, &killed, 0);
    EXPECT_TRUE(WIFSIGNALED(killed));

    const JsonValue local = loadReport(localReport);
    const JsonValue remote = loadReport(remoteReport);
    EXPECT_GT(faultField(remote, "failovers"), 0u);
    EXPECT_GT(faultField(remote, "reconnects"), 0u);
    // Losing the shard lost cache affinity, never points: the
    // frontier matches the undisturbed run bit for bit.
    expectSameFrontier(local, remote);
    // And the in-process run, by construction, saw no faults.
    EXPECT_EQ(faultField(local, "failovers"), 0u);
    EXPECT_EQ(faultField(local, "reconnects"), 0u);
    EXPECT_EQ(faultField(local, "retries"), 0u);

    // The survivor drains cleanly and its metrics carry the
    // connection ledger: several evaluator (re)connects, all closed.
    kill(survivor.pid, SIGTERM);
    EXPECT_EQ(waitForExit(survivor.pid), 0);
    JsonValue metrics;
    std::string perror;
    ASSERT_TRUE(parseJson(slurp(survivor.metricsPath), metrics, perror))
        << perror;
    const JsonValue *conns = metrics.find("connections");
    ASSERT_NE(conns, nullptr);
    EXPECT_GE(conns->find("accepted")->uint64, 1u);
    EXPECT_EQ(conns->find("active")->uint64, 0u);
    EXPECT_EQ(conns->find("closed")->uint64,
              conns->find("accepted")->uint64);
}

TEST(SweepFailover, ResetStormForcesReconnectsNotWrongAnswers)
{
    const std::string spec = writeSpec();

    const std::string localReport = uniquePath("fo_local");
    std::string err;
    ASSERT_EQ(runDse({"--spec=" + spec, "--network=tiny", "--quiet",
                      "--json=" + localReport},
                     &err),
              0)
        << err;

    // One shard behind a proxy that RSTs every connection after a few
    // replies' worth of bytes (a response line is ~3 KB, so 10 KB is
    // 2-3 replies).  Each connection still makes progress before it
    // dies, so the sweep grinds through on reconnects.
    Shard shard = startShard(0, 1);
    Proxy proxy = startProxy(shard.port,
                             {"--p-pass=0", "--p-reset=1",
                              "--fault-after=10000"});

    const std::string remoteReport = uniquePath("fo_remote");
    ASSERT_EQ(runDse({"--spec=" + spec, "--network=tiny", "--quiet",
                      "--connect=127.0.0.1:" +
                          std::to_string(proxy.port),
                      "--json=" + remoteReport},
                     &err),
              0)
        << err;

    kill(proxy.pid, SIGTERM);
    waitForExit(proxy.pid);
    kill(shard.pid, SIGTERM);
    EXPECT_EQ(waitForExit(shard.pid), 0);

    const JsonValue local = loadReport(localReport);
    const JsonValue remote = loadReport(remoteReport);
    EXPECT_GT(faultField(remote, "reconnects"), 0u);
    EXPECT_EQ(faultField(remote, "failovers"), 0u); // nowhere to go
    expectSameFrontier(local, remote);
}

TEST(SweepFailover, BlackholedEndpointFailsTheStartupHealthProbe)
{
    const std::string spec = writeSpec();

    // The endpoint accepts connections and then says nothing, ever.
    // Without a read deadline this would hang the sweep forever; with
    // --io-timeout-ms it is a crisp startup failure.
    Shard shard = startShard(0, 1);
    Proxy proxy = startProxy(shard.port,
                             {"--p-pass=0", "--p-blackhole=1"});

    std::string err;
    const auto start = Clock::now();
    EXPECT_EQ(runDse({"--spec=" + spec, "--network=tiny", "--quiet",
                      "--io-timeout-ms=500",
                      "--connect=127.0.0.1:" +
                          std::to_string(proxy.port)},
                     &err),
              1);
    const double elapsedSec =
        std::chrono::duration<double>(Clock::now() - start).count();
    EXPECT_NE(err.find("health probe"), std::string::npos) << err;
    EXPECT_LT(elapsedSec, 30.0); // failed fast, did not hang

    kill(proxy.pid, SIGTERM);
    waitForExit(proxy.pid);
    kill(shard.pid, SIGTERM);
    EXPECT_EQ(waitForExit(shard.pid), 0);
}

} // namespace
} // namespace scnn
