/**
 * @file
 * Unit suite for the streaming Pareto engine (src/dse/pareto):
 * dominance semantics over (cycles, energy, area), duplicate and
 * full-tie handling, degenerate single/empty sets, rank-k front
 * peeling, and a randomized cross-check of the streaming front
 * against a brute-force O(n^2) reference.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/random.hh"
#include "dse/pareto.hh"

namespace scnn {
namespace {

DsePoint
point(const std::string &id, uint64_t cycles, double energy,
      double area)
{
    DsePoint p;
    p.id = id;
    p.cycles = cycles;
    p.energyPj = energy;
    p.areaMm2 = area;
    return p;
}

std::set<std::string>
ids(const std::vector<DsePoint> &points)
{
    std::set<std::string> out;
    for (const DsePoint &p : points)
        out.insert(p.id);
    return out;
}

TEST(Pareto, DominanceRequiresStrictImprovementSomewhere)
{
    const DsePoint a = point("a", 10, 5.0, 2.0);
    const DsePoint better = point("b", 9, 5.0, 2.0);
    const DsePoint equal = point("c", 10, 5.0, 2.0);
    const DsePoint mixed = point("d", 9, 6.0, 2.0);

    EXPECT_TRUE(dominates(better, a));
    EXPECT_FALSE(dominates(a, better));
    // Full tie: neither dominates.
    EXPECT_FALSE(dominates(equal, a));
    EXPECT_FALSE(dominates(a, equal));
    // Better on one axis, worse on another: incomparable.
    EXPECT_FALSE(dominates(mixed, a));
    EXPECT_FALSE(dominates(a, mixed));
}

TEST(Pareto, EmptyAndSingletonFronts)
{
    ParetoFront front;
    EXPECT_TRUE(front.empty());
    EXPECT_EQ(front.size(), 0u);
    EXPECT_TRUE(front.sorted().empty());

    EXPECT_TRUE(front.add(point("only", 5, 1.0, 1.0)));
    EXPECT_EQ(front.size(), 1u);
    EXPECT_EQ(front.sorted().front().id, "only");
}

TEST(Pareto, DominatedInsertIsRejectedAndDominatorEvicts)
{
    ParetoFront front;
    EXPECT_TRUE(front.add(point("mid", 10, 10.0, 10.0)));
    // Strictly worse: rejected, front unchanged.
    EXPECT_FALSE(front.add(point("worse", 11, 11.0, 11.0)));
    EXPECT_EQ(front.size(), 1u);
    // Strictly better: accepted and evicts the dominated member.
    EXPECT_TRUE(front.add(point("best", 9, 9.0, 9.0)));
    EXPECT_EQ(front.size(), 1u);
    EXPECT_EQ(front.sorted().front().id, "best");
}

TEST(Pareto, OneInsertCanEvictManyMembers)
{
    ParetoFront front;
    // Mutually incomparable: each trades cycles against energy.
    EXPECT_TRUE(front.add(point("a", 10, 30.0, 1.0)));
    EXPECT_TRUE(front.add(point("b", 20, 20.0, 1.0)));
    EXPECT_TRUE(front.add(point("c", 30, 10.0, 1.0)));
    EXPECT_EQ(front.size(), 3u);
    // Dominates all three at once.
    EXPECT_TRUE(front.add(point("d", 10, 10.0, 1.0)));
    EXPECT_EQ(front.size(), 1u);
    EXPECT_EQ(front.sorted().front().id, "d");
}

TEST(Pareto, FullObjectiveTiesCoexist)
{
    ParetoFront front;
    EXPECT_TRUE(front.add(point("t1", 10, 5.0, 2.0)));
    // The same objectives under a different id: kept (neither
    // dominates), so equivalent designs all surface.
    EXPECT_TRUE(front.add(point("t2", 10, 5.0, 2.0)));
    EXPECT_EQ(front.size(), 2u);
}

TEST(Pareto, DuplicateIdsAreDroppedKeepingTheFirst)
{
    ParetoFront front;
    EXPECT_TRUE(front.add(point("dup", 10, 5.0, 2.0)));
    // A re-submitted id is ignored even when its objectives would
    // win -- one checkpoint record per point is the invariant and
    // replays must not double-insert.
    EXPECT_FALSE(front.add(point("dup", 1, 1.0, 1.0)));
    EXPECT_EQ(front.size(), 1u);
    EXPECT_EQ(front.sorted().front().cycles, 10u);
}

TEST(Pareto, SortedOrderIsCyclesEnergyAreaId)
{
    ParetoFront front;
    front.add(point("b", 10, 5.0, 2.0));
    front.add(point("a", 10, 5.0, 2.0));
    front.add(point("c", 5, 9.0, 2.0));
    const std::vector<DsePoint> sorted = front.sorted();
    ASSERT_EQ(sorted.size(), 3u);
    EXPECT_EQ(sorted[0].id, "c");
    EXPECT_EQ(sorted[1].id, "a");
    EXPECT_EQ(sorted[2].id, "b");
}

TEST(Pareto, RankTwoFrontsPeelCorrectly)
{
    // Rank 1: {a, b} (incomparable); rank 2: {c, d}; rank 3: {e}.
    const std::vector<DsePoint> pts = {
        point("a", 1, 10.0, 1.0), point("b", 10, 1.0, 1.0),
        point("c", 2, 11.0, 1.0), point("d", 11, 2.0, 1.0),
        point("e", 12, 12.0, 2.0),
    };
    const auto fronts = paretoFronts(pts, 2);
    ASSERT_EQ(fronts.size(), 2u);
    EXPECT_EQ(ids(fronts[0]), (std::set<std::string>{"a", "b"}));
    EXPECT_EQ(ids(fronts[1]), (std::set<std::string>{"c", "d"}));

    const auto all = paretoFronts(pts, 10);
    ASSERT_EQ(all.size(), 3u);
    EXPECT_EQ(ids(all[2]), (std::set<std::string>{"e"}));
}

TEST(Pareto, RankFrontsDedupeIds)
{
    const std::vector<DsePoint> pts = {
        point("a", 1, 10.0, 1.0),
        point("a", 9, 9.0, 9.0), // replayed duplicate
        point("b", 10, 1.0, 1.0),
    };
    const auto fronts = paretoFronts(pts, 10);
    ASSERT_EQ(fronts.size(), 1u);
    EXPECT_EQ(ids(fronts[0]), (std::set<std::string>{"a", "b"}));
    // The first occurrence's objectives win.
    for (const DsePoint &p : fronts[0])
        if (p.id == "a")
            EXPECT_EQ(p.cycles, 1u);
}

/** Brute-force reference: p is on the front iff nothing dominates it. */
std::set<std::string>
referenceFront(const std::vector<DsePoint> &pts)
{
    std::set<std::string> out;
    for (const DsePoint &p : pts) {
        bool dominated = false;
        for (const DsePoint &q : pts)
            if (dominates(q, p)) {
                dominated = true;
                break;
            }
        if (!dominated)
            out.insert(p.id);
    }
    return out;
}

TEST(Pareto, RandomizedStreamsMatchTheBruteForceReference)
{
    Rng rng("pareto-fuzz", 20170624);
    for (int iter = 0; iter < 200; ++iter) {
        const int n = 1 + static_cast<int>(rng.uniformInt(60));
        std::vector<DsePoint> pts;
        ParetoFront front;
        for (int i = 0; i < n; ++i) {
            // A small value range forces plenty of ties and
            // duplicate objective vectors.
            const DsePoint p = point(
                "p" + std::to_string(i),
                1 + rng.uniformInt(8),
                static_cast<double>(1 + rng.uniformInt(8)),
                static_cast<double>(1 + rng.uniformInt(8)));
            pts.push_back(p);
            front.add(p);
        }
        EXPECT_EQ(ids(front.points()), referenceFront(pts))
            << "iteration " << iter << " with " << n << " points";
        // Insertion order must not matter.
        ParetoFront reversed;
        for (auto it = pts.rbegin(); it != pts.rend(); ++it)
            reversed.add(*it);
        EXPECT_EQ(ids(reversed.points()), ids(front.points()));
    }
}

} // namespace
} // namespace scnn
