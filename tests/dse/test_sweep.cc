/**
 * @file
 * Suite for the sweep driver (src/dse/sweep) with a stub evaluator:
 * funnel accounting (invalid / pruned / simulated / error), the
 * adaptive prune threshold, checkpoint kill+resume byte-for-byte
 * convergence for every strategy, torn-tail recovery, strategy
 * determinism, and grid sharding forming an exact partition.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "dse/sweep.hh"
#include "nn/model_zoo.hh"
#include "sim/simulator.hh"

namespace scnn {
namespace {

std::string
uniquePath(const char *stem)
{
    static std::atomic<int> counter{0};
    return testing::TempDir() + stem + "_" +
           std::to_string(getpid()) + "_" +
           std::to_string(counter.fetch_add(1));
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

SweepSpec
parseSpec(const std::string &doc)
{
    SweepSpec spec;
    std::string error;
    EXPECT_TRUE(parseSweepSpec(doc, spec, error)) << error;
    return spec;
}

/** A small 2-axis space over the PE array: 4 x 3 = 12 points. */
const char *kSpecDoc = R"({
  "schema": "scnn.dse_spec.v1",
  "name": "sweep-test",
  "axes": [
    {"field": "pe_rows", "values": [1, 2, 4, 8]},
    {"field": "mul_f", "values": [1, 2, 4]}
  ]
})";

/**
 * Deterministic stand-in for full simulation: cycles derived from the
 * config (so the Pareto structure is stable), no real simulator.
 * Configs named in `failIds` come back as errors.
 */
class StubEvaluator : public DseEvaluator
{
  public:
    std::set<std::string> failIds;
    int batches = 0;
    std::vector<size_t> batchSizes;

    std::vector<EvalResult>
    evaluate(const std::vector<AcceleratorConfig> &configs) override
    {
        ++batches;
        batchSizes.push_back(configs.size());
        std::vector<EvalResult> out;
        for (const AcceleratorConfig &cfg : configs) {
            EvalResult r;
            if (failIds.count(cfg.name)) {
                r.error = "stub failure";
            } else {
                r.ok = true;
                r.cycles = 100000ull /
                           (static_cast<uint64_t>(cfg.peRows) *
                            static_cast<uint64_t>(cfg.pe.mulF));
                r.energyPj = 10.0 * cfg.peRows * cfg.pe.mulF;
            }
            out.push_back(r);
        }
        return out;
    }

    std::string describe() const override { return "stub"; }
};

TEST(Sweep, GridFunnelAccountsForEveryPoint)
{
    const SweepSpec spec = parseSpec(kSpecDoc);
    const Network net = tinyTestNetwork();
    StubEvaluator eval;
    SweepOptions opt;
    opt.pruneFactor = 1.05; // tight: most of the space prunes

    const SweepOutcome out = runSweep(spec, net, eval, opt);
    const FunnelStats &s = out.stats;
    EXPECT_EQ(s.candidates, 12u);
    EXPECT_EQ(s.resumed, 0u);
    EXPECT_EQ(s.invalid + s.pruned + s.simulated + s.errors, 12u);
    EXPECT_GT(s.pruned, 0u);
    EXPECT_GT(s.simulated, 0u);
    EXPECT_FALSE(out.frontier.empty());
    EXPECT_EQ(out.simulatedPoints.size(), s.simulated);
    // The frontier is drawn from the simulated points.
    std::set<std::string> simIds;
    for (const DsePoint &p : out.simulatedPoints)
        simIds.insert(p.id);
    for (const DsePoint &p : out.frontier.points())
        EXPECT_TRUE(simIds.count(p.id)) << p.id;
}

TEST(Sweep, TheFirstCandidateIsNeverPruned)
{
    // Grid order starts at pe_rows=1,mul_f=1 -- analytically the
    // slowest point.  The adaptive threshold must admit it (there is
    // no "best" yet), not prune the whole space against nothing.
    const SweepSpec spec = parseSpec(kSpecDoc);
    StubEvaluator eval;
    SweepOptions opt;
    opt.maxPoints = 1;
    const SweepOutcome out =
        runSweep(spec, tinyTestNetwork(), eval, opt);
    EXPECT_EQ(out.stats.candidates, 1u);
    EXPECT_EQ(out.stats.pruned, 0u);
    EXPECT_EQ(out.stats.simulated, 1u);
}

TEST(Sweep, InvalidCornersAreRecordedNotSimulated)
{
    const SweepSpec spec = parseSpec(R"({
      "schema": "scnn.dse_spec.v1",
      "name": "inv",
      "axes": [{"field": "ppu_lanes", "values": [0, 2]}]
    })");
    StubEvaluator eval;
    const SweepOutcome out =
        runSweep(spec, tinyTestNetwork(), eval, SweepOptions());
    EXPECT_EQ(out.stats.invalid, 1u);
    EXPECT_EQ(out.stats.simulated, 1u);
}

TEST(Sweep, EvaluatorErrorsBecomeErrorRecordsAndTheSweepContinues)
{
    const SweepSpec spec = parseSpec(kSpecDoc);
    StubEvaluator eval;
    eval.failIds.insert("pe_rows=8,mul_f=4");
    SweepOptions opt;
    opt.pruneFactor = 100.0; // nothing prunes
    const SweepOutcome out =
        runSweep(spec, tinyTestNetwork(), eval, opt);
    EXPECT_EQ(out.stats.errors, 1u);
    EXPECT_EQ(out.stats.simulated, 11u);
    for (const DsePoint &p : out.frontier.points())
        EXPECT_NE(p.id, "pe_rows=8,mul_f=4");
}

TEST(Sweep, BatchSizeBoundsEvaluatorCalls)
{
    const SweepSpec spec = parseSpec(kSpecDoc);
    StubEvaluator eval;
    SweepOptions opt;
    opt.pruneFactor = 100.0;
    opt.batchSize = 5;
    runSweep(spec, tinyTestNetwork(), eval, opt);
    for (size_t n : eval.batchSizes)
        EXPECT_LE(n, 5u);
    EXPECT_GE(eval.batches, 3);
}

std::string
checkpointedRun(SweepStrategy strategy, uint64_t stopAfter,
                const std::string &path, FunnelStats *statsOut = nullptr,
                bool *stoppedOut = nullptr)
{
    const SweepSpec spec = parseSpec(kSpecDoc);
    StubEvaluator eval;
    SweepOptions opt;
    opt.strategy = strategy;
    opt.seed = 11;
    opt.checkpointPath = path;
    opt.stopAfter = stopAfter;
    opt.batchSize = 3;
    const SweepOutcome out =
        runSweep(spec, tinyTestNetwork(), eval, opt);
    if (statsOut)
        *statsOut = out.stats;
    if (stoppedOut)
        *stoppedOut = out.stoppedEarly;
    // Serialize the frontier for comparison across runs.
    std::string digest;
    for (const DsePoint &p : out.frontier.sorted())
        digest += p.id + ";";
    return digest;
}

TEST(Sweep, KillAndResumeConvergesByteForByte)
{
    for (const SweepStrategy strategy :
         {SweepStrategy::Grid, SweepStrategy::Random,
          SweepStrategy::Evolve}) {
        SCOPED_TRACE(sweepStrategyName(strategy));
        const std::string refPath = uniquePath("sweep_ref");
        const std::string resPath = uniquePath("sweep_res");

        const std::string refFrontier =
            checkpointedRun(strategy, 0, refPath);

        bool stopped = false;
        checkpointedRun(strategy, 5, resPath, nullptr, &stopped);
        EXPECT_TRUE(stopped);
        // The partial checkpoint is a strict prefix of the
        // reference: same trajectory, cut short.
        const std::string refBytes = slurp(refPath);
        const std::string partial = slurp(resPath);
        EXPECT_LT(partial.size(), refBytes.size());
        EXPECT_EQ(refBytes.compare(0, partial.size(), partial), 0);

        FunnelStats resumedStats;
        const std::string resumedFrontier = checkpointedRun(
            strategy, 0, resPath, &resumedStats, &stopped);
        EXPECT_FALSE(stopped);
        EXPECT_GT(resumedStats.resumed, 0u);
        EXPECT_EQ(slurp(resPath), refBytes);
        EXPECT_EQ(resumedFrontier, refFrontier);

        std::remove(refPath.c_str());
        std::remove(resPath.c_str());
    }
}

TEST(Sweep, ResumedRunsDoNotReEvaluate)
{
    const std::string path = uniquePath("sweep_noreval");
    checkpointedRun(SweepStrategy::Grid, 0, path);
    // Re-running a finished sweep touches the evaluator zero times.
    const SweepSpec spec = parseSpec(kSpecDoc);
    StubEvaluator eval;
    SweepOptions opt;
    opt.checkpointPath = path;
    opt.batchSize = 3;
    const SweepOutcome out =
        runSweep(spec, tinyTestNetwork(), eval, opt);
    EXPECT_EQ(eval.batches, 0);
    EXPECT_EQ(out.stats.resumed, 12u);
    EXPECT_FALSE(out.frontier.empty());
    std::remove(path.c_str());
}

TEST(Sweep, TornCheckpointTailIsReEvaluatedOnResume)
{
    const std::string refPath = uniquePath("sweep_tref");
    const std::string tornPath = uniquePath("sweep_torn");
    const std::string refFrontier =
        checkpointedRun(SweepStrategy::Grid, 0, refPath);

    // Clone the reference and tear the final line mid-record.
    std::string bytes = slurp(refPath);
    ASSERT_GT(bytes.size(), 20u);
    {
        std::ofstream out(tornPath, std::ios::binary);
        out << bytes.substr(0, bytes.size() - 9);
    }
    const std::string resumedFrontier =
        checkpointedRun(SweepStrategy::Grid, 0, tornPath);
    EXPECT_EQ(resumedFrontier, refFrontier);
    EXPECT_EQ(slurp(tornPath), bytes);
    std::remove(refPath.c_str());
    std::remove(tornPath.c_str());
}

TEST(Sweep, CorruptMidFileCheckpointThrows)
{
    const std::string path = uniquePath("sweep_corrupt");
    {
        std::ofstream out(path, std::ios::binary);
        out << "{\"broken\":\n{\"also broken\":\n";
    }
    const SweepSpec spec = parseSpec(kSpecDoc);
    StubEvaluator eval;
    SweepOptions opt;
    opt.checkpointPath = path;
    EXPECT_THROW(runSweep(spec, tinyTestNetwork(), eval, opt),
                 SimulationError);
    std::remove(path.c_str());
}

TEST(Sweep, StrategiesAreDeterministicUnderAFixedSeed)
{
    for (const SweepStrategy strategy :
         {SweepStrategy::Random, SweepStrategy::Evolve}) {
        SCOPED_TRACE(sweepStrategyName(strategy));
        const SweepSpec spec = parseSpec(kSpecDoc);
        SweepOptions opt;
        opt.strategy = strategy;
        opt.seed = 42;
        StubEvaluator e1, e2;
        const SweepOutcome a =
            runSweep(spec, tinyTestNetwork(), e1, opt);
        const SweepOutcome b =
            runSweep(spec, tinyTestNetwork(), e2, opt);
        EXPECT_EQ(a.stats.candidates, b.stats.candidates);
        EXPECT_EQ(a.stats.simulated, b.stats.simulated);
        ASSERT_EQ(a.simulatedPoints.size(), b.simulatedPoints.size());
        for (size_t i = 0; i < a.simulatedPoints.size(); ++i)
            EXPECT_EQ(a.simulatedPoints[i].id,
                      b.simulatedPoints[i].id);

        // A different seed explores differently (coarse check).
        SweepOptions other = opt;
        other.seed = 43;
        StubEvaluator e3;
        const SweepOutcome c =
            runSweep(spec, tinyTestNetwork(), e3, other);
        std::string da, dc;
        for (const DsePoint &p : a.simulatedPoints)
            da += p.id + ";";
        for (const DsePoint &p : c.simulatedPoints)
            dc += p.id + ";";
        EXPECT_NE(da, dc);
    }
}

TEST(Sweep, GridShardsPartitionTheSpaceExactly)
{
    const SweepSpec spec = parseSpec(kSpecDoc);
    std::map<std::string, int> coverage;
    uint64_t totalCandidates = 0;
    for (int i = 0; i < 3; ++i) {
        StubEvaluator eval;
        SweepOptions opt;
        opt.shardIndex = i;
        opt.shardCount = 3;
        opt.pruneFactor = 100.0;
        const SweepOutcome out =
            runSweep(spec, tinyTestNetwork(), eval, opt);
        totalCandidates += out.stats.candidates;
        for (const DsePoint &p : out.simulatedPoints)
            ++coverage[p.id];
    }
    EXPECT_EQ(totalCandidates, spec.totalPoints());
    EXPECT_EQ(coverage.size(), spec.totalPoints());
    for (const auto &kv : coverage)
        EXPECT_EQ(kv.second, 1) << kv.first;
}

TEST(Sweep, RandomSamplesWithoutReplacement)
{
    const SweepSpec spec = parseSpec(kSpecDoc);
    StubEvaluator eval;
    SweepOptions opt;
    opt.strategy = SweepStrategy::Random;
    opt.seed = 5;
    opt.maxPoints = 8;
    opt.pruneFactor = 100.0;
    const SweepOutcome out =
        runSweep(spec, tinyTestNetwork(), eval, opt);
    EXPECT_LE(out.stats.candidates, 8u);
    std::set<std::string> ids;
    for (const DsePoint &p : out.simulatedPoints)
        EXPECT_TRUE(ids.insert(p.id).second) << p.id;
}

} // namespace
} // namespace scnn
